package conferr

import (
	"errors"
	"strconv"
	"strings"
	"time"

	"conferr/internal/core"
	"conferr/internal/suts"
)

// This file adapts a facade TargetFactory into the per-worker
// core.TargetFactory parallel campaigns need.
//
// The faultload of a campaign is generated once, from the primary target,
// so every mutated configuration embeds the primary's port. If workers
// started their SUTs on those bytes verbatim they would all contend for
// the one port; if they ran on private ports the mutated bytes, error
// messages and functional-test dials would differ from the sequential run
// and the profile would no longer be deterministic. The wrapper squares
// the circle: each worker SUT runs on its own port, the primary port is
// rewritten to the worker's in the config bytes on the way in, and the
// worker's port is rewritten back to the primary's in every error message
// on the way out. Typo'd port values are left untouched in both
// directions, so port-fault scenarios keep their exact sequential
// behaviour.

// defaultPorter is implemented by every built-in simulator.
type defaultPorter interface {
	DefaultPort() int
}

// workerFactory converts a facade factory into the core per-worker
// factory, wiring in the port remap against the primary target.
func workerFactory(f TargetFactory, primary *SystemTarget) core.TargetFactory {
	from := primaryPort(primary)
	return func() (*core.Target, error) {
		st, err := f(0)
		if err != nil {
			return nil, err
		}
		return remapTarget(st, st.Target.System, from), nil
	}
}

// primaryPort is the port the faultload's mutated bytes embed.
func primaryPort(primary *SystemTarget) int {
	if dp, ok := primary.System.(defaultPorter); ok {
		return dp.DefaultPort()
	}
	return 0
}

// remapTarget wraps one worker's target in the port remap against the
// primary port. sys is the system to wrap — the target's own system, or
// a lifecycle adapter already wrapped around it.
func remapTarget(st *SystemTarget, sys suts.System, from int) *core.Target {
	to := 0
	if dp, ok := st.System.(defaultPorter); ok {
		to = dp.DefaultPort()
	}
	t := *st.Target
	if from != 0 && to != 0 && from != to {
		fromS, toS := strconv.Itoa(from), strconv.Itoa(to)
		t.System = &portMappedSystem{System: sys, from: fromS, to: toS}
		t.Tests = remapTests(t.Tests, toS, fromS)
	} else {
		// Same port space (or none): still guard against transient
		// bind collisions with other workers' typo'd ports.
		t.System = &portMappedSystem{System: sys}
	}
	return &t
}

// portMappedSystem runs a worker's SUT on its own port while presenting
// the primary port to the rest of the engine. With from == to == "" it
// only adds the bind-collision retry.
type portMappedSystem struct {
	suts.System
	from string // primary port decimal, "" for no remap
	to   string // this worker's port decimal

	// memo caches the port rewrite per input slice. The engine's
	// incremental pipeline hands every clean file's cached baseline bytes
	// to Start unchanged scenario after scenario, so keying on the slice
	// identity turns their rewrite into a lookup. Entries are never
	// evicted: per-scenario dirty-file slices that land in the memo stay
	// there (bounded by the cap; once it is full, further misses simply
	// recompute), and keys hold their backing arrays alive, so an
	// address can never be recycled for different content while its
	// entry exists. Start is only called from this worker's goroutine,
	// so no locking.
	memo map[remapKey][]byte
}

// Unwrap exposes the wrapped system to the engine's capability probes —
// lifecycle management detection, probe skipping, pool release — which
// walk wrapper chains instead of relying on method promotion.
func (s *portMappedSystem) Unwrap() suts.System { return s.System }

// remapKey identifies an input slice by backing array and length.
type remapKey struct {
	p *byte
	n int
}

// remapMemoCap bounds the memo: comfortably above any real
// configuration's file count even after early scenarios' dirty-file
// slices claim slots, small enough that the pinned bytes stay cheap.
const remapMemoCap = 256

// remap rewrites the primary port to the worker's in one file's bytes,
// memoizing per input slice.
func (s *portMappedSystem) remap(data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	k := remapKey{&data[0], len(data)}
	if out, ok := s.memo[k]; ok {
		return out
	}
	out := []byte(replaceNumber(string(data), s.from, s.to))
	if s.memo == nil {
		s.memo = make(map[remapKey][]byte, remapMemoCap)
	}
	if len(s.memo) < remapMemoCap {
		s.memo[k] = out
	}
	return out
}

// bindRetry bounds how long a worker waits out another worker holding a
// (typo'd) port it needs. Experiments against the simulators complete in
// well under a millisecond, so a few milliseconds of budget covers deep
// pile-ups while keeping a genuinely occupied port's failure prompt.
const (
	bindRetries = 100
	bindBackoff = 2 * time.Millisecond
)

// Start implements suts.System: it rewrites the primary port to the
// worker's, starts the inner SUT (waiting out transient cross-worker bind
// collisions), and maps the worker's port back to the primary's in any
// resulting error — startup rejections and infrastructure failures alike
// end up in the recorded detail, which must match the sequential run.
func (s *portMappedSystem) Start(files suts.Files) error {
	return s.start(files, nil, false)
}

// StartDirty implements suts.DirtyStarter, forwarding the dirty-file set
// through the port remap so a wrapped DirtyStarter keeps its parse-once
// fast path. Dirty names need no rewriting — they are file names, not
// bytes — and clean files' remapped baseline bytes come out of the memo
// identity-stable, so downstream baseline memos keep hitting.
func (s *portMappedSystem) StartDirty(files suts.Files, dirty []string) error {
	return s.start(files, dirty, true)
}

func (s *portMappedSystem) start(files suts.Files, dirty []string, haveDirty bool) error {
	if s.from != "" {
		remapped := make(suts.Files, len(files))
		for name, data := range files {
			remapped[name] = s.remap(data)
		}
		files = remapped
	}
	ds, _ := s.System.(suts.DirtyStarter)
	var err error
	for attempt := 0; attempt < bindRetries; attempt++ {
		if haveDirty && ds != nil {
			err = ds.StartDirty(files, dirty)
		} else {
			err = s.System.Start(files)
		}
		if err == nil || !strings.Contains(err.Error(), "address already in use") {
			break
		}
		_ = s.System.Stop()
		time.Sleep(bindBackoff)
	}
	if err == nil || s.from == "" {
		return err
	}
	var se *suts.StartupError
	if errors.As(err, &se) {
		return &suts.StartupError{System: se.System, Msg: replaceNumber(se.Msg, s.to, s.from)}
	}
	return &remappedError{msg: replaceNumber(err.Error(), s.to, s.from), cause: err}
}

// remapTests rewrites the worker's port back to the primary's in
// functional-test failure messages, keeping DetectedByTest details
// byte-identical to the sequential run.
func remapTests(tests []suts.Test, workerPort, primaryPort string) []suts.Test {
	out := make([]suts.Test, len(tests))
	for i, t := range tests {
		run := t.Run
		out[i] = suts.Test{
			Name: t.Name,
			Run: func() error {
				err := run()
				if err == nil {
					return err
				}
				return &remappedError{msg: replaceNumber(err.Error(), workerPort, primaryPort), cause: err}
			},
		}
	}
	return out
}

// remappedError rewords an error while keeping the original in the chain.
type remappedError struct {
	msg   string
	cause error
}

func (e *remappedError) Error() string { return e.msg }
func (e *remappedError) Unwrap() error { return e.cause }

// replaceNumber replaces standalone decimal occurrences of from with to:
// matches are rejected when flanked by another digit, so a port embedded
// in a larger number (for example a typo'd duplication of its digits)
// stays untouched.
func replaceNumber(s, from, to string) string {
	if from == "" || from == to {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		j := strings.Index(s[i:], from)
		if j < 0 {
			b.WriteString(s[i:])
			break
		}
		j += i
		end := j + len(from)
		digitBefore := j > 0 && s[j-1] >= '0' && s[j-1] <= '9'
		digitAfter := end < len(s) && s[end] >= '0' && s[end] <= '9'
		b.WriteString(s[i:j])
		if digitBefore || digitAfter {
			b.WriteString(from)
		} else {
			b.WriteString(to)
		}
		i = end
	}
	return b.String()
}
