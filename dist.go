package conferr

import (
	"context"
	"fmt"

	"conferr/internal/core"
	"conferr/internal/dist"
	"conferr/internal/profile"
)

// This file wires the distributed-campaign machinery (internal/dist) to
// the registry: a shard runner that turns a wire-level campaign spec into
// a real campaign — target family, generator plugin, lifecycle, transport
// — and executes one shard of it. internal/dist stays free of any
// knowledge of concrete systems or plugins; cmd/sutd hosts the runner
// behind a dist.Server and cmd/conferr's coordinator speaks to it.

// NewDistRunner returns the registry-backed shard runner cmd/sutd -serve
// hosts: every registered target and generator is reachable from a
// worker daemon.
func NewDistRunner() dist.ShardRunner {
	return dist.ShardRunnerFunc(runDistShard)
}

// DistCampaign materializes a wire spec into a runnable suite cell,
// mirroring RunMatrix's construction exactly — same generator wrapper
// order (rounds, then sample, then limit), same lifecycle wiring, same
// port handling — because byte-identity with a single-process matrix
// cell is the whole point.
func DistCampaign(spec dist.CampaignSpec) (SuiteCampaign, error) {
	tf, err := LookupTarget(spec.System)
	if err != nil {
		return SuiteCampaign{}, err
	}
	if spec.Memnet {
		tf = InMemoryTransport(tf)
	}
	gf, err := LookupGenerator(spec.Plugin)
	if err != nil {
		return SuiteCampaign{}, err
	}
	o := GeneratorOptions{
		System: spec.System, Seed: spec.Seed,
		PerModel: spec.PerModel, PerDirective: spec.PerDirective, PerClass: spec.PerClass,
	}
	gen, err := gf(o)
	if err != nil {
		return SuiteCampaign{}, fmt.Errorf("conferr: dist %s/%s: %w", spec.System, spec.Plugin, err)
	}
	if spec.Rounds > 1 {
		gen = core.RepeatGenerator(gen, spec.Rounds)
	}
	if spec.Sample > 0 {
		gen = core.SampleGenerator(gen, spec.Seed, spec.Sample)
	}
	if spec.Limit > 0 {
		gen = core.LimitGenerator(gen, spec.Limit)
	}
	mode, err := ParseLifecycle(spec.Lifecycle)
	if err != nil {
		return SuiteCampaign{}, err
	}
	return NewSuiteCampaignLifecycle(spec.System+"/"+spec.Plugin, tf, spec.Port, gen, mode, nil)
}

// runDistShard executes one shard: build the campaign from the spec, run
// shard k of n from the start sequence, and hand each record to emit as
// a fully rendered JSONL line (newline trimmed; the coordinator's merger
// re-appends it) tagged with its global sequence number.
func runDistShard(ctx context.Context, req dist.ShardRequest, emit func(seq int, line []byte) error) (dist.ShardResult, error) {
	spec := req.Campaign
	sc, err := DistCampaign(spec)
	if err != nil {
		return dist.ShardResult{}, err
	}
	if sc.Cleanup != nil {
		defer sc.Cleanup()
	}
	opts := append([]core.RunOption(nil), sc.Options...)
	if spec.KeepGoing {
		opts = append(opts, core.WithKeepGoing(true))
	}
	if req.ExperimentTimeout > 0 || req.PhaseTimeout > 0 {
		opts = append(opts, core.WithDeadlines(core.Deadlines{
			Experiment: req.ExperimentTimeout,
			Phase:      req.PhaseTimeout,
		}))
	}

	var (
		sum profile.Summary
		buf []byte
	)
	total, err := sc.Campaign.RunShard(ctx, req.Shard, req.Shards, req.StartSeq, func(seq int, rec profile.Record) error {
		sum.Add(rec)
		if spec.NoDuration {
			rec.Duration = 0
		}
		buf = profile.AppendJSONLRecord(buf[:0], spec.System, spec.Plugin, seq, rec)
		return emit(seq, buf[:len(buf)-1])
	}, opts...)
	return dist.ShardResult{Records: total, Summary: sum}, err
}
