package conferr

import (
	"fmt"

	"conferr/internal/core"
	"conferr/internal/dnsmodel"
	"conferr/internal/formats"
	"conferr/internal/formats/apacheconf"
	"conferr/internal/formats/ini"
	"conferr/internal/formats/kv"
	"conferr/internal/formats/nginxconf"
	"conferr/internal/formats/tinydns"
	"conferr/internal/formats/zonefile"
	"conferr/internal/suts"
	"conferr/internal/suts/bind"
	"conferr/internal/suts/djbdns"
	"conferr/internal/suts/dnscheck"
	"conferr/internal/suts/httpd"
	"conferr/internal/suts/mysqld"
	"conferr/internal/suts/nginx"
	"conferr/internal/suts/postgres"
	"conferr/internal/suts/redisd"
	"conferr/internal/view"
)

// SystemTarget is a ready-made target: the engine Target plus the concrete
// simulator, for callers that need SUT-specific hooks.
type SystemTarget struct {
	// Target is what a Campaign consumes.
	Target *core.Target
	// System is the simulator behind the target.
	System suts.System
}

// TargetFactory constructs an independent SystemTarget listening on the
// given port (0 allocates a free one). Factories are the unit the parallel
// Runner scales over — each campaign worker calls the factory once to get
// its own SUT instance — and the value stored in the target registry (see
// RegisterTarget / LookupTarget).
type TargetFactory func(port int) (*SystemTarget, error)

// MySQLTargetAt returns a campaign target for the simulated MySQL server
// with its paper-style functional tests (create/populate/query a
// database) on a fixed port (0 allocates one). The experiment harness uses
// fixed ports so that faultloads — which include typos in the port digits
// — are reproducible across runs.
func MySQLTargetAt(port int) (*SystemTarget, error) {
	s, err := mysqld.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: mysql target: %w", err)
	}
	return &SystemTarget{
		System: s,
		Target: &core.Target{
			System:  s,
			Formats: map[string]formats.Format{mysqld.ConfigFile: ini.Format{}},
			Tests:   mysqld.Tests(s),
		},
	}, nil
}

// PostgresTargetAt returns a campaign target for the simulated PostgreSQL
// server on a fixed port (0 allocates one).
func PostgresTargetAt(port int) (*SystemTarget, error) {
	s, err := postgres.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: postgres target: %w", err)
	}
	return &SystemTarget{
		System: s,
		Target: &core.Target{
			System:  s,
			Formats: map[string]formats.Format{postgres.ConfigFile: kv.Format{}},
			Tests:   postgres.Tests(s),
		},
	}, nil
}

// postgresFullSystem wraps the Postgres simulator so that its default
// configuration is the §5.5 full parameter listing instead of the stock
// 8-directive file.
type postgresFullSystem struct {
	*postgres.Server
}

// DefaultConfig implements suts.System.
func (s postgresFullSystem) DefaultConfig() suts.Files { return s.FullConfig() }

// PostgresFullTargetAt is PostgresTargetAt with the full §5.5
// configuration (every modeled parameter with its default, booleans
// excluded) as the campaign's initial configuration — the Figure 3
// faultload.
func PostgresFullTargetAt(port int) (*SystemTarget, error) {
	s, err := postgres.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: postgres full target: %w", err)
	}
	sys := postgresFullSystem{Server: s}
	return &SystemTarget{
		System: sys,
		Target: &core.Target{
			System:  sys,
			Formats: map[string]formats.Format{postgres.ConfigFile: kv.Format{}},
			Tests:   postgres.Tests(s),
		},
	}, nil
}

// mysqlFullSystem mirrors postgresFullSystem for MySQL.
type mysqlFullSystem struct {
	*mysqld.Server
}

// DefaultConfig implements suts.System.
func (s mysqlFullSystem) DefaultConfig() suts.Files { return s.FullConfig() }

// MySQLFullTargetAt is MySQLTargetAt with a configuration listing every
// modeled server variable with its default — the Figure 3 faultload.
func MySQLFullTargetAt(port int) (*SystemTarget, error) {
	s, err := mysqld.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: mysql full target: %w", err)
	}
	sys := mysqlFullSystem{Server: s}
	return &SystemTarget{
		System: sys,
		Target: &core.Target{
			System:  sys,
			Formats: map[string]formats.Format{mysqld.ConfigFile: ini.Format{}},
			Tests:   mysqld.Tests(s),
		},
	}, nil
}

// MySQLStrictTargetAt is MySQLTargetAt with the simulator's strict mode
// enabled: the silent acceptances the paper flags as flaws (clamping,
// multiplier trailing junk, valueless directives) become startup errors.
// Comparing a campaign's profile against the default target's quantifies
// the resilience improvement those simple checks buy — the paper's
// development-feedback use case (§1).
func MySQLStrictTargetAt(port int) (*SystemTarget, error) {
	tgt, err := MySQLTargetAt(port)
	if err != nil {
		return nil, err
	}
	tgt.System.(*mysqld.Server).Strict = true
	return tgt, nil
}

// mysqlSharedSystem serves the shared my.cnf (server plus auxiliary tool
// groups) as the default configuration.
type mysqlSharedSystem struct {
	*mysqld.Server
}

// DefaultConfig implements suts.System.
func (s mysqlSharedSystem) DefaultConfig() suts.Files { return s.SharedConfig() }

// MySQLSharedFactory returns a TargetFactory for the MySQL target whose
// configuration is the shared my.cnf (server group plus [mysqldump] and
// [myisamchk] groups). When withToolChecks is true, the functional tests
// also run the auxiliary tools — which is when errors in their groups
// finally surface. Comparing campaigns with and without the tool checks
// quantifies the §5.2 latent-error design flaw: the difference is exactly
// the faults an administrator would not learn about until a nightly cron
// job fails.
func MySQLSharedFactory(withToolChecks bool) TargetFactory {
	return func(port int) (*SystemTarget, error) {
		s, err := mysqld.New(port)
		if err != nil {
			return nil, fmt.Errorf("conferr: mysql shared target: %w", err)
		}
		sys := mysqlSharedSystem{Server: s}
		tests := mysqld.Tests(s)
		if withToolChecks {
			for _, group := range []string{"mysqldump", "myisamchk"} {
				tests = append(tests, Test{
					Name: "tool-run/" + group,
					Run:  func() error { return s.CheckTool(group) },
				})
			}
		}
		return &SystemTarget{
			System: sys,
			Target: &core.Target{
				System:  sys,
				Formats: map[string]formats.Format{mysqld.ConfigFile: ini.Format{}},
				Tests:   tests,
			},
		}, nil
	}
}

// ApacheTargetAt returns a campaign target for the simulated Apache httpd
// with the paper's HTTP GET functional test on a fixed port (0 allocates
// one).
func ApacheTargetAt(port int) (*SystemTarget, error) {
	s, err := httpd.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: apache target: %w", err)
	}
	return &SystemTarget{
		System: s,
		Target: &core.Target{
			System:  s,
			Formats: map[string]formats.Format{httpd.ConfigFile: apacheconf.Format{}},
			Tests:   httpd.Tests(s),
		},
	}, nil
}

// NginxTargetAt returns a campaign target for the simulated nginx web
// server on a fixed port (0 allocates one). Its nested-brace nginx.conf
// rides the nginxconf format — the matrix's first arbitrarily nested
// codec — and its functional tests exercise default-server, virtual-host
// and location routing.
func NginxTargetAt(port int) (*SystemTarget, error) {
	s, err := nginx.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: nginx target: %w", err)
	}
	return &SystemTarget{
		System: s,
		Target: &core.Target{
			System:  s,
			Formats: map[string]formats.Format{nginx.ConfigFile: nginxconf.Format{}},
			Tests:   nginx.Tests(s),
		},
	}, nil
}

// RedisdTargetAt returns a campaign target for the simulated Redis
// server on a fixed port (0 allocates one). redis.conf is a flat
// space-separated file, so the target reuses the existing kv codec
// unchanged — adding the system costs only the SUT adapter, the paper's
// §3.2 portability claim.
func RedisdTargetAt(port int) (*SystemTarget, error) {
	s, err := redisd.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: redisd target: %w", err)
	}
	return &SystemTarget{
		System: s,
		Target: &core.Target{
			System:  s,
			Formats: map[string]formats.Format{redisd.ConfigFile: kv.Format{}},
			Tests:   redisd.Tests(s),
		},
	}, nil
}

// BINDTargetAt returns a campaign target for the simulated BIND name
// server with the paper's zone-liveness functional tests, on a fixed port
// (0 allocates one).
func BINDTargetAt(port int) (*SystemTarget, error) {
	s, err := bind.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: bind target: %w", err)
	}
	addr := fmt.Sprintf("127.0.0.1:%d", s.DefaultPort())
	return &SystemTarget{
		System: s,
		Target: &core.Target{
			System: s,
			Formats: map[string]formats.Format{
				bind.ConfigFile:      formats.Raw{},
				bind.ForwardZoneFile: zonefile.Format{},
				bind.ReverseZoneFile: zonefile.Format{},
			},
			Tests: dnscheck.ZoneLivenessTests(addr, []string{"example.com", "2.0.192.in-addr.arpa"}),
		},
	}, nil
}

// BINDRecordView returns the record view matching BIND targets' zones, for
// use with SemanticDNSGenerator.
func BINDRecordView() view.View {
	return dnsmodel.ZoneRecordView{Origins: bind.Origins()}
}

// DjbdnsTargetAt returns a campaign target for the simulated djbdns
// (tinydns) server on a fixed port (0 allocates one).
func DjbdnsTargetAt(port int) (*SystemTarget, error) {
	s, err := djbdns.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: djbdns target: %w", err)
	}
	addr := fmt.Sprintf("127.0.0.1:%d", s.DefaultPort())
	return &SystemTarget{
		System: s,
		Target: &core.Target{
			System:  s,
			Formats: map[string]formats.Format{djbdns.DataFile: tinydns.Format{}},
			Tests:   dnscheck.ZoneLivenessTests(addr, []string{"example.com", "2.0.192.in-addr.arpa"}),
		},
	}, nil
}

// DjbdnsRecordView returns the record view matching djbdns targets' data
// file, for use with SemanticDNSGenerator.
func DjbdnsRecordView() view.View {
	return dnsmodel.TinyRecordView{File: djbdns.DataFile}
}
