package conferr_test

import (
	"fmt"

	"conferr"
)

// The smallest campaign: spelling mistakes against the simulated
// PostgreSQL, with a deterministic faultload.
func Example() {
	tgt, err := conferr.PostgresTarget()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	campaign := &conferr.Campaign{
		Target:    tgt.Target,
		Generator: conferr.TypoGenerator(conferr.TypoOptions{Seed: 1, PerModel: 2}),
	}
	prof, err := campaign.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("records:", len(prof.Records) > 0)
	// Output:
	// records: true
}

// Restricting typos to directive names only (the §5.2 faultload slice all
// systems detect well).
func ExampleTypoGenerator() {
	gen := conferr.TypoGenerator(conferr.TypoOptions{
		Seed:      7,
		NamesOnly: true,
		PerModel:  5,
	})
	fmt.Println(gen.Name(), gen.View().Name())
	// Output:
	// typo word
}

// RFC-1912 semantic faults target the record view; the same classes apply
// to BIND and djbdns.
func ExampleSemanticDNSGenerator() {
	gen := conferr.SemanticDNSGenerator(conferr.DjbdnsRecordView(), nil)
	fmt.Println(gen.Name(), gen.View().Name())
	// Output:
	// semantic-dns tinydns-records
}

// Table 3 reproduces exactly, including the N/A cells caused by
// tinydns's combined "=" directive.
func ExampleRunTable3() {
	res, err := conferr.RunTable3(false)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Cells["semantic/missing-ptr"]["djbdns"])
	fmt.Println(res.Cells["semantic/mx-to-cname"]["BIND"])
	// Output:
	// N/A
	// found
}

// Profiles aggregate into the paper's Table 1 shape.
func ExampleFormatTable1() {
	s := conferr.Summary{System: "demo", Injected: 10, AtStartup: 7, ByTest: 1, Ignored: 2}
	fmt.Print(conferr.FormatTable1(s))
	// Output:
	//                                         demo
	// # of Injected Errors               10 (100%)
	// Detected by system at startup         7 (70%)
	// Detected by functional tests         1 (10%)
	// Ignored                              2 (20%)
}
