package conferr_test

import (
	"context"
	"fmt"

	"conferr"
)

// The smallest campaign: spelling mistakes against the simulated
// PostgreSQL, resolved from the registry and fanned out over four
// workers. The profile is identical to a sequential run's.
func Example() {
	runner, err := conferr.NewRunnerFor("postgres", "typo",
		conferr.GeneratorOptions{Seed: 1, PerModel: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	prof, err := runner.Run(context.Background(), conferr.WithParallelism(4))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("records:", len(prof.Records) > 0)
	// Output:
	// records: true
}

// The explicit Campaign form is still available for callers that build
// their own targets; Run is the sequential shorthand for RunContext.
func ExampleCampaign() {
	tgt, err := conferr.PostgresTargetAt(0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	campaign := &conferr.Campaign{
		Target:    tgt.Target,
		Generator: conferr.TypoGenerator(conferr.TypoOptions{Seed: 1, PerModel: 2}),
	}
	prof, err := campaign.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("records:", len(prof.Records) > 0)
	// Output:
	// records: true
}

// Targets and plugins are registered by name; unknown names fail with the
// available alternatives.
func ExampleLookupTarget() {
	factory, err := conferr.LookupTarget("mysql")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tgt, err := factory(0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(tgt.System.Name())
	// Output:
	// mysql-sim
}

// Restricting typos to directive names only (the §5.2 faultload slice all
// systems detect well).
func ExampleTypoGenerator() {
	gen := conferr.TypoGenerator(conferr.TypoOptions{
		Seed:      7,
		NamesOnly: true,
		PerModel:  5,
	})
	fmt.Println(gen.Name(), gen.View().Name())
	// Output:
	// typo word
}

// RFC-1912 semantic faults target the record view; the same classes apply
// to BIND and djbdns.
func ExampleSemanticDNSGenerator() {
	gen := conferr.SemanticDNSGenerator(conferr.DjbdnsRecordView(), nil)
	fmt.Println(gen.Name(), gen.View().Name())
	// Output:
	// semantic-dns tinydns-records
}

// Table 3 reproduces exactly, including the N/A cells caused by
// tinydns's combined "=" directive.
func ExampleRunTable3() {
	res, err := conferr.RunTable3(false)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Cells["semantic/missing-ptr"]["djbdns"])
	fmt.Println(res.Cells["semantic/mx-to-cname"]["BIND"])
	// Output:
	// N/A
	// found
}

// Profiles aggregate into the paper's Table 1 shape.
func ExampleFormatTable1() {
	s := conferr.Summary{System: "demo", Injected: 10, AtStartup: 7, ByTest: 1, Ignored: 2}
	fmt.Print(conferr.FormatTable1(s))
	// Output:
	//                                         demo
	// # of Injected Errors               10 (100%)
	// Detected by system at startup         7 (70%)
	// Detected by functional tests         1 (10%)
	// Ignored                              2 (20%)
}
