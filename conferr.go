// Package conferr is a tool for testing and quantifying the resilience of
// software systems to human-induced configuration errors, reproducing
// Keller, Upadhyaya and Candea, "ConfErr: A Tool for Assessing Resilience
// to Human Configuration Errors" (DSN 2008).
//
// ConfErr parses a system's configuration files into abstract trees, maps
// them into the view an error-generator plugin operates on, synthesizes
// fault scenarios from psychologically grounded human-error models
// (spelling mistakes, structural mistakes, semantic mistakes), injects
// each fault, starts the system under test, runs functional tests, and
// records the outcome of every injection in a resilience profile.
//
// This package is the public facade: it re-exports the engine types and
// provides ready-made targets for the five simulated systems of the
// paper's evaluation (MySQL, Postgres, Apache, BIND, djbdns) and
// constructors for the three error-generator plugins.
//
// A minimal campaign:
//
//	tgt, err := conferr.PostgresTarget()
//	// handle err
//	campaign := &conferr.Campaign{
//	    Target:    tgt.Target,
//	    Generator: conferr.TypoGenerator(conferr.TypoOptions{Seed: 1, PerModel: 10}),
//	}
//	prof, err := campaign.Run()
//	// handle err
//	fmt.Println(prof.FormatRecords())
package conferr

import (
	"fmt"
	"io"
	"math/rand"

	"conferr/internal/confnode"
	"conferr/internal/core"
	"conferr/internal/dnsmodel"
	"conferr/internal/formats"
	"conferr/internal/formats/apacheconf"
	"conferr/internal/formats/ini"
	"conferr/internal/formats/kv"
	"conferr/internal/formats/tinydns"
	"conferr/internal/formats/zonefile"
	"conferr/internal/keyboard"
	"conferr/internal/plugins/editsim"
	"conferr/internal/plugins/semantic"
	"conferr/internal/plugins/structural"
	"conferr/internal/plugins/typo"
	"conferr/internal/proc"
	"conferr/internal/profile"
	"conferr/internal/suts"
	"conferr/internal/suts/bind"
	"conferr/internal/suts/djbdns"
	"conferr/internal/suts/dnscheck"
	"conferr/internal/suts/httpd"
	"conferr/internal/suts/mysqld"
	"conferr/internal/suts/postgres"
	"conferr/internal/view"
)

// Core engine types, re-exported for API users.
type (
	// Campaign is one ConfErr run: a target plus an error generator.
	Campaign = core.Campaign
	// Target bundles the SUT, its file formats and functional tests.
	Target = core.Target
	// Generator is an error-generator plugin.
	Generator = core.Generator
	// Profile is the resilience profile — ConfErr's output.
	Profile = profile.Profile
	// Record is one injection result within a profile.
	Record = profile.Record
	// Outcome classifies an injection result.
	Outcome = profile.Outcome
	// Summary is the Table 1 row shape.
	Summary = profile.Summary
	// Banding is the Figure 3 shape.
	Banding = profile.Banding
	// System is a system under test.
	System = suts.System
	// Test is a functional test.
	Test = suts.Test
)

// Outcome values, re-exported.
const (
	DetectedAtStartup = profile.DetectedAtStartup
	DetectedByTest    = profile.DetectedByTest
	Ignored           = profile.Ignored
	NotExpressible    = profile.NotExpressible
	NotApplicable     = profile.NotApplicable
)

// Band is a Figure 3 detection band.
type Band = profile.Band

// Band values, re-exported.
const (
	Poor      = profile.Poor
	Fair      = profile.Fair
	Good      = profile.Good
	Excellent = profile.Excellent
)

// SystemTarget is a ready-made target: the engine Target plus the concrete
// simulator, for callers that need SUT-specific hooks.
type SystemTarget struct {
	// Target is what a Campaign consumes.
	Target *core.Target
	// System is the simulator behind the target.
	System suts.System
}

// MySQLTarget returns a campaign target for the simulated MySQL server
// with its paper-style functional tests (create/populate/query a
// database), on a freshly allocated port.
func MySQLTarget() (*SystemTarget, error) { return MySQLTargetAt(0) }

// MySQLTargetAt is MySQLTarget on a fixed port (0 allocates one). The
// experiment harness uses fixed ports so that faultloads — which include
// typos in the port digits — are reproducible across runs.
func MySQLTargetAt(port int) (*SystemTarget, error) {
	s, err := mysqld.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: mysql target: %w", err)
	}
	return &SystemTarget{
		System: s,
		Target: &core.Target{
			System:  s,
			Formats: map[string]formats.Format{mysqld.ConfigFile: ini.Format{}},
			Tests:   mysqld.Tests(s),
		},
	}, nil
}

// PostgresTarget returns a campaign target for the simulated PostgreSQL
// server, on a freshly allocated port.
func PostgresTarget() (*SystemTarget, error) { return PostgresTargetAt(0) }

// PostgresTargetAt is PostgresTarget on a fixed port (0 allocates one).
func PostgresTargetAt(port int) (*SystemTarget, error) {
	s, err := postgres.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: postgres target: %w", err)
	}
	return &SystemTarget{
		System: s,
		Target: &core.Target{
			System:  s,
			Formats: map[string]formats.Format{postgres.ConfigFile: kv.Format{}},
			Tests:   postgres.Tests(s),
		},
	}, nil
}

// postgresFullSystem wraps the Postgres simulator so that its default
// configuration is the §5.5 full parameter listing instead of the stock
// 8-directive file.
type postgresFullSystem struct {
	*postgres.Server
}

// DefaultConfig implements suts.System.
func (s postgresFullSystem) DefaultConfig() suts.Files { return s.FullConfig() }

// PostgresFullTarget is PostgresTarget with the full §5.5 configuration
// (every modeled parameter with its default, booleans excluded) as the
// campaign's initial configuration — the Figure 3 faultload.
func PostgresFullTarget() (*SystemTarget, error) { return PostgresFullTargetAt(0) }

// PostgresFullTargetAt is PostgresFullTarget on a fixed port.
func PostgresFullTargetAt(port int) (*SystemTarget, error) {
	s, err := postgres.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: postgres full target: %w", err)
	}
	sys := postgresFullSystem{Server: s}
	return &SystemTarget{
		System: sys,
		Target: &core.Target{
			System:  sys,
			Formats: map[string]formats.Format{postgres.ConfigFile: kv.Format{}},
			Tests:   postgres.Tests(s),
		},
	}, nil
}

// mysqlFullSystem mirrors postgresFullSystem for MySQL.
type mysqlFullSystem struct {
	*mysqld.Server
}

// DefaultConfig implements suts.System.
func (s mysqlFullSystem) DefaultConfig() suts.Files { return s.FullConfig() }

// MySQLFullTarget is MySQLTarget with a configuration listing every
// modeled server variable with its default — the Figure 3 faultload.
func MySQLFullTarget() (*SystemTarget, error) { return MySQLFullTargetAt(0) }

// MySQLFullTargetAt is MySQLFullTarget on a fixed port.
func MySQLFullTargetAt(port int) (*SystemTarget, error) {
	s, err := mysqld.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: mysql full target: %w", err)
	}
	sys := mysqlFullSystem{Server: s}
	return &SystemTarget{
		System: sys,
		Target: &core.Target{
			System:  sys,
			Formats: map[string]formats.Format{mysqld.ConfigFile: ini.Format{}},
			Tests:   mysqld.Tests(s),
		},
	}, nil
}

// ApacheTarget returns a campaign target for the simulated Apache httpd
// with the paper's HTTP GET functional test, on a freshly allocated port.
func ApacheTarget() (*SystemTarget, error) { return ApacheTargetAt(0) }

// ApacheTargetAt is ApacheTarget on a fixed port (0 allocates one).
func ApacheTargetAt(port int) (*SystemTarget, error) {
	s, err := httpd.New(port)
	if err != nil {
		return nil, fmt.Errorf("conferr: apache target: %w", err)
	}
	return &SystemTarget{
		System: s,
		Target: &core.Target{
			System:  s,
			Formats: map[string]formats.Format{httpd.ConfigFile: apacheconf.Format{}},
			Tests:   httpd.Tests(s),
		},
	}, nil
}

// BINDTarget returns a campaign target for the simulated BIND name server
// with the paper's zone-liveness functional tests.
func BINDTarget() (*SystemTarget, error) {
	s, err := bind.New(0)
	if err != nil {
		return nil, fmt.Errorf("conferr: bind target: %w", err)
	}
	addr := fmt.Sprintf("127.0.0.1:%d", s.DefaultPort())
	return &SystemTarget{
		System: s,
		Target: &core.Target{
			System: s,
			Formats: map[string]formats.Format{
				bind.ConfigFile:      formats.Raw{},
				bind.ForwardZoneFile: zonefile.Format{},
				bind.ReverseZoneFile: zonefile.Format{},
			},
			Tests: dnscheck.ZoneLivenessTests(addr, []string{"example.com", "2.0.192.in-addr.arpa"}),
		},
	}, nil
}

// BINDRecordView returns the record view matching BINDTarget's zones, for
// use with SemanticDNSGenerator.
func BINDRecordView() view.View {
	return dnsmodel.ZoneRecordView{Origins: bind.Origins()}
}

// DjbdnsTarget returns a campaign target for the simulated djbdns
// (tinydns) server.
func DjbdnsTarget() (*SystemTarget, error) {
	s, err := djbdns.New(0)
	if err != nil {
		return nil, fmt.Errorf("conferr: djbdns target: %w", err)
	}
	addr := fmt.Sprintf("127.0.0.1:%d", s.DefaultPort())
	return &SystemTarget{
		System: s,
		Target: &core.Target{
			System:  s,
			Formats: map[string]formats.Format{djbdns.DataFile: tinydns.Format{}},
			Tests:   dnscheck.ZoneLivenessTests(addr, []string{"example.com", "2.0.192.in-addr.arpa"}),
		},
	}, nil
}

// DjbdnsRecordView returns the record view matching DjbdnsTarget's data
// file, for use with SemanticDNSGenerator.
func DjbdnsRecordView() view.View {
	return dnsmodel.TinyRecordView{File: djbdns.DataFile}
}

// TypoOptions configures the spelling-mistakes generator.
type TypoOptions struct {
	// Seed makes the faultload reproducible.
	Seed int64
	// PerModel bounds scenarios per submodel (0 = all).
	PerModel int
	// PerDirective bounds scenarios per directive (0 = off) — the §5.5
	// faultload shape.
	PerDirective int
	// NamesOnly restricts typos to directive names.
	NamesOnly bool
	// ValuesOnly restricts typos to directive values.
	ValuesOnly bool
	// SwissKeyboard selects the Swiss-German layout instead of US-QWERTY.
	SwissKeyboard bool
}

// TypoGenerator returns the spelling-mistakes plugin (paper §4.1).
func TypoGenerator(opts TypoOptions) Generator {
	p := &typo.Plugin{
		PerModel:     opts.PerModel,
		PerDirective: opts.PerDirective,
		Rng:          rand.New(rand.NewSource(opts.Seed)),
	}
	if opts.SwissKeyboard {
		p.Layout = keyboard.SwissGerman()
	}
	switch {
	case opts.NamesOnly:
		p.Tokens = []string{view.TokenName}
	case opts.ValuesOnly:
		p.Tokens = []string{view.TokenValue}
	}
	return p
}

// StructuralOptions configures the structural-faults generator.
type StructuralOptions struct {
	// Seed makes the faultload reproducible.
	Seed int64
	// PerClass bounds scenarios per fault class (0 = all).
	PerClass int
	// Sections enables section-level omission/duplication.
	Sections bool
}

// StructuralGenerator returns the structural-errors plugin (paper §4.2).
func StructuralGenerator(opts StructuralOptions) Generator {
	return &structural.Plugin{
		Sections: opts.Sections,
		PerClass: opts.PerClass,
		Rng:      rand.New(rand.NewSource(opts.Seed)),
	}
}

// VariationsGenerator returns the §5.3 structure-preserving variations
// generator (Table 2). perClass 0 means the paper's 10 files per class;
// classes nil means all five Table 2 rows.
func VariationsGenerator(seed int64, perClass int, classes []string) Generator {
	return &structural.Variations{
		Classes:  classes,
		PerClass: perClass,
		Rng:      rand.New(rand.NewSource(seed)),
	}
}

// SemanticDNSGenerator returns the RFC-1912 semantic-errors plugin (paper
// §4.3) over the given record view (BINDRecordView or DjbdnsRecordView).
// classes nil means all fault classes.
func SemanticDNSGenerator(recordView view.View, classes []string) Generator {
	return &semantic.Plugin{RecordView: recordView, Classes: classes}
}

// Edit is one valid configuration change of a simulated administration
// task (§5.5 benchmark procedure).
type Edit = editsim.Edit

// EditBenchmarkGenerator returns the §5.5 human-error benchmark plugin:
// each scenario applies one valid edit of the task and injects one
// spelling mistake into the freshly typed value — errors in close
// proximity to where the administrator was working. perEdit 0 means the
// paper's 20 experiments per edit.
func EditBenchmarkGenerator(edits []Edit, seed int64, perEdit int) Generator {
	return &editsim.Plugin{
		Edits:   edits,
		PerEdit: perEdit,
		Rng:     rand.New(rand.NewSource(seed)),
	}
}

// MergeProfiles concatenates profiles from multiple campaigns against the
// same system (e.g. a structural deletion campaign plus a typo campaign,
// the Table 1 faultload) into one profile.
func MergeProfiles(system, generator string, profs ...*Profile) *Profile {
	out := &Profile{System: system, Generator: generator}
	for _, p := range profs {
		out.Records = append(out.Records, p.Records...)
	}
	return out
}

// FormatTable1 renders summaries in the paper's Table 1 shape.
func FormatTable1(summaries ...Summary) string { return profile.FormatTable1(summaries...) }

// FormatFigure3 renders bandings in the paper's Figure 3 shape.
func FormatFigure3(bandings ...Banding) string { return profile.FormatFigure3(bandings...) }

// TypoDirectiveKey extracts the directive key from a typo scenario ID, the
// grouping key for Figure 3 banding.
func TypoDirectiveKey(scenarioID string) string { return typo.DirectiveKey(scenarioID) }

// ProcessOptions configures an external-process system under test; see
// the fields of internal/proc.Options.
type ProcessOptions = proc.Options

// ProcessSystem returns a System that runs as an external process,
// started and stopped by ConfErr around every injection — the paper's
// deployment model, where the SUT is a real server binary driven through
// scripts (§5.1). Combine it with a Target whose Formats and Tests match
// the hosted program; cmd/sutd hosts the built-in simulators this way.
func ProcessSystem(opts ProcessOptions) (System, error) {
	return proc.New(opts)
}

// BorrowGenerator returns the §2.2 rule-based-error generator: directives
// "borrowed" from another program's configuration (the donor) are
// inserted into the target's configuration, modeling an operator reusing
// the mental model of one system while configuring another. perClass 0
// keeps all (donor directive × insertion point) combinations.
func BorrowGenerator(donor *SystemTarget, seed int64, perClass int) (Generator, error) {
	donorSet := confnode.NewSet()
	files := donor.System.DefaultConfig()
	for name, data := range files {
		f, ok := donor.Target.Formats[name]
		if !ok {
			continue
		}
		root, err := f.Parse(name, data)
		if err != nil {
			return nil, fmt.Errorf("conferr: parsing donor %s: %w", name, err)
		}
		donorSet.Put(name, root)
	}
	return &structural.Borrow{
		Donor:    donorSet,
		PerClass: perClass,
		Rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// ReadProfileJSON deserializes a resilience profile previously written
// with Profile.WriteJSON.
func ReadProfileJSON(r io.Reader) (*Profile, error) {
	return profile.ReadJSON(r)
}

// MySQLStrictTargetAt is MySQLTargetAt with the simulator's strict mode
// enabled: the silent acceptances the paper flags as flaws (clamping,
// multiplier trailing junk, valueless directives) become startup errors.
// Comparing a campaign's profile against the default target's quantifies
// the resilience improvement those simple checks buy — the paper's
// development-feedback use case (§1).
func MySQLStrictTargetAt(port int) (*SystemTarget, error) {
	tgt, err := MySQLTargetAt(port)
	if err != nil {
		return nil, err
	}
	tgt.System.(*mysqld.Server).Strict = true
	return tgt, nil
}

// CompareProfiles diffs two profiles of the same faultload by scenario
// ID, classifying shared scenarios as improved (now detected), regressed
// (no longer detected) or unchanged.
func CompareProfiles(before, after *Profile) profile.Comparison {
	return profile.Compare(before, after)
}

// mysqlSharedSystem serves the shared my.cnf (server plus auxiliary tool
// groups) as the default configuration.
type mysqlSharedSystem struct {
	*mysqld.Server
}

// DefaultConfig implements suts.System.
func (s mysqlSharedSystem) DefaultConfig() suts.Files { return s.SharedConfig() }

// MySQLSharedTarget returns a MySQL target whose configuration is the
// shared my.cnf (server group plus [mysqldump] and [myisamchk] groups).
// When withToolChecks is true, the functional tests also run the
// auxiliary tools — which is when errors in their groups finally surface.
// Comparing campaigns with and without the tool checks quantifies the
// §5.2 latent-error design flaw: the difference is exactly the faults an
// administrator would not learn about until a nightly cron job fails.
func MySQLSharedTarget(withToolChecks bool) (*SystemTarget, error) {
	s, err := mysqld.New(0)
	if err != nil {
		return nil, fmt.Errorf("conferr: mysql shared target: %w", err)
	}
	sys := mysqlSharedSystem{Server: s}
	tests := mysqld.Tests(s)
	if withToolChecks {
		for _, group := range []string{"mysqldump", "myisamchk"} {
			group := group
			tests = append(tests, Test{
				Name: "tool-run/" + group,
				Run:  func() error { return s.CheckTool(group) },
			})
		}
	}
	return &SystemTarget{
		System: sys,
		Target: &core.Target{
			System:  sys,
			Formats: map[string]formats.Format{mysqld.ConfigFile: ini.Format{}},
			Tests:   tests,
		},
	}, nil
}
