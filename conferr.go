// Package conferr is a tool for testing and quantifying the resilience of
// software systems to human-induced configuration errors, reproducing
// Keller, Upadhyaya and Candea, "ConfErr: A Tool for Assessing Resilience
// to Human Configuration Errors" (DSN 2008).
//
// ConfErr parses a system's configuration files into abstract trees, maps
// them into the view an error-generator plugin operates on, synthesizes
// fault scenarios from psychologically grounded human-error models
// (spelling mistakes, structural mistakes, semantic mistakes), injects
// each fault, starts the system under test, runs functional tests, and
// records the outcome of every injection in a resilience profile.
//
// This package is the public facade. Targets and plugins live in a
// name-based registry (RegisterTarget, RegisterGenerator, LookupTarget,
// LookupGenerator), pre-populated with the five simulated systems of the
// paper's evaluation (MySQL, Postgres, Apache, BIND, djbdns) and the three
// error-generator plugins. Campaigns run through a context-aware Runner
// that fans the faultload out over N workers — each owning its own SUT
// instance — and merges the results into a deterministic,
// scenario-ordered Profile, identical to the sequential run's.
//
// A minimal parallel campaign:
//
//	runner, err := conferr.NewRunnerFor("postgres", "typo",
//	    conferr.GeneratorOptions{Seed: 1, PerModel: 10})
//	// handle err
//	prof, err := runner.Run(ctx, conferr.WithParallelism(8))
//	// handle err
//	fmt.Println(prof.FormatRecords())
package conferr

import (
	"fmt"
	"io"

	"conferr/internal/confnode"
	"conferr/internal/core"
	"conferr/internal/keyboard"
	"conferr/internal/plugins/editsim"
	"conferr/internal/plugins/semantic"
	"conferr/internal/plugins/structural"
	"conferr/internal/plugins/typo"
	"conferr/internal/proc"
	"conferr/internal/profile"
	"conferr/internal/suts"
	"conferr/internal/view"
)

// Core engine types, re-exported for API users.
type (
	// Campaign is one ConfErr run: a target plus an error generator.
	Campaign = core.Campaign
	// Target bundles the SUT, its file formats and functional tests.
	Target = core.Target
	// Generator is an error-generator plugin.
	Generator = core.Generator
	// StreamingGenerator is a Generator that emits its faultload lazily.
	StreamingGenerator = core.StreamingGenerator
	// Sink consumes injection records as they are produced (streaming
	// campaigns).
	Sink = profile.Sink
	// TallySink folds records into a running Summary in O(1) memory.
	TallySink = profile.TallySink
	// MemorySink accumulates records into a Profile.
	MemorySink = profile.MemorySink
	// Profile is the resilience profile — ConfErr's output.
	Profile = profile.Profile
	// Record is one injection result within a profile.
	Record = profile.Record
	// Outcome classifies an injection result.
	Outcome = profile.Outcome
	// Summary is the Table 1 row shape.
	Summary = profile.Summary
	// Banding is the Figure 3 shape.
	Banding = profile.Banding
	// System is a system under test.
	System = suts.System
	// Test is a functional test.
	Test = suts.Test
)

// Outcome values, re-exported.
const (
	DetectedAtStartup   = profile.DetectedAtStartup
	DetectedByTest      = profile.DetectedByTest
	Ignored             = profile.Ignored
	NotExpressible      = profile.NotExpressible
	NotApplicable       = profile.NotApplicable
	InfrastructureError = profile.InfrastructureError
)

// Band is a Figure 3 detection band.
type Band = profile.Band

// Band values, re-exported.
const (
	Poor      = profile.Poor
	Fair      = profile.Fair
	Good      = profile.Good
	Excellent = profile.Excellent
)

// TypoOptions configures the spelling-mistakes generator.
type TypoOptions struct {
	// Seed makes the faultload reproducible.
	Seed int64
	// PerModel bounds scenarios per submodel (0 = all).
	PerModel int
	// PerDirective bounds scenarios per directive (0 = off) — the §5.5
	// faultload shape.
	PerDirective int
	// NamesOnly restricts typos to directive names.
	NamesOnly bool
	// ValuesOnly restricts typos to directive values.
	ValuesOnly bool
	// SwissKeyboard selects the Swiss-German layout instead of US-QWERTY.
	SwissKeyboard bool
}

// TypoGenerator returns the spelling-mistakes plugin (paper §4.1).
func TypoGenerator(opts TypoOptions) Generator {
	p := &typo.Plugin{
		PerModel:     opts.PerModel,
		PerDirective: opts.PerDirective,
		Seed:         opts.Seed,
	}
	if opts.SwissKeyboard {
		p.Layout = keyboard.SwissGerman()
	}
	switch {
	case opts.NamesOnly:
		p.Tokens = []string{view.TokenName}
	case opts.ValuesOnly:
		p.Tokens = []string{view.TokenValue}
	}
	return p
}

// StructuralOptions configures the structural-faults generator.
type StructuralOptions struct {
	// Seed makes the faultload reproducible.
	Seed int64
	// PerClass bounds scenarios per fault class (0 = all).
	PerClass int
	// Sections enables section-level omission/duplication.
	Sections bool
}

// StructuralGenerator returns the structural-errors plugin (paper §4.2).
func StructuralGenerator(opts StructuralOptions) Generator {
	return &structural.Plugin{
		Sections: opts.Sections,
		PerClass: opts.PerClass,
		Seed:     opts.Seed,
	}
}

// VariationsGenerator returns the §5.3 structure-preserving variations
// generator (Table 2). perClass 0 means the paper's 10 files per class;
// classes nil means all five Table 2 rows.
func VariationsGenerator(seed int64, perClass int, classes []string) Generator {
	return &structural.Variations{
		Classes:  classes,
		PerClass: perClass,
		Seed:     seed,
	}
}

// SemanticDNSGenerator returns the RFC-1912 semantic-errors plugin (paper
// §4.3) over the given record view (BINDRecordView or DjbdnsRecordView).
// classes nil means all fault classes.
func SemanticDNSGenerator(recordView view.View, classes []string) Generator {
	return &semantic.Plugin{RecordView: recordView, Classes: classes}
}

// Edit is one valid configuration change of a simulated administration
// task (§5.5 benchmark procedure).
type Edit = editsim.Edit

// EditBenchmarkGenerator returns the §5.5 human-error benchmark plugin:
// each scenario applies one valid edit of the task and injects one
// spelling mistake into the freshly typed value — errors in close
// proximity to where the administrator was working. perEdit 0 means the
// paper's 20 experiments per edit.
func EditBenchmarkGenerator(edits []Edit, seed int64, perEdit int) Generator {
	return &editsim.Plugin{
		Edits:   edits,
		PerEdit: perEdit,
		Seed:    seed,
	}
}

// MergeProfiles concatenates profiles from multiple campaigns against the
// same system (e.g. a structural deletion campaign plus a typo campaign,
// the Table 1 faultload) into one profile.
func MergeProfiles(system, generator string, profs ...*Profile) *Profile {
	out := &Profile{System: system, Generator: generator}
	for _, p := range profs {
		out.Records = append(out.Records, p.Records...)
	}
	return out
}

// FormatTable1 renders summaries in the paper's Table 1 shape.
func FormatTable1(summaries ...Summary) string { return profile.FormatTable1(summaries...) }

// FormatFigure3 renders bandings in the paper's Figure 3 shape.
func FormatFigure3(bandings ...Banding) string { return profile.FormatFigure3(bandings...) }

// TypoDirectiveKey extracts the directive key from a typo scenario ID, the
// grouping key for Figure 3 banding.
func TypoDirectiveKey(scenarioID string) string { return typo.DirectiveKey(scenarioID) }

// ProcessOptions configures an external-process system under test; see
// the fields of internal/proc.Options.
type ProcessOptions = proc.Options

// ProcessSystem returns a System that runs as an external process,
// started and stopped by ConfErr around every injection — the paper's
// deployment model, where the SUT is a real server binary driven through
// scripts (§5.1). Combine it with a Target whose Formats and Tests match
// the hosted program; cmd/sutd hosts the built-in simulators this way.
func ProcessSystem(opts ProcessOptions) (System, error) {
	return proc.New(opts)
}

// BorrowGenerator returns the §2.2 rule-based-error generator: directives
// "borrowed" from another program's configuration (the donor) are
// inserted into the target's configuration, modeling an operator reusing
// the mental model of one system while configuring another. perClass 0
// keeps all (donor directive × insertion point) combinations.
func BorrowGenerator(donor *SystemTarget, seed int64, perClass int) (Generator, error) {
	donorSet := confnode.NewSet()
	files := donor.System.DefaultConfig()
	for name, data := range files {
		f, ok := donor.Target.Formats[name]
		if !ok {
			continue
		}
		root, err := f.Parse(name, data)
		if err != nil {
			return nil, fmt.Errorf("conferr: parsing donor %s: %w", name, err)
		}
		donorSet.Put(name, root)
	}
	return &structural.Borrow{
		Donor:    donorSet,
		PerClass: perClass,
		Seed:     seed,
	}, nil
}

// ReadProfileJSON deserializes a resilience profile previously written
// with Profile.WriteJSON.
func ReadProfileJSON(r io.Reader) (*Profile, error) {
	return profile.ReadJSON(r)
}

// NewJSONLSink returns a streaming sink writing one self-contained JSON
// object per record to w, tagged with the campaign identity — the
// bounded-memory destination for million-scenario campaigns (`conferr
// matrix -stream-out`).
func NewJSONLSink(w io.Writer, system, generator string) *profile.JSONLSink {
	return profile.NewJSONLSink(w, system, generator)
}

// NewLockedWriter serializes writes to w so the JSONL sinks of
// concurrently running campaigns can share one output file.
func NewLockedWriter(w io.Writer) *profile.LockedWriter {
	return profile.NewLockedWriter(w)
}

// StripDurations wraps a sink so every record's Duration is zeroed
// before the write. Duration is the only run-varying record field, so
// stripped streams from two equivalent runs — cold vs warm-reload, any
// worker count — compare byte-identical (`conferr matrix -no-duration`).
func StripDurations(s Sink) Sink { return profile.StripDurations(s) }

// DiscardSink drops every record while still reporting success — the
// destination for runs whose output is the summary table, not a profile
// (`conferr matrix` without -stream-out). It is shardable, so the
// suite's per-shard sink bypass stays intact.
var DiscardSink Sink = profile.Discard

// ReadProfilesJSONL parses a JSON Lines stream written by JSONL sinks,
// splitting it into one scenario-ordered Profile per campaign.
func ReadProfilesJSONL(r io.Reader) ([]*Profile, error) {
	return profile.ReadJSONL(r)
}

// JSONLEntry is one decoded JSONL profile line.
type JSONLEntry = profile.JSONLEntry

// ScanProfilesJSONL streams a JSON Lines profile entry by entry to fn in
// file order, in constant memory — the reader-side counterpart of the
// streaming campaign engine, for files too large to materialize with
// ReadProfilesJSONL.
func ScanProfilesJSONL(r io.Reader, fn func(JSONLEntry) error) error {
	return profile.ScanJSONL(r, fn)
}

// LimitGenerator caps gen's faultload at n scenarios; on the streaming
// path generation work past the cap never happens.
func LimitGenerator(gen Generator, n int) Generator { return core.LimitGenerator(gen, n) }

// SampleGenerator draws n scenarios uniformly from gen's faultload via
// seeded reservoir sampling, holding only n scenarios in memory.
func SampleGenerator(gen Generator, seed int64, n int) Generator {
	return core.SampleGenerator(gen, seed, n)
}

// RepeatGenerator replays gen's faultload rounds times with round-prefixed
// scenario IDs — the scale harness for streaming campaigns.
func RepeatGenerator(gen Generator, rounds int) Generator {
	return core.RepeatGenerator(gen, rounds)
}

// MergeGenerators concatenates the faultloads of generators sharing one
// view into a single streamed campaign.
func MergeGenerators(name string, gens ...Generator) (Generator, error) {
	return core.MergeGenerators(name, gens...)
}

// CompareProfiles diffs two profiles of the same faultload by scenario
// ID, classifying shared scenarios as improved (now detected), regressed
// (no longer detected) or unchanged.
func CompareProfiles(before, after *Profile) profile.Comparison {
	return profile.Compare(before, after)
}
