package conferr

import (
	"context"
	"fmt"

	"conferr/internal/core"
	"conferr/internal/profile"
)

// RunOption configures one Runner.Run (or Campaign.RunContext) call.
type RunOption = core.RunOption

// WithParallelism sets the number of campaign workers; each worker owns
// its own SUT instance built from the Runner's factory. n <= 0 selects
// GOMAXPROCS; the default is 1, the paper's sequential engine.
func WithParallelism(n int) RunOption { return core.WithParallelism(n) }

// WithObserver streams every record to fn as experiments complete. Calls
// are serialized and arrive in scenario order — under parallelism the
// reassembly stage invokes fn as each record flushes into the
// deterministic, generator-ordered profile.
func WithObserver(fn func(Record)) RunOption { return core.WithObserver(fn) }

// WithKeepGoing makes infrastructure errors non-fatal: the scenario is
// recorded as not-applicable and the campaign continues.
func WithKeepGoing(keep bool) RunOption { return core.WithKeepGoing(keep) }

// WithBaselineCheck verifies the unmutated configuration starts the SUT
// and passes all functional tests before any injection.
func WithBaselineCheck() RunOption { return core.WithBaselineCheck() }

// Deadlines configures the phase watchdog (see WithDeadlines).
type Deadlines = core.Deadlines

// WithDeadlines arms the phase watchdog: every SUT phase of every
// experiment — start, each functional test, stop — is bounded by
// Deadlines.Phase, and a whole experiment's SUT time by
// Deadlines.Experiment. A phase exceeding its deadline is abandoned, the
// experiment records the InfrastructureError outcome with the phase and
// elapsed time in its detail, the worker's instance is quarantined (next
// start is cold), and the campaign continues. The zero value disables
// the watchdog entirely.
func WithDeadlines(d Deadlines) RunOption { return core.WithDeadlines(d) }

// Runner executes campaigns of one generator against one target family,
// sequentially or in parallel. The zero value is not usable; construct it
// with NewRunner or NewRunnerFor.
//
// The faultload is generated once, from the primary target (built at Port)
// — so scenario IDs, mutated bytes and profiles are identical whatever the
// parallelism — and then fanned out over the workers, each running its own
// SUT instance from the same factory.
type Runner struct {
	// Factory builds the target; once for the primary plus once per
	// additional worker.
	Factory TargetFactory
	// Generator is the error-generator plugin.
	Generator Generator
	// Port is where the primary target listens (0 = allocate). Experiments
	// pin it so faultloads that typo the port digits stay reproducible.
	Port int
	// Lifecycle selects how worker SUTs are driven through experiments:
	// LifecycleCold (default) starts and stops the SUT around every
	// experiment; LifecycleReload keeps pooled instances warm and swaps
	// configurations in place; LifecycleValidate only parse-checks them.
	// Reload-mode profiles are byte-identical to cold ones; validate mode
	// trades functional-test coverage for speed (see the README's "SUT
	// lifecycle" section).
	Lifecycle Lifecycle
	// PoolCounters, when non-nil, tallies the lifecycle activity of this
	// runner's campaigns (cold starts, reloads, validates, restarts, pool
	// reuse). Safe to share across runners.
	PoolCounters *LifecycleCounters
}

// NewRunner returns a Runner for the given target factory and generator.
func NewRunner(factory TargetFactory, gen Generator) *Runner {
	return &Runner{Factory: factory, Generator: gen}
}

// NewRunnerFor resolves the target and generator from the registry by
// name. opts.System is overwritten with the system name so that
// system-specific generators resolve their view against the right target.
func NewRunnerFor(system, plugin string, opts GeneratorOptions) (*Runner, error) {
	tf, err := LookupTarget(system)
	if err != nil {
		return nil, err
	}
	gf, err := LookupGenerator(plugin)
	if err != nil {
		return nil, err
	}
	opts.System = system
	gen, err := gf(opts)
	if err != nil {
		return nil, err
	}
	return &Runner{Factory: tf, Generator: gen}, nil
}

// Run executes the campaign under ctx. See Campaign.RunContext for the
// cancellation and error contract; the returned profile is scenario-
// ordered and deterministic for a fixed faultload whatever the worker
// count.
func (r *Runner) Run(ctx context.Context, opts ...RunOption) (*Profile, error) {
	c, coreOpts, cleanup, err := r.campaign(opts)
	if err != nil {
		return &profile.Profile{}, err
	}
	prof, err := c.RunContext(ctx, coreOpts...)
	if cerr := runCleanup(cleanup); cerr != nil && err == nil {
		err = cerr
	}
	return prof, err
}

// RunStream executes the campaign with the faultload pulled lazily from
// the generator and every record flushed to sink in scenario order as it
// completes — no scenario slice, no in-memory profile, so campaign size is
// bounded by the stream rather than by RAM. It returns the number of
// records flushed; see Campaign.RunStream for the full contract.
func (r *Runner) RunStream(ctx context.Context, sink Sink, opts ...RunOption) (int, error) {
	c, coreOpts, cleanup, err := r.campaign(opts)
	if err != nil {
		return 0, err
	}
	n, err := c.RunStream(ctx, sink, coreOpts...)
	if cerr := runCleanup(cleanup); cerr != nil && err == nil {
		err = cerr
	}
	return n, err
}

// runCleanup invokes a possibly-nil per-run cleanup.
func runCleanup(cleanup func() error) error {
	if cleanup == nil {
		return nil
	}
	return cleanup()
}

// campaign builds the core campaign around a fresh primary target, wiring
// the per-worker factory — port-remapping, pool-backed when a lifecycle
// is selected — in front of the caller's options. The returned cleanup
// (nil for cold runs) closes the worker pool and must run after the
// campaign.
func (r *Runner) campaign(opts []RunOption) (*core.Campaign, []RunOption, func() error, error) {
	primary, err := r.Factory(r.Port)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("conferr: building primary target: %w", err)
	}
	c := &core.Campaign{
		Target:    primary.Target,
		Generator: r.Generator,
	}
	factory, cleanup := lifecycleFactory(r.Factory, primary, r.Lifecycle, r.PoolCounters)
	coreOpts := make([]RunOption, 0, len(opts)+1)
	coreOpts = append(coreOpts, core.WithTargetFactory(factory))
	coreOpts = append(coreOpts, opts...)
	return c, coreOpts, cleanup, nil
}
