package conferr

import (
	"strings"
	"testing"

	"conferr/internal/core"
	"conferr/internal/plugins/semantic"
	"conferr/internal/plugins/structural"
)

// TestBaselines verifies that every simulated target starts and passes its
// functional tests on its unmutated default configuration — the
// precondition for any campaign to be meaningful.
func TestBaselines(t *testing.T) {
	// Every registry entry, so a new target cannot merge with a broken
	// default configuration.
	for _, label := range RegisteredTargets() {
		t.Run(label, func(t *testing.T) {
			factory, err := LookupTarget(label)
			if err != nil {
				t.Fatal(err)
			}
			tgt, err := factory(0)
			if err != nil {
				t.Fatal(err)
			}
			c := &Campaign{Target: tgt.Target, Generator: TypoGenerator(TypoOptions{})}
			if err := c.Baseline(); err != nil {
				t.Fatalf("baseline: %v", err)
			}
		})
	}
}

// TestTable1Shape runs the §5.2 experiment and asserts the qualitative
// findings of the paper's Table 1:
//
//   - MySQL and Postgres detect most injected typos at startup, Apache
//     detects far fewer;
//   - MySQL's startup-detection share is at least Postgres's (case-
//     sensitive names catch case-alteration typos Postgres ignores);
//   - only Apache has a meaningful share of functional-test detections
//     (Listen port typos);
//   - Apache ignores the majority of injections.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	res, err := RunTable1(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	my, pg, ap := res.Summaries["MySQL"], res.Summaries["Postgres"], res.Summaries["Apache"]
	t.Logf("\n%s", res.Format())

	rate := func(s Summary) float64 {
		if s.Injected == 0 {
			return 0
		}
		return float64(s.AtStartup) / float64(s.Injected)
	}
	if my.Injected < 200 || pg.Injected < 60 || ap.Injected < 90 {
		t.Errorf("injection counts too small: MySQL=%d Postgres=%d Apache=%d",
			my.Injected, pg.Injected, ap.Injected)
	}
	if rate(my) < 0.55 {
		t.Errorf("MySQL startup detection %.0f%%, want majority", rate(my)*100)
	}
	if rate(pg) < 0.5 {
		t.Errorf("Postgres startup detection %.0f%%, want majority", rate(pg)*100)
	}
	if rate(my) < rate(pg) {
		t.Errorf("MySQL (%.0f%%) should detect at least as much as Postgres (%.0f%%)",
			rate(my)*100, rate(pg)*100)
	}
	if rate(ap) > rate(pg)-0.1 {
		t.Errorf("Apache (%.0f%%) should detect far less than Postgres (%.0f%%)",
			rate(ap)*100, rate(pg)*100)
	}
	if ap.ByTest == 0 {
		t.Error("Apache should have functional-test detections (Listen port typos)")
	}
	if float64(ap.Ignored)/float64(ap.Injected) < 0.4 {
		t.Errorf("Apache should ignore a large share, got %d/%d", ap.Ignored, ap.Injected)
	}
}

// TestTable2Shape asserts the paper's Table 2 cells.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	res, err := RunTable2(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	want := map[string]map[string]string{
		"MySQL": {
			structural.VariationSectionOrder:   SupportYes,
			structural.VariationDirectiveOrder: SupportYes,
			structural.VariationSpaces:         SupportYes,
			structural.VariationMixedCase:      SupportNo,
			structural.VariationTruncatedNames: SupportYes,
		},
		"Postgres": {
			structural.VariationSectionOrder:   SupportNA,
			structural.VariationDirectiveOrder: SupportYes,
			structural.VariationSpaces:         SupportYes,
			structural.VariationMixedCase:      SupportYes,
			structural.VariationTruncatedNames: SupportNo,
		},
		"Apache": {
			structural.VariationSectionOrder:   SupportNA,
			structural.VariationDirectiveOrder: SupportYes,
			structural.VariationSpaces:         SupportYes,
			structural.VariationMixedCase:      SupportYes,
			structural.VariationTruncatedNames: SupportNo,
		},
	}
	for sys, rows := range want {
		for class, cell := range rows {
			if got := res.Support[sys][class]; got != cell {
				t.Errorf("%s / %s = %q, want %q", sys, class, got, cell)
			}
		}
	}
	if got := res.SatisfiedPercent("MySQL"); got != 80 {
		t.Errorf("MySQL satisfied = %d%%, want 80%%", got)
	}
	if got := res.SatisfiedPercent("Postgres"); got != 75 {
		t.Errorf("Postgres satisfied = %d%%, want 75%%", got)
	}
	if got := res.SatisfiedPercent("Apache"); got != 75 {
		t.Errorf("Apache satisfied = %d%%, want 75%%", got)
	}
}

// TestTable3Shape asserts the paper's Table 3 cells, including the N/A
// entries arising from tinydns's combined "=" directive.
func TestTable3Shape(t *testing.T) {
	res, err := RunTable3(false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	want := map[string]map[string]string{
		semantic.ClassMissingPTR: {"BIND": NotFound, "djbdns": NotInjectable},
		semantic.ClassPTRToCNAME: {"BIND": NotFound, "djbdns": NotInjectable},
		semantic.ClassCNAMEDupNS: {"BIND": Found, "djbdns": NotFound},
		semantic.ClassMXToCNAME:  {"BIND": Found, "djbdns": NotFound},
	}
	for class, rows := range want {
		for sys, cell := range rows {
			if got := res.Cells[class][sys]; got != cell {
				t.Errorf("%s / %s = %q, want %q", class, sys, got, cell)
			}
		}
	}
}

// TestFigure3Shape asserts the paper's Figure 3 finding: Postgres detects
// more than 75% of value typos for a large share of its directives, while
// MySQL detects less than 25% for a large share of its.
func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	res, err := RunFigure3(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	var pg, my Banding
	for _, b := range res.Bandings {
		switch b.System {
		case "Postgresql":
			pg = b
		case "MySQL":
			my = b
		}
	}
	if pg.Directives < 20 || my.Directives < 15 {
		t.Fatalf("too few directives measured: pg=%d my=%d", pg.Directives, my.Directives)
	}
	// Postgres: excellent is its biggest band and covers a large share.
	if pg.Share[Excellent] < 0.30 {
		t.Errorf("Postgres excellent share = %.0f%%, want >= 30%%", pg.Share[Excellent]*100)
	}
	// MySQL: poor covers a large share.
	if my.Share[Poor] < 0.30 {
		t.Errorf("MySQL poor share = %.0f%%, want >= 30%%", my.Share[Poor]*100)
	}
	// Cross-system dominance, the headline of §5.5.
	if pg.Share[Excellent] <= my.Share[Excellent] {
		t.Errorf("Postgres excellent (%.0f%%) should exceed MySQL's (%.0f%%)",
			pg.Share[Excellent]*100, my.Share[Excellent]*100)
	}
	if my.Share[Poor] <= pg.Share[Poor] {
		t.Errorf("MySQL poor (%.0f%%) should exceed Postgres's (%.0f%%)",
			my.Share[Poor]*100, pg.Share[Poor]*100)
	}
}

// TestPaperFindingsInProfiles spot-checks that the §5.2 flaw findings
// surface in actual campaign profiles.
func TestPaperFindingsInProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	// MySQL: there must be ignored value typos on numeric directives
	// (clamping/prefix-parse flaws).
	spec := Table1Specs()["MySQL"]
	p, err := RunTable1System(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	ignoredValueTypos := 0
	for _, rec := range p.Records {
		if strings.HasPrefix(rec.Class, "typo/") && rec.Outcome == Ignored {
			ignoredValueTypos++
		}
	}
	if ignoredValueTypos == 0 {
		t.Error("MySQL profile shows no ignored typos; the silent-acceptance flaws are not surfacing")
	}
}

// TestDetectionByClassRendering exercises the per-class ablation view.
func TestDetectionByClassRendering(t *testing.T) {
	tgt, err := PostgresTargetAt(0)
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{
		Target:    tgt.Target,
		Generator: TypoGenerator(TypoOptions{Seed: 3, PerModel: 5}),
	}
	p, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := DetectionByClass(p)
	if !strings.Contains(out, "typo/") || !strings.Contains(out, "injected=") {
		t.Errorf("DetectionByClass output:\n%s", out)
	}
}

// TestStructuralCampaign runs the structural fault plugin end to end
// against Apache, whose context-restricted directives make misplacement
// detectable ("... not allowed here") while most omissions and
// duplications are silently absorbed.
func TestStructuralCampaign(t *testing.T) {
	tgt, err := ApacheTargetAt(0)
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{
		Target:    tgt.Target,
		Generator: StructuralGenerator(StructuralOptions{Seed: 5, PerClass: 15, Sections: true}),
	}
	p, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	counts := p.CountByOutcome()
	if counts[Ignored] == 0 {
		t.Error("structural campaign: expected some ignored faults (harmless duplications)")
	}
	if counts[DetectedAtStartup] == 0 {
		t.Error("structural campaign: expected some startup detections (misplaced directives)")
	}
}

// TestSemanticExtendedClasses runs the extended RFC-1912 classes.
func TestSemanticExtendedClasses(t *testing.T) {
	res, err := RunTable3(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != len(semantic.AllClasses()) {
		t.Errorf("classes = %d", len(res.Classes))
	}
	// The address-as-cname fault on djbdns mutates one half of a '='
	// directive — inexpressible.
	if got := res.Cells[semantic.ClassAddressInCNAME]["djbdns"]; got != NotInjectable {
		t.Errorf("address-as-cname on djbdns = %q, want N/A", got)
	}
	// On BIND it is expressible and refused (CNAME and other data ... or
	// MX/NS target checks), i.e. found.
	if got := res.Cells[semantic.ClassAddressInCNAME]["BIND"]; !strings.HasPrefix(got, Found) {
		t.Errorf("address-as-cname on BIND = %q, want found", got)
	}
}

// TestCampaignObserverIntegration checks the observer hook at the facade
// level.
func TestCampaignObserverIntegration(t *testing.T) {
	tgt, err := DjbdnsTargetAt(0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	c := &core.Campaign{
		Target:    tgt.Target,
		Generator: SemanticDNSGenerator(DjbdnsRecordView(), []string{semantic.ClassMXToCNAME}),
		Observer:  func(Record) { n++ },
	}
	p, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(p.Records) || n == 0 {
		t.Errorf("observer calls = %d, records = %d", n, len(p.Records))
	}
}

// TestEditBenchmarkShape runs the §5.5 configuration-process benchmark
// and asserts its headline: Postgres detects more near-edit typos than
// MySQL.
func TestEditBenchmarkShape(t *testing.T) {
	res, err := RunEditBenchmark(DefaultSeed, 20)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	pg, my := res.Rates["Postgres"], res.Rates["MySQL"]
	if pg <= my {
		t.Errorf("Postgres (%.0f%%) should detect more near-edit typos than MySQL (%.0f%%)",
			pg*100, my*100)
	}
	if pg < 0.4 {
		t.Errorf("Postgres near-edit detection %.0f%%, implausibly low", pg*100)
	}
	// The clean-edit control path: an edit without a typo must be accepted.
	tgt, err := PostgresTargetAt(0)
	if err != nil {
		t.Fatal(err)
	}
	gen := EditBenchmarkGenerator([]Edit{{Directive: "max_connections", NewValue: "123"}}, 1, 1)
	eg, ok := gen.(interface{ Name() string })
	if !ok || eg.Name() != "editsim" {
		t.Fatal("unexpected generator")
	}
	_ = tgt
}

// TestBorrowCampaign exercises the §2.2 rule-based "borrowing" error:
// Postgres directives inserted into MySQL's my.cnf. Most are unknown
// variables (detected); directives whose names both systems share (e.g.
// max_connections) slip through — the realistic hazard of transferring a
// mental model between systems.
func TestBorrowCampaign(t *testing.T) {
	donor, err := PostgresTargetAt(0)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := MySQLTargetAt(0)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := BorrowGenerator(donor, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{Target: tgt.Target, Generator: gen}
	prof, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	counts := prof.CountByOutcome()
	if counts[DetectedAtStartup] == 0 {
		t.Error("foreign directives should mostly be unknown variables")
	}
	if counts[Ignored] == 0 {
		t.Error("shared directive names (e.g. max_connections, port) should slip through")
	}
	if counts[DetectedAtStartup] <= counts[Ignored] {
		t.Errorf("most borrowed directives should be detected: detected=%d ignored=%d",
			counts[DetectedAtStartup], counts[Ignored])
	}
}

// TestCampaignReplayDeterminism: two campaigns with the same seed produce
// identical profiles — the property the benchmark character of the tool
// depends on.
func TestCampaignReplayDeterminism(t *testing.T) {
	runOnce := func() *Profile {
		tgt, err := PostgresTargetAt(25499)
		if err != nil {
			t.Fatal(err)
		}
		c := &Campaign{
			Target:    tgt.Target,
			Generator: TypoGenerator(TypoOptions{Seed: 21, PerModel: 10}),
		}
		p, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := runOnce(), runOnce()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.ScenarioID != rb.ScenarioID || ra.Outcome != rb.Outcome {
			t.Errorf("record %d differs: %s/%v vs %s/%v",
				i, ra.ScenarioID, ra.Outcome, rb.ScenarioID, rb.Outcome)
		}
	}
}

// TestStrictModeImprovement quantifies the resilience impact of a design
// change — the paper's "prompt feedback during development" use case:
// MySQL with the simple checks the profile suggests (strict mode) detects
// strictly more of the same faultload, with zero regressions.
func TestStrictModeImprovement(t *testing.T) {
	const port = 23399
	runWith := func(newTarget func(int) (*SystemTarget, error)) *Profile {
		tgt, err := newTarget(port)
		if err != nil {
			t.Fatal(err)
		}
		c := &Campaign{
			Target:    tgt.Target,
			Generator: TypoGenerator(TypoOptions{Seed: 13, ValuesOnly: true, PerDirective: 10}),
		}
		p, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	before := runWith(MySQLTargetAt)
	after := runWith(MySQLStrictTargetAt)
	cmp := CompareProfiles(before, after)
	if len(cmp.OnlyBefore) != 0 || len(cmp.OnlyAfter) != 0 {
		t.Fatalf("faultload drift: onlyBefore=%d onlyAfter=%d", len(cmp.OnlyBefore), len(cmp.OnlyAfter))
	}
	if len(cmp.Regressed) != 0 {
		t.Errorf("strict mode regressed %d scenarios: %v", len(cmp.Regressed), cmp.Regressed)
	}
	if len(cmp.Improved) == 0 {
		t.Error("strict mode improved nothing; the checks are inert")
	}
	t.Logf("strict mode: %d improved, %d unchanged, %d regressed",
		len(cmp.Improved), cmp.Unchanged, len(cmp.Regressed))
}

// TestLatentSharedConfigErrors quantifies the §5.2 shared-file flaw: the
// same faultload over the shared my.cnf goes partly undetected unless the
// auxiliary tools actually run. The delta between the two campaigns is
// the latent-error exposure.
func TestLatentSharedConfigErrors(t *testing.T) {
	runShared := func(withToolChecks bool) *Profile {
		tgt, err := MySQLSharedFactory(withToolChecks)(0)
		if err != nil {
			t.Fatal(err)
		}
		c := &Campaign{
			Target:    tgt.Target,
			Generator: TypoGenerator(TypoOptions{Seed: 31, NamesOnly: true, PerDirective: 8}),
		}
		p, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	without := runShared(false)
	with := runShared(true)

	// Without tool checks, name typos in the aux groups are silently
	// absorbed at startup AND by the server functional test.
	ignoredWithout := without.CountByOutcome()[Ignored]
	if ignoredWithout == 0 {
		t.Fatal("expected latent (ignored) faults in the shared config")
	}
	// With tool checks, a chunk of those become detected-by-test.
	byTest := with.CountByOutcome()[DetectedByTest]
	if byTest == 0 {
		t.Fatal("tool checks detected nothing; latent mechanism broken")
	}
	ignoredWith := with.CountByOutcome()[Ignored]
	if ignoredWith >= ignoredWithout {
		t.Errorf("tool checks did not reduce ignored faults: %d -> %d", ignoredWithout, ignoredWith)
	}
	t.Logf("latent faults: %d ignored without tool runs; %d surfaced when tools run",
		ignoredWithout, byTest)
}
