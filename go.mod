module conferr

go 1.24
