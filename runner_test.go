package conferr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"conferr/internal/profile"
)

// Ports used by this file; distinct from every other fixed port in the
// repo so packages can run their tests concurrently.
const (
	runnerTestMySQLPort    = 23910
	runnerTestPostgresPort = 23911
	runnerTestApachePort   = 23912
)

// canonicalProfile renders everything of a profile that must be identical
// across worker counts: identity plus, per record in order, the scenario
// ID, class, outcome and detail (durations legitimately vary run to run).
func canonicalProfile(p *Profile) string {
	var b strings.Builder
	b.WriteString(p.System + "/" + p.Generator + "\n")
	for _, r := range p.Records {
		b.WriteString(r.ScenarioID + "|" + r.Class + "|" + r.Outcome.String() + "|" + r.Detail + "\n")
	}
	return b.String()
}

// TestRunnerParallelDeterminism is the headline contract of the redesign,
// exercised against the real simulators: an 8-worker MySQL typo campaign
// — whose faultload includes typos in the port digits, the hard case for
// per-worker SUT instances — must produce a byte-identical, scenario-
// ordered profile to the 1-worker run. Run under -race this also proves
// the whole facade fan-out (port remapping included) is data-race free.
func TestRunnerParallelDeterminism(t *testing.T) {
	// Generators hold internal RNG state consumed during generation, so
	// each run gets a fresh instance; the seed makes them identical.
	cases := []struct {
		name    string
		factory TargetFactory
		gen     func() Generator
		port    int
	}{
		{"mysql-typo", MySQLTargetAt,
			func() Generator {
				return TypoGenerator(TypoOptions{Seed: DefaultSeed, PerModel: 40})
			}, runnerTestMySQLPort},
		{"postgres-value-typo", PostgresTargetAt,
			func() Generator {
				return TypoGenerator(TypoOptions{Seed: DefaultSeed, ValuesOnly: true, PerDirective: 10})
			}, runnerTestPostgresPort},
		{"apache-structural", ApacheTargetAt,
			func() Generator {
				return StructuralGenerator(StructuralOptions{Seed: DefaultSeed, Sections: true, PerClass: 15})
			}, runnerTestApachePort},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) string {
				r := &Runner{Factory: tc.factory, Generator: tc.gen(), Port: tc.port}
				p, err := r.Run(context.Background(), WithParallelism(workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if len(p.Records) == 0 {
					t.Fatalf("workers=%d: empty profile", workers)
				}
				return canonicalProfile(p)
			}
			seq := run(1)
			par := run(8)
			if seq != par {
				t.Errorf("8-worker profile diverged from sequential:\n%s", firstDiff(seq, par))
			}
		})
	}
}

// firstDiff locates the first differing line of two renderings, keeping
// failure output readable.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  seq: %s\n  par: %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("profiles differ in length: %d vs %d lines", len(al), len(bl))
}

// TestRunnerSummaryStableAcrossWorkerCounts pins the acceptance criterion
// at the API level: detection counts must not move with the worker count.
func TestRunnerSummaryStableAcrossWorkerCounts(t *testing.T) {
	var base Summary
	for i, workers := range []int{1, 2, 4, 8} {
		r := &Runner{
			Factory:   MySQLTargetAt,
			Generator: TypoGenerator(TypoOptions{Seed: DefaultSeed, PerModel: 25}),
			Port:      runnerTestMySQLPort,
		}
		p, err := r.Run(context.Background(), WithParallelism(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		s := p.Summarize()
		if i == 0 {
			base = s
			continue
		}
		if s != base {
			t.Errorf("workers=%d: summary %+v != workers=1 summary %+v", workers, s, base)
		}
	}
}

func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	r := &Runner{
		Factory:   PostgresTargetAt,
		Generator: TypoGenerator(TypoOptions{Seed: 1}),
		Port:      runnerTestPostgresPort,
	}
	prof, err := r.Run(ctx,
		WithParallelism(4),
		WithObserver(func(profile.Record) {
			seen++
			if seen == 5 {
				cancel()
			}
		}))
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The profile covers what completed; a full postgres typo faultload has
	// hundreds of scenarios, so a cancellation at record 5 must cut it short.
	if len(prof.Records) > 100 {
		t.Errorf("cancellation left %d records, expected a truncated profile", len(prof.Records))
	}
}

func TestLookupTargetErrors(t *testing.T) {
	if _, err := LookupTarget("nope"); err == nil || !strings.Contains(err.Error(), "available:") {
		t.Errorf("err = %v, want unknown-system error listing alternatives", err)
	}
	if _, err := LookupTarget(""); err == nil {
		t.Error("empty target name accepted")
	}
	if _, err := LookupGenerator("nope"); err == nil || !strings.Contains(err.Error(), "available:") {
		t.Errorf("err = %v, want unknown-plugin error listing alternatives", err)
	}
}

func TestRegistryBuiltins(t *testing.T) {
	for _, want := range []string{"mysql", "mysql-full", "mysql-strict", "mysql-shared",
		"mysql-shared-tools", "postgres", "postgres-full", "apache", "bind", "djbdns"} {
		if _, err := LookupTarget(want); err != nil {
			t.Errorf("LookupTarget(%q): %v", want, err)
		}
	}
	for _, want := range []string{"typo", "structural", "variations", "semantic"} {
		if _, err := LookupGenerator(want); err != nil {
			t.Errorf("LookupGenerator(%q): %v", want, err)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterTarget did not panic")
		}
	}()
	RegisterTarget("mysql", MySQLTargetAt)
}

func TestRegisterCustomTarget(t *testing.T) {
	RegisterTarget("mysql-custom-for-test", MySQLStrictTargetAt)
	f, err := LookupTarget("mysql-custom-for-test")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := f(0)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.System.Name() == "" {
		t.Error("custom target has no system name")
	}
	found := false
	for _, name := range RegisteredTargets() {
		if name == "mysql-custom-for-test" {
			found = true
		}
	}
	if !found {
		t.Error("custom target missing from RegisteredTargets")
	}
}

func TestNewRunnerForWrongPairing(t *testing.T) {
	if _, err := NewRunnerFor("mysql", "semantic", GeneratorOptions{}); err == nil ||
		!strings.Contains(err.Error(), "bind or djbdns") {
		t.Errorf("err = %v, want semantic pairing error", err)
	}
	if _, err := NewRunnerFor("nope", "typo", GeneratorOptions{}); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := NewRunnerFor("mysql", "nope", GeneratorOptions{}); err == nil {
		t.Error("unknown plugin accepted")
	}
}

func TestNewRunnerForSemanticCampaign(t *testing.T) {
	// The semantic generator is stateless, so one runner can serve both
	// runs; DNS targets bind their own per-instance ports.
	r, err := NewRunnerFor("djbdns", "semantic", GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	par, err := r.Run(context.Background(), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if canonicalProfile(seq) != canonicalProfile(par) {
		t.Error("semantic campaign diverged across worker counts")
	}
}

func TestReplaceNumber(t *testing.T) {
	cases := []struct{ s, from, to, want string }{
		{"port = 23306", "23306", "54012", "port = 54012"},
		{"port = 2330", "23306", "54012", "port = 2330"},     // typo'd prefix
		{"port = 233066", "23306", "54012", "port = 233066"}, // typo'd duplication
		{"port = 123306", "23306", "54012", "port = 123306"}, // embedded
		{"dial 127.0.0.1:23306: refused", "23306", "54012", "dial 127.0.0.1:54012: refused"},
		{"23306 and 23306", "23306", "54012", "54012 and 54012"},
		{"", "23306", "54012", ""},
		{"x", "", "54012", "x"},
	}
	for _, tc := range cases {
		if got := replaceNumber(tc.s, tc.from, tc.to); got != tc.want {
			t.Errorf("replaceNumber(%q, %q, %q) = %q, want %q", tc.s, tc.from, tc.to, got, tc.want)
		}
	}
}
