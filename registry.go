package conferr

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// This file implements the name-based registry that replaces the
// per-caller switch statements the CLI, the experiment harness, cmd/sutd
// and the examples used to carry. Built-in systems and plugins register
// themselves below; external code can add its own with RegisterTarget and
// RegisterGenerator (for example a ProcessSystem-backed target for a real
// server binary) and every registry-driven entry point picks them up.

// GeneratorOptions parameterizes a registered generator factory. Factories
// read the fields they understand and ignore the rest; zero values select
// each plugin's defaults.
type GeneratorOptions struct {
	// System is the registered target name the generator will run against;
	// system-specific generators (semantic) use it to pick their view.
	System string
	// Seed makes the faultload reproducible.
	Seed int64
	// PerModel bounds typo scenarios per submodel (0 = all).
	PerModel int
	// PerDirective bounds typo scenarios per directive (0 = off).
	PerDirective int
	// PerClass bounds structural/variation scenarios per class (0 = all).
	PerClass int
	// Classes restricts class-driven generators (variations, semantic) to
	// the named classes (nil = all).
	Classes []string
}

// GeneratorFactory constructs an error generator from options. Factories
// are the value stored in the generator registry.
type GeneratorFactory func(opts GeneratorOptions) (Generator, error)

var registry = struct {
	mu      sync.RWMutex
	targets map[string]TargetFactory
	gens    map[string]GeneratorFactory
}{
	targets: make(map[string]TargetFactory),
	gens:    make(map[string]GeneratorFactory),
}

// RegisterTarget makes a target factory available under the given name to
// every registry-driven entry point (LookupTarget, NewRunnerFor, the CLI's
// -system flag, cmd/sutd). It panics on an empty name, a nil factory, or a
// duplicate registration — all programmer errors.
func RegisterTarget(name string, f TargetFactory) {
	if name == "" || f == nil {
		panic("conferr: RegisterTarget with empty name or nil factory")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.targets[name]; dup {
		panic(fmt.Sprintf("conferr: RegisterTarget called twice for %q", name))
	}
	registry.targets[name] = f
}

// LookupTarget returns the target factory registered under name. The error
// of an unknown name lists what is available.
func LookupTarget(name string) (TargetFactory, error) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	if name == "" {
		return nil, fmt.Errorf("conferr: no target system given (available: %s)", joinNames(registry.targets))
	}
	f, ok := registry.targets[name]
	if !ok {
		return nil, fmt.Errorf("conferr: unknown system %q (available: %s)", name, joinNames(registry.targets))
	}
	return f, nil
}

// RegisteredTargets returns the sorted names of every registered target.
func RegisteredTargets() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return sortedKeys(registry.targets)
}

// RegisterGenerator makes a generator factory available under the given
// name. Same contract as RegisterTarget.
func RegisterGenerator(name string, f GeneratorFactory) {
	if name == "" || f == nil {
		panic("conferr: RegisterGenerator with empty name or nil factory")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.gens[name]; dup {
		panic(fmt.Sprintf("conferr: RegisterGenerator called twice for %q", name))
	}
	registry.gens[name] = f
}

// LookupGenerator returns the generator factory registered under name.
func LookupGenerator(name string) (GeneratorFactory, error) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	f, ok := registry.gens[name]
	if !ok {
		return nil, fmt.Errorf("conferr: unknown plugin %q (available: %s)", name, joinNames(registry.gens))
	}
	return f, nil
}

// RegisteredGenerators returns the sorted names of every registered
// generator.
func RegisteredGenerators() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return sortedKeys(registry.gens)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func joinNames[V any](m map[string]V) string {
	return strings.Join(sortedKeys(m), ", ")
}

// Built-in registrations: the five simulated systems of the paper's
// evaluation plus their experiment variants, the two extension systems
// (nginx on the nested-block nginxconf codec, redisd reusing the kv
// codec), and the three error-generator plugins (+ the Table 2
// variations model).
func init() {
	RegisterTarget("mysql", MySQLTargetAt)
	RegisterTarget("mysql-full", MySQLFullTargetAt)
	RegisterTarget("mysql-strict", MySQLStrictTargetAt)
	RegisterTarget("mysql-shared", MySQLSharedFactory(false))
	RegisterTarget("mysql-shared-tools", MySQLSharedFactory(true))
	RegisterTarget("postgres", PostgresTargetAt)
	RegisterTarget("postgres-full", PostgresFullTargetAt)
	RegisterTarget("apache", ApacheTargetAt)
	RegisterTarget("nginx", NginxTargetAt)
	RegisterTarget("redisd", RedisdTargetAt)
	RegisterTarget("bind", BINDTargetAt)
	RegisterTarget("djbdns", DjbdnsTargetAt)

	RegisterGenerator("typo", func(o GeneratorOptions) (Generator, error) {
		return TypoGenerator(TypoOptions{
			Seed: o.Seed, PerModel: o.PerModel, PerDirective: o.PerDirective,
		}), nil
	})
	RegisterGenerator("structural", func(o GeneratorOptions) (Generator, error) {
		return StructuralGenerator(StructuralOptions{
			Seed: o.Seed, PerClass: o.PerClass, Sections: true,
		}), nil
	})
	RegisterGenerator("variations", func(o GeneratorOptions) (Generator, error) {
		perClass := o.PerClass
		if perClass == 0 {
			perClass = 10
		}
		return VariationsGenerator(o.Seed, perClass, o.Classes), nil
	})
	RegisterGenerator("semantic", func(o GeneratorOptions) (Generator, error) {
		switch o.System {
		case "bind":
			return SemanticDNSGenerator(BINDRecordView(), o.Classes), nil
		case "djbdns":
			return SemanticDNSGenerator(DjbdnsRecordView(), o.Classes), nil
		default:
			return nil, fmt.Errorf("semantic plugin applies to bind or djbdns, not %q", o.System)
		}
	})
}
