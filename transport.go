package conferr

import (
	"conferr/internal/memnet"
	"conferr/internal/suts"
)

// InMemoryTransport wraps a target factory so every SUT it builds serves
// its listeners — and dials its functional-test probes — over a private
// in-process network (internal/memnet) instead of kernel loopback TCP.
// Each built target gets its own network namespace, so worker SUTs can
// never collide on a port no matter how the faultload typos one; the
// engine's bind-retry and detection logic still behave identically
// because memnet words its errors exactly like the kernel. Systems that
// do not implement suts.TransportSetter (the DNS targets, whose liveness
// probes speak real UDP/TCP) pass through unchanged and keep the kernel
// transport.
//
// Profiles are byte-identical to kernel-TCP runs; the wrapper composes
// with every lifecycle mode, so
//
//	r := &Runner{Factory: InMemoryTransport(NginxTargetAt), ...}
//
// runs warm-reload campaigns that never touch a socket.
func InMemoryTransport(f TargetFactory) TargetFactory {
	return func(port int) (*SystemTarget, error) {
		st, err := f(port)
		if err != nil {
			return nil, err
		}
		if ts, ok := st.System.(suts.TransportSetter); ok {
			ts.SetTransport(memnet.New())
		}
		return st, nil
	}
}
