package conferr

import (
	"context"
	"testing"
)

const transportTestNginxPort = 23944

// TestInMemoryTransportMatchesTCP pins the in-process transport's
// contract: a campaign over InMemoryTransport produces a profile
// byte-identical to the same campaign over kernel loopback TCP —
// startup rejections, bind collisions and functional-test failures
// word their details exactly alike.
func TestInMemoryTransportMatchesTCP(t *testing.T) {
	gen := func() Generator {
		return TypoGenerator(TypoOptions{Seed: DefaultSeed, PerModel: 30})
	}
	tcp := func() string {
		r := &Runner{Factory: NginxTargetAt, Generator: gen(), Port: transportTestNginxPort}
		p, err := r.Run(context.Background())
		if err != nil {
			t.Fatalf("tcp: %v", err)
		}
		if len(p.Records) == 0 {
			t.Fatal("tcp: empty profile")
		}
		return canonicalProfile(p)
	}()
	for _, workers := range []int{1, 4} {
		r := &Runner{
			Factory: InMemoryTransport(NginxTargetAt), Generator: gen(),
			Port: transportTestNginxPort,
		}
		p, err := r.Run(context.Background(), WithParallelism(workers))
		if err != nil {
			t.Fatalf("memnet workers=%d: %v", workers, err)
		}
		if got := canonicalProfile(p); got != tcp {
			t.Errorf("memnet workers=%d diverged from tcp:\n%s",
				workers, firstDiff(tcp, got))
		}
	}
}

// TestInMemoryTransportWithReload composes the two tentpole pieces:
// warm-reload pooling over the in-process transport still matches the
// cold TCP profile, and the pool actually reloads.
func TestInMemoryTransportWithReload(t *testing.T) {
	gen := func() Generator {
		return TypoGenerator(TypoOptions{Seed: DefaultSeed, PerModel: 30})
	}
	cold, err := (&Runner{Factory: NginxTargetAt, Generator: gen(), Port: transportTestNginxPort}).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	counters := &LifecycleCounters{}
	warm, err := (&Runner{
		Factory: InMemoryTransport(NginxTargetAt), Generator: gen(),
		Port:      transportTestNginxPort,
		Lifecycle: LifecycleReload, PoolCounters: counters,
	}).Run(context.Background(), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if canonicalProfile(cold) != canonicalProfile(warm) {
		t.Errorf("memnet+reload diverged from cold tcp:\n%s",
			firstDiff(canonicalProfile(cold), canonicalProfile(warm)))
	}
	if snap := counters.Snapshot(); snap.Reloads == 0 {
		t.Errorf("no reloads over memnet (%s)", snap)
	}
}
