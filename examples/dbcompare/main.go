// dbcompare reproduces the paper's §5.5 comparison (Figure 3): which
// database is more resilient to typos in configuration values, MySQL or
// Postgres?
//
// For every directive of each system's full configuration (booleans
// excluded, as in the paper), 20 value typos are injected; the
// per-directive detection rates are then banded into poor (0–25%
// detected), fair, good and excellent (75–100%), yielding the figure's
// distribution.
//
//	go run ./examples/dbcompare [-seed N] [-n perDirective] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"conferr"
)

func main() {
	seed := flag.Int64("seed", conferr.DefaultSeed, "faultload seed")
	n := flag.Int("n", 20, "typo experiments per directive")
	workers := flag.Int("workers", 4, "parallel campaign workers (0 = GOMAXPROCS)")
	flag.Parse()

	res, err := conferr.RunFigure3Ctx(context.Background(), *seed, *n, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbcompare:", err)
		os.Exit(1)
	}

	fmt.Println("Resilience to typos in directive values (Figure 3)")
	fmt.Println()
	fmt.Print(res.Format())
	fmt.Println()

	for _, b := range res.Bandings {
		fmt.Printf("%s: %d directives measured\n", b.System, b.Directives)
	}
	fmt.Println()

	// The paper's headline: Postgres detects >75% of typos for a large
	// share of its directives; MySQL detects <25% for a large share of
	// its — the constraint checking vs silent-acceptance gap.
	var pg, my conferr.Banding
	for _, b := range res.Bandings {
		if b.System == "MySQL" {
			my = b
		} else {
			pg = b
		}
	}
	switch {
	case pg.Share[conferr.Excellent] > my.Share[conferr.Excellent] &&
		my.Share[conferr.Poor] > pg.Share[conferr.Poor]:
		fmt.Println("Finding: Postgres is markedly more robust to configuration value")
		fmt.Println("typos than MySQL, matching the paper's conclusion.")
	default:
		fmt.Println("Finding: distributions do not show the expected dominance; inspect")
		fmt.Println("the profiles with the conferr CLI.")
	}
}
