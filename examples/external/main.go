// external demonstrates ConfErr's external-process path: the system under
// test is not an in-process simulator but a real child process — the
// sutd daemon hosting the simulated Postgres — started and stopped around
// every injection, exactly how the paper drives real server binaries.
//
// The example builds cmd/sutd, writes the initial configuration, and runs
// a typo campaign where each scenario:
//
//  1. writes the mutated postgresql.conf into a scratch directory,
//  2. spawns `sutd -system postgres -dir <dir> -port <port>`,
//  3. waits for the TCP endpoint (ready probe),
//  4. runs a create/insert/select functional test over the wire protocol,
//  5. stops the daemon (SIGTERM, then SIGKILL).
//
// A configuration the daemon rejects makes it exit non-zero with the
// complaint on stderr, which ConfErr records as detected-at-startup.
//
// The target is registered under the name "postgres-external", showing how
// external code extends the conferr registry; the campaign then runs
// through the same NewRunnerFor entry point the CLI uses.
//
//	go run ./examples/external
package main

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"conferr"
)

// port is fixed so the functional test (and typo scenarios on the port
// digits) are reproducible.
const port = 25444

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "external:", err)
		os.Exit(1)
	}
}

func run() error {
	bin, cleanup, err := buildSutd()
	if err != nil {
		return err
	}
	defer cleanup()

	defaultConf := fmt.Sprintf(`# PostgreSQL configuration file
listen_addresses = 'localhost'
port = %d
max_connections = 100
shared_buffers = 32MB
max_fsm_pages = 153600
log_destination = 'stderr'
`, port)

	// Register the process-backed target under its own name. The factory
	// builds a fresh daemon definition per call, the contract that lets a
	// registered target also serve parallel workers; here each instance
	// shares one fixed port, so the campaign runs sequentially.
	conferr.RegisterTarget("postgres-external", func(p int) (*conferr.SystemTarget, error) {
		if p == 0 {
			p = port
		}
		sys, err := conferr.ProcessSystem(conferr.ProcessOptions{
			Name:    "postgres-external",
			Command: bin,
			Args:    []string{"-system", "postgres", "-dir", "{dir}", "-port", fmt.Sprint(p)},
			DefaultFiles: map[string][]byte{
				"postgresql.conf": []byte(defaultConf),
			},
			ReadyProbe:   tcpProbe(fmt.Sprintf("127.0.0.1:%d", p)),
			ReadyTimeout: 3 * time.Second,
			StopGrace:    time.Second,
		})
		if err != nil {
			return nil, err
		}
		fmtTgt, err := conferr.PostgresTargetAt(p) // only for the format mapping
		if err != nil {
			return nil, err
		}
		return &conferr.SystemTarget{
			System: sys,
			Target: &conferr.Target{
				System:  sys,
				Formats: fmtTgt.Target.Formats,
				Tests: []conferr.Test{{
					Name: "db-roundtrip",
					Run:  func() error { return dbRoundTrip(fmt.Sprintf("127.0.0.1:%d", p)) },
				}},
			},
		}, nil
	})

	runner, err := conferr.NewRunnerFor("postgres-external", "typo",
		conferr.GeneratorOptions{Seed: 7, PerModel: 4})
	if err != nil {
		return err
	}
	runner.Port = port
	prof, err := runner.Run(context.Background(), conferr.WithBaselineCheck())
	if err != nil {
		return err
	}

	fmt.Println("External-process campaign against sutd-hosted Postgres:")
	fmt.Print(conferr.FormatTable1(prof.Summarize()))
	fmt.Println()
	fmt.Print(conferr.DetectionByClass(prof))
	return nil
}

// buildSutd compiles cmd/sutd into a temporary binary.
func buildSutd() (string, func(), error) {
	dir, err := os.MkdirTemp("", "conferr-external-*")
	if err != nil {
		return "", nil, err
	}
	bin := filepath.Join(dir, "sutd")
	cmd := exec.Command("go", "build", "-o", bin, "conferr/cmd/sutd")
	out, err := cmd.CombinedOutput()
	if err != nil {
		_ = os.RemoveAll(dir)
		return "", nil, fmt.Errorf("building sutd: %v\n%s", err, out)
	}
	return bin, func() { _ = os.RemoveAll(dir) }, nil
}

// tcpProbe reports readiness once the address accepts connections.
func tcpProbe(addr string) func() error {
	return func() error {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err != nil {
			return err
		}
		return conn.Close()
	}
}

// dbRoundTrip speaks the sqlmini wire protocol directly: one statement per
// line, replies are "ROW ..." lines terminated by "OK n" or "ERR msg".
func dbRoundTrip(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return fmt.Errorf("connect: %w", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)
	exec := func(stmt string) ([]string, error) {
		if _, err := fmt.Fprintf(conn, "%s\n", stmt); err != nil {
			return nil, err
		}
		var rows []string
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return nil, err
			}
			line = strings.TrimSpace(line)
			switch {
			case strings.HasPrefix(line, "ROW "):
				rows = append(rows, line[4:])
			case strings.HasPrefix(line, "OK"):
				return rows, nil
			case strings.HasPrefix(line, "ERR "):
				return nil, fmt.Errorf("server: %s", line[4:])
			}
		}
	}
	for _, stmt := range []string{
		"CREATE DATABASE extest",
		"USE extest",
		"CREATE TABLE t (id, name)",
		"INSERT INTO t VALUES (1, 'alpha')",
	} {
		if _, err := exec(stmt); err != nil {
			return fmt.Errorf("%s: %w", stmt, err)
		}
	}
	rows, err := exec("SELECT name FROM t WHERE id = 1")
	if err != nil {
		return err
	}
	if len(rows) != 1 || rows[0] != "alpha" {
		return fmt.Errorf("unexpected rows %v", rows)
	}
	return nil
}
