// dnssemantic reproduces the paper's §5.4 case study (Table 3): RFC-1912
// DNS misconfigurations injected into the simulated BIND and djbdns name
// servers through the system-independent record representation.
//
// The example shows the two mechanisms the paper highlights:
//
//   - BIND's zone sanity checks refuse a zone where a CNAME duplicates an
//     NS owner or an MX points at an alias ("found"), but cannot see
//     cross-zone problems like a missing PTR ("not found");
//
//   - djbdns's "=" directive defines the A and PTR records together, so
//     the missing-PTR and PTR-to-CNAME faults cannot even be expressed in
//     its data file (the table's "N/A") — while its loader performs no
//     consistency checks at all for the faults that can be expressed.
//
//     go run ./examples/dnssemantic [-extended] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"conferr"
)

func main() {
	extended := flag.Bool("extended", false, "include extension fault classes beyond the paper's four")
	workers := flag.Int("workers", 4, "parallel campaign workers (0 = GOMAXPROCS)")
	flag.Parse()

	res, err := conferr.RunTable3Ctx(context.Background(), *extended, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnssemantic:", err)
		os.Exit(1)
	}

	fmt.Println("Resilience to semantic errors (Table 3)")
	fmt.Println()
	fmt.Print(res.Format())
	fmt.Println()

	for _, sys := range res.Order {
		p := res.Profiles[sys]
		fmt.Printf("%s per-class outcomes:\n", sys)
		fmt.Print(conferr.DetectionByClass(p))
		fmt.Println()
	}
}
