// devfeedback demonstrates the paper's development-feedback use case
// (§1): using resilience profiles to quantify the reliability impact of a
// design change, before and after.
//
// The "change" here is the set of simple configuration checks the paper
// says MySQL's profile reveals it is missing: rejecting out-of-range
// values instead of clamping them, rejecting trailing junk after a size
// multiplier ("1M0"), and rejecting directives without values. The
// simulator implements them behind a strict flag, registered as the
// "mysql-strict" target; this example runs the identical typo faultload
// against both registry targets in parallel and diffs the profiles.
//
//	go run ./examples/devfeedback [-seed N] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"conferr"
)

// port is fixed so both campaigns inject a byte-identical faultload.
const port = 23466

func main() {
	seed := flag.Int64("seed", conferr.DefaultSeed, "faultload seed")
	workers := flag.Int("workers", 4, "parallel campaign workers (0 = GOMAXPROCS)")
	flag.Parse()
	if err := run(*seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "devfeedback:", err)
		os.Exit(1)
	}
}

func run(seed int64, workers int) error {
	campaign := func(system string) (*conferr.Profile, error) {
		factory, err := conferr.LookupTarget(system)
		if err != nil {
			return nil, err
		}
		r := conferr.NewRunner(factory, conferr.TypoGenerator(conferr.TypoOptions{
			Seed: seed, ValuesOnly: true, PerDirective: 15,
		}))
		r.Port = port
		return r.Run(context.Background(), conferr.WithParallelism(workers))
	}

	before, err := campaign("mysql")
	if err != nil {
		return err
	}
	after, err := campaign("mysql-strict")
	if err != nil {
		return err
	}

	fmt.Println("MySQL value-typo resilience, before vs after adding the checks")
	fmt.Println("the paper's profile suggests:")
	fmt.Println()
	sb, sa := before.Summarize(), after.Summarize()
	sb.System, sa.System = "before", "after"
	fmt.Print(conferr.FormatTable1(sb, sa))
	fmt.Println()

	cmp := conferr.CompareProfiles(before, after)
	fmt.Printf("improved:  %d scenarios now detected\n", len(cmp.Improved))
	fmt.Printf("regressed: %d scenarios no longer detected\n", len(cmp.Regressed))
	fmt.Printf("unchanged: %d scenarios\n", cmp.Unchanged)
	if len(cmp.Improved) > 0 {
		fmt.Println("\nexamples of newly detected faults:")
		for i, id := range cmp.Improved {
			if i == 5 {
				break
			}
			fmt.Println(" ", id)
		}
	}
	return nil
}
