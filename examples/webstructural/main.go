// webstructural runs the structural-errors plugin (§4.2/§5.3) against the
// simulated Apache httpd: omissions, copy-paste duplications, and
// directives moved into the wrong section — plus the Table 2
// structure-preserving variations that an ideal server should accept.
// Both campaigns resolve their target from the registry and fan out over
// parallel workers.
//
//	go run ./examples/webstructural [-seed N] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"conferr"
)

func main() {
	seed := flag.Int64("seed", conferr.DefaultSeed, "faultload seed")
	workers := flag.Int("workers", 4, "parallel campaign workers (0 = GOMAXPROCS)")
	flag.Parse()
	if err := run(*seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "webstructural:", err)
		os.Exit(1)
	}
}

func run(seed int64, workers int) error {
	ctx := context.Background()

	// Part 1: structural faults. Misplaced directives hit Apache's context
	// checks ("AllowOverride not allowed here"); harmless duplications are
	// silently absorbed; omissions mostly fall back to defaults — except
	// Listen, without which the server has no sockets.
	faults, err := conferr.NewRunnerFor("apache", "structural",
		conferr.GeneratorOptions{Seed: seed, PerClass: 20})
	if err != nil {
		return err
	}
	prof, err := faults.Run(ctx, conferr.WithParallelism(workers))
	if err != nil {
		return err
	}
	fmt.Println("Structural faults against Apache:")
	fmt.Print(conferr.DetectionByClass(prof))
	fmt.Println()

	// Part 2: structure-preserving variations (Table 2 rows for Apache).
	variations, err := conferr.NewRunnerFor("apache", "variations",
		conferr.GeneratorOptions{Seed: seed, PerClass: 10})
	if err != nil {
		return err
	}
	vprof, err := variations.Run(ctx, conferr.WithParallelism(workers))
	if err != nil {
		return err
	}
	fmt.Println("Structure-preserving variations against Apache")
	fmt.Println("(an ideal system accepts every one — 'detected' rows are rejections):")
	fmt.Print(conferr.DetectionByClass(vprof))
	return nil
}
