// webstructural runs the structural-errors plugin (§4.2/§5.3) against the
// simulated Apache httpd: omissions, copy-paste duplications, and
// directives moved into the wrong section — plus the Table 2
// structure-preserving variations that an ideal server should accept.
//
//	go run ./examples/webstructural [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"conferr"
)

func main() {
	seed := flag.Int64("seed", conferr.DefaultSeed, "faultload seed")
	flag.Parse()
	if err := run(*seed); err != nil {
		fmt.Fprintln(os.Stderr, "webstructural:", err)
		os.Exit(1)
	}
}

func run(seed int64) error {
	// Part 1: structural faults. Misplaced directives hit Apache's context
	// checks ("AllowOverride not allowed here"); harmless duplications are
	// silently absorbed; omissions mostly fall back to defaults — except
	// Listen, without which the server has no sockets.
	tgt, err := conferr.ApacheTarget()
	if err != nil {
		return err
	}
	faults := &conferr.Campaign{
		Target: tgt.Target,
		Generator: conferr.StructuralGenerator(conferr.StructuralOptions{
			Seed: seed, Sections: true, PerClass: 20,
		}),
	}
	prof, err := faults.Run()
	if err != nil {
		return err
	}
	fmt.Println("Structural faults against Apache:")
	fmt.Print(conferr.DetectionByClass(prof))
	fmt.Println()

	// Part 2: structure-preserving variations (Table 2 rows for Apache).
	tgt2, err := conferr.ApacheTarget()
	if err != nil {
		return err
	}
	variations := &conferr.Campaign{
		Target:    tgt2.Target,
		Generator: conferr.VariationsGenerator(seed, 10, nil),
	}
	vprof, err := variations.Run()
	if err != nil {
		return err
	}
	fmt.Println("Structure-preserving variations against Apache")
	fmt.Println("(an ideal system accepts every one — 'detected' rows are rejections):")
	fmt.Print(conferr.DetectionByClass(vprof))
	return nil
}
