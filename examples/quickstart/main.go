// Quickstart: the smallest complete ConfErr campaign, run in parallel.
//
// It injects keyboard-realistic spelling mistakes into the simulated
// PostgreSQL server's configuration, runs the database functional tests
// after each injection, and prints the resulting resilience profile — the
// paper's §3.1 loop end to end. The target and plugin are resolved from
// the registry by name, and the faultload is fanned out over four workers
// (each with its own SUT instance); the profile is identical to a
// sequential run's, just produced faster.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"conferr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Resolve the target and the error generator from the registry:
	// the simulated Postgres with its config format and functional test,
	// and the typo plugin with all five §2.1 submodels, capped at 8
	// scenarios per submodel for a quick run.
	runner, err := conferr.NewRunnerFor("postgres", "typo",
		conferr.GeneratorOptions{Seed: 42, PerModel: 8})
	if err != nil {
		return err
	}

	// 2. Run every scenario over 4 workers. WithBaselineCheck first
	// verifies the unmutated configuration starts and passes the tests —
	// a campaign is meaningless without that invariant.
	prof, err := runner.Run(context.Background(),
		conferr.WithParallelism(4),
		conferr.WithBaselineCheck())
	if err != nil {
		return err
	}

	fmt.Printf("ConfErr resilience profile — system=%s generator=%s\n\n",
		prof.System, prof.Generator)
	fmt.Print(prof.FormatRecords())
	fmt.Println()
	fmt.Print(conferr.FormatTable1(prof.Summarize()))
	fmt.Printf("\nOverall detection rate: %.0f%%\n", prof.DetectionRate()*100)
	return nil
}
