// Quickstart: the smallest complete ConfErr campaign.
//
// It injects keyboard-realistic spelling mistakes into the simulated
// PostgreSQL server's configuration, runs the database functional tests
// after each injection, and prints the resulting resilience profile — the
// paper's §3.1 loop end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"conferr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A ready-made target: the simulated Postgres with its config
	// format and the create/populate/query functional test.
	tgt, err := conferr.PostgresTarget()
	if err != nil {
		return err
	}

	// 2. The error generator: all five typo submodels (omission,
	// insertion, substitution, case alteration, transposition), capped at
	// 8 scenarios per submodel for a quick run.
	gen := conferr.TypoGenerator(conferr.TypoOptions{Seed: 42, PerModel: 8})

	campaign := &conferr.Campaign{Target: tgt.Target, Generator: gen}

	// 3. Sanity: the unmutated configuration must work.
	if err := campaign.Baseline(); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}

	// 4. Inject every scenario and collect the resilience profile.
	prof, err := campaign.Run()
	if err != nil {
		return err
	}

	fmt.Printf("ConfErr resilience profile — system=%s generator=%s\n\n",
		prof.System, prof.Generator)
	fmt.Print(prof.FormatRecords())
	fmt.Println()
	fmt.Print(conferr.FormatTable1(prof.Summarize()))
	fmt.Printf("\nOverall detection rate: %.0f%%\n", prof.DetectionRate()*100)
	return nil
}
