// nginxblocks profiles the simulated nginx — the first target whose
// configuration nests blocks to arbitrary depth (http > server >
// location) — and contrasts it with redisd, whose flat redis.conf rides
// the existing kv codec: the same error models drive both, swapping only
// the codec and the SUT adapter (the paper's §3.2 portability claim).
//
// Structural faults hit nginx's context checks ("listen" directive is
// not allowed here) and its brace/semicolon syntax; typos corrupt
// directive names ("unknown directive") or slip into values where only
// the vhost and location functional tests notice.
//
//	go run ./examples/nginxblocks [-seed N] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"conferr"
)

func main() {
	seed := flag.Int64("seed", conferr.DefaultSeed, "faultload seed")
	workers := flag.Int("workers", 4, "parallel campaign workers (0 = GOMAXPROCS)")
	flag.Parse()
	if err := run(*seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "nginxblocks:", err)
		os.Exit(1)
	}
}

func run(seed int64, workers int) error {
	ctx := context.Background()

	// Part 1: structural faults against the nested-block configuration.
	// Misplacing a directive across block boundaries trips nginx's
	// context table; omitting a whole block (events, a location) is the
	// interesting split — events is fatal, a location merely reroutes.
	structural, err := conferr.NewRunnerFor("nginx", "structural",
		conferr.GeneratorOptions{Seed: seed, PerClass: 25})
	if err != nil {
		return err
	}
	prof, err := structural.Run(ctx, conferr.WithParallelism(workers), conferr.WithBaselineCheck())
	if err != nil {
		return err
	}
	fmt.Println("Structural faults against nginx (nested blocks):")
	fmt.Print(conferr.DetectionByClass(prof))
	fmt.Println()

	// Part 2: typos against nginx directive names and values.
	typos, err := conferr.NewRunnerFor("nginx", "typo",
		conferr.GeneratorOptions{Seed: seed, PerModel: 15})
	if err != nil {
		return err
	}
	tprof, err := typos.Run(ctx, conferr.WithParallelism(workers))
	if err != nil {
		return err
	}
	fmt.Println("Typos against nginx:")
	fmt.Print(conferr.DetectionByClass(tprof))
	fmt.Println()

	// Part 3: the same typo model against redisd — a brand-new system
	// profiled with zero new format code (redis.conf rides the kv codec).
	redis, err := conferr.NewRunnerFor("redisd", "typo",
		conferr.GeneratorOptions{Seed: seed, PerModel: 15})
	if err != nil {
		return err
	}
	rprof, err := redis.Run(ctx, conferr.WithParallelism(workers), conferr.WithBaselineCheck())
	if err != nil {
		return err
	}
	fmt.Println("The same typo model against redisd (kv codec reused):")
	fmt.Print(conferr.FormatTable1(tprof.Summarize(), rprof.Summarize()))
	return nil
}
