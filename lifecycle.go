package conferr

import (
	"conferr/internal/core"
	"conferr/internal/sutpool"
)

// This file wires the pooled SUT lifecycle (internal/sutpool) into the
// facade: campaigns can drive their worker SUTs through warm reloads or
// parse-only validation instead of a cold start/stop cycle per
// experiment. Each worker leases an instance from a per-campaign pool;
// instances are health-checked between experiments, quarantined and
// cold-restarted when a reload wedges them, and released back warm when
// the run ends.
//
// The lifecycle adapter sits UNDER the port remap (simulator →
// sutpool.Instance → portMappedSystem), so reload capability detection
// sees the real SUT and every reload error still gets its worker port
// mapped back to the primary's — profiles stay byte-identical to cold
// runs. Systems lacking the capability fall back to cold starts.

// Lifecycle selects how worker SUTs are driven through experiments:
// LifecycleCold (the paper's start/stop-per-experiment engine, the
// default), LifecycleReload (warm instances re-configured in place) or
// LifecycleValidate (parse-only checks; functional tests are skipped, so
// faults only the running server would catch are reported as Ignored).
type Lifecycle = sutpool.Mode

// Lifecycle modes, re-exported from internal/sutpool.
const (
	LifecycleCold     = sutpool.Cold
	LifecycleReload   = sutpool.Reload
	LifecycleValidate = sutpool.Validate
)

// ParseLifecycle parses a lifecycle flag value: "cold" (or ""),
// "reload", or "validate".
func ParseLifecycle(s string) (Lifecycle, error) { return sutpool.ParseMode(s) }

// LifecycleCounters tallies what the lifecycle machinery actually did —
// cold starts, reloads, validates, quarantine restarts, health failures,
// pool leases and reuses. Share one across runs (it is concurrency-safe)
// and read it with Snapshot.
type LifecycleCounters = sutpool.Counters

// newLifecyclePool builds the per-campaign worker pool: every leased
// instance is a factory-built SUT adapted to the mode and wrapped in the
// port remap, with the finished engine target carried as the lease
// payload.
func newLifecyclePool(f TargetFactory, primary *SystemTarget, mode Lifecycle, c *LifecycleCounters) *sutpool.Pool {
	from := primaryPort(primary)
	return sutpool.New(mode, c, func(p *sutpool.Pool) (*sutpool.Instance, error) {
		st, err := f(0)
		if err != nil {
			return nil, err
		}
		inst := p.Instance(st.Target.System)
		inst.Payload = remapTarget(st, inst, from)
		return inst, nil
	})
}

// poolWorkerFactory adapts pool leases to the core's per-worker target
// factory. Released instances return to the pool warm, so consecutive
// campaigns over one pool skip even the first cold start.
func poolWorkerFactory(p *sutpool.Pool) core.TargetFactory {
	return func() (*core.Target, error) {
		inst, err := p.Lease()
		if err != nil {
			return nil, err
		}
		return inst.Payload.(*core.Target), nil
	}
}

// lifecycleFactory picks the worker-target factory for a run: the plain
// port-remapping factory for cold runs, a pool-backed one otherwise. The
// returned cleanup (nil for cold) closes the pool, shutting down every
// warm instance.
func lifecycleFactory(f TargetFactory, primary *SystemTarget, mode Lifecycle, c *LifecycleCounters) (core.TargetFactory, func() error) {
	if mode == LifecycleCold {
		return workerFactory(f, primary), nil
	}
	pool := newLifecyclePool(f, primary, mode, c)
	return poolWorkerFactory(pool), pool.Close
}
