package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"conferr"
	"conferr/internal/profile"
	"conferr/internal/profile/cprof"
)

// cmdReport folds a profile file — JSONL or cprof, sniffed by content —
// into the paper's report shapes without materializing it: Table 1
// outcome summaries, per-class Tables 2/3, Figure 3 detection bands,
// and per-campaign resilience scorecards. With -diff it compares two
// campaigns instead, and -fail-regress turns the comparison into a CI
// resilience regression gate.
func cmdReport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	diff := fs.Bool("diff", false, "compare two profiles: report -diff BEFORE AFTER")
	failRegress := fs.Float64("fail-regress", 0, "with -diff: fail when any campaign or class detection rate drops by more than this many percentage points (0 = report only)")
	bandKey := fs.String("band-key", "directive", "Figure 3 banding key: directive, class or none")
	workers := fs.Int("workers", 0, "parallel frame-decode workers for indexed cprof files (0 = GOMAXPROCS; JSONL always scans sequentially)")
	_ = fs.Parse(args)

	key, err := bandKeyFunc(*bandKey)
	if err != nil {
		return err
	}
	if *diff {
		if fs.NArg() != 2 {
			return errors.New("report -diff needs exactly two profile files: BEFORE AFTER")
		}
		before, err := loadStats(fs.Arg(0), key, *workers)
		if err != nil {
			return err
		}
		after, err := loadStats(fs.Arg(1), key, *workers)
		if err != nil {
			return err
		}
		d := profile.DiffStats(before, after)
		fmt.Printf("resilience diff: %s -> %s\n", fs.Arg(0), fs.Arg(1))
		fmt.Print(d.FormatDiff())
		if *failRegress > 0 && d.MaxRegressionPP() > *failRegress {
			return fmt.Errorf("detection rate regressed by %.1fpp (gate: %.1fpp)",
				d.MaxRegressionPP(), *failRegress)
		}
		return nil
	}
	if fs.NArg() != 1 {
		return errors.New("report needs exactly one profile file (or - for stdin)")
	}
	start := time.Now()
	stats, err := loadStats(fs.Arg(0), key, *workers)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Print(stats.FormatReport())
	if n := stats.TotalRecords(); n > 0 && elapsed > 0 {
		fmt.Fprintf(os.Stderr, "conferr: folded %d records in %s (%.0f records/s)\n",
			n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	}
	return nil
}

// bandKeyFunc resolves the -band-key flag.
func bandKeyFunc(name string) (func(profile.Record) string, error) {
	switch name {
	case "directive":
		return func(r profile.Record) string { return conferr.TypoDirectiveKey(r.ScenarioID) }, nil
	case "class":
		return func(r profile.Record) string { return r.Class }, nil
	case "none", "":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown -band-key %q (directive, class or none)", name)
	}
}

// loadStats folds one profile file into a StreamStats. Indexed cprof
// files decode their frames across workers goroutines and merge the
// per-worker folds; JSONL (and stdin) streams sequentially.
func loadStats(path string, key func(profile.Record) string, workers int) (*profile.StreamStats, error) {
	if path != "-" {
		isC, err := cprof.IsCprofPath(path)
		if err != nil {
			return nil, err
		}
		if isC && workers != 1 {
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			folds := make([]*profile.StreamStats, workers)
			for i := range folds {
				folds[i] = profile.NewStreamStats(key)
			}
			err := cprof.FoldFile(path, workers, func(w int, e profile.JSONLEntry) error {
				return folds[w].Add(e)
			})
			if err != nil {
				return nil, err
			}
			stats := folds[0]
			for _, o := range folds[1:] {
				stats.Merge(o)
			}
			return stats, nil
		}
	}
	stats := profile.NewStreamStats(key)
	if err := cprof.ScanPath(path, stats.Add); err != nil {
		return nil, err
	}
	return stats, nil
}

// cmdConvert translates a profile file between the JSONL and cprof
// formats, losslessly in both directions. The input format is sniffed
// by content; the output format follows the destination extension
// (.cprof = compact frames, anything else = canonical JSONL, "-" =
// JSONL on stdout). cprof inputs replay in canonical sequence order, so
// cprof→JSONL of an ordered campaign is byte-identical to the stream
// the campaign would have written directly.
func cmdConvert(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	noDuration := fs.Bool("no-duration", false, "zero the duration field during conversion, making equivalent runs byte-comparable")
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		return errors.New("convert needs exactly two arguments: IN OUT (IN may be - for stdin, OUT may be - for JSONL on stdout)")
	}
	in, out := fs.Arg(0), fs.Arg(1)

	// Pick the scan: cprof inputs replay in canonical sequence order,
	// JSONL inputs in file order (already canonical for ordered streams).
	isC, err := cprof.IsCprofPath(in)
	if err != nil {
		return err
	}
	scan := func(fn func(profile.JSONLEntry) error) error { return cprof.ScanPath(in, fn) }
	if isC {
		scan = func(fn func(profile.JSONLEntry) error) error { return cprof.ScanFileSeqOrdered(in, fn) }
	}
	strip := func(e profile.JSONLEntry) profile.JSONLEntry {
		if *noDuration {
			e.Record.Duration = 0
		}
		return e
	}

	records := 0
	if strings.HasSuffix(out, ".cprof") {
		cf, err := cprof.Create(out)
		if err != nil {
			return err
		}
		err = scan(func(e profile.JSONLEntry) error {
			records++
			return cf.W.WriteEntry(strip(e))
		})
		if cerr := cf.Close(err == nil); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	} else {
		var w io.Writer = os.Stdout
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		bw := bufio.NewWriterSize(w, 1<<20)
		var buf []byte
		err = scan(func(e profile.JSONLEntry) error {
			records++
			e = strip(e)
			buf = profile.AppendJSONLRecord(buf[:0], e.System, e.Generator, e.Seq, e.Record)
			_, werr := bw.Write(buf)
			return werr
		})
		if err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if out == "-" {
			fmt.Fprintf(os.Stderr, "conferr: converted %d records from %s\n", records, in)
			return nil
		}
	}
	fmt.Printf("converted %d records: %s -> %s\n", records, in, out)
	return nil
}
