package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"conferr"
	"conferr/internal/dist"
	"conferr/internal/profile"
	"conferr/internal/profile/cprof"
)

// cmdDist runs one campaign distributed across sutd worker daemons: the
// coordinator ships each worker only a shard spec (generation is a pure
// function of seed and shard, so no scenario crosses the wire), retries
// failed or stalled shards on surviving workers, and merges the streams
// into a profile byte-identical to a single-process run. A killed
// coordinator resumes from its checkpoint, completing only the missing
// sequence range.
func cmdDist(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("dist", flag.ExitOnError)
	workersCSV := fs.String("workers", "", "comma-separated worker endpoints (host:port,... — start each with `sutd -serve host:port`)")
	shards := fs.Int("shards", 0, "shard count (0 = one per worker); shards are the unit of retry and rebalancing")
	var system string
	fs.StringVar(&system, "system", "", "target system (see: conferr list)")
	fs.StringVar(&system, "target", "", "alias for -system")
	plugin := fs.String("plugin", "typo", "error generator plugin (see: conferr list)")
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	perModel := fs.Int("per-model", 0, "typo scenarios per submodel (0 = all)")
	perDirective := fs.Int("per-directive", 0, "typo scenarios per directive (0 = off)")
	perClass := fs.Int("per-class", 0, "structural/variation scenarios per class (0 = all)")
	rounds := fs.Int("rounds", 0, "replay the faultload N times with round-prefixed IDs (scale harness)")
	sample := fs.Int("sample", 0, "reservoir-sample N scenarios (0 = off)")
	limit := fs.Int("limit", 0, "cap the faultload, lazily (0 = off)")
	port := fs.Int("port", 24100, "primary target port the faultload embeds; the default matches matrix cell 0 (-base-port)")
	lifecycleS := fs.String("lifecycle", "cold", "worker SUT lifecycle: cold, reload or validate")
	memnet := fs.Bool("memnet", false, "workers serve SUTs over the in-process transport")
	keepGoing := fs.Bool("keep-going", false, "record infrastructure errors instead of failing the shard")
	noDuration := fs.Bool("no-duration", false, "zero duration_ns in merged records, making equivalent runs byte-comparable")
	tally := fs.Bool("tally", false, "summary-only mode: workers send one tally each, no record stream")
	out := fs.String("out", "", "merged profile path (.cprof = compact binary frames, else JSONL)")
	checkpoint := fs.String("checkpoint", "", "checkpoint file enabling resume (default <out>.ckpt when -out is set)")
	resume := fs.Bool("resume", false, "resume from the checkpoint, completing only the missing sequence range")
	stall := fs.Duration("stall-timeout", 15*time.Second, "reassign a shard when its worker sends no frame for this long")
	dialTO := fs.Duration("dial-timeout", 5*time.Second, "worker connection timeout")
	retries := fs.Int("retries", 5, "per-shard attempt cap (dial failures retire the endpoint instead)")
	expTO := fs.Duration("experiment-timeout", 0, "per-experiment watchdog deadline workers inherit; expiry records an infrastructure error (0 = off)")
	phaseTO := fs.Duration("phase-timeout", 0, "per-SUT-phase watchdog deadline workers inherit (start, reload, probe, stop; 0 = off)")
	fsync := fs.Bool("fsync", false, "fsync the merged output at every checkpoint flush so -resume survives host crashes, not just process kills")
	quiet := fs.Bool("quiet", false, "suppress scheduling diagnostics")
	_ = fs.Parse(args)

	endpoints := splitNames(*workersCSV)
	if len(endpoints) == 0 {
		return errors.New("dist: -workers host:port,... is required")
	}
	// Fail bad names here, not as N identical worker errors later.
	if _, err := conferr.LookupTarget(system); err != nil {
		return err
	}
	if _, err := conferr.LookupGenerator(*plugin); err != nil {
		return err
	}
	if _, err := conferr.ParseLifecycle(*lifecycleS); err != nil {
		return err
	}
	if *tally && *out != "" {
		return errors.New("dist: -tally sends no records; drop -out or -tally")
	}

	cp := *checkpoint
	if cp == "" && *out != "" {
		cp = *out + ".ckpt"
	}
	nshards := *shards
	if nshards <= 0 {
		nshards = len(endpoints)
	}
	coord := &dist.Coordinator{
		Workers: endpoints,
		Shards:  nshards,
		Spec: dist.CampaignSpec{
			System: system, Plugin: *plugin, Seed: *seed,
			PerModel: *perModel, PerDirective: *perDirective, PerClass: *perClass,
			Rounds: *rounds, Sample: *sample, Limit: *limit,
			Port: *port, Lifecycle: *lifecycleS, Memnet: *memnet,
			KeepGoing: *keepGoing, NoDuration: *noDuration, TallyOnly: *tally,
		},
		OutPath:           *out,
		CheckpointPath:    cp,
		Resume:            *resume,
		DialTimeout:       *dialTO,
		StallTimeout:      *stall,
		Retry:             dist.RetryPolicy{MaxAttempts: *retries},
		ExperimentTimeout: *expTO,
		PhaseTimeout:      *phaseTO,
		SyncOutput:        *fsync,
	}
	if strings.HasSuffix(*out, ".cprof") {
		// Compact output: the merger's rendered JSONL lines are re-parsed
		// into cprof frames by a LineWriter. The factory reconciles the
		// file against the checkpoint front by walking frames, and every
		// checkpoint flushes the writer first, so each persisted front is
		// a frame boundary; raising CheckpointEvery to one frame of
		// records keeps frames full-size instead of checkpoint-size.
		outPath := *out
		coord.OutPath = ""
		coord.CheckpointEvery = cprof.DefaultFrameRecords
		coord.OutFactory = func(startSeq int) (io.Writer, func() error, func(bool) error, error) {
			cf, err := cprof.OpenFileAt(outPath, startSeq)
			if err != nil {
				return nil, nil, nil, err
			}
			flush := cf.Flush
			if *fsync {
				// Checkpointed fronts must not outlive the records backing
				// them: sync the frames to disk before the front is persisted.
				flush = cf.Sync
			}
			return cf.W.LineWriter(), flush, cf.Close, nil
		}
	}
	if !*quiet {
		coord.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	res, err := coord.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("system=%s generator=%s workers=%d shards=%d records=%d retries=%d duplicates=%d\n",
		system, *plugin, len(endpoints), coord.Shards, res.Records, res.Retries, res.Duplicates)
	if res.StartSeq > 0 {
		fmt.Printf("resumed from sequence %d (completed %d missing records)\n", res.StartSeq, res.Records-res.StartSeq)
	}
	sum := res.Summary
	sum.System = system + "/" + *plugin
	fmt.Print(profile.FormatTable1(sum))
	if *out != "" {
		fmt.Println("merged profile written to", *out)
	}
	return nil
}
