package main

import (
	"os"
	"testing"

	"conferr"
)

func TestRunUsage(t *testing.T) {
	if got := run(nil); got != 2 {
		t.Errorf("no args: exit = %d, want 2", got)
	}
	if got := run([]string{"help"}); got != 0 {
		t.Errorf("help: exit = %d, want 0", got)
	}
	if got := run([]string{"bogus"}); got != 2 {
		t.Errorf("unknown command: exit = %d, want 2", got)
	}
}

func TestRunTable3Command(t *testing.T) {
	if got := run([]string{"table3"}); got != 0 {
		t.Errorf("table3: exit = %d", got)
	}
	if got := run([]string{"table3", "-extended"}); got != 0 {
		t.Errorf("table3 -extended: exit = %d", got)
	}
}

func TestRunEditBenchCommand(t *testing.T) {
	if got := run([]string{"editbench", "-n", "5"}); got != 0 {
		t.Errorf("editbench: exit = %d", got)
	}
}

func TestRunCampaignCommand(t *testing.T) {
	if got := run([]string{"campaign", "-system", "djbdns", "-plugin", "semantic"}); got != 0 {
		t.Errorf("campaign semantic: exit = %d", got)
	}
	if got := run([]string{"campaign", "-system", "postgres", "-plugin", "typo", "-per-model", "3", "-records"}); got != 0 {
		t.Errorf("campaign typo: exit = %d", got)
	}
}

func TestRunCampaignErrors(t *testing.T) {
	cases := [][]string{
		{"campaign"},                    // missing system
		{"campaign", "-system", "nope"}, // unknown system
		{"campaign", "-system", "mysql", "-plugin", "nope"},     // unknown plugin
		{"campaign", "-system", "mysql", "-plugin", "semantic"}, // wrong pairing
	}
	for _, args := range cases {
		if got := run(args); got != 1 {
			t.Errorf("run(%v) = %d, want 1", args, got)
		}
	}
}

func TestMakeTargetAll(t *testing.T) {
	for _, sys := range []string{"mysql", "postgres", "apache", "bind", "djbdns"} {
		if _, err := makeTarget(sys); err != nil {
			t.Errorf("makeTarget(%s): %v", sys, err)
		}
	}
}

func TestRunExperimentCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiments in -short mode")
	}
	cases := [][]string{
		{"table1"},
		{"table2", "-n", "2"},
		{"figure3", "-n", "3"},
	}
	for _, args := range cases {
		if got := run(args); got != 0 {
			t.Errorf("run(%v) = %d, want 0", args, got)
		}
	}
}

func TestRunCampaignJSONOutput(t *testing.T) {
	out := t.TempDir() + "/profile.json"
	if got := run([]string{"campaign", "-system", "bind", "-plugin", "semantic", "-json", out}); got != 0 {
		t.Fatalf("exit = %d", got)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prof, err := conferr.ReadProfileJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if prof.System != "bind-sim" || len(prof.Records) == 0 {
		t.Errorf("profile = %s with %d records", prof.System, len(prof.Records))
	}
}

func TestRunCompareCommand(t *testing.T) {
	if got := run([]string{"compare", "-n", "4"}); got != 0 {
		t.Errorf("compare: exit = %d", got)
	}
}
