package main

import (
	"context"
	"io"
	"os"
	"strings"
	"testing"

	"conferr"
)

func runT(args ...string) int {
	return run(context.Background(), args)
}

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestRunUsage(t *testing.T) {
	if got := runT(); got != 2 {
		t.Errorf("no args: exit = %d, want 2", got)
	}
	if got := runT("help"); got != 0 {
		t.Errorf("help: exit = %d, want 0", got)
	}
	if got := runT("bogus"); got != 2 {
		t.Errorf("unknown command: exit = %d, want 2", got)
	}
}

func TestRunTable3Command(t *testing.T) {
	if got := runT("table3"); got != 0 {
		t.Errorf("table3: exit = %d", got)
	}
	if got := runT("table3", "-extended", "-workers", "4"); got != 0 {
		t.Errorf("table3 -extended -workers 4: exit = %d", got)
	}
}

func TestRunEditBenchCommand(t *testing.T) {
	if got := runT("editbench", "-n", "5"); got != 0 {
		t.Errorf("editbench: exit = %d", got)
	}
}

func TestRunListCommand(t *testing.T) {
	out := capture(t, func() {
		if got := runT("list"); got != 0 {
			t.Errorf("list: exit = %d", got)
		}
	})
	for _, want := range []string{"mysql", "postgres", "apache", "nginx", "redisd", "bind", "djbdns", "typo", "semantic"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

// TestRunMatrixCommand drives the suite orchestrator end to end: a 2×2
// matrix with a lazy limit, streamed to a JSONL file, must report every
// cell and produce a file that splits back into one profile per cell.
func TestRunMatrixCommand(t *testing.T) {
	out := t.TempDir() + "/records.jsonl"
	stdout := capture(t, func() {
		if got := runT("matrix", "-systems", "nginx,redisd", "-plugins", "typo,structural",
			"-per-model", "4", "-per-class", "4", "-limit", "10",
			"-workers", "4", "-base-port", "24150", "-stream-out", out); got != 0 {
			t.Errorf("matrix: exit = %d", got)
		}
	})
	for _, cell := range []string{"nginx/typo", "nginx/structural", "redisd/typo", "redisd/structural"} {
		if !strings.Contains(stdout, cell) {
			t.Errorf("matrix output missing cell %s:\n%s", cell, stdout)
		}
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	profs, err := conferr.ReadProfilesJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 4 {
		t.Fatalf("JSONL split into %d profiles, want 4", len(profs))
	}
	for _, p := range profs {
		if len(p.Records) == 0 || len(p.Records) > 10 {
			t.Errorf("%s/%s: %d records, want 1..10 (limit)", p.System, p.Generator, len(p.Records))
		}
	}

	// The whole-pair matrix must skip incompatible cells rather than fail.
	if got := runT("matrix", "-systems", "mysql", "-plugins", "semantic"); got != 1 {
		t.Errorf("all-skipped matrix: exit = %d, want 1", got)
	}
}

func TestRunCampaignCommand(t *testing.T) {
	if got := runT("campaign", "-system", "djbdns", "-plugin", "semantic"); got != 0 {
		t.Errorf("campaign semantic: exit = %d", got)
	}
	if got := runT("campaign", "-system", "postgres", "-plugin", "typo", "-per-model", "3", "-records"); got != 0 {
		t.Errorf("campaign typo: exit = %d", got)
	}
}

// TestRunCampaignWorkersDeterministic is the CLI form of the acceptance
// criterion: -workers 8 must print the identical summary (same scenario
// IDs, same detection counts) as -workers 1.
func TestRunCampaignWorkersDeterministic(t *testing.T) {
	summary := func(workers string) string {
		return capture(t, func() {
			if got := runT("campaign", "-system", "mysql", "-plugin", "typo",
				"-per-model", "10", "-records", "-workers", workers); got != 0 {
				t.Errorf("workers=%s: exit = %d", workers, got)
			}
		})
	}
	seq := summary("1")
	par := summary("8")
	// The only allowed difference is the workers=N banner line.
	canon := func(s string) string {
		lines := strings.Split(s, "\n")
		var keep []string
		for _, l := range lines {
			if strings.HasPrefix(l, "system=") {
				continue
			}
			keep = append(keep, l)
		}
		return strings.Join(keep, "\n")
	}
	if canon(seq) != canon(par) {
		t.Errorf("parallel output diverged from sequential\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
}

func TestRunCampaignErrors(t *testing.T) {
	cases := [][]string{
		{"campaign"},                    // missing system
		{"campaign", "-system", "nope"}, // unknown system
		{"campaign", "-system", "mysql", "-plugin", "nope"},     // unknown plugin
		{"campaign", "-system", "mysql", "-plugin", "semantic"}, // wrong pairing
	}
	for _, args := range cases {
		if got := runT(args...); got != 1 {
			t.Errorf("run(%v) = %d, want 1", args, got)
		}
	}
}

// TestRunCampaignNewTargets drives the two extension systems end-to-end
// through the CLI: a nested-block nginx campaign and a redis campaign on
// the reused kv codec, via the -target alias for -system.
func TestRunCampaignNewTargets(t *testing.T) {
	if got := runT("campaign", "-target", "nginx", "-plugin", "typo", "-per-model", "3", "-workers", "4"); got != 0 {
		t.Errorf("campaign -target nginx: exit = %d", got)
	}
	if got := runT("campaign", "-target", "redisd", "-plugin", "typo", "-per-model", "3", "-workers", "4"); got != 0 {
		t.Errorf("campaign -target redisd: exit = %d", got)
	}
}

func TestRegisteredTargetsResolve(t *testing.T) {
	for _, sys := range []string{"mysql", "postgres", "apache", "nginx", "redisd", "bind", "djbdns"} {
		factory, err := conferr.LookupTarget(sys)
		if err != nil {
			t.Errorf("LookupTarget(%s): %v", sys, err)
			continue
		}
		if _, err := factory(0); err != nil {
			t.Errorf("factory(%s): %v", sys, err)
		}
	}
}

func TestRunExperimentCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiments in -short mode")
	}
	cases := [][]string{
		{"table1", "-workers", "4"},
		{"table2", "-n", "2"},
		{"figure3", "-n", "3", "-workers", "4"},
	}
	for _, args := range cases {
		if got := runT(args...); got != 0 {
			t.Errorf("run(%v) = %d, want 0", args, got)
		}
	}
}

func TestRunCampaignJSONOutput(t *testing.T) {
	out := t.TempDir() + "/profile.json"
	if got := runT("campaign", "-system", "bind", "-plugin", "semantic", "-json", out); got != 0 {
		t.Fatalf("exit = %d", got)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prof, err := conferr.ReadProfileJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if prof.System != "bind-sim" || len(prof.Records) == 0 {
		t.Errorf("profile = %s with %d records", prof.System, len(prof.Records))
	}
}

func TestRunCompareCommand(t *testing.T) {
	if got := runT("compare", "-n", "4"); got != 0 {
		t.Errorf("compare: exit = %d", got)
	}
}

// TestRunMatrixStreamStdout: `matrix -stream-out -` must put records —
// and nothing else — on stdout, with the summary table diverted to
// stderr.
func TestRunMatrixStreamStdout(t *testing.T) {
	stdout := capture(t, func() {
		if got := runT("matrix", "-systems", "nginx", "-plugins", "typo",
			"-per-model", "4", "-limit", "8", "-workers", "4",
			"-base-port", "24160", "-no-duration", "-stream-out", "-"); got != 0 {
			t.Errorf("matrix -stream-out -: exit = %d", got)
		}
	})
	if strings.Contains(stdout, "campaign") || strings.Contains(stdout, "records streamed") {
		t.Errorf("summary leaked into the record stream:\n%s", stdout)
	}
	profs, err := conferr.ReadProfilesJSONL(strings.NewReader(stdout))
	if err != nil {
		t.Fatalf("stdout is not clean JSONL: %v", err)
	}
	if len(profs) != 1 || len(profs[0].Records) == 0 || len(profs[0].Records) > 8 {
		t.Fatalf("streamed profiles = %+v, want one nginx/typo profile with 1..8 records", profs)
	}
}

// TestRunMatrixCprofConvertReport drives the compact pipeline end to
// end: matrix streams a cell to .cprof and (second run) to .jsonl, the
// two must agree byte-for-byte after conversion, and report/convert
// consume both formats.
func TestRunMatrixCprofConvertReport(t *testing.T) {
	dir := t.TempDir()
	cprofOut := dir + "/records.cprof"
	jsonlOut := dir + "/records.jsonl"
	args := func(out string) []string {
		return []string{"matrix", "-systems", "nginx", "-plugins", "typo",
			"-per-model", "4", "-workers", "4", "-base-port", "24161",
			"-no-duration", "-stream-out", out}
	}
	if got := runT(args(cprofOut)...); got != 0 {
		t.Fatalf("matrix -stream-out .cprof: exit = %d", got)
	}
	if got := runT(args(jsonlOut)...); got != 0 {
		t.Fatalf("matrix -stream-out .jsonl: exit = %d", got)
	}

	// convert .cprof → JSONL must reproduce the directly streamed bytes.
	converted := dir + "/converted.jsonl"
	if got := runT("convert", cprofOut, converted); got != 0 {
		t.Fatalf("convert: exit = %d", got)
	}
	want, err := os.ReadFile(jsonlOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(converted)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || string(got) != string(want) {
		t.Fatalf("converted JSONL diverges from direct stream (%d vs %d bytes)", len(got), len(want))
	}

	// And back: JSONL → .cprof → JSONL is a fixed point.
	recprof := dir + "/re.cprof"
	rejsonl := dir + "/re.jsonl"
	if got := runT("convert", jsonlOut, recprof); got != 0 {
		t.Fatalf("convert to cprof: exit = %d", got)
	}
	if got := runT("convert", recprof, rejsonl); got != 0 {
		t.Fatalf("convert back: exit = %d", got)
	}
	round, err := os.ReadFile(rejsonl)
	if err != nil {
		t.Fatal(err)
	}
	if string(round) != string(want) {
		t.Fatal("JSONL→cprof→JSONL is not an identity")
	}

	// report reads both formats and prints the same shapes.
	for _, in := range []string{cprofOut, jsonlOut} {
		out := capture(t, func() {
			if got := runT("report", in); got != 0 {
				t.Errorf("report %s: exit = %d", in, got)
			}
		})
		for _, wantS := range []string{"Outcome summary", "Resilience scorecard", "Per-class outcomes"} {
			if !strings.Contains(out, wantS) {
				t.Errorf("report %s missing %q:\n%s", in, wantS, out)
			}
		}
	}

	// The diff of a campaign against itself is regression-free; the gate
	// passes.
	if got := runT("report", "-diff", "-fail-regress", "0.1", cprofOut, jsonlOut); got != 0 {
		t.Errorf("self-diff tripped the regression gate: exit = %d", got)
	}
}
