// Command conferr runs ConfErr campaigns and the paper's evaluation
// experiments against the built-in simulated systems.
//
//	conferr table1 [-seed N] [-workers N]   reproduce Table 1 (typo resilience)
//	conferr table2 [-seed N] [-n N] [-workers N]
//	                                        reproduce Table 2 (structural variations)
//	conferr table3 [-extended] [-workers N] reproduce Table 3 (DNS semantic errors)
//	conferr figure3 [-seed N] [-n N] [-workers N]
//	                                        reproduce Figure 3 (MySQL vs Postgres)
//	conferr campaign -system S -plugin P [-seed N] [-workers N] [-records]
//	                                        run one custom campaign and summarize
//	                                        (-target is an alias for -system)
//	conferr matrix [-systems a,b] [-plugins x,y] [-workers N] [-limit N]
//	               [-rounds N] [-sample N] [-stream-out FILE] [-no-duration]
//	               [-lifecycle cold|reload|validate] [-memnet]
//	                                        run a target × generator suite with
//	                                        streamed faultloads and JSONL profiles
//	conferr dist -workers h:p,h:p -shards N -system S -plugin P [-out FILE]
//	                                        distribute one campaign across sutd
//	                                        worker daemons, with retry/resume and
//	                                        a byte-identical merged profile
//	conferr report FILE [-diff A B] [-fail-regress PP] [-band-key K] [-workers N]
//	                                        stream a JSONL or cprof profile into
//	                                        Table 1-3 / Figure 3 shapes, or diff
//	                                        two campaigns as a regression gate
//	conferr convert IN OUT                  translate profiles between JSONL and
//	                                        cprof, losslessly in both directions
//	conferr list                            list registered systems and plugins
//	conferr all [-seed N] [-workers N]      run every experiment
//
// Systems and plugins are resolved from the conferr registry; -workers
// fans the faultload out over N parallel workers, each with its own SUT
// instance, without changing the profile.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"syscall"
	"time"

	"conferr"
	"conferr/internal/profile"
)

func main() {
	// Batch campaigns are throughput-bound and hold bounded memory (the
	// streaming engine keeps peak RSS in the tens of MB even on
	// million-scenario runs), so the default GC cadence mostly burns CPU
	// re-collecting the per-experiment garbage. Relax it unless the user
	// set their own GOGC.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(800)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:]))
}

func run(ctx context.Context, args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1(ctx, rest)
	case "table2":
		err = cmdTable2(ctx, rest)
	case "table3":
		err = cmdTable3(ctx, rest)
	case "figure3":
		err = cmdFigure3(ctx, rest)
	case "campaign":
		err = cmdCampaign(ctx, rest)
	case "matrix":
		err = cmdMatrix(ctx, rest)
	case "dist":
		err = cmdDist(ctx, rest)
	case "report":
		err = cmdReport(ctx, rest)
	case "convert":
		err = cmdConvert(ctx, rest)
	case "editbench":
		err = cmdEditBench(ctx, rest)
	case "compare":
		err = cmdCompare(ctx, rest)
	case "list":
		err = cmdList(rest)
	case "all":
		err = cmdAll(ctx, rest)
	case "help", "-h", "--help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "conferr: unknown command %q\n", cmd)
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "conferr:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: conferr <command> [flags]

commands:
  table1    reproduce Table 1: resilience to typos (MySQL, Postgres, Apache)
  table2    reproduce Table 2: resilience to structural errors
  table3    reproduce Table 3: resilience to semantic errors (BIND, djbdns)
  figure3   reproduce Figure 3: MySQL vs Postgres value-typo comparison
  campaign  run one campaign: -system <name> (alias -target) -plugin <name> [-workers N]
  matrix    run a target × generator suite: -systems a,b -plugins x,y [-workers N]
            [-limit N] [-rounds N] [-sample N] [-stream-out FILE] [-no-duration]
            [-lifecycle cold|reload|validate] [-memnet]
  dist      run one campaign across remote workers: -workers host:port,...
            -shards N -system <name> -plugin <name> [-out FILE] [-resume]
            [-no-duration] [-tally] (workers: sutd -serve host:port)
  report    fold a profile file (JSONL or .cprof, - for stdin) into the paper's
            report shapes; -diff BEFORE AFTER compares two campaigns and
            -fail-regress N.N gates CI on detection-rate regressions
  convert   translate a profile between JSONL and .cprof (extension-switched),
            losslessly in both directions [-no-duration]
  editbench run the §5.5 configuration-process benchmark (typos near edits)
  compare   quantify the impact of MySQL's missing checks (before/after)
  list      list registered systems and plugins
  all       run every experiment

registered systems: %s
registered plugins: %s
`, strings.Join(conferr.RegisteredTargets(), ", "),
		strings.Join(conferr.RegisteredGenerators(), ", "))
}

// recordRetentionWarn is the in-memory record count past which the
// campaign subcommand suggests a streaming run instead.
const recordRetentionWarn = 100_000

// workersFlag adds the shared -workers flag to a flag set.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 1, "parallel campaign workers (0 = GOMAXPROCS)")
}

// diagFlags holds the shared profiling/tracing flags of the campaign and
// matrix subcommands, so perf work can capture evidence from real
// campaigns without patching the binary.
type diagFlags struct {
	cpuprofile *string
	memprofile *string
	trace      *string
}

// addDiagFlags registers -cpuprofile, -memprofile and -trace on fs.
func addDiagFlags(fs *flag.FlagSet) *diagFlags {
	return &diagFlags{
		cpuprofile: fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file"),
		memprofile: fs.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file"),
		trace:      fs.String("trace", "", "write a runtime execution trace of the run to this file"),
	}
}

// start begins the requested captures and returns a stop function that
// finishes them (flushing the heap profile last, after a final GC, so it
// reflects live memory rather than transient garbage).
func (d *diagFlags) start() (func() error, error) {
	var stops []func() error
	fail := func(err error) (func() error, error) {
		for i := len(stops) - 1; i >= 0; i-- {
			_ = stops[i]()
		}
		return nil, err
	}
	if *d.cpuprofile != "" {
		f, err := os.Create(*d.cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return fail(err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if *d.trace != "" {
		f, err := os.Create(*d.trace)
		if err != nil {
			return fail(err)
		}
		if err := trace.Start(f); err != nil {
			_ = f.Close()
			return fail(err)
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	if *d.memprofile != "" {
		path := *d.memprofile
		stops = append(stops, func() error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				_ = f.Close()
				return err
			}
			return f.Close()
		})
	}
	return func() error {
		var firstErr error
		// Registration order is cpu, trace, mem: running the stops forward
		// ends the CPU profile and trace before the heap snapshot's forced
		// GC, so the capture files never record the capture itself.
		for _, stop := range stops {
			if err := stop(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

func cmdTable1(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	workers := workersFlag(fs)
	_ = fs.Parse(args)
	res, err := conferr.RunTable1Ctx(ctx, *seed, *workers)
	if err != nil {
		return err
	}
	fmt.Println("Table 1. Resilience to typos")
	fmt.Print(res.Format())
	return nil
}

func cmdTable2(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	seed := fs.Int64("seed", conferr.DefaultSeed, "variation seed")
	n := fs.Int("n", 10, "variant configurations per class")
	workers := workersFlag(fs)
	_ = fs.Parse(args)
	res, err := conferr.RunTable2Ctx(ctx, *seed, *n, *workers)
	if err != nil {
		return err
	}
	fmt.Println("Table 2. Resilience to structural errors")
	fmt.Print(res.Format())
	return nil
}

func cmdTable3(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	extended := fs.Bool("extended", false, "include extension fault classes")
	workers := workersFlag(fs)
	_ = fs.Parse(args)
	res, err := conferr.RunTable3Ctx(ctx, *extended, *workers)
	if err != nil {
		return err
	}
	fmt.Println("Table 3. Resilience to semantic errors")
	fmt.Print(res.Format())
	return nil
}

func cmdFigure3(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("figure3", flag.ExitOnError)
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	n := fs.Int("n", 20, "typo experiments per directive")
	workers := workersFlag(fs)
	_ = fs.Parse(args)
	res, err := conferr.RunFigure3Ctx(ctx, *seed, *n, *workers)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3. Resilience to typos in directive values, across all directives")
	fmt.Print(res.Format())
	return nil
}

func cmdEditBench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("editbench", flag.ExitOnError)
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	n := fs.Int("n", 20, "typo variants per edit")
	workers := workersFlag(fs)
	_ = fs.Parse(args)
	res, err := conferr.RunEditBenchmarkCtx(ctx, *seed, *n, *workers)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

// cmdCompare runs the development-feedback comparison: the same typo
// faultload against MySQL with and without the simple checks the paper's
// profile suggests, diffing the two resilience profiles.
func cmdCompare(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	n := fs.Int("n", 15, "value typos per directive")
	workers := workersFlag(fs)
	_ = fs.Parse(args)

	const port = 23467
	campaign := func(system string) (*conferr.Profile, error) {
		factory, err := conferr.LookupTarget(system)
		if err != nil {
			return nil, err
		}
		r := conferr.NewRunner(factory, conferr.TypoGenerator(conferr.TypoOptions{
			Seed: *seed, ValuesOnly: true, PerDirective: *n,
		}))
		r.Port = port
		return r.Run(ctx, conferr.WithParallelism(*workers))
	}
	before, err := campaign("mysql")
	if err != nil {
		return err
	}
	after, err := campaign("mysql-strict")
	if err != nil {
		return err
	}
	sb, sa := before.Summarize(), after.Summarize()
	sb.System, sa.System = "before", "after"
	fmt.Println("MySQL value-typo resilience, before vs after the missing checks:")
	fmt.Print(profile.FormatTable1(sb, sa))
	cmp := conferr.CompareProfiles(before, after)
	fmt.Printf("improved=%d regressed=%d unchanged=%d\n",
		len(cmp.Improved), len(cmp.Regressed), cmp.Unchanged)
	return nil
}

func cmdCampaign(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	var system string
	fs.StringVar(&system, "system", "", "target system (see: conferr list)")
	fs.StringVar(&system, "target", "", "alias for -system")
	plugin := fs.String("plugin", "typo", "error generator plugin (see: conferr list)")
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	perModel := fs.Int("per-model", 0, "typo scenarios per submodel (0 = all)")
	records := fs.Bool("records", false, "print the full resilience profile")
	jsonOut := fs.String("json", "", "write the profile as JSON to this file")
	port := fs.Int("port", 23901, "primary target port; the faultload embeds it, so a fixed port keeps campaigns reproducible across invocations (0 = allocate)")
	lifecycleS := fs.String("lifecycle", "cold", "worker SUT lifecycle: cold, reload (warm pooled instances) or validate (parse-only)")
	workers := workersFlag(fs)
	diag := addDiagFlags(fs)
	_ = fs.Parse(args)

	lifecycle, err := conferr.ParseLifecycle(*lifecycleS)
	if err != nil {
		return err
	}
	stopDiag, err := diag.start()
	if err != nil {
		return err
	}
	defer func() { _ = stopDiag() }()

	runner, err := conferr.NewRunnerFor(system, *plugin, conferr.GeneratorOptions{
		Seed: *seed, PerModel: *perModel,
	})
	if err != nil {
		return err
	}
	runner.Port = *port
	runner.Lifecycle = lifecycle
	var counters *conferr.LifecycleCounters
	if lifecycle != conferr.LifecycleCold {
		counters = &conferr.LifecycleCounters{}
		runner.PoolCounters = counters
	}
	prof, err := runner.Run(ctx,
		conferr.WithParallelism(*workers),
		conferr.WithBaselineCheck())
	if err != nil {
		return err
	}
	if counters != nil {
		fmt.Printf("lifecycle=%s %s\n", lifecycle, counters.Snapshot())
	}
	if n := len(prof.Records); n >= recordRetentionWarn {
		fmt.Fprintf(os.Stderr, "conferr: warning: %d records retained in memory; for faultloads this size prefer `conferr matrix -stream-out FILE` (bounded memory) or `conferr dist`\n", n)
	}
	s := prof.Summarize()
	fmt.Printf("system=%s generator=%s workers=%d\n", prof.System, prof.Generator, *workers)
	fmt.Print(profile.FormatTable1(s))
	fmt.Println()
	fmt.Println("Per-class detection:")
	fmt.Print(conferr.DetectionByClass(prof))
	if *records {
		fmt.Println()
		fmt.Print(prof.FormatRecords())
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := prof.WriteJSON(f); err != nil {
			return err
		}
		fmt.Println("profile written to", *jsonOut)
	}
	return nil
}

// cmdMatrix runs a target × generator matrix as one streaming campaign
// suite: every cell's faultload is pulled lazily from its generator and
// fanned out under a shared worker budget, so neither the scenario lists
// nor (with -stream-out) the profiles ever materialize in memory —
// million-scenario faultloads run in bounded space.
func cmdMatrix(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	systems := fs.String("systems", "", "comma-separated registered systems (empty or \"all\" = every system)")
	plugins := fs.String("plugins", "typo", "comma-separated registered plugins (\"all\" = every plugin)")
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	perModel := fs.Int("per-model", 0, "typo scenarios per submodel (0 = all)")
	perClass := fs.Int("per-class", 0, "structural/variation scenarios per class (0 = all)")
	limit := fs.Int("limit", 0, "cap each cell's faultload, lazily (0 = off)")
	rounds := fs.Int("rounds", 0, "replay each cell's faultload N times with round-prefixed IDs (scale harness)")
	sample := fs.Int("sample", 0, "reservoir-sample N scenarios per cell (0 = off)")
	streamOut := fs.String("stream-out", "", "stream records of all cells to this file instead of keeping profiles in memory (.cprof = compact binary frames, - = JSONL on stdout, else JSONL)")
	noDuration := fs.Bool("no-duration", false, "zero the duration_ns field in streamed records, making equivalent runs byte-comparable")
	basePort := fs.Int("base-port", 24100, "primary port of cell i is base-port+i, keeping faultloads reproducible (0 = allocate)")
	keepGoing := fs.Bool("keep-going", false, "keep running remaining cells when one fails")
	lifecycleS := fs.String("lifecycle", "cold", "worker SUT lifecycle: cold, reload (warm pooled instances) or validate (parse-only)")
	memnet := fs.Bool("memnet", false, "serve SUTs over the in-process transport instead of kernel loopback TCP")
	expTO := fs.Duration("experiment-timeout", 0, "watchdog deadline per experiment; expiry records an infrastructure error and the campaign continues (0 = off)")
	phaseTO := fs.Duration("phase-timeout", 0, "watchdog deadline per SUT phase (start, reload, probe, stop); expiry quarantines the instance and records an infrastructure error (0 = off)")
	workers := workersFlag(fs)
	diag := addDiagFlags(fs)
	_ = fs.Parse(args)

	lifecycle, err := conferr.ParseLifecycle(*lifecycleS)
	if err != nil {
		return err
	}
	if lifecycle == conferr.LifecycleReload && !*memnet {
		// Warm instances keep their listeners bound across experiments, so
		// on kernel TCP a typo'd port another cell (or an unrelated
		// process) holds can surface as a bind failure the cold lifecycle
		// would not see, and records stop being comparable across runs.
		// The in-process transport gives every instance a private port
		// namespace, which is what the reload equivalence guarantees are
		// stated against.
		fmt.Fprintln(os.Stderr, "conferr: warning: -lifecycle=reload on kernel TCP can diverge from cold-lifecycle records when typo'd ports collide with bound listeners; use -memnet for collision-free port namespaces")
	}

	stopDiag, err := diag.start()
	if err != nil {
		return err
	}
	defer func() { _ = stopDiag() }()

	sysNames := splitNames(*systems)
	if isAll(sysNames) {
		sysNames = conferr.RegisteredTargets()
	}
	plugNames := splitNames(*plugins)
	if isAll(plugNames) {
		plugNames = conferr.RegisteredGenerators()
	}
	entries, skipped, err := conferr.MatrixEntries(sysNames, plugNames, conferr.GeneratorOptions{
		Seed: *seed, PerModel: *perModel, PerClass: *perClass,
	})
	if err != nil {
		return err
	}
	for _, s := range skipped {
		fmt.Fprintln(os.Stderr, "conferr: skipping", s)
	}
	if len(entries) == 0 {
		return fmt.Errorf("matrix is empty (all %d pairs skipped)", len(skipped))
	}

	mo := conferr.MatrixOptions{
		Workers:           *workers,
		BasePort:          *basePort,
		Limit:             *limit,
		Rounds:            *rounds,
		Sample:            *sample,
		KeepGoing:         *keepGoing,
		Lifecycle:         lifecycle,
		InMemory:          *memnet,
		ExperimentTimeout: *expTO,
		PhaseTimeout:      *phaseTO,
	}
	var counters *conferr.LifecycleCounters
	if lifecycle != conferr.LifecycleCold {
		counters = &conferr.LifecycleCounters{}
		mo.PoolCounters = counters
	}
	var finishOut func() error
	// With `-stream-out -` the record stream owns stdout, so the summary
	// table and notes move to stderr.
	info := io.Writer(os.Stdout)
	switch {
	case *streamOut == "-":
		info = os.Stderr
		bw := bufio.NewWriterSize(os.Stdout, 1<<20)
		lw := conferr.NewLockedWriter(bw)
		mo.SinkFor = jsonlSinkFor(lw, *noDuration)
		finishOut = func() error {
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("flushing stdout: %w", err)
			}
			return nil
		}
	case strings.HasSuffix(*streamOut, ".cprof"):
		// Extension-switched compact output: per-cell cprof sinks share
		// one frame writer (internally serialized), and the sinks are
		// shardable, so the engine's no-reassembly bypass stays on.
		cf, err := conferr.CreateCprof(*streamOut)
		if err != nil {
			return err
		}
		mo.SinkFor = func(e conferr.MatrixEntry) conferr.Sink {
			sink := conferr.Sink(cf.W.Sink(e.System, e.Plugin))
			if *noDuration {
				sink = conferr.StripDurations(sink)
			}
			return sink
		}
		finishOut = func() error {
			// Close(true) cuts partial frames and writes the trailer
			// index; a failure must fail the command — buffered records
			// exist nowhere else.
			if err := cf.Close(true); err != nil {
				return fmt.Errorf("finishing %s: %w", *streamOut, err)
			}
			return nil
		}
	case *streamOut != "":
		f, err := os.Create(*streamOut)
		if err != nil {
			return err
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		lw := conferr.NewLockedWriter(bw)
		mo.SinkFor = jsonlSinkFor(lw, *noDuration)
		finishOut = func() error {
			// A failed flush must fail the command: up to the buffer size
			// of records exists nowhere but here.
			if err := bw.Flush(); err != nil {
				_ = f.Close()
				return fmt.Errorf("flushing %s: %w", *streamOut, err)
			}
			return f.Close()
		}
	default:
		// Without a stream destination the CLI prints only the summary
		// table, yet the suite would dutifully accumulate every record in
		// memory — on large matrices roughly 40% of wall clock went to the
		// GC walking profiles nobody reads. Route records to the discard
		// sink instead; the suite's tally still feeds the summaries.
		mo.SinkFor = func(conferr.MatrixEntry) conferr.Sink { return conferr.DiscardSink }
	}

	res, err := conferr.RunMatrix(ctx, entries, mo)
	if res != nil {
		printMatrixResults(info, res)
	}
	if counters != nil {
		fmt.Fprintf(info, "lifecycle=%s %s\n", lifecycle, counters.Snapshot())
	}
	if finishOut != nil {
		if ferr := finishOut(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		return err
	}
	if *streamOut != "" && *streamOut != "-" {
		fmt.Fprintln(info, "records streamed to", *streamOut)
	}
	return nil
}

// jsonlSinkFor builds the per-cell sink factory for JSONL streaming:
// every cell renders into the same locked writer, optionally with
// durations stripped.
func jsonlSinkFor(lw io.Writer, noDuration bool) func(conferr.MatrixEntry) conferr.Sink {
	return func(e conferr.MatrixEntry) conferr.Sink {
		sink := conferr.Sink(conferr.NewJSONLSink(lw, e.System, e.Plugin))
		if noDuration {
			sink = conferr.StripDurations(sink)
		}
		return sink
	}
}

// printMatrixResults renders one row per suite cell.
func printMatrixResults(w io.Writer, res *conferr.SuiteResult) {
	fmt.Fprintf(w, "%-28s %12s %10s %8s %8s %8s %12s %10s\n",
		"campaign", "records", "startup", "test", "ignored", "not-exp", "duration", "exp/s")
	for _, cr := range res.Results {
		if cr.Err != nil {
			fmt.Fprintf(w, "%-28s failed: %v\n", cr.Name, cr.Err)
			continue
		}
		s := cr.Summary
		rate := ""
		if sec := cr.Duration.Seconds(); sec > 0 {
			rate = fmt.Sprintf("%.0f", float64(cr.Records)/sec)
		}
		fmt.Fprintf(w, "%-28s %12d %10d %8d %8d %8d %12s %10s\n",
			cr.Name, cr.Records, s.AtStartup, s.ByTest, s.Ignored, s.NotExpressible,
			cr.Duration.Round(time.Millisecond), rate)
	}
}

// isAll reports whether a name list means "every registered one": empty,
// or the single wildcard "all".
func isAll(names []string) bool {
	return len(names) == 0 || (len(names) == 1 && names[0] == "all")
}

// splitNames parses a comma-separated flag value, dropping repeats: a
// duplicated name would run the same matrix cell twice and, under
// -stream-out, merge both cells' records into one JSONL profile.
func splitNames(s string) []string {
	var out []string
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" && !seen[part] {
			seen[part] = true
			out = append(out, part)
		}
	}
	return out
}

func cmdList(args []string) error {
	fmt.Println("systems:")
	for _, name := range conferr.RegisteredTargets() {
		fmt.Println(" ", name)
	}
	fmt.Println("plugins:")
	for _, name := range conferr.RegisteredGenerators() {
		fmt.Println(" ", name)
	}
	return nil
}

func cmdAll(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	workers := workersFlag(fs)
	_ = fs.Parse(args)
	w := fmt.Sprint(*workers)
	if err := cmdTable1(ctx, []string{"-seed", fmt.Sprint(*seed), "-workers", w}); err != nil {
		return err
	}
	fmt.Println()
	if err := cmdTable2(ctx, []string{"-seed", fmt.Sprint(*seed), "-workers", w}); err != nil {
		return err
	}
	fmt.Println()
	if err := cmdTable3(ctx, []string{"-workers", w}); err != nil {
		return err
	}
	fmt.Println()
	if err := cmdFigure3(ctx, []string{"-seed", fmt.Sprint(*seed), "-workers", w}); err != nil {
		return err
	}
	fmt.Println()
	return cmdEditBench(ctx, []string{"-seed", fmt.Sprint(*seed), "-workers", w})
}
