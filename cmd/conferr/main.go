// Command conferr runs ConfErr campaigns and the paper's evaluation
// experiments against the built-in simulated systems.
//
//	conferr table1 [-seed N]          reproduce Table 1 (typo resilience)
//	conferr table2 [-seed N] [-n N]   reproduce Table 2 (structural variations)
//	conferr table3 [-extended]        reproduce Table 3 (DNS semantic errors)
//	conferr figure3 [-seed N] [-n N]  reproduce Figure 3 (MySQL vs Postgres)
//	conferr campaign -system S -plugin P [-seed N] [-records]
//	                                  run one custom campaign and summarize
//	conferr all [-seed N]             run every experiment
//
// Systems: mysql, postgres, apache, bind, djbdns. Plugins: typo,
// structural, variations, semantic (semantic applies to bind/djbdns only).
package main

import (
	"flag"
	"fmt"
	"os"

	"conferr"
	"conferr/internal/profile"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1(rest)
	case "table2":
		err = cmdTable2(rest)
	case "table3":
		err = cmdTable3(rest)
	case "figure3":
		err = cmdFigure3(rest)
	case "campaign":
		err = cmdCampaign(rest)
	case "editbench":
		err = cmdEditBench(rest)
	case "compare":
		err = cmdCompare(rest)
	case "all":
		err = cmdAll(rest)
	case "help", "-h", "--help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "conferr: unknown command %q\n", cmd)
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "conferr:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: conferr <command> [flags]

commands:
  table1    reproduce Table 1: resilience to typos (MySQL, Postgres, Apache)
  table2    reproduce Table 2: resilience to structural errors
  table3    reproduce Table 3: resilience to semantic errors (BIND, djbdns)
  figure3   reproduce Figure 3: MySQL vs Postgres value-typo comparison
  campaign  run one campaign: -system mysql|postgres|apache|bind|djbdns
            -plugin typo|structural|variations|semantic
  editbench run the §5.5 configuration-process benchmark (typos near edits)
  compare   quantify the impact of MySQL's missing checks (before/after)
  all       run every experiment`)
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	_ = fs.Parse(args)
	res, err := conferr.RunTable1(*seed)
	if err != nil {
		return err
	}
	fmt.Println("Table 1. Resilience to typos")
	fmt.Print(res.Format())
	return nil
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	seed := fs.Int64("seed", conferr.DefaultSeed, "variation seed")
	n := fs.Int("n", 10, "variant configurations per class")
	_ = fs.Parse(args)
	res, err := conferr.RunTable2(*seed, *n)
	if err != nil {
		return err
	}
	fmt.Println("Table 2. Resilience to structural errors")
	fmt.Print(res.Format())
	return nil
}

func cmdTable3(args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	extended := fs.Bool("extended", false, "include extension fault classes")
	_ = fs.Parse(args)
	res, err := conferr.RunTable3(*extended)
	if err != nil {
		return err
	}
	fmt.Println("Table 3. Resilience to semantic errors")
	fmt.Print(res.Format())
	return nil
}

func cmdFigure3(args []string) error {
	fs := flag.NewFlagSet("figure3", flag.ExitOnError)
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	n := fs.Int("n", 20, "typo experiments per directive")
	_ = fs.Parse(args)
	res, err := conferr.RunFigure3(*seed, *n)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3. Resilience to typos in directive values, across all directives")
	fmt.Print(res.Format())
	return nil
}

func cmdEditBench(args []string) error {
	fs := flag.NewFlagSet("editbench", flag.ExitOnError)
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	n := fs.Int("n", 20, "typo variants per edit")
	_ = fs.Parse(args)
	res, err := conferr.RunEditBenchmark(*seed, *n)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

// cmdCompare runs the development-feedback comparison: the same typo
// faultload against MySQL with and without the simple checks the paper's
// profile suggests, diffing the two resilience profiles.
func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	n := fs.Int("n", 15, "value typos per directive")
	_ = fs.Parse(args)

	const port = 23467
	campaign := func(newTarget func(int) (*conferr.SystemTarget, error)) (*conferr.Profile, error) {
		tgt, err := newTarget(port)
		if err != nil {
			return nil, err
		}
		c := &conferr.Campaign{
			Target: tgt.Target,
			Generator: conferr.TypoGenerator(conferr.TypoOptions{
				Seed: *seed, ValuesOnly: true, PerDirective: *n,
			}),
		}
		return c.Run()
	}
	before, err := campaign(conferr.MySQLTargetAt)
	if err != nil {
		return err
	}
	after, err := campaign(conferr.MySQLStrictTargetAt)
	if err != nil {
		return err
	}
	sb, sa := before.Summarize(), after.Summarize()
	sb.System, sa.System = "before", "after"
	fmt.Println("MySQL value-typo resilience, before vs after the missing checks:")
	fmt.Print(profile.FormatTable1(sb, sa))
	cmp := conferr.CompareProfiles(before, after)
	fmt.Printf("improved=%d regressed=%d unchanged=%d\n",
		len(cmp.Improved), len(cmp.Regressed), cmp.Unchanged)
	return nil
}

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	system := fs.String("system", "", "target system")
	plugin := fs.String("plugin", "typo", "error generator plugin")
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	perModel := fs.Int("per-model", 0, "typo scenarios per submodel (0 = all)")
	records := fs.Bool("records", false, "print the full resilience profile")
	jsonOut := fs.String("json", "", "write the profile as JSON to this file")
	_ = fs.Parse(args)

	tgt, err := makeTarget(*system)
	if err != nil {
		return err
	}
	gen, err := makeGenerator(*system, *plugin, *seed, *perModel)
	if err != nil {
		return err
	}
	c := &conferr.Campaign{Target: tgt.Target, Generator: gen}
	if err := c.Baseline(); err != nil {
		return fmt.Errorf("baseline failed: %w", err)
	}
	prof, err := c.Run()
	if err != nil {
		return err
	}
	s := prof.Summarize()
	fmt.Printf("system=%s generator=%s\n", prof.System, prof.Generator)
	fmt.Print(profile.FormatTable1(s))
	fmt.Println()
	fmt.Println("Per-class detection:")
	fmt.Print(conferr.DetectionByClass(prof))
	if *records {
		fmt.Println()
		fmt.Print(prof.FormatRecords())
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := prof.WriteJSON(f); err != nil {
			return err
		}
		fmt.Println("profile written to", *jsonOut)
	}
	return nil
}

func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	seed := fs.Int64("seed", conferr.DefaultSeed, "faultload seed")
	_ = fs.Parse(args)
	if err := cmdTable1([]string{"-seed", fmt.Sprint(*seed)}); err != nil {
		return err
	}
	fmt.Println()
	if err := cmdTable2([]string{"-seed", fmt.Sprint(*seed)}); err != nil {
		return err
	}
	fmt.Println()
	if err := cmdTable3(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := cmdFigure3([]string{"-seed", fmt.Sprint(*seed)}); err != nil {
		return err
	}
	fmt.Println()
	return cmdEditBench([]string{"-seed", fmt.Sprint(*seed)})
}

func makeTarget(system string) (*conferr.SystemTarget, error) {
	switch system {
	case "mysql":
		return conferr.MySQLTarget()
	case "postgres":
		return conferr.PostgresTarget()
	case "apache":
		return conferr.ApacheTarget()
	case "bind":
		return conferr.BINDTarget()
	case "djbdns":
		return conferr.DjbdnsTarget()
	case "":
		return nil, fmt.Errorf("-system is required")
	default:
		return nil, fmt.Errorf("unknown system %q", system)
	}
}

func makeGenerator(system, plugin string, seed int64, perModel int) (conferr.Generator, error) {
	switch plugin {
	case "typo":
		return conferr.TypoGenerator(conferr.TypoOptions{Seed: seed, PerModel: perModel}), nil
	case "structural":
		return conferr.StructuralGenerator(conferr.StructuralOptions{Seed: seed, Sections: true}), nil
	case "variations":
		return conferr.VariationsGenerator(seed, 10, nil), nil
	case "semantic":
		switch system {
		case "bind":
			return conferr.SemanticDNSGenerator(conferr.BINDRecordView(), nil), nil
		case "djbdns":
			return conferr.SemanticDNSGenerator(conferr.DjbdnsRecordView(), nil), nil
		default:
			return nil, fmt.Errorf("semantic plugin applies to bind or djbdns, not %q", system)
		}
	default:
		return nil, fmt.Errorf("unknown plugin %q", plugin)
	}
}
