// Command sutd hosts any of the simulated systems under test as a
// standalone process, reading its configuration from files on disk. It
// exists so that ConfErr's external-process path (internal/proc) can be
// exercised against the same simulators the in-process campaigns use:
//
//	sutd -system mysql -dir /path/to/configs -port 23306
//
// The daemon loads the configuration files the selected system expects
// from -dir (my.cnf, postgresql.conf, httpd.conf, named.conf + zones, or
// data), starts the system, and runs until SIGTERM/SIGINT. A
// configuration rejected by the system makes sutd exit non-zero with the
// system's complaint on stderr — exactly what an init script would show
// an administrator.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"conferr"
	"conferr/internal/suts"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		system = flag.String("system", "",
			"system to host: "+strings.Join(conferr.RegisteredTargets(), "|"))
		dir   = flag.String("dir", ".", "directory holding the configuration files")
		port  = flag.Int("port", 0, "default port the system advertises (0 = allocate)")
		write = flag.Bool("write-default-config", false, "write the system's default configuration into -dir and exit")
	)
	flag.Parse()

	sys, files, err := makeSystem(*system, *port)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sutd:", err)
		return 2
	}

	if *write {
		for name, data := range sys.DefaultConfig() {
			path := filepath.Join(*dir, name)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "sutd:", err)
				return 1
			}
			fmt.Println("wrote", path)
		}
		return 0
	}

	loaded := make(suts.Files, len(files))
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join(*dir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sutd:", err)
			return 1
		}
		loaded[name] = data
	}

	if err := sys.Start(loaded); err != nil {
		fmt.Fprintln(os.Stderr, err.Error())
		return 1
	}
	if a, ok := sys.(suts.Addressable); ok {
		fmt.Println("sutd: serving on", a.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	if err := sys.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "sutd: stop:", err)
		return 1
	}
	return 0
}

// makeSystem constructs the selected system from the conferr registry and
// lists the configuration file names it reads from -dir (the keys of the
// target's format map).
func makeSystem(name string, port int) (suts.System, []string, error) {
	factory, err := conferr.LookupTarget(name)
	if err != nil {
		return nil, nil, err
	}
	tgt, err := factory(port)
	if err != nil {
		return nil, nil, err
	}
	files := make([]string, 0, len(tgt.Target.Formats))
	for f := range tgt.Target.Formats {
		files = append(files, f)
	}
	sort.Strings(files)
	return tgt.System, files, nil
}
