// Command sutd hosts any of the simulated systems under test as a
// standalone process, reading its configuration from files on disk. It
// exists so that ConfErr's external-process path (internal/proc) can be
// exercised against the same simulators the in-process campaigns use:
//
//	sutd -system mysql -dir /path/to/configs -port 23306
//
// The daemon loads the configuration files the selected system expects
// from -dir (my.cnf, postgresql.conf, httpd.conf, named.conf + zones, or
// data), starts the system, and runs until SIGTERM/SIGINT. A
// configuration rejected by the system makes sutd exit with status 3 and
// the system's complaint on stderr — exactly what an init script would
// show an administrator — while I/O failures exit 1 and usage errors 2.
//
// With -serve, sutd is instead a campaign worker daemon: it accepts
// shard requests from a `conferr dist` coordinator over a
// line-delimited JSON TCP protocol, re-derives its slice of the
// faultload locally, and streams sequence-tagged records back:
//
//	sutd -serve 127.0.0.1:9931
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"conferr"
	"conferr/internal/chaos"
	"conferr/internal/dist"
	"conferr/internal/suts"
)

// Exit statuses: distinct codes let init scripts and test harnesses tell
// an unreadable disk from a configuration the SUT itself rejected.
const (
	exitOK       = 0
	exitIO       = 1
	exitUsage    = 2
	exitRejected = 3
)

// writeConfigPort is the port baked into -write-default-config output
// when no -port is given. Writing config must not bind a socket just to
// pick an ephemeral number — that made the written files nondeterministic
// run to run.
const writeConfigPort = 24000

func main() {
	os.Exit(run())
}

func run() int {
	var (
		system = flag.String("system", "",
			"system to host: "+strings.Join(conferr.RegisteredTargets(), "|"))
		dir        = flag.String("dir", ".", "directory holding the configuration files")
		port       = flag.Int("port", 0, "default port the system advertises (0 = allocate; -write-default-config uses 24000)")
		write      = flag.Bool("write-default-config", false, "write the system's default configuration into -dir and exit")
		serve      = flag.String("serve", "", "host:port to serve campaign shards on (worker daemon mode)")
		heartbeat  = flag.Duration("heartbeat", time.Second, "progress heartbeat interval in -serve mode")
		drainGrace = flag.Duration("drain-grace", 2*time.Second, "-serve drain window: how long in-flight shards may keep running after SIGTERM before their contexts cancel")
		chaosSeed  = flag.Int64("chaos-seed", 0, "-serve fault injection: deterministically inject latency spikes, split writes and mid-frame resets into the shard protocol with this seed (0 = off; for soak-testing coordinator recovery)")
		quiet      = flag.Bool("quiet", false, "suppress -serve diagnostics")
	)
	flag.Parse()

	if *serve != "" {
		return serveWorker(*serve, *heartbeat, *drainGrace, *chaosSeed, *quiet)
	}

	// Writing the default configuration needs no running system and no
	// port allocation; a fixed port keeps the output deterministic.
	p := *port
	if *write && p == 0 {
		p = writeConfigPort
	}
	sys, files, err := makeSystem(*system, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sutd:", err)
		return exitUsage
	}

	if *write {
		defaults := sys.DefaultConfig()
		names := make([]string, 0, len(defaults))
		for name := range defaults {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			path := filepath.Join(*dir, name)
			if err := os.WriteFile(path, defaults[name], 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "sutd:", err)
				return exitIO
			}
			fmt.Println("wrote", path)
		}
		return exitOK
	}

	loaded := make(suts.Files, len(files))
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join(*dir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sutd:", err)
			return exitIO
		}
		loaded[name] = data
	}

	if err := sys.Start(loaded); err != nil {
		fmt.Fprintln(os.Stderr, err.Error())
		if suts.IsStartupError(err) {
			return exitRejected
		}
		return exitIO
	}
	// From here every exit path stops the system: a daemon that exits
	// reporting failure must not leave its SUT listening.
	if a, ok := sys.(suts.Addressable); ok {
		fmt.Println("sutd: serving on", a.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	if err := sys.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "sutd: stop:", err)
		return exitIO
	}
	return exitOK
}

// serveWorker runs the campaign worker daemon. The first SIGTERM/SIGINT
// drains: new dials fail so coordinators place work elsewhere, in-flight
// shards finish their current frame and abort with an explicit error
// frame (the coordinator retries from its resume front instead of
// diagnosing a severed connection), and silent shards are cancelled
// after the drain grace. A second signal force-closes everything.
func serveWorker(addr string, heartbeat, drainGrace time.Duration, chaosSeed int64, quiet bool) int {
	srv := &dist.Server{
		Runner:     conferr.NewDistRunner(),
		Heartbeat:  heartbeat,
		DrainGrace: drainGrace,
	}
	if chaosSeed != 0 {
		// The fault mix matches the chaos soak test: frequent split writes,
		// occasional latency, rare mid-frame resets — enough to exercise
		// every recovery path without starving shards of forward progress.
		srv.WrapConn = chaos.NewInjector(chaos.Config{
			Seed:        chaosSeed,
			LatencyProb: 0.0005, LatencyMax: 2 * time.Millisecond,
			SplitProb: 0.01,
			ResetProb: 0.0002,
		}).Wrap
		fmt.Fprintln(os.Stderr, "sutd: chaos fault injection armed, seed", chaosSeed)
	}
	if !quiet {
		srv.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "sutd: draining (signal again to force close)")
		_ = srv.Drain()
		<-sig
		fmt.Fprintln(os.Stderr, "sutd: force closing")
		_ = srv.Close()
	}()
	err := srv.ListenAndServe(context.Background(), addr, func(a net.Addr) {
		// The ready line goes to stdout so scripts listening on :0 can
		// scrape the allocated port.
		fmt.Println("sutd: worker listening on", a)
	})
	if err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintln(os.Stderr, "sutd:", err)
		return exitIO
	}
	return exitOK
}

// makeSystem constructs the selected system from the conferr registry and
// lists the configuration file names it reads from -dir (the keys of the
// target's format map).
func makeSystem(name string, port int) (suts.System, []string, error) {
	factory, err := conferr.LookupTarget(name)
	if err != nil {
		return nil, nil, err
	}
	tgt, err := factory(port)
	if err != nil {
		return nil, nil, err
	}
	files := make([]string, 0, len(tgt.Target.Formats))
	for f := range tgt.Target.Formats {
		files = append(files, f)
	}
	sort.Strings(files)
	return tgt.System, files, nil
}
