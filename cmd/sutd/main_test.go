package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMakeSystem(t *testing.T) {
	for _, name := range []string{"mysql", "postgres", "apache", "bind", "djbdns"} {
		sys, files, err := makeSystem(name, 0)
		if err != nil {
			t.Errorf("makeSystem(%s): %v", name, err)
			continue
		}
		if sys == nil || len(files) == 0 {
			t.Errorf("makeSystem(%s): empty result", name)
		}
		// Every listed file must exist in the default config.
		def := sys.DefaultConfig()
		for _, f := range files {
			if _, ok := def[f]; !ok {
				t.Errorf("%s: file %s not in default config", name, f)
			}
		}
	}
	if _, _, err := makeSystem("", 0); err == nil {
		t.Error("empty system accepted")
	}
	if _, _, err := makeSystem("bogus", 0); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestWriteDefaultConfig(t *testing.T) {
	dir := t.TempDir()
	sys, files, err := makeSystem("postgres", 25511)
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range sys.DefaultConfig() {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range files {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}
