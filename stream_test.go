package conferr

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"conferr/internal/profile"
)

// TestStreamingEquivalenceAllRegisteredTargets is the facade half of the
// streaming equivalence contract: for every target in the registry, the
// streaming runner (lazy faultload, bounded dispatch, ordered sink flush)
// must produce a record stream byte-identical to the materialized
// profile, at workers 1 and 4.
func TestStreamingEquivalenceAllRegisteredTargets(t *testing.T) {
	for i, system := range RegisteredTargets() {
		// A fixed primary port per subtest: the faultload typos the port
		// digits, so reruns must embed identical ports to produce
		// identical profiles.
		port := 23960 + i
		t.Run(system, func(t *testing.T) {
			mkRunner := func() *Runner {
				r, err := NewRunnerFor(system, "typo", GeneratorOptions{Seed: DefaultSeed, PerModel: 6})
				if err != nil {
					t.Fatal(err)
				}
				r.Port = port
				return r
			}
			want, err := mkRunner().Run(context.Background())
			if err != nil {
				t.Fatalf("materialized: %v", err)
			}
			// Some pairings (djbdns's tinydns data under the word view)
			// legitimately yield no typo scenarios; the contract is
			// equality, including equality of emptiness.
			if len(want.Records) == 0 {
				t.Logf("%s: empty typo faultload", system)
			}
			for _, workers := range []int{1, 4} {
				prof := &Profile{System: want.System, Generator: want.Generator}
				n, err := mkRunner().RunStream(context.Background(),
					&MemorySink{Profile: prof}, WithParallelism(workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if n != len(want.Records) {
					t.Errorf("workers=%d: streamed %d records, want %d", workers, n, len(want.Records))
				}
				if canonicalProfile(prof) != canonicalProfile(want) {
					t.Errorf("workers=%d: streaming diverged from materialized:\n%s",
						workers, firstDiff(canonicalProfile(prof), canonicalProfile(want)))
				}
			}
		})
	}
}

// TestRunMatrixStreamsJSONL runs a 2-system × 2-plugin suite with every
// cell streaming to one shared JSONL file, then splits the file back into
// per-campaign profiles and checks them against solo runs.
func TestRunMatrixStreamsJSONL(t *testing.T) {
	entries, skipped, err := MatrixEntries(
		[]string{"postgres", "redisd"},
		[]string{"typo", "structural"},
		GeneratorOptions{Seed: DefaultSeed, PerModel: 4, PerClass: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(entries) != 4 {
		t.Fatalf("entries = %d, skipped = %v", len(entries), skipped)
	}
	// Fixed primary ports so the solo comparison runs below inject the
	// byte-identical faultloads.
	for i := range entries {
		entries[i].Port = 23975 + i
	}

	var buf bytes.Buffer
	lw := NewLockedWriter(&buf)
	res, err := RunMatrix(context.Background(), entries, MatrixOptions{
		Workers: 4,
		SinkFor: func(e MatrixEntry) Sink { return NewJSONLSink(lw, e.System, e.Plugin) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(res.Results))
	}
	for _, cr := range res.Results {
		if cr.Err != nil {
			t.Fatalf("campaign %s: %v", cr.Name, cr.Err)
		}
		if cr.Profile != nil {
			t.Errorf("campaign %s retained an in-memory profile despite its sink", cr.Name)
		}
		if cr.Records == 0 || cr.Summary.Injected == 0 {
			t.Errorf("campaign %s: records=%d injected=%d", cr.Name, cr.Records, cr.Summary.Injected)
		}
	}

	profs, err := ReadProfilesJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 4 {
		t.Fatalf("JSONL split into %d profiles, want 4", len(profs))
	}
	// Each JSONL profile must match a solo materialized run of its cell.
	byKey := map[string]*Profile{}
	for _, p := range profs {
		byKey[p.System+"/"+p.Generator] = p
	}
	for _, e := range entries {
		got := byKey[e.System+"/"+e.Plugin]
		if got == nil {
			t.Fatalf("no JSONL profile for %s/%s", e.System, e.Plugin)
		}
		r, err := NewRunnerFor(e.System, e.Plugin, e.Options)
		if err != nil {
			t.Fatal(err)
		}
		r.Port = e.Port
		want, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// Identity fields differ (registry name vs simulator name); compare
		// the records.
		got.System, got.Generator = want.System, want.Generator
		if canonicalProfile(got) != canonicalProfile(want) {
			t.Errorf("%s/%s: JSONL profile diverged from solo run:\n%s",
				e.System, e.Plugin, firstDiff(canonicalProfile(got), canonicalProfile(want)))
		}
	}
}

// TestMatrixEntriesSkipsIncompatiblePairs: the semantic plugin only pairs
// with DNS targets; the matrix must skip, not fail.
func TestMatrixEntriesSkipsIncompatiblePairs(t *testing.T) {
	entries, skipped, err := MatrixEntries(
		[]string{"mysql", "bind"}, []string{"semantic"}, GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].System != "bind" {
		t.Errorf("entries = %+v, want only bind/semantic", entries)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "mysql/semantic") {
		t.Errorf("skipped = %v, want mysql/semantic", skipped)
	}
	if _, _, err := MatrixEntries([]string{"nope"}, []string{"typo"}, GeneratorOptions{}); err == nil {
		t.Error("unknown system accepted")
	}
}

// TestRunMatrixRoundsAndLimit: the scale options compose — rounds multiply
// the faultload with unique IDs, the limit caps it lazily.
func TestRunMatrixRoundsAndLimit(t *testing.T) {
	entries := []MatrixEntry{{System: "postgres", Plugin: "typo",
		Options: GeneratorOptions{Seed: 1, PerModel: 3}}}
	res, err := RunMatrix(context.Background(), entries, MatrixOptions{
		Workers: 2,
		Rounds:  50,
		Limit:   120,
	})
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Results[0]
	if cr.Records != 120 {
		t.Fatalf("records = %d, want the 120-cap", cr.Records)
	}
	ids := map[string]bool{}
	for _, rec := range cr.Profile.Records {
		if ids[rec.ScenarioID] {
			t.Fatalf("duplicate scenario ID %s across rounds", rec.ScenarioID)
		}
		ids[rec.ScenarioID] = true
	}
	if !strings.HasPrefix(cr.Profile.Records[0].ScenarioID, "r000/") {
		t.Errorf("first record %s lacks round prefix", cr.Profile.Records[0].ScenarioID)
	}
}

// TestTallySinkMatchesProfileOnStream: the O(1)-memory summary of a
// streamed campaign equals the materialized profile's Summarize.
func TestTallySinkMatchesProfileOnStream(t *testing.T) {
	r, err := NewRunnerFor("apache", "typo", GeneratorOptions{Seed: DefaultSeed, PerModel: 10})
	if err != nil {
		t.Fatal(err)
	}
	r.Port = 23985
	want, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tally := &TallySink{}
	r2, err := NewRunnerFor("apache", "typo", GeneratorOptions{Seed: DefaultSeed, PerModel: 10})
	if err != nil {
		t.Fatal(err)
	}
	r2.Port = 23985
	if _, err := r2.RunStream(context.Background(), tally, WithParallelism(4)); err != nil {
		t.Fatal(err)
	}
	got := tally.Summary()
	wantSum := want.Summarize()
	got.System = wantSum.System
	if got != wantSum {
		t.Errorf("tally = %+v, want %+v", got, wantSum)
	}
}

var _ Sink = (*profile.JSONLSink)(nil)
