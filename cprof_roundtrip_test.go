package conferr

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"conferr/internal/profile"
)

// mkCprofTestRunner builds a fresh nginx/typo runner on a fixed port so
// repeated runs inject byte-identical faultloads.
func mkCprofTestRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunnerFor("nginx", "typo", GeneratorOptions{Seed: DefaultSeed, PerModel: 6})
	if err != nil {
		t.Fatal(err)
	}
	r.Port = 23991
	return r
}

// TestCprofRoundTripByteIdentical is the format's equivalence contract:
// a campaign streamed into a cprof file — through the sharded,
// frame-interleaved path at workers 1, 4 and 8 — converts back to JSONL
// byte-identical to the stream a JSONLSink writes directly. Durations
// are stripped on both sides (two separate runs measure different
// wall-clock), which also proves StripDurations composes with the cprof
// sink without breaking its shardability.
func TestCprofRoundTripByteIdentical(t *testing.T) {
	var ref bytes.Buffer
	if _, err := mkCprofTestRunner(t).RunStream(context.Background(),
		StripDurations(NewJSONLSink(&ref, "nginx", "typo"))); err != nil {
		t.Fatal(err)
	}
	if ref.Len() == 0 {
		t.Fatal("reference run produced no records")
	}

	for _, workers := range []int{1, 4, 8} {
		path := filepath.Join(t.TempDir(), "stream.cprof")
		cf, err := CreateCprof(path)
		if err != nil {
			t.Fatal(err)
		}
		// Small frames force the sharded runs through multi-frame
		// interleavings the seq-ordered scan has to merge.
		cf.W.FrameRecords = 32
		sink := StripDurations(cf.W.Sink("nginx", "typo"))
		n, err := mkCprofTestRunner(t).RunStream(context.Background(), sink, WithParallelism(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := cf.Close(true); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := CprofToJSONL(path, &got); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(got.Bytes(), ref.Bytes()) {
			t.Errorf("workers=%d: cprof→JSONL diverges from direct JSONL (%d records, got %d bytes, want %d)",
				workers, n, got.Len(), ref.Len())
		}
	}
}

// TestCprofSameRunMatchesJSONLWithDurations checks lossless duration
// carriage: one run fans out to a JSONL sink and a cprof sink at once
// (the JSONL member makes the MultiSink unshardable, so both see the
// ordered stream), and the cprof file must replay byte-identical —
// durations included.
func TestCprofSameRunMatchesJSONLWithDurations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "both.cprof")
	cf, err := CreateCprof(path)
	if err != nil {
		t.Fatal(err)
	}
	cf.W.FrameRecords = 32
	var ref bytes.Buffer
	sink := profile.MultiSink{
		NewJSONLSink(&ref, "nginx", "typo"),
		cf.W.Sink("nginx", "typo"),
	}
	if _, err := mkCprofTestRunner(t).RunStream(context.Background(), sink, WithParallelism(4)); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(true); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := CprofToJSONL(path, &got); err != nil {
		t.Fatal(err)
	}
	if ref.Len() == 0 || !bytes.Equal(got.Bytes(), ref.Bytes()) {
		t.Fatalf("cprof replay diverges from same-run JSONL: got %d bytes, want %d", got.Len(), ref.Len())
	}

	// The compact file should actually be compact, durations and all.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= int64(ref.Len()) {
		t.Errorf("cprof (%d bytes) not smaller than JSONL (%d bytes)", st.Size(), ref.Len())
	}

	// Sanity: both formats fold to the same analytics.
	jstats, cstats := NewStreamStats(nil), NewStreamStats(nil)
	if err := ScanProfilesJSONL(bytes.NewReader(ref.Bytes()), jstats.Add); err != nil {
		t.Fatal(err)
	}
	if err := ScanProfilePath(path, cstats.Add); err != nil {
		t.Fatal(err)
	}
	jc, cc := jstats.Campaigns(), cstats.Campaigns()
	if len(jc) != 1 || len(cc) != 1 || jc[0].Summary != cc[0].Summary || jc[0].Duration != cc[0].Duration {
		t.Errorf("folds diverge across formats: %+v vs %+v", jc[0], cc[0])
	}
}

// TestCprofShardedWritePathEngaged pins the capability handshake: the
// cprof sink must advertise shardability (alone and under
// StripDurations) so the engine keeps its no-reassembly bypass, while a
// MultiSink containing a JSONL member must not.
func TestCprofShardedWritePathEngaged(t *testing.T) {
	cf, err := CreateCprof(filepath.Join(t.TempDir(), "cap.cprof"))
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close(false)
	base := cf.W.Sink("nginx", "typo")
	if _, ok := Sink(base).(profile.ShardableSink); !ok {
		t.Error("cprof sink is not shardable")
	}
	if !profile.CanShardSink(StripDurations(base)) {
		t.Error("StripDurations(cprof) lost shardability")
	}
	multi := profile.MultiSink{NewJSONLSink(&bytes.Buffer{}, "a", "b"), base}
	if multi.SinkShardable() {
		t.Error("MultiSink with a JSONL member claims shardability")
	}
}
