package conferr

import (
	"context"
	"fmt"
	"time"

	"conferr/internal/core"
)

// This file wires the core campaign-suite orchestrator to the registry:
// suites of named campaigns with a shared worker budget, and the target ×
// generator matrix the `conferr matrix` subcommand runs.

// Suite types, re-exported for API users.
type (
	// Suite runs a set of campaigns concurrently under one context with a
	// shared worker budget.
	Suite = core.Suite
	// SuiteCampaign is one suite cell: a named campaign plus options.
	SuiteCampaign = core.SuiteCampaign
	// SuiteResult aggregates a suite run.
	SuiteResult = core.SuiteResult
	// CampaignResult is the outcome of one suite cell.
	CampaignResult = core.CampaignResult
)

// NewSuiteCampaign builds one suite cell from a target family and a
// generator: the primary target (built at port; 0 allocates) serves
// faultload generation, and every worker runs its own factory-built SUT
// instance with port remapping — which is what lets several campaigns of
// one system family run concurrently in a suite without colliding.
func NewSuiteCampaign(name string, factory TargetFactory, port int, gen Generator) (SuiteCampaign, error) {
	return NewSuiteCampaignLifecycle(name, factory, port, gen, LifecycleCold, nil)
}

// NewSuiteCampaignLifecycle is NewSuiteCampaign with the worker SUT
// lifecycle selected: non-cold cells lease their worker SUTs from a
// per-cell pool (warm reloads or validate-only, falling back to cold for
// incapable systems) that is closed when the cell finishes. A non-nil
// counters aggregates lifecycle activity across cells.
func NewSuiteCampaignLifecycle(name string, factory TargetFactory, port int, gen Generator, mode Lifecycle, counters *LifecycleCounters) (SuiteCampaign, error) {
	primary, err := factory(port)
	if err != nil {
		return SuiteCampaign{}, fmt.Errorf("conferr: building %s primary target: %w", name, err)
	}
	workers, cleanup := lifecycleFactory(factory, primary, mode, counters)
	return SuiteCampaign{
		Name: name,
		Campaign: &core.Campaign{
			Target:    primary.Target,
			Generator: gen,
		},
		Options: []core.RunOption{core.WithTargetFactory(workers)},
		Cleanup: cleanup,
	}, nil
}

// MatrixEntry names one cell of a target × generator matrix, resolved from
// the registry at run time.
type MatrixEntry struct {
	// System is the registered target name.
	System string
	// Plugin is the registered generator name.
	Plugin string
	// Options parameterize the generator; Options.System is overwritten
	// with System.
	Options GeneratorOptions
	// Port fixes the primary port (0 = allocate, or MatrixOptions.BasePort
	// + index when set).
	Port int
}

// MatrixEntries builds the cross product of registered system and plugin
// names. Pairs whose generator cannot be built for the system (for
// example, the semantic plugin against a non-DNS target) are skipped and
// reported; unknown names are errors.
func MatrixEntries(systems, plugins []string, opts GeneratorOptions) (entries []MatrixEntry, skipped []string, err error) {
	for _, system := range systems {
		if _, err := LookupTarget(system); err != nil {
			return nil, nil, err
		}
		for _, plugin := range plugins {
			gf, err := LookupGenerator(plugin)
			if err != nil {
				return nil, nil, err
			}
			o := opts
			o.System = system
			if _, err := gf(o); err != nil {
				skipped = append(skipped, fmt.Sprintf("%s/%s: %v", system, plugin, err))
				continue
			}
			entries = append(entries, MatrixEntry{System: system, Plugin: plugin, Options: o})
		}
	}
	return entries, skipped, nil
}

// MatrixOptions shape a RunMatrix invocation.
type MatrixOptions struct {
	// Workers is the suite's total worker budget (0 = GOMAXPROCS).
	Workers int
	// BasePort, when non-zero, assigns entry i the primary port BasePort+i
	// (entries with an explicit Port keep it).
	BasePort int
	// Rounds > 1 replays each cell's faultload that many times with
	// round-prefixed scenario IDs — the scale harness (core.RepeatGenerator).
	Rounds int
	// Sample > 0 reservoir-samples that many scenarios per cell, seeded
	// from the entry's Options.Seed.
	Sample int
	// Limit > 0 caps each cell's faultload, lazily: generation past the
	// cap never happens.
	Limit int
	// KeepGoing keeps the remaining campaigns running when one fails.
	KeepGoing bool
	// Lifecycle selects how every cell's worker SUTs are driven:
	// LifecycleCold (default), LifecycleReload or LifecycleValidate.
	// Systems without the capability fall back to cold starts.
	Lifecycle Lifecycle
	// PoolCounters, when non-nil, aggregates the lifecycle activity of
	// every cell — pass one in to report reload/validate tallies after
	// the matrix.
	PoolCounters *LifecycleCounters
	// InMemory serves every cell's SUTs over the in-process transport
	// (see InMemoryTransport) instead of kernel loopback TCP. Profiles
	// are unchanged; the TCP stack is out of the picture.
	InMemory bool
	// SinkFor, when non-nil, supplies the streaming destination for each
	// entry's records; the suite then retains no per-record state for that
	// cell. When nil, each cell accumulates an in-memory profile.
	SinkFor func(entry MatrixEntry) Sink
	// ExperimentTimeout and PhaseTimeout arm the phase watchdog on every
	// cell: a SUT phase (start, probe, stop) exceeding its deadline is
	// recorded as an infrastructure error and the campaign continues. Zero
	// disables the watchdog — no per-experiment overhead.
	ExperimentTimeout time.Duration
	PhaseTimeout      time.Duration
}

// RunMatrix runs a target × generator matrix as one suite: every cell's
// faultload streams through the campaign engine under the shared worker
// budget, with per-campaign port allocation. Results come back in entry
// order.
func RunMatrix(ctx context.Context, entries []MatrixEntry, mo MatrixOptions) (*SuiteResult, error) {
	campaigns := make([]SuiteCampaign, 0, len(entries))
	for i, e := range entries {
		tf, err := LookupTarget(e.System)
		if err != nil {
			return nil, err
		}
		if mo.InMemory {
			tf = InMemoryTransport(tf)
		}
		gf, err := LookupGenerator(e.Plugin)
		if err != nil {
			return nil, err
		}
		o := e.Options
		o.System = e.System
		gen, err := gf(o)
		if err != nil {
			return nil, fmt.Errorf("conferr: matrix %s/%s: %w", e.System, e.Plugin, err)
		}
		if mo.Rounds > 1 {
			gen = core.RepeatGenerator(gen, mo.Rounds)
		}
		if mo.Sample > 0 {
			gen = core.SampleGenerator(gen, o.Seed, mo.Sample)
		}
		if mo.Limit > 0 {
			gen = core.LimitGenerator(gen, mo.Limit)
		}
		port := e.Port
		if port == 0 && mo.BasePort > 0 {
			port = mo.BasePort + i
		}
		sc, err := NewSuiteCampaignLifecycle(e.System+"/"+e.Plugin, tf, port, gen, mo.Lifecycle, mo.PoolCounters)
		if err != nil {
			return nil, err
		}
		if mo.SinkFor != nil {
			sc.Sink = mo.SinkFor(e)
		}
		if mo.ExperimentTimeout > 0 || mo.PhaseTimeout > 0 {
			sc.Options = append(sc.Options, core.WithDeadlines(core.Deadlines{
				Experiment: mo.ExperimentTimeout,
				Phase:      mo.PhaseTimeout,
			}))
		}
		campaigns = append(campaigns, sc)
	}
	suite := &Suite{Campaigns: campaigns, Workers: mo.Workers, KeepGoing: mo.KeepGoing}
	return suite.Run(ctx)
}
