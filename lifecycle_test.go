package conferr

import (
	"context"
	"testing"

	"conferr/internal/profile"
)

// Ports for this file, distinct from every other fixed port in the repo.
const (
	lifecycleTestNginxPort    = 23940
	lifecycleTestRedisPort    = 23941
	lifecycleTestPostgresPort = 23942
	lifecycleTestApachePort   = 23943
	lifecycleTestMatrixBase   = 23950 // matrix cells get base+i
)

// TestLifecycleReloadMatchesCold is the facade-level acceptance bar of
// the pooled lifecycle: against the real reload-capable simulators, a
// warm-reload campaign must produce profiles byte-identical (scenario
// IDs, classes, outcomes, details) to the cold engine at workers 1, 4
// and 8 — while actually taking the reload path.
func TestLifecycleReloadMatchesCold(t *testing.T) {
	cases := []struct {
		name    string
		factory TargetFactory
		gen     func() Generator
		port    int
	}{
		{"nginx-typo", NginxTargetAt,
			func() Generator {
				return TypoGenerator(TypoOptions{Seed: DefaultSeed, PerModel: 30})
			}, lifecycleTestNginxPort},
		{"redisd-typo", RedisdTargetAt,
			func() Generator {
				return TypoGenerator(TypoOptions{Seed: DefaultSeed, PerModel: 30})
			}, lifecycleTestRedisPort},
		{"postgres-typo", PostgresTargetAt,
			func() Generator {
				return TypoGenerator(TypoOptions{Seed: DefaultSeed, PerModel: 25})
			}, lifecycleTestPostgresPort},
		{"apache-typo", ApacheTargetAt,
			func() Generator {
				return TypoGenerator(TypoOptions{Seed: DefaultSeed, PerModel: 25})
			}, lifecycleTestApachePort},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cold := func() string {
				r := &Runner{Factory: tc.factory, Generator: tc.gen(), Port: tc.port}
				p, err := r.Run(context.Background())
				if err != nil {
					t.Fatalf("cold: %v", err)
				}
				if len(p.Records) == 0 {
					t.Fatal("cold: empty profile")
				}
				return canonicalProfile(p)
			}()
			for _, workers := range []int{1, 4, 8} {
				counters := &LifecycleCounters{}
				r := &Runner{
					Factory: tc.factory, Generator: tc.gen(), Port: tc.port,
					Lifecycle: LifecycleReload, PoolCounters: counters,
				}
				p, err := r.Run(context.Background(), WithParallelism(workers))
				if err != nil {
					t.Fatalf("reload workers=%d: %v", workers, err)
				}
				if got := canonicalProfile(p); got != cold {
					t.Errorf("reload workers=%d diverged from cold:\n%s",
						workers, firstDiff(cold, got))
				}
				snap := counters.Snapshot()
				if snap.Reloads == 0 {
					t.Errorf("workers=%d: no reloads — warm path never taken (%s)", workers, snap)
				}
			}
		})
	}
}

// TestLifecycleValidateSemantics pins validate-only mode at the facade:
// startup rejections keep their cold detail, accepted configurations
// become Ignored (no functional probes), and the SUT never boots.
func TestLifecycleValidateSemantics(t *testing.T) {
	gen := func() Generator {
		return TypoGenerator(TypoOptions{Seed: DefaultSeed, PerModel: 30})
	}
	coldProf, err := (&Runner{Factory: NginxTargetAt, Generator: gen(), Port: lifecycleTestNginxPort}).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	counters := &LifecycleCounters{}
	valProf, err := (&Runner{
		Factory: NginxTargetAt, Generator: gen(), Port: lifecycleTestNginxPort,
		Lifecycle: LifecycleValidate, PoolCounters: counters,
	}).Run(context.Background(), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(valProf.Records) != len(coldProf.Records) {
		t.Fatalf("records = %d, want %d", len(valProf.Records), len(coldProf.Records))
	}
	for i, r := range valProf.Records {
		cr := coldProf.Records[i]
		switch cr.Outcome {
		case profile.DetectedAtStartup:
			if r.Outcome != profile.DetectedAtStartup || r.Detail != cr.Detail {
				t.Errorf("%s: validate = (%v, %q), want cold's (%v, %q)",
					r.ScenarioID, r.Outcome, r.Detail, cr.Outcome, cr.Detail)
			}
		case profile.DetectedByTest, profile.Ignored:
			if r.Outcome != profile.Ignored {
				t.Errorf("%s: validate outcome = %v, want ignored", r.ScenarioID, r.Outcome)
			}
		default:
			if r.Outcome != cr.Outcome {
				t.Errorf("%s: validate outcome = %v, want cold's %v",
					r.ScenarioID, r.Outcome, cr.Outcome)
			}
		}
	}
	snap := counters.Snapshot()
	if snap.Validates == 0 {
		t.Errorf("no validates counted (%s)", snap)
	}
	if snap.ColdStarts != 0 {
		t.Errorf("validate mode cold-started the SUT (%s)", snap)
	}
}

// TestLifecycleMatrix runs a small matrix in reload mode end to end —
// the `conferr matrix -lifecycle=reload` path — and checks the per-cell
// profiles match a cold matrix.
func TestLifecycleMatrix(t *testing.T) {
	entries, skipped, err := MatrixEntries(
		[]string{"nginx", "redisd"}, []string{"typo"},
		GeneratorOptions{Seed: DefaultSeed, PerModel: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(entries) != 2 {
		t.Fatalf("entries=%d skipped=%v", len(entries), skipped)
	}
	run := func(mode Lifecycle, c *LifecycleCounters) *SuiteResult {
		res, err := RunMatrix(context.Background(), entries, MatrixOptions{
			Workers: 4, BasePort: lifecycleTestMatrixBase, Lifecycle: mode, PoolCounters: c,
		})
		if err != nil {
			t.Fatalf("%v matrix: %v", mode, err)
		}
		return res
	}
	cold := run(LifecycleCold, nil)
	counters := &LifecycleCounters{}
	warm := run(LifecycleReload, counters)
	for i := range cold.Results {
		cp, wp := cold.Results[i].Profile, warm.Results[i].Profile
		if canonicalProfile(cp) != canonicalProfile(wp) {
			t.Errorf("cell %s: reload matrix diverged:\n%s",
				cold.Results[i].Name, firstDiff(canonicalProfile(cp), canonicalProfile(wp)))
		}
	}
	if snap := counters.Snapshot(); snap.Reloads == 0 {
		t.Errorf("matrix reload mode never reloaded (%s)", snap)
	}
}
