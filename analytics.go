package conferr

import (
	"io"

	"conferr/internal/profile"
	"conferr/internal/profile/cprof"
)

// Streaming analytics and the compact profile format, re-exported for
// API users. A `.cprof` file carries the same entries as a JSONL
// profile in dictionary-compressed, delta-encoded, flate-framed blocks
// with a trailer index — roughly an order of magnitude smaller and
// faster to re-scan; see internal/profile/cprof for the format spec.
type (
	// StreamStats folds a record stream of any size into the paper's
	// report shapes (Tables 1-3, Figure 3, scorecards) in memory
	// proportional to the number of campaigns, not records.
	StreamStats = profile.StreamStats
	// CampaignStats is one campaign's aggregation within a StreamStats.
	CampaignStats = profile.CampaignStats
	// StatsDiff compares two folds — the resilience regression gate.
	StatsDiff = profile.StatsDiff
	// CprofWriter appends cprof frames to a stream; its Sink method is
	// the compact counterpart of NewJSONLSink.
	CprofWriter = cprof.Writer
	// CprofFile is a cprof writer bound to a file with flush/close
	// lifecycle (the stack behind `matrix -stream-out foo.cprof`).
	CprofFile = cprof.File
	// CprofFrameInfo describes one indexed frame of a cprof file.
	CprofFrameInfo = cprof.FrameInfo
)

// NewStreamStats returns an empty analytics fold. key, when non-nil,
// groups injected records for Figure 3 banding (e.g. wrap
// TypoDirectiveKey over the scenario ID); nil disables banding.
func NewStreamStats(key func(Record) string) *StreamStats {
	return profile.NewStreamStats(key)
}

// DiffProfileStats compares two folds campaign by campaign and class by
// class, in detection-rate percentage points.
func DiffProfileStats(before, after *StreamStats) StatsDiff {
	return profile.DiffStats(before, after)
}

// ParseJSONLLine decodes one JSONL profile line into its entry.
func ParseJSONLLine(line []byte) (JSONLEntry, error) {
	return profile.ParseJSONLLine(line)
}

// NewCprofWriter returns a writer appending cprof frames to w
// (typically buffered); Close writes the frame index and trailer.
func NewCprofWriter(w io.Writer) *CprofWriter { return cprof.NewWriter(w) }

// CreateCprof creates (or truncates) a cprof profile file.
func CreateCprof(path string) (*CprofFile, error) { return cprof.Create(path) }

// ScanProfileAuto streams a profile of either format (sniffed by
// content, not extension) entry by entry to fn, in file order.
func ScanProfileAuto(r io.Reader, fn func(JSONLEntry) error) error {
	return cprof.ScanAuto(r, fn)
}

// ScanProfilePath is ScanProfileAuto over a file path; "-" reads stdin.
func ScanProfilePath(path string, fn func(JSONLEntry) error) error {
	return cprof.ScanPath(path, fn)
}

// ScanProfileCprof streams a cprof stream entry by entry to fn, in file
// order — the binary counterpart of ScanProfilesJSONL.
func ScanProfileCprof(r io.Reader, fn func(JSONLEntry) error) error {
	return cprof.Scan(r, fn)
}

// ScanCprofSeqOrdered replays a cprof file in canonical order —
// campaigns by first appearance, records by sequence — merging
// shard-interleaved frames; the order that makes conversion to JSONL
// byte-identical to a directly written stream.
func ScanCprofSeqOrdered(path string, fn func(JSONLEntry) error) error {
	return cprof.ScanFileSeqOrdered(path, fn)
}

// CprofToJSONL renders a cprof file as canonical JSONL on w in
// canonical order — the lossless cprof→JSONL conversion.
func CprofToJSONL(path string, w io.Writer) error { return cprof.ToJSONL(path, w) }

// JSONLToCprof converts a JSONL stream into cprof frames on the writer
// (whose Close the caller owns) — the lossless JSONL→cprof conversion.
func JSONLToCprof(r io.Reader, w *CprofWriter) error { return cprof.FromJSONL(r, w) }
