// Package scenario defines fault scenarios: named, replayable mutations of
// configuration sets. Error-generator plugins synthesize scenarios (paper
// §3.1); the injection engine applies each one to a fresh clone of the
// initial configuration and observes the system under test.
package scenario

import (
	"errors"
	"fmt"
	"math/rand"

	"conferr/internal/confnode"
)

// ErrNotApplicable is returned by a scenario's Apply when the mutation it
// describes cannot be carried out on the given configuration (for example,
// the target node no longer exists). Such scenarios are skipped rather than
// counted as injections.
var ErrNotApplicable = errors.New("scenario not applicable to this configuration")

// Scenario is a single fault to inject: a mutation over an entire
// configuration set, which allows cross-file errors.
type Scenario struct {
	// ID uniquely identifies the scenario within a campaign, e.g.
	// "typo/substitution/my.cnf/3".
	ID string
	// Class is the fault class the scenario belongs to, e.g.
	// "typo/omission" or "structural/duplicate". Profiles aggregate by
	// class.
	Class string
	// Description says what the mutation does, in human terms, for the
	// resilience profile.
	Description string
	// Apply performs the mutation in place. The engine always passes a
	// clone of the initial configuration, so Apply may mutate freely.
	Apply func(set *confnode.Set) error
}

// Validate reports whether the scenario is well-formed. An empty Class
// is rejected: profiles aggregate by class, so a classless scenario would
// silently land in a "" bucket of every ByClass / DetectionByClass table
// instead of failing where the plugin is wrong.
func (s Scenario) Validate() error {
	if s.ID == "" {
		return errors.New("scenario: empty ID")
	}
	if s.Class == "" {
		return fmt.Errorf("scenario %s: empty Class", s.ID)
	}
	if s.Apply == nil {
		return fmt.Errorf("scenario %s: nil Apply", s.ID)
	}
	return nil
}

// RandomSubset returns n scenarios drawn uniformly without replacement,
// using the provided source of randomness. When n >= len(scenarios) a copy
// of the full set is returned. It corresponds to the paper's random-subset
// template used to limit the number of faults a model can return.
//
// The draw is a partial Fisher–Yates with the displaced positions kept in
// a map, so selecting a few scenarios from a huge faultload costs O(n)
// time and memory instead of copying and shuffling the full slice.
func RandomSubset(rng *rand.Rand, scenarios []Scenario, n int) []Scenario {
	if n < 0 {
		n = 0
	}
	if n >= len(scenarios) {
		cp := make([]Scenario, len(scenarios))
		copy(cp, scenarios)
		return cp
	}
	displaced := make(map[int]int, n)
	at := func(i int) int {
		if v, ok := displaced[i]; ok {
			return v
		}
		return i
	}
	out := make([]Scenario, n)
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(scenarios)-i)
		vi, vj := at(i), at(j)
		displaced[i], displaced[j] = vj, vi
		out[i] = scenarios[vj]
	}
	return out
}

// Filter returns the scenarios for which keep returns true.
func Filter(scenarios []Scenario, keep func(Scenario) bool) []Scenario {
	var out []Scenario
	for _, s := range scenarios {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// Limit returns at most n scenarios, preserving order.
func Limit(scenarios []Scenario, n int) []Scenario {
	if n < 0 {
		n = 0
	}
	if n > len(scenarios) {
		n = len(scenarios)
	}
	out := make([]Scenario, n)
	copy(out, scenarios)
	return out
}

// ByClass groups scenarios by their Class field, preserving order within
// each class.
func ByClass(scenarios []Scenario) map[string][]Scenario {
	out := make(map[string][]Scenario)
	for _, s := range scenarios {
		out[s.Class] = append(out[s.Class], s)
	}
	return out
}
