package scenario

import (
	"math/rand"
)

// Source is a pull-based stream of fault scenarios — the streaming
// counterpart of a []Scenario faultload. It has the shape of an
// iter.Seq2[Scenario, error]: calling the source with a yield function
// drives the stream, and the consumer stops it by returning false.
//
// Contract: scenarios are yielded in generator order with a nil error; a
// source that fails yields exactly one (zero Scenario, non-nil error) pair
// as its final element and stops. Sources are single-use unless documented
// otherwise — generators may consume internal RNG state while streaming.
//
// Because a Source is pulled one scenario at a time, a faultload streamed
// through it never exists as a slice: campaigns are bounded by the window
// of in-flight experiments, not by the faultload size.
type Source func(yield func(Scenario, error) bool)

// FromSlice adapts a materialized faultload into a Source.
func FromSlice(scenarios []Scenario) Source {
	return func(yield func(Scenario, error) bool) {
		for _, sc := range scenarios {
			if !yield(sc, nil) {
				return
			}
		}
	}
}

// Fail returns a Source that yields only the given error.
func Fail(err error) Source {
	return func(yield func(Scenario, error) bool) {
		yield(Scenario{}, err)
	}
}

// Collect materializes a Source back into a slice, stopping at the first
// stream error. It is the bridge from the streaming to the slice-based
// API: for every generator in this repository,
// Collect(GenerateStream(set)) must equal Generate(set).
func Collect(src Source) ([]Scenario, error) {
	var out []Scenario
	var ferr error
	src(func(sc Scenario, err error) bool {
		if err != nil {
			ferr = err
			return false
		}
		out = append(out, sc)
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	return out, nil
}

// Concat chains sources: each is drained in turn, preserving order — the
// paper's union template for composing error models, used to merge the
// faultloads of several generators. A stream error in any part terminates
// the whole stream.
func Concat(sources ...Source) Source {
	return func(yield func(Scenario, error) bool) {
		for _, src := range sources {
			stop := false
			src(func(sc Scenario, err error) bool {
				if err != nil {
					stop = true
					yield(sc, err)
					return false
				}
				if !yield(sc, nil) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return
			}
		}
	}
}

// Map applies f to every scenario, preserving order and errors — the
// stage behind ID-rewriting wrappers like round prefixing.
func (s Source) Map(f func(Scenario) Scenario) Source {
	return func(yield func(Scenario, error) bool) {
		s(func(sc Scenario, err error) bool {
			if err != nil {
				return yield(sc, err)
			}
			return yield(f(sc), nil)
		})
	}
}

// MapErr rewrites the stream's terminating error, if any, leaving
// scenarios untouched — the stage behind per-part error wrapping in
// composed generators.
func (s Source) MapErr(f func(error) error) Source {
	return func(yield func(Scenario, error) bool) {
		s(func(sc Scenario, err error) bool {
			if err != nil {
				return yield(sc, f(err))
			}
			return yield(sc, nil)
		})
	}
}

// Filter keeps only the scenarios for which keep returns true, preserving
// order. It is the streaming form of the slice Filter.
func (s Source) Filter(keep func(Scenario) bool) Source {
	return func(yield func(Scenario, error) bool) {
		s(func(sc Scenario, err error) bool {
			if err != nil {
				return yield(sc, err)
			}
			if !keep(sc) {
				return true
			}
			return yield(sc, nil)
		})
	}
}

// Limit passes through at most n scenarios and then stops pulling from the
// upstream source — upstream generation work past the cap never happens.
func (s Source) Limit(n int) Source {
	return func(yield func(Scenario, error) bool) {
		if n <= 0 {
			return
		}
		left := n
		s(func(sc Scenario, err error) bool {
			if err != nil {
				return yield(sc, err)
			}
			if !yield(sc, nil) {
				return false
			}
			left--
			return left > 0
		})
	}
}

// Shard keeps only the scenarios at stream positions congruent to k
// modulo n — the strided sub-stream worker k of n pulls when a campaign's
// generation is sharded. The union of Shard(0,n) … Shard(n-1,n),
// interleaved by stride, is exactly the unsharded stream for every n; a
// stream error reaches every shard (after the shard's own prefix), so
// sharded consumers observe failures at a consistent point. n <= 1 (or an
// out-of-range k) returns the stream unchanged for the only valid shard,
// empty otherwise.
func (s Source) Shard(k, n int) Source {
	if n <= 1 {
		if k == 0 {
			return s
		}
		return func(func(Scenario, error) bool) {}
	}
	if k < 0 || k >= n {
		return func(func(Scenario, error) bool) {}
	}
	return func(yield func(Scenario, error) bool) {
		idx := 0
		s(func(sc Scenario, err error) bool {
			if err != nil {
				return yield(sc, err)
			}
			keep := idx%n == k
			idx++
			if !keep {
				return true
			}
			return yield(sc, nil)
		})
	}
}

// DedupByID drops scenarios whose ID was already seen, preserving first
// occurrences. Memory is O(distinct IDs) — far below a materialized
// faultload, but not constant; use it when merged sources may overlap.
func (s Source) DedupByID() Source {
	return func(yield func(Scenario, error) bool) {
		seen := make(map[string]struct{})
		s(func(sc Scenario, err error) bool {
			if err != nil {
				return yield(sc, err)
			}
			if _, dup := seen[sc.ID]; dup {
				return true
			}
			seen[sc.ID] = struct{}{}
			return yield(sc, nil)
		})
	}
}

// SampleN draws n scenarios uniformly without replacement via seeded
// reservoir sampling (Algorithm R): the whole stream is consumed, but only
// n scenarios are ever held in memory — the streaming replacement for
// materializing a faultload just to RandomSubset it. The sample is
// deterministic for a fixed seed and stream; its order is the reservoir's
// slot order, not stream order (like RandomSubset's draw order).
func (s Source) SampleN(seed int64, n int) Source {
	return func(yield func(Scenario, error) bool) {
		if n <= 0 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		reservoir := make([]Scenario, 0, n)
		seen := 0
		var ferr error
		s(func(sc Scenario, err error) bool {
			if err != nil {
				ferr = err
				return false
			}
			seen++
			if len(reservoir) < n {
				reservoir = append(reservoir, sc)
				return true
			}
			if j := rng.Intn(seen); j < n {
				reservoir[j] = sc
			}
			return true
		})
		if ferr != nil {
			yield(Scenario{}, ferr)
			return
		}
		for _, sc := range reservoir {
			if !yield(sc, nil) {
				return
			}
		}
	}
}
