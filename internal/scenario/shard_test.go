package scenario

import (
	"errors"
	"fmt"
	"testing"
)

func numbered(n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = Scenario{ID: fmt.Sprintf("s%03d", i), Class: "c"}
	}
	return out
}

func shardIDs(t *testing.T, src Source) []string {
	t.Helper()
	scens, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(scens))
	for i, sc := range scens {
		out[i] = sc.ID
	}
	return out
}

// TestShardParity is the sharding contract at the Source level: for any
// shard count, interleaving the shards by stride reproduces the unsharded
// stream exactly — order included.
func TestShardParity(t *testing.T) {
	for _, total := range []int{0, 1, 7, 8, 64, 65} {
		scens := numbered(total)
		want := shardIDs(t, FromSlice(scens))
		for _, n := range []int{1, 2, 3, 5, 8, 13} {
			shards := make([][]string, n)
			for k := 0; k < n; k++ {
				shards[k] = shardIDs(t, FromSlice(scens).Shard(k, n))
			}
			var merged []string
			for i := 0; ; i++ {
				k, j := i%n, i/n
				if i >= total {
					break
				}
				if j >= len(shards[k]) {
					t.Fatalf("total=%d n=%d: shard %d too short at global %d", total, n, k, i)
				}
				merged = append(merged, shards[k][j])
			}
			if fmt.Sprint(merged) != fmt.Sprint(want) {
				t.Errorf("total=%d n=%d: interleaved shards diverge from stream", total, n)
			}
			// No scenario may appear in two shards.
			count := 0
			for _, s := range shards {
				count += len(s)
			}
			if count != total {
				t.Errorf("total=%d n=%d: shards hold %d scenarios", total, n, count)
			}
		}
	}
}

// TestShardStridedOrder pins the exact stride: shard k of n holds
// positions k, k+n, k+2n…
func TestShardStridedOrder(t *testing.T) {
	got := shardIDs(t, FromSlice(numbered(10)).Shard(1, 4))
	want := []string{"s001", "s005", "s009"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("shard(1,4) = %v, want %v", got, want)
	}
}

// TestShardErrorReachesEveryShard: a stream error terminates every shard
// after its own prefix, so sharded consumers all observe the failure.
func TestShardErrorReachesEveryShard(t *testing.T) {
	boom := errors.New("boom")
	src := func() Source {
		return Concat(FromSlice(numbered(5)), Fail(boom))
	}
	for k := 0; k < 3; k++ {
		var got error
		n := 0
		src().Shard(k, 3)(func(sc Scenario, err error) bool {
			if err != nil {
				got = err
				return false
			}
			n++
			return true
		})
		if !errors.Is(got, boom) {
			t.Errorf("shard %d: error = %v, want boom", k, got)
		}
		wantN := len(shardIDs(t, FromSlice(numbered(5)).Shard(k, 3)))
		if n != wantN {
			t.Errorf("shard %d: %d scenarios before error, want %d", k, n, wantN)
		}
	}
}

// TestShardDegenerate covers the n<=1 and out-of-range cases.
func TestShardDegenerate(t *testing.T) {
	if got := shardIDs(t, FromSlice(numbered(4)).Shard(0, 1)); len(got) != 4 {
		t.Errorf("shard(0,1) = %v", got)
	}
	if got := shardIDs(t, FromSlice(numbered(4)).Shard(1, 1)); len(got) != 0 {
		t.Errorf("shard(1,1) = %v", got)
	}
	if got := shardIDs(t, FromSlice(numbered(4)).Shard(-1, 3)); len(got) != 0 {
		t.Errorf("shard(-1,3) = %v", got)
	}
	if got := shardIDs(t, FromSlice(numbered(4)).Shard(3, 3)); len(got) != 0 {
		t.Errorf("shard(3,3) = %v", got)
	}
}
