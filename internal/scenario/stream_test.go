package scenario

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"conferr/internal/confnode"
)

func mk(ids ...string) []Scenario {
	out := make([]Scenario, len(ids))
	for i, id := range ids {
		out[i] = Scenario{ID: id, Class: "c", Apply: func(*confnode.Set) error { return nil }}
	}
	return out
}

func streamIDs(t *testing.T, src Source) []string {
	t.Helper()
	scens, err := Collect(src)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	out := make([]string, len(scens))
	for i, sc := range scens {
		out[i] = sc.ID
	}
	return out
}

func TestFromSliceCollectRoundTrip(t *testing.T) {
	in := mk("a", "b", "c")
	got := streamIDs(t, FromSlice(in))
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("round trip = %v", got)
	}
}

func TestFail(t *testing.T) {
	boom := errors.New("boom")
	if _, err := Collect(Fail(boom)); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestConcatPreservesOrderAndError(t *testing.T) {
	got := streamIDs(t, Concat(FromSlice(mk("a", "b")), FromSlice(mk("c"))))
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("concat = %v", got)
	}
	boom := errors.New("boom")
	scens, err := Collect(Concat(FromSlice(mk("a")), Fail(boom), FromSlice(mk("z"))))
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if scens != nil {
		t.Errorf("scenarios after error = %v, want nil", scens)
	}
}

func TestStreamFilter(t *testing.T) {
	src := FromSlice(mk("keep-1", "drop", "keep-2"))
	got := streamIDs(t, src.Filter(func(sc Scenario) bool { return strings.HasPrefix(sc.ID, "keep") }))
	if strings.Join(got, ",") != "keep-1,keep-2" {
		t.Errorf("filter = %v", got)
	}
}

func TestLimitStopsPullingUpstream(t *testing.T) {
	pulled := 0
	src := Source(func(yield func(Scenario, error) bool) {
		for i := 0; ; i++ {
			pulled++
			if !yield(Scenario{ID: string(rune('a' + i)), Class: "c"}, nil) {
				return
			}
		}
	})
	got := streamIDs(t, src.Limit(3))
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("limit = %v", got)
	}
	// An infinite upstream proves laziness: Limit must stop the pull, not
	// drain and truncate.
	if pulled != 3 {
		t.Errorf("upstream pulled %d times, want 3", pulled)
	}
	if got := streamIDs(t, FromSlice(mk("a")).Limit(0)); len(got) != 0 {
		t.Errorf("limit 0 = %v, want empty", got)
	}
}

func TestDedupByID(t *testing.T) {
	got := streamIDs(t, FromSlice(mk("a", "b", "a", "c", "b")).DedupByID())
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("dedup = %v", got)
	}
}

func TestSampleNDeterministicAndBounded(t *testing.T) {
	in := mk("a", "b", "c", "d", "e", "f", "g", "h")
	one := streamIDs(t, FromSlice(in).SampleN(7, 3))
	two := streamIDs(t, FromSlice(in).SampleN(7, 3))
	if strings.Join(one, ",") != strings.Join(two, ",") {
		t.Errorf("sample not deterministic: %v vs %v", one, two)
	}
	if len(one) != 3 {
		t.Errorf("sample size = %d, want 3", len(one))
	}
	seen := map[string]bool{}
	for _, id := range one {
		if seen[id] {
			t.Errorf("sample drew %q twice", id)
		}
		seen[id] = true
	}
	// n >= stream length keeps everything.
	if got := streamIDs(t, FromSlice(in).SampleN(7, 100)); len(got) != len(in) {
		t.Errorf("oversized sample = %d scenarios, want %d", len(got), len(in))
	}
}

func TestSampleNIsUniformish(t *testing.T) {
	// Over many seeds, every element of a 10-element stream should be
	// drawn into a 2-element sample at least once — a smoke test that the
	// reservoir actually replaces.
	in := mk("0", "1", "2", "3", "4", "5", "6", "7", "8", "9")
	counts := map[string]int{}
	for seed := int64(0); seed < 200; seed++ {
		for _, id := range streamIDs(t, FromSlice(in).SampleN(seed, 2)) {
			counts[id]++
		}
	}
	for _, sc := range in {
		if counts[sc.ID] == 0 {
			t.Errorf("element %q never sampled across 200 seeds", sc.ID)
		}
	}
}

func TestStagesCompose(t *testing.T) {
	src := Concat(FromSlice(mk("a", "b", "c")), FromSlice(mk("b", "d", "e", "f")))
	got := streamIDs(t, src.DedupByID().Filter(func(sc Scenario) bool { return sc.ID != "c" }).Limit(3))
	if strings.Join(got, ",") != "a,b,d" {
		t.Errorf("composed = %v", got)
	}
}

func TestRandomSubsetStillMatchesSeededDraw(t *testing.T) {
	// The eager RandomSubset remains the sampling primitive of the
	// materialized plugin paths (published experiment faultloads pin its
	// draws); this guards that the streaming work did not disturb it.
	in := mk("a", "b", "c", "d", "e")
	one := RandomSubset(rand.New(rand.NewSource(3)), in, 2)
	two := RandomSubset(rand.New(rand.NewSource(3)), in, 2)
	if one[0].ID != two[0].ID || one[1].ID != two[1].ID {
		t.Errorf("RandomSubset not deterministic: %v vs %v", one, two)
	}
}
