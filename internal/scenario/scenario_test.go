package scenario

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"conferr/internal/confnode"
)

func mkScenarios(n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = Scenario{
			ID:    string(rune('a' + i)),
			Class: map[bool]string{true: "even", false: "odd"}[i%2 == 0],
			Apply: func(*confnode.Set) error { return nil },
		}
	}
	return out
}

func ids(s []Scenario) []string {
	var out []string
	for _, x := range s {
		out = append(out, x.ID)
	}
	return out
}

func TestValidate(t *testing.T) {
	good := Scenario{ID: "x", Class: "c", Apply: func(*confnode.Set) error { return nil }}
	if err := good.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
	if err := (Scenario{Class: "c", Apply: good.Apply}).Validate(); err == nil {
		t.Error("empty ID accepted")
	}
	if err := (Scenario{ID: "x", Class: "c"}).Validate(); err == nil {
		t.Error("nil Apply accepted")
	}
	// An empty Class would silently become a "" bucket in every per-class
	// profile table; it must be rejected instead.
	if err := (Scenario{ID: "x", Apply: good.Apply}).Validate(); err == nil {
		t.Error("empty Class accepted")
	}
}

func TestRandomSubset(t *testing.T) {
	s := mkScenarios(10)
	rng := rand.New(rand.NewSource(42))
	sub := RandomSubset(rng, s, 4)
	if len(sub) != 4 {
		t.Fatalf("len = %d, want 4", len(sub))
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, x := range sub {
		if seen[x.ID] {
			t.Fatalf("duplicate %s", x.ID)
		}
		seen[x.ID] = true
	}
	// n >= len returns everything, original order.
	all := RandomSubset(rng, s, 100)
	if !reflect.DeepEqual(ids(all), ids(s)) {
		t.Error("oversized subset should be a copy of the input")
	}
	// Negative n is empty.
	if got := RandomSubset(rng, s, -1); len(got) != 0 {
		t.Errorf("negative n returned %d", len(got))
	}
	// Original slice unmodified.
	if !reflect.DeepEqual(ids(s), []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}) {
		t.Error("RandomSubset mutated its input")
	}
}

func TestRandomSubsetDeterministic(t *testing.T) {
	s := mkScenarios(10)
	a := RandomSubset(rand.New(rand.NewSource(7)), s, 5)
	b := RandomSubset(rand.New(rand.NewSource(7)), s, 5)
	if !reflect.DeepEqual(ids(a), ids(b)) {
		t.Error("same seed should give same subset")
	}
}

func TestFilter(t *testing.T) {
	s := mkScenarios(4)
	even := Filter(s, func(x Scenario) bool { return x.Class == "even" })
	if !reflect.DeepEqual(ids(even), []string{"a", "c"}) {
		t.Errorf("Filter = %v", ids(even))
	}
}

func TestLimit(t *testing.T) {
	s := mkScenarios(4)
	if got := Limit(s, 2); !reflect.DeepEqual(ids(got), []string{"a", "b"}) {
		t.Errorf("Limit(2) = %v", ids(got))
	}
	if got := Limit(s, 10); len(got) != 4 {
		t.Errorf("Limit(10) len = %d", len(got))
	}
	if got := Limit(s, -1); len(got) != 0 {
		t.Errorf("Limit(-1) len = %d", len(got))
	}
}

func TestByClass(t *testing.T) {
	s := mkScenarios(4)
	g := ByClass(s)
	if len(g) != 2 || len(g["even"]) != 2 || len(g["odd"]) != 2 {
		t.Errorf("ByClass = %v", g)
	}
}

func TestPropertySubsetSizeAndMembership(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		s := mkScenarios(12)
		n := int(nRaw % 15)
		sub := RandomSubset(rand.New(rand.NewSource(seed)), s, n)
		if n <= 12 && len(sub) != n && !(n > 12 && len(sub) == 12) {
			if len(sub) != min(n, 12) {
				return false
			}
		}
		valid := map[string]bool{}
		for _, x := range s {
			valid[x.ID] = true
		}
		for _, x := range sub {
			if !valid[x.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
