package keyboard

import (
	"testing"
	"testing/quick"
)

func TestUSQwertyContains(t *testing.T) {
	l := USQwerty()
	for _, r := range "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 `~!@#$%^&*()-_=+[]{}\\|;:'\",<.>/?" {
		if !l.Contains(r) {
			t.Errorf("US layout missing %q", r)
		}
	}
	if l.Contains('ü') {
		t.Error("US layout should not contain ü")
	}
	if l.Name() != "us-qwerty" {
		t.Errorf("Name = %q", l.Name())
	}
}

func TestSwissGermanContains(t *testing.T) {
	l := SwissGerman()
	for _, r := range "abcdefghijklmnopqrstuvwxyz0123456789üöäèéà çZ" {
		if !l.Contains(r) {
			t.Errorf("Swiss layout missing %q", r)
		}
	}
	// QWERTZ: z and y swapped relative to QWERTY.
	zKey, _, _ := l.KeyFor('z')
	yKey, _, _ := l.KeyFor('y')
	if zKey.Y != 1 || yKey.Y != 3 {
		t.Errorf("QWERTZ rows wrong: z row %v, y row %v", zKey.Y, yKey.Y)
	}
}

func TestKeyFor(t *testing.T) {
	l := USQwerty()
	k, mod, ok := l.KeyFor('a')
	if !ok || mod != ModNone || k.Base != 'a' {
		t.Errorf("KeyFor(a) = %v, %v, %v", k, mod, ok)
	}
	k2, mod2, ok2 := l.KeyFor('A')
	if !ok2 || mod2 != ModShift || k2.Shift != 'A' {
		t.Errorf("KeyFor(A) = %v, %v, %v", k2, mod2, ok2)
	}
	if k != k2 {
		t.Error("a and A should be on the same key")
	}
	if _, _, ok := l.KeyFor('€'); ok {
		t.Error("KeyFor(€) should fail")
	}
}

func TestKeyRune(t *testing.T) {
	k := Key{Base: 'a', Shift: 'A'}
	if r, ok := k.Rune(ModNone); !ok || r != 'a' {
		t.Errorf("Rune(none) = %q, %v", r, ok)
	}
	if r, ok := k.Rune(ModShift); !ok || r != 'A' {
		t.Errorf("Rune(shift) = %q, %v", r, ok)
	}
	sp := Key{Base: ' '}
	if _, ok := sp.Rune(ModShift); ok {
		t.Error("space shifted should produce nothing")
	}
}

func neighborSet(l *Layout, r rune) map[rune]bool {
	out := map[rune]bool{}
	for _, n := range l.Neighbors(r) {
		out[n] = true
	}
	return out
}

func TestNeighborsGeometry(t *testing.T) {
	l := USQwerty()
	tests := []struct {
		r       rune
		include []rune
		exclude []rune
	}{
		{'s', []rune{'a', 'd', 'w', 'e', 'x', 'z'}, []rune{'s', 'f', 'q', 'r', '2'}},
		{'5', []rune{'4', '6', 'r', 't'}, []rune{'5', 'e', 'y', 'f'}},
		{'S', []rune{'A', 'D', 'W', 'E', 'X', 'Z'}, []rune{'s', 'a', 'F'}},
		{'!', []rune{'~', '@', 'Q'}, []rune{'1', '#', 'W'}},
		{'q', []rune{'w', 'a', '1', '2'}, []rune{'e', 's', 'z'}},
	}
	for _, tt := range tests {
		got := neighborSet(l, tt.r)
		for _, want := range tt.include {
			if !got[want] {
				t.Errorf("Neighbors(%q) missing %q (got %q)", tt.r, want, l.Neighbors(tt.r))
			}
		}
		for _, not := range tt.exclude {
			if got[not] {
				t.Errorf("Neighbors(%q) wrongly includes %q", tt.r, not)
			}
		}
	}
}

func TestNeighborsSortedByDistance(t *testing.T) {
	l := USQwerty()
	n := l.Neighbors('g')
	if len(n) < 4 {
		t.Fatalf("Neighbors(g) = %q, too few", n)
	}
	// f and h are exactly 1 unit away; they must precede diagonals.
	firstTwo := map[rune]bool{n[0]: true, n[1]: true}
	if !firstTwo['f'] || !firstTwo['h'] {
		t.Errorf("nearest neighbors of g should be f,h; got %q", n[:2])
	}
}

func TestNeighborsUnknownRune(t *testing.T) {
	if USQwerty().Neighbors('€') != nil {
		t.Error("Neighbors of unknown rune should be nil")
	}
}

func TestNeighborsDeterministic(t *testing.T) {
	l := USQwerty()
	a := l.Neighbors('k')
	b := l.Neighbors('k')
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order not deterministic")
		}
	}
}

func TestShiftCounterpart(t *testing.T) {
	l := USQwerty()
	tests := []struct {
		in   rune
		want rune
	}{
		{'a', 'A'}, {'A', 'a'}, {'1', '!'}, {'!', '1'}, {';', ':'}, {'/', '?'},
	}
	for _, tt := range tests {
		got, ok := l.ShiftCounterpart(tt.in)
		if !ok || got != tt.want {
			t.Errorf("ShiftCounterpart(%q) = %q, %v; want %q", tt.in, got, ok, tt.want)
		}
	}
	if _, ok := l.ShiftCounterpart(' '); ok {
		t.Error("space has no shift counterpart")
	}
	if _, ok := l.ShiftCounterpart('€'); ok {
		t.Error("unknown rune has no counterpart")
	}
}

func TestRunes(t *testing.T) {
	l := USQwerty()
	rs := l.Runes()
	if len(rs) < 90 {
		t.Errorf("US layout produces %d runes, expected >= 90", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i-1] >= rs[i] {
			t.Fatal("Runes not sorted/unique")
		}
	}
}

func TestDefaultIsUS(t *testing.T) {
	if Default().Name() != "us-qwerty" {
		t.Error("Default should be US QWERTY")
	}
}

// Property: neighborhood is symmetric for same-modifier pairs — if b is a
// neighbor of a then a is a neighbor of b.
func TestPropertyNeighborSymmetry(t *testing.T) {
	for _, l := range []*Layout{USQwerty(), SwissGerman()} {
		for _, a := range l.Runes() {
			for _, b := range l.Neighbors(a) {
				_, amod, _ := l.KeyFor(a)
				_, bmod, _ := l.KeyFor(b)
				if amod != bmod {
					t.Errorf("%s: neighbor %q of %q has different modifier", l.Name(), b, a)
					continue
				}
				found := false
				for _, back := range l.Neighbors(b) {
					if back == a {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s: %q in Neighbors(%q) but not vice versa", l.Name(), b, a)
				}
			}
		}
	}
}

// Property: neighbors never include the rune itself and are unique.
func TestPropertyNeighborsProper(t *testing.T) {
	l := USQwerty()
	runes := l.Runes()
	f := func(idx uint16) bool {
		r := runes[int(idx)%len(runes)]
		seen := map[rune]bool{}
		for _, n := range l.Neighbors(r) {
			if n == r || seen[n] {
				return false
			}
			seen[n] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ShiftCounterpart is an involution where defined on both sides.
func TestPropertyShiftInvolution(t *testing.T) {
	for _, l := range []*Layout{USQwerty(), SwissGerman()} {
		for _, r := range l.Runes() {
			c, ok := l.ShiftCounterpart(r)
			if !ok {
				continue
			}
			back, ok2 := l.ShiftCounterpart(c)
			if !ok2 || back != r {
				t.Errorf("%s: ShiftCounterpart not involutive at %q (-> %q -> %q)", l.Name(), r, c, back)
			}
		}
	}
}
