// Package keyboard models physical keyboard layouts. The spelling-mistakes
// plugin uses it to produce realistic substitution and insertion typos: it
// locates the key (and modifier) that produces a character, then finds all
// characters a human could produce by mistakenly pressing a nearby key with
// the same modifier combination (paper §4.1).
package keyboard

import (
	"math"
	"sort"
)

// Modifier is a set of modifier keys held while pressing a key.
type Modifier uint8

// Modifier values. The model currently distinguishes only Shift, which is
// what the paper's substitution and case-alteration submodels require.
const (
	// ModNone means the key is pressed bare.
	ModNone Modifier = 0
	// ModShift means the key is pressed with Shift held.
	ModShift Modifier = 1 << iota
)

// Key is a physical key: a position on the board plus the characters it
// produces bare and shifted. A zero rune means the key produces nothing at
// that modifier level.
type Key struct {
	// X is the horizontal position in key units, including row stagger.
	X float64
	// Y is the row number (0 = digit row).
	Y float64
	// Base is the character produced with no modifiers.
	Base rune
	// Shift is the character produced with Shift held.
	Shift rune
}

// Rune returns the character the key produces under the given modifier,
// with ok reporting whether it produces one.
func (k Key) Rune(mod Modifier) (rune, bool) {
	var r rune
	if mod&ModShift != 0 {
		r = k.Shift
	} else {
		r = k.Base
	}
	return r, r != 0
}

// Layout is a keyboard layout: a set of keys with geometry.
type Layout struct {
	name string
	keys []Key
	// index maps each producible rune to its key index and modifier.
	index map[rune]keyRef
}

type keyRef struct {
	key int
	mod Modifier
}

// neighborThreshold is the maximum center distance, in key units, for two
// keys to count as neighbors. 1.3 covers the horizontally adjacent keys and
// the two or three diagonally adjacent keys of the staggered rows — the
// keys a finger plausibly slips to.
const neighborThreshold = 1.3

// NewLayout builds a layout from a key list. Later keys win when two keys
// claim the same rune (which does not occur in the built-in layouts).
func NewLayout(name string, keys []Key) *Layout {
	l := &Layout{name: name, keys: keys, index: make(map[rune]keyRef)}
	for i, k := range keys {
		if k.Base != 0 {
			l.index[k.Base] = keyRef{key: i, mod: ModNone}
		}
		if k.Shift != 0 {
			l.index[k.Shift] = keyRef{key: i, mod: ModShift}
		}
	}
	return l
}

// Name returns the layout's name.
func (l *Layout) Name() string { return l.name }

// Contains reports whether the layout can produce the rune.
func (l *Layout) Contains(r rune) bool {
	_, ok := l.index[r]
	return ok
}

// KeyFor returns the key and modifier that produce the rune.
func (l *Layout) KeyFor(r rune) (Key, Modifier, bool) {
	ref, ok := l.index[r]
	if !ok {
		return Key{}, ModNone, false
	}
	return l.keys[ref.key], ref.mod, true
}

// Neighbors returns the characters produced by pressing the keys adjacent
// to the one producing r, holding the same modifiers — the realistic
// outcomes of a finger slip. Results are sorted by distance, nearest
// first; ties are broken by rune value for determinism. The rune itself is
// never included. The result is nil when the layout cannot produce r.
func (l *Layout) Neighbors(r rune) []rune {
	ref, ok := l.index[r]
	if !ok {
		return nil
	}
	origin := l.keys[ref.key]
	type cand struct {
		r    rune
		dist float64
	}
	var cands []cand
	for i, k := range l.keys {
		if i == ref.key {
			continue
		}
		d := dist(origin, k)
		if d > neighborThreshold {
			continue
		}
		nr, ok := k.Rune(ref.mod)
		if !ok {
			continue
		}
		cands = append(cands, cand{r: nr, dist: d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].r < cands[j].r
	})
	out := make([]rune, len(cands))
	for i, c := range cands {
		out[i] = c.r
	}
	return out
}

// ShiftCounterpart returns the character on the same physical key at the
// opposite Shift level: the shifted character for a bare press and vice
// versa. It models Shift-miscoordination (case-alteration) errors. ok is
// false when the layout cannot produce r or the key has no counterpart.
func (l *Layout) ShiftCounterpart(r rune) (rune, bool) {
	ref, ok := l.index[r]
	if !ok {
		return 0, false
	}
	k := l.keys[ref.key]
	if ref.mod&ModShift != 0 {
		return k.Base, k.Base != 0
	}
	return k.Shift, k.Shift != 0
}

// Runes returns every rune the layout can produce, sorted.
func (l *Layout) Runes() []rune {
	out := make([]rune, 0, len(l.index))
	for r := range l.index {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dist(a, b Key) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// row builds a row of keys starting at the given x offset. base and shift
// are parallel strings of the characters produced at each position; a
// space in shift means the key has no shifted character (space itself is
// modeled as a dedicated key).
func row(y, startX float64, base, shift string) []Key {
	bs, ss := []rune(base), []rune(shift)
	keys := make([]Key, 0, len(bs))
	for i, b := range bs {
		var s rune
		if i < len(ss) {
			s = ss[i]
		}
		keys = append(keys, Key{X: startX + float64(i), Y: y, Base: b, Shift: s})
	}
	return keys
}

// USQwerty returns the standard ANSI US-QWERTY layout.
func USQwerty() *Layout {
	var keys []Key
	keys = append(keys, row(0, 0, "`1234567890-=", "~!@#$%^&*()_+")...)
	keys = append(keys, row(1, 1.5, "qwertyuiop[]\\", "QWERTYUIOP{}|")...)
	keys = append(keys, row(2, 1.75, "asdfghjkl;'", "ASDFGHJKL:\"")...)
	keys = append(keys, row(3, 2.25, "zxcvbnm,./", "ZXCVBNM<>?")...)
	// Space bar: wide key centered under the letter block. Modeled as a
	// single key; it neighbors nothing at threshold 1.3 because y distance
	// to row 3 is 1 and the bar center is far from most keys — but we place
	// it below v/b so insertions of stray spaces remain possible.
	keys = append(keys, Key{X: 6.5, Y: 4, Base: ' ', Shift: 0})
	return NewLayout("us-qwerty", keys)
}

// SwissGerman returns the Swiss-German QWERTZ layout (the authors' locale:
// EPFL, Switzerland), covering its ASCII-producible characters plus the
// common accented letters.
func SwissGerman() *Layout {
	var keys []Key
	keys = append(keys, row(0, 0, "§1234567890'^", "°+\"*ç%&/()=?`")...)
	keys = append(keys, row(1, 1.5, "qwertzuiopü¨", "QWERTZUIOPè!")...)
	keys = append(keys, row(2, 1.75, "asdfghjklöä$", "ASDFGHJKLéà£")...)
	keys = append(keys, row(3, 2.25, "yxcvbnm,.-", "YXCVBNM;:_")...)
	keys = append(keys, Key{X: 6.5, Y: 4, Base: ' ', Shift: 0})
	return NewLayout("swiss-german", keys)
}

// Default returns the layout used when none is specified: US-QWERTY.
func Default() *Layout { return USQwerty() }
