package keyboard

import "testing"

func BenchmarkNeighbors(b *testing.B) {
	l := USQwerty()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := l.Neighbors('g'); len(got) == 0 {
			b.Fatal("no neighbors")
		}
	}
}
