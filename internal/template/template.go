// Package template implements ConfErr's base fault templates (paper §3.3).
//
// A template describes a class of configuration-tree transformations —
// deletion, duplication, move, or content modification of nodes — and is
// parameterized with cpath expressions that select the nodes the
// transformation targets. Instantiating a template against an initial
// configuration set enumerates concrete fault scenarios, each of which can
// later be replayed against a fresh clone of the configuration.
package template

import (
	"fmt"
	"strconv"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/cpath"
	"conferr/internal/scenario"
)

// Template generates fault scenarios from an initial configuration set.
type Template interface {
	// Name identifies the template kind for scenario IDs and profiles.
	Name() string
	// Generate enumerates the scenarios this template yields for the given
	// initial configuration.
	Generate(set *confnode.Set) ([]scenario.Scenario, error)
	// GenerateStream yields the same scenarios as Generate, in the same
	// order, as a lazy pull stream: target selection walks the (small)
	// configuration up front, but the per-target scenario fan-out — the
	// part that grows with the faultload — happens one scenario at a time.
	GenerateStream(set *confnode.Set) scenario.Source
}

// collectStream implements the slice form of a template in terms of its
// stream; every template's Generate delegates here so the two forms cannot
// drift apart.
func collectStream(t Template, set *confnode.Set) ([]scenario.Scenario, error) {
	return scenario.Collect(t.GenerateStream(set))
}

// Ref is a stable reference to a node inside a configuration set: the
// logical file name plus the child-index path from the document root.
// Because the engine applies scenarios to clones of the initial set, refs
// (not node pointers) are what scenarios capture.
type Ref struct {
	// File is the logical configuration file name within the set.
	File string
	// Indices is the child-index path from the file's root to the node.
	Indices []int
}

// RefOf computes the Ref of a node that belongs to the tree stored under
// the given file name.
func RefOf(file string, n *confnode.Node) Ref {
	var idx []int
	for cur := n; cur.Parent() != nil; cur = cur.Parent() {
		idx = append(idx, cur.Index())
	}
	for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
		idx[i], idx[j] = idx[j], idx[i]
	}
	return Ref{File: file, Indices: idx}
}

// Resolve returns the node the ref denotes inside the set, or an error
// wrapping scenario.ErrNotApplicable when the path no longer exists.
func (r Ref) Resolve(set *confnode.Set) (*confnode.Node, error) {
	root := set.Get(r.File)
	if root == nil {
		return nil, fmt.Errorf("file %q not in set: %w", r.File, scenario.ErrNotApplicable)
	}
	n := root
	for _, i := range r.Indices {
		n = n.Child(i)
		if n == nil {
			return nil, fmt.Errorf("node %v not found: %w", r, scenario.ErrNotApplicable)
		}
	}
	return n, nil
}

// String renders the ref in the form "file#i1.i2...", parseable by
// ParseRef. The '#' separator keeps file names containing dots
// unambiguous.
func (r Ref) String() string {
	parts := make([]string, 0, len(r.Indices))
	for _, i := range r.Indices {
		parts = append(parts, fmt.Sprint(i))
	}
	return r.File + "#" + strings.Join(parts, ".")
}

// ParseRef parses the string form produced by Ref.String.
func ParseRef(s string) (Ref, error) {
	hash := strings.LastIndexByte(s, '#')
	if hash < 0 {
		return Ref{}, fmt.Errorf("template: malformed ref %q", s)
	}
	ref := Ref{File: s[:hash]}
	rest := s[hash+1:]
	if rest == "" {
		return ref, nil
	}
	for _, part := range strings.Split(rest, ".") {
		i, err := strconv.Atoi(part)
		if err != nil || i < 0 {
			return Ref{}, fmt.Errorf("template: malformed ref %q", s)
		}
		ref.Indices = append(ref.Indices, i)
	}
	return ref, nil
}

// targets evaluates expr over every file of the set and returns the refs of
// all matched nodes together with the nodes themselves (from the original,
// for descriptions).
func targets(set *confnode.Set, expr *cpath.Expr) []refNode {
	var out []refNode
	set.Walk(func(file string, root *confnode.Node) {
		for _, n := range expr.Select(root) {
			out = append(out, refNode{ref: RefOf(file, n), node: n})
		}
	})
	return out
}

type refNode struct {
	ref  Ref
	node *confnode.Node
}

// describe renders a node succinctly for scenario descriptions.
func describe(n *confnode.Node) string {
	s := n.Kind.String()
	if n.Name != "" {
		s += " " + truncate(n.Name)
	}
	if n.Value != "" {
		s += "=" + truncate(n.Value)
	}
	return s
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}

// DeleteTemplate generates one scenario per target node, each deleting that
// node (and its subtree). It models omissions: forgotten directives or
// whole sections (paper §2.2, §4.2).
type DeleteTemplate struct {
	// Targets selects the nodes to delete.
	Targets *cpath.Expr
	// Class overrides the scenario class; defaults to "delete".
	Class string
}

var _ Template = (*DeleteTemplate)(nil)

// Name implements Template.
func (t *DeleteTemplate) Name() string { return "delete" }

// Generate implements Template.
func (t *DeleteTemplate) Generate(set *confnode.Set) ([]scenario.Scenario, error) {
	return collectStream(t, set)
}

// GenerateStream implements Template.
func (t *DeleteTemplate) GenerateStream(set *confnode.Set) scenario.Source {
	class := t.Class
	if class == "" {
		class = "delete"
	}
	return func(yield func(scenario.Scenario, error) bool) {
		for i, tn := range targets(set, t.Targets) {
			ref := tn.ref
			sc := scenario.Scenario{
				ID:          fmt.Sprintf("%s/%s/%d", class, ref, i),
				Class:       class,
				Description: "delete " + describe(tn.node),
				Apply: func(s *confnode.Set) error {
					n, err := ref.Resolve(s)
					if err != nil {
						return err
					}
					if n.Parent() == nil {
						return fmt.Errorf("cannot delete root: %w", scenario.ErrNotApplicable)
					}
					n.Remove()
					return nil
				},
			}
			if !yield(sc, nil) {
				return
			}
		}
	}
}

// DuplicateTemplate generates one scenario per target node, each inserting
// a copy of the node immediately after the original. It models mistaken
// repetition of directives, e.g. via copy-paste (paper §2.2).
type DuplicateTemplate struct {
	// Targets selects the nodes to duplicate.
	Targets *cpath.Expr
	// Class overrides the scenario class; defaults to "duplicate".
	Class string
}

var _ Template = (*DuplicateTemplate)(nil)

// Name implements Template.
func (t *DuplicateTemplate) Name() string { return "duplicate" }

// Generate implements Template.
func (t *DuplicateTemplate) Generate(set *confnode.Set) ([]scenario.Scenario, error) {
	return collectStream(t, set)
}

// GenerateStream implements Template.
func (t *DuplicateTemplate) GenerateStream(set *confnode.Set) scenario.Source {
	class := t.Class
	if class == "" {
		class = "duplicate"
	}
	return func(yield func(scenario.Scenario, error) bool) {
		for i, tn := range targets(set, t.Targets) {
			ref := tn.ref
			sc := scenario.Scenario{
				ID:          fmt.Sprintf("%s/%s/%d", class, ref, i),
				Class:       class,
				Description: "duplicate " + describe(tn.node),
				Apply: func(s *confnode.Set) error {
					n, err := ref.Resolve(s)
					if err != nil {
						return err
					}
					p := n.Parent()
					if p == nil {
						return fmt.Errorf("cannot duplicate root: %w", scenario.ErrNotApplicable)
					}
					p.InsertAt(n.Index()+1, n.Clone())
					return nil
				},
			}
			if !yield(sc, nil) {
				return
			}
		}
	}
}

// MoveTemplate generates one scenario per (target, destination) pair,
// moving the target node to the end of the destination node's children.
// Pairs where the destination already contains the target, equals the
// target, or lies inside the target's subtree are skipped. It models
// misplacement of directives in the wrong section (paper §2.2, §4.2).
type MoveTemplate struct {
	// Targets selects the nodes to move.
	Targets *cpath.Expr
	// Destinations selects candidate new parents.
	Destinations *cpath.Expr
	// Class overrides the scenario class; defaults to "move".
	Class string
}

var _ Template = (*MoveTemplate)(nil)

// Name implements Template.
func (t *MoveTemplate) Name() string { return "move" }

// Generate implements Template.
func (t *MoveTemplate) Generate(set *confnode.Set) ([]scenario.Scenario, error) {
	return collectStream(t, set)
}

// GenerateStream implements Template. The (target × destination) cross
// product — quadratic in the configuration size — is enumerated lazily.
func (t *MoveTemplate) GenerateStream(set *confnode.Set) scenario.Source {
	class := t.Class
	if class == "" {
		class = "move"
	}
	return func(yield func(scenario.Scenario, error) bool) {
		tgts := targets(set, t.Targets)
		dsts := targets(set, t.Destinations)
		seq := 0
		for _, tn := range tgts {
			for _, dn := range dsts {
				if dn.node == tn.node || dn.node == tn.node.Parent() || isInside(dn.node, tn.node) {
					continue
				}
				tref, dref := tn.ref, dn.ref
				sc := scenario.Scenario{
					ID:    fmt.Sprintf("%s/%s->%s/%d", class, tref, dref, seq),
					Class: class,
					Description: fmt.Sprintf("move %s into %s",
						describe(tn.node), describe(dn.node)),
					Apply: func(s *confnode.Set) error {
						// Resolve the destination first: moving the target
						// changes sibling indices, which would invalidate a
						// destination ref passing through the same parent.
						d, err := dref.Resolve(s)
						if err != nil {
							return err
						}
						n, err := tref.Resolve(s)
						if err != nil {
							return err
						}
						if d == n || isInside(d, n) {
							return fmt.Errorf("destination inside target: %w", scenario.ErrNotApplicable)
						}
						n.Remove()
						d.Append(n)
						return nil
					},
				}
				if !yield(sc, nil) {
					return
				}
				seq++
			}
		}
	}
}

// isInside reports whether n is a strict descendant of root.
func isInside(n, root *confnode.Node) bool {
	for cur := n.Parent(); cur != nil; cur = cur.Parent() {
		if cur == root {
			return true
		}
	}
	return false
}

// Variant is one concrete modification of a node's content produced by a
// Mutator.
type Variant struct {
	// Description says what changed, e.g. `omit 'r' at 2: "pot"`.
	Description string
	// Apply performs the change on the (cloned) node.
	Apply func(n *confnode.Node)
}

// Mutator generates content-modification variants for a node. It is the
// specialization point of the abstract modify template: the spelling-
// mistakes plugin supplies mutators for omission, insertion, substitution,
// case alteration and transposition (paper §4.1).
type Mutator interface {
	// Name identifies the mutation submodel, e.g. "omission".
	Name() string
	// Variants enumerates the possible mutations of the node's content.
	Variants(n *confnode.Node) []Variant
}

// ModifyTemplate is the abstract modify template (paper §3.3): it generates
// one scenario per (target node, mutator variant) pair.
type ModifyTemplate struct {
	// Targets selects the nodes whose content is modified.
	Targets *cpath.Expr
	// Mutator supplies the content variants.
	Mutator Mutator
	// Class overrides the scenario class; defaults to "modify/<mutator>".
	Class string
}

var _ Template = (*ModifyTemplate)(nil)

// Name implements Template.
func (t *ModifyTemplate) Name() string { return "modify/" + t.Mutator.Name() }

// Generate implements Template.
func (t *ModifyTemplate) Generate(set *confnode.Set) ([]scenario.Scenario, error) {
	return collectStream(t, set)
}

// GenerateStream implements Template. Variants are expanded one target
// node at a time: at any moment only a single node's variant list is
// resident, however large the (targets × variants) faultload grows.
func (t *ModifyTemplate) GenerateStream(set *confnode.Set) scenario.Source {
	class := t.Class
	if class == "" {
		class = t.Name()
	}
	return func(yield func(scenario.Scenario, error) bool) {
		seq := 0
		for _, tn := range targets(set, t.Targets) {
			ref := tn.ref
			for _, v := range t.Mutator.Variants(tn.node) {
				apply := v.Apply
				sc := scenario.Scenario{
					ID:          fmt.Sprintf("%s/%s/%d", class, ref, seq),
					Class:       class,
					Description: fmt.Sprintf("%s on %s", v.Description, describe(tn.node)),
					Apply: func(s *confnode.Set) error {
						n, err := ref.Resolve(s)
						if err != nil {
							return err
						}
						apply(n)
						return nil
					},
				}
				if !yield(sc, nil) {
					return
				}
				seq++
			}
		}
	}
}

// UnionTemplate composes templates: its scenarios are the concatenation of
// the component templates' scenarios (paper §3.3 complex templates).
type UnionTemplate struct {
	// Parts are the composed templates, in order.
	Parts []Template
}

var _ Template = (*UnionTemplate)(nil)

// Name implements Template.
func (t *UnionTemplate) Name() string { return "union" }

// Generate implements Template.
func (t *UnionTemplate) Generate(set *confnode.Set) ([]scenario.Scenario, error) {
	return collectStream(t, set)
}

// GenerateStream implements Template: the parts' streams are chained
// lazily, in order.
func (t *UnionTemplate) GenerateStream(set *confnode.Set) scenario.Source {
	sources := make([]scenario.Source, len(t.Parts))
	for i, p := range t.Parts {
		part := p
		sources[i] = part.GenerateStream(set).MapErr(func(err error) error {
			return fmt.Errorf("union part %s: %w", part.Name(), err)
		})
	}
	return scenario.Concat(sources...)
}
