package template

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/cpath"
	"conferr/internal/scenario"
)

// initialSet builds a two-file configuration set:
//
//	my.cnf:  [mysqld] port=3306 key_buffer_size=16M ; [mysqldump] quick
//	b.conf:  single directive x=1
func initialSet() *confnode.Set {
	doc := confnode.New(confnode.KindDocument, "my.cnf")
	mysqld := confnode.New(confnode.KindSection, "mysqld")
	mysqld.Append(
		confnode.NewValued(confnode.KindDirective, "port", "3306"),
		confnode.NewValued(confnode.KindDirective, "key_buffer_size", "16M"),
	)
	dump := confnode.New(confnode.KindSection, "mysqldump")
	dump.Append(confnode.NewValued(confnode.KindDirective, "quick", ""))
	doc.Append(mysqld, dump)

	b := confnode.New(confnode.KindDocument, "b.conf")
	b.Append(confnode.NewValued(confnode.KindDirective, "x", "1"))

	set := confnode.NewSet()
	set.Put("my.cnf", doc)
	set.Put("b.conf", b)
	return set
}

func TestRefRoundTrip(t *testing.T) {
	set := initialSet()
	node := set.Get("my.cnf").Child(0).Child(1)
	ref := RefOf("my.cnf", node)
	got, err := ref.Resolve(set)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if got != node {
		t.Error("Resolve returned wrong node")
	}
	if ref.String() != "my.cnf#0.1" {
		t.Errorf("Ref.String = %q", ref.String())
	}
	parsed, err := ParseRef(ref.String())
	if err != nil {
		t.Fatalf("ParseRef: %v", err)
	}
	if parsed.File != ref.File || len(parsed.Indices) != 2 ||
		parsed.Indices[0] != 0 || parsed.Indices[1] != 1 {
		t.Errorf("ParseRef = %+v, want %+v", parsed, ref)
	}
}

func TestRefResolveErrors(t *testing.T) {
	set := initialSet()
	if _, err := (Ref{File: "nope"}).Resolve(set); !errors.Is(err, scenario.ErrNotApplicable) {
		t.Errorf("missing file: err = %v", err)
	}
	bad := Ref{File: "my.cnf", Indices: []int{0, 99}}
	if _, err := bad.Resolve(set); !errors.Is(err, scenario.ErrNotApplicable) {
		t.Errorf("missing node: err = %v", err)
	}
}

func TestDeleteTemplate(t *testing.T) {
	set := initialSet()
	tpl := &DeleteTemplate{Targets: cpath.MustCompile("//directive")}
	scens, err := tpl.Generate(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 4 {
		t.Fatalf("generated %d scenarios, want 4", len(scens))
	}
	// Apply the first (deletes port from a clone).
	clone := set.Clone()
	if err := scens[0].Apply(clone); err != nil {
		t.Fatal(err)
	}
	if clone.Get("my.cnf").Child(0).NumChildren() != 1 {
		t.Error("delete did not remove the directive")
	}
	// Original untouched.
	if set.Get("my.cnf").Child(0).NumChildren() != 2 {
		t.Error("original was mutated")
	}
	if scens[0].Class != "delete" {
		t.Errorf("Class = %q", scens[0].Class)
	}
	if !strings.Contains(scens[0].Description, "port") {
		t.Errorf("Description = %q", scens[0].Description)
	}
}

func TestDeleteTemplateCustomClass(t *testing.T) {
	set := initialSet()
	tpl := &DeleteTemplate{Targets: cpath.MustCompile("//section"), Class: "structural/omission"}
	scens, _ := tpl.Generate(set)
	if len(scens) != 2 {
		t.Fatalf("got %d scenarios", len(scens))
	}
	if scens[0].Class != "structural/omission" {
		t.Errorf("Class = %q", scens[0].Class)
	}
}

func TestDeleteRootNotApplicable(t *testing.T) {
	set := initialSet()
	tpl := &DeleteTemplate{Targets: cpath.MustCompile("/directive")}
	scens, _ := tpl.Generate(set)
	// b.conf's directive x — delete works.
	if len(scens) != 1 {
		t.Fatalf("got %d scenarios", len(scens))
	}
	// Now delete the node's parent first so Apply hits a stale ref.
	clone := set.Clone()
	clone.Get("b.conf").Child(0).Remove()
	if err := scens[0].Apply(clone); !errors.Is(err, scenario.ErrNotApplicable) {
		t.Errorf("stale ref: err = %v", err)
	}
}

func TestDuplicateTemplate(t *testing.T) {
	set := initialSet()
	tpl := &DuplicateTemplate{Targets: cpath.MustCompile("//directive[name='port']")}
	scens, err := tpl.Generate(set)
	if err != nil || len(scens) != 1 {
		t.Fatalf("scens=%d err=%v", len(scens), err)
	}
	clone := set.Clone()
	if err := scens[0].Apply(clone); err != nil {
		t.Fatal(err)
	}
	sec := clone.Get("my.cnf").Child(0)
	if sec.NumChildren() != 3 {
		t.Fatalf("children = %d, want 3", sec.NumChildren())
	}
	if sec.Child(0).Name != "port" || sec.Child(1).Name != "port" {
		t.Error("duplicate not adjacent to original")
	}
	if sec.Child(0) == sec.Child(1) {
		t.Error("duplicate shares node with original")
	}
}

func TestMoveTemplate(t *testing.T) {
	set := initialSet()
	tpl := &MoveTemplate{
		Targets:      cpath.MustCompile("//directive[name='port']"),
		Destinations: cpath.MustCompile("//section"),
	}
	scens, err := tpl.Generate(set)
	if err != nil {
		t.Fatal(err)
	}
	// port can move only to [mysqldump] (its own parent is excluded).
	if len(scens) != 1 {
		t.Fatalf("scenarios = %d, want 1", len(scens))
	}
	clone := set.Clone()
	if err := scens[0].Apply(clone); err != nil {
		t.Fatal(err)
	}
	mysqld := clone.Get("my.cnf").Child(0)
	dump := clone.Get("my.cnf").Child(1)
	if mysqld.NumChildren() != 1 {
		t.Error("port not removed from [mysqld]")
	}
	if dump.NumChildren() != 2 || dump.Child(1).Name != "port" {
		t.Error("port not appended to [mysqldump]")
	}
}

func TestMoveTemplateExcludesSelfAndDescendants(t *testing.T) {
	// Nested sections: moving an outer section into its own child must be
	// excluded.
	doc := confnode.New(confnode.KindDocument, "a")
	outer := confnode.New(confnode.KindSection, "outer")
	inner := confnode.New(confnode.KindSection, "inner")
	outer.Append(inner)
	doc.Append(outer)
	set := confnode.NewSet()
	set.Put("a", doc)

	tpl := &MoveTemplate{
		Targets:      cpath.MustCompile("/section:outer"),
		Destinations: cpath.MustCompile("//section"),
	}
	scens, err := tpl.Generate(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 0 {
		t.Errorf("generated %d scenarios, want 0 (self and descendant destinations excluded)", len(scens))
	}
}

func TestMoveCrossFile(t *testing.T) {
	set := initialSet()
	tpl := &MoveTemplate{
		Targets:      cpath.MustCompile("//directive[name='x']"),
		Destinations: cpath.MustCompile("//section:mysqld"),
	}
	scens, err := tpl.Generate(set)
	if err != nil || len(scens) != 1 {
		t.Fatalf("scens=%d err=%v", len(scens), err)
	}
	clone := set.Clone()
	if err := scens[0].Apply(clone); err != nil {
		t.Fatal(err)
	}
	if clone.Get("b.conf").NumChildren() != 0 {
		t.Error("x not removed from b.conf")
	}
	sec := clone.Get("my.cnf").Child(0)
	if sec.Child(sec.NumChildren()-1).Name != "x" {
		t.Error("x not moved into [mysqld]")
	}
}

type upperMutator struct{}

func (upperMutator) Name() string { return "upper" }

func (upperMutator) Variants(n *confnode.Node) []Variant {
	if n.Value == "" {
		return nil
	}
	return []Variant{{
		Description: "uppercase value",
		Apply:       func(m *confnode.Node) { m.Value = strings.ToUpper(m.Value) },
	}}
}

func TestModifyTemplate(t *testing.T) {
	set := initialSet()
	tpl := &ModifyTemplate{
		Targets: cpath.MustCompile("//directive"),
		Mutator: upperMutator{},
	}
	scens, err := tpl.Generate(set)
	if err != nil {
		t.Fatal(err)
	}
	// 3 directives have values (quick has none).
	if len(scens) != 3 {
		t.Fatalf("scenarios = %d, want 3", len(scens))
	}
	if tpl.Name() != "modify/upper" {
		t.Errorf("Name = %q", tpl.Name())
	}
	clone := set.Clone()
	if err := scens[1].Apply(clone); err != nil {
		t.Fatal(err)
	}
	if got := clone.Get("my.cnf").Child(0).Child(1).Value; got != "16M" {
		t.Errorf("value = %q, want 16M (already upper)", got)
	}
	if err := scens[0].Apply(clone); err != nil {
		t.Fatal(err)
	}
	if scens[0].Class != "modify/upper" {
		t.Errorf("Class = %q", scens[0].Class)
	}
}

func TestUnionTemplate(t *testing.T) {
	set := initialSet()
	u := &UnionTemplate{Parts: []Template{
		&DeleteTemplate{Targets: cpath.MustCompile("//section")},
		&DuplicateTemplate{Targets: cpath.MustCompile("//section")},
	}}
	scens, err := u.Generate(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 4 {
		t.Fatalf("scenarios = %d, want 4", len(scens))
	}
	if u.Name() != "union" {
		t.Errorf("Name = %q", u.Name())
	}
	classes := map[string]int{}
	for _, s := range scens {
		classes[s.Class]++
	}
	if classes["delete"] != 2 || classes["duplicate"] != 2 {
		t.Errorf("classes = %v", classes)
	}
}

type errTemplate struct{}

func (errTemplate) Name() string { return "boom" }
func (errTemplate) Generate(*confnode.Set) ([]scenario.Scenario, error) {
	return nil, fmt.Errorf("boom")
}
func (errTemplate) GenerateStream(*confnode.Set) scenario.Source {
	return scenario.Fail(fmt.Errorf("boom"))
}

func TestUnionTemplatePropagatesError(t *testing.T) {
	u := &UnionTemplate{Parts: []Template{errTemplate{}}}
	if _, err := u.Generate(initialSet()); err == nil {
		t.Error("expected error from failing part")
	}
}

func TestScenarioIDsUnique(t *testing.T) {
	set := initialSet()
	u := &UnionTemplate{Parts: []Template{
		&DeleteTemplate{Targets: cpath.MustCompile("//directive")},
		&DuplicateTemplate{Targets: cpath.MustCompile("//directive")},
		&ModifyTemplate{Targets: cpath.MustCompile("//directive"), Mutator: upperMutator{}},
	}}
	scens, err := u.Generate(set)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range scens {
		if err := s.Validate(); err != nil {
			t.Errorf("invalid scenario: %v", err)
		}
		if seen[s.ID] {
			t.Errorf("duplicate scenario ID %q", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestApplyIsReplayable(t *testing.T) {
	// The same scenario applied to two fresh clones must produce equal
	// results — the engine depends on replayability.
	set := initialSet()
	tpl := &DeleteTemplate{Targets: cpath.MustCompile("//directive")}
	scens, _ := tpl.Generate(set)
	for _, s := range scens {
		a, b := set.Clone(), set.Clone()
		if err := s.Apply(a); err != nil {
			t.Fatal(err)
		}
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("scenario %s not replayable", s.ID)
		}
	}
}

func TestDescribeTruncatesLongValues(t *testing.T) {
	long := strings.Repeat("x", 100)
	n := confnode.NewValued(confnode.KindDirective, "d", long)
	d := describe(n)
	if len(d) > 80 {
		t.Errorf("describe too long: %d chars", len(d))
	}
	if !strings.Contains(d, "...") {
		t.Errorf("describe should truncate: %q", d)
	}
}
