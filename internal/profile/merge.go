package profile

import (
	"bytes"
	"fmt"
	"io"
	"sort"
)

// SeqMerger reassembles sequence-tagged record lines arriving in any
// order — from interleaved shard streams, out-of-order delivery, or
// re-delivery after a retried shard — into one contiguous, gap-checked
// stream. Lines are flushed to the writer in exact sequence order as
// soon as every predecessor has arrived; duplicates (a shard retried
// after partial delivery re-sends its records) are detected by sequence
// number and dropped, with re-deliveries that disagree byte-for-byte
// reported as corruption rather than silently picked between.
//
// The merger is the coordinator-side half of distributed campaigns'
// determinism guarantee: because every record line is rendered by the
// same encoder from the same pure faultload, the merged stream is
// byte-identical to a single-process run of the same campaign. It is not
// concurrency-safe; callers serialize Add.
type SeqMerger struct {
	w       io.Writer
	next    int
	pending map[int][]byte
	dups    int
	flushed int
}

// NewSeqMerger returns a merger flushing to w, with start the first
// sequence number expected — non-zero when resuming a checkpointed
// campaign whose output already holds lines 0..start-1. Lines are added
// without their trailing newline; the merger appends one per flush.
func NewSeqMerger(w io.Writer, start int) *SeqMerger {
	return &SeqMerger{w: w, next: start, pending: make(map[int][]byte)}
}

// Add accepts one record line for the given global sequence number,
// parking it until its predecessors arrive and then flushing the
// contiguous run. The line is copied; callers may reuse the slice.
func (m *SeqMerger) Add(seq int, line []byte) error {
	if seq < 0 {
		return fmt.Errorf("profile: merge: negative sequence %d", seq)
	}
	if seq < m.next {
		// Already flushed — a retried shard re-delivering its prefix.
		m.dups++
		return nil
	}
	if prev, ok := m.pending[seq]; ok {
		if !bytes.Equal(prev, line) {
			return fmt.Errorf("profile: merge: sequence %d delivered twice with different content", seq)
		}
		m.dups++
		return nil
	}
	m.pending[seq] = append([]byte(nil), line...)
	for {
		l, ok := m.pending[m.next]
		if !ok {
			return nil
		}
		delete(m.pending, m.next)
		if _, err := m.w.Write(append(l, '\n')); err != nil {
			return fmt.Errorf("profile: merge: writing sequence %d: %w", m.next, err)
		}
		m.next++
		m.flushed++
	}
}

// Front returns the next sequence number the merger is waiting for; every
// sequence below it has been flushed, in order. This single number is a
// complete checkpoint of the merge: a resumed campaign re-fetches from
// here and nothing else.
func (m *SeqMerger) Front() int { return m.next }

// Flushed returns how many lines this merger has written (excluding any
// pre-existing prefix accounted by the start offset).
func (m *SeqMerger) Flushed() int { return m.flushed }

// PendingCount returns how many lines are parked past a gap.
func (m *SeqMerger) PendingCount() int { return len(m.pending) }

// Duplicates returns how many re-delivered lines were dropped.
func (m *SeqMerger) Duplicates() int { return m.dups }

// GapCheck verifies the merged stream is exactly sequences 0..total-1
// with nothing parked: the final integrity gate of a distributed
// campaign. The error names the first missing range, so an operator (or
// a resume run) knows precisely which sequences never arrived.
func (m *SeqMerger) GapCheck(total int) error {
	if m.next == total && len(m.pending) == 0 {
		return nil
	}
	if len(m.pending) == 0 {
		if m.next < total {
			return fmt.Errorf("profile: merge: gap: sequences %d..%d missing", m.next, total-1)
		}
		return fmt.Errorf("profile: merge: %d sequences flushed past the expected total %d", m.next, total)
	}
	parked := make([]int, 0, len(m.pending))
	for s := range m.pending {
		parked = append(parked, s)
	}
	sort.Ints(parked)
	return fmt.Errorf("profile: merge: gap: sequences %d..%d missing (%d records parked behind it, first %d)",
		m.next, parked[0]-1, len(parked), parked[0])
}
