package profile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Sink consumes injection records as the engine produces them — the
// streaming counterpart of accumulating a Profile. The runner calls Write
// from a single goroutine, in scenario order; sinks need no locking of
// their own. Writing to a shared destination from several concurrent
// campaigns is the caller's problem (see LockedWriter).
type Sink interface {
	// Write records one completed experiment. A non-nil error aborts the
	// campaign.
	Write(Record) error
}

// MemorySink accumulates records into the wrapped Profile — the sink
// behind the slice-returning campaign API.
type MemorySink struct {
	// Profile receives every record.
	Profile *Profile
}

// Write implements Sink.
func (s *MemorySink) Write(r Record) error {
	s.Profile.Add(r)
	return nil
}

// ShardableSink is a Sink whose writes are order-insensitive and can be
// fanned out: ShardSink hands out the k-th of n independent sub-sinks,
// each written by exactly one campaign worker with no locking and no
// ordering. The sharded campaign runner detects this capability (when no
// observer needs ordered records) and skips sequence reassembly entirely
// — workers fold their own shard's records and the owner merges at read
// time. Call ShardSink for every k before the run starts; reading the
// merged totals is only valid after the run completes.
type ShardableSink interface {
	Sink
	// ShardSink returns the k-th of n sub-sinks.
	ShardSink(k, n int) Sink
}

// CanShardSink reports whether the sink can actually fan out. Wrapper
// sinks (MultiSink) implement ShardSink unconditionally but are only
// shardable when every member is; such types report the effective
// capability via a SinkShardable() bool method, which takes precedence.
func CanShardSink(s Sink) bool {
	if w, ok := s.(interface{ SinkShardable() bool }); ok {
		return w.SinkShardable()
	}
	_, ok := s.(ShardableSink)
	return ok
}

// TallySink folds records into a running Summary without retaining them —
// O(1) memory whatever the faultload size, the companion of a JSONL sink
// on million-scenario campaigns. It is shardable: under a sharded
// parallel run each worker folds into its own padded counter set and
// Summary/Records merge the shards, so the hot path never shares a cache
// line between workers.
type TallySink struct {
	summary Summary
	records int
	shards  []tallyShard
}

var _ ShardableSink = (*TallySink)(nil)

// tallyShard is one worker's private counter set, padded to keep
// neighbouring shards out of each other's cache lines.
type tallyShard struct {
	summary Summary
	records int
	_       [64]byte
}

// Write implements Sink.
func (t *tallyShard) Write(r Record) error {
	t.records++
	t.summary.Add(r)
	return nil
}

// Write implements Sink.
func (s *TallySink) Write(r Record) error {
	s.records++
	s.summary.Add(r)
	return nil
}

// ShardSink implements ShardableSink. The n sub-sinks coexist with direct
// Write calls made outside the run; Summary and Records merge both.
func (s *TallySink) ShardSink(k, n int) Sink {
	if len(s.shards) < n {
		shards := make([]tallyShard, n)
		copy(shards, s.shards)
		s.shards = shards
	}
	return &s.shards[k]
}

// Summary returns the totals folded so far, merged across shards.
func (s *TallySink) Summary() Summary {
	out := s.summary
	for i := range s.shards {
		out.Merge(s.shards[i].summary)
	}
	return out
}

// Records returns how many records have been written, merged across
// shards.
func (s *TallySink) Records() int {
	n := s.records
	for i := range s.shards {
		n += s.shards[i].records
	}
	return n
}

// Discard drops every record — the sink for runs whose only output is a
// summary someone else tallies (the suite keeps its own TallySink per
// cell). Routing a summary-only campaign here instead of a MemorySink
// keeps million-scenario runs from retaining every record just to print
// four counters: the BENCH_7 measurement recorded ~40% of wall clock
// going to GC over the retained profile. It is shardable (no state at
// all), so the engine's no-reassembly bypass stays available.
var Discard Sink = discardSink{}

type discardSink struct{}

// Write implements Sink.
func (discardSink) Write(Record) error { return nil }

// ShardSink implements ShardableSink.
func (d discardSink) ShardSink(k, n int) Sink { return d }

// MultiSink fans every record out to each member, in order, stopping at
// the first error. It is shardable exactly when every member is (a suite
// tallying into two TallySinks keeps the engine's no-reassembly bypass;
// one ordered member — JSONL, memory — forces ordered flushing for all).
type MultiSink []Sink

// Write implements Sink.
func (m MultiSink) Write(r Record) error {
	for _, s := range m {
		if err := s.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// SinkShardable reports whether every member can fan out (see
// CanShardSink).
func (m MultiSink) SinkShardable() bool {
	for _, s := range m {
		if !CanShardSink(s) {
			return false
		}
	}
	return true
}

// ShardSink implements ShardableSink by fanning out each member. Only
// sound when SinkShardable reports true — the engine checks through
// CanShardSink.
func (m MultiSink) ShardSink(k, n int) Sink {
	out := make(MultiSink, len(m))
	for i, s := range m {
		out[i] = s.(ShardableSink).ShardSink(k, n)
	}
	return out
}

// StripDurations wraps a sink so every record's Duration is zeroed
// before the write. Duration is the one run-varying record field —
// everything else is deterministic for a fixed faultload — so stripped
// JSONL streams from two equivalent runs (cold vs warm-reload, one vs
// many workers) compare byte-identical.
func StripDurations(s Sink) Sink { return &stripDurationSink{s: s} }

type stripDurationSink struct{ s Sink }

// Write implements Sink.
func (d *stripDurationSink) Write(r Record) error {
	r.Duration = 0
	return d.s.Write(r)
}

// SinkShardable reports the wrapped sink's capability (see CanShardSink).
func (d *stripDurationSink) SinkShardable() bool { return CanShardSink(d.s) }

// ShardSink implements ShardableSink by stripping in front of the
// wrapped sink's shard.
func (d *stripDurationSink) ShardSink(k, n int) Sink {
	return StripDurations(d.s.(ShardableSink).ShardSink(k, n))
}

// jsonlRecord is the schema of one JSONL profile line: the jsonRecord
// fields (shared with Profile.WriteJSON) plus the campaign identity and
// the record's sequence number, so a single file can carry interleaved
// records of a whole campaign suite and still be split back into
// per-campaign, scenario-ordered profiles.
type jsonlRecord struct {
	System    string `json:"system"`
	Generator string `json:"generator"`
	Seq       int    `json:"seq"`
	jsonRecord
}

// JSONLSink streams records as JSON Lines: one self-contained object per
// record, flushed as it is written, so a campaign's profile lands on disk
// incrementally instead of materializing in memory. Each line is emitted
// with a single Write call on the underlying writer, keeping lines atomic
// when several campaigns share a LockedWriter. Lines are rendered by a
// hand-rolled append encoder, byte-identical to encoding/json over the
// same schema (fuzz-verified) but reusing one buffer per sink — zero
// steady-state allocations per record instead of reflection per line.
type JSONLSink struct {
	system    string
	generator string
	w         io.Writer
	seq       int
	buf       []byte
}

// NewJSONLSink returns a sink writing the campaign's records to w, tagged
// with the campaign identity.
func NewJSONLSink(w io.Writer, system, generator string) *JSONLSink {
	return &JSONLSink{system: system, generator: generator, w: w}
}

// Write implements Sink.
func (s *JSONLSink) Write(r Record) error {
	s.buf = AppendJSONLRecord(s.buf[:0], s.system, s.generator, s.seq, r)
	s.seq++
	if _, err := s.w.Write(s.buf); err != nil {
		return fmt.Errorf("profile: writing JSONL record: %w", err)
	}
	return nil
}

// AppendJSONLRecord renders one JSONL profile line (including the
// trailing newline) into buf and returns it. The output is byte-identical
// to encoding/json marshalling of the same schema — field order, omitted
// empties, string escaping (HTML-safe, invalid-UTF-8 replacement) — which
// the round-trip fuzz test pins down; ReadJSONL and ScanJSONL parse it
// back with the stock decoder.
func AppendJSONLRecord(buf []byte, system, generator string, seq int, r Record) []byte {
	buf = append(buf, `{"system":`...)
	buf = appendJSONString(buf, system)
	buf = append(buf, `,"generator":`...)
	buf = appendJSONString(buf, generator)
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendInt(buf, int64(seq), 10)
	buf = append(buf, `,"scenario_id":`...)
	buf = appendJSONString(buf, r.ScenarioID)
	buf = append(buf, `,"class":`...)
	buf = appendJSONString(buf, r.Class)
	if r.Description != "" {
		buf = append(buf, `,"description":`...)
		buf = appendJSONString(buf, r.Description)
	}
	buf = append(buf, `,"outcome":`...)
	buf = appendJSONString(buf, r.Outcome.String())
	if r.Detail != "" {
		buf = append(buf, `,"detail":`...)
		buf = appendJSONString(buf, r.Detail)
	}
	if ns := r.Duration.Nanoseconds(); ns != 0 {
		buf = append(buf, `,"duration_ns":`...)
		buf = strconv.AppendInt(buf, ns, 10)
	}
	buf = append(buf, '}', '\n')
	return buf
}

const jsonHex = "0123456789abcdef"

// jsonSafe marks the ASCII bytes encoding/json's default (HTML-escaping)
// encoder passes through verbatim: printable characters except the JSON
// metacharacters `"` and `\\` and the HTML-sensitive `<`, `>`, `&`.
var jsonSafe = func() (safe [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		safe[b] = true
	}
	safe['"'], safe['\\'] = false, false
	safe['<'], safe['>'], safe['&'] = false, false, false
	return
}()

// appendJSONString appends s as a JSON string literal, escaping exactly
// like encoding/json's default (HTML-escaping) encoder: quote and
// backslash with a backslash; \n, \r, \t, \b, \f short forms; other
// bytes and `<`, `>`, `&` as \u00xx sequences; invalid UTF-8 as the
// \ufffd escape; and U+2028/U+2029 as \u2028/\u2029.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch b {
			case '\\', '"':
				buf = append(buf, '\\', b)
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			case '\b':
				buf = append(buf, '\\', 'b')
			case '\f':
				buf = append(buf, '\\', 'f')
			default:
				buf = append(buf, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// LockedWriter serializes Write calls to an underlying writer, letting the
// JSONL sinks of concurrently running campaigns share one output file with
// line-granularity interleaving.
type LockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLockedWriter wraps w.
func NewLockedWriter(w io.Writer) *LockedWriter { return &LockedWriter{w: w} }

// Write implements io.Writer.
func (l *LockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// JSONLEntry is one decoded JSONL profile line: the campaign identity,
// the record's sequence number within its campaign, and the record.
type JSONLEntry struct {
	System    string
	Generator string
	Seq       int
	Record    Record
}

// ParseJSONLLine decodes one JSONL profile line (no trailing newline)
// into its entry — the single-line counterpart of ScanJSONL, used by
// converters and merge adapters that receive lines one at a time.
func ParseJSONLLine(line []byte) (JSONLEntry, error) {
	var jr jsonlRecord
	if err := json.Unmarshal(line, &jr); err != nil {
		return JSONLEntry{}, err
	}
	rec, err := jr.record()
	if err != nil {
		return JSONLEntry{}, err
	}
	return JSONLEntry{System: jr.System, Generator: jr.Generator, Seq: jr.Seq, Record: rec}, nil
}

// maxJSONLLine bounds one profile line; anything longer is corrupt, not
// a record.
const maxJSONLLine = 16 * 1024 * 1024

// ScanJSONL streams a JSON Lines profile (as written by JSONLSink) entry
// by entry to fn, in file order, without materializing anything: memory
// stays constant however many records the file holds — the reader-side
// counterpart of the streaming campaign engine. A non-nil error from fn
// stops the scan and is returned verbatim. Empty lines are skipped.
// Parse errors name both the line number and the byte offset of the
// offending line, so a bad record in a multi-GB profile is seek-able,
// not just countable.
func ScanJSONL(r io.Reader, fn func(JSONLEntry) error) error {
	br := bufio.NewReaderSize(r, 64*1024)
	var (
		off    int64 // file offset of the line being read
		lineNo int
		long   []byte // spill for lines longer than the read buffer
	)
	for {
		chunk, rerr := br.ReadSlice('\n')
		if rerr == bufio.ErrBufferFull {
			long = append(long[:0], chunk...)
			for rerr == bufio.ErrBufferFull {
				chunk, rerr = br.ReadSlice('\n')
				long = append(long, chunk...)
				if len(long) > maxJSONLLine {
					return fmt.Errorf("profile: JSONL line %d (byte offset %d): line exceeds %d bytes", lineNo+1, off, maxJSONLLine)
				}
			}
			chunk = long
		}
		if len(chunk) > 0 {
			lineNo++
			lineOff := off
			off += int64(len(chunk))
			line := chunk
			if n := len(line); n > 0 && line[n-1] == '\n' {
				line = line[:n-1]
			}
			if n := len(line); n > 0 && line[n-1] == '\r' {
				line = line[:n-1]
			}
			if len(line) > 0 {
				e, perr := ParseJSONLLine(line)
				if perr != nil {
					return fmt.Errorf("profile: JSONL line %d (byte offset %d): %w", lineNo, lineOff, perr)
				}
				if err := fn(e); err != nil {
					return err
				}
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return fmt.Errorf("profile: reading JSONL: %w", rerr)
		}
	}
}

// ReadJSONL parses a JSON Lines profile stream written by JSONLSink,
// splitting it back into one Profile per (system, generator) campaign, in
// order of first appearance. Within each profile, records are ordered by
// their sequence numbers, so interleaved suite output round-trips to the
// deterministic per-campaign profiles. The (system, generator) pair is
// the only campaign identity in the schema: records of two campaigns
// tagged identically (a deliberately duplicated matrix cell) merge into
// one profile, seq ties broken by file order. Unlike ScanJSONL — on which
// it is built — it materializes every record; prefer the scanner when a
// single pass suffices.
func ReadJSONL(r io.Reader) ([]*Profile, error) {
	type keyed struct {
		prof *Profile
		seqs []int
	}
	var order []string
	byKey := make(map[string]*keyed)
	err := ScanJSONL(r, func(e JSONLEntry) error {
		key := e.System + "\x00" + e.Generator
		k, ok := byKey[key]
		if !ok {
			k = &keyed{prof: &Profile{System: e.System, Generator: e.Generator}}
			byKey[key] = k
			order = append(order, key)
		}
		k.prof.Add(e.Record)
		k.seqs = append(k.seqs, e.Seq)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*Profile, 0, len(order))
	for _, key := range order {
		k := byKey[key]
		sortBySeq(k.prof.Records, k.seqs)
		out = append(out, k.prof)
	}
	return out, nil
}

// sortBySeq stably orders records by their parallel seq slice. A stable
// O(n log n) sort, not an insertion sort: same-tagged campaigns merged
// into one profile concatenate their seq runs ([0..N, 0..N]), which would
// degrade a nearly-sorted-input sort to quadratic at streaming scale.
func sortBySeq(recs []Record, seqs []int) {
	idx := make([]int, len(seqs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return seqs[idx[a]] < seqs[idx[b]] })
	outRecs := make([]Record, len(recs))
	for i, j := range idx {
		outRecs[i] = recs[j]
	}
	copy(recs, outRecs)
}
