package profile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Sink consumes injection records as the engine produces them — the
// streaming counterpart of accumulating a Profile. The runner calls Write
// from a single goroutine, in scenario order; sinks need no locking of
// their own. Writing to a shared destination from several concurrent
// campaigns is the caller's problem (see LockedWriter).
type Sink interface {
	// Write records one completed experiment. A non-nil error aborts the
	// campaign.
	Write(Record) error
}

// MemorySink accumulates records into the wrapped Profile — the sink
// behind the slice-returning campaign API.
type MemorySink struct {
	// Profile receives every record.
	Profile *Profile
}

// Write implements Sink.
func (s *MemorySink) Write(r Record) error {
	s.Profile.Add(r)
	return nil
}

// TallySink folds records into a running Summary without retaining them —
// O(1) memory whatever the faultload size, the companion of a JSONL sink
// on million-scenario campaigns.
type TallySink struct {
	summary Summary
	records int
}

// Write implements Sink.
func (s *TallySink) Write(r Record) error {
	s.records++
	s.summary.Add(r)
	return nil
}

// Summary returns the totals folded so far.
func (s *TallySink) Summary() Summary { return s.summary }

// Records returns how many records have been written.
func (s *TallySink) Records() int { return s.records }

// MultiSink fans every record out to each member, in order, stopping at
// the first error.
type MultiSink []Sink

// Write implements Sink.
func (m MultiSink) Write(r Record) error {
	for _, s := range m {
		if err := s.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// jsonlRecord is the schema of one JSONL profile line: the jsonRecord
// fields (shared with Profile.WriteJSON) plus the campaign identity and
// the record's sequence number, so a single file can carry interleaved
// records of a whole campaign suite and still be split back into
// per-campaign, scenario-ordered profiles.
type jsonlRecord struct {
	System    string `json:"system"`
	Generator string `json:"generator"`
	Seq       int    `json:"seq"`
	jsonRecord
}

// JSONLSink streams records as JSON Lines: one self-contained object per
// record, flushed as it is written, so a campaign's profile lands on disk
// incrementally instead of materializing in memory. Each line is emitted
// with a single Write call on the underlying writer, keeping lines atomic
// when several campaigns share a LockedWriter.
type JSONLSink struct {
	system    string
	generator string
	w         io.Writer
	seq       int
}

// NewJSONLSink returns a sink writing the campaign's records to w, tagged
// with the campaign identity.
func NewJSONLSink(w io.Writer, system, generator string) *JSONLSink {
	return &JSONLSink{system: system, generator: generator, w: w}
}

// Write implements Sink.
func (s *JSONLSink) Write(r Record) error {
	line, err := json.Marshal(jsonlRecord{
		System:     s.system,
		Generator:  s.generator,
		Seq:        s.seq,
		jsonRecord: toJSONRecord(r),
	})
	if err != nil {
		return fmt.Errorf("profile: encoding JSONL record: %w", err)
	}
	s.seq++
	line = append(line, '\n')
	if _, err := s.w.Write(line); err != nil {
		return fmt.Errorf("profile: writing JSONL record: %w", err)
	}
	return nil
}

// LockedWriter serializes Write calls to an underlying writer, letting the
// JSONL sinks of concurrently running campaigns share one output file with
// line-granularity interleaving.
type LockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLockedWriter wraps w.
func NewLockedWriter(w io.Writer) *LockedWriter { return &LockedWriter{w: w} }

// Write implements io.Writer.
func (l *LockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// ReadJSONL parses a JSON Lines profile stream written by JSONLSink,
// splitting it back into one Profile per (system, generator) campaign, in
// order of first appearance. Within each profile, records are ordered by
// their sequence numbers, so interleaved suite output round-trips to the
// deterministic per-campaign profiles. The (system, generator) pair is
// the only campaign identity in the schema: records of two campaigns
// tagged identically (a deliberately duplicated matrix cell) merge into
// one profile, seq ties broken by file order.
func ReadJSONL(r io.Reader) ([]*Profile, error) {
	type keyed struct {
		prof *Profile
		seqs []int
	}
	var order []string
	byKey := make(map[string]*keyed)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var jr jsonlRecord
		if err := json.Unmarshal(line, &jr); err != nil {
			return nil, fmt.Errorf("profile: JSONL line %d: %w", lineNo, err)
		}
		rec, err := jr.record()
		if err != nil {
			return nil, fmt.Errorf("profile: JSONL line %d: %w", lineNo, err)
		}
		key := jr.System + "\x00" + jr.Generator
		k, ok := byKey[key]
		if !ok {
			k = &keyed{prof: &Profile{System: jr.System, Generator: jr.Generator}}
			byKey[key] = k
			order = append(order, key)
		}
		k.prof.Add(rec)
		k.seqs = append(k.seqs, jr.Seq)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("profile: reading JSONL: %w", err)
	}
	out := make([]*Profile, 0, len(order))
	for _, key := range order {
		k := byKey[key]
		sortBySeq(k.prof.Records, k.seqs)
		out = append(out, k.prof)
	}
	return out, nil
}

// sortBySeq stably orders records by their parallel seq slice. A stable
// O(n log n) sort, not an insertion sort: same-tagged campaigns merged
// into one profile concatenate their seq runs ([0..N, 0..N]), which would
// degrade a nearly-sorted-input sort to quadratic at streaming scale.
func sortBySeq(recs []Record, seqs []int) {
	idx := make([]int, len(seqs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return seqs[idx[a]] < seqs[idx[b]] })
	outRecs := make([]Record, len(recs))
	for i, j := range idx {
		outRecs[i] = recs[j]
	}
	copy(recs, outRecs)
}
