package profile

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleProfile() *Profile {
	p := &Profile{System: "mysql-sim", Generator: "typo"}
	add := func(class string, o Outcome) {
		p.Add(Record{
			ScenarioID: class + "/" + o.String(), Class: class, Outcome: o,
		})
	}
	add("typo/omission", DetectedAtStartup)
	add("typo/omission", DetectedAtStartup)
	add("typo/omission", Ignored)
	add("typo/substitution", DetectedByTest)
	add("typo/substitution", Ignored)
	add("typo/case", NotExpressible)
	add("typo/case", NotApplicable)
	return p
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{
		DetectedAtStartup: "detected-at-startup",
		DetectedByTest:    "detected-by-test",
		Ignored:           "ignored",
		NotExpressible:    "not-expressible",
		NotApplicable:     "not-applicable",
		Outcome(42):       "outcome(42)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestOutcomeDetected(t *testing.T) {
	if !DetectedAtStartup.Detected() || !DetectedByTest.Detected() {
		t.Error("detections should report Detected")
	}
	if Ignored.Detected() || NotExpressible.Detected() || NotApplicable.Detected() {
		t.Error("non-detections should not report Detected")
	}
}

func TestInjected(t *testing.T) {
	p := sampleProfile()
	inj := p.Injected()
	if len(inj) != 5 {
		t.Errorf("Injected = %d, want 5", len(inj))
	}
}

func TestCountByOutcome(t *testing.T) {
	c := sampleProfile().CountByOutcome()
	if c[DetectedAtStartup] != 2 || c[DetectedByTest] != 1 || c[Ignored] != 2 ||
		c[NotExpressible] != 1 || c[NotApplicable] != 1 {
		t.Errorf("counts = %v", c)
	}
}

func TestCountByClass(t *testing.T) {
	c := sampleProfile().CountByClass()
	if c["typo/omission"][DetectedAtStartup] != 2 {
		t.Errorf("counts = %v", c)
	}
	if c["typo/substitution"][Ignored] != 1 {
		t.Errorf("counts = %v", c)
	}
}

func TestDetectionRate(t *testing.T) {
	p := sampleProfile()
	// 3 detected out of 5 injected.
	if got := p.DetectionRate(); got != 0.6 {
		t.Errorf("DetectionRate = %v, want 0.6", got)
	}
	empty := &Profile{}
	if empty.DetectionRate() != 0 {
		t.Error("empty profile rate should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := sampleProfile().Summarize()
	if s.System != "mysql-sim" {
		t.Errorf("System = %q", s.System)
	}
	if s.Injected != 5 || s.AtStartup != 2 || s.ByTest != 1 || s.Ignored != 2 || s.NotExpressible != 1 {
		t.Errorf("summary = %+v", s)
	}
}

func TestFormatTable1(t *testing.T) {
	a := Summary{System: "MySQL", Injected: 327, AtStartup: 270, ByTest: 1, Ignored: 56}
	b := Summary{System: "Postgres", Injected: 98, AtStartup: 76, ByTest: 0, Ignored: 22}
	out := FormatTable1(a, b)
	for _, want := range []string{"MySQL", "Postgres", "327 (100%)", "270 (83%)", "76 (78%)", "56 (17%)", "22 (22%)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Empty summary renders dashes, not division by zero.
	out = FormatTable1(Summary{System: "X"})
	if !strings.Contains(out, "-") {
		t.Errorf("zero-injection table:\n%s", out)
	}
}

func TestBandOf(t *testing.T) {
	cases := []struct {
		rate float64
		want Band
	}{
		{0, Poor}, {0.24, Poor}, {0.25, Fair}, {0.49, Fair},
		{0.5, Good}, {0.74, Good}, {0.75, Excellent}, {1, Excellent},
	}
	for _, tt := range cases {
		if got := BandOf(tt.rate); got != tt.want {
			t.Errorf("BandOf(%v) = %v, want %v", tt.rate, got, tt.want)
		}
	}
}

func TestBandString(t *testing.T) {
	for b, want := range map[Band]string{Poor: "poor", Fair: "fair", Good: "good", Excellent: "excellent", Band(9): "band(9)"} {
		if b.String() != want {
			t.Errorf("Band(%d) = %q", int(b), b.String())
		}
	}
}

func TestBandByKey(t *testing.T) {
	p := &Profile{System: "pg-sim"}
	// Directive "a": 4/4 detected -> excellent. "b": 0/4 -> poor.
	for i := 0; i < 4; i++ {
		p.Add(Record{ScenarioID: "sa", Class: "a", Outcome: DetectedAtStartup})
		p.Add(Record{ScenarioID: "sb", Class: "b", Outcome: Ignored})
	}
	// A not-expressible record and an empty-key record are excluded.
	p.Add(Record{ScenarioID: "sx", Class: "a", Outcome: NotExpressible})
	p.Add(Record{ScenarioID: "se", Class: "", Outcome: Ignored})
	b := p.BandByKey(func(r Record) string { return r.Class })
	if b.Directives != 2 {
		t.Fatalf("Directives = %d, want 2", b.Directives)
	}
	if b.Share[Excellent] != 0.5 || b.Share[Poor] != 0.5 {
		t.Errorf("Share = %v", b.Share)
	}
}

func TestFormatFigure3(t *testing.T) {
	a := Banding{System: "Postgres", Directives: 20, Share: map[Band]float64{Excellent: 0.45, Poor: 0.2, Fair: 0.15, Good: 0.2}}
	b := Banding{System: "MySQL", Directives: 20, Share: map[Band]float64{Poor: 0.45, Excellent: 0.2, Fair: 0.2, Good: 0.15}}
	out := FormatFigure3(a, b)
	for _, want := range []string{"Postgres", "MySQL", "excellent", "poor", "45%"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
}

func TestFormatRecords(t *testing.T) {
	p := sampleProfile()
	p.Records[0].Detail = "line one\nline two"
	out := p.FormatRecords()
	if !strings.Contains(out, "detected-at-startup") {
		t.Errorf("records missing outcome:\n%s", out)
	}
	if strings.Contains(out, "line two") {
		t.Error("detail should be truncated to first line")
	}
	// Sorted by scenario ID.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(p.Records) {
		t.Errorf("lines = %d, want %d", len(lines), len(p.Records))
	}
}

func TestPropertyBandSharesSumToOne(t *testing.T) {
	f := func(outcomes []bool) bool {
		if len(outcomes) == 0 {
			return true
		}
		p := &Profile{}
		for i, d := range outcomes {
			o := Ignored
			if d {
				o = DetectedAtStartup
			}
			p.Add(Record{ScenarioID: "s", Class: string(rune('a' + i%7)), Outcome: o})
		}
		b := p.BandByKey(func(r Record) string { return r.Class })
		sum := 0.0
		for _, v := range b.Share {
			sum += v
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := sampleProfile()
	p.Records[0].Detail = "complaint text"
	p.Records[0].Duration = 1234 * time.Microsecond
	var buf strings.Builder
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.System != p.System || got.Generator != p.Generator {
		t.Errorf("identity = %q/%q", got.System, got.Generator)
	}
	if len(got.Records) != len(p.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(p.Records))
	}
	for i := range got.Records {
		if got.Records[i] != p.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got.Records[i], p.Records[i])
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	bad := `{"system":"s","generator":"g","records":[{"scenario_id":"x","class":"c","outcome":"bogus"}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("unknown outcome accepted")
	}
}

func TestCompare(t *testing.T) {
	before := &Profile{System: "s"}
	after := &Profile{System: "s"}
	add := func(p *Profile, id string, o Outcome) {
		p.Add(Record{ScenarioID: id, Class: "c", Outcome: o})
	}
	add(before, "a", Ignored)
	add(after, "a", DetectedAtStartup) // improved
	add(before, "b", DetectedAtStartup)
	add(after, "b", Ignored) // regressed
	add(before, "c", DetectedAtStartup)
	add(after, "c", DetectedByTest) // unchanged (both detected)
	add(before, "d", Ignored)
	add(after, "d", Ignored) // unchanged
	add(before, "gone", Ignored)
	add(after, "new", Ignored)

	cmp := Compare(before, after)
	if len(cmp.Improved) != 1 || cmp.Improved[0] != "a" {
		t.Errorf("Improved = %v", cmp.Improved)
	}
	if len(cmp.Regressed) != 1 || cmp.Regressed[0] != "b" {
		t.Errorf("Regressed = %v", cmp.Regressed)
	}
	if cmp.Unchanged != 2 {
		t.Errorf("Unchanged = %d", cmp.Unchanged)
	}
	if len(cmp.OnlyBefore) != 1 || cmp.OnlyBefore[0] != "gone" {
		t.Errorf("OnlyBefore = %v", cmp.OnlyBefore)
	}
	if len(cmp.OnlyAfter) != 1 || cmp.OnlyAfter[0] != "new" {
		t.Errorf("OnlyAfter = %v", cmp.OnlyAfter)
	}
}
