package profile

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func sinkRecords() []Record {
	return []Record{
		{ScenarioID: "s/0", Class: "c", Description: "d0", Outcome: DetectedAtStartup, Detail: "bad", Duration: time.Millisecond},
		{ScenarioID: "s/1", Class: "c", Outcome: DetectedByTest, Detail: "t: fail"},
		{ScenarioID: "s/2", Class: "c2", Outcome: Ignored},
		{ScenarioID: "s/3", Class: "c2", Outcome: NotExpressible},
		{ScenarioID: "s/4", Class: "c2", Outcome: NotApplicable},
	}
}

func TestMemorySink(t *testing.T) {
	prof := &Profile{System: "sys", Generator: "gen"}
	s := &MemorySink{Profile: prof}
	for _, r := range sinkRecords() {
		if err := s.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if len(prof.Records) != 5 || prof.Records[2].ScenarioID != "s/2" {
		t.Errorf("memory sink records = %+v", prof.Records)
	}
}

func TestTallySinkMatchesSummarize(t *testing.T) {
	prof := &Profile{}
	tally := &TallySink{}
	for _, r := range sinkRecords() {
		prof.Add(r)
		if err := tally.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	want := prof.Summarize()
	got := tally.Summary()
	got.System = want.System
	if got != want {
		t.Errorf("tally = %+v, want %+v", got, want)
	}
	if tally.Records() != 5 {
		t.Errorf("records = %d, want 5", tally.Records())
	}
}

type failSink struct{ err error }

func (s failSink) Write(Record) error { return s.err }

func TestMultiSinkStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	prof := &Profile{}
	m := MultiSink{&MemorySink{Profile: prof}, failSink{boom}, &TallySink{}}
	if err := m.Write(Record{ScenarioID: "x"}); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if len(prof.Records) != 1 {
		t.Errorf("first member saw %d records, want 1", len(prof.Records))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf, "sys", "gen")
	for _, r := range sinkRecords() {
		if err := s.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := strings.Count(buf.String(), "\n"); got != 5 {
		t.Fatalf("wrote %d lines, want 5", got)
	}
	profs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 1 {
		t.Fatalf("profiles = %d, want 1", len(profs))
	}
	p := profs[0]
	if p.System != "sys" || p.Generator != "gen" {
		t.Errorf("identity = %s/%s", p.System, p.Generator)
	}
	want := sinkRecords()
	if len(p.Records) != len(want) {
		t.Fatalf("records = %d, want %d", len(p.Records), len(want))
	}
	for i, r := range p.Records {
		if r != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestJSONLInterleavedCampaignsSplitAndReorder(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLockedWriter(&buf)
	a := NewJSONLSink(lw, "sysA", "gen")
	b := NewJSONLSink(lw, "sysB", "gen")
	// Interleave two campaigns' records into one shared file.
	_ = a.Write(Record{ScenarioID: "a/0", Class: "c", Outcome: Ignored})
	_ = b.Write(Record{ScenarioID: "b/0", Class: "c", Outcome: Ignored})
	_ = a.Write(Record{ScenarioID: "a/1", Class: "c", Outcome: Ignored})
	_ = b.Write(Record{ScenarioID: "b/1", Class: "c", Outcome: Ignored})
	profs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 2 {
		t.Fatalf("profiles = %d, want 2", len(profs))
	}
	if profs[0].System != "sysA" || profs[1].System != "sysB" {
		t.Errorf("order = %s, %s", profs[0].System, profs[1].System)
	}
	for i, p := range profs {
		if len(p.Records) != 2 {
			t.Errorf("profile %d has %d records, want 2", i, len(p.Records))
		}
	}
	if profs[1].Records[0].ScenarioID != "b/0" || profs[1].Records[1].ScenarioID != "b/1" {
		t.Errorf("sysB records out of order: %+v", profs[1].Records)
	}
}

func TestLockedWriterConcurrentLines(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLockedWriter(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewJSONLSink(lw, "sys", "gen")
			for i := 0; i < 50; i++ {
				if err := s.Write(Record{ScenarioID: "x", Class: "c", Outcome: Ignored}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("line %d torn: %q", i, line)
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"system":"s","generator":"g","scenario_id":"x","outcome":"nope"}` + "\n")); err == nil {
		t.Error("unknown outcome accepted")
	}
}

func TestMultiSinkShardability(t *testing.T) {
	t1, t2 := &TallySink{}, &TallySink{}
	all := MultiSink{t1, t2}
	if !CanShardSink(all) {
		t.Fatal("MultiSink of tallies should be shardable")
	}
	mixed := MultiSink{t1, &MemorySink{Profile: &Profile{}}}
	if CanShardSink(mixed) {
		t.Fatal("MultiSink with an ordered member must not be shardable")
	}
	// Fan two records out through shard sub-sinks; both tallies merge.
	a := all.ShardSink(0, 2)
	b := all.ShardSink(1, 2)
	if err := a.Write(Record{Outcome: Ignored}); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(Record{Outcome: DetectedByTest}); err != nil {
		t.Fatal(err)
	}
	for i, ts := range []*TallySink{t1, t2} {
		if ts.Records() != 2 || ts.Summary().Injected != 2 {
			t.Errorf("tally %d: records=%d summary=%+v", i, ts.Records(), ts.Summary())
		}
	}
}
