package profile

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StreamStats folds a record stream — either profile format, any size —
// into every report shape at once: per-campaign outcome summaries
// (Table 1), per-class breakdowns (Tables 2–3), per-directive detection
// bands (Figure 3), and resilience scorecards. Memory is proportional
// to the number of distinct campaigns, classes, and banding keys, never
// to the record count, so a 100M-record fleet profile folds in one pass
// without materializing a Profile. Add matches the scan callbacks'
// shape; Merge combines independent folds, so parallel frame scans
// aggregate into per-worker stats and merge at the end.
type StreamStats struct {
	// Key, when non-nil, groups injected records for the Figure 3
	// banding (typically the directive a fault targeted). Nil disables
	// banding.
	Key func(Record) string

	byName    map[string]*CampaignStats
	campaigns []*CampaignStats
	records   int
}

// NewStreamStats returns an empty fold; key may be nil.
func NewStreamStats(key func(Record) string) *StreamStats {
	return &StreamStats{Key: key, byName: make(map[string]*CampaignStats)}
}

// CampaignStats is one campaign's aggregation.
type CampaignStats struct {
	// System and Generator identify the campaign.
	System    string
	Generator string
	// Records counts every record seen, including not-applicable ones.
	Records int
	// Summary is the campaign's Table 1 row.
	Summary Summary
	// Duration totals the experiments' wall-clock time.
	Duration time.Duration

	classes map[string]*Summary
	groups  map[string]*bandCount
}

// bandCount is one banding group's detection tally.
type bandCount struct{ detected, total int }

// Add folds one entry.
func (s *StreamStats) Add(e JSONLEntry) error {
	key := e.System + "\x00" + e.Generator
	c := s.byName[key]
	if c == nil {
		c = &CampaignStats{
			System:    e.System,
			Generator: e.Generator,
			Summary:   Summary{System: e.System},
			classes:   make(map[string]*Summary),
		}
		s.byName[key] = c
		s.campaigns = append(s.campaigns, c)
	}
	r := e.Record
	s.records++
	c.Records++
	c.Summary.Add(r)
	c.Duration += r.Duration
	cs := c.classes[r.Class]
	if cs == nil {
		cs = &Summary{System: r.Class}
		c.classes[r.Class] = cs
	}
	cs.Add(r)
	if s.Key != nil && r.Outcome.counted() {
		if k := s.Key(r); k != "" {
			if c.groups == nil {
				c.groups = make(map[string]*bandCount)
			}
			g := c.groups[k]
			if g == nil {
				g = &bandCount{}
				c.groups[k] = g
			}
			g.total++
			if r.Outcome.Detected() {
				g.detected++
			}
		}
	}
	return nil
}

// Merge folds o's totals into s — the join step of a parallel scan.
func (s *StreamStats) Merge(o *StreamStats) {
	s.records += o.records
	for _, oc := range o.campaigns {
		key := oc.System + "\x00" + oc.Generator
		c := s.byName[key]
		if c == nil {
			c = &CampaignStats{
				System:    oc.System,
				Generator: oc.Generator,
				Summary:   Summary{System: oc.System},
				classes:   make(map[string]*Summary),
			}
			s.byName[key] = c
			s.campaigns = append(s.campaigns, c)
		}
		c.Records += oc.Records
		c.Summary.Merge(oc.Summary)
		c.Duration += oc.Duration
		for class, os := range oc.classes {
			cs := c.classes[class]
			if cs == nil {
				cs = &Summary{System: class}
				c.classes[class] = cs
			}
			cs.Merge(*os)
		}
		for k, og := range oc.groups {
			if c.groups == nil {
				c.groups = make(map[string]*bandCount)
			}
			g := c.groups[k]
			if g == nil {
				g = &bandCount{}
				c.groups[k] = g
			}
			g.detected += og.detected
			g.total += og.total
		}
	}
}

// TotalRecords returns the total records folded.
func (s *StreamStats) TotalRecords() int { return s.records }

// Campaigns returns the per-campaign stats sorted by (system,
// generator) — deterministic whatever order frames or workers delivered
// records in.
func (s *StreamStats) Campaigns() []*CampaignStats {
	out := make([]*CampaignStats, len(s.campaigns))
	copy(out, s.campaigns)
	sort.Slice(out, func(i, j int) bool {
		if out[i].System != out[j].System {
			return out[i].System < out[j].System
		}
		return out[i].Generator < out[j].Generator
	})
	return out
}

// ClassStats is one fault class's Table 2/3-shaped row.
type ClassStats struct {
	// Class is the fault class.
	Class string
	// Summary tallies the class's outcomes (its System field holds the
	// class name).
	Summary Summary
}

// Classes returns the campaign's per-class stats sorted by class name.
func (c *CampaignStats) Classes() []ClassStats {
	out := make([]ClassStats, 0, len(c.classes))
	for class, s := range c.classes {
		out = append(out, ClassStats{Class: class, Summary: *s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// DetectionRate returns the campaign's detected/injected fraction in
// [0,1] (0 when nothing was injected).
func (c *CampaignStats) DetectionRate() float64 { return detectionRate(c.Summary) }

func detectionRate(s Summary) float64 {
	if s.Injected == 0 {
		return 0
	}
	return float64(s.AtStartup+s.ByTest) / float64(s.Injected)
}

// Banding returns the campaign's Figure 3 band distribution over the
// fold's Key groups (zero-valued when no key was set).
func (c *CampaignStats) Banding() Banding {
	b := Banding{System: c.System, Directives: len(c.groups), Share: make(map[Band]float64)}
	if len(c.groups) == 0 {
		return b
	}
	counts := make(map[Band]int)
	for _, g := range c.groups {
		counts[BandOf(float64(g.detected)/float64(g.total))]++
	}
	for band, n := range counts {
		b.Share[band] = float64(n) / float64(len(c.groups))
	}
	return b
}

// label names a campaign in report output: the system alone when it is
// unambiguous, system/generator otherwise.
func (s *StreamStats) labels(campaigns []*CampaignStats) []string {
	perSystem := make(map[string]int)
	for _, c := range campaigns {
		perSystem[c.System]++
	}
	out := make([]string, len(campaigns))
	for i, c := range campaigns {
		if perSystem[c.System] > 1 {
			out[i] = c.System + "/" + c.Generator
		} else {
			out[i] = c.System
		}
	}
	return out
}

// FormatReport renders the full report: outcome summaries in the
// paper's Table 1 shape, a per-campaign resilience scorecard, per-class
// breakdowns in the Table 2/3 shape, and — when a banding key is set —
// the Figure 3 band histogram.
func (s *StreamStats) FormatReport() string {
	var b strings.Builder
	campaigns := s.Campaigns()
	labels := s.labels(campaigns)

	var total time.Duration
	for _, c := range campaigns {
		total += c.Duration
	}
	fmt.Fprintf(&b, "%d records, %d campaigns", s.records, len(campaigns))
	if total > 0 {
		fmt.Fprintf(&b, ", %s total experiment time", total.Round(time.Millisecond))
	}
	b.WriteString("\n\n== Outcome summary (Table 1 shape) ==\n")
	summaries := make([]Summary, len(campaigns))
	for i, c := range campaigns {
		summaries[i] = c.Summary
		summaries[i].System = labels[i]
	}
	b.WriteString(FormatTable1(summaries...))

	b.WriteString("\n== Resilience scorecard ==\n")
	fmt.Fprintf(&b, "%-28s %10s %10s %10s %11s\n", "campaign", "records", "injected", "detection", "band")
	for i, c := range campaigns {
		rate := c.DetectionRate()
		fmt.Fprintf(&b, "%-28s %10d %10d %9.1f%% %11s\n",
			labels[i], c.Records, c.Summary.Injected, rate*100, BandOf(rate))
	}

	for i, c := range campaigns {
		fmt.Fprintf(&b, "\n== Per-class outcomes: %s (Table 2/3 shape) ==\n", labels[i])
		fmt.Fprintf(&b, "%-32s %9s %9s %9s %9s %9s %10s\n",
			"class", "injected", "startup", "test", "ignored", "not-expr", "detection")
		for _, cs := range c.Classes() {
			fmt.Fprintf(&b, "%-32s %9d %9d %9d %9d %9d %9.1f%%\n",
				cs.Class, cs.Summary.Injected, cs.Summary.AtStartup, cs.Summary.ByTest,
				cs.Summary.Ignored, cs.Summary.NotExpressible, detectionRate(cs.Summary)*100)
		}
	}

	if s.Key != nil {
		bandings := make([]Banding, len(campaigns))
		for i, c := range campaigns {
			bandings[i] = c.Banding()
			bandings[i].System = labels[i]
		}
		b.WriteString("\n== Per-directive detection bands (Figure 3 shape) ==\n")
		b.WriteString(FormatFigure3(bandings...))
		fmt.Fprintf(&b, "%-12s", "directives")
		for _, bd := range bandings {
			fmt.Fprintf(&b, "%14d", bd.Directives)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DiffRow is one line of a campaign-vs-campaign diff: a campaign total
// (Class == "") or one fault class's slice of it.
type DiffRow struct {
	System    string
	Generator string
	Class     string
	// Before and After are the two sides' detection rates in [0,1], with
	// the injected counts they were computed over.
	Before, After                 float64
	BeforeInjected, AfterInjected int
	// DeltaPP is After-Before in percentage points; negative means the
	// detection rate regressed.
	DeltaPP float64
}

// StatsDiff is the comparison of two folds — the CI resilience
// regression gate's input.
type StatsDiff struct {
	// Rows holds campaign totals and per-class rows for every campaign
	// and class present in both folds, sorted.
	Rows []DiffRow
	// OnlyBefore and OnlyAfter name campaigns present in one fold only
	// (faultload or matrix drift).
	OnlyBefore []string
	OnlyAfter  []string
}

// DiffStats compares two folds campaign by campaign and class by class.
func DiffStats(before, after *StreamStats) StatsDiff {
	var d StatsDiff
	beforeBy := before.byName
	seen := make(map[string]bool)
	for _, ac := range after.Campaigns() {
		key := ac.System + "\x00" + ac.Generator
		seen[key] = true
		bc := beforeBy[key]
		if bc == nil {
			d.OnlyAfter = append(d.OnlyAfter, ac.System+"/"+ac.Generator)
			continue
		}
		d.Rows = append(d.Rows, diffRow(ac.System, ac.Generator, "", bc.Summary, ac.Summary))
		for _, acs := range ac.Classes() {
			bcs, ok := bc.classes[acs.Class]
			if !ok {
				continue
			}
			d.Rows = append(d.Rows, diffRow(ac.System, ac.Generator, acs.Class, *bcs, acs.Summary))
		}
	}
	for _, bc := range before.Campaigns() {
		if !seen[bc.System+"\x00"+bc.Generator] {
			d.OnlyBefore = append(d.OnlyBefore, bc.System+"/"+bc.Generator)
		}
	}
	return d
}

func diffRow(system, generator, class string, before, after Summary) DiffRow {
	br, ar := detectionRate(before), detectionRate(after)
	return DiffRow{
		System: system, Generator: generator, Class: class,
		Before: br, After: ar,
		BeforeInjected: before.Injected, AfterInjected: after.Injected,
		DeltaPP: (ar - br) * 100,
	}
}

// MaxRegressionPP returns the largest detection-rate drop across all
// rows, in percentage points (0 when nothing regressed).
func (d StatsDiff) MaxRegressionPP() float64 {
	worst := 0.0
	for _, r := range d.Rows {
		if -r.DeltaPP > worst {
			worst = -r.DeltaPP
		}
	}
	return worst
}

// FormatDiff renders the diff, campaign totals with their class rows
// indented beneath them.
func (d StatsDiff) FormatDiff() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %18s %18s %9s\n", "campaign / class", "before", "after", "delta")
	for _, r := range d.Rows {
		name := r.System + "/" + r.Generator
		if r.Class != "" {
			name = "  " + r.Class
		}
		fmt.Fprintf(&b, "%-44s %9.1f%% (%6d) %9.1f%% (%6d) %+8.1fpp\n",
			name, r.Before*100, r.BeforeInjected, r.After*100, r.AfterInjected, r.DeltaPP)
	}
	for _, name := range d.OnlyBefore {
		fmt.Fprintf(&b, "%-44s only in before\n", name)
	}
	for _, name := range d.OnlyAfter {
		fmt.Fprintf(&b, "%-44s only in after\n", name)
	}
	fmt.Fprintf(&b, "max regression: %.1fpp\n", d.MaxRegressionPP())
	return b.String()
}
