package profile

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func analyticsRecord(i int) Record {
	return Record{
		ScenarioID: fmt.Sprintf("typo/directive-%02d/pos-%d", i%10, i%3),
		Class:      []string{"section", "directive"}[i%2],
		Outcome:    Outcome(i%int(NotApplicable) + 1),
		Duration:   time.Duration(i) * time.Microsecond,
	}
}

func analyticsEntries(n int) []JSONLEntry {
	out := make([]JSONLEntry, n)
	for i := range out {
		out[i] = JSONLEntry{System: "nginx", Generator: "typo", Seq: i, Record: analyticsRecord(i)}
	}
	return out
}

// TestStreamStatsMatchesSummary: folding a stream must tally exactly
// what a materialized Summary.Add pass over the same records does.
func TestStreamStatsMatchesSummary(t *testing.T) {
	entries := analyticsEntries(120)
	var want Summary
	want.System = "nginx"
	var wantDur time.Duration
	for _, e := range entries {
		want.Add(e.Record)
		wantDur += e.Record.Duration
	}
	stats := NewStreamStats(nil)
	for _, e := range entries {
		if err := stats.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	cs := stats.Campaigns()
	if len(cs) != 1 {
		t.Fatalf("campaigns = %d, want 1", len(cs))
	}
	if cs[0].Summary != want {
		t.Errorf("summary = %+v, want %+v", cs[0].Summary, want)
	}
	if cs[0].Duration != wantDur {
		t.Errorf("duration = %v, want %v", cs[0].Duration, wantDur)
	}
	if stats.TotalRecords() != len(entries) {
		t.Errorf("records = %d, want %d", stats.TotalRecords(), len(entries))
	}
	// Per-class rows partition the campaign.
	classes := cs[0].Classes()
	if len(classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(classes))
	}
	if n := classes[0].Summary.Injected + classes[1].Summary.Injected; n != want.Injected {
		t.Errorf("class injected total = %d, want %d", n, want.Injected)
	}
}

// TestStreamStatsMergeEqualsSequential: splitting a stream across folds
// and merging must equal one sequential fold — the parallel-scan
// contract, including the banding groups.
func TestStreamStatsMergeEqualsSequential(t *testing.T) {
	key := func(r Record) string { return r.ScenarioID[:strings.LastIndex(r.ScenarioID, "/")] }
	entries := analyticsEntries(200)
	seq := NewStreamStats(key)
	for _, e := range entries {
		_ = seq.Add(e)
	}
	parts := []*StreamStats{NewStreamStats(key), NewStreamStats(key), NewStreamStats(key)}
	for i, e := range entries {
		_ = parts[i%3].Add(e)
	}
	merged := parts[0]
	merged.Merge(parts[1])
	merged.Merge(parts[2])

	if merged.TotalRecords() != seq.TotalRecords() {
		t.Fatalf("records: merged %d, sequential %d", merged.TotalRecords(), seq.TotalRecords())
	}
	mc, sc := merged.Campaigns()[0], seq.Campaigns()[0]
	if mc.Summary != sc.Summary || mc.Duration != sc.Duration || mc.Records != sc.Records {
		t.Errorf("merged campaign %+v, sequential %+v", mc, sc)
	}
	mb, sb := mc.Banding(), sc.Banding()
	if mb.Directives != sb.Directives || len(mb.Share) != len(sb.Share) {
		t.Errorf("merged banding %+v, sequential %+v", mb, sb)
	}
	for band, share := range sb.Share {
		if mb.Share[band] != share {
			t.Errorf("band %v: merged %v, sequential %v", band, mb.Share[band], share)
		}
	}
}

// TestStreamStatsFormatReport: the report carries the paper's shapes —
// Table 1 summary, scorecard, per-class tables, Figure 3 bands.
func TestStreamStatsFormatReport(t *testing.T) {
	stats := NewStreamStats(func(r Record) string { return r.ScenarioID })
	for _, e := range analyticsEntries(60) {
		_ = stats.Add(e)
	}
	rep := stats.FormatReport()
	for _, want := range []string{
		"Outcome summary (Table 1 shape)",
		"Resilience scorecard",
		"Per-class outcomes: nginx (Table 2/3 shape)",
		"Per-directive detection bands (Figure 3 shape)",
		"nginx",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestDiffStatsRegressionGate: the diff surfaces per-campaign and
// per-class detection-rate movement and MaxRegressionPP powers the CI
// gate.
func TestDiffStatsRegressionGate(t *testing.T) {
	mk := func(detected, injected int) *StreamStats {
		s := NewStreamStats(nil)
		for i := 0; i < injected; i++ {
			out := Ignored
			if i < detected {
				out = DetectedAtStartup
			}
			_ = s.Add(JSONLEntry{System: "nginx", Generator: "typo", Seq: i,
				Record: Record{ScenarioID: fmt.Sprintf("s%d", i), Class: "directive", Outcome: out}})
		}
		return s
	}
	before, after := mk(80, 100), mk(60, 100)
	d := DiffStats(before, after)
	if got := d.MaxRegressionPP(); got < 19.9 || got > 20.1 {
		t.Fatalf("MaxRegressionPP = %v, want ~20", got)
	}
	out := d.FormatDiff()
	if !strings.Contains(out, "nginx") || !strings.Contains(out, "-20.0") {
		t.Errorf("diff output missing the regression:\n%s", out)
	}
	// Improvement is not a regression.
	if got := DiffStats(after, before).MaxRegressionPP(); got != 0 {
		t.Errorf("improvement scored as %vpp regression", got)
	}
	// A campaign present on only one side is reported, not dropped.
	solo := NewStreamStats(nil)
	_ = solo.Add(JSONLEntry{System: "redis", Generator: "typo",
		Record: Record{ScenarioID: "x", Class: "entry", Outcome: Ignored}})
	d2 := DiffStats(before, solo)
	if len(d2.OnlyBefore) != 1 || len(d2.OnlyAfter) != 1 {
		t.Errorf("one-sided campaigns: before=%v after=%v", d2.OnlyBefore, d2.OnlyAfter)
	}
}

// TestScanJSONLErrorReportsLineAndOffset: a parse failure names the
// 1-based line number and the byte offset where the line starts.
func TestScanJSONLErrorReportsLineAndOffset(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf, "nginx", "typo")
	for i := 0; i < 2; i++ {
		if err := sink.Write(analyticsRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	goodLen := buf.Len()
	buf.WriteString("{not json}\n")
	err := ScanJSONL(bytes.NewReader(buf.Bytes()), func(JSONLEntry) error { return nil })
	if err == nil {
		t.Fatal("garbage line accepted")
	}
	wantPrefix := fmt.Sprintf("profile: JSONL line 3 (byte offset %d)", goodLen)
	if !strings.Contains(err.Error(), wantPrefix) {
		t.Errorf("error = %q, want it to contain %q", err, wantPrefix)
	}

	// Callback errors pass through with the same location context.
	boom := errors.New("boom")
	err = ScanJSONL(bytes.NewReader(buf.Bytes()[:goodLen]), func(e JSONLEntry) error {
		if e.Seq == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("callback error not propagated: %v", err)
	}
}
