package profile

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func mergeLine(seq int) []byte {
	return []byte(fmt.Sprintf(`{"seq":%d}`, seq))
}

// TestSeqMergerOrdersAnyArrival: any arrival order flushes the same
// contiguous stream.
func TestSeqMergerOrdersAnyArrival(t *testing.T) {
	const total = 7
	orders := [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1, 0},
		{3, 0, 6, 1, 5, 2, 4},
	}
	var want bytes.Buffer
	for i := 0; i < total; i++ {
		want.Write(append(mergeLine(i), '\n'))
	}
	for _, order := range orders {
		var out bytes.Buffer
		m := NewSeqMerger(&out, 0)
		for _, seq := range order {
			if err := m.Add(seq, mergeLine(seq)); err != nil {
				t.Fatalf("order %v: add %d: %v", order, seq, err)
			}
		}
		if err := m.GapCheck(total); err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if out.String() != want.String() {
			t.Fatalf("order %v: merged stream diverges:\n%s", order, out.String())
		}
		if m.Flushed() != total || m.Front() != total || m.PendingCount() != 0 {
			t.Fatalf("order %v: flushed=%d front=%d pending=%d", order, m.Flushed(), m.Front(), m.PendingCount())
		}
	}
}

// TestSeqMergerDedupsRedelivery: re-delivered lines — both already
// flushed and still parked — are dropped and counted, while a parked
// re-delivery with different bytes is corruption, not a tiebreak.
func TestSeqMergerDedupsRedelivery(t *testing.T) {
	var out bytes.Buffer
	m := NewSeqMerger(&out, 0)
	for _, seq := range []int{0, 1, 3} {
		if err := m.Add(seq, mergeLine(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Seq 1 is flushed, seq 3 parked: both re-deliveries are dropped.
	if err := m.Add(1, mergeLine(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(3, mergeLine(3)); err != nil {
		t.Fatal(err)
	}
	if m.Duplicates() != 2 {
		t.Fatalf("duplicates = %d, want 2", m.Duplicates())
	}
	if err := m.Add(3, []byte(`{"seq":3,"different":true}`)); err == nil {
		t.Fatal("conflicting re-delivery of a parked line accepted")
	}
	if err := m.Add(2, mergeLine(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.GapCheck(4); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "\n"); got != 4 {
		t.Fatalf("output holds %d lines, want 4", got)
	}
}

// TestSeqMergerResumeOffset: a merger started at a resume front treats
// below-front lines as duplicates and completes the remainder.
func TestSeqMergerResumeOffset(t *testing.T) {
	var out bytes.Buffer
	m := NewSeqMerger(&out, 5)
	if err := m.Add(3, mergeLine(3)); err != nil {
		t.Fatal(err)
	}
	if m.Duplicates() != 1 {
		t.Fatalf("below-front line not counted as duplicate")
	}
	for seq := 7; seq >= 5; seq-- {
		if err := m.Add(seq, mergeLine(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.GapCheck(8); err != nil {
		t.Fatal(err)
	}
	if m.Flushed() != 3 {
		t.Fatalf("flushed = %d, want 3 (only the missing range)", m.Flushed())
	}
	want := string(mergeLine(5)) + "\n" + string(mergeLine(6)) + "\n" + string(mergeLine(7)) + "\n"
	if out.String() != want {
		t.Fatalf("resumed stream diverges:\n%s", out.String())
	}
}

// TestSeqMergerGapCheckNamesRange: the integrity error names the first
// missing range so a resume knows what to fetch.
func TestSeqMergerGapCheckNamesRange(t *testing.T) {
	var out bytes.Buffer
	m := NewSeqMerger(&out, 0)
	for _, seq := range []int{0, 1, 5, 6} {
		if err := m.Add(seq, mergeLine(seq)); err != nil {
			t.Fatal(err)
		}
	}
	err := m.GapCheck(7)
	if err == nil {
		t.Fatal("gap not reported")
	}
	if !strings.Contains(err.Error(), "2..4") {
		t.Fatalf("gap error does not name the missing range 2..4: %v", err)
	}
	// A clean but short stream reports the tail range.
	var out2 bytes.Buffer
	m2 := NewSeqMerger(&out2, 0)
	_ = m2.Add(0, mergeLine(0))
	if err := m2.GapCheck(3); err == nil || !strings.Contains(err.Error(), "1..2") {
		t.Fatalf("tail gap error: %v", err)
	}
}

// TestSeqMergerCopiesLines: callers may reuse their line buffer between
// Adds.
func TestSeqMergerCopiesLines(t *testing.T) {
	var out bytes.Buffer
	m := NewSeqMerger(&out, 0)
	buf := append([]byte(nil), mergeLine(1)...)
	if err := m.Add(1, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, []byte(`{"seq":9}`))
	if err := m.Add(0, mergeLine(0)); err != nil {
		t.Fatal(err)
	}
	want := string(mergeLine(0)) + "\n" + string(mergeLine(1)) + "\n"
	if out.String() != want {
		t.Fatalf("parked line was not copied:\n%s", out.String())
	}
}
