package profile

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// refJSONLLine is the reference rendering: the stock encoder over the
// shared schema, plus the newline JSONLSink appends.
func refJSONLLine(t *testing.T, system, generator string, seq int, r Record) []byte {
	t.Helper()
	line, err := json.Marshal(jsonlRecord{
		System:     system,
		Generator:  generator,
		Seq:        seq,
		jsonRecord: toJSONRecord(r),
	})
	if err != nil {
		t.Fatalf("reference marshal: %v", err)
	}
	return append(line, '\n')
}

func TestAppendJSONLRecordMatchesEncodingJSON(t *testing.T) {
	cases := []struct {
		name   string
		system string
		gen    string
		seq    int
		rec    Record
	}{
		{"plain", "nginx", "typo", 0, Record{
			ScenarioID: "typo/omission/a.conf#3.1/7", Class: "typo/omission",
			Description: "omit 'x' at 2", Outcome: DetectedAtStartup,
			Detail: "unknown directive", Duration: 1234 * time.Microsecond}},
		{"empty-optionals", "s", "g", 42, Record{
			ScenarioID: "id", Class: "c", Outcome: Ignored}},
		{"quotes-and-backslashes", `sy"s`, `ge\n`, 1, Record{
			ScenarioID: `a"b\c`, Class: "c", Detail: "path \\etc\\conf", Outcome: DetectedByTest}},
		{"control-chars", "s", "g", 2, Record{
			ScenarioID: "nl\nret\rtab\tbell\x07", Class: "c", Outcome: NotExpressible}},
		{"html-escapes", "s", "g", 3, Record{
			ScenarioID: "a<b>c&d", Class: "c", Description: "<script>&", Outcome: NotApplicable}},
		{"unicode", "sÿs", "ge√n", 4, Record{
			ScenarioID: "zürich/コンフィグ", Class: "c", Detail: "line sep ator", Outcome: Ignored}},
		{"invalid-utf8", "s", "g", 5, Record{
			ScenarioID: "bad\xffbyte\xc3", Class: "c", Outcome: Ignored}},
		{"negative-duration", "s", "g", 6, Record{
			ScenarioID: "id", Class: "c", Outcome: Ignored, Duration: -5 * time.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := AppendJSONLRecord(nil, tc.system, tc.gen, tc.seq, tc.rec)
			want := refJSONLLine(t, tc.system, tc.gen, tc.seq, tc.rec)
			if !bytes.Equal(got, want) {
				t.Errorf("encoder diverged\ngot:  %q\nwant: %q", got, want)
			}
		})
	}
}

// FuzzJSONLEncoder pins the append encoder to encoding/json byte for
// byte: any divergence in field order, empty-field omission, escaping
// (HTML-safe set, \u00xx forms, invalid UTF-8 replacement) or number
// rendering is a finding.
func FuzzJSONLEncoder(f *testing.F) {
	f.Add("nginx", "typo", 7, "typo/a.conf#1/0", "typo/omission", "omit 'r'", "detail <&>", int64(912345), uint8(1))
	f.Add("", "", 0, "", "", "", "", int64(0), uint8(3))
	f.Add("s\x00y", "g\xff", -3, "id\n", "c\\", "d ", "e\"f", int64(-1), uint8(5))
	f.Fuzz(func(t *testing.T, system, gen string, seq int, id, class, desc, detail string, durNS int64, outcome uint8) {
		rec := Record{
			ScenarioID:  id,
			Class:       class,
			Description: desc,
			Outcome:     Outcome(int(outcome)%5 + 1),
			Detail:      detail,
			Duration:    time.Duration(durNS),
		}
		got := AppendJSONLRecord(nil, system, gen, seq, rec)
		want := refJSONLLine(t, system, gen, seq, rec)
		if !bytes.Equal(got, want) {
			t.Errorf("encoder diverged\ngot:  %q\nwant: %q", got, want)
		}
	})
}

// TestJSONLEncoderAllocs pins the encoder's allocation ceiling: with a
// warmed reusable buffer, appending a record allocates nothing. A
// regression here silently re-inflates every streamed campaign.
func TestJSONLEncoderAllocs(t *testing.T) {
	rec := Record{
		ScenarioID:  "typo/substitution/my.cnf#12.1/345",
		Class:       "typo/substitution",
		Description: "substitute 'q' for 'w' at 3",
		Outcome:     DetectedAtStartup,
		Detail:      "unknown variable 'qait_timeout'",
		Duration:    17 * time.Millisecond,
	}
	buf := AppendJSONLRecord(nil, "mysql", "typo", 0, rec)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendJSONLRecord(buf[:0], "mysql", "typo", 1, rec)
	})
	if allocs != 0 {
		t.Errorf("AppendJSONLRecord allocs/op = %v, want 0", allocs)
	}
}
