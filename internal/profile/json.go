package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonRecord is the serialized form of a Record, shared by the indented
// profile documents (WriteJSON) and the streaming JSONL lines (JSONLSink).
type jsonRecord struct {
	ScenarioID  string `json:"scenario_id"`
	Class       string `json:"class"`
	Description string `json:"description,omitempty"`
	Outcome     string `json:"outcome"`
	Detail      string `json:"detail,omitempty"`
	DurationNS  int64  `json:"duration_ns,omitempty"`
}

// toJSONRecord converts a Record to its serialized form.
func toJSONRecord(r Record) jsonRecord {
	return jsonRecord{
		ScenarioID:  r.ScenarioID,
		Class:       r.Class,
		Description: r.Description,
		Outcome:     r.Outcome.String(),
		Detail:      r.Detail,
		DurationNS:  r.Duration.Nanoseconds(),
	}
}

// record converts the serialized form back, resolving the outcome name.
func (jr jsonRecord) record() (Record, error) {
	outcome, err := outcomeFromString(jr.Outcome)
	if err != nil {
		return Record{}, err
	}
	return Record{
		ScenarioID:  jr.ScenarioID,
		Class:       jr.Class,
		Description: jr.Description,
		Outcome:     outcome,
		Detail:      jr.Detail,
		Duration:    time.Duration(jr.DurationNS),
	}, nil
}

// jsonProfile is the serialized form of a Profile.
type jsonProfile struct {
	System    string       `json:"system"`
	Generator string       `json:"generator"`
	Records   []jsonRecord `json:"records"`
}

// WriteJSON serializes the profile, one indented JSON document.
func (p *Profile) WriteJSON(w io.Writer) error {
	out := jsonProfile{
		System:    p.System,
		Generator: p.Generator,
		Records:   make([]jsonRecord, 0, len(p.Records)),
	}
	for _, r := range p.Records {
		out.Records = append(out.Records, toJSONRecord(r))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("profile: encoding: %w", err)
	}
	return nil
}

// ReadJSON deserializes a profile written by WriteJSON.
func ReadJSON(r io.Reader) (*Profile, error) {
	var in jsonProfile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("profile: decoding: %w", err)
	}
	p := &Profile{System: in.System, Generator: in.Generator}
	for _, jr := range in.Records {
		r, err := jr.record()
		if err != nil {
			return nil, err
		}
		p.Add(r)
	}
	return p, nil
}

// outcomeFromString resolves an outcome's kebab-case name.
func outcomeFromString(s string) (Outcome, error) {
	for o, name := range outcomeNames {
		if name == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("profile: unknown outcome %q", s)
}
