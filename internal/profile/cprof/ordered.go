package cprof

import (
	"container/heap"
	"fmt"
	"io"
	"os"

	"conferr/internal/profile"
)

// ScanSeqOrdered replays a cprof stream in canonical order: campaigns
// in order of first appearance in the file, and within each campaign
// records in ascending sequence order. For files written by one ordered
// sink this equals a plain Scan; for files written through the sharded
// bypass — whose sub-sinks interleave stride-n frames — it k-way merges
// the overlapping frames by sequence, decoding each frame exactly once
// and holding at most the overlapping set (≈ the worker count) in
// memory. This is the order that makes cprof→JSONL conversion
// byte-identical to the ordered JSONL stream of the same campaign.
func ScanSeqOrdered(ra io.ReaderAt, size int64, fn func(profile.JSONLEntry) error) error {
	frames, _, err := ReadIndex(ra, size)
	if err != nil {
		return err
	}
	type campaignKey struct{ system, generator string }
	var order []campaignKey
	groups := make(map[campaignKey][]FrameInfo)
	for _, fi := range frames {
		k := campaignKey{fi.System, fi.Generator}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], fi)
	}
	dec := &frameDecoder{}
	for _, k := range order {
		if err := scanCampaignOrdered(ra, groups[k], dec, fn); err != nil {
			return err
		}
	}
	return nil
}

// ScanFileSeqOrdered is ScanSeqOrdered over a file path.
func ScanFileSeqOrdered(path string, fn func(profile.JSONLEntry) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("cprof: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("cprof: %w", err)
	}
	return ScanSeqOrdered(f, st.Size(), fn)
}

// scanCampaignOrdered emits one campaign's frames in sequence order.
func scanCampaignOrdered(ra io.ReaderAt, frames []FrameInfo, dec *frameDecoder, fn func(profile.JSONLEntry) error) error {
	// Fast path: frames already ascending and non-overlapping (a single
	// ordered sink — stream-out, dist merge) decode straight through.
	ordered := true
	for i := 1; i < len(frames); i++ {
		if frames[i].FirstSeq <= frames[i-1].LastSeq {
			ordered = false
			break
		}
	}
	if ordered {
		for _, fi := range frames {
			if err := decodeFrameAt(ra, fi, dec, fn); err != nil {
				return err
			}
		}
		return nil
	}

	// Shard-interleaved frames: lazy k-way merge. Frames enter the heap
	// undecoded, keyed by their index FirstSeq; a frame is decoded the
	// first time it surfaces at the heap top and stays resident only
	// until its records drain.
	h := make(frameHeap, 0, len(frames))
	for i := range frames {
		h = append(h, &frameCursor{fi: frames[i], seq: frames[i].FirstSeq, ord: i})
	}
	heap.Init(&h)
	for h.Len() > 0 {
		cur := h[0]
		if cur.entries == nil {
			cur.entries = make([]profile.JSONLEntry, 0, cur.fi.Count)
			err := decodeFrameAt(ra, cur.fi, dec, func(e profile.JSONLEntry) error {
				cur.entries = append(cur.entries, e)
				return nil
			})
			if err != nil {
				return err
			}
			if len(cur.entries) == 0 {
				heap.Pop(&h)
				continue
			}
			// Re-key on the decoded reality in case the index lied.
			cur.seq = cur.entries[0].Seq
			heap.Fix(&h, 0)
			continue
		}
		if err := fn(cur.entries[cur.next]); err != nil {
			return err
		}
		cur.next++
		if cur.next >= len(cur.entries) {
			heap.Pop(&h)
			continue
		}
		cur.seq = cur.entries[cur.next].Seq
		heap.Fix(&h, 0)
	}
	return nil
}

// frameCursor is one frame's position in the merge: undecoded until it
// first reaches the heap top.
type frameCursor struct {
	fi      FrameInfo
	seq     int // current sort key
	ord     int // file order, the deterministic tie-break
	entries []profile.JSONLEntry
	next    int
}

// frameHeap is a min-heap of cursors by (seq, file order).
type frameHeap []*frameCursor

func (h frameHeap) Len() int { return len(h) }
func (h frameHeap) Less(i, j int) bool {
	if h[i].seq != h[j].seq {
		return h[i].seq < h[j].seq
	}
	return h[i].ord < h[j].ord
}
func (h frameHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *frameHeap) Push(x any)   { *h = append(*h, x.(*frameCursor)) }
func (h *frameHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
