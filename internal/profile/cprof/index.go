package cprof

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"conferr/internal/profile"
)

// Index block layout (written by Writer.Close, pointed at by the
// trailer):
//
//	index    = 0x02
//	           uvarint nCampaigns, nCampaigns × (str system, str generator)
//	           uvarint nFrames, nFrames × frameRow
//	frameRow = uvarint campaignIdx
//	           uvarint offDelta      (vs previous row's Off; first row absolute)
//	           uvarint len, count, firstSeq, lastSeq
//
// Frame rows are in file order, so offsets are strictly increasing and
// delta-encode well; a thousand-frame index is a few KB.

// appendIndex serializes the index block for frames (in file order).
func appendIndex(buf []byte, frames []FrameInfo) []byte {
	var camp dictBuilder
	camp.reset()
	for i := range frames {
		camp.add(frames[i].System + "\x00" + frames[i].Generator)
	}
	buf = append(buf, indexMarker)
	buf = binary.AppendUvarint(buf, uint64(len(camp.values)))
	for _, v := range camp.values {
		sys, gen, _ := bytes.Cut([]byte(v), []byte{0})
		buf = appendString(buf, string(sys))
		buf = appendString(buf, string(gen))
	}
	buf = binary.AppendUvarint(buf, uint64(len(frames)))
	prevOff := int64(0)
	for i := range frames {
		f := &frames[i]
		buf = binary.AppendUvarint(buf, uint64(camp.index(f.System+"\x00"+f.Generator)))
		buf = binary.AppendUvarint(buf, uint64(f.Off-prevOff))
		prevOff = f.Off
		buf = binary.AppendUvarint(buf, uint64(f.Len))
		buf = binary.AppendUvarint(buf, uint64(f.Count))
		buf = binary.AppendUvarint(buf, uint64(f.FirstSeq))
		buf = binary.AppendUvarint(buf, uint64(f.LastSeq))
	}
	return buf
}

// parseIndex decodes an index block (including its marker byte).
func parseIndex(b []byte) ([]FrameInfo, error) {
	if len(b) == 0 || b[0] != indexMarker {
		return nil, fmt.Errorf("%w: index marker missing", errCorrupt)
	}
	c := cursor{b: b, pos: 1}
	nCamp := int(c.uvarint())
	if c.err != nil || nCamp < 0 || nCamp > len(b) {
		return nil, fmt.Errorf("%w: index campaign count", errCorrupt)
	}
	type campaign struct{ system, generator string }
	camps := make([]campaign, nCamp)
	for i := range camps {
		camps[i].system = string(c.str())
		camps[i].generator = string(c.str())
	}
	nFrames := int(c.uvarint())
	if c.err != nil || nFrames < 0 || nFrames > len(b) {
		return nil, fmt.Errorf("%w: index frame count", errCorrupt)
	}
	frames := make([]FrameInfo, nFrames)
	prevOff := int64(0)
	for i := range frames {
		f := &frames[i]
		ci := int(c.uvarint())
		f.Off = prevOff + int64(c.uvarint())
		prevOff = f.Off
		f.Len = int64(c.uvarint())
		f.Count = int(c.uvarint())
		f.FirstSeq = int(c.uvarint())
		f.LastSeq = int(c.uvarint())
		if c.err != nil {
			return nil, fmt.Errorf("index frame row %d: %w", i, c.err)
		}
		if ci >= nCamp {
			return nil, fmt.Errorf("%w: index frame row %d campaign %d of %d", errCorrupt, i, ci, nCamp)
		}
		f.System, f.Generator = camps[ci].system, camps[ci].generator
	}
	return frames, nil
}

// ReadIndex returns the file's frame index: from the trailer when the
// file was closed cleanly, otherwise rebuilt by walking the frame
// preambles — no payload is inflated either way. The second result
// reports whether a trailer index was present; a rebuilt index means
// the writer never completed (crashed campaign) and the returned frames
// are the readable prefix the walk recovered.
func ReadIndex(ra io.ReaderAt, size int64) ([]FrameInfo, bool, error) {
	frames, err := readTrailerIndex(ra, size)
	if err == nil {
		return frames, true, nil
	}
	if !errors.Is(err, errNoTrailer) {
		return nil, false, err
	}
	frames, _, err = walkFrames(ra, size)
	return frames, false, err
}

// errNoTrailer reports a file without a (valid) trailer — normal for a
// stream cut off before Close.
var errNoTrailer = errors.New("cprof: no trailer index")

// readTrailerIndex loads and validates the trailer-pointed index block.
func readTrailerIndex(ra io.ReaderAt, size int64) ([]FrameInfo, error) {
	if size < int64(len(fileMagic)+trailerLen) {
		return nil, errNoTrailer
	}
	var tr [trailerLen]byte
	if _, err := ra.ReadAt(tr[:], size-trailerLen); err != nil {
		return nil, fmt.Errorf("cprof: reading trailer: %w", err)
	}
	if string(tr[12:16]) != trailerMagic {
		return nil, errNoTrailer
	}
	idxOff := int64(binary.LittleEndian.Uint64(tr[0:8]))
	crc := binary.LittleEndian.Uint32(tr[8:12])
	idxLen := size - trailerLen - idxOff
	if idxOff < int64(len(fileMagic)) || idxLen < 1 || idxLen > maxFramePayload {
		return nil, fmt.Errorf("%w: trailer index offset %d in %d-byte file", errCorrupt, idxOff, size)
	}
	idx := make([]byte, idxLen)
	if _, err := ra.ReadAt(idx, idxOff); err != nil {
		return nil, fmt.Errorf("cprof: reading index: %w", err)
	}
	if got := crc32.Checksum(idx, crcTable); got != crc {
		return nil, fmt.Errorf("%w: index CRC mismatch (got %08x, want %08x)", errCorrupt, got, crc)
	}
	return parseIndex(idx)
}

// walkFrames rebuilds frame infos by reading preambles sequentially and
// skipping payloads (verifying their CRCs, never inflating). It stops
// cleanly at the index marker, at EOF, and at a torn or corrupt tail
// frame — the returned frames are the file's valid prefix, and end is
// the offset just past it.
func walkFrames(ra io.ReaderAt, size int64) (frames []FrameInfo, end int64, err error) {
	cr := &countReader{r: bufio.NewReaderSize(io.NewSectionReader(ra, 0, size), 256*1024)}
	var magic [len("cprof\x01")]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, 0, fmt.Errorf("cprof: reading magic: %w", err)
	}
	if !bytes.Equal(magic[:], fileMagic) {
		return nil, 0, fmt.Errorf("cprof: bad magic %q", magic[:])
	}
	end = cr.n
	var comp []byte
	for {
		marker, err := cr.ReadByte()
		if err == io.EOF {
			return frames, end, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("cprof: reading frame marker: %w", err)
		}
		if marker != frameMarker {
			// The index block (or garbage): frames end here.
			return frames, end, nil
		}
		off := end
		pre, perr := readPreamble(cr)
		if perr != nil {
			if errors.Is(perr, io.ErrUnexpectedEOF) || errors.Is(perr, errCorrupt) {
				return frames, end, nil // torn tail
			}
			return nil, 0, fmt.Errorf("cprof: frame at %d: %w", off, perr)
		}
		comp = grow(comp, pre.compLen)
		if _, err := io.ReadFull(cr, comp); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || err == io.EOF {
				return frames, end, nil // torn tail
			}
			return nil, 0, fmt.Errorf("cprof: frame at %d: %w", off, err)
		}
		if crc32.Checksum(comp, crcTable) != pre.crc {
			return frames, end, nil // torn or corrupt tail
		}
		frames = append(frames, FrameInfo{
			System: pre.system, Generator: pre.generator,
			Off: off, Len: cr.n - off,
			Count:    pre.count,
			FirstSeq: pre.firstSeq, LastSeq: pre.lastSeq,
		})
		end = cr.n
	}
}

// byteReader is what preamble decoding needs: buffered byte-at-a-time
// varint reads plus bulk reads.
type byteReader interface {
	io.Reader
	io.ByteReader
}

// countReader tracks the logical read position through a buffered
// reader, so frame walks know exact offsets without re-deriving encoded
// lengths.
type countReader struct {
	r byteReader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// decodeFrameAt reads and replays one indexed frame via pread — the
// random-access decode behind ordered and parallel scans.
func decodeFrameAt(ra io.ReaderAt, fi FrameInfo, dec *frameDecoder, fn func(profile.JSONLEntry) error) error {
	if fi.Len < 2 || fi.Len > maxFramePayload {
		return fmt.Errorf("%w: indexed frame length %d at %d", errCorrupt, fi.Len, fi.Off)
	}
	buf := grow(dec.frame, int(fi.Len))
	dec.frame = buf
	if _, err := ra.ReadAt(buf, fi.Off); err != nil {
		return fmt.Errorf("cprof: reading frame at %d: %w", fi.Off, err)
	}
	if buf[0] != frameMarker {
		return fmt.Errorf("%w: no frame marker at indexed offset %d", errCorrupt, fi.Off)
	}
	cr := &countReader{r: bytes.NewReader(buf[1:])}
	pre, err := readPreamble(cr)
	if err != nil {
		return fmt.Errorf("cprof: frame at %d: %w", fi.Off, err)
	}
	payloadOff := 1 + cr.n
	if payloadOff+int64(pre.compLen) != fi.Len {
		return fmt.Errorf("%w: frame at %d: index len %d vs preamble %d",
			errCorrupt, fi.Off, fi.Len, payloadOff+int64(pre.compLen))
	}
	dec.comp = buf[payloadOff:fi.Len]
	if err := dec.decode(&pre, fn); err != nil {
		return fmt.Errorf("cprof: frame at %d: %w", fi.Off, err)
	}
	return nil
}
