package cprof

import (
	"conferr/internal/profile"
)

// LineWriter adapts the Writer to the SeqMerger's output contract: one
// rendered JSONL line per Write call. Each line is parsed back into its
// entry and re-encoded into frames, so `dist -out foo.cprof` reuses the
// whole merge/checkpoint path unchanged — workers still ship JSONL
// lines over the wire; only the merged artifact changes format.
type LineWriter struct {
	w *Writer
}

// LineWriter returns the writer's line-per-Write adapter.
func (w *Writer) LineWriter() *LineWriter { return &LineWriter{w: w} }

// Write implements io.Writer over exactly one JSONL line (trailing
// newline optional; blank lines are ignored).
func (lw *LineWriter) Write(p []byte) (int, error) {
	line := p
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if len(line) == 0 {
		return len(p), nil
	}
	e, err := profile.ParseJSONLLine(line)
	if err != nil {
		return 0, err
	}
	if err := lw.w.WriteEntry(e); err != nil {
		return 0, err
	}
	return len(p), nil
}

// WriteEntry buffers one decoded entry into the frames of its
// campaign's internal sink, creating the sink on first appearance. The
// entry's explicit sequence number is preserved; a sequence running
// backwards cuts the current frame so frames stay internally ordered.
// Single-goroutine, like every sink write path.
func (w *Writer) WriteEntry(e profile.JSONLEntry) error {
	key := e.System + "\x00" + e.Generator
	w.mu.Lock()
	if w.campaigns == nil {
		w.campaigns = make(map[string]*Sink)
	}
	s := w.campaigns[key]
	if s == nil {
		s = &Sink{w: w, system: e.System, generator: e.Generator}
		w.campaigns[key] = s
		w.sinks = append(w.sinks, s)
	}
	w.mu.Unlock()
	return s.writeSeq(e.Seq, e.Record)
}
