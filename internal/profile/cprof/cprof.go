// Package cprof implements the compact binary profile format — the
// fleet-scale counterpart of the JSONL stream. A `.cprof` file carries
// the same entries as a JSON Lines profile (campaign identity, sequence
// number, record) at a fraction of the bytes and decode cost: records
// are grouped into frames of ~4k, each frame dictionary-compresses its
// highly repetitive string fields, delta-encodes sequence numbers and
// durations as varints, and flate-compresses the result. A frame index
// in the file trailer enables parallel scans and seek-to-sequence
// without touching the frames in between.
//
// # File layout
//
//	file    = magic frame* [index trailer]
//	magic   = "cprof\x01"                      (6 bytes)
//	frame   = 0x01 preamble payload
//	index   = 0x02 campaign-dict frame-table   (see index.go)
//	trailer = u64le index-offset, u32le index-CRC32C, "cIdx"  (16 bytes)
//
// The index is optional on read: frames are self-delimiting, so a file
// cut off before Close (a crashed writer) still scans sequentially, and
// the index can be rebuilt from the frame preambles without inflating a
// single payload.
//
// # Frame layout
//
// The preamble is uncompressed so scanners and index rebuilds can walk
// frames without inflating them:
//
//	preamble = str system, str generator       (str = uvarint len + bytes)
//	           uvarint count                   (records in the frame, > 0)
//	           uvarint firstSeq, lastSeq
//	           uvarint rawLen, compLen         (payload sizes)
//	           u32le   CRC32C(compressed payload)
//	payload  = flate(rawLen bytes), compLen bytes on disk
//
// The payload opens with the frame's two string dictionaries and then
// one row per record:
//
//	payload  = dict(class) dict(detail) row*
//	dict     = uvarint n, n × str
//	row      = uvarint seqDelta                (vs previous row; first row 0)
//	           uvarint outcome
//	           uvarint classIdx
//	           uvarint idPrefix                (scenario-ID bytes shared with
//	                                            the previous row's ID)
//	           str     idSuffix
//	           str     description
//	           uvarint detailIdx
//	           varint  durDelta                (zigzag, vs previous row)
//
// Class and Detail are the two fields whose values repeat across nearly
// every record of a campaign, so they become per-frame dictionaries;
// Outcome is already a small enum and is stored directly. Scenario IDs
// repeat their prefixes (round prefixes, plugin/class/file paths) rather
// than whole values, so they are front-coded against the previous row.
// Sequence numbers within a frame are non-decreasing by construction —
// ordered sinks emit consecutive runs, shard sub-sinks emit stride-n
// runs — so their deltas are tiny constants, and flate squeezes what
// remains.
package cprof

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"

	"conferr/internal/profile"
)

// Format constants.
const (
	// DefaultFrameRecords is how many records a sink buffers per frame.
	// 4k records strikes the balance the format is built around: large
	// enough that dictionaries and flate amortize, small enough that a
	// frame inflates in one CPU's cache and a seek overshoots by at most
	// a few thousand records.
	DefaultFrameRecords = 4096

	frameMarker = 0x01
	indexMarker = 0x02

	trailerLen   = 16
	trailerMagic = "cIdx"

	// maxFramePayload bounds the sizes a preamble may claim, so a
	// corrupt or hostile file cannot make a scanner allocate gigabytes.
	maxFramePayload = 1 << 30
)

var fileMagic = []byte("cprof\x01")

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms campaigns run on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FrameInfo describes one frame: its campaign identity, where it lives
// in the file, and which sequence range it covers. The trailer index is
// a list of these; scanners use them to skip, parallelize, or
// seek-to-sequence without inflating intervening frames.
type FrameInfo struct {
	// System and Generator are the campaign identity of every record in
	// the frame (frames never mix campaigns).
	System    string
	Generator string
	// Off is the file offset of the frame marker byte; Len the total
	// frame length through the end of its payload.
	Off int64
	Len int64
	// Count is the number of records in the frame.
	Count int
	// FirstSeq and LastSeq bound the frame's sequence numbers
	// (inclusive). Frames from one writer sink are internally ordered;
	// frames of different shard sub-sinks may overlap in range.
	FirstSeq int
	LastSeq  int
}

// Writer appends cprof frames to an underlying stream. One Writer per
// output file; any number of sinks (one per campaign, plus their shard
// sub-sinks) attach to it and their frames interleave at frame
// granularity. Frame writes are serialized internally, so sinks may
// flush from concurrent campaign workers; Flush and Close, however,
// must not race with in-flight sink writes — call them after the runs
// feeding the sinks have completed (or, for Flush, from the same
// goroutine that owns all writes, as the dist merger does).
type Writer struct {
	// Level is the flate compression level for subsequent frames.
	// Defaults to flate.BestSpeed (1): the payload is already delta- and
	// dictionary-encoded, so higher levels buy a few percent of size for
	// a multiple of the encode cost. Set before the first record lands.
	Level int
	// FrameRecords is the per-sink frame size in records (default
	// DefaultFrameRecords). Set before the first record lands.
	FrameRecords int

	mu     sync.Mutex
	w      io.Writer
	off    int64
	wrote  bool // magic emitted
	err    error
	closed atomic.Bool // checked lock-free on the record hot path

	frames    []FrameInfo
	sinks     []*Sink
	campaigns map[string]*Sink // WriteEntry's per-campaign sinks
	enc       frameEncoder
}

// NewWriter returns a Writer appending frames to w (typically a
// *bufio.Writer over a file). The file magic is emitted with the first
// frame; Close writes the frame index and trailer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{Level: 1, FrameRecords: DefaultFrameRecords, w: w}
}

// newWriterAt returns a Writer resuming an existing stream: off bytes
// (magic included) are already on disk and frames describes them. Used
// by OpenFileAt after reconciling a checkpointed file.
func newWriterAt(w io.Writer, off int64, frames []FrameInfo) *Writer {
	return &Writer{
		Level: 1, FrameRecords: DefaultFrameRecords,
		w: w, off: off, wrote: true, frames: frames,
	}
}

// Sink returns a streaming profile sink writing the campaign's records
// into the file, tagged with the campaign identity — the cprof
// counterpart of profile.NewJSONLSink. Sequence numbers are assigned
// per sink, starting at zero.
func (w *Writer) Sink(system, generator string) *Sink {
	s := &Sink{w: w, system: system, generator: generator}
	w.mu.Lock()
	w.sinks = append(w.sinks, s)
	w.mu.Unlock()
	return s
}

// Frames returns a snapshot of the frames written so far.
func (w *Writer) Frames() []FrameInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]FrameInfo, len(w.frames))
	copy(out, w.frames)
	return out
}

// Flush cuts every attached sink's partially filled frame and writes it
// out. This is the durability point for checkpointing writers (the dist
// merger flushes before each checkpoint, so the checkpoint never claims
// records the file lacks); mid-stream flushes trade a little
// compression for that durability. It does not flush any wrapping
// bufio.Writer — that is the caller's layer.
func (w *Writer) Flush() error {
	w.mu.Lock()
	sinks := append([]*Sink(nil), w.sinks...)
	w.mu.Unlock()
	for _, s := range sinks {
		if err := s.flush(); err != nil {
			return err
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes every attached sink and writes the frame index and
// trailer. It does not close the underlying writer. The Writer is done
// after Close; further writes fail.
func (w *Writer) Close() error {
	if err := w.Flush(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.ensureMagicLocked(); err != nil {
		return err
	}
	index := appendIndex(nil, w.frames)
	var trailer [trailerLen]byte
	binary.LittleEndian.PutUint64(trailer[0:8], uint64(w.off))
	binary.LittleEndian.PutUint32(trailer[8:12], crc32.Checksum(index, crcTable))
	copy(trailer[12:16], trailerMagic)
	if _, err := w.w.Write(index); err != nil {
		w.err = fmt.Errorf("cprof: writing index: %w", err)
		return w.err
	}
	if _, err := w.w.Write(trailer[:]); err != nil {
		w.err = fmt.Errorf("cprof: writing trailer: %w", err)
		return w.err
	}
	w.off += int64(len(index) + trailerLen)
	w.err = fmt.Errorf("cprof: writer closed")
	w.closed.Store(true)
	return nil
}

func (w *Writer) ensureMagicLocked() error {
	if w.wrote {
		return nil
	}
	if _, err := w.w.Write(fileMagic); err != nil {
		w.err = fmt.Errorf("cprof: writing magic: %w", err)
		return w.err
	}
	w.off += int64(len(fileMagic))
	w.wrote = true
	return nil
}

// writeFrame encodes and appends one frame. recs and seqs are parallel;
// seqs are non-decreasing (the sinks guarantee it by cutting a frame
// when order would break).
func (w *Writer) writeFrame(system, generator string, recs []profile.Record, seqs []int) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.ensureMagicLocked(); err != nil {
		return err
	}
	head, comp, err := w.enc.encode(system, generator, recs, seqs, w.Level)
	if err != nil {
		w.err = err
		return err
	}
	off := w.off
	if _, err := w.w.Write(head); err != nil {
		w.err = fmt.Errorf("cprof: writing frame: %w", err)
		return w.err
	}
	if _, err := w.w.Write(comp); err != nil {
		w.err = fmt.Errorf("cprof: writing frame payload: %w", err)
		return w.err
	}
	w.off += int64(len(head) + len(comp))
	w.frames = append(w.frames, FrameInfo{
		System: system, Generator: generator,
		Off: off, Len: int64(len(head) + len(comp)),
		Count:    len(recs),
		FirstSeq: seqs[0], LastSeq: seqs[len(recs)-1],
	})
	return nil
}

// frameRecords resolves the configured frame size.
func (w *Writer) frameRecords() int {
	if w.FrameRecords > 0 {
		return w.FrameRecords
	}
	return DefaultFrameRecords
}

// Sink buffers one campaign's records into cprof frames — the compact
// counterpart of profile.JSONLSink, and like it zero steady-state
// allocations per record: Write appends into a preallocated frame
// buffer, and the encode scratch (dictionaries, payload buffers, the
// flate stream) is reused across frames. It implements both
// profile.Sink and profile.ShardableSink, so the engine's tally-bypass
// path (each worker folding its own shard with no reassembly) works
// unchanged: a shard sub-sink buffers its own stride-n frames into the
// same file, and the trailer index keeps the interleaved result
// seek-able and mergeable back into sequence order.
type Sink struct {
	w         *Writer
	system    string
	generator string

	// seq assignment: next = start + len(written so far) * stride. The
	// root sink counts 0,1,2…; shard sub-sink k of n counts k, k+n, ….
	next   int
	stride int

	recs []profile.Record
	seqs []int

	shards []*Sink
}

var _ profile.ShardableSink = (*Sink)(nil)

// Write implements profile.Sink.
func (s *Sink) Write(r profile.Record) error {
	seq := s.next
	if s.stride > 0 {
		s.next += s.stride
	} else {
		s.next++
	}
	return s.writeSeq(seq, r)
}

// writeSeq buffers one record under an explicit sequence number,
// cutting the frame early if monotonicity would break (explicit-seq
// feeders like the converter may replay arbitrary files).
func (s *Sink) writeSeq(seq int, r profile.Record) error {
	if s.w.closed.Load() {
		// Fail now rather than buffering into a finished file: a record
		// accepted here could never be flushed.
		return fmt.Errorf("cprof: writer closed")
	}
	if s.recs == nil {
		n := s.w.frameRecords()
		s.recs = make([]profile.Record, 0, n)
		s.seqs = make([]int, 0, n)
	}
	if len(s.seqs) > 0 && seq < s.seqs[len(s.seqs)-1] {
		if err := s.flush(); err != nil {
			return err
		}
	}
	s.recs = append(s.recs, r)
	s.seqs = append(s.seqs, seq)
	if len(s.recs) >= cap(s.recs) {
		return s.flush()
	}
	return nil
}

// flush writes the buffered records as one frame.
func (s *Sink) flush() error {
	if len(s.recs) == 0 {
		return nil
	}
	err := s.w.writeFrame(s.system, s.generator, s.recs, s.seqs)
	clearRecords(s.recs)
	s.recs = s.recs[:0]
	s.seqs = s.seqs[:0]
	return err
}

// clearRecords zeroes the flushed slots so the buffer does not pin the
// records' strings until the next frame fills.
func clearRecords(recs []profile.Record) {
	for i := range recs {
		recs[i] = profile.Record{}
	}
}

// ShardSink implements profile.ShardableSink: the k-th of n sub-sinks
// owns the stride-n sequence run k, k+n, k+2n, … and buffers its own
// frames, so shard workers never contend except at frame writes. Like
// TallySink, repeated calls for the same k return the same sub-sink.
func (s *Sink) ShardSink(k, n int) profile.Sink {
	s.w.mu.Lock()
	if len(s.shards) < n {
		shards := make([]*Sink, n)
		copy(shards, s.shards)
		s.shards = shards
	}
	sub := s.shards[k]
	if sub == nil {
		sub = &Sink{w: s.w, system: s.system, generator: s.generator, next: k, stride: n}
		s.shards[k] = sub
		s.w.sinks = append(s.w.sinks, sub)
	}
	s.w.mu.Unlock()
	return sub
}
