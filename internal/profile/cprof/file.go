package cprof

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"conferr/internal/profile"
)

// File couples a cprof Writer with its backing file and write buffer —
// the whole output stack behind `matrix -stream-out foo.cprof` and
// `dist -out foo.cprof`.
type File struct {
	f  *os.File
	bw *bufio.Writer
	// W is the frame writer; obtain sinks and line writers from it.
	W *Writer
}

// Create creates (or truncates) a cprof output file.
func Create(path string) (*File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cprof: %w", err)
	}
	return newFile(f), nil
}

func newFile(f *os.File) *File {
	bw := bufio.NewWriterSize(f, 256*1024)
	return &File{f: f, bw: bw, W: NewWriter(bw)}
}

// Flush cuts every sink's partial frame and pushes everything through
// the buffer to the OS — the durability point before a checkpoint.
func (c *File) Flush() error {
	if err := c.W.Flush(); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("cprof: flushing output: %w", err)
	}
	return nil
}

// Sync flushes like Flush and then fsyncs the backing file, making every
// completed frame durable against a host crash — the stronger durability
// point `dist -fsync` checkpoints against.
func (c *File) Sync() error {
	if err := c.Flush(); err != nil {
		return err
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("cprof: syncing output: %w", err)
	}
	return nil
}

// Close finishes the file. With complete=true the frame index and
// trailer are written first — a cleanly closed, trailer-indexed file.
// With complete=false only buffered frames are flushed: the file stays
// a valid resumable prefix (scans sequentially, index rebuilds from
// preambles) for a later OpenFileAt.
func (c *File) Close(complete bool) error {
	var err error
	if complete {
		err = c.W.Close()
	} else {
		err = c.W.Flush()
	}
	if ferr := c.bw.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("cprof: flushing output: %w", ferr)
	}
	if cerr := c.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("cprof: closing output: %w", cerr)
	}
	return err
}

// OpenFileAt opens path for appending a merged record stream resumed at
// checkpoint front — the cprof counterpart of the dist coordinator's
// JSONL line-count reconcile. The existing frames are walked (payload
// CRCs verified, no inflation), checked contiguous from sequence 0, and
// everything past front records — a torn tail, frames flushed after the
// last durable checkpoint, a stale index block — is truncated away. The
// checkpointing writer flushes (cutting a frame) before every
// checkpoint write, so a frame boundary exists at exactly front; a
// front landing mid-frame means the file and checkpoint do not belong
// together. front == 0 truncates to a fresh file.
func OpenFileAt(path string, front int) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cprof: %w", err)
	}
	if front == 0 {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("cprof: truncating output: %w", err)
		}
		return newFile(f), nil
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("cprof: %w", err)
	}
	frames, _, err := walkFrames(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	var kept []FrameInfo
	records := 0
	end := int64(len(fileMagic))
	for _, fi := range frames {
		if records == front {
			break
		}
		if fi.FirstSeq != records || fi.LastSeq != records+fi.Count-1 {
			f.Close()
			return nil, fmt.Errorf("cprof: %s: frame at %d covers sequences %d..%d where %d was expected — wrong or corrupt output file",
				path, fi.Off, fi.FirstSeq, fi.LastSeq, records)
		}
		if records+fi.Count > front {
			f.Close()
			return nil, fmt.Errorf("cprof: %s: checkpoint front %d lands inside the frame at %d (sequences %d..%d) — file and checkpoint do not belong together",
				path, front, fi.Off, fi.FirstSeq, fi.LastSeq)
		}
		records += fi.Count
		kept = append(kept, fi)
		end = fi.Off + fi.Len
	}
	if records < front {
		f.Close()
		return nil, fmt.Errorf("cprof: %s has %d contiguous records but checkpoint front is %d — wrong or corrupt output file",
			path, records, front)
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("cprof: truncating output past the checkpoint front: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("cprof: %w", err)
	}
	bw := bufio.NewWriterSize(f, 256*1024)
	return &File{f: f, bw: bw, W: newWriterAt(bw, end, kept)}, nil
}

// ToJSONL renders a cprof file as canonical JSONL on w, in canonical
// order (campaigns by first appearance, records by sequence) — the
// lossless cprof→JSONL conversion. For ordered single-campaign inputs
// the output is byte-identical to the JSONL stream the same campaign
// would have written directly.
func ToJSONL(path string, w io.Writer) error {
	bw, ok := w.(*bufio.Writer)
	if !ok {
		bw = bufio.NewWriterSize(w, 256*1024)
	}
	var buf []byte
	err := ScanFileSeqOrdered(path, func(e profile.JSONLEntry) error {
		buf = profile.AppendJSONLRecord(buf[:0], e.System, e.Generator, e.Seq, e.Record)
		_, werr := bw.Write(buf)
		return werr
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// FromJSONL converts a JSONL stream into cprof frames on the Writer
// (whose Close the caller owns) — the lossless JSONL→cprof conversion.
func FromJSONL(r io.Reader, w *Writer) error {
	return profile.ScanJSONL(r, w.WriteEntry)
}
