package cprof

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"conferr/internal/profile"
)

// errCorrupt is the base error for malformed frame payloads; scanners
// wrap it with the frame's position.
var errCorrupt = errors.New("cprof: corrupt frame payload")

// preamble is the decoded uncompressed frame header.
type preamble struct {
	system    string
	generator string
	count     int
	firstSeq  int
	lastSeq   int
	rawLen    int
	compLen   int
	crc       uint32
}

// Scan streams a cprof stream frame by frame to fn, in file order,
// without materializing anything — the binary counterpart of
// profile.ScanJSONL, with the same callback shape. File order equals
// sequence order for files written by a single ordered sink (matrix
// stream-out, dist merge); files written through the sharded bypass
// interleave their shards' frames — use ScanFileSeqOrdered when global
// sequence order matters. The scan stops cleanly at the index block, so
// it works on a plain io.Reader (a pipe, stdin) with no seeking.
func Scan(r io.Reader, fn func(profile.JSONLEntry) error) error {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 256*1024)
	}
	var magic [len("cprof\x01")]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("cprof: reading magic: %w", err)
	}
	if !bytes.Equal(magic[:], fileMagic) {
		return fmt.Errorf("cprof: bad magic %q", magic[:])
	}
	var dec frameDecoder
	frameNo := 0
	for {
		marker, err := br.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("cprof: reading frame marker: %w", err)
		}
		switch marker {
		case frameMarker:
		case indexMarker:
			// Frames precede the index; the sequential scan is complete.
			return nil
		default:
			return fmt.Errorf("cprof: frame %d: unknown marker 0x%02x", frameNo, marker)
		}
		frameNo++
		pre, err := readPreamble(br)
		if err != nil {
			return fmt.Errorf("cprof: frame %d: %w", frameNo, err)
		}
		dec.comp = grow(dec.comp, pre.compLen)
		if _, err := io.ReadFull(br, dec.comp); err != nil {
			return fmt.Errorf("cprof: frame %d: reading payload: %w", frameNo, err)
		}
		if err := dec.decode(&pre, fn); err != nil {
			return fmt.Errorf("cprof: frame %d: %w", frameNo, err)
		}
	}
}

// readPreamble decodes a frame preamble (the marker byte already
// consumed) from a buffered reader.
func readPreamble(br byteReader) (preamble, error) {
	var pre preamble
	var err error
	if pre.system, err = readLenString(br); err != nil {
		return pre, fmt.Errorf("preamble system: %w", err)
	}
	if pre.generator, err = readLenString(br); err != nil {
		return pre, fmt.Errorf("preamble generator: %w", err)
	}
	fields := [5]*int{&pre.count, &pre.firstSeq, &pre.lastSeq, &pre.rawLen, &pre.compLen}
	for i, p := range fields {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return pre, fmt.Errorf("preamble field %d: %w", i, eofToUnexpected(err))
		}
		*p = int(v)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(br, crcb[:]); err != nil {
		return pre, fmt.Errorf("preamble crc: %w", err)
	}
	pre.crc = binary.LittleEndian.Uint32(crcb[:])
	if pre.count <= 0 || pre.rawLen <= 0 || pre.compLen <= 0 ||
		pre.rawLen > maxFramePayload || pre.compLen > maxFramePayload ||
		pre.lastSeq < pre.firstSeq {
		return pre, fmt.Errorf("%w: implausible preamble (count=%d raw=%d comp=%d seqs=%d..%d)",
			errCorrupt, pre.count, pre.rawLen, pre.compLen, pre.firstSeq, pre.lastSeq)
	}
	return pre, nil
}

// readLenString reads a uvarint-length-prefixed string.
func readLenString(br byteReader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", eofToUnexpected(err)
	}
	if n > 1<<20 {
		return "", fmt.Errorf("%w: string length %d", errCorrupt, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// eofToUnexpected maps a clean EOF mid-structure to ErrUnexpectedEOF, so
// a torn tail frame reads as truncation, not as end of file.
func eofToUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// grow returns b resized to n, reallocating only when capacity is short.
func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// frameDecoder holds the reusable scratch of a sequential scan: the
// compressed and inflated payload buffers, the per-frame dictionaries,
// the scenario-ID front-coding buffer, and the flate stream.
type frameDecoder struct {
	frame   []byte // whole-frame pread scratch (random-access decodes)
	comp    []byte
	raw     []byte
	classes []string
	details []string
	id      []byte

	compRd bytes.Reader
	fr     io.ReadCloser
}

// decode checks, inflates, and replays one frame whose compressed
// payload sits in d.comp, calling fn once per record.
func (d *frameDecoder) decode(pre *preamble, fn func(profile.JSONLEntry) error) error {
	if got := crc32.Checksum(d.comp, crcTable); got != pre.crc {
		return fmt.Errorf("%w: payload CRC mismatch (got %08x, want %08x)", errCorrupt, got, pre.crc)
	}
	d.compRd.Reset(d.comp)
	if d.fr == nil {
		d.fr = flate.NewReader(&d.compRd)
	} else if err := d.fr.(flate.Resetter).Reset(&d.compRd, nil); err != nil {
		return fmt.Errorf("cprof: resetting flate: %w", err)
	}
	d.raw = grow(d.raw, pre.rawLen)
	if _, err := io.ReadFull(d.fr, d.raw); err != nil {
		return fmt.Errorf("cprof: inflating payload: %w", err)
	}

	c := cursor{b: d.raw}
	var err error
	if d.classes, err = c.dict(d.classes[:0]); err != nil {
		return fmt.Errorf("class dictionary: %w", err)
	}
	if d.details, err = c.dict(d.details[:0]); err != nil {
		return fmt.Errorf("detail dictionary: %w", err)
	}
	d.id = d.id[:0]
	seq := pre.firstSeq
	var dur int64
	e := profile.JSONLEntry{System: pre.system, Generator: pre.generator}
	for i := 0; i < pre.count; i++ {
		seq += int(c.uvarint())
		outcome := profile.Outcome(c.uvarint())
		classIdx := int(c.uvarint())
		p := int(c.uvarint())
		suffix := c.str()
		desc := c.str()
		detailIdx := int(c.uvarint())
		dur += c.varint()
		if c.err != nil {
			return fmt.Errorf("record %d: %w", i, c.err)
		}
		if classIdx >= len(d.classes) || detailIdx >= len(d.details) ||
			p > len(d.id) || outcome < profile.DetectedAtStartup || outcome > profile.InfrastructureError {
			return fmt.Errorf("%w: record %d out of range (class=%d detail=%d prefix=%d outcome=%d)",
				errCorrupt, i, classIdx, detailIdx, p, outcome)
		}
		d.id = append(d.id[:p], suffix...)
		e.Seq = seq
		e.Record = profile.Record{
			ScenarioID:  string(d.id),
			Class:       d.classes[classIdx],
			Description: string(desc),
			Outcome:     outcome,
			Detail:      d.details[detailIdx],
			Duration:    time.Duration(dur),
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// cursor walks a decoded payload with a sticky error, so row decoding
// reads as straight-line code with one check per record.
type cursor struct {
	b   []byte
	pos int
	err error
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.pos:])
	if n <= 0 {
		c.err = fmt.Errorf("%w: bad uvarint at %d", errCorrupt, c.pos)
		return 0
	}
	c.pos += n
	return v
}

func (c *cursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.pos:])
	if n <= 0 {
		c.err = fmt.Errorf("%w: bad varint at %d", errCorrupt, c.pos)
		return 0
	}
	c.pos += n
	return v
}

// str returns the next length-prefixed byte string, borrowed from the
// payload buffer — valid until the next frame decodes.
func (c *cursor) str() []byte {
	n := int(c.uvarint())
	if c.err != nil {
		return nil
	}
	if n < 0 || n > len(c.b)-c.pos {
		c.err = fmt.Errorf("%w: string of %d bytes at %d overruns payload", errCorrupt, n, c.pos)
		return nil
	}
	s := c.b[c.pos : c.pos+n]
	c.pos += n
	return s
}

// dict decodes one frame dictionary into vals.
func (c *cursor) dict(vals []string) ([]string, error) {
	n := int(c.uvarint())
	if c.err != nil {
		return vals, c.err
	}
	if n < 0 || n > len(c.b) {
		return vals, fmt.Errorf("%w: dictionary of %d entries", errCorrupt, n)
	}
	for i := 0; i < n; i++ {
		s := c.str()
		if c.err != nil {
			return vals, c.err
		}
		vals = append(vals, string(s))
	}
	return vals, nil
}
