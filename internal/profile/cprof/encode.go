package cprof

import (
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"conferr/internal/profile"
)

// frameEncoder turns a batch of records into one encoded frame. All
// scratch — the raw and compressed payload buffers, the dictionary
// builders, the flate stream — is reused across frames, so steady-state
// frame encoding allocates nothing beyond what flate's internals retain.
// One encoder lives in the Writer and runs under its mutex.
type frameEncoder struct {
	raw    []byte // uncompressed payload
	comp   []byte // compressed payload (after the preamble in head)
	head   []byte // frame marker + preamble
	class  dictBuilder
	detail dictBuilder

	fw      *flate.Writer
	fwLevel int
}

// encode renders one frame and returns the preamble and compressed
// payload (both valid until the next encode call).
func (e *frameEncoder) encode(system, generator string, recs []profile.Record, seqs []int, level int) (head, comp []byte, err error) {
	// Pass 1: dictionaries, in first-appearance order.
	e.class.reset()
	e.detail.reset()
	for i := range recs {
		e.class.add(recs[i].Class)
		e.detail.add(recs[i].Detail)
	}

	// Pass 2: payload rows.
	raw := e.raw[:0]
	raw = e.class.append(raw)
	raw = e.detail.append(raw)
	prevSeq := seqs[0]
	prevID := ""
	prevDur := int64(0)
	for i := range recs {
		r := &recs[i]
		raw = binary.AppendUvarint(raw, uint64(seqs[i]-prevSeq))
		prevSeq = seqs[i]
		raw = binary.AppendUvarint(raw, uint64(r.Outcome))
		raw = binary.AppendUvarint(raw, uint64(e.class.index(r.Class)))
		p := commonPrefix(prevID, r.ScenarioID)
		raw = binary.AppendUvarint(raw, uint64(p))
		raw = appendString(raw, r.ScenarioID[p:])
		prevID = r.ScenarioID
		raw = appendString(raw, r.Description)
		raw = binary.AppendUvarint(raw, uint64(e.detail.index(r.Detail)))
		ns := r.Duration.Nanoseconds()
		raw = binary.AppendVarint(raw, ns-prevDur)
		prevDur = ns
	}
	e.raw = raw

	// Compress.
	if e.fw == nil || e.fwLevel != level {
		fw, err := flate.NewWriter(nil, level)
		if err != nil {
			return nil, nil, fmt.Errorf("cprof: flate level %d: %w", level, err)
		}
		e.fw, e.fwLevel = fw, level
	}
	cw := (*compBuf)(&e.comp)
	e.comp = e.comp[:0]
	e.fw.Reset(cw)
	if _, err := e.fw.Write(raw); err != nil {
		return nil, nil, fmt.Errorf("cprof: compressing frame: %w", err)
	}
	if err := e.fw.Close(); err != nil {
		return nil, nil, fmt.Errorf("cprof: compressing frame: %w", err)
	}

	// Preamble.
	h := append(e.head[:0], frameMarker)
	h = appendString(h, system)
	h = appendString(h, generator)
	h = binary.AppendUvarint(h, uint64(len(recs)))
	h = binary.AppendUvarint(h, uint64(seqs[0]))
	h = binary.AppendUvarint(h, uint64(seqs[len(recs)-1]))
	h = binary.AppendUvarint(h, uint64(len(raw)))
	h = binary.AppendUvarint(h, uint64(len(e.comp)))
	h = binary.LittleEndian.AppendUint32(h, crc32.Checksum(e.comp, crcTable))
	e.head = h
	return h, e.comp, nil
}

// compBuf adapts the reusable compressed-payload slice into flate's
// io.Writer.
type compBuf []byte

func (b *compBuf) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

// dictBuilder assigns dense indices to a frame's distinct values of one
// string field, in first-appearance order. The map and backing slice
// are reused across frames.
type dictBuilder struct {
	idx    map[string]int
	values []string
}

func (d *dictBuilder) reset() {
	if d.idx == nil {
		d.idx = make(map[string]int, 16)
	} else {
		clear(d.idx)
	}
	d.values = d.values[:0]
}

func (d *dictBuilder) add(v string) {
	if _, ok := d.idx[v]; !ok {
		d.idx[v] = len(d.values)
		d.values = append(d.values, v)
	}
}

func (d *dictBuilder) index(v string) int { return d.idx[v] }

// append serializes the dictionary: uvarint count, then each value.
func (d *dictBuilder) append(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.values)))
	for _, v := range d.values {
		buf = appendString(buf, v)
	}
	return buf
}

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// commonPrefix returns the length of the longest common byte prefix.
func commonPrefix(a, b string) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}
