package cprof

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"conferr/internal/profile"
)

// ScanAuto streams a profile of either format to fn: it sniffs the
// cprof magic (not a file extension — pipes and misnamed files decode
// by content) and dispatches to Scan or profile.ScanJSONL. The unified
// entry point for everything that folds a record stream.
func ScanAuto(r io.Reader, fn func(profile.JSONLEntry) error) error {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 256*1024)
	}
	head, err := br.Peek(len(fileMagic))
	if err == nil && bytes.Equal(head, fileMagic) {
		return Scan(br, fn)
	}
	return profile.ScanJSONL(br, fn)
}

// ScanPath is ScanAuto over a file path; "-" reads stdin. Records
// arrive in file order — use ScanFileSeqOrdered when global sequence
// order matters.
func ScanPath(path string, fn func(profile.JSONLEntry) error) error {
	if path == "-" {
		return ScanAuto(os.Stdin, fn)
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	defer f.Close()
	return ScanAuto(f, fn)
}

// IsCprofPath reports whether the file at path starts with the cprof
// magic ("-" — stdin — reports false, as it cannot be re-read).
func IsCprofPath(path string) (bool, error) {
	if path == "-" {
		return false, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("profile: %w", err)
	}
	defer f.Close()
	var head [len("cprof\x01")]byte
	n, err := io.ReadFull(f, head[:])
	if err != nil && n == 0 && err != io.EOF {
		return false, fmt.Errorf("profile: %w", err)
	}
	return bytes.Equal(head[:n], fileMagic), nil
}

// FoldFile decodes a cprof file's frames across workers goroutines —
// the parallel scan the frame index exists for. Frames are claimed from
// a shared counter; every record of a claimed frame is fed to fold with
// the claiming worker's id (0..workers-1), so a caller folding into
// per-worker accumulators needs no locking. Record order is preserved
// within a frame and unspecified across frames; use it for
// order-insensitive aggregation (the report path), not conversion.
func FoldFile(path string, workers int, fold func(worker int, e profile.JSONLEntry) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("cprof: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("cprof: %w", err)
	}
	frames, _, err := ReadIndex(f, st.Size())
	if err != nil {
		return err
	}
	if workers <= 1 || len(frames) < 2 {
		dec := &frameDecoder{}
		for _, fi := range frames {
			if err := decodeFrameAt(f, fi, dec, func(e profile.JSONLEntry) error {
				return fold(0, e)
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > len(frames) {
		workers = len(frames)
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			dec := &frameDecoder{}
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(frames) {
					return
				}
				err := decodeFrameAt(f, frames[i], dec, func(e profile.JSONLEntry) error {
					return fold(worker, e)
				})
				if err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
