package cprof

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"conferr/internal/profile"
)

// synthRecord fabricates record i of a campaign with the field shapes a
// real typo campaign produces: repetitive classes/outcomes/details, a
// shared scenario-ID prefix, and jittery durations.
func synthRecord(i int) profile.Record {
	classes := []string{"section", "directive", "parameter", "entry", "block"}
	details := []string{"", "connection refused", "config parse error", "wrong value observed"}
	return profile.Record{
		ScenarioID:  fmt.Sprintf("typo/omission/directive-%03d/pos-%d", i%40, i%7),
		Class:       classes[i%len(classes)],
		Description: fmt.Sprintf("drop character %d", i%9),
		Outcome:     profile.Outcome(i%int(profile.NotApplicable) + 1),
		Detail:      details[i%len(details)],
		Duration:    time.Duration(30_000+i*13) * time.Nanosecond,
	}
}

func synthRecords(n int) []profile.Record {
	recs := make([]profile.Record, n)
	for i := range recs {
		recs[i] = synthRecord(i)
	}
	return recs
}

// writeCampaign encodes records as one campaign into a cprof byte
// stream, with the writer's frame size dialed down so small tests still
// exercise multi-frame files.
func writeCampaign(t *testing.T, recs []profile.Record, frameRecords int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.FrameRecords = frameRecords
	s := w.Sink("nginx", "typo")
	for _, r := range recs {
		if err := s.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func collect(t *testing.T, scan func(fn func(profile.JSONLEntry) error) error) []profile.JSONLEntry {
	t.Helper()
	var got []profile.JSONLEntry
	if err := scan(func(e profile.JSONLEntry) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func checkEntries(t *testing.T, got []profile.JSONLEntry, recs []profile.Record) {
	t.Helper()
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, e := range got {
		if e.System != "nginx" || e.Generator != "typo" {
			t.Fatalf("record %d: campaign %s/%s", i, e.System, e.Generator)
		}
		if e.Seq != i {
			t.Fatalf("record %d: seq %d", i, e.Seq)
		}
		if e.Record != recs[i] {
			t.Fatalf("record %d diverged:\n got %+v\nwant %+v", i, e.Record, recs[i])
		}
	}
}

// TestRoundTripScan: encode → Scan yields the identical records, across
// frame boundaries and a partial final frame.
func TestRoundTripScan(t *testing.T) {
	recs := synthRecords(301)
	data := writeCampaign(t, recs, 64)
	got := collect(t, func(fn func(profile.JSONLEntry) error) error {
		return Scan(bytes.NewReader(data), fn)
	})
	checkEntries(t, got, recs)
}

// TestRoundTripEmpty: a writer closed without records is a valid file
// with zero frames.
func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, func(fn func(profile.JSONLEntry) error) error {
		return Scan(bytes.NewReader(buf.Bytes()), fn)
	}); len(got) != 0 {
		t.Fatalf("empty file decoded %d records", len(got))
	}
	frames, fromIndex, err := ReadIndex(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil || !fromIndex || len(frames) != 0 {
		t.Fatalf("empty index: frames=%d fromIndex=%v err=%v", len(frames), fromIndex, err)
	}
}

// TestWriterAfterCloseFails: the sticky closed error keeps late writers
// from corrupting a finished file.
func TestWriterAfterCloseFails(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	s := w.Sink("nginx", "typo")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(synthRecord(0)); err == nil {
		t.Fatal("write after Close succeeded")
	}
}

// TestIndexMatchesWalk: the trailer index and a CRC-verified frame walk
// must describe the identical frames, and a file whose trailer is torn
// off must fall back to the walk transparently.
func TestIndexMatchesWalk(t *testing.T) {
	recs := synthRecords(200)
	data := writeCampaign(t, recs, 64)

	indexed, fromIndex, err := ReadIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil || !fromIndex {
		t.Fatalf("trailer index: fromIndex=%v err=%v", fromIndex, err)
	}
	walked, _, err := walkFrames(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed) != len(walked) {
		t.Fatalf("index has %d frames, walk found %d", len(indexed), len(walked))
	}
	for i := range indexed {
		if indexed[i] != walked[i] {
			t.Fatalf("frame %d: index %+v, walk %+v", i, indexed[i], walked[i])
		}
	}

	// Tear the trailer off: ReadIndex must recover the same frames.
	torn := data[:len(data)-trailerLen]
	recovered, fromIndex, err := ReadIndex(bytes.NewReader(torn), int64(len(torn)))
	if err != nil {
		t.Fatal(err)
	}
	if fromIndex {
		t.Fatal("torn trailer still read as an index")
	}
	if len(recovered) != len(indexed) {
		t.Fatalf("torn-file walk found %d frames, want %d", len(recovered), len(indexed))
	}
}

// TestTornTailRecovery: truncating anywhere inside the last frame must
// yield the valid full-frame prefix, never an error — the property dist
// resume stands on.
func TestTornTailRecovery(t *testing.T) {
	recs := synthRecords(130)
	data := writeCampaign(t, recs, 64) // frames: 64 + 64 + 2
	full, _, err := walkFrames(bytes.NewReader(data), int64(len(data)))
	if err != nil || len(full) != 3 {
		t.Fatalf("frames=%d err=%v", len(full), err)
	}
	lastOff := full[2].Off
	for _, cut := range []int64{lastOff, lastOff + 1, lastOff + int64(full[2].Len)/2, lastOff + int64(full[2].Len) - 1} {
		torn := data[:cut]
		frames, end, err := walkFrames(bytes.NewReader(torn), cut)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(frames) != 2 || end != lastOff {
			t.Fatalf("cut at %d: kept %d frames ending at %d, want 2 ending at %d",
				cut, len(frames), end, lastOff)
		}
	}
}

// TestCorruptPayloadDetected: a flipped byte inside a frame payload must
// fail the CRC on both scan paths.
func TestCorruptPayloadDetected(t *testing.T) {
	recs := synthRecords(64)
	data := writeCampaign(t, recs, 64)
	frames, _, err := ReadIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := bytes.Clone(data)
	corrupt[frames[0].Off+int64(frames[0].Len)-3] ^= 0x40
	if err := Scan(bytes.NewReader(corrupt), func(profile.JSONLEntry) error { return nil }); err == nil {
		t.Fatal("Scan accepted a corrupt payload")
	}
	// The frame walk treats a corrupt tail frame as torn, keeping the
	// valid prefix (here: none).
	if kept, _, err := walkFrames(bytes.NewReader(corrupt), int64(len(corrupt))); err != nil || len(kept) != 0 {
		t.Fatalf("walk over corrupt single frame: kept=%d err=%v", len(kept), err)
	}
}

// TestShardedSeqOrderedRoundTrip: shard sub-sinks interleave frames out
// of order; ScanSeqOrdered must replay the canonical sequence.
func TestShardedSeqOrderedRoundTrip(t *testing.T) {
	recs := synthRecords(157)
	for _, n := range []int{2, 4, 8} {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.FrameRecords = 16
		base := w.Sink("nginx", "typo")
		shards := make([]profile.Sink, n)
		for k := range shards {
			shards[k] = base.ShardSink(k, n)
		}
		// Feed each shard its stride k, k+n, ... with deliberately skewed
		// pacing: shard 0 writes everything first, so its frames land
		// ahead of every other shard's.
		for k := 0; k < n; k++ {
			for i := k; i < len(recs); i += n {
				if err := shards[k].Write(recs[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got := collect(t, func(fn func(profile.JSONLEntry) error) error {
			return ScanSeqOrdered(bytes.NewReader(buf.Bytes()), int64(buf.Len()), fn)
		})
		checkEntries(t, got, recs)
	}
}

// TestMultiCampaignSeqOrdered: campaigns replay grouped in order of
// first appearance, each with its own sequence space.
func TestMultiCampaignSeqOrdered(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.FrameRecords = 8
	a := w.Sink("nginx", "typo")
	b := w.Sink("postgres", "structural")
	for i := 0; i < 20; i++ {
		if err := a.Write(synthRecord(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Write(synthRecord(i + 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, func(fn func(profile.JSONLEntry) error) error {
		return ScanSeqOrdered(bytes.NewReader(buf.Bytes()), int64(buf.Len()), fn)
	})
	if len(got) != 40 {
		t.Fatalf("decoded %d records, want 40", len(got))
	}
	for i, e := range got[:20] {
		if e.System != "nginx" || e.Seq != i {
			t.Fatalf("entry %d: %s seq %d, want nginx seq %d", i, e.System, e.Seq, i)
		}
	}
	for i, e := range got[20:] {
		if e.System != "postgres" || e.Seq != i {
			t.Fatalf("entry %d: %s seq %d, want postgres seq %d", 20+i, e.System, e.Seq, i)
		}
	}
}

// TestToJSONLMatchesDirectStream: cprof→JSONL of an ordered campaign is
// byte-identical to the JSONL a JSONLSink would have written directly.
func TestToJSONLMatchesDirectStream(t *testing.T) {
	recs := synthRecords(90)
	var want bytes.Buffer
	js := profile.NewJSONLSink(&want, "nginx", "typo")
	for _, r := range recs {
		if err := js.Write(r); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "p.cprof")
	cf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cf.W.FrameRecords = 32
	s := cf.W.Sink("nginx", "typo")
	for _, r := range recs {
		if err := s.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cf.Close(true); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	if err := ToJSONL(path, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("cprof→JSONL diverges from direct stream:\n got %d bytes\nwant %d bytes", got.Len(), want.Len())
	}

	// And back: JSONL→cprof→Scan yields the same entries.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := FromJSONL(bytes.NewReader(want.Bytes()), w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	checkEntries(t, collect(t, func(fn func(profile.JSONLEntry) error) error {
		return Scan(bytes.NewReader(buf.Bytes()), fn)
	}), recs)
}

// TestOpenFileAtResume: a file cut mid-campaign (no trailer, torn last
// frame) reopens at a checkpoint front landing on a frame boundary, the
// torn tail is truncated, and appended records complete the campaign.
func TestOpenFileAtResume(t *testing.T) {
	recs := synthRecords(100)
	dir := t.TempDir()
	path := filepath.Join(dir, "resume.cprof")

	// First run: 64 records flushed as one frame, then a torn tail —
	// simulate a crash by writing a second partial frame and chopping it.
	cf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cf.W.FrameRecords = 64
	s := cf.W.Sink("nginx", "typo")
	for _, r := range recs[:80] {
		if err := s.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cf.Close(false); err != nil { // flush frames, no trailer
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume from front 64: the torn 64..79 frame is dropped and rewritten.
	cf2, err := OpenFileAt(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	cf2.W.FrameRecords = 64
	s2 := cf2.W.Sink("nginx", "typo")
	for i, r := range recs[64:] {
		if err := s2.writeSeq(64+i, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cf2.Close(true); err != nil {
		t.Fatal(err)
	}
	got := collect(t, func(fn func(profile.JSONLEntry) error) error {
		return ScanFileSeqOrdered(path, fn)
	})
	checkEntries(t, got, recs)

	// A front inside a frame must be rejected, not silently misaligned.
	if _, err := OpenFileAt(path, 70); err == nil {
		t.Fatal("OpenFileAt accepted a front inside a frame")
	}
	// Front 0 restarts from scratch.
	cf3, err := OpenFileAt(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cf3.Close(true); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, func(fn func(profile.JSONLEntry) error) error {
		return ScanFileSeqOrdered(path, fn)
	}); len(got) != 0 {
		t.Fatalf("front-0 reopen kept %d records", len(got))
	}
}

// TestFoldFileParallelMatchesSequential: the claim-counter fold over
// workers must aggregate exactly what a sequential scan does.
func TestFoldFileParallelMatchesSequential(t *testing.T) {
	recs := synthRecords(500)
	dir := t.TempDir()
	path := filepath.Join(dir, "fold.cprof")
	cf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cf.W.FrameRecords = 32
	s := cf.W.Sink("nginx", "typo")
	for _, r := range recs {
		if err := s.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cf.Close(true); err != nil {
		t.Fatal(err)
	}

	want := profile.NewStreamStats(nil)
	if err := ScanPath(path, want.Add); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		folds := make([]*profile.StreamStats, workers)
		for i := range folds {
			folds[i] = profile.NewStreamStats(nil)
		}
		if err := FoldFile(path, workers, func(w int, e profile.JSONLEntry) error {
			return folds[w].Add(e)
		}); err != nil {
			t.Fatal(err)
		}
		got := folds[0]
		for _, o := range folds[1:] {
			got.Merge(o)
		}
		if got.TotalRecords() != want.TotalRecords() {
			t.Fatalf("workers=%d: folded %d records, want %d", workers, got.TotalRecords(), want.TotalRecords())
		}
		gc, wc := got.Campaigns(), want.Campaigns()
		if len(gc) != 1 || len(wc) != 1 || gc[0].Summary != wc[0].Summary || gc[0].Duration != wc[0].Duration {
			t.Fatalf("workers=%d: fold diverged: %+v vs %+v", workers, gc[0], wc[0])
		}
	}
}

// TestLineWriterRendersEntries: the merger-facing io.Writer parses one
// rendered JSONL line per call, the contract SeqMerger provides.
func TestLineWriterRendersEntries(t *testing.T) {
	recs := synthRecords(30)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.FrameRecords = 8
	lw := w.LineWriter()
	var line []byte
	for i, r := range recs {
		line = profile.AppendJSONLRecord(line[:0], "nginx", "typo", i, r)
		if _, err := lw.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	checkEntries(t, collect(t, func(fn func(profile.JSONLEntry) error) error {
		return Scan(bytes.NewReader(buf.Bytes()), fn)
	}), recs)
}

// TestScanAutoSniffsFormat: content sniffing, not extensions, decides
// the decode path.
func TestScanAutoSniffsFormat(t *testing.T) {
	recs := synthRecords(10)
	cdata := writeCampaign(t, recs, 64)
	var jdata bytes.Buffer
	js := profile.NewJSONLSink(&jdata, "nginx", "typo")
	for _, r := range recs {
		if err := js.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range map[string][]byte{"cprof": cdata, "jsonl": jdata.Bytes()} {
		got := collect(t, func(fn func(profile.JSONLEntry) error) error {
			return ScanAuto(bytes.NewReader(data), fn)
		})
		if len(got) != len(recs) {
			t.Fatalf("%s: ScanAuto decoded %d records, want %d", name, len(got), len(recs))
		}
	}
}

// FuzzScan: arbitrary bytes must never panic the frame decoder; they
// either decode or error.
func FuzzScan(f *testing.F) {
	f.Add([]byte("cprof\x01"))
	f.Add([]byte(`{"system":"a"}`))
	recs := synthRecords(20)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	s := w.Sink("nginx", "typo")
	for _, r := range recs {
		_ = s.Write(r)
	}
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = Scan(bytes.NewReader(data), func(profile.JSONLEntry) error { return nil })
		_, _, _ = walkFrames(bytes.NewReader(data), int64(len(data)))
		_, _, _ = ReadIndex(bytes.NewReader(data), int64(len(data)))
	})
}

// BenchmarkCprofEncode reports encode throughput and the on-disk
// bytes-per-record density CI guards against regressing.
func BenchmarkCprofEncode(b *testing.B) {
	recs := synthRecords(DefaultFrameRecords)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		w := NewWriter(&buf)
		s := w.Sink("nginx", "typo")
		for _, r := range recs {
			if err := s.Write(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(buf.Len())/float64(len(recs)), "bytes/record")
	b.ReportMetric(float64(len(recs)*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkCprofScan measures decode+fold throughput over an in-memory
// multi-frame file.
func BenchmarkCprofScan(b *testing.B) {
	const n = 4 * DefaultFrameRecords
	recs := synthRecords(n)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	s := w.Sink("nginx", "typo")
	for _, r := range recs {
		if err := s.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := profile.NewStreamStats(nil)
		if err := Scan(bytes.NewReader(data), stats.Add); err != nil {
			b.Fatal(err)
		}
		if stats.TotalRecords() != n {
			b.Fatal("short scan")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkJSONLScanBaseline is the same fold over the same records in
// JSONL — the denominator of the cprof scan speedup.
func BenchmarkJSONLScanBaseline(b *testing.B) {
	const n = 4 * DefaultFrameRecords
	recs := synthRecords(n)
	var buf bytes.Buffer
	js := profile.NewJSONLSink(&buf, "nginx", "typo")
	for _, r := range recs {
		if err := js.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := profile.NewStreamStats(nil)
		if err := profile.ScanJSONL(bytes.NewReader(data), stats.Add); err != nil {
			b.Fatal(err)
		}
		if stats.TotalRecords() != n {
			b.Fatal("short scan")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "records/s")
}
