// Package profile defines the resilience profile — ConfErr's sole output
// (paper §3.1): the per-injection outcomes, plus the aggregations used by
// the paper's evaluation (Table 1 outcome counts, Table 2 variation-class
// acceptance, Table 3 semantic fault findings, and Figure 3's per-directive
// detection bands).
package profile

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Outcome classifies the effect of one injected configuration error on the
// system under test (paper §3.1 lists the three observable outcomes; the
// two additional values cover scenarios that never reach the SUT).
type Outcome int

// Outcome values.
const (
	// DetectedAtStartup means the SUT refused to start — it detected the
	// configuration error itself.
	DetectedAtStartup Outcome = iota + 1
	// DetectedByTest means the SUT started but one or more functional
	// tests failed — the error had impact the SUT did not catch.
	DetectedByTest
	// Ignored means the SUT started and all functional tests passed — the
	// injected error was silently absorbed (or harmless).
	Ignored
	// NotExpressible means the mutated configuration could not be mapped
	// back to the system's file format (paper §5.4); the fault was never
	// injected.
	NotExpressible
	// NotApplicable means the scenario could not be applied to the
	// configuration at all (stale target); it is excluded from totals.
	NotApplicable
	// InfrastructureError means the harness, not the SUT, failed the
	// experiment: a phase watchdog expired, a worker panicked, or the
	// lifecycle machinery broke. It says nothing about the SUT's
	// resilience and is excluded from all detection statistics; the
	// record exists so a campaign's seq space stays gap-free and the
	// failure is auditable (phase, elapsed time, stack in Detail).
	InfrastructureError
)

var outcomeNames = map[Outcome]string{
	DetectedAtStartup:   "detected-at-startup",
	DetectedByTest:      "detected-by-test",
	Ignored:             "ignored",
	NotExpressible:      "not-expressible",
	NotApplicable:       "not-applicable",
	InfrastructureError: "infrastructure-error",
}

// String returns the outcome's kebab-case name.
func (o Outcome) String() string {
	if s, ok := outcomeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Detected reports whether the outcome counts as the system detecting the
// error (at startup or via functional tests).
func (o Outcome) Detected() bool {
	return o == DetectedAtStartup || o == DetectedByTest
}

// Record is the result of one injection experiment.
type Record struct {
	// ScenarioID identifies the injected fault scenario.
	ScenarioID string
	// Class is the scenario's fault class (e.g. "typo/omission").
	Class string
	// Description restates the injected mutation.
	Description string
	// Outcome is what happened.
	Outcome Outcome
	// Detail carries the SUT's error message or the failing test name.
	Detail string
	// Duration is the wall-clock time of the experiment.
	Duration time.Duration
}

// Profile is the resilience profile of one system under one error
// generator: the full list of injection results.
type Profile struct {
	// System names the system under test.
	System string
	// Generator names the error-generator plugin that produced the faults.
	Generator string
	// Records holds one entry per synthesized scenario.
	Records []Record
}

// Add appends a record.
func (p *Profile) Add(r Record) {
	p.Records = append(p.Records, r)
}

// Injected returns the records that actually reached the SUT (everything
// except NotApplicable, NotExpressible and InfrastructureError).
func (p *Profile) Injected() []Record {
	var out []Record
	for _, r := range p.Records {
		if r.Outcome.counted() {
			out = append(out, r)
		}
	}
	return out
}

// counted reports whether the outcome participates in detection
// statistics — i.e. the fault reached the SUT and the SUT's reaction was
// observed.
func (o Outcome) counted() bool {
	return o != NotApplicable && o != NotExpressible && o != InfrastructureError
}

// CountByOutcome tallies records per outcome.
func (p *Profile) CountByOutcome() map[Outcome]int {
	out := make(map[Outcome]int)
	for _, r := range p.Records {
		out[r.Outcome]++
	}
	return out
}

// CountByClass tallies records per fault class and outcome.
func (p *Profile) CountByClass() map[string]map[Outcome]int {
	out := make(map[string]map[Outcome]int)
	for _, r := range p.Records {
		m := out[r.Class]
		if m == nil {
			m = make(map[Outcome]int)
			out[r.Class] = m
		}
		m[r.Outcome]++
	}
	return out
}

// DetectionRate returns the fraction of injected faults the system
// detected (startup or test), in [0,1]. It returns 0 when nothing was
// injected.
func (p *Profile) DetectionRate() float64 {
	injected := p.Injected()
	if len(injected) == 0 {
		return 0
	}
	detected := 0
	for _, r := range injected {
		if r.Outcome.Detected() {
			detected++
		}
	}
	return float64(detected) / float64(len(injected))
}

// Summary is the Table 1 row shape: total injections and the share
// detected at startup, detected by functional tests, and ignored.
type Summary struct {
	// System names the SUT.
	System string
	// Injected is the number of faults that reached the SUT.
	Injected int
	// AtStartup counts startup-time detections.
	AtStartup int
	// ByTest counts functional-test detections.
	ByTest int
	// Ignored counts silently absorbed faults.
	Ignored int
	// NotExpressible counts faults that could not be serialized.
	NotExpressible int
	// Infrastructure counts experiments the harness itself failed
	// (watchdog expiry, worker panic). Excluded from Injected.
	Infrastructure int `json:",omitempty"`
}

// Add folds one record's outcome into the summary — the single fold
// shared by Profile.Summarize and the streaming TallySink.
func (s *Summary) Add(r Record) {
	switch r.Outcome {
	case DetectedAtStartup:
		s.Injected++
		s.AtStartup++
	case DetectedByTest:
		s.Injected++
		s.ByTest++
	case Ignored:
		s.Injected++
		s.Ignored++
	case NotExpressible:
		s.NotExpressible++
	case InfrastructureError:
		s.Infrastructure++
	case NotApplicable:
		// Excluded from all counts.
	}
}

// Merge adds o's counts into s (System is kept from s) — the fold behind
// sharded tally counters.
func (s *Summary) Merge(o Summary) {
	s.Injected += o.Injected
	s.AtStartup += o.AtStartup
	s.ByTest += o.ByTest
	s.Ignored += o.Ignored
	s.NotExpressible += o.NotExpressible
	s.Infrastructure += o.Infrastructure
}

// Summarize computes the Table 1 style summary of the profile.
func (p *Profile) Summarize() Summary {
	s := Summary{System: p.System}
	for _, r := range p.Records {
		s.Add(r)
	}
	return s
}

// pct renders n/total as a percentage string.
func pct(n, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%d%%", int(float64(n)/float64(total)*100+0.5))
}

// FormatTable1 renders summaries side by side in the shape of the paper's
// Table 1 ("Resilience to typos").
func FormatTable1(summaries ...Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s", "")
	for _, s := range summaries {
		fmt.Fprintf(&b, "%16s", s.System)
	}
	b.WriteByte('\n')
	row := func(label string, get func(Summary) string) {
		fmt.Fprintf(&b, "%-28s", label)
		for _, s := range summaries {
			fmt.Fprintf(&b, "%16s", get(s))
		}
		b.WriteByte('\n')
	}
	row("# of Injected Errors", func(s Summary) string {
		return fmt.Sprintf("%d (100%%)", s.Injected)
	})
	row("Detected by system at startup", func(s Summary) string {
		return fmt.Sprintf("%d (%s)", s.AtStartup, pct(s.AtStartup, s.Injected))
	})
	row("Detected by functional tests", func(s Summary) string {
		return fmt.Sprintf("%d (%s)", s.ByTest, pct(s.ByTest, s.Injected))
	})
	row("Ignored", func(s Summary) string {
		return fmt.Sprintf("%d (%s)", s.Ignored, pct(s.Ignored, s.Injected))
	})
	return b.String()
}

// Band is a Figure 3 detection band.
type Band int

// Bands per the paper's Figure 3: poor (0–25% of faults detected), fair
// (25–50%), good (50–75%), excellent (75–100%).
const (
	Poor Band = iota + 1
	Fair
	Good
	Excellent
)

// String returns the band's name.
func (b Band) String() string {
	switch b {
	case Poor:
		return "poor"
	case Fair:
		return "fair"
	case Good:
		return "good"
	case Excellent:
		return "excellent"
	default:
		return fmt.Sprintf("band(%d)", int(b))
	}
}

// BandOf classifies a detection rate in [0,1] into its band. Boundaries
// follow the paper: a rate of exactly 25% falls into Fair, 50% into Good,
// 75% into Excellent.
func BandOf(rate float64) Band {
	switch {
	case rate < 0.25:
		return Poor
	case rate < 0.50:
		return Fair
	case rate < 0.75:
		return Good
	default:
		return Excellent
	}
}

// Banding is the Figure 3 shape for one system: the share of directives
// whose per-directive detection rate falls into each band.
type Banding struct {
	// System names the SUT.
	System string
	// Directives is the number of directives measured.
	Directives int
	// Share maps each band to its fraction of directives, in [0,1].
	Share map[Band]float64
}

// BandByKey groups the profile's injected records by the given key
// function (typically the directive a fault targeted), computes each
// group's detection rate, and returns the banding distribution.
func (p *Profile) BandByKey(key func(Record) string) Banding {
	type agg struct{ detected, total int }
	groups := make(map[string]*agg)
	for _, r := range p.Injected() {
		k := key(r)
		if k == "" {
			continue
		}
		g := groups[k]
		if g == nil {
			g = &agg{}
			groups[k] = g
		}
		g.total++
		if r.Outcome.Detected() {
			g.detected++
		}
	}
	counts := make(map[Band]int)
	for _, g := range groups {
		counts[BandOf(float64(g.detected)/float64(g.total))]++
	}
	b := Banding{System: p.System, Directives: len(groups), Share: make(map[Band]float64)}
	for band, n := range counts {
		b.Share[band] = float64(n) / float64(len(groups))
	}
	return b
}

// FormatFigure3 renders bandings as a text histogram in the shape of the
// paper's Figure 3.
func FormatFigure3(bandings ...Banding) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "")
	for _, bd := range bandings {
		fmt.Fprintf(&b, "%14s", bd.System)
	}
	b.WriteByte('\n')
	for _, band := range []Band{Excellent, Good, Fair, Poor} {
		fmt.Fprintf(&b, "%-12s", band.String())
		for _, bd := range bandings {
			fmt.Fprintf(&b, "%13.0f%%", bd.Share[band]*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatRecords renders the full profile, one line per record, sorted by
// scenario ID — the raw resilience profile.
func (p *Profile) FormatRecords() string {
	recs := make([]Record, len(p.Records))
	copy(recs, p.Records)
	sort.Slice(recs, func(i, j int) bool { return recs[i].ScenarioID < recs[j].ScenarioID })
	var b strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&b, "%-22s %-60s %s", r.Outcome, r.ScenarioID, r.Description)
		if r.Detail != "" {
			fmt.Fprintf(&b, " [%s]", firstLine(r.Detail))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Comparison is the result of diffing two profiles of the same faultload
// — the paper's development-feedback use case: quantifying the resilience
// impact of a design change (§1, "prompt feedback during development").
type Comparison struct {
	// Improved lists scenario IDs that went from undetected to detected.
	Improved []string
	// Regressed lists scenario IDs that went from detected to undetected.
	Regressed []string
	// Unchanged counts scenarios with the same detection status.
	Unchanged int
	// OnlyBefore / OnlyAfter list scenario IDs present in one profile
	// only (faultload drift — usually a configuration mismatch).
	OnlyBefore []string
	OnlyAfter  []string
}

// Compare diffs two profiles by scenario ID, classifying each shared
// scenario by whether the system's detection improved, regressed or
// stayed the same between the two runs.
func Compare(before, after *Profile) Comparison {
	var c Comparison
	beforeBy := make(map[string]Record, len(before.Records))
	for _, r := range before.Records {
		beforeBy[r.ScenarioID] = r
	}
	seen := make(map[string]bool, len(after.Records))
	for _, ra := range after.Records {
		seen[ra.ScenarioID] = true
		rb, ok := beforeBy[ra.ScenarioID]
		if !ok {
			c.OnlyAfter = append(c.OnlyAfter, ra.ScenarioID)
			continue
		}
		switch {
		case rb.Outcome.Detected() == ra.Outcome.Detected():
			c.Unchanged++
		case ra.Outcome.Detected():
			c.Improved = append(c.Improved, ra.ScenarioID)
		default:
			c.Regressed = append(c.Regressed, ra.ScenarioID)
		}
	}
	for _, rb := range before.Records {
		if !seen[rb.ScenarioID] {
			c.OnlyBefore = append(c.OnlyBefore, rb.ScenarioID)
		}
	}
	return c
}
