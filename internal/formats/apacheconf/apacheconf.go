// Package apacheconf parses and serializes Apache httpd-style
// configuration files: whitespace-separated directives ("Listen 80",
// "AddType application/x-tar .tgz"), '#' comments, and nested section
// containers ("<VirtualHost *:80> … </VirtualHost>"). Apache is the only
// paper target with nested sections (paper §5.1).
package apacheconf

import (
	"bytes"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

// Format implements formats.Format for Apache httpd configuration.
type Format struct{}

var _ formats.BufferedFormat = Format{}

// Name implements formats.Format.
func (Format) Name() string { return "apacheconf" }

// Parse implements formats.Format. Sections become KindSection nodes whose
// Name is the tag ("VirtualHost") and whose AttrArg holds the argument
// text ("*:80"); their body nodes are children, so nested sections form
// subtrees.
func (Format) Parse(file string, data []byte) (*confnode.Node, error) {
	doc := confnode.New(confnode.KindDocument, file)
	stack := []*confnode.Node{doc}
	for i, line := range splitLines(data) {
		top := stack[len(stack)-1]
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "":
			top.Append(confnode.New(confnode.KindBlank, ""))
		case strings.HasPrefix(trimmed, "#"):
			top.Append(confnode.NewValued(confnode.KindComment, "", line))
		case strings.HasPrefix(trimmed, "</"):
			if !strings.HasSuffix(trimmed, ">") {
				return nil, &formats.ParseError{File: file, Line: i + 1, Msg: "malformed closing tag"}
			}
			name := strings.TrimSpace(trimmed[2 : len(trimmed)-1])
			if len(stack) == 1 {
				return nil, &formats.ParseError{File: file, Line: i + 1,
					Msg: "closing tag </" + name + "> without opening tag"}
			}
			open := stack[len(stack)-1]
			if !strings.EqualFold(open.Name, name) {
				return nil, &formats.ParseError{File: file, Line: i + 1,
					Msg: "closing tag </" + name + "> does not match <" + open.Name + ">"}
			}
			stack = stack[:len(stack)-1]
		case strings.HasPrefix(trimmed, "<"):
			if !strings.HasSuffix(trimmed, ">") {
				return nil, &formats.ParseError{File: file, Line: i + 1, Msg: "malformed opening tag"}
			}
			inner := trimmed[1 : len(trimmed)-1]
			name, arg := splitFirstWord(inner)
			sec := confnode.New(confnode.KindSection, name)
			if arg != "" {
				sec.SetAttr(formats.AttrArg, arg)
			}
			// Always record the indent (even empty) so serialization
			// distinguishes parsed nodes from mutation-created ones, which
			// get depth-based default indentation.
			sec.SetAttr(formats.AttrIndent, leadingWS(line))
			top.Append(sec)
			stack = append(stack, sec)
		default:
			top.Append(parseDirective(line))
		}
	}
	if len(stack) != 1 {
		return nil, &formats.ParseError{File: file, Line: 0,
			Msg: "unclosed section <" + stack[len(stack)-1].Name + ">"}
	}
	return doc, nil
}

func parseDirective(line string) *confnode.Node {
	indent := leadingWS(line)
	body := strings.TrimRight(line[len(indent):], " \t")
	name, rest := splitFirstWord(body)
	d := confnode.NewValued(confnode.KindDirective, name, rest)
	// Apache separates name and arguments with whitespace; preserve it.
	if rest != "" {
		d.SetAttr(formats.AttrSep, body[len(name):len(body)-len(rest)])
	} else {
		d.SetAttr(formats.AttrSep, "")
	}
	d.SetAttr(formats.AttrIndent, indent)
	return d
}

// splitFirstWord splits "Name args..." at the first whitespace run.
func splitFirstWord(s string) (first, rest string) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimLeft(s[i:], " \t")
}

// Serialize implements formats.Format.
func (Format) Serialize(root *confnode.Node) ([]byte, error) {
	var b bytes.Buffer
	writeItems(&b, root.Children(), 0)
	return b.Bytes(), nil
}

// SerializeTo implements formats.BufferedFormat.
func (Format) SerializeTo(b *bytes.Buffer, root *confnode.Node) error {
	writeItems(b, root.Children(), 0)
	return nil
}

func writeItems(b *bytes.Buffer, items []*confnode.Node, depth int) {
	for _, n := range items {
		switch n.Kind {
		case confnode.KindBlank:
			b.WriteByte('\n')
		case confnode.KindComment:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		case confnode.KindSection:
			indent := n.AttrDefault(formats.AttrIndent, strings.Repeat("    ", depth))
			b.WriteString(indent)
			b.WriteByte('<')
			b.WriteString(n.Name)
			if arg, ok := n.Attr(formats.AttrArg); ok && arg != "" {
				b.WriteByte(' ')
				b.WriteString(arg)
			}
			b.WriteString(">\n")
			writeItems(b, n.Children(), depth+1)
			b.WriteString(indent)
			b.WriteString("</")
			b.WriteString(n.Name)
			b.WriteString(">\n")
		case confnode.KindDirective:
			indent := n.AttrDefault(formats.AttrIndent, strings.Repeat("    ", depth))
			b.WriteString(indent)
			b.WriteString(n.Name)
			if n.Value != "" {
				sep := n.AttrDefault(formats.AttrSep, " ")
				if sep == "" {
					sep = " "
				}
				b.WriteString(sep)
				b.WriteString(n.Value)
			}
			b.WriteByte('\n')
		default:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		}
	}
}

func leadingWS(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] != ' ' && s[i] != '\t' {
			return s[:i]
		}
	}
	return s
}

func splitLines(data []byte) []string {
	if len(data) == 0 {
		return nil
	}
	s := strings.TrimSuffix(string(data), "\n")
	if s == "" {
		return []string{""}
	}
	return strings.Split(s, "\n")
}
