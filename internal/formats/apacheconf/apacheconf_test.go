package apacheconf

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

const sample = `# Apache httpd configuration
Listen 80
ServerName www.example.com

<VirtualHost *:80>
    ServerName a.example.com
    DocumentRoot /var/www/a
    <Directory /var/www/a>
        Options Indexes FollowSymLinks
        AllowOverride None
    </Directory>
</VirtualHost>
`

func TestParseStructure(t *testing.T) {
	doc, err := Format{}.Parse("httpd.conf", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	dirs := doc.ChildrenByKind(confnode.KindDirective)
	if len(dirs) != 2 {
		t.Fatalf("top-level directives = %d, want 2", len(dirs))
	}
	if dirs[0].Name != "Listen" || dirs[0].Value != "80" {
		t.Errorf("dir0 = %s", dirs[0])
	}
	secs := doc.ChildrenByKind(confnode.KindSection)
	if len(secs) != 1 {
		t.Fatalf("sections = %d", len(secs))
	}
	vh := secs[0]
	if vh.Name != "VirtualHost" {
		t.Errorf("section name = %q", vh.Name)
	}
	if arg, _ := vh.Attr(formats.AttrArg); arg != "*:80" {
		t.Errorf("section arg = %q", arg)
	}
	// Nested section.
	inner := vh.ChildrenByKind(confnode.KindSection)
	if len(inner) != 1 || inner[0].Name != "Directory" {
		t.Fatalf("nested sections = %v", inner)
	}
	if arg, _ := inner[0].Attr(formats.AttrArg); arg != "/var/www/a" {
		t.Errorf("Directory arg = %q", arg)
	}
	opts := inner[0].ChildrenByKind(confnode.KindDirective)
	if len(opts) != 2 || opts[0].Value != "Indexes FollowSymLinks" {
		t.Errorf("Directory directives = %v", opts)
	}
}

func TestRoundTripIdentity(t *testing.T) {
	doc, err := Format{}.Parse("httpd.conf", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != sample {
		t.Errorf("round trip mismatch:\nwant:\n%s\ngot:\n%s", sample, out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"<VirtualHost *:80>\n", "unclosed"},
		{"</VirtualHost>\n", "without opening"},
		{"<VirtualHost *:80>\n</Directory>\n", "does not match"},
		{"<VirtualHost *:80\n", "malformed opening"},
		{"<VirtualHost></VirtualHost\n", "malformed"},
	}
	for _, tt := range cases {
		_, err := Format{}.Parse("f", []byte(tt.in))
		if err == nil {
			t.Errorf("Parse(%q) succeeded", tt.in)
			continue
		}
		var pe *formats.ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) error type %T", tt.in, err)
			continue
		}
		if !strings.Contains(pe.Msg, tt.want) {
			t.Errorf("Parse(%q) msg = %q, want contains %q", tt.in, pe.Msg, tt.want)
		}
	}
}

func TestClosingTagCaseInsensitive(t *testing.T) {
	_, err := Format{}.Parse("f", []byte("<virtualhost *:80>\n</VirtualHost>\n"))
	if err != nil {
		t.Errorf("case-insensitive close rejected: %v", err)
	}
}

func TestSectionWithoutArg(t *testing.T) {
	doc, err := Format{}.Parse("f", []byte("<IfModule>\nx 1\n</IfModule>\n"))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Format{}.Serialize(doc)
	if string(out) != "<IfModule>\nx 1\n</IfModule>\n" {
		t.Errorf("got %q", out)
	}
}

func TestSerializeMutatedNodes(t *testing.T) {
	// Nodes created by mutation (no indent attrs) get depth-based default
	// indentation.
	doc := confnode.New(confnode.KindDocument, "f")
	sec := confnode.New(confnode.KindSection, "VirtualHost")
	sec.SetAttr(formats.AttrArg, "*:80")
	sec.Append(confnode.NewValued(confnode.KindDirective, "ServerName", "x.example.com"))
	doc.Append(sec)
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := "<VirtualHost *:80>\n    ServerName x.example.com\n</VirtualHost>\n"
	if string(out) != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

func TestValuelessDirective(t *testing.T) {
	doc, err := Format{}.Parse("f", []byte("ClearModuleList\n"))
	if err != nil {
		t.Fatal(err)
	}
	d := doc.Child(0)
	if d.Name != "ClearModuleList" || d.Value != "" {
		t.Errorf("directive = %s", d)
	}
	out, _ := Format{}.Serialize(doc)
	if string(out) != "ClearModuleList\n" {
		t.Errorf("got %q", out)
	}
}

func TestDuplicatedSectionRoundTrips(t *testing.T) {
	// The structural plugin duplicates sections; the clone must serialize
	// with identical content.
	doc, _ := Format{}.Parse("f", []byte(sample))
	vh := doc.ChildrenByKind(confnode.KindSection)[0]
	doc.InsertAt(vh.Index()+1, vh.Clone())
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(out), "<VirtualHost *:80>"); got != 2 {
		t.Errorf("VirtualHost count = %d, want 2", got)
	}
	if got := strings.Count(string(out), "</VirtualHost>"); got != 2 {
		t.Errorf("closing count = %d", got)
	}
}

func TestFormatName(t *testing.T) {
	if (Format{}).Name() != "apacheconf" {
		t.Error("wrong name")
	}
}

func TestPropertyParseSerializeStable(t *testing.T) {
	lines := []string{
		"Listen 80", "ServerAdmin a@b.c", "# comment", "",
		"<VirtualHost *:80>", "</VirtualHost>",
		"<Directory />", "</Directory>", "Options None",
	}
	f := func(picks []uint8) bool {
		var in strings.Builder
		for _, p := range picks {
			in.WriteString(lines[int(p)%len(lines)])
			in.WriteByte('\n')
		}
		doc, err := Format{}.Parse("f", []byte(in.String()))
		if err != nil {
			return true // unbalanced tags etc. are out of scope
		}
		out, err := Format{}.Serialize(doc)
		if err != nil {
			return false
		}
		doc2, err := Format{}.Parse("f", out)
		if err != nil {
			return false
		}
		return doc.Equal(doc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
