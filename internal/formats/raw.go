package formats

import (
	"bytes"

	"conferr/internal/confnode"
)

// Raw is a pass-through format for configuration files that campaigns
// carry along but do not mutate (e.g. named.conf in the DNS semantic
// experiments, where faults are injected only into zone data). The whole
// file content is stored in the document node's Value.
type Raw struct{}

var _ BufferedFormat = Raw{}

// Name implements Format.
func (Raw) Name() string { return "raw" }

// Parse implements Format.
func (Raw) Parse(file string, data []byte) (*confnode.Node, error) {
	doc := confnode.New(confnode.KindDocument, file)
	doc.Value = string(data)
	return doc, nil
}

// Serialize implements Format.
func (Raw) Serialize(root *confnode.Node) ([]byte, error) {
	return []byte(root.Value), nil
}

// SerializeTo implements BufferedFormat.
func (Raw) SerializeTo(buf *bytes.Buffer, root *confnode.Node) error {
	buf.WriteString(root.Value)
	return nil
}
