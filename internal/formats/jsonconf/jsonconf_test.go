package jsonconf

import (
	"bytes"
	"strings"
	"testing"

	"conferr/internal/confnode"
)

const sample = `{
  "port": 8080,
  "hostname": "app.example.com",
  "debug": false,
  "database": {
    "driver": "postgres",
    "dsn": "host=localhost dbname=app",
    "pool": {
      "max_open": 25,
      "max_idle": 5
    }
  },
  "listeners": [
    "127.0.0.1:8080",
    "127.0.0.1:8443"
  ],
  "log_level": "info"
}
`

func TestParseStructure(t *testing.T) {
	doc, err := Format{}.Parse("config.json", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.ChildByName("port").Value; got != "8080" {
		t.Errorf("port = %q", got)
	}
	if got := doc.ChildByName("hostname").Value; got != `"app.example.com"` {
		t.Errorf("hostname = %q (raw token must keep its quotes)", got)
	}
	db := doc.ChildByName("database")
	if db == nil || db.Kind != confnode.KindSection {
		t.Fatalf("database is not a section:\n%s", doc.Dump())
	}
	pool := db.ChildByName("pool")
	if pool == nil || pool.ChildByName("max_open").Value != "25" {
		t.Fatalf("nested pool section missing:\n%s", doc.Dump())
	}
	lst := doc.ChildByName("listeners")
	if lst == nil || lst.AttrDefault(AttrArray, "") == "" {
		t.Fatalf("listeners is not an array section:\n%s", doc.Dump())
	}
	if lst.NumChildren() != 2 || lst.Child(1).Value != `"127.0.0.1:8443"` {
		t.Errorf("listeners children = %v", lst.Children())
	}
}

func TestRoundTripByteIdentical(t *testing.T) {
	doc, err := Format{}.Parse("config.json", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != sample {
		t.Errorf("round trip mismatch:\nwant:\n%s\ngot:\n%s", sample, out)
	}
}

func TestSerializeToMatchesSerialize(t *testing.T) {
	doc, err := Format{}.Parse("config.json", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := (Format{}).SerializeTo(&b, doc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("SerializeTo diverged from Serialize")
	}
}

func TestCompactAndEmptyContainers(t *testing.T) {
	for _, in := range []string{
		`{}`,
		`{"a":1}`,
		`{"a":{},"b":[]}`,
		`{"a":[1,2,[3]],"b":{"c":null}}` + "\n",
		// Whitespace before commas once vanished in the round trip.
		`{"a": 1 , "b": 2}`,
		`{"l": [1 ,2]}`,
		"{\"a\": 1\n,\"b\": 2}",
	} {
		doc, err := Format{}.Parse("config.json", []byte(in))
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		out, err := Format{}.Serialize(doc)
		if err != nil {
			t.Fatalf("Serialize(%q): %v", in, err)
		}
		if string(out) != in {
			t.Errorf("round trip of %q = %q", in, out)
		}
	}
}

func TestMutationCreatedNodesGetDefaults(t *testing.T) {
	doc, err := Format{}.Parse("config.json", []byte("{\n  \"a\": 1\n}\n"))
	if err != nil {
		t.Fatal(err)
	}
	doc.Append(confnode.NewValued(confnode.KindDirective, "b", "2"))
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"a\": 1,\n  \"b\": 2\n}\n"
	if string(out) != want {
		t.Errorf("serialize with injected member:\nwant %q\ngot  %q", want, out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty input":      "",
		"non-object root":  "[1]",
		"bare scalar root": "42",
		"trailing data":    "{} {}",
		"missing colon":    `{"a" 1}`,
		"unquoted key":     `{a: 1}`,
		"bad literal":      `{"a": nul}`,
		"unclosed object":  `{"a": 1`,
		"unclosed string":  `{"a": "x`,
		"newline string":   "{\"a\": \"x\ny\"}",
		"too deep":         strings.Repeat(`{"a":`, MaxDepth+2) + "1" + strings.Repeat("}", MaxDepth+2),
	}
	for name, in := range cases {
		if _, err := (Format{}).Parse("config.json", []byte(in)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, in)
		}
	}
}

func TestName(t *testing.T) {
	if got := (Format{}).Name(); got != "jsonconf" {
		t.Errorf("Name = %q", got)
	}
}
