// Package jsonconf parses and serializes JSON configuration files whose
// top-level value is an object — the shape of virtually every
// application's config.json.
//
// Tokens are preserved raw: a directive's Name is the key text between
// its quotes (escapes untouched) and its Value is the value token exactly
// as written, quotes included — so a typo can corrupt a quote or a digit
// of a number literal, exactly as in a real file. Inter-token whitespace
// is preserved in attributes (AttrIndent before each member, AttrSep
// between key and value including the colon, AttrClose before a closing
// bracket), which makes unmutated input round-trip byte-identically.
//
// Tree shape: object members with scalar values become KindDirective
// nodes; members with object or array values become KindSection nodes
// (arrays carry AttrArray). Array elements are anonymous members with an
// empty Name and no separator.
package jsonconf

import (
	"bytes"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

// Attribute keys used to preserve the lexical details of a JSON file.
const (
	// AttrArray marks a section that serializes as "[…]" instead of "{…}".
	AttrArray = "array"
	// AttrClose preserves the whitespace before a container's closing
	// bracket (on the document node: before the top-level object's '}').
	AttrClose = "close"
	// AttrLead preserves, on the document node, the whitespace before the
	// top-level '{'.
	AttrLead = "lead"
	// AttrPost preserves the whitespace between a member's value and the
	// comma that follows it ("1 , " keeps its space).
	AttrPost = "post"
	// AttrTrail preserves, on the document node, the trailing whitespace
	// after the top-level '}' (conventionally "\n").
	AttrTrail = "trail"
)

// MaxDepth bounds container nesting, keeping the recursive parser and
// serializer safe on adversarial input.
const MaxDepth = 128

// Format implements formats.Format for JSON configuration files.
type Format struct{}

var _ formats.BufferedFormat = Format{}

// Name implements formats.Format.
func (Format) Name() string { return "jsonconf" }

// Parse implements formats.Format.
func (Format) Parse(file string, data []byte) (*confnode.Node, error) {
	p := &parser{file: file, in: string(data)}
	doc := confnode.New(confnode.KindDocument, file)
	lead := p.ws()
	doc.SetAttr(AttrLead, lead)
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	if err := p.object(doc, 1); err != nil {
		return nil, err
	}
	trail := p.ws()
	if p.pos != len(p.in) {
		return nil, p.errorf("trailing data after top-level object")
	}
	doc.SetAttr(AttrTrail, trail)
	return doc, nil
}

// parser is a cursor over the input bytes.
type parser struct {
	file string
	in   string
	pos  int
}

func (p *parser) errorf(msg string) error {
	// An escape sequence cut off by EOF can leave the cursor one past the
	// end of the input; clamp before slicing for the line count.
	at := min(p.pos, len(p.in))
	line := 1 + strings.Count(p.in[:at], "\n")
	return &formats.ParseError{File: p.file, Line: line, Msg: msg}
}

// ws consumes and returns a run of whitespace.
func (p *parser) ws() string {
	start := p.pos
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return p.in[start:p.pos]
		}
	}
	return p.in[start:p.pos]
}

// expect consumes one required character.
func (p *parser) expect(c byte) error {
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return p.errorf("expected '" + string(c) + "'")
	}
	p.pos++
	return nil
}

// object parses the members of an object (the opening '{' is consumed)
// into parent's children and records the closing whitespace.
func (p *parser) object(parent *confnode.Node, depth int) error {
	if depth > MaxDepth {
		return p.errorf("containers nested too deeply")
	}
	var prev *confnode.Node
	for {
		gap := p.ws()
		if p.pos >= len(p.in) {
			return p.errorf("unterminated object")
		}
		if p.in[p.pos] == '}' {
			p.pos++
			parent.SetAttr(AttrClose, gap)
			return nil
		}
		if prev != nil {
			if gap != "" {
				prev.SetAttr(AttrPost, gap)
			}
			if err := p.expect(','); err != nil {
				return err
			}
			gap = p.ws()
		}
		if p.pos >= len(p.in) || p.in[p.pos] != '"' {
			return p.errorf("expected member key string")
		}
		key, err := p.stringToken()
		if err != nil {
			return err
		}
		sepStart := p.pos
		p.ws()
		if err := p.expect(':'); err != nil {
			return err
		}
		p.ws()
		sep := p.in[sepStart:p.pos]
		node, err := p.value(key[1:len(key)-1], depth)
		if err != nil {
			return err
		}
		node.SetAttr(formats.AttrIndent, gap)
		node.SetAttr(formats.AttrSep, sep)
		parent.Append(node)
		prev = node
	}
}

// array parses the elements of an array (the opening '[' is consumed).
func (p *parser) array(parent *confnode.Node, depth int) error {
	if depth > MaxDepth {
		return p.errorf("containers nested too deeply")
	}
	var prev *confnode.Node
	for {
		gap := p.ws()
		if p.pos >= len(p.in) {
			return p.errorf("unterminated array")
		}
		if p.in[p.pos] == ']' {
			p.pos++
			parent.SetAttr(AttrClose, gap)
			return nil
		}
		if prev != nil {
			if gap != "" {
				prev.SetAttr(AttrPost, gap)
			}
			if err := p.expect(','); err != nil {
				return err
			}
			gap = p.ws()
		}
		node, err := p.value("", depth)
		if err != nil {
			return err
		}
		node.SetAttr(formats.AttrIndent, gap)
		parent.Append(node)
		prev = node
	}
}

// value parses one JSON value into a node named key: scalars become
// directives holding the raw token, containers become sections.
func (p *parser) value(key string, depth int) (*confnode.Node, error) {
	if p.pos >= len(p.in) {
		return nil, p.errorf("expected value")
	}
	switch c := p.in[p.pos]; {
	case c == '{':
		p.pos++
		sec := confnode.New(confnode.KindSection, key)
		if err := p.object(sec, depth+1); err != nil {
			return nil, err
		}
		return sec, nil
	case c == '[':
		p.pos++
		sec := confnode.New(confnode.KindSection, key)
		sec.SetAttr(AttrArray, "1")
		if err := p.array(sec, depth+1); err != nil {
			return nil, err
		}
		return sec, nil
	case c == '"':
		tok, err := p.stringToken()
		if err != nil {
			return nil, err
		}
		return confnode.NewValued(confnode.KindDirective, key, tok), nil
	case c == '-' || (c >= '0' && c <= '9'):
		return confnode.NewValued(confnode.KindDirective, key, p.numberToken()), nil
	case c >= 'a' && c <= 'z':
		start := p.pos
		for p.pos < len(p.in) && p.in[p.pos] >= 'a' && p.in[p.pos] <= 'z' {
			p.pos++
		}
		tok := p.in[start:p.pos]
		if tok != "true" && tok != "false" && tok != "null" {
			return nil, p.errorf("invalid literal")
		}
		return confnode.NewValued(confnode.KindDirective, key, tok), nil
	default:
		return nil, p.errorf("unexpected character in value")
	}
}

// stringToken consumes a quoted string and returns it raw, quotes
// included; escape sequences are kept as written.
func (p *parser) stringToken() (string, error) {
	start := p.pos
	p.pos++ // opening quote
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case '\\':
			p.pos += 2
		case '"':
			p.pos++
			return p.in[start:p.pos], nil
		case '\n':
			return "", p.errorf("newline in string")
		default:
			p.pos++
		}
	}
	return "", p.errorf("unterminated string")
}

// numberToken consumes a maximal run of number characters. The grammar is
// deliberately loose — the token is preserved raw, so anything accepted
// here reproduces itself exactly.
func (p *parser) numberToken() string {
	start := p.pos
	for p.pos < len(p.in) {
		switch c := p.in[p.pos]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			p.pos++
		default:
			return p.in[start:p.pos]
		}
	}
	return p.in[start:p.pos]
}

// Serialize implements formats.Format.
func (Format) Serialize(root *confnode.Node) ([]byte, error) {
	var b bytes.Buffer
	if err := (Format{}).SerializeTo(&b, root); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// SerializeTo implements formats.BufferedFormat.
func (Format) SerializeTo(b *bytes.Buffer, root *confnode.Node) error {
	b.WriteString(root.AttrDefault(AttrLead, ""))
	b.WriteByte('{')
	writeMembers(b, root, 0, false)
	b.WriteByte('}')
	b.WriteString(root.AttrDefault(AttrTrail, "\n"))
	return nil
}

// writeMembers emits a container's children followed by its closing
// whitespace. Members created by mutations (no indent attribute) get a
// newline plus two spaces per depth level.
func writeMembers(b *bytes.Buffer, parent *confnode.Node, depth int, inArray bool) {
	children := parent.Children()
	for i, n := range children {
		if i > 0 {
			b.WriteString(children[i-1].AttrDefault(AttrPost, ""))
			b.WriteByte(',')
		}
		b.WriteString(n.AttrDefault(formats.AttrIndent, "\n"+strings.Repeat("  ", depth+1)))
		if !inArray {
			b.WriteByte('"')
			b.WriteString(n.Name)
			b.WriteByte('"')
			b.WriteString(n.AttrDefault(formats.AttrSep, ": "))
		}
		switch {
		case n.Kind == confnode.KindSection && n.AttrDefault(AttrArray, "") != "":
			b.WriteByte('[')
			writeMembers(b, n, depth+1, true)
			b.WriteByte(']')
		case n.Kind == confnode.KindSection:
			b.WriteByte('{')
			writeMembers(b, n, depth+1, false)
			b.WriteByte('}')
		default:
			b.WriteString(n.Value)
		}
	}
	def := ""
	if len(children) > 0 {
		def = "\n" + strings.Repeat("  ", depth)
	}
	b.WriteString(parent.AttrDefault(AttrClose, def))
}
