package jsonconf

import "testing"

// FuzzParseSerialize checks parse∘serialize stability on arbitrary input.
func FuzzParseSerialize(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte(`{"a":[1,{"b":"c"},[]],"d":{}}`))
	f.Add([]byte(`{"esc":"a\"b\\c"}`))
	f.Add([]byte("{ \"a\" :\n 1 , \"b\" : true }"))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Format{}.Parse("f", data)
		if err != nil {
			return
		}
		out, err := Format{}.Serialize(doc)
		if err != nil {
			t.Fatalf("Serialize after successful Parse: %v", err)
		}
		doc2, err := Format{}.Parse("f", out)
		if err != nil {
			t.Fatalf("re-Parse: %v\n%q", err, out)
		}
		if !doc.Equal(doc2) {
			t.Fatalf("unstable:\nin: %q\nout: %q", data, out)
		}
	})
}
