// Package yamlconf parses and serializes a pragmatic subset of YAML —
// the block-style slice that configuration files actually use: nested
// maps ("key:" with deeper-indented children), scalar entries
// ("key: value"), sequences of scalars ("- value"), whole-line and
// trailing '#' comments, and blank lines. Flow style, anchors, multi-line
// scalars and documents ("---") are out of scope; lines using them are
// parse errors, never silent misreads.
//
// Mapping keys with scalar values become KindDirective nodes; keys with
// nothing after the colon become KindSection nodes whose children are the
// more-deeply-indented lines below. Sequence items become KindDirective
// nodes named "-". Scalars are preserved raw (quotes included), and the
// lexical details — indentation, the separator around the colon, trailing
// comments — live in attributes, so unmutated input round-trips
// byte-identically.
package yamlconf

import (
	"bytes"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

// SeqName is the Name of sequence-item directives.
const SeqName = "-"

// Format implements formats.Format for block-style YAML subset files.
type Format struct{}

var _ formats.BufferedFormat = Format{}

// Name implements formats.Format.
func (Format) Name() string { return "yamlconf" }

// frame is one open mapping on the indentation stack.
type frame struct {
	node   *confnode.Node
	indent int // -1 for the document root
}

// Parse implements formats.Format.
func (Format) Parse(file string, data []byte) (*confnode.Node, error) {
	doc := confnode.New(confnode.KindDocument, file)
	stack := []frame{{node: doc, indent: -1}}
	for i, line := range splitLines(data) {
		indent := leadingWS(line)
		rest := line[len(indent):]
		switch {
		case strings.TrimSpace(rest) == "":
			// Blank lines and comments attach to the innermost open
			// mapping without affecting the indentation stack.
			stack[len(stack)-1].node.Append(confnode.New(confnode.KindBlank, ""))
			continue
		case strings.HasPrefix(rest, "#"):
			stack[len(stack)-1].node.Append(confnode.NewValued(confnode.KindComment, "", line))
			continue
		}

		// Entry lines pop the stack to the mapping they belong to.
		for len(stack) > 1 && len(indent) <= stack[len(stack)-1].indent {
			stack = stack[:len(stack)-1]
		}
		top := stack[len(stack)-1].node

		body, trailing := splitTrailing(rest)
		wsEnd := body[len(strings.TrimRight(body, " \t")):]
		body = strings.TrimRight(body, " \t")
		if trailing != "" || wsEnd != "" {
			trailing = wsEnd + trailing
		}

		n, err := parseEntry(body)
		if err != nil {
			return nil, &formats.ParseError{File: file, Line: i + 1, Msg: err.Error()}
		}
		n.SetAttr(formats.AttrIndent, indent)
		if trailing != "" {
			n.SetAttr(formats.AttrTrailing, trailing)
		}
		top.Append(n)
		if n.Kind == confnode.KindSection {
			stack = append(stack, frame{node: n, indent: len(indent)})
		}
	}
	return doc, nil
}

// parseEntry parses one structural line (indent and trailing comment
// already stripped): a sequence item, a scalar mapping entry, or a
// section opener.
func parseEntry(body string) (*confnode.Node, error) {
	if body == SeqName || strings.HasPrefix(body, "- ") || strings.HasPrefix(body, "-\t") {
		value := strings.TrimLeft(body[1:], " \t")
		n := confnode.NewValued(confnode.KindDirective, SeqName, value)
		n.SetAttr(formats.AttrSep, body[1:len(body)-len(value)])
		return n, nil
	}
	ci := mappingColon(body)
	if ci < 0 {
		return nil, &yamlError{"line is neither a mapping entry nor a sequence item (flow YAML is not supported)"}
	}
	key := strings.TrimRight(body[:ci], " \t")
	value := strings.TrimLeft(body[ci+1:], " \t")
	sep := body[len(key) : len(body)-len(value)]
	if value == "" {
		n := confnode.New(confnode.KindSection, key)
		n.SetAttr(formats.AttrSep, sep)
		return n, nil
	}
	n := confnode.NewValued(confnode.KindDirective, key, value)
	n.SetAttr(formats.AttrSep, sep)
	return n, nil
}

// mappingColon returns the index of the first ':' that separates a key
// from its value — a colon followed by whitespace or end of line, the
// YAML rule that lets values like "127.0.0.1:6379" stay uncut.
func mappingColon(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] != ':' {
			continue
		}
		if i+1 == len(s) || s[i+1] == ' ' || s[i+1] == '\t' {
			return i
		}
	}
	return -1
}

// splitTrailing separates a trailing '#' comment: a '#' preceded by
// whitespace opens a comment (the YAML rule), anything else — e.g. an
// anchor-free "a#b" — is scalar content. The returned trailing part
// includes the '#' and the whitespace immediately before it.
func splitTrailing(s string) (body, trailing string) {
	for i := 1; i < len(s); i++ {
		if s[i] == '#' && (s[i-1] == ' ' || s[i-1] == '\t') {
			start := i
			for start > 0 && (s[start-1] == ' ' || s[start-1] == '\t') {
				start--
			}
			return s[:start], s[start:]
		}
	}
	return s, ""
}

// yamlError is a plain-message error for parseEntry.
type yamlError struct{ msg string }

func (e *yamlError) Error() string { return e.msg }

// Serialize implements formats.Format.
func (Format) Serialize(root *confnode.Node) ([]byte, error) {
	var b bytes.Buffer
	if err := (Format{}).SerializeTo(&b, root); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// SerializeTo implements formats.BufferedFormat.
func (Format) SerializeTo(b *bytes.Buffer, root *confnode.Node) error {
	writeItems(b, root.Children(), 0)
	return nil
}

func writeItems(b *bytes.Buffer, items []*confnode.Node, depth int) {
	for _, n := range items {
		switch n.Kind {
		case confnode.KindBlank:
			b.WriteByte('\n')
		case confnode.KindComment:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		case confnode.KindSection:
			b.WriteString(n.AttrDefault(formats.AttrIndent, strings.Repeat("  ", depth)))
			b.WriteString(n.Name)
			b.WriteString(n.AttrDefault(formats.AttrSep, ":"))
			b.WriteString(n.AttrDefault(formats.AttrTrailing, ""))
			b.WriteByte('\n')
			writeItems(b, n.Children(), depth+1)
		case confnode.KindDirective:
			b.WriteString(n.AttrDefault(formats.AttrIndent, strings.Repeat("  ", depth)))
			b.WriteString(n.Name)
			if n.Value != "" {
				sep := n.AttrDefault(formats.AttrSep, defaultSep(n.Name))
				if sep == "" {
					sep = defaultSep(n.Name)
				}
				b.WriteString(sep)
				b.WriteString(n.Value)
			} else if sep, ok := n.Attr(formats.AttrSep); ok && strings.Contains(sep, ":") {
				b.WriteString(sep)
			}
			b.WriteString(n.AttrDefault(formats.AttrTrailing, ""))
			b.WriteByte('\n')
		default:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		}
	}
}

// defaultSep is the separator for mutation-created directives: sequence
// items take a plain space after the dash, mapping entries ": ".
func defaultSep(name string) string {
	if name == SeqName {
		return " "
	}
	return ": "
}

func leadingWS(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] != ' ' && s[i] != '\t' {
			return s[:i]
		}
	}
	return s
}

func splitLines(data []byte) []string {
	if len(data) == 0 {
		return nil
	}
	s := strings.TrimSuffix(string(data), "\n")
	if s == "" {
		return []string{""}
	}
	return strings.Split(s, "\n")
}
