package yamlconf

import (
	"bytes"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

const sample = `# application configuration
port: 6380
hostname: app.example.com

logging:
  level: info # keep prod quiet
  file: /var/log/app.log
  rotate:
    size: 10mb
    keep: 7

servers:
  - 127.0.0.1:8080
  - 127.0.0.1:8443

debug: false
`

func TestParseStructure(t *testing.T) {
	doc, err := Format{}.Parse("app.yaml", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.ChildByName("port").Value; got != "6380" {
		t.Errorf("port = %q", got)
	}
	if got := doc.ChildByName("hostname").Value; got != "app.example.com" {
		t.Errorf("hostname = %q (the mapping colon must not cut the value)", got)
	}
	logging := doc.ChildByName("logging")
	if logging == nil || logging.Kind != confnode.KindSection {
		t.Fatalf("logging is not a section:\n%s", doc.Dump())
	}
	level := logging.ChildByName("level")
	if level.Value != "info" {
		t.Errorf("level = %q", level.Value)
	}
	if tr, _ := level.Attr(formats.AttrTrailing); tr != " # keep prod quiet" {
		t.Errorf("level trailing = %q", tr)
	}
	rotate := logging.ChildByName("rotate")
	if rotate == nil || rotate.ChildByName("keep").Value != "7" {
		t.Fatalf("nested rotate section missing:\n%s", doc.Dump())
	}
	servers := doc.ChildByName("servers")
	items := servers.ChildrenByKind(confnode.KindDirective)
	if len(items) != 2 || items[0].Name != SeqName || items[1].Value != "127.0.0.1:8443" {
		t.Errorf("sequence items = %v", items)
	}
}

func TestRoundTripByteIdentical(t *testing.T) {
	doc, err := Format{}.Parse("app.yaml", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != sample {
		t.Errorf("round trip mismatch:\nwant:\n%s\ngot:\n%s", sample, out)
	}
}

func TestSerializeToMatchesSerialize(t *testing.T) {
	doc, err := Format{}.Parse("app.yaml", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := (Format{}).SerializeTo(&b, doc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("SerializeTo diverged from Serialize")
	}
}

func TestMutationCreatedNodesGetDefaults(t *testing.T) {
	doc, err := Format{}.Parse("app.yaml", []byte("a:\n  x: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	doc.ChildByName("a").Append(confnode.NewValued(confnode.KindDirective, "y", "2"))
	doc.Append(confnode.NewValued(confnode.KindDirective, SeqName, "z"))
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := "a:\n  x: 1\n  y: 2\n- z\n"
	if string(out) != want {
		t.Errorf("serialize with injected nodes:\nwant %q\ngot  %q", want, out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bare scalar":    "just a scalar\n",
		"ini directive":  "a: 1\nx = 2\n",
		"no mapping sep": "key:value\n",
	}
	for name, in := range cases {
		if _, err := (Format{}).Parse("app.yaml", []byte(in)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, in)
		}
	}
}

func TestName(t *testing.T) {
	if got := (Format{}).Name(); got != "yamlconf" {
		t.Errorf("Name = %q", got)
	}
}
