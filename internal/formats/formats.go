// Package formats defines the contract between ConfErr and the
// system-specific configuration file formats: parsing a native file into
// the system representation (a confnode tree) and serializing a — possibly
// mutated — tree back into the native format (paper §3.2).
//
// Subpackages implement the concrete formats: ini (MySQL-style), kv
// (Postgres-style), apacheconf (Apache httpd), zonefile and tinydns (DNS),
// and xmlconf (generic XML).
package formats

import (
	"bytes"
	"fmt"

	"conferr/internal/confnode"
)

// Format parses and serializes one configuration file format.
//
// Parse must produce a tree that Serialize maps back to byte-identical
// output for unmutated input (round-trip fidelity), so that injected
// faults are the only difference between the original and the mutated
// configuration files.
type Format interface {
	// Name identifies the format, e.g. "ini".
	Name() string
	// Parse converts native file content into the system representation.
	// file is the logical name, used for error messages and the document
	// node name.
	Parse(file string, data []byte) (*confnode.Node, error)
	// Serialize converts a system-representation tree back to native file
	// content.
	Serialize(root *confnode.Node) ([]byte, error)
}

// BufferedFormat is an optional Format extension for serialization hot
// paths: SerializeTo appends the native file content to buf instead of
// allocating a fresh buffer per call, letting the engine reuse one
// per-worker buffer across thousands of injections. Implementations must
// produce exactly the bytes Serialize would.
type BufferedFormat interface {
	Format
	SerializeTo(buf *bytes.Buffer, root *confnode.Node) error
}

// ParseError describes a configuration file parse failure.
type ParseError struct {
	// File is the logical file name.
	File string
	// Line is the 1-based line number of the failure.
	Line int
	// Msg describes the problem.
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Attribute keys used by the format packages to preserve the lexical
// details needed for byte-identical round trips.
const (
	// AttrSep preserves the separator between a directive name and its
	// value, including surrounding whitespace (e.g. " = ", "=", " ").
	AttrSep = "sep"
	// AttrIndent preserves leading whitespace of the line.
	AttrIndent = "indent"
	// AttrTrailing preserves a trailing comment on the directive's line.
	AttrTrailing = "trailing"
	// AttrArg preserves a section's argument text (e.g. Apache
	// "<VirtualHost *:80>" has arg "*:80").
	AttrArg = "arg"
)

// DefaultSep is the separator used when serializing directives created by
// mutations (which carry no AttrSep).
const DefaultSep = " = "
