// Package tinydns parses and serializes djbdns tinydns-data files. Each
// line starts with a type character followed by colon-separated fields:
//
//	=fqdn:ip:ttl     A record plus the matching PTR — one directive
//	                 defines both halves of the mapping, the property the
//	                 paper highlights as a strength of the format (§5.4)
//	+fqdn:ip:ttl     A record only
//	^fqdn:name:ttl   PTR record only
//	Cfqdn:name:ttl   CNAME record
//	@fqdn:ip:x:dist:ttl  MX record
//	&fqdn:ip:x:ttl   NS record (delegation)
//	.fqdn:ip:x:ttl   NS record plus SOA
//	'fqdn:text:ttl   TXT record
//	Zfqdn:mname:rname:ser:ref:ret:exp:min:ttl  SOA record
//	#comment
package tinydns

import (
	"bytes"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

// TypeChars are the directive characters the format accepts.
const TypeChars = "=+^C@&.'Z"

// Format implements formats.Format for tinydns-data files.
type Format struct{}

var _ formats.BufferedFormat = Format{}

// Name implements formats.Format.
func (Format) Name() string { return "tinydns" }

// Parse implements formats.Format. Each data line becomes a KindRecord
// node whose Name is the one-character directive type and whose Value is
// the raw colon-separated remainder.
func (Format) Parse(file string, data []byte) (*confnode.Node, error) {
	doc := confnode.New(confnode.KindDocument, file)
	for i, line := range splitLines(data) {
		t := strings.TrimRight(line, " \t")
		switch {
		case strings.TrimSpace(t) == "":
			doc.Append(confnode.New(confnode.KindBlank, ""))
		case strings.HasPrefix(t, "#"):
			doc.Append(confnode.NewValued(confnode.KindComment, "", line))
		default:
			c := t[:1]
			if !strings.Contains(TypeChars, c) {
				return nil, &formats.ParseError{File: file, Line: i + 1,
					Msg: "unable to parse data line: unknown leading character " + c}
			}
			doc.Append(confnode.NewValued(confnode.KindRecord, c, t[1:]))
		}
	}
	return doc, nil
}

// Serialize implements formats.Format.
func (Format) Serialize(root *confnode.Node) ([]byte, error) {
	var b bytes.Buffer
	if err := (Format{}).SerializeTo(&b, root); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// SerializeTo implements formats.BufferedFormat.
func (Format) SerializeTo(b *bytes.Buffer, root *confnode.Node) error {
	for _, n := range root.Children() {
		switch n.Kind {
		case confnode.KindBlank:
			b.WriteByte('\n')
		case confnode.KindComment:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		case confnode.KindRecord:
			b.WriteString(n.Name)
			b.WriteString(n.Value)
			b.WriteByte('\n')
		default:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		}
	}
	return nil
}

func splitLines(data []byte) []string {
	if len(data) == 0 {
		return nil
	}
	s := strings.TrimSuffix(string(data), "\n")
	if s == "" {
		return []string{""}
	}
	return strings.Split(s, "\n")
}
