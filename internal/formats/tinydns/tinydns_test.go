package tinydns

import (
	"errors"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

const sample = `# tinydns data for example.com
.example.com::ns1.example.com:3600
=www.example.com:192.0.2.10:3600
=mail.example.com:192.0.2.20:3600
Cftp.example.com:www.example.com:3600
@example.com::mail.example.com:10:3600
'example.com:v=spf1 mx -all:3600
`

func TestParseStructure(t *testing.T) {
	doc, err := Format{}.Parse("data", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	recs := doc.ChildrenByKind(confnode.KindRecord)
	if len(recs) != 6 {
		t.Fatalf("records = %d, want 6", len(recs))
	}
	if recs[0].Name != "." || recs[0].Value != "example.com::ns1.example.com:3600" {
		t.Errorf("rec0 = %s", recs[0])
	}
	if recs[1].Name != "=" {
		t.Errorf("rec1 = %s", recs[1])
	}
	if doc.Child(0).Kind != confnode.KindComment {
		t.Error("comment lost")
	}
}

func TestRoundTripIdentity(t *testing.T) {
	doc, err := Format{}.Parse("data", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != sample {
		t.Errorf("round trip mismatch:\nwant:\n%s\ngot:\n%s", sample, out)
	}
}

func TestUnknownLeadingChar(t *testing.T) {
	_, err := Format{}.Parse("data", []byte("Xwww.example.com:1.2.3.4\n"))
	if err == nil {
		t.Fatal("unknown directive accepted")
	}
	var pe *formats.ParseError
	if !errors.As(err, &pe) || pe.Line != 1 {
		t.Errorf("err = %v", err)
	}
}

func TestBlankAndCommentOnly(t *testing.T) {
	doc, err := Format{}.Parse("data", []byte("\n# c\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Format{}.Serialize(doc)
	if string(out) != "\n# c\n\n" {
		t.Errorf("got %q", out)
	}
}

func TestAllTypeChars(t *testing.T) {
	for _, c := range TypeChars {
		in := string(c) + "x.example.com:1:2:3\n"
		doc, err := Format{}.Parse("data", []byte(in))
		if err != nil {
			t.Errorf("type %q rejected: %v", c, err)
			continue
		}
		out, _ := Format{}.Serialize(doc)
		if string(out) != in {
			t.Errorf("type %q round trip %q", c, out)
		}
	}
}

func TestFormatName(t *testing.T) {
	if (Format{}).Name() != "tinydns" {
		t.Error("wrong name")
	}
}
