package formats

import (
	"strings"
	"testing"
)

func TestRawRoundTrip(t *testing.T) {
	data := []byte("options {\n  listen-on port 53 { any; };\n};\n")
	doc, err := Raw{}.Parse("named.conf", data)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "named.conf" || doc.NumChildren() != 0 {
		t.Errorf("doc = %s", doc)
	}
	out, err := Raw{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(data) {
		t.Errorf("round trip %q -> %q", data, out)
	}
	if (Raw{}).Name() != "raw" {
		t.Error("wrong name")
	}
}

func TestParseErrorMessage(t *testing.T) {
	e := &ParseError{File: "f.conf", Line: 3, Msg: "bad things"}
	if got := e.Error(); !strings.Contains(got, "f.conf:3: bad things") {
		t.Errorf("Error() = %q", got)
	}
}
