package xmlconf

import "testing"

// TestAttrEscapingRoundTrip is the regression test for the serializer's
// old %q attribute quoting, which turned a backslash, newline or tab
// inside an attribute value into Go escape sequences the XML decoder then
// read back as literal characters — parse∘serialize was unstable for any
// such value. Attribute values must survive a full round trip unchanged.
func TestAttrEscapingRoundTrip(t *testing.T) {
	for _, in := range []string{
		"<a x=\"l1\nl2\">v</a>",
		`<a x="back\slash">v</a>`,
		"<a x=\"tab\there\">v</a>",
		"<a x=\"&#10;\">v</a>",
		"<a x='mixed \"quotes\"'>v</a>",
	} {
		doc, err := Format{}.Parse("f", []byte(in))
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		out, err := Format{}.Serialize(doc)
		if err != nil {
			t.Fatalf("Serialize(%q): %v", in, err)
		}
		doc2, err := Format{}.Parse("f", out)
		if err != nil {
			t.Errorf("re-Parse of %q -> %q: %v", in, out, err)
			continue
		}
		if !doc.Equal(doc2) {
			t.Errorf("unstable round trip:\nin:  %q\nout: %q\nfirst:\n%s\nsecond:\n%s",
				in, out, doc.Dump(), doc2.Dump())
		}
	}
}
