package xmlconf

import (
	"strings"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/view"
)

const sample = `<config>
  <!-- application settings -->
  <server role="primary">
    <port>8080</port>
    <host>localhost</host>
    <idle/>
  </server>
  <logging>
    <level>info</level>
  </logging>
</config>
`

func TestParseStructure(t *testing.T) {
	doc, err := Format{}.Parse("app.xml", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	cfg := doc.Child(0)
	if cfg.Kind != confnode.KindSection || cfg.Name != "config" {
		t.Fatalf("root element = %s", cfg)
	}
	server := cfg.ChildByName("server")
	if server == nil || server.Kind != confnode.KindSection {
		t.Fatalf("server = %v", server)
	}
	if v, _ := server.Attr("xml:role"); v != "primary" {
		t.Errorf("role attr = %q", v)
	}
	port := server.ChildByName("port")
	if port.Kind != confnode.KindDirective || port.Value != "8080" {
		t.Errorf("port = %s", port)
	}
	idle := server.ChildByName("idle")
	if idle.Kind != confnode.KindDirective || idle.Value != "" {
		t.Errorf("idle = %s", idle)
	}
	// Comment preserved.
	if cfg.CountKind(confnode.KindComment) != 1 {
		t.Error("comment lost")
	}
}

func TestRoundTripStable(t *testing.T) {
	doc, err := Format{}.Parse("app.xml", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := Format{}.Parse("app.xml", out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !doc.Equal(doc2) {
		t.Errorf("parse∘serialize not stable:\n%s\nvs\n%s", doc.Dump(), doc2.Dump())
	}
	out2, _ := Format{}.Serialize(doc2)
	if string(out) != string(out2) {
		t.Errorf("serialize not idempotent:\n%s\nvs\n%s", out, out2)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"<a><b></a></b>",
		"<unclosed>",
		"text only",
	} {
		if _, err := (Format{}).Parse("f", []byte(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestEscaping(t *testing.T) {
	doc := confnode.New(confnode.KindDocument, "f")
	d := confnode.NewValued(confnode.KindDirective, "msg", `a < b & "c"`)
	d.SetAttr("xml:note", `x"y`)
	doc.Append(d)
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, "a &lt; b &amp; &quot;c&quot;") {
		t.Errorf("text not escaped: %s", s)
	}
	doc2, err := Format{}.Parse("f", out)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc2.Child(0).Value; got != `a < b & "c"` {
		t.Errorf("unescaped value = %q", got)
	}
}

func TestWorksWithWordView(t *testing.T) {
	// The word view targets directives regardless of format; typos on XML
	// config values flow through the same machinery.
	doc, err := Format{}.Parse("app.xml", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	sys := confnode.NewSet()
	sys.Put("app.xml", doc)
	fwd, err := view.WordView{}.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}
	lines := fwd.Get("app.xml").ChildrenByKind(confnode.KindLine)
	if len(lines) != 4 { // port, host, idle, level
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	// Mutate the port value and fold back.
	lines[0].Child(1).Value = "8o80"
	back, err := view.WordView{}.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Format{}.Serialize(back.Get("app.xml"))
	if !strings.Contains(string(out), "<port>8o80</port>") {
		t.Errorf("mutation lost:\n%s", out)
	}
}

func TestSerializeUnsupportedKind(t *testing.T) {
	doc := confnode.New(confnode.KindDocument, "f")
	doc.Append(confnode.NewValued(confnode.KindWord, "", "stray"))
	if _, err := (Format{}).Serialize(doc); err == nil {
		t.Error("stray word node serialized")
	}
}

func TestFormatName(t *testing.T) {
	if (Format{}).Name() != "xmlconf" {
		t.Error("wrong name")
	}
}
