package xmlconf

import "testing"

// FuzzParseSerialize checks parse∘serialize stability on arbitrary input.
func FuzzParseSerialize(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte("<config><server port=\"8080\">x</server></config>"))
	f.Add([]byte("<a><!-- c --><b/></a>"))
	f.Add([]byte("<a x=\"1&amp;2\">v</a>"))
	f.Add([]byte("<a x=\"l1\nl2\">v</a>"))
	f.Add([]byte(`<a x="back\slash">v</a>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Format{}.Parse("f", data)
		if err != nil {
			return
		}
		out, err := Format{}.Serialize(doc)
		if err != nil {
			t.Fatalf("Serialize after successful Parse: %v", err)
		}
		doc2, err := Format{}.Parse("f", out)
		if err != nil {
			t.Fatalf("re-Parse: %v\n%q", err, out)
		}
		if !doc.Equal(doc2) {
			t.Fatalf("unstable:\nin: %q\nout: %q", data, out)
		}
	})
}
