// Package xmlconf parses and serializes generic XML configuration files —
// one of the input formats the original ConfErr supports (§3.2). Elements
// with element children become sections; leaf elements become directives
// whose value is their text content; XML attributes are preserved as
// node attributes prefixed "xml:".
//
// The mapping is deliberately simple: it targets the common
// "<config><server><port>8080</port>…</server></config>" shape of
// application configuration files, not general XML documents (no mixed
// content, CDATA or processing instructions).
package xmlconf

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

// attrPrefix namespaces XML attributes within confnode attributes, so
// they cannot collide with ConfErr's own bookkeeping attributes.
const attrPrefix = "xml:"

// Format implements formats.Format for generic XML configuration files.
type Format struct{}

var _ formats.BufferedFormat = Format{}

// Name implements formats.Format.
func (Format) Name() string { return "xmlconf" }

// Parse implements formats.Format.
func (Format) Parse(file string, data []byte) (*confnode.Node, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	doc := confnode.New(confnode.KindDocument, file)
	stack := []*confnode.Node{doc}
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, &formats.ParseError{File: file, Line: 0, Msg: err.Error()}
		}
		switch t := tok.(type) {
		case xml.StartElement:
			// A new element: until we know whether it has element
			// children, treat it as a directive; promote to section when a
			// child element arrives.
			n := confnode.New(confnode.KindDirective, t.Name.Local)
			for _, a := range t.Attr {
				n.SetAttr(attrPrefix+a.Name.Local, a.Value)
			}
			parent := stack[len(stack)-1]
			if parent.Kind == confnode.KindDirective {
				parent.Kind = confnode.KindSection
				parent.Value = ""
			}
			parent.Append(n)
			stack = append(stack, n)
			text.Reset()
		case xml.EndElement:
			top := stack[len(stack)-1]
			if top.Kind == confnode.KindDirective {
				top.Value = strings.TrimSpace(text.String())
			}
			text.Reset()
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text.Write(t)
		case xml.Comment:
			parent := stack[len(stack)-1]
			if parent.Kind == confnode.KindDirective {
				parent.Kind = confnode.KindSection
			}
			parent.Append(confnode.NewValued(confnode.KindComment, "", string(t)))
		}
	}
	if len(stack) != 1 {
		return nil, &formats.ParseError{File: file, Line: 0, Msg: "unbalanced XML document"}
	}
	if doc.CountKind(confnode.KindSection)+doc.CountKind(confnode.KindDirective) == 0 {
		return nil, &formats.ParseError{File: file, Line: 0, Msg: "no elements in document"}
	}
	return doc, nil
}

// Serialize implements formats.Format, emitting two-space indentation.
func (Format) Serialize(root *confnode.Node) ([]byte, error) {
	var b bytes.Buffer
	if err := (Format{}).SerializeTo(&b, root); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// SerializeTo implements formats.BufferedFormat.
func (Format) SerializeTo(b *bytes.Buffer, root *confnode.Node) error {
	for _, c := range root.Children() {
		if err := writeNode(b, c, 0); err != nil {
			return err
		}
	}
	return nil
}

func writeNode(b *bytes.Buffer, n *confnode.Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	switch n.Kind {
	case confnode.KindComment:
		fmt.Fprintf(b, "%s<!--%s-->\n", indent, n.Value)
		return nil
	case confnode.KindBlank:
		b.WriteByte('\n')
		return nil
	case confnode.KindSection, confnode.KindDirective:
		// Handled below.
	default:
		return fmt.Errorf("xmlconf: cannot serialize %s node", n.Kind)
	}

	b.WriteString(indent)
	b.WriteByte('<')
	b.WriteString(n.Name)
	for _, k := range n.AttrKeys() {
		if !strings.HasPrefix(k, attrPrefix) {
			continue
		}
		v, _ := n.Attr(k)
		fmt.Fprintf(b, " %s=\"%s\"", strings.TrimPrefix(k, attrPrefix), escapeAttr(v))
	}
	if n.Kind == confnode.KindDirective {
		if n.Value == "" && n.NumChildren() == 0 {
			b.WriteString("/>\n")
			return nil
		}
		fmt.Fprintf(b, ">%s</%s>\n", escape(n.Value), n.Name)
		return nil
	}
	b.WriteString(">\n")
	for _, c := range n.Children() {
		if err := writeNode(b, c, depth+1); err != nil {
			return err
		}
	}
	fmt.Fprintf(b, "%s</%s>\n", indent, n.Name)
	return nil
}

// escape applies minimal XML text escaping.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", "\"", "&quot;")
	return r.Replace(s)
}

// escapeAttr escapes an attribute value for a double-quoted attribute.
// Unlike Go's %q — which the serializer once used, corrupting any value
// holding a backslash or control character — whitespace is written as XML
// character references, so the decoder restores the exact original bytes.
func escapeAttr(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", "\"", "&quot;",
		"\n", "&#xA;", "\t", "&#x9;", "\r", "&#xD;")
	return r.Replace(s)
}
