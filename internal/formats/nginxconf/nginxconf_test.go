package nginxconf

import (
	"bytes"
	"strings"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

const sample = `# nginx configuration
user nginx;
worker_processes auto;

events {
    worker_connections 1024;
}

http {
    default_type application/octet-stream;
    sendfile on; # zero-copy
    server {
        listen 8080;
        server_name www.example.com;
        location / {
            root /var/www/html;
        }
        location /static/ {
            root /var/www/static;
            expires 30d;
        }
    }
}
`

func TestParseStructure(t *testing.T) {
	doc, err := Format{}.Parse("nginx.conf", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	http := doc.ChildByName("http")
	if http == nil || http.Kind != confnode.KindSection {
		t.Fatalf("no http section:\n%s", doc.Dump())
	}
	server := http.ChildByName("server")
	if server == nil || server.Kind != confnode.KindSection {
		t.Fatalf("no server section inside http:\n%s", doc.Dump())
	}
	locs := server.ChildrenByKind(confnode.KindSection)
	if len(locs) != 2 {
		t.Fatalf("locations = %d, want 2", len(locs))
	}
	if arg, _ := locs[1].Attr(formats.AttrArg); arg != "/static/" {
		t.Errorf("second location arg = %q, want /static/", arg)
	}
	if got := locs[1].ChildByName("expires").Value; got != "30d" {
		t.Errorf("expires = %q", got)
	}
	listen := server.ChildByName("listen")
	if listen == nil || listen.Value != "8080" {
		t.Errorf("listen = %v", listen)
	}
	sendfile := http.ChildByName("sendfile")
	if tr, _ := sendfile.Attr(formats.AttrTrailing); tr != " # zero-copy" {
		t.Errorf("sendfile trailing = %q", tr)
	}
}

func TestRoundTripByteIdentical(t *testing.T) {
	doc, err := Format{}.Parse("nginx.conf", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != sample {
		t.Errorf("round trip mismatch:\nwant:\n%s\ngot:\n%s", sample, out)
	}
}

// TestBraceLineLexicalFidelity is the regression test for brace-line
// detail the parser once discarded: trailing comments on "{" and "}"
// lines and a hand-indented closing brace must survive byte-identically.
func TestBraceLineLexicalFidelity(t *testing.T) {
	for _, in := range []string{
		"http { # begin\n    x 1;\n} # end http\n",
		"a {\n  x 1;\n    }\n",
		"a { # open\n  b {\n  x 1;\n\t} # close b\n}\n",
	} {
		doc, err := Format{}.Parse("nginx.conf", []byte(in))
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		out, err := Format{}.Serialize(doc)
		if err != nil {
			t.Fatalf("Serialize(%q): %v", in, err)
		}
		if string(out) != in {
			t.Errorf("round trip of %q = %q", in, out)
		}
	}
}

func TestSerializeToMatchesSerialize(t *testing.T) {
	doc, err := Format{}.Parse("nginx.conf", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := (Format{}).SerializeTo(&b, doc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("SerializeTo diverged from Serialize")
	}
}

func TestMutationCreatedNodesGetDefaults(t *testing.T) {
	doc, err := Format{}.Parse("nginx.conf", []byte("http {\n    server {\n        listen 80;\n    }\n}\n"))
	if err != nil {
		t.Fatal(err)
	}
	server := doc.ChildByName("http").ChildByName("server")
	server.Append(confnode.NewValued(confnode.KindDirective, "server_name", "example.org"))
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := "http {\n    server {\n        listen 80;\n        server_name example.org;\n    }\n}\n"
	if string(out) != want {
		t.Errorf("serialize with injected directive:\nwant:\n%s\ngot:\n%s", want, out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing semicolon": "worker_processes 4\n",
		"unexpected close":  "}\n",
		"unclosed block":    "http {\n",
		"nameless block":    "{\n}\n",
		"too deep":          strings.Repeat("a {\n", MaxDepth+1),
	}
	for name, in := range cases {
		if _, err := (Format{}).Parse("nginx.conf", []byte(in)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, in)
		}
	}
}

func TestName(t *testing.T) {
	if got := (Format{}).Name(); got != "nginxconf" {
		t.Errorf("Name = %q", got)
	}
}
