// Package nginxconf parses and serializes nginx-style configuration
// files: semicolon-terminated directives ("worker_processes 4;"), '#'
// comments, and brace-delimited block directives ("http { … }") that nest
// to arbitrary depth — the first format in the matrix whose sections are
// recursive by design rather than by exception (Apache's containers nest,
// but stock httpd.conf stays two levels deep; every real nginx.conf is at
// least http > server > location).
//
// Blocks become KindSection nodes whose Name is the block directive
// ("location") and whose AttrArg holds the argument text ("/static/");
// simple directives become KindDirective nodes. Lexical details — leading
// whitespace, name/value separators, trailing comments — are preserved in
// attributes so unmutated input round-trips byte-identically.
package nginxconf

import (
	"bytes"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

// MaxDepth bounds block nesting; deeper input is rejected rather than
// parsed into a tree whose recursive serialization could exhaust the
// stack.
const MaxDepth = 128

// Attribute keys for the lexical details of a block's two brace lines.
// formats.AttrIndent / formats.AttrTrailing describe the opening line;
// these describe the closing one, so "} # end http" markers and
// hand-indented close braces survive the round trip byte-identically.
const (
	// AttrCloseIndent preserves the leading whitespace of the closing
	// brace's line.
	AttrCloseIndent = "close-indent"
	// AttrCloseTrailing preserves a trailing comment after the closing
	// brace.
	AttrCloseTrailing = "close-trailing"
)

// Format implements formats.Format for nginx configuration files.
type Format struct{}

var _ formats.BufferedFormat = Format{}

// Name implements formats.Format.
func (Format) Name() string { return "nginxconf" }

// Parse implements formats.Format. The parser is line-oriented, which
// covers the universal one-directive-per-line layout of real nginx
// configurations; a non-comment line must end in ';' (directive), '{'
// (block open) or be a lone '}' (block close).
func (Format) Parse(file string, data []byte) (*confnode.Node, error) {
	doc := confnode.New(confnode.KindDocument, file)
	stack := []*confnode.Node{doc}
	for i, line := range splitLines(data) {
		top := stack[len(stack)-1]
		indent := leadingWS(line)
		rest := line[len(indent):]
		body, trailing := splitTrailing(rest)
		trimmed := strings.TrimRight(body, " \t")
		switch {
		case trimmed == "" && trailing == "":
			top.Append(confnode.New(confnode.KindBlank, ""))
		case trimmed == "":
			// Only a comment is left once the (empty) code part is gone:
			// the line is a whole-line comment, preserved verbatim.
			top.Append(confnode.NewValued(confnode.KindComment, "", line))
		case trimmed == "}":
			if len(stack) == 1 {
				return nil, &formats.ParseError{File: file, Line: i + 1, Msg: `unexpected "}"`}
			}
			sec := stack[len(stack)-1]
			sec.SetAttr(AttrCloseIndent, indent)
			if trailing != "" {
				sec.SetAttr(AttrCloseTrailing, trailing)
			}
			stack = stack[:len(stack)-1]
		case strings.HasSuffix(trimmed, "{"):
			if len(stack) > MaxDepth {
				return nil, &formats.ParseError{File: file, Line: i + 1, Msg: "blocks nested too deeply"}
			}
			inner := strings.TrimRight(trimmed[:len(trimmed)-1], " \t")
			name, arg := splitFirstWord(inner)
			if name == "" {
				return nil, &formats.ParseError{File: file, Line: i + 1, Msg: "block without a directive name"}
			}
			sec := confnode.New(confnode.KindSection, name)
			if arg != "" {
				sec.SetAttr(formats.AttrArg, arg)
			}
			// Always record the indent (even empty) so serialization
			// distinguishes parsed nodes from mutation-created ones, which
			// get depth-based default indentation.
			sec.SetAttr(formats.AttrIndent, indent)
			if trailing != "" {
				sec.SetAttr(formats.AttrTrailing, trailing)
			}
			top.Append(sec)
			stack = append(stack, sec)
		case strings.HasSuffix(trimmed, ";"):
			d := parseDirective(indent, trimmed)
			if trailing != "" {
				d.SetAttr(formats.AttrTrailing, trailing)
			}
			top.Append(d)
		default:
			name, _ := splitFirstWord(strings.TrimSpace(rest))
			return nil, &formats.ParseError{File: file, Line: i + 1,
				Msg: `directive "` + name + `" is not terminated by ";"`}
		}
	}
	if len(stack) != 1 {
		return nil, &formats.ParseError{File: file, Line: 0,
			Msg: `unexpected end of file, expecting "}" (unclosed block "` + stack[len(stack)-1].Name + `")`}
	}
	return doc, nil
}

// parseDirective parses "name args…;" (trimmed already ends in ';').
func parseDirective(indent, trimmed string) *confnode.Node {
	body := strings.TrimRight(trimmed[:len(trimmed)-1], " \t")
	name, rest := splitFirstWord(body)
	d := confnode.NewValued(confnode.KindDirective, name, rest)
	if rest != "" {
		d.SetAttr(formats.AttrSep, body[len(name):len(body)-len(rest)])
	} else {
		d.SetAttr(formats.AttrSep, "")
	}
	d.SetAttr(formats.AttrIndent, indent)
	return d
}

// splitTrailing separates a trailing '#' comment from the code part of a
// line. Only a '#' after the directive's terminating ';' (or a lone '}')
// starts a comment; a '#' inside the argument text is value content, as
// in nginx's own lexer a bare '#' mid-token does not open a comment for
// our purposes (values are raw text here). The returned trailing part
// includes the '#' and any whitespace immediately before it.
func splitTrailing(s string) (body, trailing string) {
	for i := 0; i < len(s); i++ {
		if s[i] != '#' {
			continue
		}
		code := strings.TrimRight(s[:i], " \t")
		if code == "" || code == "}" || strings.HasSuffix(code, ";") || strings.HasSuffix(code, "{") {
			start := i
			for start > 0 && (s[start-1] == ' ' || s[start-1] == '\t') {
				start--
			}
			return s[:start], s[start:]
		}
	}
	return s, ""
}

// splitFirstWord splits "name args…" at the first whitespace run.
func splitFirstWord(s string) (first, rest string) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimLeft(s[i:], " \t")
}

// Serialize implements formats.Format.
func (Format) Serialize(root *confnode.Node) ([]byte, error) {
	var b bytes.Buffer
	if err := (Format{}).SerializeTo(&b, root); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// SerializeTo implements formats.BufferedFormat.
func (Format) SerializeTo(b *bytes.Buffer, root *confnode.Node) error {
	writeItems(b, root.Children(), 0)
	return nil
}

func writeItems(b *bytes.Buffer, items []*confnode.Node, depth int) {
	for _, n := range items {
		switch n.Kind {
		case confnode.KindBlank:
			b.WriteByte('\n')
		case confnode.KindComment:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		case confnode.KindSection:
			indent := n.AttrDefault(formats.AttrIndent, strings.Repeat("    ", depth))
			b.WriteString(indent)
			b.WriteString(n.Name)
			if arg, ok := n.Attr(formats.AttrArg); ok && arg != "" {
				b.WriteByte(' ')
				b.WriteString(arg)
			}
			b.WriteString(" {")
			b.WriteString(n.AttrDefault(formats.AttrTrailing, ""))
			b.WriteByte('\n')
			writeItems(b, n.Children(), depth+1)
			b.WriteString(n.AttrDefault(AttrCloseIndent, indent))
			b.WriteByte('}')
			b.WriteString(n.AttrDefault(AttrCloseTrailing, ""))
			b.WriteByte('\n')
		case confnode.KindDirective:
			indent := n.AttrDefault(formats.AttrIndent, strings.Repeat("    ", depth))
			b.WriteString(indent)
			b.WriteString(n.Name)
			if n.Value != "" {
				sep := n.AttrDefault(formats.AttrSep, " ")
				if sep == "" {
					sep = " "
				}
				b.WriteString(sep)
				b.WriteString(n.Value)
			}
			b.WriteByte(';')
			b.WriteString(n.AttrDefault(formats.AttrTrailing, ""))
			b.WriteByte('\n')
		default:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		}
	}
}

func leadingWS(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] != ' ' && s[i] != '\t' {
			return s[:i]
		}
	}
	return s
}

func splitLines(data []byte) []string {
	if len(data) == 0 {
		return nil
	}
	s := strings.TrimSuffix(string(data), "\n")
	if s == "" {
		return []string{""}
	}
	return strings.Split(s, "\n")
}
