// Package ini parses and serializes MySQL-style INI configuration files:
// "[section]" headers, "name = value" directives (value optional),
// comments starting with '#' or ';'. This is the format of my.cnf, the
// shared configuration file of the MySQL server and its auxiliary tools
// (paper §5.1).
package ini

import (
	"bytes"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

// Format implements formats.Format for INI files.
type Format struct{}

var _ formats.BufferedFormat = Format{}

// Name implements formats.Format.
func (Format) Name() string { return "ini" }

// Parse implements formats.Format. The resulting tree has KindSection
// children for each "[name]" header, with KindDirective children;
// directives before any header are direct children of the document.
// Comments and blank lines are preserved as KindComment/KindBlank nodes in
// place.
func (Format) Parse(file string, data []byte) (*confnode.Node, error) {
	doc := confnode.New(confnode.KindDocument, file)
	current := doc // section nodes get appended; directives go to current
	lines := splitLines(data)
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "":
			current.Append(confnode.New(confnode.KindBlank, ""))
		case strings.HasPrefix(trimmed, "#") || strings.HasPrefix(trimmed, ";"):
			current.Append(confnode.NewValued(confnode.KindComment, "", line))
		case strings.HasPrefix(trimmed, "["):
			end := strings.IndexByte(trimmed, ']')
			if end < 0 {
				return nil, &formats.ParseError{File: file, Line: i + 1, Msg: "unterminated section header"}
			}
			name := trimmed[1:end]
			sec := confnode.New(confnode.KindSection, name)
			if indent := leadingWS(line); indent != "" {
				sec.SetAttr(formats.AttrIndent, indent)
			}
			doc.Append(sec)
			current = sec
		default:
			current.Append(parseDirective(line))
		}
	}
	return doc, nil
}

// parseDirective splits "name sep value" keeping the separator text so the
// line round-trips byte-identically.
func parseDirective(line string) *confnode.Node {
	indent := leadingWS(line)
	rest := line[len(indent):]
	eq := strings.IndexByte(rest, '=')
	var d *confnode.Node
	if eq < 0 {
		// Valueless directive (e.g. "quick" in [mysqldump]); MySQL accepts
		// these as boolean flags.
		name := strings.TrimRight(rest, " \t")
		d = confnode.NewValued(confnode.KindDirective, name, "")
		if trail := rest[len(name):]; trail != "" {
			d.SetAttr(formats.AttrTrailing, trail)
		}
		d.SetAttr(formats.AttrSep, "")
	} else {
		name := strings.TrimRight(rest[:eq], " \t")
		afterEq := rest[eq+1:]
		value := strings.TrimLeft(afterEq, " \t")
		sep := rest[len(name) : len(rest)-len(value)]
		trailWS := value[len(strings.TrimRight(value, " \t")):]
		value = strings.TrimRight(value, " \t")
		d = confnode.NewValued(confnode.KindDirective, name, value)
		d.SetAttr(formats.AttrSep, sep)
		if trailWS != "" {
			d.SetAttr(formats.AttrTrailing, trailWS)
		}
	}
	if indent != "" {
		d.SetAttr(formats.AttrIndent, indent)
	}
	return d
}

// Serialize implements formats.Format.
func (Format) Serialize(root *confnode.Node) ([]byte, error) {
	var b bytes.Buffer
	writeItems(&b, root.Children(), true)
	return b.Bytes(), nil
}

// SerializeTo implements formats.BufferedFormat.
func (Format) SerializeTo(b *bytes.Buffer, root *confnode.Node) error {
	writeItems(b, root.Children(), true)
	return nil
}

func writeItems(b *bytes.Buffer, items []*confnode.Node, topLevel bool) {
	for _, n := range items {
		switch n.Kind {
		case confnode.KindBlank:
			b.WriteByte('\n')
		case confnode.KindComment:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		case confnode.KindSection:
			b.WriteString(n.AttrDefault(formats.AttrIndent, ""))
			b.WriteByte('[')
			b.WriteString(n.Name)
			b.WriteString("]\n")
			writeItems(b, n.Children(), false)
		case confnode.KindDirective:
			writeDirective(b, n)
		default:
			// Nodes of unexpected kinds (possible after exotic mutations)
			// serialize as their value, which keeps the fault visible to
			// the SUT instead of silently dropping it.
			b.WriteString(n.Value)
			b.WriteByte('\n')
		}
	}
	_ = topLevel
}

func writeDirective(b *bytes.Buffer, n *confnode.Node) {
	b.WriteString(n.AttrDefault(formats.AttrIndent, ""))
	b.WriteString(n.Name)
	sep, hasSep := n.Attr(formats.AttrSep)
	switch {
	case n.Value != "":
		if !hasSep || sep == "" {
			sep = formats.DefaultSep
		}
		b.WriteString(sep)
		b.WriteString(n.Value)
	case hasSep && sep != "":
		// A directive whose value was mutated away keeps its separator:
		// "name =" is exactly what the operator's file would contain.
		b.WriteString(sep)
	}
	b.WriteString(n.AttrDefault(formats.AttrTrailing, ""))
	b.WriteByte('\n')
}

func leadingWS(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] != ' ' && s[i] != '\t' {
			return s[:i]
		}
	}
	return s
}

// splitLines splits on '\n', dropping a final empty fragment so files with
// and without trailing newlines parse identically; Serialize always emits
// a trailing newline.
func splitLines(data []byte) []string {
	if len(data) == 0 {
		return nil
	}
	s := string(data)
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return []string{""}
	}
	return strings.Split(s, "\n")
}
