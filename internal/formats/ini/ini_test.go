package ini

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

const sample = `# MySQL default configuration
[mysqld]
port = 3306
key_buffer_size=16M
skip-external-locking

[mysqldump]
quick
max_allowed_packet = 16M
`

func TestParseStructure(t *testing.T) {
	doc, err := Format{}.Parse("my.cnf", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Kind != confnode.KindDocument || doc.Name != "my.cnf" {
		t.Errorf("root = %s", doc)
	}
	secs := doc.ChildrenByKind(confnode.KindSection)
	if len(secs) != 2 {
		t.Fatalf("sections = %d, want 2", len(secs))
	}
	if secs[0].Name != "mysqld" || secs[1].Name != "mysqldump" {
		t.Errorf("section names = %q, %q", secs[0].Name, secs[1].Name)
	}
	dirs := secs[0].ChildrenByKind(confnode.KindDirective)
	if len(dirs) != 3 {
		t.Fatalf("mysqld directives = %d, want 3", len(dirs))
	}
	if dirs[0].Name != "port" || dirs[0].Value != "3306" {
		t.Errorf("dir0 = %s", dirs[0])
	}
	if sep, _ := dirs[0].Attr(formats.AttrSep); sep != " = " {
		t.Errorf("port sep = %q", sep)
	}
	if sep, _ := dirs[1].Attr(formats.AttrSep); sep != "=" {
		t.Errorf("key_buffer_size sep = %q", sep)
	}
	if dirs[2].Name != "skip-external-locking" || dirs[2].Value != "" {
		t.Errorf("valueless directive = %s", dirs[2])
	}
	// Comment preserved at document level.
	if doc.Child(0).Kind != confnode.KindComment {
		t.Error("leading comment lost")
	}
}

func TestRoundTripIdentity(t *testing.T) {
	doc, err := Format{}.Parse("my.cnf", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != sample {
		t.Errorf("round trip mismatch:\nwant: %q\ngot:  %q", sample, out)
	}
}

func TestRoundTripVariants(t *testing.T) {
	cases := []string{
		"",
		"\n",
		"a=1\n",
		"a = 1\n",
		"a =1\n",
		"a= 1\n",
		"  indented = x\n",
		"[s]\n",
		"; semicolon comment\n[s]\nflag\n",
		"top_level = before_any_section\n[s]\nx=1\n",
		"a = value with spaces  \n",
		"[s]\n\n\n[t]\n",
	}
	for _, in := range cases {
		doc, err := Format{}.Parse("f", []byte(in))
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		out, err := Format{}.Serialize(doc)
		if err != nil {
			t.Errorf("Serialize(%q): %v", in, err)
			continue
		}
		want := in
		if want != "" && !strings.HasSuffix(want, "\n") {
			want += "\n"
		}
		if string(out) != want {
			t.Errorf("round trip %q -> %q", in, out)
		}
	}
}

func TestParseNoTrailingNewline(t *testing.T) {
	doc, err := Format{}.Parse("f", []byte("[s]\na=1"))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Format{}.Serialize(doc)
	if string(out) != "[s]\na=1\n" {
		t.Errorf("got %q", out)
	}
}

func TestParseUnterminatedSection(t *testing.T) {
	_, err := Format{}.Parse("f", []byte("[mysqld\nport=1\n"))
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *formats.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 1 || pe.File != "f" {
		t.Errorf("ParseError = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "f:1:") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestSerializeMutatedDirective(t *testing.T) {
	// A directive created by a mutation (no attrs) serializes with the
	// default separator.
	doc := confnode.New(confnode.KindDocument, "f")
	sec := confnode.New(confnode.KindSection, "s")
	sec.Append(confnode.NewValued(confnode.KindDirective, "new_dir", "7"))
	doc.Append(sec)
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "[s]\nnew_dir = 7\n" {
		t.Errorf("got %q", out)
	}
}

func TestSerializeValueRemoved(t *testing.T) {
	// Typo omission can empty a 1-char value: "a = 1" becomes "a = ".
	doc, _ := Format{}.Parse("f", []byte("a = 1\n"))
	doc.Child(0).Value = ""
	out, _ := Format{}.Serialize(doc)
	if string(out) != "a = \n" {
		t.Errorf("got %q", out)
	}
}

func TestSerializeUnknownKind(t *testing.T) {
	doc := confnode.New(confnode.KindDocument, "f")
	doc.Append(confnode.NewValued(confnode.KindWord, "", "stray-token"))
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "stray-token\n" {
		t.Errorf("got %q", out)
	}
}

func TestFormatName(t *testing.T) {
	if (Format{}).Name() != "ini" {
		t.Error("wrong name")
	}
}

// Property: parse∘serialize∘parse is stable (serialize(parse(x)) parses to
// an equal tree).
func TestPropertyParseSerializeStable(t *testing.T) {
	lines := []string{
		"[mysqld]", "[a b]", "port = 3306", "x=1", "flag", "# c", "; c", "",
		"  y = 2", "weird == value", "tab\t=\t3",
	}
	f := func(picks []uint8) bool {
		var in strings.Builder
		for _, p := range picks {
			in.WriteString(lines[int(p)%len(lines)])
			in.WriteByte('\n')
		}
		doc, err := Format{}.Parse("f", []byte(in.String()))
		if err != nil {
			return true // malformed input out of scope
		}
		out, err := Format{}.Serialize(doc)
		if err != nil {
			return false
		}
		doc2, err := Format{}.Parse("f", out)
		if err != nil {
			return false
		}
		out2, err := Format{}.Serialize(doc2)
		if err != nil {
			return false
		}
		return doc.Equal(doc2) && string(out) == string(out2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
