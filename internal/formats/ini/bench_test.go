package ini

import "testing"

func BenchmarkParse(b *testing.B) {
	data := []byte(sample)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (Format{}).Parse("my.cnf", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	doc, err := (Format{}).Parse("my.cnf", []byte(sample))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Format{}).Serialize(doc); err != nil {
			b.Fatal(err)
		}
	}
}
