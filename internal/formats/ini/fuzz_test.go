package ini

import "testing"

// FuzzParseSerialize checks the stability property on arbitrary input:
// whatever parses must serialize and re-parse to an equal tree.
func FuzzParseSerialize(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte("[s]\nx=1\n"))
	f.Add([]byte("a = b = c\n"))
	f.Add([]byte("[\x00]\n"))
	f.Add([]byte("=\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Format{}.Parse("f", data)
		if err != nil {
			return
		}
		out, err := Format{}.Serialize(doc)
		if err != nil {
			t.Fatalf("Serialize after successful Parse: %v", err)
		}
		doc2, err := Format{}.Parse("f", out)
		if err != nil {
			t.Fatalf("re-Parse of serialized output: %v\n%q", err, out)
		}
		if !doc.Equal(doc2) {
			t.Fatalf("parse∘serialize unstable:\nin: %q\nout: %q", data, out)
		}
	})
}
