// Package kv parses and serializes Postgres-style flat configuration
// files: one "name = value" directive per line (the '=' is optional, as in
// postgresql.conf), '#' comments, no sections. The document's directives
// are direct children of the root — Postgres's configuration has only one
// main section (paper §5.1).
package kv

import (
	"bytes"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

// Format implements formats.Format for flat key-value files.
type Format struct{}

var _ formats.BufferedFormat = Format{}

// Name implements formats.Format.
func (Format) Name() string { return "kv" }

// Parse implements formats.Format. Trailing '#' comments on directive
// lines are preserved in the AttrTrailing attribute; quoted values keep
// their quotes as part of the value text (a typo can therefore corrupt a
// quote character, exactly as in a real file).
func (Format) Parse(file string, data []byte) (*confnode.Node, error) {
	doc := confnode.New(confnode.KindDocument, file)
	for _, line := range splitLines(data) {
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "":
			doc.Append(confnode.New(confnode.KindBlank, ""))
		case strings.HasPrefix(trimmed, "#"):
			doc.Append(confnode.NewValued(confnode.KindComment, "", line))
		default:
			doc.Append(parseDirective(line))
		}
	}
	return doc, nil
}

func parseDirective(line string) *confnode.Node {
	indent := leadingWS(line)
	rest := line[len(indent):]

	// Separate a trailing comment, respecting single quotes ('' escapes a
	// quote inside a quoted value, which cannot start a comment).
	body, trailing := splitTrailingComment(rest)

	wsEnd := body[len(strings.TrimRight(body, " \t")):]
	body = strings.TrimRight(body, " \t")

	var name, sep, value string
	if eq := strings.IndexByte(body, '='); eq >= 0 {
		name = strings.TrimRight(body[:eq], " \t")
		value = strings.TrimLeft(body[eq+1:], " \t")
		sep = body[len(name) : len(body)-len(value)]
	} else if sp := strings.IndexAny(body, " \t"); sp >= 0 {
		// '=' is optional in postgresql.conf: "name value".
		name = body[:sp]
		value = strings.TrimLeft(body[sp:], " \t")
		sep = body[len(name) : len(body)-len(value)]
	} else {
		name = body
	}

	d := confnode.NewValued(confnode.KindDirective, name, value)
	d.SetAttr(formats.AttrSep, sep)
	if indent != "" {
		d.SetAttr(formats.AttrIndent, indent)
	}
	if trailing != "" || wsEnd != "" {
		d.SetAttr(formats.AttrTrailing, wsEnd+trailing)
	}
	return d
}

// splitTrailingComment splits "body # comment" at the first '#' outside
// single quotes. The returned trailing part includes the '#' and any
// whitespace immediately before it.
func splitTrailingComment(s string) (body, trailing string) {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			inQuote = !inQuote
		case '#':
			if !inQuote {
				start := i
				for start > 0 && (s[start-1] == ' ' || s[start-1] == '\t') {
					start--
				}
				return s[:start], s[start:]
			}
		}
	}
	return s, ""
}

// Serialize implements formats.Format.
func (Format) Serialize(root *confnode.Node) ([]byte, error) {
	var b bytes.Buffer
	if err := (Format{}).SerializeTo(&b, root); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// SerializeTo implements formats.BufferedFormat.
func (Format) SerializeTo(b *bytes.Buffer, root *confnode.Node) error {
	for _, n := range root.Children() {
		switch n.Kind {
		case confnode.KindBlank:
			b.WriteByte('\n')
		case confnode.KindComment:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		case confnode.KindDirective:
			b.WriteString(n.AttrDefault(formats.AttrIndent, ""))
			b.WriteString(n.Name)
			if n.Value != "" {
				sep := n.AttrDefault(formats.AttrSep, formats.DefaultSep)
				if sep == "" {
					sep = formats.DefaultSep
				}
				b.WriteString(sep)
				b.WriteString(n.Value)
			} else if sep, ok := n.Attr(formats.AttrSep); ok && strings.Contains(sep, "=") {
				b.WriteString(sep)
			}
			b.WriteString(n.AttrDefault(formats.AttrTrailing, ""))
			b.WriteByte('\n')
		case confnode.KindSection:
			// kv files have no sections; a section arriving here is a
			// structural fault (e.g. borrowed from another program's
			// format). Serialize its directives; the header itself is
			// written as an INI-style line so the fault reaches the SUT.
			b.WriteString("[" + n.Name + "]\n")
			for _, c := range n.Children() {
				if c.Kind == confnode.KindDirective {
					b.WriteString(c.Name)
					if c.Value != "" {
						b.WriteString(c.AttrDefault(formats.AttrSep, formats.DefaultSep))
						b.WriteString(c.Value)
					}
					b.WriteByte('\n')
				}
			}
		default:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		}
	}
	return nil
}

func leadingWS(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] != ' ' && s[i] != '\t' {
			return s[:i]
		}
	}
	return s
}

func splitLines(data []byte) []string {
	if len(data) == 0 {
		return nil
	}
	s := strings.TrimSuffix(string(data), "\n")
	if s == "" {
		return []string{""}
	}
	return strings.Split(s, "\n")
}
