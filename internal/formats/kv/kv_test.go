package kv

import (
	"strings"
	"testing"
	"testing/quick"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

const sample = `# PostgreSQL configuration
max_connections = 100
shared_buffers = 32MB
listen_addresses = 'localhost' # what to listen on
log_destination 'stderr'
fsync = on

#commented_out = 1
`

func TestParseStructure(t *testing.T) {
	doc, err := Format{}.Parse("postgresql.conf", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	dirs := doc.ChildrenByKind(confnode.KindDirective)
	if len(dirs) != 5 {
		t.Fatalf("directives = %d, want 5", len(dirs))
	}
	if dirs[0].Name != "max_connections" || dirs[0].Value != "100" {
		t.Errorf("dir0 = %s", dirs[0])
	}
	// Trailing comment preserved separately from value.
	if dirs[2].Name != "listen_addresses" || dirs[2].Value != "'localhost'" {
		t.Errorf("dir2 = %s", dirs[2])
	}
	if trail, _ := dirs[2].Attr(formats.AttrTrailing); !strings.Contains(trail, "# what to listen on") {
		t.Errorf("trailing = %q", trail)
	}
	// '=' optional.
	if dirs[3].Name != "log_destination" || dirs[3].Value != "'stderr'" {
		t.Errorf("dir3 = %s", dirs[3])
	}
	// No sections at all.
	if len(doc.ChildrenByKind(confnode.KindSection)) != 0 {
		t.Error("kv file should have no sections")
	}
}

func TestRoundTripIdentity(t *testing.T) {
	doc, err := Format{}.Parse("postgresql.conf", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != sample {
		t.Errorf("round trip mismatch:\nwant: %q\ngot:  %q", sample, out)
	}
}

func TestRoundTripVariants(t *testing.T) {
	cases := []string{
		"",
		"a = 1\n",
		"a=1\n",
		"a 1\n",
		"a\t1\n",
		"a = 'x y z'\n",
		"a = 'quoted # not comment'\n",
		"a = 1 # trailing\n",
		"bare_name\n",
		"  indented = 1\n",
		"# only comment\n",
		"\n",
	}
	for _, in := range cases {
		doc, err := Format{}.Parse("f", []byte(in))
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		out, err := Format{}.Serialize(doc)
		if err != nil {
			t.Errorf("Serialize(%q): %v", in, err)
			continue
		}
		if string(out) != in {
			t.Errorf("round trip %q -> %q", in, out)
		}
	}
}

func TestQuoteAwareTrailingComment(t *testing.T) {
	doc, err := Format{}.Parse("f", []byte("a = 'has # inside' # real comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	d := doc.Child(0)
	if d.Value != "'has # inside'" {
		t.Errorf("value = %q", d.Value)
	}
	if trail, _ := d.Attr(formats.AttrTrailing); !strings.Contains(trail, "# real comment") {
		t.Errorf("trailing = %q", trail)
	}
}

func TestSerializeMutatedDirective(t *testing.T) {
	doc := confnode.New(confnode.KindDocument, "f")
	doc.Append(confnode.NewValued(confnode.KindDirective, "work_mem", "4MB"))
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "work_mem = 4MB\n" {
		t.Errorf("got %q", out)
	}
}

func TestSerializeForeignSection(t *testing.T) {
	// A structural fault can move an INI-style section into a kv file; the
	// serializer must emit it so the SUT sees the fault.
	doc := confnode.New(confnode.KindDocument, "f")
	sec := confnode.New(confnode.KindSection, "mysqld")
	sec.Append(confnode.NewValued(confnode.KindDirective, "port", "3306"))
	doc.Append(sec)
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "[mysqld]") || !strings.Contains(string(out), "port = 3306") {
		t.Errorf("got %q", out)
	}
}

func TestEmptyValueKeepsEquals(t *testing.T) {
	doc, _ := Format{}.Parse("f", []byte("a = 1\n"))
	doc.Child(0).Value = ""
	out, _ := Format{}.Serialize(doc)
	if string(out) != "a = \n" {
		t.Errorf("got %q", out)
	}
}

func TestFormatName(t *testing.T) {
	if (Format{}).Name() != "kv" {
		t.Error("wrong name")
	}
}

func TestPropertyParseSerializeStable(t *testing.T) {
	lines := []string{
		"a = 1", "b 2", "c='x'", "# comment", "", "d = 'a # b' # c",
		"bare", "  e = 5  ", "f == 6",
	}
	f := func(picks []uint8) bool {
		var in strings.Builder
		for _, p := range picks {
			in.WriteString(lines[int(p)%len(lines)])
			in.WriteByte('\n')
		}
		doc, err := Format{}.Parse("f", []byte(in.String()))
		if err != nil {
			return true
		}
		out, err := Format{}.Serialize(doc)
		if err != nil {
			return false
		}
		doc2, err := Format{}.Parse("f", out)
		if err != nil {
			return false
		}
		return doc.Equal(doc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
