package zonefile

import "testing"

// FuzzParseSerialize checks parse∘serialize stability on arbitrary input.
func FuzzParseSerialize(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte("$TTL 3600\nexample.com. 600 IN A 192.0.2.1\n"))
	f.Add([]byte("a MX 10 mail.example.com.\n"))
	f.Add([]byte("; just a comment\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Format{}.Parse("f", data)
		if err != nil {
			return
		}
		out, err := Format{}.Serialize(doc)
		if err != nil {
			t.Fatalf("Serialize after successful Parse: %v", err)
		}
		doc2, err := Format{}.Parse("f", out)
		if err != nil {
			t.Fatalf("re-Parse: %v\n%q", err, out)
		}
		if !doc.Equal(doc2) {
			t.Fatalf("unstable:\nin: %q\nout: %q", data, out)
		}
	})
}
