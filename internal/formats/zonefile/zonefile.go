// Package zonefile parses and serializes DNS master zone files (RFC 1035
// presentation format) for the record types the paper's zones use: SOA,
// NS, A, CNAME, MX, PTR, TXT, RP and HINFO. $TTL and $ORIGIN directives
// are supported; multi-line records (parenthesized SOA) and owner-name
// inheritance are not — the shipped zones use the explicit one-line form.
package zonefile

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

// Attribute keys used on record nodes.
const (
	// AttrType holds the RR type mnemonic ("A", "MX", …).
	AttrType = "type"
	// AttrTTL holds the record's explicit TTL, if present.
	AttrTTL = "ttl"
	// AttrClass holds the record's explicit class, if present ("IN").
	AttrClass = "class"
)

// recordTypes are the RR types the parser recognizes.
var recordTypes = map[string]bool{
	"SOA": true, "NS": true, "A": true, "CNAME": true, "MX": true,
	"PTR": true, "TXT": true, "RP": true, "HINFO": true,
}

// Format implements formats.Format for zone master files.
type Format struct{}

var _ formats.BufferedFormat = Format{}

// Name implements formats.Format.
func (Format) Name() string { return "zonefile" }

// Parse implements formats.Format. $TTL/$ORIGIN become KindDirective
// nodes; records become KindRecord nodes with the owner as written in
// Name, the type/ttl/class in attributes, and the raw rdata in Value.
func (Format) Parse(file string, data []byte) (*confnode.Node, error) {
	doc := confnode.New(confnode.KindDocument, file)
	for i, line := range splitLines(data) {
		t := strings.TrimSpace(line)
		switch {
		case t == "":
			doc.Append(confnode.New(confnode.KindBlank, ""))
		case strings.HasPrefix(t, ";"):
			doc.Append(confnode.NewValued(confnode.KindComment, "", line))
		case strings.HasPrefix(t, "$"):
			fields := strings.Fields(t)
			if len(fields) != 2 {
				return nil, &formats.ParseError{File: file, Line: i + 1,
					Msg: "malformed control directive " + t}
			}
			doc.Append(confnode.NewValued(confnode.KindDirective, strings.ToUpper(fields[0]), fields[1]))
		case line[0] == ' ' || line[0] == '\t':
			return nil, &formats.ParseError{File: file, Line: i + 1,
				Msg: "owner-name inheritance not supported; write the owner explicitly"}
		default:
			rec, err := parseRecord(t)
			if err != nil {
				return nil, &formats.ParseError{File: file, Line: i + 1, Msg: err.Error()}
			}
			doc.Append(rec)
		}
	}
	return doc, nil
}

// parseRecord parses "owner [ttl] [class] TYPE rdata".
func parseRecord(line string) (*confnode.Node, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return nil, fmt.Errorf("record %q needs owner, type and data", line)
	}
	owner := fields[0]
	rest := fields[1:]

	var ttl, class string
	// Optional TTL.
	if _, err := strconv.Atoi(rest[0]); err == nil {
		ttl = rest[0]
		rest = rest[1:]
	}
	// Optional class.
	if len(rest) > 0 && strings.EqualFold(rest[0], "IN") {
		class = strings.ToUpper(rest[0])
		rest = rest[1:]
	}
	if len(rest) < 2 {
		return nil, fmt.Errorf("record %q missing type or data", line)
	}
	typ := strings.ToUpper(rest[0])
	if !recordTypes[typ] {
		return nil, fmt.Errorf("unknown record type %q", rest[0])
	}
	rdata := strings.Join(rest[1:], " ")
	rec := confnode.NewValued(confnode.KindRecord, owner, rdata)
	rec.SetAttr(AttrType, typ)
	if ttl != "" {
		rec.SetAttr(AttrTTL, ttl)
	}
	if class != "" {
		rec.SetAttr(AttrClass, class)
	}
	return rec, nil
}

// Serialize implements formats.Format, emitting fields separated by single
// tabs — the normalized form the shipped zones use, so unmutated
// configurations round-trip byte-identically.
func (Format) Serialize(root *confnode.Node) ([]byte, error) {
	var b bytes.Buffer
	if err := (Format{}).SerializeTo(&b, root); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// SerializeTo implements formats.BufferedFormat.
func (Format) SerializeTo(b *bytes.Buffer, root *confnode.Node) error {
	for _, n := range root.Children() {
		switch n.Kind {
		case confnode.KindBlank:
			b.WriteByte('\n')
		case confnode.KindComment:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		case confnode.KindDirective:
			b.WriteString(n.Name)
			b.WriteByte(' ')
			b.WriteString(n.Value)
			b.WriteByte('\n')
		case confnode.KindRecord:
			b.WriteString(n.Name)
			if ttl, ok := n.Attr(AttrTTL); ok {
				b.WriteByte('\t')
				b.WriteString(ttl)
			}
			if class, ok := n.Attr(AttrClass); ok {
				b.WriteByte('\t')
				b.WriteString(class)
			}
			b.WriteByte('\t')
			b.WriteString(n.AttrDefault(AttrType, "A"))
			b.WriteByte('\t')
			b.WriteString(n.Value)
			b.WriteByte('\n')
		default:
			b.WriteString(n.Value)
			b.WriteByte('\n')
		}
	}
	return nil
}

func splitLines(data []byte) []string {
	if len(data) == 0 {
		return nil
	}
	s := strings.TrimSuffix(string(data), "\n")
	if s == "" {
		return []string{""}
	}
	return strings.Split(s, "\n")
}
