package zonefile

import (
	"errors"
	"strings"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/formats"
)

const sample = `; example.com zone
$TTL 3600
$ORIGIN example.com.
@	IN	SOA	ns1.example.com. hostmaster.example.com. 2008060101 3600 900 604800 86400
@	IN	NS	ns1.example.com.
ns1	IN	A	192.0.2.1
www	3600	IN	A	192.0.2.10
mail	IN	A	192.0.2.20
ftp	IN	CNAME	www
@	IN	MX	10 mail
@	IN	TXT	"v=spf1 mx -all"
www	IN	RP	hostmaster.example.com. txt.example.com.
www	IN	HINFO	"i386" "linux"
`

func TestParseStructure(t *testing.T) {
	doc, err := Format{}.Parse("example.zone", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	recs := doc.ChildrenByKind(confnode.KindRecord)
	if len(recs) != 10 {
		t.Fatalf("records = %d, want 10", len(recs))
	}
	dirs := doc.ChildrenByKind(confnode.KindDirective)
	if len(dirs) != 2 || dirs[0].Name != "$TTL" || dirs[1].Name != "$ORIGIN" {
		t.Errorf("directives = %v", dirs)
	}
	soa := recs[0]
	if soa.Name != "@" || soa.AttrDefault(AttrType, "") != "SOA" {
		t.Errorf("soa = %s", soa)
	}
	if !strings.HasPrefix(soa.Value, "ns1.example.com.") {
		t.Errorf("soa data = %q", soa.Value)
	}
	www := recs[3]
	if www.Name != "www" || www.AttrDefault(AttrTTL, "") != "3600" ||
		www.AttrDefault(AttrClass, "") != "IN" || www.Value != "192.0.2.10" {
		t.Errorf("www = %s", www)
	}
}

func TestRoundTripIdentity(t *testing.T) {
	doc, err := Format{}.Parse("example.zone", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != sample {
		t.Errorf("round trip mismatch:\nwant:\n%s\ngot:\n%s", sample, out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"$TTL\n",                  // malformed directive
		"   indented A 1.2.3.4\n", // owner inheritance unsupported
		"www\n",                   // too few fields
		"www IN\n",                // missing data
		"www IN FROB 1.2.3.4\n",   // unknown type
	}
	for _, in := range cases {
		_, err := Format{}.Parse("f", []byte(in))
		if err == nil {
			t.Errorf("Parse(%q) succeeded", in)
			continue
		}
		var pe *formats.ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) error type %T", in, err)
		}
	}
}

func TestOptionalFields(t *testing.T) {
	doc, err := Format{}.Parse("f", []byte("www\tA\t192.0.2.1\nmail\t600\tA\t192.0.2.2\nns\tIN\tNS\tn.example.com.\n"))
	if err != nil {
		t.Fatal(err)
	}
	recs := doc.ChildrenByKind(confnode.KindRecord)
	if _, ok := recs[0].Attr(AttrTTL); ok {
		t.Error("record without TTL should lack attr")
	}
	if _, ok := recs[0].Attr(AttrClass); ok {
		t.Error("record without class should lack attr")
	}
	if ttl, _ := recs[1].Attr(AttrTTL); ttl != "600" {
		t.Errorf("ttl = %q", ttl)
	}
	out, _ := Format{}.Serialize(doc)
	if string(out) != "www\tA\t192.0.2.1\nmail\t600\tA\t192.0.2.2\nns\tIN\tNS\tn.example.com.\n" {
		t.Errorf("got %q", out)
	}
}

func TestSerializeMutatedRecord(t *testing.T) {
	doc := confnode.New(confnode.KindDocument, "f")
	rec := confnode.NewValued(confnode.KindRecord, "x.example.com.", "192.0.2.9")
	rec.SetAttr(AttrType, "A")
	doc.Append(rec)
	out, err := Format{}.Serialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "x.example.com.\tA\t192.0.2.9\n" {
		t.Errorf("got %q", out)
	}
}

func TestFormatName(t *testing.T) {
	if (Format{}).Name() != "zonefile" {
		t.Error("wrong name")
	}
}
