package formats

import (
	"bytes"
	"testing"
)

// FuzzRawParseSerialize checks the pass-through format's identity
// property — trivially true by construction, but fuzzed like every other
// registered codec so the matrix has no unguarded row.
func FuzzRawParseSerialize(f *testing.F) {
	f.Add([]byte("options {\n directory \"/var/named\";\n};\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Raw{}.Parse("f", data)
		if err != nil {
			t.Fatalf("Raw.Parse can never fail: %v", err)
		}
		out, err := Raw{}.Serialize(doc)
		if err != nil {
			t.Fatalf("Serialize: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("not identity: in %q out %q", data, out)
		}
		doc2, err := Raw{}.Parse("f", out)
		if err != nil || !doc.Equal(doc2) {
			t.Fatalf("unstable: %v", err)
		}
	})
}
