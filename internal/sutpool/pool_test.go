package sutpool

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"conferr/internal/suts"
)

// fakeSUT is a scriptable lifecycle-capable system: Start/Reload/
// Validate consult per-call error scripts, and every call is counted so
// tests can assert exactly which path an Instance took.
type fakeSUT struct {
	mu        sync.Mutex
	running   bool
	starts    int
	stops     int
	reloads   int
	validates int

	startErr  error // returned by the next Start
	reloadErr error // returned by the next Reload
	healthErr error // returned by Health while set
}

var (
	_ suts.System        = (*fakeSUT)(nil)
	_ suts.Reloader      = (*fakeSUT)(nil)
	_ suts.Validator     = (*fakeSUT)(nil)
	_ suts.HealthChecker = (*fakeSUT)(nil)
)

func (s *fakeSUT) Name() string              { return "fake" }
func (s *fakeSUT) DefaultConfig() suts.Files { return suts.Files{"f.conf": []byte("a = 1\n")} }

func (s *fakeSUT) Start(suts.Files) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.starts++
	if s.startErr != nil {
		err := s.startErr
		s.startErr = nil
		return err
	}
	s.running = true
	return nil
}

func (s *fakeSUT) Reload(suts.Files) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reloads++
	if s.reloadErr != nil {
		err := s.reloadErr
		s.reloadErr = nil
		if !suts.IsStartupError(err) {
			// A wedge kills the instance.
			s.running = false
		}
		return err
	}
	return nil
}

func (s *fakeSUT) Validate(suts.Files) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.validates++
	return nil
}

func (s *fakeSUT) Stop() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stops++
	s.running = false
	return nil
}

func (s *fakeSUT) Health() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.healthErr != nil {
		return s.healthErr
	}
	if !s.running {
		return errors.New("fake: not running")
	}
	return nil
}

func (s *fakeSUT) setReloadErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reloadErr = err
}

func (s *fakeSUT) setHealthErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.healthErr = err
}

func (s *fakeSUT) counts() (starts, stops, reloads, validates int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.starts, s.stops, s.reloads, s.validates
}

var someFiles = suts.Files{"f.conf": []byte("a = 2\n")}

func TestInstanceReloadWarmChain(t *testing.T) {
	sys := &fakeSUT{}
	c := &Counters{}
	inst := NewInstance(sys, Reload, c)

	// First experiment: cold start, then the engine's Stop keeps it warm.
	if err := inst.Start(someFiles); err != nil {
		t.Fatal(err)
	}
	if err := inst.Stop(); err != nil {
		t.Fatal(err)
	}
	// Second and third experiments ride reloads.
	for i := 0; i < 2; i++ {
		if err := inst.Start(someFiles); err != nil {
			t.Fatal(err)
		}
		if err := inst.Stop(); err != nil {
			t.Fatal(err)
		}
	}
	starts, stops, reloads, _ := sys.counts()
	if starts != 1 || reloads != 2 {
		t.Errorf("starts=%d reloads=%d, want 1 cold start and 2 reloads", starts, reloads)
	}
	if stops != 0 {
		t.Errorf("stops=%d, want 0 — warm instance must keep running", stops)
	}
	snap := c.Snapshot()
	if snap.ColdStarts != 1 || snap.Reloads != 2 {
		t.Errorf("counters %s, want cold-starts=1 reloads=2", snap)
	}
	if err := inst.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if sys.running {
		t.Error("shutdown left the SUT running")
	}
}

func TestInstanceRejectedReloadStaysWarm(t *testing.T) {
	sys := &fakeSUT{}
	inst := NewInstance(sys, Reload, nil)
	if err := inst.Start(someFiles); err != nil {
		t.Fatal(err)
	}
	_ = inst.Stop()

	reject := &suts.StartupError{System: "fake", Msg: "bad config"}
	sys.setReloadErr(reject)
	err := inst.Start(someFiles)
	if !suts.IsStartupError(err) {
		t.Fatalf("rejected reload: err = %v, want the startup error through", err)
	}
	_ = inst.Stop()

	// The rejection must not cost the warmth: the next Start reloads.
	if err := inst.Start(someFiles); err != nil {
		t.Fatal(err)
	}
	starts, stops, reloads, _ := sys.counts()
	if starts != 1 || reloads != 2 || stops != 0 {
		t.Errorf("starts=%d reloads=%d stops=%d, want 1/2/0 — rejection must stay warm",
			starts, reloads, stops)
	}
}

func TestInstanceWedgedReloadColdRestarts(t *testing.T) {
	sys := &fakeSUT{}
	c := &Counters{}
	inst := NewInstance(sys, Reload, c)
	if err := inst.Start(someFiles); err != nil {
		t.Fatal(err)
	}
	_ = inst.Stop()

	sys.setReloadErr(errors.New("fake: reload wedged"))
	// The wedge is invisible to the engine: the same Start call recovers
	// with a cold start on the same files and succeeds.
	if err := inst.Start(someFiles); err != nil {
		t.Fatalf("wedged reload must recover cold, got %v", err)
	}
	starts, stops, reloads, _ := sys.counts()
	if starts != 2 || reloads != 1 || stops != 1 {
		t.Errorf("starts=%d reloads=%d stops=%d, want 2/1/1 — quarantine then cold restart",
			starts, reloads, stops)
	}
	snap := c.Snapshot()
	if snap.Restarts != 1 {
		t.Errorf("counters %s, want restarts=1", snap)
	}
	// Recovery restores the warm chain.
	_ = inst.Stop()
	if err := inst.Start(someFiles); err != nil {
		t.Fatal(err)
	}
	if _, _, reloads, _ := sys.counts(); reloads != 2 {
		t.Errorf("reloads=%d, want 2 — recovered instance must be warm again", reloads)
	}
}

func TestInstanceValidateMode(t *testing.T) {
	sys := &fakeSUT{}
	c := &Counters{}
	inst := NewInstance(sys, Validate, c)
	if !inst.SkipProbes() {
		t.Error("validate-mode instance must skip functional probes")
	}
	for i := 0; i < 3; i++ {
		if err := inst.Start(someFiles); err != nil {
			t.Fatal(err)
		}
		if err := inst.Stop(); err != nil {
			t.Fatal(err)
		}
	}
	starts, _, _, validates := sys.counts()
	if starts != 0 || validates != 3 {
		t.Errorf("starts=%d validates=%d, want 0/3 — validate mode must never boot the SUT",
			starts, validates)
	}
	if snap := c.Snapshot(); snap.Validates != 3 || snap.ColdStarts != 0 {
		t.Errorf("counters %s, want validates=3 cold-starts=0", snap)
	}
}

// plainSUT has no lifecycle capabilities at all.
type plainSUT struct{ fakeSUT }

func (s *plainSUT) Reload(suts.Files) error   { panic("not a reloader") }
func (s *plainSUT) Validate(suts.Files) error { panic("not a validator") }

func TestInstanceFallsBackToCold(t *testing.T) {
	// An Instance over a SUT lacking the mode's capability degrades to
	// plain cold cycles. The embedded methods exist but the capability
	// check happens on interface assertion at construction — use a bare
	// system stripped to the core interface.
	type bare struct{ suts.System }
	sys := &fakeSUT{}
	for _, mode := range []Mode{Reload, Validate} {
		inst := NewInstance(bare{sys}, mode, nil)
		if inst.SkipProbes() {
			t.Errorf("mode %v: SkipProbes on a capability-less SUT", mode)
		}
		if err := inst.Start(someFiles); err != nil {
			t.Fatal(err)
		}
		if err := inst.Stop(); err != nil {
			t.Fatal(err)
		}
	}
	starts, stops, reloads, validates := sys.counts()
	if starts != 2 || stops != 2 || reloads != 0 || validates != 0 {
		t.Errorf("starts=%d stops=%d reloads=%d validates=%d, want 2/2/0/0 cold fallback",
			starts, stops, reloads, validates)
	}
}

func TestPoolLeaseReuseAndClose(t *testing.T) {
	var built []*fakeSUT
	p := New(Reload, nil, func(p *Pool) (*Instance, error) {
		sys := &fakeSUT{}
		built = append(built, sys)
		return p.Instance(sys), nil
	})
	inst, err := p.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(someFiles); err != nil {
		t.Fatal(err)
	}
	_ = inst.Stop()
	if err := inst.Release(); err != nil {
		t.Fatal(err)
	}
	if p.Size() != 1 || p.Idle() != 1 {
		t.Fatalf("size=%d idle=%d, want 1/1", p.Size(), p.Idle())
	}

	// The second lease reuses the warm instance: its next Start reloads.
	inst2, err := p.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if inst2 != inst {
		t.Fatal("second lease built a new instance instead of reusing")
	}
	if err := inst2.Start(someFiles); err != nil {
		t.Fatal(err)
	}
	if starts, _, reloads, _ := built[0].counts(); starts != 1 || reloads != 1 {
		t.Errorf("starts=%d reloads=%d, want 1/1 — reuse must stay warm across leases", starts, reloads)
	}
	_ = inst2.Stop()
	if err := inst2.Release(); err != nil {
		t.Fatal(err)
	}

	snap := p.Counters().Snapshot()
	if snap.Leases != 2 || snap.Reuses != 1 {
		t.Errorf("counters %s, want leases=2 reuses=1", snap)
	}

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if built[0].running {
		t.Error("close left an idle instance running")
	}
	if _, err := p.Lease(); !errors.Is(err, ErrClosed) {
		t.Errorf("lease on closed pool: err = %v, want ErrClosed", err)
	}
}

func TestPoolQuarantinesDirtyLease(t *testing.T) {
	sys := &fakeSUT{}
	p := New(Reload, nil, func(p *Pool) (*Instance, error) {
		return p.Instance(sys), nil
	})
	inst, _ := p.Lease()
	if err := inst.Start(someFiles); err != nil {
		t.Fatal(err)
	}
	_ = inst.Stop() // warm

	// The instance goes bad while leased; returning it must quarantine.
	sys.setHealthErr(errors.New("fake: wedged"))
	if err := inst.Release(); err != nil {
		t.Fatal(err)
	}
	if !sys.running && sys.stops == 0 {
		t.Fatal("quarantine did not stop the dirty instance")
	}
	if p.Idle() != 1 {
		t.Fatalf("idle=%d, want 1 — quarantined instances are reused cold", p.Idle())
	}
	snap := p.Counters().Snapshot()
	if snap.HealthFailures != 1 {
		t.Errorf("counters %s, want health-failures=1", snap)
	}

	// Reuse after quarantine is a cold start, not a reload.
	sys.setHealthErr(nil)
	inst2, _ := p.Lease()
	if err := inst2.Start(someFiles); err != nil {
		t.Fatal(err)
	}
	if starts, _, reloads, _ := sys.counts(); starts != 2 || reloads != 0 {
		t.Errorf("starts=%d reloads=%d, want 2/0 — post-quarantine start must be cold", starts, reloads)
	}
	_ = p.Close()
}

func TestPoolBuildError(t *testing.T) {
	boom := errors.New("no more instances")
	calls := 0
	p := New(Cold, nil, func(p *Pool) (*Instance, error) {
		calls++
		return nil, boom
	})
	if _, err := p.Lease(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want build error through", err)
	}
	if p.Size() != 0 {
		t.Errorf("size=%d, want 0 — failed build must not leak capacity", p.Size())
	}
	if _, err := p.Lease(); !errors.Is(err, boom) || calls != 2 {
		t.Fatalf("second lease: err=%v calls=%d, want a fresh build attempt", err, calls)
	}
}

// TestPoolReleaseAfterClose models a campaign cancelled mid-run: the
// suite tears the pool down while workers still hold leases, and the
// late releases must shut their instances down instead of parking them.
func TestPoolReleaseAfterClose(t *testing.T) {
	sys := &fakeSUT{}
	p := New(Reload, nil, func(p *Pool) (*Instance, error) {
		return p.Instance(sys), nil
	})
	inst, _ := p.Lease()
	if err := inst.Start(someFiles); err != nil {
		t.Fatal(err)
	}
	_ = inst.Stop() // warm while leased
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Release(); err != nil {
		t.Fatal(err)
	}
	if sys.running {
		t.Error("release after close left the instance running")
	}
	if p.Idle() != 0 {
		t.Errorf("idle=%d, want 0 after close", p.Idle())
	}
}

// TestPoolConcurrentLeases hammers Lease/Start/Stop/Release from many
// goroutines; run with -race this is the pool's synchronization proof.
func TestPoolConcurrentLeases(t *testing.T) {
	p := New(Reload, nil, func(p *Pool) (*Instance, error) {
		return p.Instance(&fakeSUT{}), nil
	})
	const goroutines = 8
	const iterations = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				inst, err := p.Lease()
				if err != nil {
					errs <- err
					return
				}
				if err := inst.Start(someFiles); err != nil {
					errs <- err
					return
				}
				if err := inst.Stop(); err != nil {
					errs <- err
					return
				}
				if err := inst.Release(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.Size() > goroutines {
		t.Errorf("pool built %d instances for %d concurrent workers", p.Size(), goroutines)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	snap := p.Counters().Snapshot()
	if want := int64(goroutines * iterations); snap.Leases != want {
		t.Errorf("leases=%d, want %d", snap.Leases, want)
	}
	if snap.Reuses == 0 {
		t.Error("no reuses across 400 leases — pool never recycled")
	}
}

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"", Cold, true},
		{"cold", Cold, true},
		{"reload", Reload, true},
		{"validate", Validate, true},
		{"warm", 0, false},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseMode(%q) succeeded, want error", c.in)
		}
	}
	for _, m := range []Mode{Cold, Reload, Validate} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v: got %v, %v", m, back, err)
		}
	}
}

func TestCountersSnapshotString(t *testing.T) {
	c := &Counters{}
	c.ColdStarts.Add(2)
	c.Reloads.Add(5)
	s := c.Snapshot()
	if s.ColdStarts != 2 || s.Reloads != 5 {
		t.Fatalf("snapshot = %+v", s)
	}
	str := s.String()
	for _, want := range []string{"cold-starts=2", "reloads=5"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
}
