package sutpool

import (
	"fmt"
	"sync/atomic"
)

// Counters tally lifecycle events across every instance wired to them —
// typically one set per pool, shared by all workers. All fields are
// atomics; the zero value is ready to use.
type Counters struct {
	// ColdStarts counts full Start calls on the underlying SUT (cold
	// mode, fallbacks, and recovery restarts alike).
	ColdStarts atomic.Int64
	// Reloads counts warm configuration swaps via suts.Reloader.
	Reloads atomic.Int64
	// Validates counts parse-only checks via suts.Validator.
	Validates atomic.Int64
	// Restarts counts quarantine recoveries: a wedged or unhealthy warm
	// instance torn down and cold-started.
	Restarts atomic.Int64
	// HealthFailures counts warm instances that failed their
	// between-experiments health check.
	HealthFailures atomic.Int64
	// Quarantines counts instances condemned by the engine's phase
	// watchdog: a phase deadline expired, the wedged instance was marked
	// for cold restart and its teardown deferred to whenever the stuck
	// call returns.
	Quarantines atomic.Int64
	// Leases counts Pool.Lease calls; Reuses the subset served from the
	// idle list rather than a fresh build.
	Leases atomic.Int64
	Reuses atomic.Int64
}

// Snapshot is a plain-integer copy of Counters, safe to compare, encode
// and print.
type Snapshot struct {
	ColdStarts     int64 `json:"cold_starts"`
	Reloads        int64 `json:"reloads"`
	Validates      int64 `json:"validates"`
	Restarts       int64 `json:"restarts"`
	HealthFailures int64 `json:"health_failures"`
	Quarantines    int64 `json:"quarantines"`
	Leases         int64 `json:"leases"`
	Reuses         int64 `json:"reuses"`
}

// Snapshot returns the current values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		ColdStarts:     c.ColdStarts.Load(),
		Reloads:        c.Reloads.Load(),
		Validates:      c.Validates.Load(),
		Restarts:       c.Restarts.Load(),
		HealthFailures: c.HealthFailures.Load(),
		Quarantines:    c.Quarantines.Load(),
		Leases:         c.Leases.Load(),
		Reuses:         c.Reuses.Load(),
	}
}

// String formats the snapshot for CLI and bench output.
func (s Snapshot) String() string {
	return fmt.Sprintf("cold-starts=%d reloads=%d validates=%d restarts=%d health-failures=%d quarantines=%d leases=%d reuses=%d",
		s.ColdStarts, s.Reloads, s.Validates, s.Restarts, s.HealthFailures, s.Quarantines, s.Leases, s.Reuses)
}
