package sutpool

import (
	"sync/atomic"

	"conferr/internal/suts"
)

// Instance adapts one suts.System to a lifecycle Mode behind the
// unchanged System interface, so the engine's per-experiment
// Start/Stop calls drive warm reloads or parse-only validation instead
// of full cycles. An Instance is used by one campaign worker at a time
// (the pool's lease discipline); it is not safe for concurrent use.
type Instance struct {
	sys  suts.System
	mode Mode
	c    *Counters
	rel  suts.Reloader       // nil unless sys reloads and mode == Reload
	drel suts.DirtyReloader  // nil unless rel also takes dirty-file sets
	val  suts.Validator      // nil unless sys validates and mode == Validate

	// warm is true while sys is running and the next Start may reload
	// instead of cold-starting. Only ever true in Reload mode with a
	// reload-capable SUT. Atomic not for concurrent lifecycle use (the
	// lease discipline still forbids that) but because the engine's
	// phase watchdog may Quarantine the instance from the campaign
	// goroutine while an abandoned, still-wedged phase call holds it.
	warm atomic.Bool

	pool *Pool

	// Payload carries whatever the pool's builder wants returned with
	// the lease — typically the engine target wrapped around this
	// instance.
	Payload any
}

// NewInstance adapts sys to the given mode. A nil c gets a private
// counter set.
func NewInstance(sys suts.System, mode Mode, c *Counters) *Instance {
	if c == nil {
		c = &Counters{}
	}
	i := &Instance{sys: sys, mode: mode, c: c}
	if mode == Reload {
		i.rel, _ = sys.(suts.Reloader)
		i.drel, _ = sys.(suts.DirtyReloader)
	}
	if mode == Validate {
		i.val, _ = sys.(suts.Validator)
	}
	return i
}

// Managed is implemented by systems already adapted to a lifecycle mode;
// the engine's own wrapping step skips them.
type Managed interface {
	LifecycleMode() Mode
}

// LifecycleMode implements Managed.
func (i *Instance) LifecycleMode() Mode { return i.mode }

// System returns the adapted SUT.
func (i *Instance) System() suts.System { return i.sys }

// Name implements suts.System.
func (i *Instance) Name() string { return i.sys.Name() }

// DefaultConfig implements suts.System.
func (i *Instance) DefaultConfig() suts.Files { return i.sys.DefaultConfig() }

// Addr implements suts.Addressable when the adapted SUT does; it returns
// "" otherwise.
func (i *Instance) Addr() string {
	if a, ok := i.sys.(suts.Addressable); ok {
		return a.Addr()
	}
	return ""
}

// Start implements suts.System, dispatching on the mode. In Validate
// mode with a validating SUT it only parses; in Reload mode with a warm
// reload-capable SUT it swaps the configuration in place, quarantining
// and cold-restarting the instance when the reload wedges it (any
// non-StartupError failure). Everything else — Cold mode, capability
// fallbacks, the first start of a warm chain — is a plain cold start.
func (i *Instance) Start(files suts.Files) error { return i.start(files, nil, false) }

// StartDirty implements suts.DirtyStarter: Start, forwarding the
// engine's dirty-file set to a warm DirtyReloader underneath. Every
// other mode and capability combination degrades to exactly Start.
func (i *Instance) StartDirty(files suts.Files, dirty []string) error {
	return i.start(files, dirty, true)
}

func (i *Instance) start(files suts.Files, dirty []string, haveDirty bool) error {
	if i.mode == Validate && i.val != nil {
		i.c.Validates.Add(1)
		return i.val.Validate(files)
	}
	if i.warm.Load() && i.rel != nil {
		i.c.Reloads.Add(1)
		var err error
		if haveDirty && i.drel != nil {
			err = i.drel.ReloadDirty(files, dirty)
		} else {
			err = i.rel.Reload(files)
		}
		if err == nil || suts.IsStartupError(err) {
			// Applied, or rejected by the SUT's own validation — either
			// way the instance keeps serving (the previous configuration
			// on rejection) and stays warm.
			return err
		}
		// Wedged: tear down and recover with a cold start on the same
		// files, so the experiment's outcome matches cold mode.
		i.warm.Store(false)
		_ = i.sys.Stop()
		i.c.Restarts.Add(1)
	}
	i.c.ColdStarts.Add(1)
	err := i.sys.Start(files)
	i.warm.Store(err == nil && i.mode == Reload && i.rel != nil)
	return err
}

// Stop implements suts.System. A warm instance is health-checked and
// kept running for the next experiment; an unhealthy one is quarantined
// (torn down, so the next Start is cold). Cold instances stop for real.
func (i *Instance) Stop() error {
	if !i.warm.Load() {
		return i.sys.Stop()
	}
	i.healthGate()
	return nil
}

// healthGate quarantines a warm instance that fails its health check.
func (i *Instance) healthGate() {
	h, ok := i.sys.(suts.HealthChecker)
	if !ok {
		return
	}
	if err := h.Health(); err != nil {
		i.c.HealthFailures.Add(1)
		i.warm.Store(false)
		_ = i.sys.Stop()
	}
}

// SkipProbes reports whether functional tests are meaningless for this
// instance's mode: true in Validate mode with a validating SUT, where
// nothing listens after a successful Start.
func (i *Instance) SkipProbes() bool {
	return i.mode == Validate && i.val != nil
}

// Shutdown stops the adapted SUT for real, warm or not.
func (i *Instance) Shutdown() error {
	i.warm.Store(false)
	return i.sys.Stop()
}

// Quarantine marks the instance so its next Start is a cold start
// instead of a warm reload, without touching the underlying system. The
// engine's phase watchdog calls it when a phase deadline expires: the
// wedged system cannot be stopped synchronously (the stuck call still
// owns it), so teardown happens on the watchdog's abandoned runner once
// that call returns, and this flag makes sure no warm-path optimism
// survives the incident.
func (i *Instance) Quarantine() {
	i.warm.Store(false)
	i.c.Quarantines.Add(1)
}

// Release returns the instance to its pool (health-checked; warm
// instances stay warm for the next lease) or, for a pool-less instance,
// shuts it down. The engine calls it on every worker system when a run
// ends.
func (i *Instance) Release() error {
	if i.pool != nil {
		return i.pool.retire(i)
	}
	return i.Shutdown()
}
