// Package sutpool owns SUT instances across experiments instead of
// cold-starting one per injection. It is the layer ROADMAP item 1 calls
// for: BENCH_5's 1M-scenario nginx run spends >95% of its wall time
// starting and tearing down simulated servers while the injection engine
// itself sustains 165k exp/s, so campaigns are SUT-bound, not
// engine-bound.
//
// The package has three pieces. Mode selects the lifecycle an experiment
// drives: Cold (the paper's start/stop-per-experiment engine), Reload
// (warm instances re-configured via suts.Reloader, the `nginx -s reload`
// idiom), and Validate (parse/check-only via suts.Validator, the
// `nginx -t` idiom). Instance adapts one suts.System to the selected
// mode behind the unchanged System interface, with cold-start fallback
// when the capability is missing and quarantine-plus-restart when a
// reload wedges. Pool hands leased instances to campaign workers and
// takes them back health-checked between runs.
package sutpool

import "fmt"

// Mode selects how the engine drives a SUT through one experiment.
type Mode uint8

const (
	// Cold is the paper's engine: Start and Stop once per experiment.
	Cold Mode = iota
	// Reload keeps instances warm and swaps configurations via
	// suts.Reloader, falling back to Cold for SUTs without it.
	Reload
	// Validate checks configurations via suts.Validator without serving;
	// functional tests are skipped. Falls back to Cold for SUTs without
	// it.
	Validate
)

// String returns the mode's flag spelling.
func (m Mode) String() string {
	switch m {
	case Cold:
		return "cold"
	case Reload:
		return "reload"
	case Validate:
		return "validate"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode resolves a -lifecycle flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "cold":
		return Cold, nil
	case "reload":
		return Reload, nil
	case "validate":
		return Validate, nil
	}
	return Cold, fmt.Errorf("sutpool: unknown lifecycle %q (want cold, reload or validate)", s)
}
