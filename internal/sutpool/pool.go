package sutpool

import (
	"errors"
	"sync"

	"conferr/internal/suts"
)

// ErrClosed is returned by Lease on a closed pool.
var ErrClosed = errors.New("sutpool: pool is closed")

// BuildFunc constructs a fresh instance set on demand: typically it
// builds a SUT, adapts it with p.Instance, wraps the engine target
// around the adapter and stores it in Instance.Payload. It runs outside
// the pool lock.
type BuildFunc func(p *Pool) (*Instance, error)

// Pool hands leased SUT instances to campaign workers and takes them
// back between runs. Warm instances are health-checked on return and
// stay warm in the idle list — so consecutive campaigns of a suite skip
// even the first cold start. A lease returned dirty (unhealthy) is
// quarantined: torn down on the spot and reused cold.
type Pool struct {
	mode  Mode
	c     *Counters
	build BuildFunc

	mu     sync.Mutex
	idle   []*Instance
	total  int
	closed bool
}

// New returns a pool in the given mode. A nil c gets a private counter
// set shared by every instance the pool builds.
func New(mode Mode, c *Counters, build BuildFunc) *Pool {
	if c == nil {
		c = &Counters{}
	}
	return &Pool{mode: mode, c: c, build: build}
}

// Mode returns the pool's lifecycle mode.
func (p *Pool) Mode() Mode { return p.mode }

// Counters returns the pool's shared counters.
func (p *Pool) Counters() *Counters { return p.c }

// Instance adapts sys to the pool's mode and counters and ties it to
// the pool, so Release returns it here. For use by BuildFuncs.
func (p *Pool) Instance(sys suts.System) *Instance {
	i := NewInstance(sys, p.mode, p.c)
	i.pool = p
	return i
}

// Lease hands out an idle instance, building a fresh one when none is
// available. The caller owns the instance until Release.
func (p *Pool) Lease() (*Instance, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.c.Leases.Add(1)
	if n := len(p.idle); n > 0 {
		inst := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		p.c.Reuses.Add(1)
		return inst, nil
	}
	p.total++
	p.mu.Unlock()
	inst, err := p.build(p)
	if err != nil {
		p.mu.Lock()
		p.total--
		p.mu.Unlock()
		return nil, err
	}
	inst.pool = p
	return inst, nil
}

// retire is Release's pool half: health-check, quarantine if dirty, and
// park on the idle list (or shut down when the pool is closed). Only
// warm instances are gated — a validate-mode or cold-fallback instance
// has nothing running to check.
func (p *Pool) retire(inst *Instance) error {
	if inst.warm.Load() {
		inst.healthGate()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return inst.Shutdown()
	}
	p.idle = append(p.idle, inst)
	p.mu.Unlock()
	return nil
}

// Size returns how many instances the pool has built and not lost.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Idle returns how many instances are parked, for tests and diagnostics.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Close shuts down every idle instance and marks the pool closed:
// further leases fail with ErrClosed, and instances released later are
// shut down instead of parked. It returns the first shutdown error.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	var first error
	for _, inst := range idle {
		if err := inst.Shutdown(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
