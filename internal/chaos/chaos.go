// Package chaos injects deterministic, seed-driven network faults into
// net.Conn streams: latency spikes, partial (split) writes, mid-frame
// connection resets, and read stalls. It exists to prove the dist
// protocol's recovery story — a coordinator facing a faulty network must
// still merge the exact byte stream a clean run produces — so the
// injector only delays, splits, or severs traffic; it never corrupts or
// reorders bytes that are delivered.
//
// Determinism: an Injector derives each wrapped connection's RNG from
// (Seed, connection ordinal), so a fixed seed and connection order
// reproduce the same fault pattern. Probabilities are drawn per Read and
// per Write under the connection's lock.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config selects the fault mix. Zero probabilities inject nothing; a
// zero Config wraps connections into pass-throughs.
type Config struct {
	// Seed anchors the deterministic fault pattern.
	Seed int64
	// LatencyProb is the per-operation probability of a latency spike of
	// up to LatencyMax (0 selects 5ms).
	LatencyProb float64
	LatencyMax  time.Duration
	// SplitProb is the per-Write probability of splitting the buffer into
	// several smaller writes — a frame crossing packet boundaries.
	SplitProb float64
	// ResetProb is the per-operation probability of severing the
	// connection; on the write side the first half of the buffer is
	// delivered first, so the peer sees a torn frame.
	ResetProb float64
	// StallProb is the per-Read probability of stalling for Stall
	// (0 selects 50ms) before reading — long enough to trip tight stall
	// detectors, short enough for tests.
	StallProb float64
	Stall     time.Duration
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.LatencyProb > 0 || c.SplitProb > 0 || c.ResetProb > 0 || c.StallProb > 0
}

// Injector wraps connections with a deterministic fault stream.
type Injector struct {
	cfg  Config
	mu   sync.Mutex
	next int64 // ordinal of the next wrapped connection
}

// NewInjector returns an injector for the config.
func NewInjector(cfg Config) *Injector {
	if cfg.LatencyMax <= 0 {
		cfg.LatencyMax = 5 * time.Millisecond
	}
	if cfg.Stall <= 0 {
		cfg.Stall = 50 * time.Millisecond
	}
	return &Injector{cfg: cfg}
}

// Wrap returns conn behind the fault injector. The signature matches
// dist.Server.WrapConn and memnet.Network.WrapServerConn, the two seams
// it is built for.
func (in *Injector) Wrap(conn net.Conn) net.Conn {
	if !in.cfg.Enabled() {
		return conn
	}
	in.mu.Lock()
	ordinal := in.next
	in.next++
	in.mu.Unlock()
	// splitmix-style ordinal scramble: connection k's stream is stable
	// however many injectors exist, and distinct from k+1's.
	seed := in.cfg.Seed + ordinal*0x1e3779b97f4a7c15
	return &Conn{Conn: conn, cfg: in.cfg, rng: rand.New(rand.NewSource(seed))}
}

// Conn is one fault-injected connection. Reads and writes may run
// concurrently (the dist worker writes frames while reading nothing, the
// coordinator the reverse); RNG draws serialize on mu.
type Conn struct {
	net.Conn
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
}

// errReset is returned by the severed side; the peer observes EOF or a
// reset error from the closed transport.
func errReset(op string) error {
	return fmt.Errorf("chaos: injected %s reset", op)
}

// draw samples the fault decisions for one operation.
type faults struct {
	latency time.Duration
	split   bool
	reset   bool
	stall   bool
}

func (c *Conn) draw(read bool) faults {
	c.mu.Lock()
	defer c.mu.Unlock()
	var f faults
	if c.cfg.LatencyProb > 0 && c.rng.Float64() < c.cfg.LatencyProb {
		f.latency = time.Duration(c.rng.Int63n(int64(c.cfg.LatencyMax))) + time.Millisecond/10
	}
	if !read && c.cfg.SplitProb > 0 && c.rng.Float64() < c.cfg.SplitProb {
		f.split = true
	}
	if c.cfg.ResetProb > 0 && c.rng.Float64() < c.cfg.ResetProb {
		f.reset = true
	}
	if read && c.cfg.StallProb > 0 && c.rng.Float64() < c.cfg.StallProb {
		f.stall = true
	}
	return f
}

// Read implements net.Conn with injected stalls, latency and resets.
func (c *Conn) Read(p []byte) (int, error) {
	f := c.draw(true)
	if f.stall {
		time.Sleep(c.cfg.Stall)
	}
	if f.latency > 0 {
		time.Sleep(f.latency)
	}
	if f.reset {
		_ = c.Conn.Close()
		return 0, errReset("read")
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn with injected latency, split writes and
// mid-frame resets. Delivered bytes are always an exact prefix of p in
// order — chaos tears streams, it never scrambles them.
func (c *Conn) Write(p []byte) (int, error) {
	f := c.draw(false)
	if f.latency > 0 {
		time.Sleep(f.latency)
	}
	if f.reset {
		// Deliver half the buffer first: the peer's decoder sees a torn
		// frame followed by a dead connection — the worst crash a real
		// network produces short of corruption.
		n := 0
		if half := len(p) / 2; half > 0 {
			n, _ = c.Conn.Write(p[:half])
		}
		_ = c.Conn.Close()
		return n, errReset("mid-frame write")
	}
	if f.split {
		total := 0
		chunk := len(p)/3 + 1
		for total < len(p) {
			end := total + chunk
			if end > len(p) {
				end = len(p)
			}
			n, err := c.Conn.Write(p[total:end])
			total += n
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
	return c.Conn.Write(p)
}
