package chaos

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// countingConn counts underlying Write calls, exposing split writes.
type countingConn struct {
	net.Conn
	writes atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

// pipePair wraps one end of a net.Pipe in the injector.
func pipePair(t *testing.T, cfg Config) (faulty net.Conn, peer net.Conn, counter *countingConn) {
	t.Helper()
	a, b := net.Pipe()
	counter = &countingConn{Conn: a}
	faulty = NewInjector(cfg).Wrap(counter)
	t.Cleanup(func() { a.Close(); b.Close() })
	return faulty, b, counter
}

// drain reads from peer until EOF or n bytes, whichever first.
func drain(peer net.Conn, n int) []byte {
	buf := make([]byte, 0, n)
	tmp := make([]byte, 256)
	for len(buf) < n {
		k, err := peer.Read(tmp)
		buf = append(buf, tmp[:k]...)
		if err != nil {
			break
		}
	}
	return buf
}

func TestChaosZeroConfigPassThrough(t *testing.T) {
	a, _ := net.Pipe()
	defer a.Close()
	if got := NewInjector(Config{}).Wrap(a); got != a {
		t.Fatal("zero config must wrap to the identity")
	}
}

func TestChaosSplitWriteDeliversIntact(t *testing.T) {
	msg := bytes.Repeat([]byte("frame"), 40) // 200 bytes
	faulty, peer, counter := pipePair(t, Config{Seed: 1, SplitProb: 1})
	got := make(chan []byte, 1)
	go func() { got <- drain(peer, len(msg)) }()
	n, err := faulty.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("split write: n=%d err=%v", n, err)
	}
	if !bytes.Equal(<-got, msg) {
		t.Fatal("split write corrupted the stream")
	}
	if counter.writes.Load() < 2 {
		t.Fatalf("split write reached the wire in %d writes, want several", counter.writes.Load())
	}
}

func TestChaosMidFrameResetTearsTheFrame(t *testing.T) {
	msg := bytes.Repeat([]byte("x"), 100)
	faulty, peer, _ := pipePair(t, Config{Seed: 2, ResetProb: 1})
	got := make(chan []byte, 1)
	go func() { got <- drain(peer, len(msg)) }()
	n, err := faulty.Write(msg)
	if err == nil || !strings.Contains(err.Error(), "mid-frame write reset") {
		t.Fatalf("err = %v, want injected mid-frame write reset", err)
	}
	if n != len(msg)/2 {
		t.Fatalf("delivered %d bytes, want the torn half (%d)", n, len(msg)/2)
	}
	delivered := <-got
	if !bytes.Equal(delivered, msg[:n]) {
		t.Fatal("peer received bytes that are not a prefix of the frame")
	}
	if _, err := faulty.Write(msg); err == nil {
		t.Fatal("write after reset succeeded")
	}
}

func TestChaosReadReset(t *testing.T) {
	faulty, peer, _ := pipePair(t, Config{Seed: 3, ResetProb: 1})
	go func() { _, _ = peer.Write([]byte("hello")) }()
	buf := make([]byte, 16)
	_, err := faulty.Read(buf)
	if err == nil || !strings.Contains(err.Error(), "read reset") {
		t.Fatalf("err = %v, want injected read reset", err)
	}
}

func TestChaosStallDelaysRead(t *testing.T) {
	const stall = 30 * time.Millisecond
	faulty, peer, _ := pipePair(t, Config{Seed: 4, StallProb: 1, Stall: stall})
	go func() { _, _ = peer.Write([]byte("hi")) }()
	begin := time.Now()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(faulty, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed < stall {
		t.Fatalf("stalled read returned after %v, want at least %v", elapsed, stall)
	}
}

func TestChaosLatencyKeepsBytesIntact(t *testing.T) {
	msg := []byte("latency does not corrupt")
	faulty, peer, _ := pipePair(t, Config{Seed: 5, LatencyProb: 1, LatencyMax: time.Millisecond})
	got := make(chan []byte, 1)
	go func() { got <- drain(peer, len(msg)) }()
	if _, err := faulty.Write(msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(<-got, msg) {
		t.Fatal("latency injection corrupted the stream")
	}
}

// TestChaosDeterministicPattern: one seed, one connection order, one
// draw order → one fault pattern.
func TestChaosDeterministicPattern(t *testing.T) {
	cfg := Config{Seed: 42, LatencyProb: 0.3, SplitProb: 0.3, ResetProb: 0.2, StallProb: 0.2}
	pattern := func() []faults {
		in := NewInjector(cfg)
		var all []faults
		for conn := 0; conn < 3; conn++ {
			a, b := net.Pipe()
			c := in.Wrap(a).(*Conn)
			b.Close()
			a.Close()
			for op := 0; op < 50; op++ {
				all = append(all, c.draw(op%2 == 0))
			}
		}
		return all
	}
	p1, p2 := pattern(), pattern()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("fault pattern diverged at draw %d: %+v vs %+v", i, p1[i], p2[i])
		}
	}
	// Distinct connections must not share a stream (ordinal scramble).
	in := NewInjector(cfg)
	a1, _ := net.Pipe()
	a2, _ := net.Pipe()
	c1, c2 := in.Wrap(a1).(*Conn), in.Wrap(a2).(*Conn)
	same := true
	for op := 0; op < 20 && same; op++ {
		if c1.draw(true) != c2.draw(true) {
			same = false
		}
	}
	if same {
		t.Fatal("two connections drew identical fault streams")
	}
}
