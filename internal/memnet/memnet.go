// Package memnet provides an in-process network: a namespace of
// listeners connected by buffered duplex pipes (see pipe.go). It
// implements the suts.Transport shape, so simulated SUTs can bind their
// listeners and functional tests can dial them without touching the
// kernel TCP stack — the in-memory transport of the pooled SUT
// lifecycle.
//
// Listeners are keyed by port alone: the sim binds the port, not the
// interface, so 127.0.0.1:80 and localhost:80 collide just as they do on
// loopback TCP. Error wording matches the kernel's loopback TCP errors
// byte for byte ("listen tcp ...: bind: address already in use",
// "dial tcp ...: connect: connection refused") so profiles recorded over
// the in-memory transport are identical to ones recorded over real
// sockets — the bind-collision retry and the detail equivalence both key
// on those strings.
package memnet

import (
	"fmt"
	"net"
	"sync"
)

// Network is one private address namespace. Distinct Networks are fully
// isolated: the same port can be bound in each. The zero value is not
// usable; construct with New.
type Network struct {
	// WrapServerConn, when non-nil, wraps the server half of every new
	// connection before the listener hands it out — the fault-injection
	// seam (internal/chaos) for in-process transports. Set it before any
	// traffic flows; it is read without locking.
	WrapServerConn func(net.Conn) net.Conn

	mu        sync.Mutex
	listeners map[int]*listener
	autoPort  int
}

// New returns an empty network.
func New() *Network {
	return &Network{listeners: make(map[int]*listener)}
}

// backlog is the accept queue depth: dials up to this many past the
// accept front complete immediately, like TCP's SYN backlog.
const backlog = 64

// Listen binds a listener on addr's port. Port 0 allocates an unused
// one.
func (n *Network) Listen(addr string) (net.Listener, error) {
	host, port, err := splitAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("listen tcp %s: %v", addr, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if port == 0 {
		for {
			n.autoPort++
			port = autoPortBase + n.autoPort
			if _, taken := n.listeners[port]; !taken {
				break
			}
		}
	} else if _, taken := n.listeners[port]; taken {
		return nil, fmt.Errorf("listen tcp %s: bind: address already in use", addr)
	}
	l := &listener{
		net:  n,
		port: port,
		addr: memAddr(fmt.Sprintf("%s:%d", host, port)),
		ch:   make(chan net.Conn, backlog),
		done: make(chan struct{}),
	}
	n.listeners[port] = l
	return l, nil
}

// Dial connects to the listener bound on addr's port.
func (n *Network) Dial(addr string) (net.Conn, error) {
	_, port, err := splitAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("dial tcp %s: %v", addr, err)
	}
	n.mu.Lock()
	l := n.listeners[port]
	n.mu.Unlock()
	if l == nil {
		return nil, refused(addr)
	}
	client, server := newPipePair(l.addr)
	var sc net.Conn = server
	if n.WrapServerConn != nil {
		sc = n.WrapServerConn(sc)
	}
	select {
	case l.ch <- sc:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, refused(addr)
	}
}

// refused mirrors the kernel's wording for an unbound address.
func refused(addr string) error {
	return fmt.Errorf("dial tcp %s: connect: connection refused", addr)
}

// autoPortBase keeps auto-allocated ports out of the range real
// configurations (and their typo'd mutations) plausibly name.
const autoPortBase = 40000

// splitAddr parses "host:port" with a decimal port.
func splitAddr(addr string) (string, int, error) {
	host, portS, err := net.SplitHostPort(addr)
	if err != nil {
		return "", 0, err
	}
	port := 0
	for _, c := range portS {
		if c < '0' || c > '9' {
			return "", 0, fmt.Errorf("invalid port %q", portS)
		}
		port = port*10 + int(c-'0')
		if port > 1<<20 {
			return "", 0, fmt.Errorf("invalid port %q", portS)
		}
	}
	return host, port, nil
}

// listener accepts pipe connections delivered by Dial.
type listener struct {
	net  *Network
	port int
	addr memAddr
	ch   chan net.Conn

	closeOnce sync.Once
	done      chan struct{}
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, &net.OpError{Op: "accept", Net: "mem", Addr: l.addr, Err: net.ErrClosed}
	}
}

// Close implements net.Listener: it unbinds the port, unblocks Accept
// and pending Dials, and hangs up connections stranded in the backlog.
func (l *listener) Close() error {
	l.closeOnce.Do(func() {
		l.net.mu.Lock()
		if l.net.listeners[l.port] == l {
			delete(l.net.listeners, l.port)
		}
		l.net.mu.Unlock()
		close(l.done)
		for {
			select {
			case c := <-l.ch:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr implements net.Listener.
func (l *listener) Addr() net.Addr { return l.addr }

// memAddr is a net.Addr naming an in-process endpoint.
type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }
