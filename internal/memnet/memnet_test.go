package memnet

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestListenDialRoundTrip(t *testing.T) {
	n := New()
	ln, err := n.Listen("127.0.0.1:8080")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer conn.Close()
		buf := make([]byte, 4)
		if _, err := conn.Read(buf); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		conn.Write([]byte("pong"))
	}()

	conn, err := n.Dial("127.0.0.1:8080")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pong" {
		t.Fatalf("reply = %q", buf)
	}
	wg.Wait()
}

func TestDialUnboundRefused(t *testing.T) {
	n := New()
	_, err := n.Dial("127.0.0.1:9999")
	if err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("err = %v, want a connection-refused error", err)
	}
}

func TestDoubleBindRejected(t *testing.T) {
	n := New()
	ln, err := n.Listen("127.0.0.1:8080")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_, err = n.Listen("127.0.0.1:8080")
	if err == nil || !strings.Contains(err.Error(), "address already in use") {
		t.Fatalf("err = %v, want an address-in-use error", err)
	}
	// Loopback spellings of the same port collide too: the sim binds the
	// port, not the interface.
	if _, err := n.Listen("localhost:8080"); err == nil {
		t.Fatal("localhost:8080 bound while 127.0.0.1:8080 is held")
	}
}

func TestCloseFreesPort(t *testing.T) {
	n := New()
	ln, err := n.Listen("127.0.0.1:8080")
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dial("127.0.0.1:8080"); err == nil ||
		!strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("dial after close: err = %v, want refused", err)
	}
	ln2, err := n.Listen("127.0.0.1:8080")
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	ln2.Close()
	// Double close is harmless.
	if err := ln.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestAutoPort(t *testing.T) {
	n := New()
	a, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if a.Addr().String() == b.Addr().String() {
		t.Fatalf("auto-allocated ports collide: %s", a.Addr())
	}
	if _, err := n.Dial(a.Addr().String()); err != nil {
		t.Fatalf("dial auto port: %v", err)
	}
}

func TestAcceptAfterClose(t *testing.T) {
	n := New()
	ln, _ := n.Listen("127.0.0.1:8080")
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	ln.Close()
	if err := <-done; err == nil {
		t.Fatal("accept on closed listener returned a conn")
	}
}

func TestConcurrentDials(t *testing.T) {
	n := New()
	ln, err := n.Listen("127.0.0.1:8080")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const dials = 16
	go func() {
		for i := 0; i < dials; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 1)
				conn.Read(buf)
				conn.Write(buf)
				conn.Close()
			}()
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < dials; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := n.Dial("127.0.0.1:8080")
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			conn.Write([]byte{42})
			buf := make([]byte, 1)
			if _, err := conn.Read(buf); err != nil || buf[0] != 42 {
				t.Errorf("echo = %v, %v", buf, err)
			}
		}()
	}
	wg.Wait()
}

// TestPipeBufferedWrite pins the buffered-pipe property the transport
// exists for: a write completes without a concurrent reader, and the
// bytes arrive intact afterwards.
func TestPipeBufferedWrite(t *testing.T) {
	n := New()
	l, err := n.Listen("127.0.0.1:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := n.Dial("127.0.0.1:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("written before anyone reads")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("unbuffered write blocked or failed: %v", err)
	}
	s, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
}

// TestPipeEOFAfterDrain: closing the writer lets the reader drain
// buffered bytes before seeing EOF.
func TestPipeEOFAfterDrain(t *testing.T) {
	n := New()
	l, err := n.Listen("127.0.0.1:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := n.Dial("127.0.0.1:80")
	if err != nil {
		t.Fatal(err)
	}
	s, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := c.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatalf("read after writer close: %v", err)
	}
	if string(got) != "tail" {
		t.Fatalf("drained %q, want %q", got, "tail")
	}
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

// TestPipeReadDeadline: a blocked Read fails with a timeout error when
// the deadline passes — the semantics the redisd and sqlmini probes'
// SetDeadline calls rely on.
func TestPipeReadDeadline(t *testing.T) {
	n := New()
	l, err := n.Listen("127.0.0.1:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := n.Dial("127.0.0.1:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read = %v, want a net.Error timeout", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("deadline took %v to fire", time.Since(start))
	}
	// Clearing the deadline makes the connection usable again.
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	s, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Write([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
		t.Fatalf("read after deadline cleared: %v", err)
	}
}

// TestWrapServerConnHook: the fault-injection seam wraps the server half
// of every dialed connection, and data still flows both ways through the
// wrapper.
func TestWrapServerConnHook(t *testing.T) {
	type tagged struct {
		net.Conn
		reads *int
	}
	n := New()
	wrapped := 0
	reads := 0
	n.WrapServerConn = func(c net.Conn) net.Conn {
		wrapped++
		return tagged{Conn: c, reads: &reads}
	}
	ln, err := n.Listen("127.0.0.1:9000")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	client, err := n.Dial("127.0.0.1:9000")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	if wrapped != 1 {
		t.Fatalf("wrapped %d connections, want 1", wrapped)
	}
	if _, ok := server.(tagged); !ok {
		t.Fatalf("accepted conn is %T, not the wrapper", server)
	}

	// Bytes cross the wrapper in both directions.
	go func() { _, _ = client.Write([]byte("ping")) }()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(server, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("server read %q, %v", buf, err)
	}
	go func() { _, _ = server.Write([]byte("pong")) }()
	if _, err := io.ReadFull(client, buf); err != nil || string(buf) != "pong" {
		t.Fatalf("client read %q, %v", buf, err)
	}
}
