package memnet

import (
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// This file is the connection type behind Dial: a buffered, full-duplex
// in-process pipe. net.Pipe would be the obvious choice, but it is fully
// synchronous — every Write blocks until the peer Reads, so each HTTP
// request/response costs a chain of goroutine handoffs. The buffered
// pipe lets writers run ahead (the buffer is unbounded; protocol traffic
// here is request/response sized) and wakes the reader once, which is
// what makes in-process functional probes cheaper than loopback TCP
// instead of merely equivalent. Deadlines follow net.Conn semantics:
// an expired read deadline fails pending and future Reads with
// os.ErrDeadlineExceeded (a net.Error with Timeout() == true), which
// the redisd and sqlmini probes rely on.

// newPipePair returns the two endpoints of a buffered duplex pipe.
// remote names the listener's address on the dialer's side.
func newPipePair(remote net.Addr) (dialer, accepted net.Conn) {
	a2b := newHalfBuf() // dialer writes, acceptor reads
	b2a := newHalfBuf() // acceptor writes, dialer reads
	dialAddr := memAddr("pipe")
	dialer = &pipeConn{rb: b2a, wb: a2b, local: dialAddr, remote: remote}
	accepted = &pipeConn{rb: a2b, wb: b2a, local: remote, remote: dialAddr}
	return dialer, accepted
}

// halfBuf is one direction of the pipe: a byte queue with EOF/closed
// state and a read deadline.
type halfBuf struct {
	mu   sync.Mutex
	cond sync.Cond

	data []byte
	off  int // read position within data

	wclosed bool // writer closed: EOF once drained
	rclosed bool // reader closed: writes fail

	deadline time.Time
	timer    *time.Timer
}

// retainCap bounds the buffer capacity kept across a full drain.
const retainCap = 64 << 10

func newHalfBuf() *halfBuf {
	b := &halfBuf{}
	b.cond.L = &b.mu
	return b
}

func (b *halfBuf) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.off < len(b.data) {
			n := copy(p, b.data[b.off:])
			b.off += n
			if b.off == len(b.data) {
				if cap(b.data) > retainCap {
					b.data = nil
				} else {
					b.data = b.data[:0]
				}
				b.off = 0
			}
			return n, nil
		}
		if b.rclosed {
			return 0, io.ErrClosedPipe
		}
		if b.wclosed {
			return 0, io.EOF
		}
		if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
			return 0, os.ErrDeadlineExceeded
		}
		b.cond.Wait()
	}
}

func (b *halfBuf) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rclosed || b.wclosed {
		return 0, io.ErrClosedPipe
	}
	b.data = append(b.data, p...)
	b.cond.Broadcast()
	return len(p), nil
}

// closeWrite ends the writer side: the reader sees EOF after draining.
func (b *halfBuf) closeWrite() {
	b.mu.Lock()
	b.wclosed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// closeRead ends the reader side: pending and future reads and writes
// fail.
func (b *halfBuf) closeRead() {
	b.mu.Lock()
	b.rclosed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// setReadDeadline arms (or clears, for the zero time) the deadline that
// fails blocked reads. The wake-up timer is allocated once per pipe
// direction and re-armed with Reset thereafter: the probe fast path
// sets a deadline before every request, and a per-call time.AfterFunc
// would be the only allocation left on its steady state.
func (b *halfBuf) setReadDeadline(t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deadline = t
	if b.timer != nil {
		b.timer.Stop()
	}
	if t.IsZero() {
		return
	}
	if d := time.Until(t); d > 0 {
		if b.timer == nil {
			b.timer = time.AfterFunc(d, func() {
				b.mu.Lock()
				b.cond.Broadcast()
				b.mu.Unlock()
			})
		} else {
			b.timer.Reset(d)
		}
	} else {
		b.cond.Broadcast()
	}
}

// pipeConn is one endpoint of the buffered pipe.
type pipeConn struct {
	rb, wb *halfBuf
	local  net.Addr
	remote net.Addr

	mu        sync.Mutex
	wdeadline time.Time
}

// Read implements net.Conn.
func (c *pipeConn) Read(p []byte) (int, error) { return c.rb.read(p) }

// Write implements net.Conn. Writes never block (the buffer is
// unbounded), so the write deadline only matters when already expired.
func (c *pipeConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	expired := !c.wdeadline.IsZero() && !time.Now().Before(c.wdeadline)
	c.mu.Unlock()
	if expired {
		return 0, os.ErrDeadlineExceeded
	}
	return c.wb.write(p)
}

// Close implements net.Conn: the peer reads EOF after draining, and
// both sides' further I/O fails.
func (c *pipeConn) Close() error {
	c.wb.closeWrite()
	c.rb.closeRead()
	return nil
}

// LocalAddr implements net.Conn.
func (c *pipeConn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *pipeConn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *pipeConn) SetDeadline(t time.Time) error {
	if err := c.SetReadDeadline(t); err != nil {
		return err
	}
	return c.SetWriteDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *pipeConn) SetReadDeadline(t time.Time) error {
	c.rb.setReadDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *pipeConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdeadline = t
	c.mu.Unlock()
	return nil
}
