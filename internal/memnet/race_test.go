package memnet

// Race-edge tests for the in-process transport. These are written to run
// meaningfully under -race: each one drives an ordering the probe fast
// path actually produces — deadlines re-armed on a connection mid
// response, dials racing a listener teardown, a port rebound the instant
// it is released — and asserts the survivable outcome, while the race
// detector checks the synchronization underneath.

import (
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestReadDeadlineHalfWrittenResponse expires a read deadline while the
// peer has delivered only half of its response, then completes the read
// after re-arming — the shape of a probe timing out on a stalled SUT and
// retrying. Several rounds exercise the reused deadline timer (armed,
// fired, re-armed) on one connection.
func TestReadDeadlineHalfWrittenResponse(t *testing.T) {
	n := New()
	ln, err := n.Listen("127.0.0.1:8080")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer conn.Close()
		for range 3 {
			if _, err := conn.Write([]byte("half-")); err != nil {
				t.Errorf("write first half: %v", err)
				return
			}
			<-release // hold the second half until the client has timed out
			if _, err := conn.Write([]byte("done!")); err != nil {
				t.Errorf("write second half: %v", err)
				return
			}
		}
	}()

	conn, err := n.Dial("127.0.0.1:8080")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 10)
	for round := range 3 {
		if err := conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		got := 0
		var readErr error
		for got < len(buf) && readErr == nil {
			var k int
			k, readErr = conn.Read(buf[got:])
			got += k
		}
		if !errors.Is(readErr, os.ErrDeadlineExceeded) {
			t.Fatalf("round %d: err = %v, want deadline exceeded", round, readErr)
		}
		if string(buf[:got]) != "half-" {
			t.Fatalf("round %d: read %q before timeout, want %q", round, buf[:got], "half-")
		}
		// The deadline must stick: the connection stays usable and a
		// fresh, longer deadline governs the rest of the response.
		release <- struct{}{}
		if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(conn, buf[got:]); err != nil {
			t.Fatalf("round %d: read second half: %v", round, err)
		}
		if string(buf) != "half-done!" {
			t.Fatalf("round %d: response = %q", round, buf)
		}
	}
	wg.Wait()
}

// TestConcurrentCloseVsDial races in-flight dials against the listener
// closing. Every dial must resolve to exactly one of: a usable
// connection (accepted or hung up by the teardown), or the kernel's
// connection-refused wording. Anything else — a hang, a different
// error, a data race — is a bug in the namespace bookkeeping.
func TestConcurrentCloseVsDial(t *testing.T) {
	const dialers = 8
	for range 20 {
		n := New()
		ln, err := n.Listen("127.0.0.1:8080")
		if err != nil {
			t.Fatal(err)
		}
		// Drain accepted connections so dials don't depend on backlog
		// space; Accept ending on ErrClosed is the teardown signal.
		var acceptWG sync.WaitGroup
		acceptWG.Add(1)
		go func() {
			defer acceptWG.Done()
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		}()

		var dialWG sync.WaitGroup
		start := make(chan struct{})
		for range dialers {
			dialWG.Add(1)
			go func() {
				defer dialWG.Done()
				<-start
				for range 50 {
					c, err := n.Dial("127.0.0.1:8080")
					switch {
					case err == nil:
						c.Close()
					case strings.Contains(err.Error(), "connection refused"):
						return // listener gone; later dials fail the same way
					default:
						t.Errorf("dial: unexpected error %v", err)
						return
					}
				}
			}()
		}
		close(start)
		ln.Close()
		dialWG.Wait()
		acceptWG.Wait()
	}
}

// TestPortReleaseOrdering races a listener's Close against rebinding
// the same port. A rebind attempt sees exactly the two legitimate
// states — the port still held ("address already in use", the kernel
// wording the engine's bind retry keys on) or released (bind succeeds) —
// and once the rebind lands, dials reach the new listener.
func TestPortReleaseOrdering(t *testing.T) {
	for range 50 {
		n := New()
		old, err := n.Listen("127.0.0.1:8080")
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		var fresh net.Listener
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ln, err := n.Listen("127.0.0.1:8080")
				if err == nil {
					fresh = ln
					return
				}
				if !strings.Contains(err.Error(), "address already in use") {
					t.Errorf("rebind: unexpected error %v", err)
					return
				}
			}
		}()
		old.Close()
		wg.Wait()
		if fresh == nil {
			t.Fatal("port never became bindable after Close")
		}

		// The new listener owns the port: a dial reaches it, not limbo.
		done := make(chan error, 1)
		go func() {
			c, err := fresh.Accept()
			if err == nil {
				c.Close()
			}
			done <- err
		}()
		c, err := n.Dial("127.0.0.1:8080")
		if err != nil {
			t.Fatalf("dial after rebind: %v", err)
		}
		c.Close()
		if err := <-done; err != nil {
			t.Fatalf("accept after rebind: %v", err)
		}
		fresh.Close()
	}
}
