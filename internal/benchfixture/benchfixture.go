// Package benchfixture provides the synthetic multi-file configuration
// shared by the engine- and facade-level injection benchmarks: 32 kv
// files of 32 directives each (1024 scenarios, one value flip per
// directive, each dirtying exactly one file), against a SUT that accepts
// everything instantly. Keeping the fixture in one place stops the two
// benchmark families from drifting apart.
package benchfixture

import (
	"fmt"

	"conferr/internal/confnode"
	"conferr/internal/formats"
	"conferr/internal/formats/kv"
	"conferr/internal/scenario"
	"conferr/internal/suts"
	"conferr/internal/template"
	"conferr/internal/view"
)

// Files and DirsPerFile shape the synthetic configuration (~1k directives
// total).
const (
	Files       = 32
	DirsPerFile = 32
)

// FileName names the i-th synthetic configuration file.
func FileName(i int) string { return fmt.Sprintf("synth%02d.conf", i) }

// System is the accept-all SUT: the benchmarks isolate engine overhead
// from SUT behaviour.
type System struct{}

// Name implements suts.System.
func (System) Name() string { return "synthetic" }

// DefaultConfig implements suts.System.
func (System) DefaultConfig() suts.Files {
	files := make(suts.Files, Files)
	for f := 0; f < Files; f++ {
		data := make([]byte, 0, DirsPerFile*24)
		for d := 0; d < DirsPerFile; d++ {
			data = append(data, fmt.Sprintf("param_%02d_%02d = value%d\n", f, d, d)...)
		}
		files[FileName(f)] = data
	}
	return files
}

// Start implements suts.System.
func (System) Start(suts.Files) error { return nil }

// Stop implements suts.System.
func (System) Stop() error { return nil }

// Formats maps every synthetic file to the kv format.
func Formats() map[string]formats.Format {
	fm := make(map[string]formats.Format, Files)
	for f := 0; f < Files; f++ {
		fm[FileName(f)] = kv.Format{}
	}
	return fm
}

// Gen emits one value-flip scenario per directive on the struct view. It
// satisfies core.Generator without importing core, so the engine's
// in-package benchmarks can use it too.
type Gen struct{}

// Name identifies the generator.
func (Gen) Name() string { return "synthetic" }

// View returns the struct view the scenarios apply to.
func (Gen) View() view.View { return view.StructView{} }

// Generate enumerates the value-flip scenarios.
func (Gen) Generate(s *confnode.Set) ([]scenario.Scenario, error) {
	return scenario.Collect(Gen{}.GenerateStream(s))
}

// GenerateStream yields the value-flip scenarios lazily, in Generate's
// order; it satisfies core.StreamingGenerator structurally.
func (Gen) GenerateStream(s *confnode.Set) scenario.Source {
	return Gen{}.GenerateShard(s, 0, 1)
}

// GenerateShard natively emits shard k of n — worker k enumerates only
// every n-th directive, so sharded generation does no wasted work. It
// satisfies core.ShardedGenerator structurally: the union of all shards,
// interleaved by stride, is exactly the GenerateStream enumeration.
func (Gen) GenerateShard(s *confnode.Set, k, n int) scenario.Source {
	if n <= 1 {
		k, n = 0, 1
	}
	return func(yield func(scenario.Scenario, error) bool) {
		idx := 0
		for _, name := range s.Names() {
			for d := 0; d < s.Get(name).NumChildren(); d++ {
				if idx%n != k {
					idx++
					continue
				}
				idx++
				ref := template.Ref{File: name, Indices: []int{d}}
				sc := scenario.Scenario{
					ID:    fmt.Sprintf("synthetic/%s/%d", name, d),
					Class: "synthetic",
					Apply: func(set *confnode.Set) error {
						n, err := ref.Resolve(set)
						if err != nil {
							return err
						}
						n.Value = "mutated"
						return nil
					},
				}
				if !yield(sc, nil) {
					return
				}
			}
		}
	}
}
