package sqlmini

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Wire protocol: the client sends one statement per line. The server
// replies with zero or more "ROW <tab-separated values>" lines followed by
// a terminator line: "OK <affected>" on success or "ERR <message>" on
// failure. A new connection beyond the server's connection limit receives
// "ERR too many connections" and is closed.

// Server serves an Engine over TCP.
type Server struct {
	// MaxConns bounds concurrent client connections; 0 means unlimited.
	MaxConns int

	eng *Engine
	ln  net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// NewServer returns a server for the engine.
func NewServer(eng *Engine) *Server {
	return &Server{eng: eng, conns: make(map[net.Conn]struct{})}
}

// Listen binds the server to addr ("host:port"; port 0 picks a free one)
// and starts accepting connections in the background.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("sqlmini: listen %s: %w", addr, err)
	}
	s.Serve(ln)
	return nil
}

// Serve adopts an externally created listener (for example one from an
// in-memory transport) and starts accepting connections in the
// background.
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
}

// SetEngine replaces the engine new sessions draw from; established
// sessions keep the engine they started with. A warm configuration
// reload uses it to present the fresh catalog a cold restart would.
func (s *Server) SetEngine(eng *Engine) {
	s.mu.Lock()
	s.eng = eng
	s.mu.Unlock()
}

// SetMaxConns adjusts the connection limit while serving.
func (s *Server) SetMaxConns(n int) {
	s.mu.Lock()
	s.MaxConns = n
	s.mu.Unlock()
}

// engine returns the current engine.
func (s *Server) engine() *Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng
}

// Addr returns the bound address. Only valid after Listen.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, closes all connections and waits for handlers to
// finish.
func (s *Server) Close() error {
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			fmt.Fprintf(conn, "ERR too many connections\n")
			_ = conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.MaxConns > 0 && len(s.conns) >= s.MaxConns {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	_ = c.Close()
}

func (s *Server) handle(conn net.Conn) {
	sess := s.engine().NewSession()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "QUIT") {
			fmt.Fprintf(w, "OK 0\n")
			_ = w.Flush()
			return
		}
		res, err := sess.Exec(line)
		if err != nil {
			fmt.Fprintf(w, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		} else {
			for _, row := range res.Rows {
				fmt.Fprintf(w, "ROW %s\n", strings.Join(row, "\t"))
			}
			fmt.Fprintf(w, "OK %d\n", res.Affected)
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Client is a wire-protocol client for tests and the functional test
// scripts.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a sqlmini server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sqlmini: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (from any transport) in a
// Client.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ErrServer wraps an "ERR ..." reply from the server.
var ErrServer = errors.New("sqlmini: server error")

// execTimeout bounds one statement round trip, so functional tests fail
// fast instead of hanging on a wedged server.
const execTimeout = 5 * time.Second

// Exec sends one statement and returns the rows and affected count, or an
// error wrapping ErrServer for "ERR" replies.
func (c *Client) Exec(stmt string) ([][]string, int, error) {
	if err := c.conn.SetDeadline(time.Now().Add(execTimeout)); err != nil {
		return nil, 0, fmt.Errorf("sqlmini: deadline: %w", err)
	}
	if _, err := fmt.Fprintf(c.conn, "%s\n", stmt); err != nil {
		return nil, 0, fmt.Errorf("sqlmini: send: %w", err)
	}
	var rows [][]string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, 0, fmt.Errorf("sqlmini: read: %w", err)
		}
		line = strings.TrimSuffix(line, "\n")
		switch {
		case strings.HasPrefix(line, "ROW "):
			rows = append(rows, strings.Split(line[4:], "\t"))
		case strings.HasPrefix(line, "OK"):
			n := 0
			if len(line) > 3 {
				n, _ = strconv.Atoi(strings.TrimSpace(line[3:]))
			}
			return rows, n, nil
		case strings.HasPrefix(line, "ERR "):
			return nil, 0, fmt.Errorf("%w: %s", ErrServer, line[4:])
		default:
			return nil, 0, fmt.Errorf("sqlmini: malformed reply %q", line)
		}
	}
}
