package sqlmini

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func exec(t *testing.T, s *Session, stmt string) *Result {
	t.Helper()
	res, err := s.Exec(stmt)
	if err != nil {
		t.Fatalf("Exec(%q): %v", stmt, err)
	}
	return res
}

func execErr(t *testing.T, s *Session, stmt, wantSub string) {
	t.Helper()
	_, err := s.Exec(stmt)
	if err == nil {
		t.Fatalf("Exec(%q) succeeded, want error containing %q", stmt, wantSub)
	}
	var se *SQLError
	if !errors.As(err, &se) {
		t.Fatalf("Exec(%q) error type %T", stmt, err)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("Exec(%q) error %q, want contains %q", stmt, err, wantSub)
	}
}

func TestEngineBasicFlow(t *testing.T) {
	var e Engine
	s := e.NewSession()
	exec(t, s, "CREATE DATABASE testdb")
	exec(t, s, "USE testdb")
	exec(t, s, "CREATE TABLE users (id, name)")
	if res := exec(t, s, "INSERT INTO users VALUES (1, 'alice')"); res.Affected != 1 {
		t.Errorf("affected = %d", res.Affected)
	}
	exec(t, s, "INSERT INTO users VALUES (2, 'bob')")
	res := exec(t, s, "SELECT * FROM users")
	if !reflect.DeepEqual(res.Columns, []string{"id", "name"}) {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 2 || res.Rows[0][1] != "alice" {
		t.Errorf("rows = %v", res.Rows)
	}
	res = exec(t, s, "SELECT name FROM users WHERE id = 2")
	if len(res.Rows) != 1 || res.Rows[0][0] != "bob" {
		t.Errorf("filtered rows = %v", res.Rows)
	}
	res = exec(t, s, "SELECT name FROM users WHERE name = 'alice'")
	if len(res.Rows) != 1 || res.Rows[0][0] != "alice" {
		t.Errorf("quoted filter rows = %v", res.Rows)
	}
}

func TestEngineErrors(t *testing.T) {
	var e Engine
	s := e.NewSession()
	execErr(t, s, "", "empty")
	execErr(t, s, "FROBNICATE all", "unknown statement")
	execErr(t, s, "USE nope", "does not exist")
	execErr(t, s, "CREATE TABLE t (a)", "no database selected")
	exec(t, s, "CREATE DATABASE d")
	execErr(t, s, "CREATE DATABASE d", "already exists")
	exec(t, s, "USE d")
	execErr(t, s, "CREATE TABLE t ()", "at least one column")
	exec(t, s, "CREATE TABLE t (a, b)")
	execErr(t, s, "CREATE TABLE t (a)", "already exists")
	execErr(t, s, "INSERT INTO t VALUES (1)", "2 columns, got 1")
	execErr(t, s, "INSERT INTO missing VALUES (1)", "does not exist")
	execErr(t, s, "SELECT * FROM missing", "does not exist")
	execErr(t, s, "SELECT nope FROM t", "unknown column")
	execErr(t, s, "SELECT * FROM t WHERE nope = 1", "unknown column")
	execErr(t, s, "SELECT * FROM t WHERE a", "WHERE")
	execErr(t, s, "SELECT *", "FROM")
	execErr(t, s, "INSERT t", "usage")
	execErr(t, s, "CREATE TABLE x (a,)", "trailing comma")
	execErr(t, s, "CREATE TABLE x (a b)", "expected ','")
	execErr(t, s, "CREATE TABLE x (,a)", "unexpected comma")
	execErr(t, s, "CREATE TABLE x (a", "missing ')'")
	execErr(t, s, "CREATE TABLE x a)", "expected '('")
	execErr(t, s, "CREATE VIEW v", "cannot CREATE")
	execErr(t, s, "DROP INDEX i", "cannot DROP")
	execErr(t, s, "DROP TABLE", "usage")
	execErr(t, s, "DROP SEQUENCE s", "cannot DROP")
	execErr(t, s, "SHOW GRANTS", "cannot SHOW")
	execErr(t, s, "SHOW", "usage")
}

func TestDropAndShow(t *testing.T) {
	var e Engine
	s := e.NewSession()
	exec(t, s, "CREATE DATABASE a")
	exec(t, s, "CREATE DATABASE b")
	res := exec(t, s, "SHOW DATABASES")
	if len(res.Rows) != 2 || res.Rows[0][0] != "a" || res.Rows[1][0] != "b" {
		t.Errorf("databases = %v", res.Rows)
	}
	exec(t, s, "USE a")
	exec(t, s, "CREATE TABLE t1 (x)")
	exec(t, s, "CREATE TABLE t2 (y)")
	res = exec(t, s, "SHOW TABLES")
	if len(res.Rows) != 2 {
		t.Errorf("tables = %v", res.Rows)
	}
	exec(t, s, "DROP TABLE t1")
	res = exec(t, s, "SHOW TABLES")
	if len(res.Rows) != 1 || res.Rows[0][0] != "t2" {
		t.Errorf("tables after drop = %v", res.Rows)
	}
	execErr(t, s, "DROP TABLE t1", "does not exist")
	exec(t, s, "DROP DATABASE a")
	execErr(t, s, "SHOW TABLES", "no database selected")
	execErr(t, s, "DROP DATABASE a", "does not exist")
}

func TestQuotedValuesWithSpaces(t *testing.T) {
	var e Engine
	s := e.NewSession()
	exec(t, s, "CREATE DATABASE d")
	exec(t, s, "USE d")
	exec(t, s, "CREATE TABLE t (msg)")
	exec(t, s, "INSERT INTO t VALUES ('hello world, friend')")
	res := exec(t, s, "SELECT * FROM t")
	if res.Rows[0][0] != "hello world, friend" {
		t.Errorf("value = %q", res.Rows[0][0])
	}
}

func TestSessionsIsolatedSelection(t *testing.T) {
	var e Engine
	s1, s2 := e.NewSession(), e.NewSession()
	exec(t, s1, "CREATE DATABASE d1")
	exec(t, s1, "USE d1")
	// s2 has no selection even though s1 does.
	execErr(t, s2, "SHOW TABLES", "no database selected")
	// Data is shared.
	exec(t, s1, "CREATE TABLE t (a)")
	exec(t, s2, "USE d1")
	res := exec(t, s2, "SHOW TABLES")
	if len(res.Rows) != 1 {
		t.Errorf("shared tables = %v", res.Rows)
	}
}

func TestEngineConcurrentAccess(t *testing.T) {
	var e Engine
	setup := e.NewSession()
	exec(t, setup, "CREATE DATABASE d")
	exec(t, setup, "USE d")
	exec(t, setup, "CREATE TABLE t (n)")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := e.NewSession()
			if _, err := s.Exec("USE d"); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 50; j++ {
				if _, err := s.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i*100+j)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	res := exec(t, setup, "SELECT * FROM t")
	if len(res.Rows) != 400 {
		t.Errorf("rows = %d, want 400", len(res.Rows))
	}
}

func TestServerClientRoundTrip(t *testing.T) {
	var e Engine
	srv := NewServer(&e)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mustExec := func(stmt string) ([][]string, int) {
		t.Helper()
		rows, n, err := c.Exec(stmt)
		if err != nil {
			t.Fatalf("Exec(%q): %v", stmt, err)
		}
		return rows, n
	}
	mustExec("CREATE DATABASE d")
	mustExec("USE d")
	mustExec("CREATE TABLE t (id, name)")
	if _, n := mustExec("INSERT INTO t VALUES (1, 'x')"); n != 1 {
		t.Errorf("affected = %d", n)
	}
	rows, n := mustExec("SELECT * FROM t")
	if n != 1 || len(rows) != 1 || rows[0][0] != "1" || rows[0][1] != "x" {
		t.Errorf("rows = %v, n = %d", rows, n)
	}
	// Server-side error surfaces as ErrServer.
	if _, _, err := c.Exec("SELECT * FROM nope"); !errors.Is(err, ErrServer) {
		t.Errorf("err = %v", err)
	}
	// QUIT is polite shutdown.
	if _, _, err := c.Exec("QUIT"); err != nil {
		t.Errorf("QUIT: %v", err)
	}
}

func TestServerMaxConns(t *testing.T) {
	var e Engine
	srv := NewServer(&e)
	srv.MaxConns = 1
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	// First client must be active for the limit to bind.
	if _, _, err := c1.Exec("SHOW DATABASES"); err != nil {
		t.Fatal(err)
	}

	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, _, err = c2.Exec("SHOW DATABASES")
	if err == nil || !strings.Contains(err.Error(), "too many connections") {
		t.Errorf("second connection err = %v", err)
	}
}

func TestServerAddrBeforeListen(t *testing.T) {
	srv := NewServer(&Engine{})
	if srv.Addr() != "" {
		t.Error("Addr before Listen should be empty")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close without Listen: %v", err)
	}
}

func TestListenError(t *testing.T) {
	srv := NewServer(&Engine{})
	if err := srv.Listen("256.256.256.256:1"); err == nil {
		srv.Close()
		t.Error("expected listen error")
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SELECT * FROM t", []string{"SELECT", "*", "FROM", "t"}},
		{"a=(1,'x y')", []string{"a", "=", "(", "1", ",", "'x y'", ")"}},
		{"  spaced   out ;", []string{"spaced", "out"}},
		{"", nil},
	}
	for _, tt := range cases {
		if got := tokenize(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("tokenize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
