// Package sqlmini implements a miniature SQL database: an in-memory
// engine supporting CREATE/DROP DATABASE, CREATE/DROP TABLE, INSERT and
// SELECT, plus a line-oriented client/server wire protocol over TCP.
//
// The MySQL and Postgres simulators serve this engine so that ConfErr's
// functional tests are real client/server round trips — the paper's
// diagnosis script "creates a database, then creates a table, populates it,
// and queries it" (§5.1).
package sqlmini

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Engine is an in-memory multi-database SQL engine. It is safe for
// concurrent use. The zero value is ready to use.
type Engine struct {
	mu  sync.Mutex
	dbs map[string]*database
}

type database struct {
	tables map[string]*table
}

type table struct {
	columns []string
	rows    [][]string
}

// Session is a per-connection handle carrying the selected database.
type Session struct {
	eng *Engine
	db  string
}

// NewSession returns a session bound to the engine with no database
// selected.
func (e *Engine) NewSession() *Session {
	return &Session{eng: e}
}

// Result is the outcome of executing one statement.
type Result struct {
	// Columns names the result columns of a SELECT; nil otherwise.
	Columns []string
	// Rows holds SELECT results.
	Rows [][]string
	// Affected is the number of rows affected (INSERT) or matched.
	Affected int
}

// SQLError is a statement-level failure (syntax or semantic).
type SQLError struct {
	// Msg describes the failure.
	Msg string
}

// Error implements the error interface.
func (e *SQLError) Error() string { return e.Msg }

func errf(format string, args ...any) error {
	return &SQLError{Msg: fmt.Sprintf(format, args...)}
}

// Exec parses and executes one SQL statement.
func (s *Session) Exec(stmt string) (*Result, error) {
	toks := tokenize(stmt)
	if len(toks) == 0 {
		return nil, errf("empty statement")
	}
	switch strings.ToUpper(toks[0]) {
	case "CREATE":
		return s.execCreate(toks)
	case "DROP":
		return s.execDrop(toks)
	case "USE":
		if len(toks) != 2 {
			return nil, errf("usage: USE <database>")
		}
		return s.execUse(toks[1])
	case "INSERT":
		return s.execInsert(toks)
	case "SELECT":
		return s.execSelect(toks)
	case "SHOW":
		return s.execShow(toks)
	default:
		return nil, errf("unknown statement %q", toks[0])
	}
}

func (s *Session) execCreate(toks []string) (*Result, error) {
	if len(toks) < 3 {
		return nil, errf("incomplete CREATE")
	}
	switch strings.ToUpper(toks[1]) {
	case "DATABASE":
		name := toks[2]
		s.eng.mu.Lock()
		defer s.eng.mu.Unlock()
		if s.eng.dbs == nil {
			s.eng.dbs = make(map[string]*database)
		}
		if _, exists := s.eng.dbs[name]; exists {
			return nil, errf("database %q already exists", name)
		}
		s.eng.dbs[name] = &database{tables: make(map[string]*table)}
		return &Result{}, nil
	case "TABLE":
		// CREATE TABLE t ( a , b , c )
		name := toks[2]
		cols, err := parseParenList(toks[3:])
		if err != nil {
			return nil, err
		}
		if len(cols) == 0 {
			return nil, errf("table %q needs at least one column", name)
		}
		s.eng.mu.Lock()
		defer s.eng.mu.Unlock()
		db, err := s.currentLocked()
		if err != nil {
			return nil, err
		}
		if _, exists := db.tables[name]; exists {
			return nil, errf("table %q already exists", name)
		}
		db.tables[name] = &table{columns: cols}
		return &Result{}, nil
	default:
		return nil, errf("cannot CREATE %q", toks[1])
	}
}

func (s *Session) execDrop(toks []string) (*Result, error) {
	if len(toks) != 3 {
		return nil, errf("usage: DROP DATABASE|TABLE <name>")
	}
	name := toks[2]
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	switch strings.ToUpper(toks[1]) {
	case "DATABASE":
		if _, ok := s.eng.dbs[name]; !ok {
			return nil, errf("database %q does not exist", name)
		}
		delete(s.eng.dbs, name)
		if s.db == name {
			s.db = ""
		}
		return &Result{}, nil
	case "TABLE":
		db, err := s.currentLocked()
		if err != nil {
			return nil, err
		}
		if _, ok := db.tables[name]; !ok {
			return nil, errf("table %q does not exist", name)
		}
		delete(db.tables, name)
		return &Result{}, nil
	default:
		return nil, errf("cannot DROP %q", toks[1])
	}
}

func (s *Session) execUse(name string) (*Result, error) {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if _, ok := s.eng.dbs[name]; !ok {
		return nil, errf("database %q does not exist", name)
	}
	s.db = name
	return &Result{}, nil
}

func (s *Session) execInsert(toks []string) (*Result, error) {
	// INSERT INTO t VALUES ( v , v )
	if len(toks) < 4 || !strings.EqualFold(toks[1], "INTO") || !strings.EqualFold(toks[3], "VALUES") {
		return nil, errf("usage: INSERT INTO <table> VALUES (v, ...)")
	}
	name := toks[2]
	vals, err := parseParenList(toks[4:])
	if err != nil {
		return nil, err
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	db, err := s.currentLocked()
	if err != nil {
		return nil, err
	}
	t, ok := db.tables[name]
	if !ok {
		return nil, errf("table %q does not exist", name)
	}
	if len(vals) != len(t.columns) {
		return nil, errf("table %q has %d columns, got %d values", name, len(t.columns), len(vals))
	}
	for i := range vals {
		vals[i] = unquote(vals[i])
	}
	t.rows = append(t.rows, vals)
	return &Result{Affected: 1}, nil
}

func (s *Session) execSelect(toks []string) (*Result, error) {
	// SELECT *|col[,col] FROM t [WHERE col = 'v']
	fromIdx := -1
	for i, tk := range toks {
		if strings.EqualFold(tk, "FROM") {
			fromIdx = i
			break
		}
	}
	if fromIdx < 0 || fromIdx+1 >= len(toks) {
		return nil, errf("usage: SELECT cols FROM <table> [WHERE col = value]")
	}
	colToks := toks[1:fromIdx]
	name := toks[fromIdx+1]

	var whereCol, whereVal string
	rest := toks[fromIdx+2:]
	if len(rest) > 0 {
		if !strings.EqualFold(rest[0], "WHERE") || len(rest) != 4 || rest[2] != "=" {
			return nil, errf("usage: WHERE col = value")
		}
		whereCol, whereVal = rest[1], unquote(rest[3])
	}

	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	db, err := s.currentLocked()
	if err != nil {
		return nil, err
	}
	t, ok := db.tables[name]
	if !ok {
		return nil, errf("table %q does not exist", name)
	}

	// Resolve selected columns.
	var indices []int
	var cols []string
	if len(colToks) == 1 && colToks[0] == "*" {
		cols = append(cols, t.columns...)
		for i := range t.columns {
			indices = append(indices, i)
		}
	} else {
		for _, c := range colToks {
			c = strings.TrimSuffix(c, ",")
			if c == "" || c == "," {
				continue
			}
			idx := indexOf(t.columns, c)
			if idx < 0 {
				return nil, errf("unknown column %q", c)
			}
			indices = append(indices, idx)
			cols = append(cols, c)
		}
		if len(indices) == 0 {
			return nil, errf("no columns selected")
		}
	}

	whereIdx := -1
	if whereCol != "" {
		whereIdx = indexOf(t.columns, whereCol)
		if whereIdx < 0 {
			return nil, errf("unknown column %q", whereCol)
		}
	}

	res := &Result{Columns: cols}
	for _, row := range t.rows {
		if whereIdx >= 0 && row[whereIdx] != whereVal {
			continue
		}
		out := make([]string, len(indices))
		for i, idx := range indices {
			out[i] = row[idx]
		}
		res.Rows = append(res.Rows, out)
	}
	res.Affected = len(res.Rows)
	return res, nil
}

func (s *Session) execShow(toks []string) (*Result, error) {
	if len(toks) != 2 {
		return nil, errf("usage: SHOW DATABASES|TABLES")
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	switch strings.ToUpper(toks[1]) {
	case "DATABASES":
		var names []string
		for n := range s.eng.dbs {
			names = append(names, n)
		}
		sort.Strings(names)
		res := &Result{Columns: []string{"database"}}
		for _, n := range names {
			res.Rows = append(res.Rows, []string{n})
		}
		res.Affected = len(res.Rows)
		return res, nil
	case "TABLES":
		db, err := s.currentLocked()
		if err != nil {
			return nil, err
		}
		var names []string
		for n := range db.tables {
			names = append(names, n)
		}
		sort.Strings(names)
		res := &Result{Columns: []string{"table"}}
		for _, n := range names {
			res.Rows = append(res.Rows, []string{n})
		}
		res.Affected = len(res.Rows)
		return res, nil
	default:
		return nil, errf("cannot SHOW %q", toks[1])
	}
}

// currentLocked returns the session's selected database. Caller holds the
// engine lock.
func (s *Session) currentLocked() (*database, error) {
	if s.db == "" {
		return nil, errf("no database selected")
	}
	db, ok := s.eng.dbs[s.db]
	if !ok {
		return nil, errf("database %q does not exist", s.db)
	}
	return db, nil
}

func indexOf(ss []string, s string) int {
	for i, x := range ss {
		if x == s {
			return i
		}
	}
	return -1
}

// tokenize splits a statement into tokens: identifiers/values, quoted
// strings (quotes kept), and the punctuation ( ) , = as separate tokens.
func tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	inQuote := false
	for _, r := range s {
		switch {
		case inQuote:
			cur.WriteRune(r)
			if r == '\'' {
				inQuote = false
				flush()
			}
		case r == '\'':
			flush()
			cur.WriteRune(r)
			inQuote = true
		case r == ' ' || r == '\t' || r == ';':
			flush()
		case r == '(' || r == ')' || r == ',' || r == '=':
			flush()
			toks = append(toks, string(r))
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}

// parseParenList parses "( a , b , c )" from the token stream.
func parseParenList(toks []string) ([]string, error) {
	if len(toks) == 0 || toks[0] != "(" {
		return nil, errf("expected '('")
	}
	var out []string
	expectItem := true
	for _, tk := range toks[1:] {
		switch tk {
		case ")":
			if expectItem && len(out) > 0 {
				return nil, errf("trailing comma")
			}
			return out, nil
		case ",":
			if expectItem {
				return nil, errf("unexpected comma")
			}
			expectItem = true
		default:
			if !expectItem {
				return nil, errf("expected ',' before %q", tk)
			}
			out = append(out, tk)
			expectItem = false
		}
	}
	return nil, errf("missing ')'")
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return s[1 : len(s)-1]
	}
	return s
}
