package semantic

import (
	"testing"

	"conferr/internal/scenario"
)

// TestGenerateStreamParity proves the streaming faultload enumerates
// exactly Generate's scenarios, in order, over the BIND record view.
func TestGenerateStreamParity(t *testing.T) {
	set, v := bindViewSet(t)
	for _, classes := range [][]string{nil, {ClassMissingPTR, ClassMXToCNAME}} {
		p := &Plugin{RecordView: v, Classes: classes}
		eager, err := p.Generate(set)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := scenario.Collect(p.GenerateStream(set))
		if err != nil {
			t.Fatal(err)
		}
		if len(eager) == 0 || len(eager) != len(streamed) {
			t.Fatalf("classes %v: eager %d scenarios, streamed %d", classes, len(eager), len(streamed))
		}
		for i := range eager {
			if eager[i].ID != streamed[i].ID {
				t.Fatalf("classes %v, scenario %d: %s vs %s", classes, i, eager[i].ID, streamed[i].ID)
			}
		}
	}
}

func TestGenerateStreamUnknownClass(t *testing.T) {
	set, v := bindViewSet(t)
	p := &Plugin{RecordView: v, Classes: []string{"semantic/nope"}}
	if _, err := scenario.Collect(p.GenerateStream(set)); err == nil {
		t.Error("unknown class accepted by stream")
	}
}

// TestShardParity checks the ShardedGenerator contract over the BIND
// record view: union of strided shards == unsharded stream, any n.
func TestShardParity(t *testing.T) {
	set, v := bindViewSet(t)
	p := &Plugin{RecordView: v}
	want, err := scenario.Collect(p.GenerateStream(set))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 8} {
		total := 0
		for k := 0; k < n; k++ {
			s, err := scenario.Collect(p.GenerateShard(set, k, n))
			if err != nil {
				t.Fatal(err)
			}
			for j, sc := range s {
				if i := j*n + k; i >= len(want) || want[i].ID != sc.ID {
					t.Fatalf("n=%d shard %d: diverges at local %d", n, k, j)
				}
			}
			total += len(s)
		}
		if total != len(want) {
			t.Fatalf("n=%d: shards hold %d, want %d", n, total, len(want))
		}
	}
}
