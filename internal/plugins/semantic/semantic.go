// Package semantic implements ConfErr's domain-specific semantic error
// generator for DNS servers (paper §2.3, §4.3, §5.4): RFC-1912 record
// misconfigurations defined over the system-independent record view, so
// the same fault classes apply unchanged to BIND and djbdns.
package semantic

import (
	"fmt"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/dnsmodel"
	"conferr/internal/scenario"
	"conferr/internal/template"
	"conferr/internal/view"
)

// Fault classes (the numbered errors of the paper's Table 3, plus
// extensions).
const (
	// ClassMissingPTR deletes a PTR record — RFC 1912 §2.1, Table 3 (1).
	ClassMissingPTR = "semantic/missing-ptr"
	// ClassPTRToCNAME retargets a PTR at an alias — Table 3 (2).
	ClassPTRToCNAME = "semantic/ptr-to-cname"
	// ClassCNAMEDupNS adds a CNAME whose owner also has NS records —
	// RFC 1912 §2.4, Table 3 (3).
	ClassCNAMEDupNS = "semantic/cname-dup-ns"
	// ClassMXToCNAME retargets an MX exchange at an alias — RFC 1912
	// §2.4, Table 3 (4).
	ClassMXToCNAME = "semantic/mx-to-cname"
	// ClassCNAMEChain retargets a CNAME at another alias (extension).
	ClassCNAMEChain = "semantic/cname-chain"
	// ClassDuplicateRecord duplicates a record verbatim (extension).
	ClassDuplicateRecord = "semantic/duplicate-record"
	// ClassAddressInCNAME replaces a host's A record with a CNAME to
	// another host — the paper's §2.3 example of using a record type for
	// a similar but different purpose (extension).
	ClassAddressInCNAME = "semantic/address-as-cname"
)

// AllClasses lists every fault class, Table 3 rows first.
func AllClasses() []string {
	return []string{
		ClassMissingPTR, ClassPTRToCNAME, ClassCNAMEDupNS, ClassMXToCNAME,
		ClassCNAMEChain, ClassDuplicateRecord, ClassAddressInCNAME,
	}
}

// Plugin generates RFC-1912 faults over a record view.
type Plugin struct {
	// RecordView maps the target's configuration to the record
	// representation (dnsmodel.ZoneRecordView or dnsmodel.TinyRecordView).
	RecordView view.View
	// Classes selects fault classes; nil means all.
	Classes []string
}

// Name identifies the plugin.
func (p *Plugin) Name() string { return "semantic-dns" }

// View returns the record view the plugin's scenarios apply to.
func (p *Plugin) View() view.View { return p.RecordView }

// viewRecord is one record node located in the view set.
type viewRecord struct {
	file string
	ref  template.Ref
	node *confnode.Node
}

func (r viewRecord) typ() string   { return r.node.AttrDefault(dnsmodel.AttrType, "") }
func (r viewRecord) owner() string { return r.node.Name }

// collect gathers all record nodes of the view set with their refs.
func collect(set *confnode.Set) []viewRecord {
	var out []viewRecord
	set.Walk(func(file string, root *confnode.Node) {
		for _, n := range root.ChildrenByKind(confnode.KindRecord) {
			out = append(out, viewRecord{file: file, ref: template.RefOf(file, n), node: n})
		}
	})
	return out
}

// ofType filters records by RR type.
func ofType(recs []viewRecord, typ string) []viewRecord {
	var out []viewRecord
	for _, r := range recs {
		if r.typ() == typ {
			out = append(out, r)
		}
	}
	return out
}

// Generate enumerates the semantic fault scenarios for the record view of
// the initial configuration.
func (p *Plugin) Generate(set *confnode.Set) ([]scenario.Scenario, error) {
	return scenario.Collect(p.GenerateStream(set))
}

// GenerateStream yields the semantic faultload lazily, class by class: the
// record index is built once (bounded by the zone data), and each class's
// scenarios stream out before the next class is synthesized.
func (p *Plugin) GenerateStream(set *confnode.Set) scenario.Source {
	return func(yield func(scenario.Scenario, error) bool) {
		classes := p.Classes
		if classes == nil {
			classes = AllClasses()
		}
		recs := collect(set)
		for _, class := range classes {
			gen, ok := generators[class]
			if !ok {
				yield(scenario.Scenario{}, fmt.Errorf("semantic: unknown fault class %q", class))
				return
			}
			for _, sc := range gen(recs) {
				if !yield(sc, nil) {
					return
				}
			}
		}
	}
}

// GenerateShard yields shard k of n of the semantic faultload: the
// generator is deterministic (no randomness at all), so the strided
// sub-stream of GenerateStream is shard-stable for any n.
func (p *Plugin) GenerateShard(set *confnode.Set, k, n int) scenario.Source {
	return p.GenerateStream(set).Shard(k, n)
}

var generators = map[string]func([]viewRecord) []scenario.Scenario{
	ClassMissingPTR:      genMissingPTR,
	ClassPTRToCNAME:      genPTRToCNAME,
	ClassCNAMEDupNS:      genCNAMEDupNS,
	ClassMXToCNAME:       genMXToCNAME,
	ClassCNAMEChain:      genCNAMEChain,
	ClassDuplicateRecord: genDuplicateRecord,
	ClassAddressInCNAME:  genAddressInCNAME,
}

// resolveRecord resolves a ref and verifies it still denotes a record.
func resolveRecord(s *confnode.Set, ref template.Ref) (*confnode.Node, error) {
	n, err := ref.Resolve(s)
	if err != nil {
		return nil, err
	}
	if n.Kind != confnode.KindRecord {
		return nil, fmt.Errorf("ref %v is not a record: %w", ref, scenario.ErrNotApplicable)
	}
	return n, nil
}

func genMissingPTR(recs []viewRecord) []scenario.Scenario {
	var out []scenario.Scenario
	for i, r := range ofType(recs, "PTR") {
		ref := r.ref
		out = append(out, scenario.Scenario{
			ID:          fmt.Sprintf("%s/%s/%d", ClassMissingPTR, ref, i),
			Class:       ClassMissingPTR,
			Description: fmt.Sprintf("remove PTR %s -> %s", r.owner(), r.node.Value),
			Apply: func(s *confnode.Set) error {
				n, err := resolveRecord(s, ref)
				if err != nil {
					return err
				}
				n.Remove()
				return nil
			},
		})
	}
	return out
}

func genPTRToCNAME(recs []viewRecord) []scenario.Scenario {
	cnames := ofType(recs, "CNAME")
	var out []scenario.Scenario
	seq := 0
	for _, ptr := range ofType(recs, "PTR") {
		for _, c := range cnames {
			// The realistic mistake: the operator writes the alias name
			// instead of the canonical name the alias points to.
			if c.node.Value != ptr.node.Value {
				continue
			}
			ref, alias := ptr.ref, c.owner()
			out = append(out, scenario.Scenario{
				ID:    fmt.Sprintf("%s/%s/%d", ClassPTRToCNAME, ref, seq),
				Class: ClassPTRToCNAME,
				Description: fmt.Sprintf("retarget PTR %s at alias %s (was %s)",
					ptr.owner(), alias, ptr.node.Value),
				Apply: func(s *confnode.Set) error {
					n, err := resolveRecord(s, ref)
					if err != nil {
						return err
					}
					n.Value = alias
					return nil
				},
			})
			seq++
		}
	}
	return out
}

func genCNAMEDupNS(recs []viewRecord) []scenario.Scenario {
	as := ofType(recs, "A")
	var out []scenario.Scenario
	seq := 0
	for _, ns := range ofType(recs, "NS") {
		// Pick a target that is not the NS owner itself.
		var target string
		for _, a := range as {
			if a.owner() != ns.owner() {
				target = a.owner()
				break
			}
		}
		if target == "" {
			continue
		}
		file, owner := ns.file, ns.owner()
		ttl := ns.node.AttrDefault(dnsmodel.AttrTTL, "3600")
		out = append(out, scenario.Scenario{
			ID:          fmt.Sprintf("%s/%s/%d", ClassCNAMEDupNS, ns.ref, seq),
			Class:       ClassCNAMEDupNS,
			Description: fmt.Sprintf("add CNAME %s -> %s alongside NS records", owner, target),
			Apply: func(s *confnode.Set) error {
				root := s.Get(file)
				if root == nil {
					return fmt.Errorf("file %q gone: %w", file, scenario.ErrNotApplicable)
				}
				c := confnode.NewValued(confnode.KindRecord, owner, target)
				c.SetAttr(dnsmodel.AttrType, "CNAME")
				c.SetAttr(dnsmodel.AttrTTL, ttl)
				root.Append(c)
				return nil
			},
		})
		seq++
	}
	return out
}

func genMXToCNAME(recs []viewRecord) []scenario.Scenario {
	cnames := ofType(recs, "CNAME")
	var out []scenario.Scenario
	seq := 0
	for _, mx := range ofType(recs, "MX") {
		for _, c := range cnames {
			ref, alias := mx.ref, c.owner()
			fields := strings.Fields(mx.node.Value)
			if len(fields) != 2 || fields[1] == alias {
				continue
			}
			pref := fields[0]
			out = append(out, scenario.Scenario{
				ID:    fmt.Sprintf("%s/%s/%d", ClassMXToCNAME, ref, seq),
				Class: ClassMXToCNAME,
				Description: fmt.Sprintf("retarget MX %s at alias %s (was %s)",
					mx.owner(), alias, fields[1]),
				Apply: func(s *confnode.Set) error {
					n, err := resolveRecord(s, ref)
					if err != nil {
						return err
					}
					n.Value = pref + " " + alias
					return nil
				},
			})
			seq++
		}
	}
	return out
}

func genCNAMEChain(recs []viewRecord) []scenario.Scenario {
	cnames := ofType(recs, "CNAME")
	var out []scenario.Scenario
	seq := 0
	for _, c1 := range cnames {
		for _, c2 := range cnames {
			if c1.node == c2.node || c1.node.Value == c2.owner() {
				continue
			}
			ref, alias := c1.ref, c2.owner()
			out = append(out, scenario.Scenario{
				ID:          fmt.Sprintf("%s/%s/%d", ClassCNAMEChain, ref, seq),
				Class:       ClassCNAMEChain,
				Description: fmt.Sprintf("chain CNAME %s -> alias %s", c1.owner(), alias),
				Apply: func(s *confnode.Set) error {
					n, err := resolveRecord(s, ref)
					if err != nil {
						return err
					}
					n.Value = alias
					return nil
				},
			})
			seq++
		}
	}
	return out
}

func genDuplicateRecord(recs []viewRecord) []scenario.Scenario {
	var out []scenario.Scenario
	for i, r := range recs {
		if r.typ() == "SOA" {
			continue
		}
		ref := r.ref
		out = append(out, scenario.Scenario{
			ID:          fmt.Sprintf("%s/%s/%d", ClassDuplicateRecord, ref, i),
			Class:       ClassDuplicateRecord,
			Description: fmt.Sprintf("duplicate %s %s", r.typ(), r.owner()),
			Apply: func(s *confnode.Set) error {
				n, err := resolveRecord(s, ref)
				if err != nil {
					return err
				}
				dup := n.Clone()
				dup.DelAttr(view.SrcAttr)
				n.Parent().Append(dup)
				return nil
			},
		})
	}
	return out
}

func genAddressInCNAME(recs []viewRecord) []scenario.Scenario {
	as := ofType(recs, "A")
	var out []scenario.Scenario
	seq := 0
	for _, a := range as {
		// Replace the A record with a CNAME to another host — the §2.3
		// example of misusing CNAME to "associate an address".
		var target string
		for _, other := range as {
			if other.owner() != a.owner() {
				target = other.owner()
				break
			}
		}
		if target == "" {
			continue
		}
		ref := a.ref
		out = append(out, scenario.Scenario{
			ID:          fmt.Sprintf("%s/%s/%d", ClassAddressInCNAME, ref, seq),
			Class:       ClassAddressInCNAME,
			Description: fmt.Sprintf("replace A %s with CNAME -> %s", a.owner(), target),
			Apply: func(s *confnode.Set) error {
				n, err := resolveRecord(s, ref)
				if err != nil {
					return err
				}
				n.SetAttr(dnsmodel.AttrType, "CNAME")
				n.Value = target
				// Losing the provenance part marker would orphan the other
				// half of a combined tinydns directive; keep attrs so the
				// backward transform can detect the inconsistency.
				return nil
			},
		})
		seq++
	}
	return out
}
