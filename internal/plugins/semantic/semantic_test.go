package semantic

import (
	"strings"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/dnsmodel"
	"conferr/internal/formats/tinydns"
	"conferr/internal/formats/zonefile"
	"conferr/internal/scenario"
	"conferr/internal/suts/bind"
	"conferr/internal/suts/djbdns"
)

// bindViewSet builds the record view of the BIND simulator's default
// zones.
func bindViewSet(t *testing.T) (*confnode.Set, dnsmodel.ZoneRecordView) {
	t.Helper()
	s, err := bind.New(5353)
	if err != nil {
		t.Fatal(err)
	}
	files := s.DefaultConfig()
	sys := confnode.NewSet()
	for _, name := range []string{bind.ForwardZoneFile, bind.ReverseZoneFile} {
		doc, err := (zonefile.Format{}).Parse(name, files[name])
		if err != nil {
			t.Fatal(err)
		}
		sys.Put(name, doc)
	}
	v := dnsmodel.ZoneRecordView{Origins: bind.Origins()}
	fwd, err := v.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}
	return fwd, v
}

func tinyViewSet(t *testing.T) *confnode.Set {
	t.Helper()
	s, err := djbdns.New(5353)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := (tinydns.Format{}).Parse(djbdns.DataFile, s.DefaultConfig()[djbdns.DataFile])
	if err != nil {
		t.Fatal(err)
	}
	sys := confnode.NewSet()
	sys.Put(djbdns.DataFile, doc)
	v := dnsmodel.TinyRecordView{File: djbdns.DataFile}
	fwd, err := v.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}
	return fwd
}

func TestGenerateAllClassesBind(t *testing.T) {
	viewSet, v := bindViewSet(t)
	p := &Plugin{RecordView: v}
	scens, err := p.Generate(viewSet)
	if err != nil {
		t.Fatal(err)
	}
	byClass := scenario.ByClass(scens)
	// 3 PTR records to delete.
	if got := len(byClass[ClassMissingPTR]); got != 3 {
		t.Errorf("missing-ptr = %d, want 3", got)
	}
	// PTR www -> alias ftp; PTR mail -> alias webmail.
	if got := len(byClass[ClassPTRToCNAME]); got != 2 {
		t.Errorf("ptr-to-cname = %d, want 2", got)
	}
	// 2 NS records (one per zone).
	if got := len(byClass[ClassCNAMEDupNS]); got != 2 {
		t.Errorf("cname-dup-ns = %d, want 2", got)
	}
	// 1 MX × 2 aliases.
	if got := len(byClass[ClassMXToCNAME]); got != 2 {
		t.Errorf("mx-to-cname = %d, want 2", got)
	}
	if got := len(byClass[ClassCNAMEChain]); got != 2 {
		t.Errorf("cname-chain = %d, want 2", got)
	}
	if len(byClass[ClassDuplicateRecord]) == 0 || len(byClass[ClassAddressInCNAME]) == 0 {
		t.Error("extension classes missing")
	}
	for _, s := range scens {
		if err := s.Validate(); err != nil {
			t.Errorf("invalid scenario: %v", err)
		}
	}
	if p.Name() != "semantic-dns" {
		t.Error("name wrong")
	}
	if p.View().Name() != "zone-records" {
		t.Error("view wrong")
	}
}

func TestClassFilter(t *testing.T) {
	viewSet, v := bindViewSet(t)
	p := &Plugin{RecordView: v, Classes: []string{ClassMissingPTR}}
	scens, err := p.Generate(viewSet)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scens {
		if s.Class != ClassMissingPTR {
			t.Errorf("unexpected class %s", s.Class)
		}
	}
	p.Classes = []string{"semantic/bogus"}
	if _, err := p.Generate(viewSet); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestMissingPTRApply(t *testing.T) {
	viewSet, v := bindViewSet(t)
	p := &Plugin{RecordView: v, Classes: []string{ClassMissingPTR}}
	scens, _ := p.Generate(viewSet)
	clone := viewSet.Clone()
	if err := scens[0].Apply(clone); err != nil {
		t.Fatal(err)
	}
	before := viewSet.Get(bind.ReverseZoneFile).CountKind(confnode.KindRecord)
	after := clone.Get(bind.ReverseZoneFile).CountKind(confnode.KindRecord)
	if after != before-1 {
		t.Errorf("records %d -> %d, want one fewer", before, after)
	}
}

func TestPTRToCNAMEApply(t *testing.T) {
	viewSet, v := bindViewSet(t)
	p := &Plugin{RecordView: v, Classes: []string{ClassPTRToCNAME}}
	scens, _ := p.Generate(viewSet)
	if len(scens) == 0 {
		t.Fatal("no scenarios")
	}
	clone := viewSet.Clone()
	if err := scens[0].Apply(clone); err != nil {
		t.Fatal(err)
	}
	found := false
	clone.Get(bind.ReverseZoneFile).Walk(func(n *confnode.Node) bool {
		if n.Kind == confnode.KindRecord && (n.Value == "ftp.example.com" || n.Value == "webmail.example.com") {
			found = true
		}
		return true
	})
	if !found {
		t.Error("no PTR retargeted at an alias")
	}
}

func TestCNAMEDupNSApply(t *testing.T) {
	viewSet, v := bindViewSet(t)
	p := &Plugin{RecordView: v, Classes: []string{ClassCNAMEDupNS}}
	scens, _ := p.Generate(viewSet)
	clone := viewSet.Clone()
	if err := scens[0].Apply(clone); err != nil {
		t.Fatal(err)
	}
	// An inserted CNAME with an NS owner must exist somewhere.
	dup := false
	clone.Walk(func(_ string, root *confnode.Node) {
		for _, n := range root.ChildrenByKind(confnode.KindRecord) {
			if n.AttrDefault(dnsmodel.AttrType, "") != "CNAME" {
				continue
			}
			for _, m := range root.ChildrenByKind(confnode.KindRecord) {
				if m.AttrDefault(dnsmodel.AttrType, "") == "NS" && m.Name == n.Name {
					dup = true
				}
			}
		}
	})
	if !dup {
		t.Error("no CNAME duplicating an NS owner")
	}
}

func TestMXToCNAMEApply(t *testing.T) {
	viewSet, v := bindViewSet(t)
	p := &Plugin{RecordView: v, Classes: []string{ClassMXToCNAME}}
	scens, _ := p.Generate(viewSet)
	clone := viewSet.Clone()
	if err := scens[0].Apply(clone); err != nil {
		t.Fatal(err)
	}
	ok := false
	clone.Get(bind.ForwardZoneFile).Walk(func(n *confnode.Node) bool {
		if n.Kind == confnode.KindRecord && n.AttrDefault(dnsmodel.AttrType, "") == "MX" {
			f := strings.Fields(n.Value)
			if len(f) == 2 && (f[1] == "ftp.example.com" || f[1] == "webmail.example.com") {
				ok = true
			}
		}
		return true
	})
	if !ok {
		t.Error("MX not retargeted at alias")
	}
}

func TestGenerateOnTinyView(t *testing.T) {
	viewSet := tinyViewSet(t)
	p := &Plugin{
		RecordView: dnsmodel.TinyRecordView{File: djbdns.DataFile},
		Classes:    []string{ClassMissingPTR, ClassPTRToCNAME, ClassCNAMEDupNS, ClassMXToCNAME},
	}
	scens, err := p.Generate(viewSet)
	if err != nil {
		t.Fatal(err)
	}
	byClass := scenario.ByClass(scens)
	// The same generator finds targets in the tinydns view: 3 derived
	// PTRs, aliases, NS records and the MX.
	if len(byClass[ClassMissingPTR]) != 3 {
		t.Errorf("missing-ptr = %d", len(byClass[ClassMissingPTR]))
	}
	if len(byClass[ClassPTRToCNAME]) != 2 {
		t.Errorf("ptr-to-cname = %d", len(byClass[ClassPTRToCNAME]))
	}
	if len(byClass[ClassCNAMEDupNS]) != 2 {
		t.Errorf("cname-dup-ns = %d", len(byClass[ClassCNAMEDupNS]))
	}
	if len(byClass[ClassMXToCNAME]) != 2 {
		t.Errorf("mx-to-cname = %d", len(byClass[ClassMXToCNAME]))
	}
}

func TestDuplicateRecordKeepsProvenanceClean(t *testing.T) {
	viewSet, v := bindViewSet(t)
	p := &Plugin{RecordView: v, Classes: []string{ClassDuplicateRecord}}
	scens, _ := p.Generate(viewSet)
	clone := viewSet.Clone()
	if err := scens[0].Apply(clone); err != nil {
		t.Fatal(err)
	}
	// The duplicate must NOT carry provenance (it is an insert, not an
	// update of the original).
	total := 0
	clone.Walk(func(_ string, root *confnode.Node) {
		for _, n := range root.ChildrenByKind(confnode.KindRecord) {
			if _, ok := n.Attr("src"); !ok {
				total++
			}
		}
	})
	if total != 1 {
		t.Errorf("unprovenanced records = %d, want 1", total)
	}
}

func TestAllClassesList(t *testing.T) {
	if len(AllClasses()) != 7 {
		t.Errorf("AllClasses = %d", len(AllClasses()))
	}
}
