package structural

import (
	"strings"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/formats"
	"conferr/internal/formats/ini"
	"conferr/internal/scenario"
)

const sampleINI = `[mysqld]
port = 3306
key_buffer_size = 16M
max_connections = 151

[mysqldump]
quick
max_allowed_packet = 16M
`

func iniSet(t *testing.T) *confnode.Set {
	t.Helper()
	doc, err := (ini.Format{}).Parse("my.cnf", []byte(sampleINI))
	if err != nil {
		t.Fatal(err)
	}
	set := confnode.NewSet()
	set.Put("my.cnf", doc)
	return set
}

func TestPluginGenerate(t *testing.T) {
	p := &Plugin{Sections: true}
	scens, err := p.Generate(iniSet(t))
	if err != nil {
		t.Fatal(err)
	}
	byClass := scenario.ByClass(scens)
	// 5 directives to omit/duplicate; moves: each directive to the other
	// section; 2 sections to omit/duplicate.
	if got := len(byClass["structural/omit-directive"]); got != 5 {
		t.Errorf("omit-directive = %d", got)
	}
	if got := len(byClass["structural/duplicate-directive"]); got != 5 {
		t.Errorf("duplicate-directive = %d", got)
	}
	if got := len(byClass["structural/misplace-directive"]); got != 5 {
		t.Errorf("misplace-directive = %d", got)
	}
	if got := len(byClass["structural/omit-section"]); got != 2 {
		t.Errorf("omit-section = %d", got)
	}
	if got := len(byClass["structural/duplicate-section"]); got != 2 {
		t.Errorf("duplicate-section = %d", got)
	}
	if p.Name() != "structural" || p.View().Name() != "struct" {
		t.Error("identity wrong")
	}
}

func TestPluginPerClassSampling(t *testing.T) {
	p := &Plugin{Sections: true, PerClass: 1, Seed: 3}
	scens, err := p.Generate(iniSet(t))
	if err != nil {
		t.Fatal(err)
	}
	for class, s := range scenario.ByClass(scens) {
		if len(s) != 1 {
			t.Errorf("class %s has %d scenarios", class, len(s))
		}
	}
	// The zero Seed is valid: PerClass sampling works without any
	// explicit randomness source.
	if _, err := (&Plugin{PerClass: 1}).Generate(iniSet(t)); err != nil {
		t.Errorf("zero-seed PerClass sampling failed: %v", err)
	}
}

func TestMisplaceDirectiveScenario(t *testing.T) {
	p := &Plugin{}
	scens, _ := p.Generate(iniSet(t))
	var move scenario.Scenario
	for _, s := range scens {
		if s.Class == "structural/misplace-directive" && strings.Contains(s.Description, "port") {
			move = s
			break
		}
	}
	if move.Apply == nil {
		t.Fatal("no move scenario for port")
	}
	set := iniSet(t)
	clone := set.Clone()
	if err := move.Apply(clone); err != nil {
		t.Fatal(err)
	}
	mysqld := clone.Get("my.cnf").ChildByName("mysqld")
	dump := clone.Get("my.cnf").ChildByName("mysqldump")
	if mysqld.ChildByName("port") != nil {
		t.Error("port still in [mysqld]")
	}
	if dump.ChildByName("port") == nil {
		t.Error("port not in [mysqldump]")
	}
}

func variationScens(t *testing.T, class string, per int) []scenario.Scenario {
	t.Helper()
	v := &Variations{Classes: []string{class}, PerClass: per, Seed: 7}
	scens, err := v.Generate(iniSet(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != per {
		t.Fatalf("scenarios = %d, want %d", len(scens), per)
	}
	return scens
}

func TestVariationSectionOrderPreservesContent(t *testing.T) {
	set := iniSet(t)
	for _, s := range variationScens(t, VariationSectionOrder, 10) {
		clone := set.Clone()
		if err := s.Apply(clone); err != nil {
			t.Fatal(err)
		}
		doc := clone.Get("my.cnf")
		if doc.CountKind(confnode.KindSection) != 2 || doc.CountKind(confnode.KindDirective) != 5 {
			t.Fatal("section order variation lost content")
		}
		// Sections keep their own directives.
		mysqld := doc.ChildByName("mysqld")
		if mysqld.ChildByName("port") == nil {
			t.Error("port lost from [mysqld]")
		}
	}
}

func TestVariationDirectiveOrderPreservesMembership(t *testing.T) {
	set := iniSet(t)
	changed := false
	for _, s := range variationScens(t, VariationDirectiveOrder, 10) {
		clone := set.Clone()
		if err := s.Apply(clone); err != nil {
			t.Fatal(err)
		}
		mysqld := clone.Get("my.cnf").ChildByName("mysqld")
		if mysqld.CountKind(confnode.KindDirective) != 3 {
			t.Fatal("directive lost")
		}
		if mysqld.Child(0).Name != "port" {
			changed = true
		}
	}
	if !changed {
		t.Error("10 reorders never moved the first directive; rewrite inert?")
	}
}

func TestVariationSpacesChangesSeparators(t *testing.T) {
	set := iniSet(t)
	changed := false
	for _, s := range variationScens(t, VariationSpaces, 10) {
		clone := set.Clone()
		if err := s.Apply(clone); err != nil {
			t.Fatal(err)
		}
		port := clone.Get("my.cnf").ChildByName("mysqld").ChildByName("port")
		if sep, _ := port.Attr(formats.AttrSep); sep != " = " {
			changed = true
			if !strings.Contains(sep, "=") {
				t.Errorf("separator %q lost '='", sep)
			}
		}
	}
	if !changed {
		t.Error("spaces rewrite never changed a separator")
	}
}

func TestVariationMixedCaseAltersEveryName(t *testing.T) {
	set := iniSet(t)
	for _, s := range variationScens(t, VariationMixedCase, 5) {
		clone := set.Clone()
		if err := s.Apply(clone); err != nil {
			t.Fatal(err)
		}
		clone.Get("my.cnf").Walk(func(n *confnode.Node) bool {
			if n.Kind != confnode.KindDirective {
				return true
			}
			orig := findOriginal(set, n)
			if orig == nil {
				t.Errorf("no original for %q", n.Name)
				return true
			}
			if n.Name == orig.Name {
				t.Errorf("name %q unchanged by mixed-case rewrite", n.Name)
			}
			if !strings.EqualFold(n.Name, orig.Name) {
				t.Errorf("mixed-case changed letters: %q vs %q", n.Name, orig.Name)
			}
			return true
		})
	}
}

// findOriginal locates the original directive at the same tree position.
func findOriginal(set *confnode.Set, n *confnode.Node) *confnode.Node {
	var path []int
	for cur := n; cur.Parent() != nil; cur = cur.Parent() {
		path = append([]int{cur.Index()}, path...)
	}
	orig := set.Get("my.cnf")
	for _, i := range path {
		orig = orig.Child(i)
	}
	return orig
}

func TestVariationTruncatedNames(t *testing.T) {
	set := iniSet(t)
	truncated := false
	for _, s := range variationScens(t, VariationTruncatedNames, 10) {
		clone := set.Clone()
		if err := s.Apply(clone); err != nil {
			t.Fatal(err)
		}
		kb := clone.Get("my.cnf").ChildByName("mysqld").Child(1)
		if kb.Name == "key_buffer_siz" {
			truncated = true
		} else if kb.Name != "key_buffer_size" {
			t.Errorf("unexpected truncation %q", kb.Name)
		}
	}
	if !truncated {
		t.Error("truncation never applied over 10 rewrites")
	}
}

func TestVariationsReplayable(t *testing.T) {
	set := iniSet(t)
	v := &Variations{PerClass: 3, Seed: 42}
	scens, err := v.Generate(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scens {
		a, b := set.Clone(), set.Clone()
		if err := s.Apply(a); err != nil {
			t.Fatal(err)
		}
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("scenario %s not replayable", s.ID)
		}
	}
}

func TestVariationsErrors(t *testing.T) {
	if _, err := (&Variations{}).Generate(iniSet(t)); err != nil {
		t.Errorf("zero-seed variations failed: %v", err)
	}
	v := &Variations{Classes: []string{"variation/bogus"}, Seed: 1}
	if _, err := v.Generate(iniSet(t)); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestAllVariationClasses(t *testing.T) {
	if len(AllVariationClasses()) != 5 {
		t.Error("expected 5 Table 2 rows")
	}
}

func kvDonor(t *testing.T) *confnode.Set {
	t.Helper()
	doc := confnode.New(confnode.KindDocument, "postgresql.conf")
	doc.Append(
		confnode.NewValued(confnode.KindDirective, "shared_buffers", "32MB"),
		confnode.NewValued(confnode.KindDirective, "max_connections", "100"),
	)
	set := confnode.NewSet()
	set.Put("postgresql.conf", doc)
	return set
}

func TestBorrowGenerate(t *testing.T) {
	b := &Borrow{Donor: kvDonor(t)}
	scens, err := b.Generate(iniSet(t))
	if err != nil {
		t.Fatal(err)
	}
	// 2 foreign directives × (1 doc root + 2 sections) = 6.
	if len(scens) != 6 {
		t.Fatalf("scenarios = %d, want 6", len(scens))
	}
	if b.Name() != "borrow" || b.View().Name() != "struct" {
		t.Error("identity wrong")
	}
	set := iniSet(t)
	for _, s := range scens {
		clone := set.Clone()
		if err := s.Apply(clone); err != nil {
			t.Fatal(err)
		}
		// Exactly one directive more than the original.
		orig := countDirs(set)
		got := countDirs(clone)
		if got != orig+1 {
			t.Errorf("%s: directives %d -> %d", s.ID, orig, got)
		}
	}
}

func countDirs(set *confnode.Set) int {
	n := 0
	set.Walk(func(_ string, root *confnode.Node) {
		n += root.CountKind(confnode.KindDirective)
	})
	return n
}

func TestBorrowSamplingAndErrors(t *testing.T) {
	b := &Borrow{Donor: kvDonor(t), PerClass: 2, Seed: 1}
	scens, err := b.Generate(iniSet(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 2 {
		t.Errorf("sampled = %d", len(scens))
	}
	if _, err := (&Borrow{}).Generate(iniSet(t)); err == nil {
		t.Error("missing donor accepted")
	}
	if _, err := (&Borrow{Donor: kvDonor(t), PerClass: 1}).Generate(iniSet(t)); err != nil {
		t.Errorf("zero-seed borrow sampling failed: %v", err)
	}
}
