// Package structural implements ConfErr's structural error generator
// (paper §2.2, §4.2) over the struct view: omission of directives and
// sections, duplication (copy-paste repetition), and misplacement of
// directives into the wrong section. It also implements the §5.3
// variations generator — structure-preserving rewrites (reordering,
// whitespace, case, truncation) that an ideal system should accept, used
// to produce Table 2.
package structural

import (
	"fmt"
	"math/rand"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/cpath"
	"conferr/internal/formats"
	"conferr/internal/scenario"
	"conferr/internal/template"
	"conferr/internal/view"
)

// Plugin generates structural faults: omissions, duplications and moves.
type Plugin struct {
	// Sections enables section-level omission/duplication in addition to
	// directive-level faults.
	Sections bool
	// PerClass bounds the number of scenarios per fault class; 0 keeps
	// all. Sampling uses an RNG derived from Seed.
	PerClass int
	// Seed derives the sampling RNG, per stream call: the faultload is a
	// pure function of (Seed, configuration), so repeated and sharded
	// enumerations agree exactly.
	Seed int64
}

// Name identifies the plugin.
func (p *Plugin) Name() string { return "structural" }

// View returns the configuration view the plugin's scenarios apply to.
func (p *Plugin) View() view.View { return view.StructView{} }

// Generate enumerates the structural fault scenarios. It materializes
// GenerateStream, so the slice and streaming paths enumerate the identical
// faultload.
func (p *Plugin) Generate(set *confnode.Set) ([]scenario.Scenario, error) {
	return scenario.Collect(p.GenerateStream(set))
}

// GenerateStream yields the structural faultload lazily, class by class.
// Without PerClass sampling every template's (target × destination)
// fan-out — quadratic for misplacements — streams one scenario at a time;
// with sampling, each class pool materializes internally and the draws
// stay identical to the historical eager path.
func (p *Plugin) GenerateStream(set *confnode.Set) scenario.Source {
	// Deriving the RNG inside the returned closure makes every
	// enumeration — not just every GenerateStream call — pure: a Source
	// value driven twice samples identically, like every other plugin.
	return func(yield func(scenario.Scenario, error) bool) {
		p.stream(set)(yield)
	}
}

// stream builds one enumeration's pipeline: a fresh sampling RNG shared
// by the class samplers in class order (the historical draw order).
func (p *Plugin) stream(set *confnode.Set) scenario.Source {
	classes := p.templates()
	var rng *rand.Rand
	if p.PerClass > 0 {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	sources := make([]scenario.Source, len(classes))
	for i, tpl := range classes {
		tpl := tpl
		wrap := func(err error) error {
			return fmt.Errorf("structural: %s: %w", tpl.Name(), err)
		}
		if p.PerClass > 0 {
			// Sampling needs the class pool; the pool materializes when
			// the class is reached, and the RNG draws stay in class order.
			sources[i] = scenario.Source(func(yield func(scenario.Scenario, error) bool) {
				scens, err := tpl.Generate(set)
				if err != nil {
					yield(scenario.Scenario{}, wrap(err))
					return
				}
				for _, sc := range scenario.RandomSubset(rng, scens, p.PerClass) {
					if !yield(sc, nil) {
						return
					}
				}
			})
			continue
		}
		sources[i] = tpl.GenerateStream(set).MapErr(wrap)
	}
	return scenario.Concat(sources...)
}

// GenerateShard yields shard k of n: the strided sub-stream of the pure
// GenerateStream. Union of all shards ≡ the unsharded stream, any n.
func (p *Plugin) GenerateShard(set *confnode.Set, k, n int) scenario.Source {
	return p.GenerateStream(set).Shard(k, n)
}

// templates lists the fault-class templates the plugin composes.
func (p *Plugin) templates() []template.Template {
	classes := []template.Template{
		&template.DeleteTemplate{
			Targets: cpath.MustCompile("//directive"),
			Class:   "structural/omit-directive",
		},
		&template.DuplicateTemplate{
			Targets: cpath.MustCompile("//directive"),
			Class:   "structural/duplicate-directive",
		},
		&template.MoveTemplate{
			Targets:      cpath.MustCompile("//directive"),
			Destinations: cpath.MustCompile("//section"),
			Class:        "structural/misplace-directive",
		},
	}
	if p.Sections {
		classes = append(classes,
			&template.DeleteTemplate{
				Targets: cpath.MustCompile("//section"),
				Class:   "structural/omit-section",
			},
			&template.DuplicateTemplate{
				Targets: cpath.MustCompile("//section"),
				Class:   "structural/duplicate-section",
			},
		)
	}
	return classes
}

// Variation classes for the §5.3 experiment (Table 2 rows).
const (
	// VariationSectionOrder reorders sibling sections.
	VariationSectionOrder = "variation/section-order"
	// VariationDirectiveOrder reorders directives within their section.
	VariationDirectiveOrder = "variation/directive-order"
	// VariationSpaces rewrites the whitespace around separators.
	VariationSpaces = "variation/spaces"
	// VariationMixedCase rewrites directive names with random case.
	VariationMixedCase = "variation/mixed-case"
	// VariationTruncatedNames truncates directive names by one character.
	VariationTruncatedNames = "variation/truncated-names"
)

// AllVariationClasses lists the Table 2 variation classes in row order.
func AllVariationClasses() []string {
	return []string{
		VariationSectionOrder,
		VariationDirectiveOrder,
		VariationSpaces,
		VariationMixedCase,
		VariationTruncatedNames,
	}
}

// Variations generates structure-preserving configuration rewrites: for
// each requested class, PerClass scenarios each rewriting the whole
// configuration (the paper tested "each system with 10 different
// configuration files" per class). An ideal system accepts every one.
type Variations struct {
	// Classes selects the variation classes; nil means all.
	Classes []string
	// PerClass is the number of variant configurations per class
	// (default 10, as in the paper).
	PerClass int
	// Seed derives the per-scenario rewrite seeds, afresh on every stream
	// call, keeping the faultload a pure function of (Seed, classes).
	Seed int64
}

// Name identifies the generator.
func (v *Variations) Name() string { return "variations" }

// View returns the configuration view the scenarios apply to.
func (v *Variations) View() view.View { return view.StructView{} }

// Generate enumerates variation scenarios. Each scenario captures a seed
// so it is replayable.
func (v *Variations) Generate(set *confnode.Set) ([]scenario.Scenario, error) {
	return scenario.Collect(v.GenerateStream(set))
}

// GenerateStream yields variation scenarios lazily; the per-scenario
// rewrite seeds are drawn from a seed-derived RNG in the same order as
// the eager path, so every enumeration yields the identical faultload.
func (v *Variations) GenerateStream(set *confnode.Set) scenario.Source {
	return func(yield func(scenario.Scenario, error) bool) {
		rng := rand.New(rand.NewSource(v.Seed))
		classes := v.Classes
		if classes == nil {
			classes = AllVariationClasses()
		}
		per := v.PerClass
		if per == 0 {
			per = 10
		}
		for _, class := range classes {
			rewrite, ok := rewriters[class]
			if !ok {
				yield(scenario.Scenario{}, fmt.Errorf("structural: unknown variation class %q", class))
				return
			}
			for i := 0; i < per; i++ {
				seed := rng.Int63()
				sc := scenario.Scenario{
					ID:          fmt.Sprintf("%s/%d", class, i),
					Class:       class,
					Description: fmt.Sprintf("%s rewrite #%d", class, i),
					Apply: func(s *confnode.Set) error {
						rewrite(rand.New(rand.NewSource(seed)), s)
						return nil
					},
				}
				if !yield(sc, nil) {
					return
				}
			}
		}
	}
}

// GenerateShard yields shard k of n of the variations faultload (strided
// sub-stream of the pure GenerateStream).
func (v *Variations) GenerateShard(set *confnode.Set, k, n int) scenario.Source {
	return v.GenerateStream(set).Shard(k, n)
}

// rewriters maps each variation class to its whole-configuration rewrite.
var rewriters = map[string]func(*rand.Rand, *confnode.Set){
	VariationSectionOrder:   rewriteSectionOrder,
	VariationDirectiveOrder: rewriteDirectiveOrder,
	VariationSpaces:         rewriteSpaces,
	VariationMixedCase:      rewriteMixedCase,
	VariationTruncatedNames: rewriteTruncatedNames,
}

// shuffleAmong permutes the given children of parent among their own
// positions, leaving other children (comments, blanks) in place.
func shuffleAmong(rng *rand.Rand, parent *confnode.Node, kind confnode.Kind) {
	nodes := parent.ChildrenByKind(kind)
	if len(nodes) < 2 {
		return
	}
	positions := make([]int, len(nodes))
	for i, n := range nodes {
		positions[i] = n.Index()
	}
	perm := rng.Perm(len(nodes))
	// Detach all, then reinsert in permuted order at the recorded
	// positions (ascending to keep indices valid).
	for _, n := range nodes {
		n.Remove()
	}
	for i, pos := range positions {
		parent.InsertAt(pos, nodes[perm[i]])
	}
}

func rewriteSectionOrder(rng *rand.Rand, set *confnode.Set) {
	set.Walk(func(_ string, root *confnode.Node) {
		shuffleAmong(rng, root, confnode.KindSection)
	})
}

func rewriteDirectiveOrder(rng *rand.Rand, set *confnode.Set) {
	set.Walk(func(_ string, root *confnode.Node) {
		root.Walk(func(n *confnode.Node) bool {
			if n.Kind == confnode.KindDocument || n.Kind == confnode.KindSection {
				shuffleAmong(rng, n, confnode.KindDirective)
			}
			return true
		})
	})
}

func rewriteSpaces(rng *rand.Rand, set *confnode.Set) {
	pads := []string{"", " ", "  ", "\t", "   "}
	set.Walk(func(_ string, root *confnode.Node) {
		root.Walk(func(n *confnode.Node) bool {
			if n.Kind != confnode.KindDirective {
				return true
			}
			sep, ok := n.Attr(formats.AttrSep)
			if !ok || n.Value == "" {
				return true
			}
			pad := func() string { return pads[rng.Intn(len(pads))] }
			if strings.Contains(sep, "=") {
				n.SetAttr(formats.AttrSep, pad()+"="+pad())
			} else {
				n.SetAttr(formats.AttrSep, " "+pad())
			}
			return true
		})
	})
}

func rewriteMixedCase(rng *rand.Rand, set *confnode.Set) {
	set.Walk(func(_ string, root *confnode.Node) {
		root.Walk(func(n *confnode.Node) bool {
			if n.Kind != confnode.KindDirective || n.Name == "" {
				return true
			}
			runes := []rune(n.Name)
			changed := false
			for i, r := range runes {
				if rng.Intn(2) == 0 {
					continue
				}
				switch {
				case r >= 'a' && r <= 'z':
					runes[i] = r - 32
					changed = true
				case r >= 'A' && r <= 'Z':
					runes[i] = r + 32
					changed = true
				}
			}
			if !changed && len(runes) > 0 {
				// Guarantee at least one case flip per name so the class
				// is actually exercised.
				for i, r := range runes {
					if r >= 'a' && r <= 'z' {
						runes[i] = r - 32
						break
					}
					if r >= 'A' && r <= 'Z' {
						runes[i] = r + 32
						break
					}
				}
			}
			n.Name = string(runes)
			return true
		})
	})
}

func rewriteTruncatedNames(rng *rand.Rand, set *confnode.Set) {
	set.Walk(func(_ string, root *confnode.Node) {
		root.Walk(func(n *confnode.Node) bool {
			if n.Kind != confnode.KindDirective {
				return true
			}
			// Truncate long names by one trailing character — usually
			// still an unambiguous prefix.
			if len(n.Name) > 8 && rng.Intn(2) == 0 {
				n.Name = n.Name[:len(n.Name)-1]
			}
			return true
		})
	})
}

// Borrow generates the paper's §2.2 rule-based mistake: "the 'borrowing'
// of a configuration directive or section from another program configured
// by the same operator". Each scenario inserts one directive taken from a
// donor system's configuration into the target configuration — in the
// donor's syntax habits, exactly as an operator reusing a mental model
// would write it.
type Borrow struct {
	// Donor is the other program's parsed configuration to borrow from.
	Donor *confnode.Set
	// PerClass bounds the number of scenarios (0 = all combinations).
	PerClass int
	// Seed derives the sampling RNG per stream call, keeping the
	// faultload a pure function of (Seed, donor, configuration).
	Seed int64
}

// Name identifies the generator.
func (b *Borrow) Name() string { return "borrow" }

// View returns the configuration view the scenarios apply to.
func (b *Borrow) View() view.View { return view.StructView{} }

// Generate enumerates one scenario per (donor directive, target insertion
// point) pair; insertion points are the document roots and sections of
// the target configuration.
func (b *Borrow) Generate(set *confnode.Set) ([]scenario.Scenario, error) {
	return scenario.Collect(b.GenerateStream(set))
}

// GenerateStream yields the borrow faultload lazily: the donor directives
// and insertion points are collected up front (bounded by the two
// configurations), while their cross product streams pair by pair. With
// PerClass sampling the pool materializes internally, keeping the draws
// identical to the eager path.
func (b *Borrow) GenerateStream(set *confnode.Set) scenario.Source {
	if b.Donor == nil {
		return scenario.Fail(fmt.Errorf("structural: Borrow requires a Donor configuration"))
	}
	if b.PerClass > 0 {
		return func(yield func(scenario.Scenario, error) bool) {
			all, err := scenario.Collect(b.pairStream(set))
			if err != nil {
				yield(scenario.Scenario{}, err)
				return
			}
			rng := rand.New(rand.NewSource(b.Seed))
			for _, sc := range scenario.RandomSubset(rng, all, b.PerClass) {
				if !yield(sc, nil) {
					return
				}
			}
		}
	}
	return b.pairStream(set)
}

// GenerateShard yields shard k of n of the borrow faultload (strided
// sub-stream of the pure GenerateStream).
func (b *Borrow) GenerateShard(set *confnode.Set, k, n int) scenario.Source {
	return b.GenerateStream(set).Shard(k, n)
}

// pairStream enumerates every (foreign directive, insertion point) pair.
func (b *Borrow) pairStream(set *confnode.Set) scenario.Source {
	// Collect the foreign directives (clones detached from the donor).
	var foreign []*confnode.Node
	b.Donor.Walk(func(_ string, root *confnode.Node) {
		root.Walk(func(n *confnode.Node) bool {
			if n.Kind == confnode.KindDirective {
				foreign = append(foreign, n.Clone())
			}
			return true
		})
	})
	// Collect insertion points in the target.
	type dest struct {
		ref  template.Ref
		desc string
	}
	var dests []dest
	set.Walk(func(file string, root *confnode.Node) {
		dests = append(dests, dest{ref: template.RefOf(file, root), desc: "top of " + file})
		root.Walk(func(n *confnode.Node) bool {
			if n.Kind == confnode.KindSection {
				dests = append(dests, dest{
					ref:  template.RefOf(file, n),
					desc: "section " + n.Name,
				})
			}
			return true
		})
	})

	const class = "structural/borrow-directive"
	return func(yield func(scenario.Scenario, error) bool) {
		seq := 0
		for _, f := range foreign {
			for _, d := range dests {
				f, d := f, d
				sc := scenario.Scenario{
					ID:    fmt.Sprintf("%s/%s/%d", class, d.ref, seq),
					Class: class,
					Description: fmt.Sprintf("borrow foreign directive %s=%s into %s",
						f.Name, f.Value, d.desc),
					Apply: func(s *confnode.Set) error {
						target, err := d.ref.Resolve(s)
						if err != nil {
							return err
						}
						target.Append(f.Clone())
						return nil
					},
				}
				if !yield(sc, nil) {
					return
				}
				seq++
			}
		}
	}
}
