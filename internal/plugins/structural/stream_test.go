package structural

import (
	"math/rand"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/scenario"
)

func assertParity(t *testing.T, set *confnode.Set, eager func() ([]scenario.Scenario, error), stream func() scenario.Source) {
	t.Helper()
	want, err := eager()
	if err != nil {
		t.Fatal(err)
	}
	got, err := scenario.Collect(stream())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || len(want) != len(got) {
		t.Fatalf("eager %d scenarios, streamed %d", len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Class != got[i].Class {
			t.Fatalf("scenario %d: %s vs %s", i, want[i].ID, got[i].ID)
		}
	}
}

func TestPluginStreamParity(t *testing.T) {
	set := iniSet(t)
	assertParity(t, set,
		func() ([]scenario.Scenario, error) { return (&Plugin{Sections: true}).Generate(set) },
		func() scenario.Source { return (&Plugin{Sections: true}).GenerateStream(set) })
	assertParity(t, set,
		func() ([]scenario.Scenario, error) {
			return (&Plugin{Sections: true, PerClass: 2, Rng: rand.New(rand.NewSource(5))}).Generate(set)
		},
		func() scenario.Source {
			return (&Plugin{Sections: true, PerClass: 2, Rng: rand.New(rand.NewSource(5))}).GenerateStream(set)
		})
}

func TestVariationsStreamParity(t *testing.T) {
	set := iniSet(t)
	assertParity(t, set,
		func() ([]scenario.Scenario, error) {
			return (&Variations{PerClass: 3, Rng: rand.New(rand.NewSource(5))}).Generate(set)
		},
		func() scenario.Source {
			return (&Variations{PerClass: 3, Rng: rand.New(rand.NewSource(5))}).GenerateStream(set)
		})
}

func TestBorrowStreamParity(t *testing.T) {
	set := iniSet(t)
	donor := iniSet(t)
	assertParity(t, set,
		func() ([]scenario.Scenario, error) { return (&Borrow{Donor: donor}).Generate(set) },
		func() scenario.Source { return (&Borrow{Donor: donor}).GenerateStream(set) })
	assertParity(t, set,
		func() ([]scenario.Scenario, error) {
			return (&Borrow{Donor: donor, PerClass: 3, Rng: rand.New(rand.NewSource(5))}).Generate(set)
		},
		func() scenario.Source {
			return (&Borrow{Donor: donor, PerClass: 3, Rng: rand.New(rand.NewSource(5))}).GenerateStream(set)
		})
}
