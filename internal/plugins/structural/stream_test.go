package structural

import (
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/scenario"
)

func assertParity(t *testing.T, set *confnode.Set, eager func() ([]scenario.Scenario, error), stream func() scenario.Source) {
	t.Helper()
	want, err := eager()
	if err != nil {
		t.Fatal(err)
	}
	got, err := scenario.Collect(stream())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || len(want) != len(got) {
		t.Fatalf("eager %d scenarios, streamed %d", len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Class != got[i].Class {
			t.Fatalf("scenario %d: %s vs %s", i, want[i].ID, got[i].ID)
		}
	}
}

func TestPluginStreamParity(t *testing.T) {
	set := iniSet(t)
	assertParity(t, set,
		func() ([]scenario.Scenario, error) { return (&Plugin{Sections: true}).Generate(set) },
		func() scenario.Source { return (&Plugin{Sections: true}).GenerateStream(set) })
	assertParity(t, set,
		func() ([]scenario.Scenario, error) {
			return (&Plugin{Sections: true, PerClass: 2, Seed: 5}).Generate(set)
		},
		func() scenario.Source {
			return (&Plugin{Sections: true, PerClass: 2, Seed: 5}).GenerateStream(set)
		})
}

func TestVariationsStreamParity(t *testing.T) {
	set := iniSet(t)
	assertParity(t, set,
		func() ([]scenario.Scenario, error) {
			return (&Variations{PerClass: 3, Seed: 5}).Generate(set)
		},
		func() scenario.Source {
			return (&Variations{PerClass: 3, Seed: 5}).GenerateStream(set)
		})
}

func TestBorrowStreamParity(t *testing.T) {
	set := iniSet(t)
	donor := iniSet(t)
	assertParity(t, set,
		func() ([]scenario.Scenario, error) { return (&Borrow{Donor: donor}).Generate(set) },
		func() scenario.Source { return (&Borrow{Donor: donor}).GenerateStream(set) })
	assertParity(t, set,
		func() ([]scenario.Scenario, error) {
			return (&Borrow{Donor: donor, PerClass: 3, Seed: 5}).Generate(set)
		},
		func() scenario.Source {
			return (&Borrow{Donor: donor, PerClass: 3, Seed: 5}).GenerateStream(set)
		})
}

// assertShardParity checks the ShardedGenerator contract: interleaving
// GenerateShard(k,n) for all k by stride reproduces the unsharded stream,
// for several n including counts that do not divide the faultload.
func assertShardParity(t *testing.T, stream func() scenario.Source, shard func(k, n int) scenario.Source) {
	t.Helper()
	want, err := scenario.Collect(stream())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("empty faultload")
	}
	for _, n := range []int{1, 2, 3, 8} {
		shards := make([][]scenario.Scenario, n)
		for k := 0; k < n; k++ {
			s, err := scenario.Collect(shard(k, n))
			if err != nil {
				t.Fatalf("n=%d shard %d: %v", n, k, err)
			}
			shards[k] = s
		}
		for i, w := range want {
			k, j := i%n, i/n
			if j >= len(shards[k]) || shards[k][j].ID != w.ID {
				t.Fatalf("n=%d: union of shards diverges at global %d (%s)", n, i, w.ID)
			}
		}
		total := 0
		for _, s := range shards {
			total += len(s)
		}
		if total != len(want) {
			t.Fatalf("n=%d: shards hold %d scenarios, want %d", n, total, len(want))
		}
	}
}

func TestPluginShardParity(t *testing.T) {
	set := iniSet(t)
	p := &Plugin{Sections: true, PerClass: 2, Seed: 5}
	assertShardParity(t,
		func() scenario.Source { return p.GenerateStream(set) },
		func(k, n int) scenario.Source { return p.GenerateShard(set, k, n) })
}

func TestVariationsShardParity(t *testing.T) {
	set := iniSet(t)
	v := &Variations{PerClass: 3, Seed: 5}
	// Variation scenario IDs repeat across shard pulls only if the
	// per-scenario rewrite seeds do: this also pins the seed-derivation
	// purity of the stream.
	assertShardParity(t,
		func() scenario.Source { return v.GenerateStream(set) },
		func(k, n int) scenario.Source { return v.GenerateShard(set, k, n) })
}

func TestBorrowShardParity(t *testing.T) {
	set := iniSet(t)
	b := &Borrow{Donor: iniSet(t), PerClass: 3, Seed: 5}
	assertShardParity(t,
		func() scenario.Source { return b.GenerateStream(set) },
		func(k, n int) scenario.Source { return b.GenerateShard(set, k, n) })
}
