// Package typo implements ConfErr's spelling-mistakes error generator
// (paper §2.1, §4.1). It operates on the word view of a configuration and
// provides one submodel per error category — omissions, insertions,
// substitutions, case alterations and transpositions — each a
// template.Mutator specializing the abstract modify template. Insertions
// and substitutions are keyboard-aware: they only produce characters a
// human could hit by pressing a key adjacent to the intended one with the
// same modifiers.
package typo

import (
	"fmt"
	"math/rand"
	"strings"
	"unicode"

	"conferr/internal/confnode"
	"conferr/internal/cpath"
	"conferr/internal/keyboard"
	"conferr/internal/scenario"
	"conferr/internal/template"
	"conferr/internal/view"
)

// Omission generates variants that drop one character from the token,
// modeling characters missed during hurried typing. The paper restricts
// the model to single-letter omissions, which are the common case.
type Omission struct{}

var _ template.Mutator = Omission{}

// Name implements template.Mutator.
func (Omission) Name() string { return "omission" }

// Variants implements template.Mutator.
func (Omission) Variants(n *confnode.Node) []template.Variant {
	runes := []rune(n.Value)
	out := make([]template.Variant, 0, len(runes))
	for i := range runes {
		i := i
		mutated := string(runes[:i]) + string(runes[i+1:])
		out = append(out, template.Variant{
			Description: fmt.Sprintf("omit %q at %d -> %q", runes[i], i, mutated),
			Apply:       func(m *confnode.Node) { m.Value = mutated },
		})
	}
	return out
}

// Insertion generates variants that introduce a spurious character next to
// an existing one. For each position, the inserted characters are the
// keyboard neighbors of the character at that position — the keys a finger
// could have brushed while typing it.
type Insertion struct {
	// Layout is the keyboard to draw neighbor characters from; nil means
	// keyboard.Default().
	Layout *keyboard.Layout
}

var _ template.Mutator = Insertion{}

// Name implements template.Mutator.
func (Insertion) Name() string { return "insertion" }

// Variants implements template.Mutator.
func (t Insertion) Variants(n *confnode.Node) []template.Variant {
	layout := t.Layout
	if layout == nil {
		layout = keyboard.Default()
	}
	runes := []rune(n.Value)
	var out []template.Variant
	for i, r := range runes {
		for _, nb := range layout.Neighbors(r) {
			if nb == ' ' {
				// A stray space splits the token; word identity is handled
				// by the structural model, so skip it here.
				continue
			}
			mutated := string(runes[:i]) + string(nb) + string(runes[i:])
			out = append(out, template.Variant{
				Description: fmt.Sprintf("insert %q before %d -> %q", nb, i, mutated),
				Apply: func(m *confnode.Node) {
					m.Value = mutated
				},
			})
		}
	}
	return out
}

// Substitution generates variants that replace one character with a
// keyboard neighbor, modeling an operator pressing a nearby key with the
// same modifier combination.
type Substitution struct {
	// Layout is the keyboard to draw neighbor characters from; nil means
	// keyboard.Default().
	Layout *keyboard.Layout
}

var _ template.Mutator = Substitution{}

// Name implements template.Mutator.
func (Substitution) Name() string { return "substitution" }

// Variants implements template.Mutator.
func (t Substitution) Variants(n *confnode.Node) []template.Variant {
	layout := t.Layout
	if layout == nil {
		layout = keyboard.Default()
	}
	runes := []rune(n.Value)
	var out []template.Variant
	for i, r := range runes {
		for _, nb := range layout.Neighbors(r) {
			if nb == ' ' {
				continue
			}
			mutated := string(runes[:i]) + string(nb) + string(runes[i+1:])
			out = append(out, template.Variant{
				Description: fmt.Sprintf("substitute %q for %q at %d -> %q", nb, r, i, mutated),
				Apply: func(m *confnode.Node) {
					m.Value = mutated
				},
			})
		}
	}
	return out
}

// CaseAlteration generates variants that swap the case of adjacent letters
// — the signature of a mis-coordinated Shift press ("Value" typed as
// "vAlue"). A variant is produced for each adjacent pair containing at
// least one cased letter, with both letters' cases toggled.
type CaseAlteration struct{}

var _ template.Mutator = CaseAlteration{}

// Name implements template.Mutator.
func (CaseAlteration) Name() string { return "case" }

// Variants implements template.Mutator.
func (CaseAlteration) Variants(n *confnode.Node) []template.Variant {
	runes := []rune(n.Value)
	var out []template.Variant
	for i := 0; i+1 < len(runes); i++ {
		a, b := toggleCase(runes[i]), toggleCase(runes[i+1])
		if a == runes[i] && b == runes[i+1] {
			continue
		}
		mutated := string(runes[:i]) + string(a) + string(b) + string(runes[i+2:])
		if mutated == n.Value {
			continue
		}
		i := i
		out = append(out, template.Variant{
			Description: fmt.Sprintf("swap case at %d -> %q", i, mutated),
			Apply:       func(m *confnode.Node) { m.Value = mutated },
		})
	}
	return out
}

func toggleCase(r rune) rune {
	switch {
	case unicode.IsUpper(r):
		return unicode.ToLower(r)
	case unicode.IsLower(r):
		return unicode.ToUpper(r)
	default:
		return r
	}
}

// Transposition generates variants that swap two adjacent characters,
// modeling out-of-order key presses. Pairs of equal characters are skipped
// (the swap would be invisible). The paper notes letters in different
// words are rarely swapped, so the model never crosses token boundaries.
type Transposition struct{}

var _ template.Mutator = Transposition{}

// Name implements template.Mutator.
func (Transposition) Name() string { return "transposition" }

// Variants implements template.Mutator.
func (Transposition) Variants(n *confnode.Node) []template.Variant {
	runes := []rune(n.Value)
	var out []template.Variant
	for i := 0; i+1 < len(runes); i++ {
		if runes[i] == runes[i+1] {
			continue
		}
		mutated := string(runes[:i]) + string(runes[i+1]) + string(runes[i]) + string(runes[i+2:])
		i := i
		out = append(out, template.Variant{
			Description: fmt.Sprintf("transpose %d/%d -> %q", i, i+1, mutated),
			Apply:       func(m *confnode.Node) { m.Value = mutated },
		})
	}
	return out
}

// Plugin is the spelling-mistakes error generator. It composes the five
// submodels over the word view and optionally samples a bounded number of
// scenarios per submodel, mirroring the paper's plugin, which "generates
// errors by choosing random subsets of typos".
type Plugin struct {
	// Layout is the keyboard used by insertion and substitution; nil means
	// keyboard.Default().
	Layout *keyboard.Layout
	// Tokens restricts injection to word tokens of these classes
	// (view.TokenName, view.TokenValue). Empty means all tokens.
	Tokens []string
	// PerModel bounds the number of scenarios drawn from each submodel;
	// 0 means keep all. Sampling uses Rng.
	PerModel int
	// PerDirective bounds the number of scenarios per configuration
	// directive, drawn uniformly across all submodels — the paper's §5.5
	// faultload ("20 experiments for each directive"). 0 disables.
	// PerModel and PerDirective compose: PerModel caps first.
	PerDirective int
	// Seed derives the sampling RNG. Every stream call derives a fresh
	// RNG from it, so the faultload is a pure function of (Seed,
	// configuration): repeated and sharded enumerations agree exactly —
	// the property the sharded campaign runner relies on.
	Seed int64
	// Models overrides the submodels to use; nil means all five.
	Models []template.Mutator
}

// View returns the configuration view the plugin's scenarios apply to.
func (p *Plugin) View() view.View { return view.WordView{} }

// Name identifies the plugin.
func (p *Plugin) Name() string { return "typo" }

// targetExpr builds the cpath expression selecting the word tokens to
// mutate.
func (p *Plugin) targetExprs() []*cpath.Expr {
	if len(p.Tokens) == 0 {
		return []*cpath.Expr{cpath.MustCompile("//word")}
	}
	out := make([]*cpath.Expr, 0, len(p.Tokens))
	for _, tok := range p.Tokens {
		expr, err := cpath.Compile(fmt.Sprintf("//word[@%s='%s']", view.TokenAttr, tok))
		if err != nil {
			// Token classes are package constants; a failure here is a
			// programming error surfaced in tests.
			panic(err)
		}
		out = append(out, expr)
	}
	return out
}

// models returns the active submodels.
func (p *Plugin) models() []template.Mutator {
	if len(p.Models) > 0 {
		return p.Models
	}
	return []template.Mutator{
		Omission{},
		Insertion{Layout: p.Layout},
		Substitution{Layout: p.Layout},
		CaseAlteration{},
		Transposition{},
	}
}

// Generate enumerates typo scenarios for the given word-view configuration
// set. Scenarios are grouped per submodel class ("typo/omission", …); when
// PerModel is set, each class is independently down-sampled, which
// preserves variety across classes while bounding the faultload (paper
// §5.1: the plugins "declaratively specify broad fault classes and then
// select one element of each class"). It materializes GenerateStream, so
// the slice and streaming paths enumerate the identical faultload.
func (p *Plugin) Generate(wordSet *confnode.Set) ([]scenario.Scenario, error) {
	return scenario.Collect(p.GenerateStream(wordSet))
}

// GenerateStream yields the faultload lazily: without sampling options the
// submodels' (token × variant) fan-out is pulled one scenario at a time
// and the full faultload never exists in memory. When PerModel or
// PerDirective is set, sampling needs the candidate pools, so the stream
// materializes internally — the draws stay identical to the historical
// eager path (RandomSubset over each class in model order), keeping
// published experiment faultloads stable.
func (p *Plugin) GenerateStream(wordSet *confnode.Set) scenario.Source {
	if p.PerModel > 0 || p.PerDirective > 0 {
		return p.sampledStream(wordSet)
	}
	models := p.models()
	sources := make([]scenario.Source, len(models))
	for i, m := range models {
		sources[i] = p.modelStream(m, wordSet)
	}
	return scenario.Concat(sources...)
}

// GenerateShard yields shard k of n of the faultload: the strided
// sub-stream of GenerateStream, which — being a pure function of the seed
// and the configuration — every worker re-derives identically and keeps
// 1/n of. Union of all shards ≡ the unsharded stream, for any n.
func (p *Plugin) GenerateShard(wordSet *confnode.Set, k, n int) scenario.Source {
	return p.GenerateStream(wordSet).Shard(k, n)
}

// modelStream chains one submodel's streams across the target
// expressions.
func (p *Plugin) modelStream(m template.Mutator, wordSet *confnode.Set) scenario.Source {
	exprs := p.targetExprs()
	sources := make([]scenario.Source, len(exprs))
	for i, expr := range exprs {
		tpl := &template.ModifyTemplate{
			Targets: expr,
			Mutator: m,
			Class:   "typo/" + m.Name(),
		}
		sources[i] = tpl.GenerateStream(wordSet)
	}
	return scenario.Concat(sources...)
}

// sampledStream is the bounded-faultload path: each submodel's candidate
// pool is collected, down-sampled with an RNG derived from the plugin
// seed, and the survivors streamed out. The RNG is derived per call, in
// the historical draw order, so every enumeration yields the identical
// faultload.
func (p *Plugin) sampledStream(wordSet *confnode.Set) scenario.Source {
	return func(yield func(scenario.Scenario, error) bool) {
		rng := rand.New(rand.NewSource(p.Seed))
		var all []scenario.Scenario
		for _, m := range p.models() {
			classScens, err := scenario.Collect(p.modelStream(m, wordSet))
			if err != nil {
				yield(scenario.Scenario{}, fmt.Errorf("typo: %s: %w", m.Name(), err))
				return
			}
			if p.PerModel > 0 {
				classScens = scenario.RandomSubset(rng, classScens, p.PerModel)
			}
			all = append(all, classScens...)
		}
		if p.PerDirective > 0 {
			all = samplePerDirective(rng, all, p.PerDirective)
		}
		for _, sc := range all {
			if !yield(sc, nil) {
				return
			}
		}
	}
}

// samplePerDirective groups scenarios by the directive (line) they target
// and draws n per group, preserving group order of first appearance.
func samplePerDirective(rng *rand.Rand, scens []scenario.Scenario, n int) []scenario.Scenario {
	groups := make(map[string][]scenario.Scenario)
	var order []string
	for _, s := range scens {
		key := DirectiveKey(s.ID)
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], s)
	}
	var out []scenario.Scenario
	for _, key := range order {
		out = append(out, scenario.RandomSubset(rng, groups[key], n)...)
	}
	return out
}

// DirectiveKey extracts, from a typo scenario ID, a key identifying the
// configuration directive (word-view line) the scenario targets: the
// node-ref portion of the ID with the word index stripped. Scenario IDs
// have the form "typo/<model>/<file>#<line>.<word>/<seq>".
func DirectiveKey(scenarioID string) string {
	hash := strings.IndexByte(scenarioID, '#')
	if hash < 0 {
		return ""
	}
	// The ref runs from the last '/' before '#' to the '/' after it.
	start := strings.LastIndexByte(scenarioID[:hash], '/') + 1
	end := strings.IndexByte(scenarioID[hash:], '/')
	if end < 0 {
		end = len(scenarioID)
	} else {
		end += hash
	}
	ref := scenarioID[start:end]
	// Strip the word index, keeping file#line.
	if dot := strings.LastIndexByte(ref, '.'); dot > strings.IndexByte(ref, '#') {
		ref = ref[:dot]
	}
	return ref
}
