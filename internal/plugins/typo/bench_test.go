package typo

import "testing"

func BenchmarkGenerate(b *testing.B) {
	set := wordSet()
	p := &Plugin{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scens, err := p.Generate(set)
		if err != nil {
			b.Fatal(err)
		}
		if len(scens) == 0 {
			b.Fatal("no scenarios")
		}
	}
}
