package typo

import (
	"math/rand"
	"testing"

	"conferr/internal/scenario"
)

// assertStreamParity proves the plugin's two faultload forms enumerate
// identical scenarios: a fresh instance's Generate versus another fresh
// instance's collected GenerateStream (fresh because both consume the
// plugin Rng).
func assertStreamParity(t *testing.T, mk func() *Plugin) {
	t.Helper()
	eager, err := mk().Generate(wordSet())
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := scenario.Collect(mk().GenerateStream(wordSet()))
	if err != nil {
		t.Fatal(err)
	}
	if len(eager) == 0 || len(eager) != len(streamed) {
		t.Fatalf("eager %d scenarios, streamed %d", len(eager), len(streamed))
	}
	for i := range eager {
		if eager[i].ID != streamed[i].ID || eager[i].Class != streamed[i].Class {
			t.Fatalf("scenario %d: %s/%s vs %s/%s",
				i, eager[i].ID, eager[i].Class, streamed[i].ID, streamed[i].Class)
		}
	}
}

func TestGenerateStreamParityUnsampled(t *testing.T) {
	assertStreamParity(t, func() *Plugin { return &Plugin{} })
}

func TestGenerateStreamParitySampled(t *testing.T) {
	assertStreamParity(t, func() *Plugin {
		return &Plugin{PerModel: 3, Rng: rand.New(rand.NewSource(9))}
	})
	assertStreamParity(t, func() *Plugin {
		return &Plugin{PerDirective: 4, Rng: rand.New(rand.NewSource(9))}
	})
}

// TestGenerateStreamLazyPull: on the unsampled path, stopping the pull
// after three scenarios must not enumerate the rest of the faultload.
func TestGenerateStreamLazyPull(t *testing.T) {
	p := &Plugin{}
	got, err := scenario.Collect(p.GenerateStream(wordSet()).Limit(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("limited stream yielded %d scenarios", len(got))
	}
	full, err := (&Plugin{}).Generate(wordSet())
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].ID != full[i].ID {
			t.Errorf("prefix diverged at %d: %s vs %s", i, got[i].ID, full[i].ID)
		}
	}
}
