package typo

import (
	"testing"

	"conferr/internal/scenario"
)

// assertStreamParity proves the plugin's two faultload forms enumerate
// identical scenarios: Generate versus collected GenerateStream (both
// are pure functions of the seed, so fresh instances suffice).
func assertStreamParity(t *testing.T, mk func() *Plugin) {
	t.Helper()
	eager, err := mk().Generate(wordSet())
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := scenario.Collect(mk().GenerateStream(wordSet()))
	if err != nil {
		t.Fatal(err)
	}
	if len(eager) == 0 || len(eager) != len(streamed) {
		t.Fatalf("eager %d scenarios, streamed %d", len(eager), len(streamed))
	}
	for i := range eager {
		if eager[i].ID != streamed[i].ID || eager[i].Class != streamed[i].Class {
			t.Fatalf("scenario %d: %s/%s vs %s/%s",
				i, eager[i].ID, eager[i].Class, streamed[i].ID, streamed[i].Class)
		}
	}
}

func TestGenerateStreamParityUnsampled(t *testing.T) {
	assertStreamParity(t, func() *Plugin { return &Plugin{} })
}

func TestGenerateStreamParitySampled(t *testing.T) {
	assertStreamParity(t, func() *Plugin {
		return &Plugin{PerModel: 3, Seed: 9}
	})
	assertStreamParity(t, func() *Plugin {
		return &Plugin{PerDirective: 4, Seed: 9}
	})
}

// TestGenerateStreamLazyPull: on the unsampled path, stopping the pull
// after three scenarios must not enumerate the rest of the faultload.
func TestGenerateStreamLazyPull(t *testing.T) {
	p := &Plugin{}
	got, err := scenario.Collect(p.GenerateStream(wordSet()).Limit(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("limited stream yielded %d scenarios", len(got))
	}
	full, err := (&Plugin{}).Generate(wordSet())
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].ID != full[i].ID {
			t.Errorf("prefix diverged at %d: %s vs %s", i, got[i].ID, full[i].ID)
		}
	}
}

// assertShardParity checks the ShardedGenerator contract: interleaving
// GenerateShard(k,n) for all k reproduces the unsharded stream, for
// several n including counts that do not divide the faultload.
func assertShardParity(t *testing.T, p *Plugin) {
	t.Helper()
	want, err := scenario.Collect(p.GenerateStream(wordSet()))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("empty faultload")
	}
	for _, n := range []int{1, 2, 3, 8} {
		total := 0
		for k := 0; k < n; k++ {
			s, err := scenario.Collect(p.GenerateShard(wordSet(), k, n))
			if err != nil {
				t.Fatalf("n=%d shard %d: %v", n, k, err)
			}
			for j, sc := range s {
				if i := j*n + k; i >= len(want) || want[i].ID != sc.ID {
					t.Fatalf("n=%d shard %d: diverges at local %d (%s)", n, k, j, sc.ID)
				}
			}
			total += len(s)
		}
		if total != len(want) {
			t.Fatalf("n=%d: shards hold %d scenarios, want %d", n, total, len(want))
		}
	}
}

func TestShardParityUnsampled(t *testing.T) {
	assertShardParity(t, &Plugin{})
}

func TestShardParitySampled(t *testing.T) {
	assertShardParity(t, &Plugin{PerModel: 3, Seed: 9})
	assertShardParity(t, &Plugin{PerDirective: 4, Seed: 9})
}
