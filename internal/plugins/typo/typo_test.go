package typo

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"

	"conferr/internal/confnode"
	"conferr/internal/keyboard"
	"conferr/internal/scenario"
	"conferr/internal/template"
	"conferr/internal/view"
)

func word(v string) *confnode.Node {
	n := confnode.NewValued(confnode.KindWord, "", v)
	n.SetAttr(view.TokenAttr, view.TokenValue)
	return n
}

func applyAll(t *testing.T, m template.Mutator, in string) []string {
	t.Helper()
	var out []string
	for _, v := range m.Variants(word(in)) {
		n := word(in)
		v.Apply(n)
		out = append(out, n.Value)
	}
	return out
}

func TestOmission(t *testing.T) {
	got := applyAll(t, Omission{}, "port")
	want := []string{"ort", "prt", "pot", "por"}
	if len(got) != len(want) {
		t.Fatalf("variants = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("variant %d = %q, want %q", i, got[i], want[i])
		}
	}
	if applyAll(t, Omission{}, "") != nil {
		t.Error("empty token should have no omission variants")
	}
}

func TestInsertionUsesNeighbors(t *testing.T) {
	layout := keyboard.USQwerty()
	variants := applyAll(t, Insertion{Layout: layout}, "ab")
	if len(variants) == 0 {
		t.Fatal("no insertion variants")
	}
	for _, v := range variants {
		if utf8.RuneCountInString(v) != 3 {
			t.Errorf("insertion %q should lengthen by exactly 1", v)
		}
		if strings.Contains(v, " ") {
			t.Errorf("insertion %q introduced a space", v)
		}
	}
	// Inserting before 'a' must use a's neighbors.
	nbs := map[rune]bool{}
	for _, r := range layout.Neighbors('a') {
		nbs[r] = true
	}
	foundNb := false
	for _, v := range variants {
		rs := []rune(v)
		if rs[1] == 'a' && rs[2] == 'b' && nbs[rs[0]] {
			foundNb = true
		}
	}
	if !foundNb {
		t.Error("no variant inserted an 'a'-neighbor before position 0")
	}
}

func TestSubstitutionUsesNeighbors(t *testing.T) {
	layout := keyboard.USQwerty()
	variants := applyAll(t, Substitution{Layout: layout}, "s")
	if len(variants) == 0 {
		t.Fatal("no substitution variants")
	}
	allowed := map[string]bool{}
	for _, r := range layout.Neighbors('s') {
		allowed[string(r)] = true
	}
	for _, v := range variants {
		if !allowed[v] {
			t.Errorf("substitution %q is not a keyboard neighbor of 's'", v)
		}
	}
}

func TestSubstitutionDigitsCanBecomeLetters(t *testing.T) {
	// Load-bearing for Figure 3: typos in numeric values must sometimes
	// produce non-numeric strings (detected by Postgres, ignored by MySQL).
	variants := applyAll(t, Substitution{}, "8")
	hasLetter, hasDigit := false, false
	for _, v := range variants {
		r := []rune(v)[0]
		if r >= 'a' && r <= 'z' {
			hasLetter = true
		}
		if r >= '0' && r <= '9' {
			hasDigit = true
		}
	}
	if !hasLetter || !hasDigit {
		t.Errorf("substituting '8' should yield both letters and digits: %v", variants)
	}
}

func TestCaseAlteration(t *testing.T) {
	got := applyAll(t, CaseAlteration{}, "Ab")
	// pair (0,1): toggle both -> "aB"
	if len(got) != 1 || got[0] != "aB" {
		t.Errorf("variants = %v, want [aB]", got)
	}
	if got := applyAll(t, CaseAlteration{}, "12"); got != nil {
		t.Errorf("caseless token should have no variants: %v", got)
	}
	got = applyAll(t, CaseAlteration{}, "aB1")
	if len(got) != 2 {
		t.Errorf("variants = %v", got)
	}
}

func TestTransposition(t *testing.T) {
	got := applyAll(t, Transposition{}, "abc")
	want := []string{"bac", "acb"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("variants = %v, want %v", got, want)
	}
	// Equal adjacent chars are skipped.
	if got := applyAll(t, Transposition{}, "aab"); len(got) != 1 || got[0] != "aba" {
		t.Errorf("variants = %v, want [aba]", got)
	}
	if applyAll(t, Transposition{}, "x") != nil {
		t.Error("single char cannot transpose")
	}
}

func TestMutatorNames(t *testing.T) {
	names := map[string]template.Mutator{
		"omission":      Omission{},
		"insertion":     Insertion{},
		"substitution":  Substitution{},
		"case":          CaseAlteration{},
		"transposition": Transposition{},
	}
	for want, m := range names {
		if m.Name() != want {
			t.Errorf("Name = %q, want %q", m.Name(), want)
		}
	}
}

// wordSet builds a word-view set with one line: name token "port", value
// token "3306".
func wordSet() *confnode.Set {
	doc := confnode.New(confnode.KindDocument, "f.conf")
	line := confnode.New(confnode.KindLine, "")
	line.SetAttr(view.SrcAttr, "f.conf#0")
	name := confnode.NewValued(confnode.KindWord, "", "port")
	name.SetAttr(view.TokenAttr, view.TokenName)
	val := confnode.NewValued(confnode.KindWord, "", "3306")
	val.SetAttr(view.TokenAttr, view.TokenValue)
	line.Append(name, val)
	doc.Append(line)
	set := confnode.NewSet()
	set.Put("f.conf", doc)
	return set
}

func TestPluginGenerateAllModels(t *testing.T) {
	p := &Plugin{}
	scens, err := p.Generate(wordSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) == 0 {
		t.Fatal("no scenarios")
	}
	classes := map[string]int{}
	for _, s := range scens {
		classes[s.Class]++
		if err := s.Validate(); err != nil {
			t.Errorf("invalid scenario: %v", err)
		}
	}
	// "port"/"3306" support omission, insertion, substitution,
	// transposition; case alteration applies to "port" (letters).
	for _, c := range []string{
		"typo/omission", "typo/insertion", "typo/substitution",
		"typo/case", "typo/transposition",
	} {
		if classes[c] == 0 {
			t.Errorf("no scenarios for class %s (classes=%v)", c, classes)
		}
	}
	if p.Name() != "typo" {
		t.Errorf("plugin name = %q", p.Name())
	}
	if p.View().Name() != "word" {
		t.Errorf("plugin view = %q", p.View().Name())
	}
}

func TestPluginTokenRestriction(t *testing.T) {
	p := &Plugin{Tokens: []string{view.TokenName}}
	scens, err := p.Generate(wordSet())
	if err != nil {
		t.Fatal(err)
	}
	set := wordSet()
	for _, s := range scens {
		clone := set.Clone()
		if err := s.Apply(clone); err != nil {
			t.Fatal(err)
		}
		// The value token must never change.
		if got := clone.Get("f.conf").Child(0).Child(1).Value; got != "3306" {
			t.Errorf("scenario %s modified a value token: %q", s.ID, got)
		}
	}
}

func TestPluginPerModelSampling(t *testing.T) {
	p := &Plugin{PerModel: 2, Seed: 1}
	scens, err := p.Generate(wordSet())
	if err != nil {
		t.Fatal(err)
	}
	byClass := scenario.ByClass(scens)
	for class, s := range byClass {
		if len(s) > 2 {
			t.Errorf("class %s has %d scenarios, want <= 2", class, len(s))
		}
	}
	// The zero Seed is valid: sampling works without an explicit seed.
	if _, err := (&Plugin{PerModel: 1}).Generate(wordSet()); err != nil {
		t.Errorf("zero-seed PerModel sampling failed: %v", err)
	}
}

func TestPluginDeterministicWithSeed(t *testing.T) {
	gen := func() []string {
		p := &Plugin{PerModel: 3, Seed: 99}
		scens, err := p.Generate(wordSet())
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, s := range scens {
			ids = append(ids, s.ID)
		}
		return ids
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("IDs differ at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestPluginModelsOverride(t *testing.T) {
	p := &Plugin{Models: []template.Mutator{Omission{}}}
	scens, err := p.Generate(wordSet())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scens {
		if s.Class != "typo/omission" {
			t.Errorf("unexpected class %s", s.Class)
		}
	}
}

// Properties of the submodels, per paper §2.1.

func TestPropertyOmissionShortensByOne(t *testing.T) {
	f := func(s string) bool {
		if !utf8.ValidString(s) {
			return true
		}
		for _, v := range (Omission{}).Variants(word(s)) {
			n := word(s)
			v.Apply(n)
			if utf8.RuneCountInString(n.Value) != utf8.RuneCountInString(s)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTranspositionIsInvolution(t *testing.T) {
	// Applying the same transposition twice restores the original.
	f := func(s string) bool {
		if !utf8.ValidString(s) {
			return true
		}
		variants := (Transposition{}).Variants(word(s))
		for i := range variants {
			n := word(s)
			variants[i].Apply(n)
			second := (Transposition{}).Variants(word(n.Value))
			if i < len(second) {
				n2 := word(n.Value)
				second[i].Apply(n2)
				if n2.Value != s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyVariantsNeverEqualOriginal(t *testing.T) {
	models := []template.Mutator{
		Omission{}, Insertion{}, Substitution{}, CaseAlteration{}, Transposition{},
	}
	f := func(s string) bool {
		if !utf8.ValidString(s) || strings.ContainsRune(s, 0) {
			return true
		}
		for _, m := range models {
			for _, v := range m.Variants(word(s)) {
				n := word(s)
				v.Apply(n)
				if n.Value == s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCasePreservesLength(t *testing.T) {
	f := func(s string) bool {
		if !utf8.ValidString(s) {
			return true
		}
		for _, v := range (CaseAlteration{}).Variants(word(s)) {
			n := word(s)
			v.Apply(n)
			if utf8.RuneCountInString(n.Value) != utf8.RuneCountInString(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDirectiveKey(t *testing.T) {
	cases := []struct{ id, want string }{
		{"typo/substitution/f.conf#0.1/5", "f.conf#0"},
		{"typo/omission/my.cnf#12.0/0", "my.cnf#12"},
		{"typo/case/a#3.2", "a#3"},
		{"no-ref-here", ""},
	}
	for _, tt := range cases {
		if got := DirectiveKey(tt.id); got != tt.want {
			t.Errorf("DirectiveKey(%q) = %q, want %q", tt.id, got, tt.want)
		}
	}
}

func TestPerDirectiveSampling(t *testing.T) {
	// Two lines; cap at 3 scenarios per line across all submodels.
	doc := confnode.New(confnode.KindDocument, "f.conf")
	for i, kv := range [][2]string{{"port", "3306"}, {"host", "localhost"}} {
		line := confnode.New(confnode.KindLine, "")
		line.SetAttr(view.SrcAttr, fmt.Sprintf("f.conf#%d", i))
		name := confnode.NewValued(confnode.KindWord, "", kv[0])
		name.SetAttr(view.TokenAttr, view.TokenName)
		val := confnode.NewValued(confnode.KindWord, "", kv[1])
		val.SetAttr(view.TokenAttr, view.TokenValue)
		line.Append(name, val)
		doc.Append(line)
	}
	set := confnode.NewSet()
	set.Put("f.conf", doc)

	p := &Plugin{PerDirective: 3, Seed: 5}
	scens, err := p.Generate(set)
	if err != nil {
		t.Fatal(err)
	}
	perLine := map[string]int{}
	for _, s := range scens {
		perLine[DirectiveKey(s.ID)]++
	}
	if len(perLine) != 2 {
		t.Fatalf("lines = %v", perLine)
	}
	for key, n := range perLine {
		if n != 3 {
			t.Errorf("line %s has %d scenarios, want 3", key, n)
		}
	}
	// The zero Seed is valid: sampling works without an explicit seed.
	if _, err := (&Plugin{PerDirective: 1}).Generate(set); err != nil {
		t.Errorf("zero-seed PerDirective sampling failed: %v", err)
	}
}
