package editsim

import (
	"strings"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/scenario"
	"conferr/internal/view"
)

// wordSet builds a word view with two directive lines: port=5432 and
// shared_buffers=32MB.
func wordSet() *confnode.Set {
	doc := confnode.New(confnode.KindDocument, "postgresql.conf")
	for i, kv := range [][2]string{{"port", "5432"}, {"shared_buffers", "32MB"}} {
		line := confnode.New(confnode.KindLine, "")
		line.SetAttr(view.SrcAttr, "postgresql.conf#"+string(rune('0'+i)))
		name := confnode.NewValued(confnode.KindWord, "", kv[0])
		name.SetAttr(view.TokenAttr, view.TokenName)
		val := confnode.NewValued(confnode.KindWord, "", kv[1])
		val.SetAttr(view.TokenAttr, view.TokenValue)
		line.Append(name, val)
		doc.Append(line)
	}
	set := confnode.NewSet()
	set.Put("postgresql.conf", doc)
	return set
}

func TestGenerate(t *testing.T) {
	p := &Plugin{
		Edits: []Edit{
			{Directive: "shared_buffers", NewValue: "64MB"},
			{Directive: "port", NewValue: "6000"},
		},
		PerEdit: 5,
		Seed:    1,
	}
	scens, err := p.Generate(wordSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 10 {
		t.Fatalf("scenarios = %d, want 10", len(scens))
	}
	if p.Name() != "editsim" || p.View().Name() != "word" {
		t.Error("identity wrong")
	}
	set := wordSet()
	for _, s := range scens {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		clone := set.Clone()
		if err := s.Apply(clone); err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		// The edit+typo lands in the intended line's value token; the
		// result differs from both the original and the clean new value.
		var line *confnode.Node
		if strings.Contains(s.ID, "shared_buffers") {
			line = clone.Get("postgresql.conf").Child(1)
		} else {
			line = clone.Get("postgresql.conf").Child(0)
		}
		words := line.ChildrenByKind(confnode.KindWord)
		got := words[len(words)-1].Value
		if got == "5432" || got == "32MB" {
			t.Errorf("%s: value %q — edit not applied", s.ID, got)
		}
		if got == "64MB" || got == "6000" {
			t.Errorf("%s: value %q — typo not applied", s.ID, got)
		}
	}
}

func TestCleanEditControl(t *testing.T) {
	p := &Plugin{
		Edits:            []Edit{{Directive: "port", NewValue: "6000"}},
		PerEdit:          2,
		Seed:             2,
		IncludeCleanEdit: true,
	}
	scens, err := p.Generate(wordSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 3 {
		t.Fatalf("scenarios = %d, want 3 (1 clean + 2 faulty)", len(scens))
	}
	var clean scenario.Scenario
	for _, s := range scens {
		if s.Class == "editsim/clean" {
			clean = s
		}
	}
	if clean.Apply == nil {
		t.Fatal("no clean-edit control scenario")
	}
	set := wordSet()
	if err := clean.Apply(set); err != nil {
		t.Fatal(err)
	}
	if got := set.Get("postgresql.conf").Child(0).Child(1).Value; got != "6000" {
		t.Errorf("clean edit value = %q, want 6000", got)
	}
}

func TestErrors(t *testing.T) {
	// The zero Seed is a valid seed: sampling never fails for lack of
	// randomness.
	if _, err := (&Plugin{Edits: []Edit{{Directive: "port", NewValue: "1"}}}).Generate(wordSet()); err != nil {
		t.Errorf("zero-seed generation failed: %v", err)
	}
	p := &Plugin{
		Edits: []Edit{{Directive: "no_such_directive", NewValue: "1"}},
		Seed:  1,
	}
	if _, err := p.Generate(wordSet()); err == nil {
		t.Error("unknown directive accepted")
	}
}

func TestCaseInsensitiveDirectiveLookup(t *testing.T) {
	p := &Plugin{
		Edits:   []Edit{{Directive: "Shared_Buffers", NewValue: "64MB"}},
		PerEdit: 1,
		Seed:    1,
	}
	if _, err := p.Generate(wordSet()); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
}

func TestDeterministic(t *testing.T) {
	gen := func() []string {
		p := &Plugin{
			Edits:   []Edit{{Directive: "port", NewValue: "6000"}},
			PerEdit: 6,
			Seed:    9,
		}
		scens, err := p.Generate(wordSet())
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]string, len(scens))
		for i, s := range scens {
			ids[i] = s.ID
		}
		return ids
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("IDs differ at %d", i)
		}
	}
}
