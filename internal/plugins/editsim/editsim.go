// Package editsim implements the paper's §5.5 human-error benchmark
// procedure: "a benchmark script … automatically transform[s] initial
// configuration files into new, valid files; afterward, it creates faulty
// configuration files based on these new files … Errors are injected in
// close proximity to the place where the file has been (validly)
// modified, thus aiming to simulate the common way in which errors sneak
// into configurations."
//
// A configuration task is a list of Edits (directive → new valid value).
// For each edit, the plugin generates scenarios that first apply the edit
// and then inject one spelling mistake into the freshly typed value — the
// proximity rule: the typo lands exactly where the administrator was
// working.
package editsim

import (
	"fmt"
	"math/rand"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/keyboard"
	"conferr/internal/plugins/typo"
	"conferr/internal/scenario"
	"conferr/internal/template"
	"conferr/internal/view"
)

// Edit is one valid configuration change of the simulated administration
// task: set the named directive to a new (valid) value.
type Edit struct {
	// Directive is the name of the directive to change.
	Directive string
	// NewValue is the valid value the administrator intends to type.
	NewValue string
}

// Plugin generates the §5.5 faultload: per edit, PerEdit scenarios each
// applying the edit with one typo in the newly typed value.
type Plugin struct {
	// Edits is the configuration task.
	Edits []Edit
	// PerEdit is the number of faulty variants per edit (the paper ran 20
	// experiments per directive). 0 means 20.
	PerEdit int
	// Seed derives the variant-shuffle RNG, afresh per stream call: the
	// faultload is a pure function of (Seed, edits, configuration), so
	// repeated and sharded enumerations agree exactly.
	Seed int64
	// Layout is the keyboard for substitution/insertion typos; nil means
	// keyboard.Default().
	Layout *keyboard.Layout
	// IncludeCleanEdit adds, per edit, one scenario applying the edit
	// without any typo — a control that must be Ignored (accepted) for
	// the benchmark to be meaningful.
	IncludeCleanEdit bool
}

// Name identifies the plugin.
func (p *Plugin) Name() string { return "editsim" }

// View returns the configuration view the scenarios apply to.
func (p *Plugin) View() view.View { return view.WordView{} }

// Generate enumerates the faultload over the word view of the initial
// configuration.
func (p *Plugin) Generate(wordSet *confnode.Set) ([]scenario.Scenario, error) {
	return scenario.Collect(p.GenerateStream(wordSet))
}

// GenerateStream yields the faultload lazily, edit by edit: only one
// edit's shuffled variant pool is ever resident, and the RNG draws happen
// in the same order as the eager path, so both enumerate the identical
// faultload.
func (p *Plugin) GenerateStream(wordSet *confnode.Set) scenario.Source {
	return func(yield func(scenario.Scenario, error) bool) {
		rng := rand.New(rand.NewSource(p.Seed))
		perEdit := p.PerEdit
		if perEdit == 0 {
			perEdit = 20
		}
		models := []template.Mutator{
			typo.Omission{},
			typo.Insertion{Layout: p.Layout},
			typo.Substitution{Layout: p.Layout},
			typo.CaseAlteration{},
			typo.Transposition{},
		}

		for _, edit := range p.Edits {
			lineRef, err := findDirectiveLine(wordSet, edit.Directive)
			if err != nil {
				yield(scenario.Scenario{}, err)
				return
			}
			// The typo corrupts the value the administrator just typed.
			probe := confnode.NewValued(confnode.KindWord, "", edit.NewValue)
			type variant struct {
				model string
				v     template.Variant
			}
			var variants []variant
			for _, m := range models {
				for _, v := range m.Variants(probe) {
					variants = append(variants, variant{model: m.Name(), v: v})
				}
			}
			if len(variants) == 0 {
				yield(scenario.Scenario{}, fmt.Errorf("editsim: no typo variants for value %q", edit.NewValue))
				return
			}
			rng.Shuffle(len(variants), func(i, j int) {
				variants[i], variants[j] = variants[j], variants[i]
			})
			n := perEdit
			if n > len(variants) {
				n = len(variants)
			}
			if p.IncludeCleanEdit {
				sc := p.editScenario(edit, lineRef, "clean", -1, template.Variant{
					Description: "apply edit without typo",
					Apply:       func(*confnode.Node) {},
				})
				if !yield(sc, nil) {
					return
				}
			}
			for i := 0; i < n; i++ {
				if !yield(p.editScenario(edit, lineRef, variants[i].model, i, variants[i].v), nil) {
					return
				}
			}
		}
	}
}

// GenerateShard yields shard k of n of the faultload (strided sub-stream
// of the pure GenerateStream).
func (p *Plugin) GenerateShard(wordSet *confnode.Set, k, n int) scenario.Source {
	return p.GenerateStream(wordSet).Shard(k, n)
}

// editScenario builds one scenario: apply the edit, then the typo variant.
func (p *Plugin) editScenario(edit Edit, lineRef template.Ref, model string, seq int, v template.Variant) scenario.Scenario {
	class := "editsim/" + model
	return scenario.Scenario{
		ID:    fmt.Sprintf("%s/%s=%s/%s/%d", class, edit.Directive, edit.NewValue, lineRef, seq),
		Class: class,
		Description: fmt.Sprintf("set %s = %s, then %s",
			edit.Directive, edit.NewValue, v.Description),
		Apply: func(s *confnode.Set) error {
			line, err := lineRef.Resolve(s)
			if err != nil {
				return err
			}
			// Replace the value tokens with the newly typed value...
			for _, w := range line.ChildrenByKind(confnode.KindWord) {
				if w.AttrDefault(view.TokenAttr, "") == view.TokenValue {
					w.Remove()
				}
			}
			word := confnode.NewValued(confnode.KindWord, "", edit.NewValue)
			word.SetAttr(view.TokenAttr, view.TokenValue)
			line.Append(word)
			// ...and slip the typo into it.
			v.Apply(word)
			return nil
		},
	}
}

// findDirectiveLine locates the word-view line whose name token matches
// the directive (case-insensitively, so tasks port across systems).
func findDirectiveLine(wordSet *confnode.Set, directive string) (template.Ref, error) {
	var found template.Ref
	var ok bool
	wordSet.Walk(func(file string, root *confnode.Node) {
		for _, line := range root.ChildrenByKind(confnode.KindLine) {
			for _, w := range line.ChildrenByKind(confnode.KindWord) {
				if w.AttrDefault(view.TokenAttr, "") == view.TokenName &&
					strings.EqualFold(w.Value, directive) && !ok {
					found = template.RefOf(file, line)
					ok = true
				}
			}
		}
	})
	if !ok {
		return template.Ref{}, fmt.Errorf("editsim: directive %q not found in configuration", directive)
	}
	return found, nil
}
