package editsim

import (
	"math/rand"
	"testing"

	"conferr/internal/scenario"
)

// TestGenerateStreamParity proves the streaming faultload enumerates
// exactly Generate's scenarios — fresh plugin instances with the same
// seed, because both forms consume the Rng.
func TestGenerateStreamParity(t *testing.T) {
	mk := func() *Plugin {
		return &Plugin{
			Edits: []Edit{
				{Directive: "shared_buffers", NewValue: "64MB"},
				{Directive: "port", NewValue: "6543"},
			},
			PerEdit:          5,
			IncludeCleanEdit: true,
			Rng:              rand.New(rand.NewSource(11)),
		}
	}
	eager, err := mk().Generate(wordSet())
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := scenario.Collect(mk().GenerateStream(wordSet()))
	if err != nil {
		t.Fatal(err)
	}
	if len(eager) == 0 || len(eager) != len(streamed) {
		t.Fatalf("eager %d scenarios, streamed %d", len(eager), len(streamed))
	}
	for i := range eager {
		if eager[i].ID != streamed[i].ID || eager[i].Description != streamed[i].Description {
			t.Fatalf("scenario %d: %s vs %s", i, eager[i].ID, streamed[i].ID)
		}
	}
}
