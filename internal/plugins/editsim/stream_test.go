package editsim

import (
	"testing"

	"conferr/internal/scenario"
)

// TestGenerateStreamParity proves the streaming faultload enumerates
// exactly Generate's scenarios — fresh plugin instances with the same
// seed, because both forms consume the Rng.
func TestGenerateStreamParity(t *testing.T) {
	mk := func() *Plugin {
		return &Plugin{
			Edits: []Edit{
				{Directive: "shared_buffers", NewValue: "64MB"},
				{Directive: "port", NewValue: "6543"},
			},
			PerEdit:          5,
			IncludeCleanEdit: true,
			Seed:             11,
		}
	}
	eager, err := mk().Generate(wordSet())
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := scenario.Collect(mk().GenerateStream(wordSet()))
	if err != nil {
		t.Fatal(err)
	}
	if len(eager) == 0 || len(eager) != len(streamed) {
		t.Fatalf("eager %d scenarios, streamed %d", len(eager), len(streamed))
	}
	for i := range eager {
		if eager[i].ID != streamed[i].ID || eager[i].Description != streamed[i].Description {
			t.Fatalf("scenario %d: %s vs %s", i, eager[i].ID, streamed[i].ID)
		}
	}
}

// TestShardParity checks the ShardedGenerator contract over the seeded
// shuffle: every shard re-derives the identical stream and keeps its
// stride, so the union reproduces GenerateStream for any n.
func TestShardParity(t *testing.T) {
	p := &Plugin{
		Edits: []Edit{
			{Directive: "shared_buffers", NewValue: "64MB"},
			{Directive: "port", NewValue: "6543"},
		},
		PerEdit:          7,
		IncludeCleanEdit: true,
		Seed:             11,
	}
	want, err := scenario.Collect(p.GenerateStream(wordSet()))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 8} {
		total := 0
		for k := 0; k < n; k++ {
			s, err := scenario.Collect(p.GenerateShard(wordSet(), k, n))
			if err != nil {
				t.Fatal(err)
			}
			for j, sc := range s {
				if i := j*n + k; i >= len(want) || want[i].ID != sc.ID {
					t.Fatalf("n=%d shard %d: diverges at local %d", n, k, j)
				}
			}
			total += len(s)
		}
		if total != len(want) {
			t.Fatalf("n=%d: shards hold %d, want %d", n, total, len(want))
		}
	}
}
