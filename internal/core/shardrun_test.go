package core

import (
	"context"
	"testing"

	"conferr/internal/benchfixture"
	"conferr/internal/confnode"
	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/view"
)

func shardTestCampaign() *Campaign {
	return &Campaign{
		Target:    &Target{System: benchfixture.System{}, Formats: benchfixture.Formats()},
		Generator: benchfixture.Gen{},
	}
}

// sliceOnlyGen hides benchfixture.Gen's native shard support so RunShard
// exercises the stride fallback.
type sliceOnlyGen struct{ g benchfixture.Gen }

func (s sliceOnlyGen) Name() string    { return s.g.Name() }
func (s sliceOnlyGen) View() view.View { return s.g.View() }
func (s sliceOnlyGen) Generate(set *confnode.Set) ([]scenario.Scenario, error) {
	return s.g.Generate(set)
}

// runShardUnion runs every shard of n and returns the union keyed by
// global sequence, checking per-shard totals along the way.
func runShardUnion(t *testing.T, c *Campaign, n, startSeq int) map[int]profile.Record {
	t.Helper()
	got := make(map[int]profile.Record)
	for k := 0; k < n; k++ {
		total, err := c.RunShard(context.Background(), k, n, startSeq, func(seq int, rec profile.Record) error {
			if _, dup := got[seq]; dup {
				t.Fatalf("sequence %d emitted twice", seq)
			}
			got[seq] = rec
			return nil
		})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", k, n, err)
		}
		want := 0
		for seq := k; seq < benchfixture.Files*benchfixture.DirsPerFile; seq += n {
			want++
		}
		if total != want {
			t.Fatalf("shard %d/%d reported %d owned sequences, want %d", k, n, total, want)
		}
	}
	return got
}

// TestRunShardUnionMatchesRun: the shards of a campaign, merged by
// global sequence, reproduce the unsharded run record for record — the
// property the distributed coordinator's byte-identity rests on.
func TestRunShardUnionMatchesRun(t *testing.T) {
	ref := shardTestCampaign()
	var want []profile.Record
	if _, err := ref.RunContext(context.Background(), WithObserver(func(r profile.Record) {
		want = append(want, r)
	})); err != nil {
		t.Fatal(err)
	}
	if len(want) != benchfixture.Files*benchfixture.DirsPerFile {
		t.Fatalf("reference run produced %d records", len(want))
	}

	for _, gen := range []Generator{benchfixture.Gen{}, sliceOnlyGen{}} {
		c := shardTestCampaign()
		c.Generator = gen
		if _, native := gen.(ShardedGenerator); native != CanShard(gen) {
			t.Fatalf("%T: CanShard disagrees with interface", gen)
		}
		got := runShardUnion(t, c, 3, 0)
		if len(got) != len(want) {
			t.Fatalf("%T: shards produced %d records, want %d", gen, len(got), len(want))
		}
		for seq, w := range want {
			g, ok := got[seq]
			if !ok {
				t.Fatalf("%T: sequence %d missing", gen, seq)
			}
			g.Duration, w.Duration = 0, 0
			if g != w {
				t.Fatalf("%T: sequence %d: got %+v, want %+v", gen, seq, g, w)
			}
		}
	}
}

// TestRunShardStartSeqSkips: sequences below startSeq are counted but
// neither executed nor emitted — the resume fast path.
func TestRunShardStartSeqSkips(t *testing.T) {
	c := shardTestCampaign()
	const n, start = 2, 7
	totalScens := benchfixture.Files * benchfixture.DirsPerFile
	for k := 0; k < n; k++ {
		var seqs []int
		total, err := c.RunShard(context.Background(), k, n, start, func(seq int, _ profile.Record) error {
			seqs = append(seqs, seq)
			return nil
		})
		if err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
		owned := 0
		wantEmitted := 0
		for seq := k; seq < totalScens; seq += n {
			owned++
			if seq >= start {
				wantEmitted++
			}
		}
		if total != owned {
			t.Fatalf("shard %d: total %d, want %d (skips must still count)", k, total, owned)
		}
		if len(seqs) != wantEmitted {
			t.Fatalf("shard %d: emitted %d records, want %d", k, len(seqs), wantEmitted)
		}
		for _, s := range seqs {
			if s < start {
				t.Fatalf("shard %d: emitted sequence %d below start %d", k, s, start)
			}
		}
	}
}

// TestRunShardRejectsBadBounds: malformed shard coordinates fail before
// any generation happens.
func TestRunShardRejectsBadBounds(t *testing.T) {
	c := shardTestCampaign()
	for _, kn := range [][2]int{{0, 0}, {-1, 2}, {2, 2}, {5, 3}} {
		if _, err := c.RunShard(context.Background(), kn[0], kn[1], 0, func(int, profile.Record) error { return nil }); err == nil {
			t.Fatalf("shard %d of %d accepted", kn[0], kn[1])
		}
	}
}
