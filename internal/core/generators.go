package core

import (
	"fmt"

	"conferr/internal/confnode"
	"conferr/internal/scenario"
	"conferr/internal/view"
)

// This file provides generator combinators: wrappers that reshape another
// generator's faultload — capping, sampling, merging or replicating it —
// while implementing both the slice and the streaming contract. Each
// wrapper's Generate is defined as Collect over its own stream, so the two
// paths cannot drift apart.

// streamFunc builds a Generator+StreamingGenerator pair from a stream
// constructor; Generate materializes the identical stream.
type streamFunc struct {
	name string
	view view.View
	src  func(viewSet *confnode.Set) scenario.Source
	// shardable marks the wrapped pipeline as pure: every src call
	// re-derives the identical stream, which is what makes the strided
	// GenerateShard sound. Wrappers are shardable exactly when every
	// generator they compose is.
	shardable bool
}

var _ ShardedGenerator = streamFunc{}

// Name implements Generator.
func (g streamFunc) Name() string { return g.name }

// View implements Generator.
func (g streamFunc) View() view.View { return g.view }

// Generate implements Generator.
func (g streamFunc) Generate(viewSet *confnode.Set) ([]scenario.Scenario, error) {
	return scenario.Collect(g.src(viewSet))
}

// GenerateStream implements StreamingGenerator.
func (g streamFunc) GenerateStream(viewSet *confnode.Set) scenario.Source {
	return g.src(viewSet)
}

// GenerateShard implements ShardedGenerator: a fresh pull of the pure
// pipeline, strided down to shard k of n. Only sound when Shardable()
// reports true — the runner checks through CanShard.
func (g streamFunc) GenerateShard(viewSet *confnode.Set, k, n int) scenario.Source {
	return g.src(viewSet).Shard(k, n)
}

// Shardable reports whether every composed generator is shard-stable.
func (g streamFunc) Shardable() bool { return g.shardable }

// LimitGenerator caps gen's faultload at n scenarios. On the streaming
// path the cap stops the pull: generation work past n never happens.
func LimitGenerator(gen Generator, n int) Generator {
	return streamFunc{
		name:      gen.Name(),
		view:      gen.View(),
		shardable: CanShard(gen),
		src: func(viewSet *confnode.Set) scenario.Source {
			return StreamOf(gen, viewSet).Limit(n)
		},
	}
}

// SampleGenerator draws n scenarios uniformly from gen's faultload via
// seeded reservoir sampling: the whole faultload streams past, but only n
// scenarios are ever resident.
func SampleGenerator(gen Generator, seed int64, n int) Generator {
	return streamFunc{
		name:      gen.Name(),
		view:      gen.View(),
		shardable: CanShard(gen),
		src: func(viewSet *confnode.Set) scenario.Source {
			return StreamOf(gen, viewSet).SampleN(seed, n)
		},
	}
}

// MergeGenerators concatenates the faultloads of several generators that
// share one view — the streaming form of running them as separate merged
// campaigns. All generators must declare the same view; the first one's is
// used.
func MergeGenerators(name string, gens ...Generator) (Generator, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("core: MergeGenerators needs at least one generator")
	}
	v := gens[0].View()
	for _, g := range gens[1:] {
		if g.View().Name() != v.Name() {
			return nil, fmt.Errorf("core: MergeGenerators: %s uses view %s, want %s",
				g.Name(), g.View().Name(), v.Name())
		}
	}
	shardable := true
	for _, g := range gens {
		if !CanShard(g) {
			shardable = false
			break
		}
	}
	return streamFunc{
		name:      name,
		view:      v,
		shardable: shardable,
		src: func(viewSet *confnode.Set) scenario.Source {
			sources := make([]scenario.Source, len(gens))
			for i, g := range gens {
				sources[i] = StreamOf(g, viewSet)
			}
			return scenario.Concat(sources...)
		},
	}, nil
}

// RepeatGenerator replays gen's faultload rounds times, prefixing every
// scenario ID with its round ("r003/typo/...") so IDs stay campaign-unique
// — the stress harness for driving the streaming runner far past what one
// enumeration of a configuration yields. Each round pulls a fresh stream
// from gen; the built-in generators are pure functions of their seed, so
// every round repeats the identical enumeration — the property that also
// makes a repeated faultload shard-stable across workers.
func RepeatGenerator(gen Generator, rounds int) Generator {
	return streamFunc{
		name:      gen.Name(),
		view:      gen.View(),
		shardable: CanShard(gen),
		src: func(viewSet *confnode.Set) scenario.Source {
			sources := make([]scenario.Source, rounds)
			for r := 0; r < rounds; r++ {
				prefix := fmt.Sprintf("r%03d/", r)
				sources[r] = StreamOf(gen, viewSet).Map(func(sc scenario.Scenario) scenario.Scenario {
					sc.ID = prefix + sc.ID
					return sc
				})
			}
			return scenario.Concat(sources...)
		},
	}
}
