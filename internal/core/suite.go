package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"conferr/internal/profile"
)

// SuiteCampaign is one cell of a campaign suite: a named campaign plus its
// per-campaign options (target factory, keep-going) and an optional
// streaming sink.
type SuiteCampaign struct {
	// Name labels the campaign in the suite result, e.g. "nginx/typo".
	Name string
	// Campaign is the target × generator pair to run.
	Campaign *Campaign
	// Options are appended to the suite's own options for this campaign;
	// campaigns that run with any parallelism (or concurrently with other
	// campaigns of the same system family) need a WithTargetFactory here.
	Options []RunOption
	// Sink, when non-nil, receives the campaign's records as they are
	// produced and the suite keeps no per-record state for this campaign
	// (CampaignResult.Profile stays nil). When nil, records accumulate
	// into CampaignResult.Profile.
	Sink profile.Sink
	// Cleanup, when non-nil, runs after the campaign finishes — success,
	// failure or cancellation alike — releasing per-campaign resources
	// such as a pooled-SUT lifecycle's warm instances. Its error is
	// reported only when the campaign itself succeeded.
	Cleanup func() error
}

// Suite runs a set of campaigns — typically a target × generator matrix —
// concurrently under one context with a shared worker budget. Every
// campaign goes through the streaming dispatch engine, so a suite's memory
// footprint is bounded by its in-flight windows plus whatever its sinks
// retain, not by its faultloads.
type Suite struct {
	// Campaigns lists the suite cells; results come back in the same
	// order.
	Campaigns []SuiteCampaign
	// Workers is the total worker budget shared by the whole suite
	// (0 = GOMAXPROCS). Up to min(len(Campaigns), Workers) campaigns run
	// concurrently, each with an equal share of the budget; each worker
	// owns its own SUT instance.
	Workers int
	// KeepGoing controls behaviour when a campaign fails: when false
	// (default) the remaining campaigns are cancelled; when true they keep
	// running and the failure is reported in its CampaignResult.
	KeepGoing bool
}

// CampaignResult is the outcome of one suite cell.
type CampaignResult struct {
	// Name echoes the SuiteCampaign's label.
	Name string
	// Profile holds the campaign's records, unless a custom Sink consumed
	// them (then nil).
	Profile *profile.Profile
	// Summary tallies the campaign's outcomes — always populated, even
	// when the records streamed to a custom sink.
	Summary profile.Summary
	// Records is the number of records produced.
	Records int
	// Duration is the campaign's wall-clock time.
	Duration time.Duration
	// Err is the campaign's failure, nil on success.
	Err error
}

// SuiteResult aggregates a suite run.
type SuiteResult struct {
	// Results holds one entry per campaign, in Suite.Campaigns order.
	Results []CampaignResult
}

// ProfileByName returns the named campaign's profile, or nil.
func (r *SuiteResult) ProfileByName(name string) *profile.Profile {
	for _, cr := range r.Results {
		if cr.Name == name {
			return cr.Profile
		}
	}
	return nil
}

// FirstError returns the first failed campaign's error in suite order,
// preferring root causes: when one campaign's failure cancelled its
// siblings, the failing campaign's error wins over the siblings'
// context.Canceled, whatever their suite order.
func (r *SuiteResult) FirstError() error {
	var cancelled error
	for _, cr := range r.Results {
		if cr.Err == nil {
			continue
		}
		if errors.Is(cr.Err, context.Canceled) || errors.Is(cr.Err, context.DeadlineExceeded) {
			if cancelled == nil {
				cancelled = fmt.Errorf("core: campaign %s: %w", cr.Name, cr.Err)
			}
			continue
		}
		return fmt.Errorf("core: campaign %s: %w", cr.Name, cr.Err)
	}
	return cancelled
}

// Run executes the suite. The result always covers every campaign — on
// failure without KeepGoing, campaigns cancelled before completion carry
// the cancellation in their Err — and the returned error is the first
// campaign failure in suite order, nil when all succeeded.
func (s *Suite) Run(ctx context.Context) (*SuiteResult, error) {
	n := len(s.Campaigns)
	res := &SuiteResult{Results: make([]CampaignResult, n)}
	if n == 0 {
		return res, nil
	}
	budget := s.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	concurrent := n
	if concurrent > budget {
		concurrent = budget
	}
	perCampaign := budget / concurrent
	if perCampaign < 1 {
		perCampaign = 1
	}
	// Distribute the budget remainder: the first budget%concurrent
	// campaigns get one extra worker. At most `concurrent` campaigns run
	// at once and the remainder is < concurrent, so the in-flight worker
	// total never exceeds the budget.
	remainder := budget % concurrent

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// The slot is acquired here, in suite order, before the goroutine
	// spawns: campaigns start in declaration order as capacity frees up,
	// which keeps port pressure and abort behaviour predictable.
	sem := make(chan struct{}, concurrent)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := range s.Campaigns {
		workers := perCampaign
		if i < remainder {
			workers++
		}
		sem <- struct{}{}
		go func(i, workers int, spec SuiteCampaign) {
			defer wg.Done()
			defer func() { <-sem }()
			res.Results[i] = s.runOne(runCtx, spec, workers)
			if res.Results[i].Err != nil && !s.KeepGoing {
				cancel()
			}
		}(i, workers, s.Campaigns[i])
	}
	wg.Wait()
	return res, res.FirstError()
}

// runOne executes a single suite cell with its share of the budget.
func (s *Suite) runOne(ctx context.Context, spec SuiteCampaign, workers int) CampaignResult {
	cr := CampaignResult{Name: spec.Name}
	if err := ctx.Err(); err != nil {
		cr.Err = err
		return cr
	}
	tally := &profile.TallySink{}
	sinks := profile.MultiSink{tally}
	if spec.Sink != nil {
		sinks = append(sinks, spec.Sink)
	} else {
		cr.Profile = &profile.Profile{
			System:    spec.Campaign.Target.System.Name(),
			Generator: spec.Campaign.Generator.Name(),
		}
		sinks = append(sinks, &profile.MemorySink{Profile: cr.Profile})
	}
	opts := append([]RunOption{WithParallelism(workers)}, spec.Options...)
	start := time.Now()
	records, err := spec.Campaign.RunStream(ctx, sinks, opts...)
	cr.Duration = time.Since(start)
	cr.Records = records
	cr.Summary = tally.Summary()
	cr.Summary.System = spec.Campaign.Target.System.Name()
	cr.Err = err
	if spec.Cleanup != nil {
		if cerr := spec.Cleanup(); cerr != nil && cr.Err == nil {
			cr.Err = fmt.Errorf("core: campaign cleanup: %w", cerr)
		}
	}
	return cr
}
