package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"conferr/internal/benchfixture"
	"conferr/internal/confnode"
	"conferr/internal/cpath"
	"conferr/internal/plugins/typo"
	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/template"
	"conferr/internal/view"
)

// collectIDs drains a source into its scenario IDs.
func collectIDs(t *testing.T, src scenario.Source) []string {
	t.Helper()
	scens, err := scenario.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(scens))
	for i, sc := range scens {
		out[i] = sc.ID
	}
	return out
}

// assertShardUnion checks that interleaving shard(k,n) for all k by
// stride reproduces want exactly, for shard counts that do and do not
// divide the faultload.
func assertShardUnion(t *testing.T, want []string, shard func(k, n int) scenario.Source) {
	t.Helper()
	if len(want) == 0 {
		t.Fatal("empty faultload")
	}
	for _, n := range []int{1, 2, 3, 5, 8} {
		total := 0
		for k := 0; k < n; k++ {
			got := collectIDs(t, shard(k, n))
			for j, id := range got {
				if i := j*n + k; i >= len(want) || want[i] != id {
					t.Fatalf("n=%d shard %d: diverges at local %d (%s)", n, k, j, id)
				}
			}
			total += len(got)
		}
		if total != len(want) {
			t.Fatalf("n=%d: shards hold %d scenarios, want %d", n, total, len(want))
		}
	}
}

// TestTemplateStreamsShardStable: the base templates' streams are
// deterministic, so their strided shards union back to the whole — the
// property every template-built plugin faultload inherits.
func TestTemplateStreamsShardStable(t *testing.T) {
	set := confnode.NewSet()
	root := confnode.New(confnode.KindDocument, "t.conf")
	sec := confnode.New(confnode.KindSection, "s")
	for i := 0; i < 7; i++ {
		sec.Append(confnode.NewValued(confnode.KindDirective, fmt.Sprintf("d%d", i), "v"))
	}
	root.Append(sec)
	root.Append(confnode.NewValued(confnode.KindDirective, "top", "x"))
	set.Put("t.conf", root)

	templates := map[string]template.Template{
		"delete":    &template.DeleteTemplate{Targets: cpath.MustCompile("//directive")},
		"duplicate": &template.DuplicateTemplate{Targets: cpath.MustCompile("//directive")},
		"move": &template.MoveTemplate{
			Targets:      cpath.MustCompile("//directive"),
			Destinations: cpath.MustCompile("//section"),
		},
		"modify": &template.ModifyTemplate{
			Targets: cpath.MustCompile("//directive"),
			Mutator: typo.Omission{},
		},
	}
	for name, tpl := range templates {
		t.Run(name, func(t *testing.T) {
			want := collectIDs(t, tpl.GenerateStream(set))
			assertShardUnion(t, want, func(k, n int) scenario.Source {
				return tpl.GenerateStream(set).Shard(k, n)
			})
		})
	}
}

// TestBenchfixtureShardParity pins the native sharded enumeration of the
// benchmark generator against its own stream and slice forms.
func TestBenchfixtureShardParity(t *testing.T) {
	c := &Campaign{Target: benchTarget(), Generator: benchfixture.Gen{}}
	fl, err := c.generateBase()
	if err != nil {
		t.Fatal(err)
	}
	eager, err := benchfixture.Gen{}.Generate(fl.viewSet)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(eager))
	for i, sc := range eager {
		want[i] = sc.ID
	}
	streamed := collectIDs(t, benchfixture.Gen{}.GenerateStream(fl.viewSet))
	if strings.Join(streamed, ",") != strings.Join(want, ",") {
		t.Fatal("GenerateStream diverges from Generate")
	}
	assertShardUnion(t, want, func(k, n int) scenario.Source {
		return benchfixture.Gen{}.GenerateShard(fl.viewSet, k, n)
	})
	if !CanShard(benchfixture.Gen{}) {
		t.Error("benchfixture.Gen should be shardable")
	}
}

// TestCombinatorShardability: combinators are shardable exactly when
// every wrapped generator is, and their shards union back to the whole.
func TestCombinatorShardability(t *testing.T) {
	shardable := &typo.Plugin{}
	if !CanShard(shardable) {
		t.Fatal("typo plugin should be shardable")
	}
	opaque := mixGen{} // slice-only generator: not shardable
	if CanShard(opaque) {
		t.Fatal("mixGen should not be shardable")
	}
	if CanShard(LimitGenerator(opaque, 3)) {
		t.Error("Limit over a non-shardable generator must not be shardable")
	}
	if !CanShard(LimitGenerator(shardable, 30)) {
		t.Error("Limit over a shardable generator should be shardable")
	}
	// Merge requires a shared view: pair the (shardable) struct-view
	// synthetic generator with the (opaque) struct-view mixGen.
	if merged, err := MergeGenerators("m", benchfixture.Gen{}, opaque); err != nil || CanShard(merged) {
		t.Errorf("Merge with one non-shardable generator must not be shardable (err=%v)", err)
	}
	if merged, err := MergeGenerators("m", benchfixture.Gen{}, benchfixture.Gen{}); err != nil || !CanShard(merged) {
		t.Errorf("Merge of shardable generators should be shardable (err=%v)", err)
	}

	c := &Campaign{Target: digestTarget(), Generator: shardable}
	fl, err := c.generateBase()
	if err != nil {
		t.Fatal(err)
	}
	for name, gen := range map[string]Generator{
		"limit":  LimitGenerator(shardable, 30),
		"sample": SampleGenerator(shardable, 7, 25),
		"repeat": RepeatGenerator(shardable, 3),
	} {
		t.Run(name, func(t *testing.T) {
			sg, ok := gen.(ShardedGenerator)
			if !ok || !CanShard(gen) {
				t.Fatalf("%s combinator should be shardable", name)
			}
			want := collectIDs(t, sg.GenerateStream(fl.viewSet))
			assertShardUnion(t, want, func(k, n int) scenario.Source {
				return sg.GenerateShard(fl.viewSet, k, n)
			})
		})
	}
}

// dropDuration forwards records to the wrapped sink with the (run-varying)
// wall-clock duration zeroed, so byte-level profile comparisons test
// determinism of everything that is supposed to be deterministic.
type dropDuration struct{ sink profile.Sink }

func (d dropDuration) Write(r profile.Record) error {
	r.Duration = 0
	return d.sink.Write(r)
}

// TestShardedStreamingProfilesByteIdentical is the PR's headline
// equivalence contract: streaming a shardable faultload through the
// sharded engine at workers 4 and 8 produces JSONL output byte-identical
// to the sequential engine's — same records, same order, same encoding —
// and the streaming reader sees strictly increasing sequence numbers.
// The typo faultload over the multi-codec digest target does not divide
// evenly by 4 or 8, so shard boundaries with ragged tails are covered.
func TestShardedStreamingProfilesByteIdentical(t *testing.T) {
	run := func(workers int) []byte {
		var buf bytes.Buffer
		c := &Campaign{Target: digestTarget(), Generator: &typo.Plugin{}}
		sink := dropDuration{profile.NewJSONLSink(&buf, "digest", "typo")}
		opts := []RunOption{WithParallelism(workers),
			WithTargetFactory(func() (*Target, error) { return digestTarget(), nil })}
		n, err := c.RunStream(context.Background(), sink, opts...)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n == 0 {
			t.Fatalf("workers=%d: no records", workers)
		}
		return buf.Bytes()
	}
	want := run(1)
	for _, workers := range []int{4, 8} {
		got := run(workers)
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: JSONL output diverges from sequential", workers)
		}
	}
	// The streaming reader round-trips the output with in-order seqs.
	next := 0
	if err := profile.ScanJSONL(bytes.NewReader(want), func(e profile.JSONLEntry) error {
		if e.Seq != next {
			return fmt.Errorf("seq %d, want %d", e.Seq, next)
		}
		next++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedTallyBypassMatchesOrderedRun: the order-insensitive tally
// path (no reassembly at all) must agree with the ordered engine on
// every count.
func TestShardedTallyBypassMatchesOrderedRun(t *testing.T) {
	ref, err := (&Campaign{Target: digestTarget(), Generator: &typo.Plugin{}}).
		RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Summarize()
	for _, workers := range []int{2, 8} {
		tally := &profile.TallySink{}
		c := &Campaign{Target: digestTarget(), Generator: &typo.Plugin{}}
		n, err := c.RunStream(context.Background(), tally,
			WithParallelism(workers),
			WithTargetFactory(func() (*Target, error) { return digestTarget(), nil }))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != len(ref.Records) {
			t.Errorf("workers=%d: %d records, want %d", workers, n, len(ref.Records))
		}
		if n != tally.Records() {
			t.Errorf("workers=%d: run reported %d records, tally holds %d", workers, n, tally.Records())
		}
		got := tally.Summary()
		got.System = want.System
		if got != want {
			t.Errorf("workers=%d: tally summary %+v, want %+v", workers, got, want)
		}
	}
}

// breakingGen is a shardable generator whose stream fails after good
// scenarios — the fixture for mid-stream error semantics under sharding.
type breakingGen struct {
	good int
}

func (g breakingGen) Name() string    { return "breaking" }
func (g breakingGen) View() view.View { return view.StructView{} }
func (g breakingGen) Generate(s *confnode.Set) ([]scenario.Scenario, error) {
	return scenario.Collect(g.GenerateStream(s))
}
func (g breakingGen) GenerateStream(s *confnode.Set) scenario.Source {
	return g.GenerateShard(s, 0, 1)
}
func (g breakingGen) GenerateShard(s *confnode.Set, k, n int) scenario.Source {
	if n <= 1 {
		k, n = 0, 1
	}
	return func(yield func(scenario.Scenario, error) bool) {
		for i := 0; i < g.good; i++ {
			if i%n != k {
				continue
			}
			sc := scenario.Scenario{
				ID:    fmt.Sprintf("ok/%04d", i),
				Class: "ok",
				Apply: func(*confnode.Set) error { return nil },
			}
			if !yield(sc, nil) {
				return
			}
		}
		yield(scenario.Scenario{}, errors.New("generator exploded"))
	}
}

// TestShardedMidStreamGenerationError: when every shard's stream breaks
// at the same underlying point, the engine must flush exactly the records
// before the failure — in order, gap-free — and return the generation
// error, matching the sequential contract.
func TestShardedMidStreamGenerationError(t *testing.T) {
	const good = 37 // not divisible by the worker count
	for _, workers := range []int{4, 8} {
		prof := &profile.Profile{}
		c := &Campaign{Target: digestTarget(), Generator: breakingGen{good: good}}
		n, err := c.RunStream(context.Background(), &profile.MemorySink{Profile: prof},
			WithParallelism(workers),
			WithTargetFactory(func() (*Target, error) { return digestTarget(), nil }))
		if err == nil || !strings.Contains(err.Error(), "generator exploded") {
			t.Fatalf("workers=%d: err = %v, want generation error", workers, err)
		}
		if n != good {
			t.Errorf("workers=%d: flushed %d records, want %d", workers, n, good)
		}
		for i, r := range prof.Records {
			if want := fmt.Sprintf("ok/%04d", i); r.ScenarioID != want {
				t.Errorf("workers=%d: record %d = %s, want %s", workers, i, r.ScenarioID, want)
				break
			}
		}
	}
}

// TestRunOneFastPathAllocs pins the hot path's allocation ceiling on the
// synthetic fixture: the arena, pooled scratch and baseline-prepopulated
// files map leave only a handful of unavoidable allocations (the mutated
// file's serialized bytes among them). The seed path burned ~115
// allocations per injection; the ceiling keeps the diet from silently
// regressing.
func TestRunOneFastPathAllocs(t *testing.T) {
	tgt, fl := benchFaultload(t)
	if fl.inc == nil || fl.baseBytes == nil {
		t.Fatal("fast path not enabled")
	}
	scr := getScratch()
	defer putScratch(scr)
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		sc := fl.scens[i%len(fl.scens)]
		i++
		if _, err := runOne(tgt, sc, fl, scr); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 6
	if allocs > ceiling {
		t.Errorf("fast injection path allocs/op = %v, want <= %d", allocs, ceiling)
	}
}

// TestShardedAbortFlushesPrefixThroughFailure pins the abort-fence
// contract the hard-stop design violated: with workers, an
// infrastructure failure at sequence s must still produce the exact
// contiguous prefix 0..s — including the failing scenario's own record —
// even when a lower sequence had not started at failure time.
func TestShardedAbortFlushesPrefixThroughFailure(t *testing.T) {
	mkScens := func() []scenario.Scenario {
		return []scenario.Scenario{
			{ID: "s0", Class: "c", Apply: func(*confnode.Set) error {
				time.Sleep(30 * time.Millisecond) // s1 fails before s0 starts injecting
				return nil
			}},
			{ID: "s1", Class: "c", Apply: func(*confnode.Set) error {
				return errors.New("infra down")
			}},
			{ID: "s2", Class: "c", Apply: func(*confnode.Set) error { return nil }},
			{ID: "s3", Class: "c", Apply: func(*confnode.Set) error { return nil }},
		}
	}
	c := &Campaign{Target: digestTarget(), Generator: sliceGen{mkScens()}}
	prof, err := c.RunContext(context.Background(),
		WithParallelism(2),
		WithTargetFactory(func() (*Target, error) { return digestTarget(), nil }))
	if err == nil || !strings.Contains(err.Error(), "scenario s1") {
		t.Fatalf("err = %v, want scenario s1 infrastructure error", err)
	}
	got := make([]string, len(prof.Records))
	for i, r := range prof.Records {
		got[i] = r.ScenarioID
	}
	if fmt.Sprint(got) != "[s0 s1]" {
		t.Errorf("profile = %v, want the contiguous prefix [s0 s1]", got)
	}
}

// sliceGen is a minimal slice-only generator over the struct view.
type sliceGen struct{ scens []scenario.Scenario }

func (g sliceGen) Name() string    { return "slice" }
func (g sliceGen) View() view.View { return view.StructView{} }
func (g sliceGen) Generate(*confnode.Set) ([]scenario.Scenario, error) {
	return g.scens, nil
}
