package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/plugins/typo"
	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/suts"
)

// parFactory builds an independent fake target per worker, the way real
// parallel campaigns give each worker its own SUT instance.
func parFactory() (*Target, error) {
	return target(&fakeSystem{}), nil
}

// canonical renders the parts of a profile that must be identical across
// worker counts: identity, order, IDs, classes, outcomes and details
// (durations legitimately differ run to run).
func canonical(p *profile.Profile) string {
	var b strings.Builder
	b.WriteString(p.System + "/" + p.Generator + "\n")
	for _, r := range p.Records {
		b.WriteString(r.ScenarioID + "|" + r.Class + "|" + r.Outcome.String() + "|" + r.Detail + "\n")
	}
	return b.String()
}

// TestRunContextParallelMatchesSequential is the determinism contract of
// the parallel engine: for the same faultload, an N-worker run must
// produce a byte-identical, scenario-ordered profile to the sequential
// run. Run with -race, it also proves the fan-out is data-race free.
func TestRunContextParallelMatchesSequential(t *testing.T) {
	gen := &typo.Plugin{}

	seqCampaign := &Campaign{Target: target(&fakeSystem{}), Generator: gen}
	seq, err := seqCampaign.RunContext(context.Background())
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if len(seq.Records) == 0 {
		t.Fatal("empty sequential faultload")
	}

	for _, workers := range []int{2, 4, 8} {
		parCampaign := &Campaign{Target: target(&fakeSystem{}), Generator: gen}
		par, err := parCampaign.RunContext(context.Background(),
			WithParallelism(workers), WithTargetFactory(parFactory))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got, want := canonical(par), canonical(seq); got != want {
			t.Errorf("workers=%d: profile diverged from sequential run\ngot:\n%s\nwant:\n%s",
				workers, got, want)
		}
		if got, want := par.FormatRecords(), seq.FormatRecords(); got != want {
			t.Errorf("workers=%d: FormatRecords diverged", workers)
		}
	}
}

func TestRunContextParallelRequiresFactory(t *testing.T) {
	c := &Campaign{Target: target(&fakeSystem{}), Generator: &typo.Plugin{}}
	_, err := c.RunContext(context.Background(), WithParallelism(4))
	if err == nil || !strings.Contains(err.Error(), "target factory") {
		t.Errorf("err = %v, want target-factory requirement", err)
	}
}

func TestRunContextObserverSerialized(t *testing.T) {
	var mu sync.Mutex
	inCall := false
	calls := 0
	obs := func(profile.Record) {
		mu.Lock()
		if inCall {
			mu.Unlock()
			t.Error("observer reentered concurrently")
			return
		}
		inCall = true
		calls++
		inCall = false
		mu.Unlock()
	}
	c := &Campaign{Target: target(&fakeSystem{}), Generator: &typo.Plugin{}}
	prof, err := c.RunContext(context.Background(),
		WithParallelism(4), WithTargetFactory(parFactory), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(prof.Records) {
		t.Errorf("observer saw %d records, profile has %d", calls, len(prof.Records))
	}
}

func TestRunContextCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Campaign{Target: target(&fakeSystem{}), Generator: &typo.Plugin{}}
	prof, err := c.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if len(prof.Records) != 0 {
		t.Errorf("records = %d, want 0", len(prof.Records))
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		obs := func(profile.Record) {
			seen++
			if seen == 3 {
				cancel()
			}
		}
		c := &Campaign{Target: target(&fakeSystem{}), Generator: &typo.Plugin{}}
		opts := []RunOption{WithObserver(obs)}
		if workers > 1 {
			opts = append(opts, WithParallelism(workers), WithTargetFactory(parFactory))
		}
		prof, err := c.RunContext(ctx, opts...)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		fullProf, err := (&Campaign{Target: target(&fakeSystem{}), Generator: &typo.Plugin{}}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(prof.Records) >= len(fullProf.Records) {
			t.Errorf("workers=%d: cancellation did not cut the run short (%d records)",
				workers, len(prof.Records))
		}
	}
}

func TestRunContextParallelAbortsOnInfrastructureError(t *testing.T) {
	scens := []scenario.Scenario{
		{ID: "ok-0", Class: "c", Apply: func(*confnode.Set) error { return nil }},
		{ID: "boom", Class: "c", Apply: func(*confnode.Set) error { return errors.New("boom") }},
		{ID: "ok-1", Class: "c", Apply: func(*confnode.Set) error { return nil }},
	}
	c := &Campaign{Target: target(&fakeSystem{}), Generator: badGen{scens: scens}}
	_, err := c.RunContext(context.Background(),
		WithParallelism(2), WithTargetFactory(parFactory))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want abort carrying the scenario error", err)
	}
}

func TestRunContextParallelKeepGoing(t *testing.T) {
	scens := []scenario.Scenario{
		{ID: "ok-0", Class: "c", Apply: func(*confnode.Set) error { return nil }},
		{ID: "boom", Class: "c", Apply: func(*confnode.Set) error { return errors.New("boom") }},
		{ID: "ok-1", Class: "c", Apply: func(*confnode.Set) error { return nil }},
	}
	c := &Campaign{Target: target(&fakeSystem{}), Generator: badGen{scens: scens}}
	prof, err := c.RunContext(context.Background(),
		WithParallelism(2), WithTargetFactory(parFactory), WithKeepGoing(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Records) != 3 {
		t.Errorf("records = %d, want 3", len(prof.Records))
	}
	// Scenario order survives the fan-out.
	for i, want := range []string{"ok-0", "boom", "ok-1"} {
		if prof.Records[i].ScenarioID != want {
			t.Errorf("record %d = %s, want %s", i, prof.Records[i].ScenarioID, want)
		}
	}
}

func TestRunContextBaselineCheck(t *testing.T) {
	// A target whose functional test always fails must be rejected before
	// any injection when the baseline check is requested.
	sys := &fakeSystem{}
	tgt := target(sys)
	tgt.Tests = append(tgt.Tests, suts.Test{
		Name: "always-fails",
		Run:  func() error { return errors.New("nope") },
	})
	c := &Campaign{Target: tgt, Generator: &typo.Plugin{}}
	prof, err := c.RunContext(context.Background(), WithBaselineCheck())
	if err == nil || !strings.Contains(err.Error(), "always-fails") {
		t.Errorf("err = %v, want baseline failure", err)
	}
	if len(prof.Records) != 0 {
		t.Errorf("records = %d, want 0 (no injection after failed baseline)", len(prof.Records))
	}

	// A healthy target passes the baseline and runs normally.
	c2 := &Campaign{Target: target(&fakeSystem{}), Generator: &typo.Plugin{}}
	if _, err := c2.RunContext(context.Background(), WithBaselineCheck()); err != nil {
		t.Errorf("healthy baseline: %v", err)
	}
}
