package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/cpath"
	"conferr/internal/formats"
	"conferr/internal/formats/apacheconf"
	"conferr/internal/formats/ini"
	"conferr/internal/formats/jsonconf"
	"conferr/internal/formats/kv"
	"conferr/internal/formats/nginxconf"
	"conferr/internal/formats/tinydns"
	"conferr/internal/formats/xmlconf"
	"conferr/internal/formats/yamlconf"
	"conferr/internal/formats/zonefile"
	"conferr/internal/plugins/typo"
	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/suts"
	"conferr/internal/template"
	"conferr/internal/view"
)

// digestSystem rejects every configuration with a startup error carrying a
// digest of the exact bytes it was handed. Each profile record's detail
// therefore fingerprints the serialized configuration of that experiment:
// equal profiles mean byte-identical mutated configurations, which is the
// equivalence the fast path owes the reference path.
type digestSystem struct{}

func (digestSystem) Name() string { return "digest" }

func (digestSystem) DefaultConfig() suts.Files {
	return suts.Files{
		"a.conf": []byte("alpha = 1\nbravo = two words\n# comment\n"),
		"b.conf": []byte("charlie = 3\ndelta = 4\n"),
		"c.conf": []byte("echo = 5\nfoxtrot = 6\ngolf = 7\n"),
		// One file per remaining registered codec, so the equivalence
		// contract covers the whole format matrix. d.nginx and e.json add
		// the recursive shapes (directives inside nested sections and
		// arrays), exercising dirty-file tracking and per-file
		// re-serialization on trees the seed's flat formats never built.
		"d.nginx": []byte("events {\n    worker_connections 64;\n}\nhttp {\n    server {\n        listen 8080;\n        location / {\n            root /srv;\n        }\n    }\n}\n"),
		"e.json":  []byte("{\n  \"name\": \"digest\",\n  \"nested\": {\n    \"flag\": true\n  },\n  \"list\": [\n    1,\n    2\n  ]\n}\n"),
		"f.ini":   []byte("[server]\nhotel = 8\n[client]\nindia = 9\n"),
		"g.httpd": []byte("Listen 1234\n<Files x>\nJuliet 10\n</Files>\n"),
		"h.zone":  []byte("$TTL 3600\nexample.com.\tIN\tNS\tns.example.com.\nwww\tA\t192.0.2.1\n"),
		"i.tiny":  []byte("# tinydns\n=www.example.com:192.0.2.1:86400\n"),
		"j.xml":   []byte("<config>\n  <kilo>11</kilo>\n</config>\n"),
		"k.yaml":  []byte("lima: 12\nmike:\n  november: 13\n"),
		"l.raw":   []byte("opaque passthrough bytes\n"),
	}
}

func (digestSystem) Start(files suts.Files) error {
	h := fnv.New64a()
	for _, name := range sortedNames(files) {
		fmt.Fprintf(h, "%s=%q;", name, files[name])
	}
	return &suts.StartupError{System: "digest", Msg: fmt.Sprintf("digest %x", h.Sum64())}
}

func (digestSystem) Stop() error { return nil }

func digestTarget() *Target {
	return &Target{
		System: digestSystem{},
		Formats: map[string]formats.Format{
			"a.conf":  kv.Format{},
			"b.conf":  kv.Format{},
			"c.conf":  kv.Format{},
			"d.nginx": nginxconf.Format{},
			"e.json":  jsonconf.Format{},
			"f.ini":   ini.Format{},
			"g.httpd": apacheconf.Format{},
			"h.zone":  zonefile.Format{},
			"i.tiny":  tinydns.Format{},
			"j.xml":   xmlconf.Format{},
			"k.yaml":  yamlconf.Format{},
			"l.raw":   formats.Raw{},
			// Registered so scenarios can introduce it; *.zzz stays
			// unregistered to exercise the no-format outcome.
			"extra.conf": kv.Format{},
		},
	}
}

// refProfile runs the campaign through the reference pipeline: full view
// clone, full Backward, full re-serialization, sequentially.
func refProfile(t *testing.T, c *Campaign) *profile.Profile {
	t.Helper()
	fl, err := c.generate()
	if err != nil {
		t.Fatal(err)
	}
	prof := &profile.Profile{System: c.Target.System.Name(), Generator: c.Generator.Name()}
	for _, sc := range fl.scens {
		rec, err := runOneReference(c.Target, sc, fl.view, fl.viewSet, fl.sysSet)
		prof.Add(rec)
		if err != nil && !c.KeepGoing {
			t.Fatalf("reference scenario %s: %v", sc.ID, err)
		}
	}
	return prof
}

// mixGen exercises the fast path's corner cases on the struct view: a
// single-file mutation, a cross-set no-op read, a scenario that introduces
// a new file with a registered format, one that introduces a file without
// a format, one that replaces a whole tree via Put, and a Walk-based
// whole-set rewrite (the conservative all-dirty fallback).
type mixGen struct{}

func (mixGen) Name() string    { return "mix" }
func (mixGen) View() view.View { return view.StructView{} }
func (mixGen) Generate(s *confnode.Set) ([]scenario.Scenario, error) {
	var out []scenario.Scenario
	add := func(id string, apply func(*confnode.Set) error) {
		out = append(out, scenario.Scenario{ID: id, Class: "mix", Description: id, Apply: apply})
	}
	tpl := &template.DeleteTemplate{Targets: cpath.MustCompile("//directive")}
	dels, err := tpl.Generate(s)
	if err != nil {
		return nil, err
	}
	out = append(out, dels...)
	add("mutate-one", func(s *confnode.Set) error {
		s.Get("b.conf").Child(0).Value = "333"
		return nil
	})
	add("mutate-nginx-nested", func(s *confnode.Set) error {
		// Reach through http > server > location and rewrite a leaf, so
		// only d.nginx is re-serialized and its nested sections survive
		// the incremental fold.
		loc := s.Get("d.nginx").ChildByName("http").ChildByName("server").ChildByName("location")
		loc.ChildByName("root").Value = "/data"
		return nil
	})
	add("mutate-json-array", func(s *confnode.Set) error {
		list := s.Get("e.json").ChildByName("list")
		list.Child(1).Value = "22"
		return nil
	})
	add("read-only", func(s *confnode.Set) error {
		_ = s.Get("a.conf")
		return nil
	})
	add("new-file-known-format", func(s *confnode.Set) error {
		doc := confnode.New(confnode.KindDocument, "extra.conf")
		doc.Append(confnode.NewValued(confnode.KindDirective, "hotel", "8"))
		s.Put("extra.conf", doc)
		return nil
	})
	add("new-file-no-format", func(s *confnode.Set) error {
		s.Put("mystery.zzz", confnode.New(confnode.KindDocument, "mystery.zzz"))
		return nil
	})
	add("replace-tree", func(s *confnode.Set) error {
		doc := confnode.New(confnode.KindDocument, "c.conf")
		doc.Append(confnode.NewValued(confnode.KindDirective, "echo", "50"))
		s.Put("c.conf", doc)
		return nil
	})
	add("walk-rewrite", func(s *confnode.Set) error {
		s.Walk(func(_ string, root *confnode.Node) {
			for _, d := range root.FindKind(confnode.KindDirective) {
				d.Value += "!"
			}
		})
		return nil
	})
	return out, nil
}

// TestFastPathMatchesReference is the pipeline's equivalence contract:
// for word-view and struct-view faultloads over a multi-file target, the
// incremental engine must produce profiles record-for-record identical to
// the reference full-clone engine at every worker count.
func TestFastPathMatchesReference(t *testing.T) {
	gens := map[string]Generator{
		"typo-wordview":  &typo.Plugin{},
		"mix-structview": mixGen{},
	}
	for label, gen := range gens {
		t.Run(label, func(t *testing.T) {
			want := refProfile(t, &Campaign{Target: digestTarget(), Generator: gen})
			if len(want.Records) == 0 {
				t.Fatal("empty reference faultload")
			}
			for _, workers := range []int{1, 4, 8} {
				c := &Campaign{Target: digestTarget(), Generator: gen}
				opts := []RunOption{}
				if workers > 1 {
					opts = append(opts,
						WithParallelism(workers),
						WithTargetFactory(func() (*Target, error) { return digestTarget(), nil }))
				}
				got, err := c.RunContext(context.Background(), opts...)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if canonical(got) != canonical(want) {
					t.Errorf("workers=%d: fast path diverged from reference\ngot:\n%s\nwant:\n%s",
						workers, canonical(got), canonical(want))
				}
			}
		})
	}
}

// TestStreamingMatchesMaterialized is the streaming pipeline's equivalence
// contract on the full fixture: for word-view and struct-view faultloads
// over the multi-codec digest target, the lazy streaming runner (pull from
// the generator, sequence-numbered reassembly, sink flush) must produce
// profiles record-for-record identical to the materialized RunContext path
// — and hence to the reference full-clone engine — at workers 1 and 4.
func TestStreamingMatchesMaterialized(t *testing.T) {
	gens := map[string]func() Generator{
		"typo-wordview":  func() Generator { return &typo.Plugin{} },
		"mix-structview": func() Generator { return mixGen{} },
	}
	for label, mkGen := range gens {
		t.Run(label, func(t *testing.T) {
			ref := refProfile(t, &Campaign{Target: digestTarget(), Generator: mkGen()})
			materialized, err := (&Campaign{Target: digestTarget(), Generator: mkGen()}).
				RunContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if canonical(materialized) != canonical(ref) {
				t.Fatal("materialized path diverged from reference")
			}
			for _, workers := range []int{1, 4, 8} {
				prof := &profile.Profile{System: materialized.System, Generator: materialized.Generator}
				c := &Campaign{Target: digestTarget(), Generator: mkGen()}
				opts := []RunOption{WithParallelism(workers),
					WithTargetFactory(func() (*Target, error) { return digestTarget(), nil })}
				n, err := c.RunStream(context.Background(), &profile.MemorySink{Profile: prof}, opts...)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if n != len(materialized.Records) {
					t.Errorf("workers=%d: streamed %d records, want %d", workers, n, len(materialized.Records))
				}
				if canonical(prof) != canonical(materialized) {
					t.Errorf("workers=%d: streaming path diverged from materialized\ngot:\n%s\nwant:\n%s",
						workers, canonical(prof), canonical(materialized))
				}
			}
		})
	}
}

// TestFastPathEnabledForBuiltinViews guards the plumbing: the built-in
// views must actually take the incremental path (a silently disabled fast
// path would pass every equivalence test while optimizing nothing).
func TestFastPathEnabledForBuiltinViews(t *testing.T) {
	for label, gen := range map[string]Generator{
		"word":   &typo.Plugin{},
		"struct": mixGen{},
	} {
		c := &Campaign{Target: digestTarget(), Generator: gen}
		fl, err := c.generate()
		if err != nil {
			t.Fatal(err)
		}
		if fl.inc == nil || fl.baseBytes == nil {
			t.Errorf("%s view: fast path not enabled", label)
		}
		if len(fl.baseBytes) != fl.sysSet.Len() {
			t.Errorf("%s view: baseBytes covers %d files, want %d",
				label, len(fl.baseBytes), fl.sysSet.Len())
		}
	}
}
