package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/cpath"
	"conferr/internal/formats"
	"conferr/internal/formats/apacheconf"
	"conferr/internal/formats/ini"
	"conferr/internal/formats/jsonconf"
	"conferr/internal/formats/kv"
	"conferr/internal/formats/nginxconf"
	"conferr/internal/formats/tinydns"
	"conferr/internal/formats/xmlconf"
	"conferr/internal/formats/yamlconf"
	"conferr/internal/formats/zonefile"
	"conferr/internal/plugins/typo"
	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/sutpool"
	"conferr/internal/suts"
	"conferr/internal/template"
	"conferr/internal/view"
)

// digestSystem rejects every configuration with a startup error carrying a
// digest of the exact bytes it was handed. Each profile record's detail
// therefore fingerprints the serialized configuration of that experiment:
// equal profiles mean byte-identical mutated configurations, which is the
// equivalence the fast path owes the reference path.
type digestSystem struct{}

func (digestSystem) Name() string { return "digest" }

func (digestSystem) DefaultConfig() suts.Files {
	return suts.Files{
		"a.conf": []byte("alpha = 1\nbravo = two words\n# comment\n"),
		"b.conf": []byte("charlie = 3\ndelta = 4\n"),
		"c.conf": []byte("echo = 5\nfoxtrot = 6\ngolf = 7\n"),
		// One file per remaining registered codec, so the equivalence
		// contract covers the whole format matrix. d.nginx and e.json add
		// the recursive shapes (directives inside nested sections and
		// arrays), exercising dirty-file tracking and per-file
		// re-serialization on trees the seed's flat formats never built.
		"d.nginx": []byte("events {\n    worker_connections 64;\n}\nhttp {\n    server {\n        listen 8080;\n        location / {\n            root /srv;\n        }\n    }\n}\n"),
		"e.json":  []byte("{\n  \"name\": \"digest\",\n  \"nested\": {\n    \"flag\": true\n  },\n  \"list\": [\n    1,\n    2\n  ]\n}\n"),
		"f.ini":   []byte("[server]\nhotel = 8\n[client]\nindia = 9\n"),
		"g.httpd": []byte("Listen 1234\n<Files x>\nJuliet 10\n</Files>\n"),
		"h.zone":  []byte("$TTL 3600\nexample.com.\tIN\tNS\tns.example.com.\nwww\tA\t192.0.2.1\n"),
		"i.tiny":  []byte("# tinydns\n=www.example.com:192.0.2.1:86400\n"),
		"j.xml":   []byte("<config>\n  <kilo>11</kilo>\n</config>\n"),
		"k.yaml":  []byte("lima: 12\nmike:\n  november: 13\n"),
		"l.raw":   []byte("opaque passthrough bytes\n"),
	}
}

func (digestSystem) Start(files suts.Files) error {
	h := fnv.New64a()
	for _, name := range sortedNames(files) {
		fmt.Fprintf(h, "%s=%q;", name, files[name])
	}
	return &suts.StartupError{System: "digest", Msg: fmt.Sprintf("digest %x", h.Sum64())}
}

func (digestSystem) Stop() error { return nil }

func digestTarget() *Target {
	return &Target{
		System: digestSystem{},
		Formats: map[string]formats.Format{
			"a.conf":  kv.Format{},
			"b.conf":  kv.Format{},
			"c.conf":  kv.Format{},
			"d.nginx": nginxconf.Format{},
			"e.json":  jsonconf.Format{},
			"f.ini":   ini.Format{},
			"g.httpd": apacheconf.Format{},
			"h.zone":  zonefile.Format{},
			"i.tiny":  tinydns.Format{},
			"j.xml":   xmlconf.Format{},
			"k.yaml":  yamlconf.Format{},
			"l.raw":   formats.Raw{},
			// Registered so scenarios can introduce it; *.zzz stays
			// unregistered to exercise the no-format outcome.
			"extra.conf": kv.Format{},
		},
	}
}

// refProfile runs the campaign through the reference pipeline: full view
// clone, full Backward, full re-serialization, sequentially.
func refProfile(t *testing.T, c *Campaign) *profile.Profile {
	t.Helper()
	fl, err := c.generate()
	if err != nil {
		t.Fatal(err)
	}
	prof := &profile.Profile{System: c.Target.System.Name(), Generator: c.Generator.Name()}
	for _, sc := range fl.scens {
		rec, err := runOneReference(c.Target, sc, fl.view, fl.viewSet, fl.sysSet)
		prof.Add(rec)
		if err != nil && !c.KeepGoing {
			t.Fatalf("reference scenario %s: %v", sc.ID, err)
		}
	}
	return prof
}

// mixGen exercises the fast path's corner cases on the struct view: a
// single-file mutation, a cross-set no-op read, a scenario that introduces
// a new file with a registered format, one that introduces a file without
// a format, one that replaces a whole tree via Put, and a Walk-based
// whole-set rewrite (the conservative all-dirty fallback).
type mixGen struct{}

func (mixGen) Name() string    { return "mix" }
func (mixGen) View() view.View { return view.StructView{} }
func (mixGen) Generate(s *confnode.Set) ([]scenario.Scenario, error) {
	var out []scenario.Scenario
	add := func(id string, apply func(*confnode.Set) error) {
		out = append(out, scenario.Scenario{ID: id, Class: "mix", Description: id, Apply: apply})
	}
	tpl := &template.DeleteTemplate{Targets: cpath.MustCompile("//directive")}
	dels, err := tpl.Generate(s)
	if err != nil {
		return nil, err
	}
	out = append(out, dels...)
	add("mutate-one", func(s *confnode.Set) error {
		s.Get("b.conf").Child(0).Value = "333"
		return nil
	})
	add("mutate-nginx-nested", func(s *confnode.Set) error {
		// Reach through http > server > location and rewrite a leaf, so
		// only d.nginx is re-serialized and its nested sections survive
		// the incremental fold.
		loc := s.Get("d.nginx").ChildByName("http").ChildByName("server").ChildByName("location")
		loc.ChildByName("root").Value = "/data"
		return nil
	})
	add("mutate-json-array", func(s *confnode.Set) error {
		list := s.Get("e.json").ChildByName("list")
		list.Child(1).Value = "22"
		return nil
	})
	add("read-only", func(s *confnode.Set) error {
		_ = s.Get("a.conf")
		return nil
	})
	add("new-file-known-format", func(s *confnode.Set) error {
		doc := confnode.New(confnode.KindDocument, "extra.conf")
		doc.Append(confnode.NewValued(confnode.KindDirective, "hotel", "8"))
		s.Put("extra.conf", doc)
		return nil
	})
	add("new-file-no-format", func(s *confnode.Set) error {
		s.Put("mystery.zzz", confnode.New(confnode.KindDocument, "mystery.zzz"))
		return nil
	})
	add("replace-tree", func(s *confnode.Set) error {
		doc := confnode.New(confnode.KindDocument, "c.conf")
		doc.Append(confnode.NewValued(confnode.KindDirective, "echo", "50"))
		s.Put("c.conf", doc)
		return nil
	})
	add("walk-rewrite", func(s *confnode.Set) error {
		s.Walk(func(_ string, root *confnode.Node) {
			for _, d := range root.FindKind(confnode.KindDirective) {
				d.Value += "!"
			}
		})
		return nil
	})
	return out, nil
}

// TestFastPathMatchesReference is the pipeline's equivalence contract:
// for word-view and struct-view faultloads over a multi-file target, the
// incremental engine must produce profiles record-for-record identical to
// the reference full-clone engine at every worker count.
func TestFastPathMatchesReference(t *testing.T) {
	gens := map[string]Generator{
		"typo-wordview":  &typo.Plugin{},
		"mix-structview": mixGen{},
	}
	for label, gen := range gens {
		t.Run(label, func(t *testing.T) {
			want := refProfile(t, &Campaign{Target: digestTarget(), Generator: gen})
			if len(want.Records) == 0 {
				t.Fatal("empty reference faultload")
			}
			for _, workers := range []int{1, 4, 8} {
				c := &Campaign{Target: digestTarget(), Generator: gen}
				opts := []RunOption{}
				if workers > 1 {
					opts = append(opts,
						WithParallelism(workers),
						WithTargetFactory(func() (*Target, error) { return digestTarget(), nil }))
				}
				got, err := c.RunContext(context.Background(), opts...)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if canonical(got) != canonical(want) {
					t.Errorf("workers=%d: fast path diverged from reference\ngot:\n%s\nwant:\n%s",
						workers, canonical(got), canonical(want))
				}
			}
		})
	}
}

// TestStreamingMatchesMaterialized is the streaming pipeline's equivalence
// contract on the full fixture: for word-view and struct-view faultloads
// over the multi-codec digest target, the lazy streaming runner (pull from
// the generator, sequence-numbered reassembly, sink flush) must produce
// profiles record-for-record identical to the materialized RunContext path
// — and hence to the reference full-clone engine — at workers 1 and 4.
func TestStreamingMatchesMaterialized(t *testing.T) {
	gens := map[string]func() Generator{
		"typo-wordview":  func() Generator { return &typo.Plugin{} },
		"mix-structview": func() Generator { return mixGen{} },
	}
	for label, mkGen := range gens {
		t.Run(label, func(t *testing.T) {
			ref := refProfile(t, &Campaign{Target: digestTarget(), Generator: mkGen()})
			materialized, err := (&Campaign{Target: digestTarget(), Generator: mkGen()}).
				RunContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if canonical(materialized) != canonical(ref) {
				t.Fatal("materialized path diverged from reference")
			}
			for _, workers := range []int{1, 4, 8} {
				prof := &profile.Profile{System: materialized.System, Generator: materialized.Generator}
				c := &Campaign{Target: digestTarget(), Generator: mkGen()}
				opts := []RunOption{WithParallelism(workers),
					WithTargetFactory(func() (*Target, error) { return digestTarget(), nil })}
				n, err := c.RunStream(context.Background(), &profile.MemorySink{Profile: prof}, opts...)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if n != len(materialized.Records) {
					t.Errorf("workers=%d: streamed %d records, want %d", workers, n, len(materialized.Records))
				}
				if canonical(prof) != canonical(materialized) {
					t.Errorf("workers=%d: streaming path diverged from materialized\ngot:\n%s\nwant:\n%s",
						workers, canonical(prof), canonical(materialized))
				}
			}
		})
	}
}

// warmDigestSystem is digestSystem's lifecycle-capable sibling: a SUT
// implementing Reloader, Validator and HealthChecker whose verdict on a
// configuration is a pure function of the serialized bytes. Three
// digest residue classes partition the faultload:
//
//	h%3 == 0            rejected — Start, Reload and Validate all return
//	                    a byte-identical StartupError carrying the digest
//	h%3 != 0, h%5 == 0  accepted by Start, but a Reload WEDGES the
//	                    instance (non-startup error), forcing the
//	                    quarantine + cold-restart recovery path
//	otherwise           accepted; the functional probe then fails with
//	                    the digest of the live configuration
//
// Every record therefore fingerprints the configuration it ran on, and
// the wedge class proves warm-mode recovery lands on the same outcome a
// cold start would.
type warmDigestSystem struct {
	running bool
	cur     uint64 // digest of the live configuration
}

func filesDigest(files suts.Files) uint64 {
	h := fnv.New64a()
	for _, name := range sortedNames(files) {
		fmt.Fprintf(h, "%s=%q;", name, files[name])
	}
	return h.Sum64()
}

func (s *warmDigestSystem) Name() string { return "warm-digest" }

func (s *warmDigestSystem) DefaultConfig() suts.Files { return digestSystem{}.DefaultConfig() }

func (s *warmDigestSystem) rejectErr(h uint64) error {
	return &suts.StartupError{System: "warm-digest", Msg: fmt.Sprintf("digest %x", h)}
}

func (s *warmDigestSystem) Start(files suts.Files) error {
	h := filesDigest(files)
	if h%3 == 0 {
		return s.rejectErr(h)
	}
	s.running = true
	s.cur = h
	return nil
}

func (s *warmDigestSystem) Reload(files suts.Files) error {
	if !s.running {
		return errors.New("warm-digest: reload on a stopped instance")
	}
	h := filesDigest(files)
	if h%3 == 0 {
		// Rejected: previous configuration stays live, error wording
		// byte-identical to Start's.
		return s.rejectErr(h)
	}
	if h%5 == 0 {
		// Wedged: the instance dies without applying the new config.
		s.running = false
		s.cur = 0
		return fmt.Errorf("warm-digest: reload wedged on %x", h)
	}
	s.cur = h
	return nil
}

func (s *warmDigestSystem) Validate(files suts.Files) error {
	if h := filesDigest(files); h%3 == 0 {
		return s.rejectErr(h)
	}
	return nil
}

func (s *warmDigestSystem) Stop() error {
	s.running = false
	s.cur = 0
	return nil
}

func (s *warmDigestSystem) Health() error {
	if !s.running {
		return errors.New("warm-digest: not running")
	}
	return nil
}

// warmDigestTarget pairs the warm system with a functional probe that
// fails with the digest of whatever configuration is actually serving —
// so a reload that silently kept stale state would diverge from cold.
func warmDigestTarget() *Target {
	sys := &warmDigestSystem{}
	t := digestTarget()
	t.System = sys
	t.Tests = []suts.Test{{Name: "digest-probe", Run: func() error {
		return fmt.Errorf("probe digest %x", sys.cur)
	}}}
	return t
}

// TestReloadLifecycleMatchesCold is the sutpool subsystem's equivalence
// contract: a campaign driven through warm reloads — including rejected
// reloads and wedge-quarantine-cold-restart recoveries — must produce a
// profile record-for-record identical to the cold start/stop-per-
// experiment engine at every worker count.
func TestReloadLifecycleMatchesCold(t *testing.T) {
	for label, gen := range map[string]Generator{
		"typo-wordview":  &typo.Plugin{},
		"mix-structview": mixGen{},
	} {
		t.Run(label, func(t *testing.T) {
			want, err := (&Campaign{Target: warmDigestTarget(), Generator: gen}).
				RunContext(context.Background())
			if err != nil {
				t.Fatalf("cold reference: %v", err)
			}
			if len(want.Records) == 0 {
				t.Fatal("empty cold reference faultload")
			}
			for _, workers := range []int{1, 4, 8} {
				counters := &sutpool.Counters{}
				c := &Campaign{Target: warmDigestTarget(), Generator: gen}
				opts := []RunOption{
					WithLifecycle(sutpool.Reload),
					WithLifecycleCounters(counters),
				}
				if workers > 1 {
					opts = append(opts,
						WithParallelism(workers),
						WithTargetFactory(func() (*Target, error) { return warmDigestTarget(), nil }))
				}
				got, err := c.RunContext(context.Background(), opts...)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if canonical(got) != canonical(want) {
					t.Errorf("workers=%d: reload lifecycle diverged from cold\ngot:\n%s\nwant:\n%s",
						workers, canonical(got), canonical(want))
				}
				snap := counters.Snapshot()
				if snap.Reloads == 0 {
					t.Errorf("workers=%d: no reloads — warm path never taken (%s)", workers, snap)
				}
				if snap.Restarts == 0 {
					t.Errorf("workers=%d: no restarts — wedge recovery never exercised (%s)", workers, snap)
				}
				if snap.Restarts > snap.ColdStarts {
					t.Errorf("workers=%d: implausible counters %s", workers, snap)
				}
			}
		})
	}
}

// TestValidateLifecycleSemantics pins the documented divergence of
// validate-only mode: startup-time rejections are detected with
// byte-identical detail, everything the SUT would have accepted becomes
// Ignored (functional probes are skipped — nothing listens), and the
// pre-start pipeline outcomes are untouched.
func TestValidateLifecycleSemantics(t *testing.T) {
	gen := &typo.Plugin{}
	cold, err := (&Campaign{Target: warmDigestTarget(), Generator: gen}).
		RunContext(context.Background())
	if err != nil {
		t.Fatalf("cold reference: %v", err)
	}
	counters := &sutpool.Counters{}
	got, err := (&Campaign{Target: warmDigestTarget(), Generator: gen}).
		RunContext(context.Background(),
			WithLifecycle(sutpool.Validate), WithLifecycleCounters(counters))
	if err != nil {
		t.Fatalf("validate run: %v", err)
	}
	if len(got.Records) != len(cold.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(cold.Records))
	}
	sawDetected, sawIgnored := false, false
	for i, r := range got.Records {
		cr := cold.Records[i]
		if r.ScenarioID != cr.ScenarioID {
			t.Fatalf("record %d: scenario %q, want %q", i, r.ScenarioID, cr.ScenarioID)
		}
		switch cr.Outcome {
		case profile.DetectedAtStartup:
			sawDetected = true
			if r.Outcome != profile.DetectedAtStartup || r.Detail != cr.Detail {
				t.Errorf("%s: validate = (%v, %q), want cold's (%v, %q)",
					r.ScenarioID, r.Outcome, r.Detail, cr.Outcome, cr.Detail)
			}
		case profile.DetectedByTest:
			sawIgnored = true
			if r.Outcome != profile.Ignored {
				t.Errorf("%s: validate outcome = %v, want ignored (probes skipped)",
					r.ScenarioID, r.Outcome)
			}
		default:
			if r.Outcome != cr.Outcome {
				t.Errorf("%s: validate outcome = %v, want cold's %v",
					r.ScenarioID, r.Outcome, cr.Outcome)
			}
		}
	}
	if !sawDetected || !sawIgnored {
		t.Fatalf("faultload did not cover both classes (detected=%v ignored=%v)",
			sawDetected, sawIgnored)
	}
	snap := counters.Snapshot()
	if snap.Validates == 0 {
		t.Errorf("no validates counted (%s)", snap)
	}
	if snap.ColdStarts != 0 || snap.Reloads != 0 {
		t.Errorf("validate mode started the SUT (%s)", snap)
	}
}

// TestFastPathEnabledForBuiltinViews guards the plumbing: the built-in
// views must actually take the incremental path (a silently disabled fast
// path would pass every equivalence test while optimizing nothing).
func TestFastPathEnabledForBuiltinViews(t *testing.T) {
	for label, gen := range map[string]Generator{
		"word":   &typo.Plugin{},
		"struct": mixGen{},
	} {
		c := &Campaign{Target: digestTarget(), Generator: gen}
		fl, err := c.generate()
		if err != nil {
			t.Fatal(err)
		}
		if fl.inc == nil || fl.baseBytes == nil {
			t.Errorf("%s view: fast path not enabled", label)
		}
		if len(fl.baseBytes) != fl.sysSet.Len() {
			t.Errorf("%s view: baseBytes covers %d files, want %d",
				label, len(fl.baseBytes), fl.sysSet.Len())
		}
	}
}
