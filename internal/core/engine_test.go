package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/cpath"
	"conferr/internal/formats"
	"conferr/internal/formats/kv"
	"conferr/internal/plugins/typo"
	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/suts"
	"conferr/internal/template"
	"conferr/internal/view"
)

// fakeSystem is a minimal in-process SUT: its config format is kv; it
// requires directive "port" to equal "1234" to start; the functional test
// fails unless directive "greet" equals "hello".
type fakeSystem struct {
	started   int
	stopped   int
	lastGreet string
	failStart error // non-startup error injected by tests
}

func (f *fakeSystem) Name() string { return "fake" }

func (f *fakeSystem) DefaultConfig() suts.Files {
	return suts.Files{"fake.conf": []byte("port = 1234\ngreet = hello\n")}
}

func (f *fakeSystem) Start(files suts.Files) error {
	if f.failStart != nil {
		return f.failStart
	}
	f.started++
	conf := string(files["fake.conf"])
	f.lastGreet = ""
	port := ""
	for _, line := range strings.Split(conf, "\n") {
		fields := strings.SplitN(line, "=", 2)
		if len(fields) != 2 {
			continue
		}
		k, v := strings.TrimSpace(fields[0]), strings.TrimSpace(fields[1])
		switch k {
		case "port":
			port = v
		case "greet":
			f.lastGreet = v
		default:
			return &suts.StartupError{System: "fake", Msg: "unknown directive " + k}
		}
	}
	if port != "1234" {
		return &suts.StartupError{System: "fake", Msg: "bad port " + port}
	}
	return nil
}

func (f *fakeSystem) Stop() error {
	f.stopped++
	return nil
}

func target(sys suts.System) *Target {
	return &Target{
		System:  sys,
		Formats: map[string]formats.Format{"fake.conf": kv.Format{}},
		Tests: []suts.Test{{
			Name: "greeting",
			Run: func() error {
				fs, ok := sys.(*fakeSystem)
				if !ok {
					return errors.New("wrong system type")
				}
				if fs.lastGreet != "hello" {
					return fmt.Errorf("greet = %q", fs.lastGreet)
				}
				return nil
			},
		}},
	}
}

func TestBaseline(t *testing.T) {
	sys := &fakeSystem{}
	c := &Campaign{Target: target(sys), Generator: &typo.Plugin{}}
	if err := c.Baseline(); err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	if sys.started != 1 || sys.stopped != 1 {
		t.Errorf("started=%d stopped=%d", sys.started, sys.stopped)
	}
}

func TestRunTypoCampaign(t *testing.T) {
	sys := &fakeSystem{}
	c := &Campaign{Target: target(sys), Generator: &typo.Plugin{}}
	prof, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if prof.System != "fake" || prof.Generator != "typo" {
		t.Errorf("profile identity = %q/%q", prof.System, prof.Generator)
	}
	counts := prof.CountByOutcome()
	// Typos in names ("port"->"prt", "greet"->"gret") are unknown
	// directives -> startup detection. Typos in port's value -> bad port.
	// Typos in greet's value -> functional test detection.
	if counts[profile.DetectedAtStartup] == 0 {
		t.Error("expected startup detections")
	}
	if counts[profile.DetectedByTest] == 0 {
		t.Error("expected test detections")
	}
	if counts[profile.NotApplicable] != 0 {
		t.Errorf("unexpected not-applicable: %v", counts)
	}
	// Start/Stop balanced.
	if sys.started != sys.stopped {
		t.Errorf("started=%d stopped=%d", sys.started, sys.stopped)
	}
	// Every record has an ID and class.
	for _, r := range prof.Records {
		if r.ScenarioID == "" || r.Class == "" {
			t.Errorf("incomplete record %+v", r)
		}
	}
}

func TestRunObserver(t *testing.T) {
	sys := &fakeSystem{}
	var seen int
	c := &Campaign{
		Target:    target(sys),
		Generator: &typo.Plugin{Models: []template.Mutator{typo.Omission{}}},
		Observer:  func(profile.Record) { seen++ },
	}
	prof, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(prof.Records) {
		t.Errorf("observer saw %d, profile has %d", seen, len(prof.Records))
	}
}

// delGen deletes directives on the struct view.
type delGen struct{}

func (delGen) Name() string    { return "del" }
func (delGen) View() view.View { return view.StructView{} }
func (delGen) Generate(s *confnode.Set) ([]scenario.Scenario, error) {
	tpl := &template.DeleteTemplate{Targets: cpath.MustCompile("//directive")}
	return tpl.Generate(s)
}

func TestRunStructuralDeletion(t *testing.T) {
	sys := &fakeSystem{}
	c := &Campaign{Target: target(sys), Generator: delGen{}}
	prof, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Records) != 2 {
		t.Fatalf("records = %d, want 2 (one per directive)", len(prof.Records))
	}
	// Deleting port -> startup failure; deleting greet -> test failure.
	byID := map[string]profile.Outcome{}
	for _, r := range prof.Records {
		byID[r.Description] = r.Outcome
	}
	found := map[profile.Outcome]bool{}
	for _, o := range byID {
		found[o] = true
	}
	if !found[profile.DetectedAtStartup] || !found[profile.DetectedByTest] {
		t.Errorf("outcomes = %v", byID)
	}
}

// badGen returns scenarios that fail in various ways.
type badGen struct {
	scens []scenario.Scenario
}

func (g badGen) Name() string    { return "bad" }
func (g badGen) View() view.View { return view.StructView{} }
func (g badGen) Generate(*confnode.Set) ([]scenario.Scenario, error) {
	return g.scens, nil
}

func TestRunNotApplicableScenario(t *testing.T) {
	sys := &fakeSystem{}
	g := badGen{scens: []scenario.Scenario{{
		ID: "na", Class: "c",
		Apply: func(*confnode.Set) error {
			return fmt.Errorf("gone: %w", scenario.ErrNotApplicable)
		},
	}}}
	c := &Campaign{Target: target(sys), Generator: g}
	prof, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if prof.Records[0].Outcome != profile.NotApplicable {
		t.Errorf("outcome = %v", prof.Records[0].Outcome)
	}
}

func TestRunInfrastructureErrorAborts(t *testing.T) {
	sys := &fakeSystem{}
	g := badGen{scens: []scenario.Scenario{
		{ID: "boom", Class: "c", Apply: func(*confnode.Set) error { return errors.New("boom") }},
		{ID: "after", Class: "c", Apply: func(*confnode.Set) error { return nil }},
	}}
	c := &Campaign{Target: target(sys), Generator: g}
	prof, err := c.Run()
	if err == nil {
		t.Fatal("expected campaign abort")
	}
	if len(prof.Records) != 1 {
		t.Errorf("records = %d, want 1 (abort after first)", len(prof.Records))
	}
}

func TestRunKeepGoing(t *testing.T) {
	sys := &fakeSystem{}
	g := badGen{scens: []scenario.Scenario{
		{ID: "boom", Class: "c", Apply: func(*confnode.Set) error { return errors.New("boom") }},
		{ID: "after", Class: "c", Apply: func(*confnode.Set) error { return nil }},
	}}
	c := &Campaign{Target: target(sys), Generator: g, KeepGoing: true}
	prof, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Records) != 2 {
		t.Errorf("records = %d, want 2", len(prof.Records))
	}
}

func TestRunNonStartupErrorIsInfrastructure(t *testing.T) {
	sys := &fakeSystem{failStart: errors.New("address already in use")}
	g := badGen{scens: []scenario.Scenario{
		{ID: "s", Class: "c", Apply: func(*confnode.Set) error { return nil }},
	}}
	c := &Campaign{Target: target(sys), Generator: g}
	_, err := c.Run()
	if err == nil {
		t.Fatal("non-startup error should abort the campaign")
	}
	if !strings.Contains(err.Error(), "address already in use") {
		t.Errorf("err = %v", err)
	}
}

// TestRunScenarioAddsFileWithoutFormat: a scenario that introduces a file
// no format is registered for used to deref a nil formats.Format in
// serialization; it must instead be recorded as NotExpressible and the
// campaign must carry on.
func TestRunScenarioAddsFileWithoutFormat(t *testing.T) {
	sys := &fakeSystem{}
	g := badGen{scens: []scenario.Scenario{
		{ID: "orphan-file", Class: "c", Apply: func(s *confnode.Set) error {
			s.Put("orphan.xyz", confnode.New(confnode.KindDocument, "orphan.xyz"))
			return nil
		}},
		{ID: "after", Class: "c", Apply: func(*confnode.Set) error { return nil }},
	}}
	c := &Campaign{Target: target(sys), Generator: g}
	prof, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(prof.Records))
	}
	r := prof.Records[0]
	if r.Outcome != profile.NotExpressible {
		t.Errorf("outcome = %v, want not-expressible", r.Outcome)
	}
	if !strings.Contains(r.Detail, "no format registered") || !strings.Contains(r.Detail, "orphan.xyz") {
		t.Errorf("detail = %q, want missing-format explanation", r.Detail)
	}
}

func TestRunMissingFormat(t *testing.T) {
	sys := &fakeSystem{}
	c := &Campaign{
		Target:    &Target{System: sys, Formats: map[string]formats.Format{}},
		Generator: &typo.Plugin{},
	}
	if _, err := c.Run(); err == nil || !strings.Contains(err.Error(), "no format registered") {
		t.Errorf("err = %v", err)
	}
}

// notExprView always fails the backward transform.
type notExprView struct{ view.StructView }

func (notExprView) Backward(_, _ *confnode.Set) (*confnode.Set, error) {
	return nil, fmt.Errorf("nope: %w", view.ErrNotExpressible)
}

type notExprGen struct{}

func (notExprGen) Name() string    { return "ne" }
func (notExprGen) View() view.View { return notExprView{} }
func (notExprGen) Generate(s *confnode.Set) ([]scenario.Scenario, error) {
	return []scenario.Scenario{{ID: "x", Class: "c", Apply: func(*confnode.Set) error { return nil }}}, nil
}

func TestRunNotExpressible(t *testing.T) {
	sys := &fakeSystem{}
	c := &Campaign{Target: target(sys), Generator: notExprGen{}}
	prof, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if prof.Records[0].Outcome != profile.NotExpressible {
		t.Errorf("outcome = %v", prof.Records[0].Outcome)
	}
	if sys.started != 0 {
		t.Error("SUT must not start for inexpressible faults")
	}
}

// stopFailSystem fails on Stop after a successful start.
type stopFailSystem struct {
	fakeSystem
}

func (s *stopFailSystem) Stop() error {
	s.stopped++
	return errors.New("stop failed")
}

// rejectStopFailSystem rejects every configuration and then fails to
// stop.
type rejectStopFailSystem struct {
	stopFailSystem
}

func (s *rejectStopFailSystem) Start(suts.Files) error {
	return &suts.StartupError{System: "fake", Msg: "rejected"}
}

// TestRunStopFailureAfterDetectionIsDetail: a failing Stop after the SUT
// already rejected the configuration is cleanup noise, not an
// infrastructure error — the experiment succeeded. It must be recorded in
// the detail and never abort the campaign.
func TestRunStopFailureAfterDetectionIsDetail(t *testing.T) {
	sys := &rejectStopFailSystem{}
	tgt := &Target{
		System:  sys,
		Formats: map[string]formats.Format{"fake.conf": kv.Format{}},
	}
	g := badGen{scens: []scenario.Scenario{
		{ID: "s1", Class: "c", Apply: func(*confnode.Set) error { return nil }},
		{ID: "s2", Class: "c", Apply: func(*confnode.Set) error { return nil }},
	}}
	c := &Campaign{Target: tgt, Generator: g} // KeepGoing defaults to false
	prof, err := c.Run()
	if err != nil {
		t.Fatalf("campaign aborted on post-detection stop failure: %v", err)
	}
	if len(prof.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(prof.Records))
	}
	for _, r := range prof.Records {
		if r.Outcome != profile.DetectedAtStartup {
			t.Errorf("%s outcome = %v, want detected-at-startup", r.ScenarioID, r.Outcome)
		}
		if !strings.Contains(r.Detail, "stop after rejected start") {
			t.Errorf("%s detail = %q, want the stop failure recorded", r.ScenarioID, r.Detail)
		}
	}
}

// TestRunStopFailureIsDetail: a failing Stop after an
// otherwise-successful experiment is cleanup noise like its
// post-rejection sibling above — the campaign keeps going and the
// failure lands in the record's detail, not in an abort.
func TestRunStopFailureIsDetail(t *testing.T) {
	sys := &stopFailSystem{}
	tgt := &Target{
		System:  sys,
		Formats: map[string]formats.Format{"fake.conf": kv.Format{}},
	}
	g := badGen{scens: []scenario.Scenario{
		{ID: "s1", Class: "c", Apply: func(*confnode.Set) error { return nil }},
		{ID: "s2", Class: "c", Apply: func(*confnode.Set) error { return nil }},
	}}
	c := &Campaign{Target: tgt, Generator: g} // KeepGoing defaults to false
	prof, err := c.Run()
	if err != nil {
		t.Fatalf("campaign aborted on post-run stop failure: %v", err)
	}
	if len(prof.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(prof.Records))
	}
	for _, r := range prof.Records {
		if r.Outcome != profile.Ignored {
			t.Errorf("%s outcome = %v, want ignored", r.ScenarioID, r.Outcome)
		}
		if !strings.Contains(r.Detail, "stop after run: stop failed") {
			t.Errorf("%s detail = %q, want the stop failure recorded", r.ScenarioID, r.Detail)
		}
	}
}

func TestBaselineFailures(t *testing.T) {
	// Baseline with a failing functional test.
	sys := &fakeSystem{}
	tgt := target(sys)
	tgt.Tests = []suts.Test{{Name: "always-fails", Run: func() error { return errors.New("nope") }}}
	c := &Campaign{Target: tgt, Generator: &typo.Plugin{}}
	if err := c.Baseline(); err == nil || !strings.Contains(err.Error(), "always-fails") {
		t.Errorf("err = %v", err)
	}
	// Baseline with a config the SUT rejects.
	sys2 := &fakeSystem{}
	tgt2 := target(sys2)
	tgt2.System = rejectAllSystem{sys2}
	c2 := &Campaign{Target: tgt2, Generator: &typo.Plugin{}}
	if err := c2.Baseline(); err == nil || !strings.Contains(err.Error(), "baseline start") {
		t.Errorf("err = %v", err)
	}
}

// rejectAllSystem rejects every configuration.
type rejectAllSystem struct{ *fakeSystem }

func (s rejectAllSystem) Start(suts.Files) error {
	return &suts.StartupError{System: "reject", Msg: "no"}
}

func TestRunDurationRecorded(t *testing.T) {
	sys := &fakeSystem{}
	c := &Campaign{Target: target(sys), Generator: delGen{}}
	prof, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range prof.Records {
		if r.Duration <= 0 {
			t.Errorf("record %s has no duration", r.ScenarioID)
		}
	}
}

// TestGenerateRejectsInvalidScenario: a plugin emitting a malformed
// scenario (here: an empty Class, which would corrupt every per-class
// profile table with a "" bucket) must abort the campaign at generation
// time, before any experiment runs.
func TestGenerateRejectsInvalidScenario(t *testing.T) {
	sys := &fakeSystem{}
	g := badGen{scens: []scenario.Scenario{
		{ID: "classless", Apply: func(*confnode.Set) error { return nil }},
	}}
	c := &Campaign{Target: target(sys), Generator: g}
	prof, err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "empty Class") {
		t.Fatalf("err = %v, want invalid-scenario abort", err)
	}
	if len(prof.Records) != 0 {
		t.Errorf("records = %d, want 0 (no experiment may run)", len(prof.Records))
	}
	if sys.started != 0 {
		t.Errorf("SUT started %d times for an invalid faultload", sys.started)
	}
}
