// Package core implements the ConfErr engine — the paper's primary
// contribution (§3): it drives parsing of the initial configuration files,
// mapping to the plugin-specific view, fault-scenario generation and
// application, mapping back (detecting inexpressible mutations),
// serialization, SUT start/stop, functional testing, and the recording of
// every outcome into a resilience profile.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"conferr/internal/confnode"
	"conferr/internal/formats"
	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/suts"
	"conferr/internal/view"
)

// Generator is an error-generator plugin: it enumerates fault scenarios
// over the plugin-specific view of the configuration and names the view it
// requires (paper §4).
type Generator interface {
	// Name identifies the plugin for the profile.
	Name() string
	// View returns the configuration view the plugin's scenarios apply to.
	View() view.View
	// Generate enumerates fault scenarios for the given view of the
	// initial configuration.
	Generate(viewSet *confnode.Set) ([]scenario.Scenario, error)
}

// Target bundles everything system-specific: the SUT, the format of each
// of its configuration files, and the functional tests (paper §5.1's three
// system-specific components).
type Target struct {
	// System is the system under test.
	System suts.System
	// Formats maps each configuration file name to its format.
	Formats map[string]formats.Format
	// Tests are the functional tests run after a successful start.
	Tests []suts.Test
}

// Campaign is one ConfErr run: a target plus an error generator.
type Campaign struct {
	// Target is the system-specific bundle.
	Target *Target
	// Generator is the error-generator plugin.
	Generator Generator
	// KeepGoing controls behaviour on infrastructure errors (not SUT
	// detections): when false (default) the campaign aborts; when true the
	// scenario is recorded as not-applicable and the campaign continues.
	// RunContext's WithKeepGoing overrides it per run.
	KeepGoing bool
	// Observer, when non-nil, is called after every experiment with the
	// record just added; used for progress reporting. RunContext's
	// WithObserver overrides it per run.
	Observer func(profile.Record)
}

// Run executes the campaign sequentially: every scenario produced by the
// generator is injected into a fresh clone of the initial configuration
// and the outcome recorded. The returned profile is complete even when an
// error is returned (it covers the experiments run so far). Run is
// equivalent to RunContext(context.Background()).
func (c *Campaign) Run() (*profile.Profile, error) {
	return c.RunContext(context.Background())
}

// faultload is the immutable outcome of the campaign's generation phase:
// the view, both representations of the initial configuration, and the
// scenario list. Workers share it read-only.
type faultload struct {
	view    view.View
	viewSet *confnode.Set
	sysSet  *confnode.Set
	scens   []scenario.Scenario
}

// generate parses the initial configuration, maps it into the plugin view
// and enumerates the fault scenarios. It is executed once per campaign,
// regardless of parallelism, so every worker injects the identical
// faultload.
func (c *Campaign) generate() (*faultload, error) {
	sysSet, err := c.parseInitial()
	if err != nil {
		return nil, fmt.Errorf("core: parsing initial configuration: %w", err)
	}
	v := c.Generator.View()
	viewSet, err := v.Forward(sysSet)
	if err != nil {
		return nil, fmt.Errorf("core: forward transform (%s): %w", v.Name(), err)
	}
	scens, err := c.Generator.Generate(viewSet)
	if err != nil {
		return nil, fmt.Errorf("core: generating scenarios: %w", err)
	}
	return &faultload{view: v, viewSet: viewSet, sysSet: sysSet, scens: scens}, nil
}

// parseInitial parses the SUT's default configuration files into the
// system representation.
func (c *Campaign) parseInitial() (*confnode.Set, error) {
	files := c.Target.System.DefaultConfig()
	set := confnode.NewSet()
	// Files iterates in map order; fix a deterministic order by name.
	for _, name := range sortedNames(files) {
		f, ok := c.Target.Formats[name]
		if !ok {
			return nil, fmt.Errorf("no format registered for file %q", name)
		}
		root, err := f.Parse(name, files[name])
		if err != nil {
			return nil, err
		}
		set.Put(name, root)
	}
	return set, nil
}

// runOne performs a single injection experiment against the given target
// (the campaign's own, or a worker's private instance). The returned error
// is an infrastructure failure; SUT detections are encoded in the record.
func runOne(t *Target, sc scenario.Scenario, v view.View, viewSet, sysSet *confnode.Set) (profile.Record, error) {
	start := time.Now()
	rec := profile.Record{
		ScenarioID:  sc.ID,
		Class:       sc.Class,
		Description: sc.Description,
	}
	finish := func(o profile.Outcome, detail string) profile.Record {
		rec.Outcome = o
		rec.Detail = detail
		rec.Duration = time.Since(start)
		return rec
	}

	// 1. Mutate a fresh clone of the view.
	mutated := viewSet.Clone()
	if err := sc.Apply(mutated); err != nil {
		if errors.Is(err, scenario.ErrNotApplicable) {
			return finish(profile.NotApplicable, err.Error()), nil
		}
		return finish(profile.NotApplicable, err.Error()), err
	}

	// 2. Map back to the system representation; expressiveness gaps are a
	// first-class outcome (paper §5.4).
	mutatedSys, err := v.Backward(mutated, sysSet)
	if err != nil {
		if errors.Is(err, view.ErrNotExpressible) {
			return finish(profile.NotExpressible, err.Error()), nil
		}
		return finish(profile.NotApplicable, err.Error()), err
	}

	// 3. Serialize to native file formats.
	files := make(suts.Files, mutatedSys.Len())
	for _, name := range mutatedSys.Names() {
		f := t.Formats[name]
		data, serr := f.Serialize(mutatedSys.Get(name))
		if serr != nil {
			return finish(profile.NotExpressible, serr.Error()), nil
		}
		files[name] = data
	}

	// 4. Start the SUT with the faulty configuration.
	if err := t.System.Start(files); err != nil {
		stopErr := t.System.Stop()
		if suts.IsStartupError(err) {
			// The experiment succeeded: the SUT detected the fault. A
			// failed cleanup after that is worth recording but must not
			// abort the campaign.
			detail := err.Error()
			if stopErr != nil {
				detail += "; stop after rejected start: " + stopErr.Error()
			}
			return finish(profile.DetectedAtStartup, detail), nil
		}
		// Non-startup failures (e.g. port in use) are infrastructure
		// problems, not SUT detections.
		return finish(profile.NotApplicable, err.Error()), err
	}

	// 5. Run the functional tests.
	outcome, detail := profile.Ignored, ""
	for _, test := range t.Tests {
		if terr := test.Run(); terr != nil {
			outcome = profile.DetectedByTest
			detail = fmt.Sprintf("%s: %v", test.Name, terr)
			break
		}
	}
	if err := t.System.Stop(); err != nil {
		return finish(outcome, detail), fmt.Errorf("stopping SUT: %w", err)
	}
	return finish(outcome, detail), nil
}

// Baseline verifies that the unmutated default configuration starts the
// SUT and passes all functional tests; campaigns are meaningless without
// this invariant (a failing test would count every scenario as detected).
func (c *Campaign) Baseline() error {
	sysSet, err := c.parseInitial()
	if err != nil {
		return fmt.Errorf("core: baseline parse: %w", err)
	}
	return c.baselineOn(sysSet)
}

// baselineOn is Baseline over an already-parsed initial configuration,
// letting RunContext share one parse between the baseline check and
// faultload generation. It round-trips the configuration through
// serialize so the baseline exercises the exact bytes mutated runs will
// produce.
func (c *Campaign) baselineOn(sysSet *confnode.Set) error {
	rt := make(suts.Files, sysSet.Len())
	for _, name := range sysSet.Names() {
		data, err := c.Target.Formats[name].Serialize(sysSet.Get(name))
		if err != nil {
			return fmt.Errorf("core: baseline serialize %s: %w", name, err)
		}
		rt[name] = data
	}
	if err := c.Target.System.Start(rt); err != nil {
		_ = c.Target.System.Stop()
		return fmt.Errorf("core: baseline start: %w", err)
	}
	defer func() { _ = c.Target.System.Stop() }()
	for _, t := range c.Target.Tests {
		if err := t.Run(); err != nil {
			return fmt.Errorf("core: baseline test %s: %w", t.Name, err)
		}
	}
	return nil
}

func sortedNames(files suts.Files) []string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
