// Package core implements the ConfErr engine — the paper's primary
// contribution (§3): it drives parsing of the initial configuration files,
// mapping to the plugin-specific view, fault-scenario generation and
// application, mapping back (detecting inexpressible mutations),
// serialization, SUT start/stop, functional testing, and the recording of
// every outcome into a resilience profile.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"conferr/internal/confnode"
	"conferr/internal/formats"
	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/suts"
	"conferr/internal/view"
)

// Generator is an error-generator plugin: it enumerates fault scenarios
// over the plugin-specific view of the configuration and names the view it
// requires (paper §4).
type Generator interface {
	// Name identifies the plugin for the profile.
	Name() string
	// View returns the configuration view the plugin's scenarios apply to.
	View() view.View
	// Generate enumerates fault scenarios for the given view of the
	// initial configuration.
	Generate(viewSet *confnode.Set) ([]scenario.Scenario, error)
}

// StreamingGenerator is a Generator that can emit its faultload lazily,
// one scenario at a time, instead of materializing it as a slice. The
// stream must enumerate exactly the scenarios Generate would return, in
// the same order: Collect(GenerateStream(set)) ≡ Generate(set). The
// streaming campaign runner pulls from this stream, so a faultload's size
// is bounded by patience, not by memory.
type StreamingGenerator interface {
	Generator
	// GenerateStream returns the generator's faultload as a pull stream.
	// Like Generate, it may consume internal generator state (RNGs), so
	// call exactly one of the two per campaign.
	GenerateStream(viewSet *confnode.Set) scenario.Source
}

// ShardedGenerator is a StreamingGenerator whose faultload can be pulled
// as n disjoint strided shards, independently and concurrently: shard k
// of n yields exactly the scenarios GenerateStream would yield at
// positions k, k+n, k+2n, … Implementations must be pure — repeated
// GenerateStream/GenerateShard calls over the same view set enumerate the
// identical stream, with any randomness derived afresh from a fixed seed
// per call — so the union of all n shards, interleaved by stride, equals
// the unsharded stream for every n. The sharded campaign runner hands
// every worker its own shard: generation fans out across the workers
// instead of serializing behind a central dispatcher.
type ShardedGenerator interface {
	StreamingGenerator
	// GenerateShard returns shard k of n of the faultload.
	GenerateShard(viewSet *confnode.Set, k, n int) scenario.Source
}

// CanShard reports whether the generator supports sharded generation.
// Wrapper generators (the combinators) implement GenerateShard
// unconditionally but are only shard-stable when every generator they
// wrap is; such types report the effective capability via a
// Shardable() bool method, which takes precedence here.
func CanShard(gen Generator) bool {
	if s, ok := gen.(interface{ Shardable() bool }); ok {
		return s.Shardable()
	}
	_, ok := gen.(ShardedGenerator)
	return ok
}

// StreamOf returns the generator's faultload as a stream: lazily when the
// generator implements StreamingGenerator, otherwise by materializing
// Generate's slice behind a FromSlice adapter — slice-based plugins keep
// working unchanged on every streaming path.
func StreamOf(gen Generator, viewSet *confnode.Set) scenario.Source {
	if sg, ok := gen.(StreamingGenerator); ok {
		return sg.GenerateStream(viewSet)
	}
	return func(yield func(scenario.Scenario, error) bool) {
		scens, err := gen.Generate(viewSet)
		if err != nil {
			yield(scenario.Scenario{}, err)
			return
		}
		for _, sc := range scens {
			if !yield(sc, nil) {
				return
			}
		}
	}
}

// Target bundles everything system-specific: the SUT, the format of each
// of its configuration files, and the functional tests (paper §5.1's three
// system-specific components).
type Target struct {
	// System is the system under test.
	System suts.System
	// Formats maps each configuration file name to its format.
	Formats map[string]formats.Format
	// Tests are the functional tests run after a successful start.
	Tests []suts.Test
}

// Campaign is one ConfErr run: a target plus an error generator.
type Campaign struct {
	// Target is the system-specific bundle.
	Target *Target
	// Generator is the error-generator plugin.
	Generator Generator
	// KeepGoing controls behaviour on infrastructure errors (not SUT
	// detections): when false (default) the campaign aborts; when true the
	// scenario is recorded as not-applicable and the campaign continues.
	// RunContext's WithKeepGoing overrides it per run.
	KeepGoing bool
	// Observer, when non-nil, is called after every experiment with the
	// record just added; used for progress reporting. RunContext's
	// WithObserver overrides it per run.
	Observer func(profile.Record)
}

// Run executes the campaign sequentially: every scenario produced by the
// generator is injected into a fresh clone of the initial configuration
// and the outcome recorded. The returned profile is complete even when an
// error is returned (it covers the experiments run so far). Run is
// equivalent to RunContext(context.Background()).
func (c *Campaign) Run() (*profile.Profile, error) {
	return c.RunContext(context.Background())
}

// faultload is the immutable outcome of the campaign's generation phase:
// the view, both representations of the initial configuration, the
// scenario list, and the precomputed fast-path state. Workers share it
// read-only.
type faultload struct {
	view    view.View
	viewSet *confnode.Set
	sysSet  *confnode.Set
	scens   []scenario.Scenario

	// inc and baseBytes enable the incremental injection pipeline. inc is
	// the view's incremental back-transform, nil when unsupported.
	// baseBytes caches, once per campaign, the serialized bytes of the
	// baseline round trip (Backward over the unmutated view): per
	// scenario, only the files the mutation dirtied are re-serialized and
	// every clean file reuses its cached slice. Both are nil when the
	// baseline round trip fails, which forces the reference path.
	inc       view.Incremental
	baseBytes map[string][]byte
	// incInto, when the view supports it, is inc's wrapper-reusing form:
	// workers thread their scratch tracked system set through it instead
	// of allocating one per experiment.
	incInto view.IncrementalInto
}

// generateBase parses the initial configuration, maps it into the plugin
// view and precomputes the fast-path state — everything the campaign needs
// before the first scenario exists, shared by the materialized and
// streaming generation paths.
func (c *Campaign) generateBase() (*faultload, error) {
	sysSet, err := c.parseInitial()
	if err != nil {
		return nil, fmt.Errorf("core: parsing initial configuration: %w", err)
	}
	v := c.Generator.View()
	viewSet, err := v.Forward(sysSet)
	if err != nil {
		return nil, fmt.Errorf("core: forward transform (%s): %w", v.Name(), err)
	}
	fl := &faultload{view: v, viewSet: viewSet, sysSet: sysSet}
	// Freeze the baseline sets before any clone exists: every experiment's
	// materialized trees then share the baseline attribute maps
	// copy-on-write instead of re-hashing them per injection.
	fl.sysSet.Freeze()
	fl.viewSet.Freeze()
	fl.prepareFastPath(c.Target)
	return fl, nil
}

// generate is the materialized generation path: the whole faultload is
// enumerated and validated before the first injection. It is executed once
// per campaign, regardless of parallelism, so every worker injects the
// identical faultload.
func (c *Campaign) generate() (*faultload, error) {
	fl, err := c.generateBase()
	if err != nil {
		return nil, err
	}
	scens, err := c.Generator.Generate(fl.viewSet)
	if err != nil {
		return nil, fmt.Errorf("core: generating scenarios: %w", err)
	}
	// Fail fast on malformed scenarios: a plugin emitting, say, an empty
	// Class would otherwise corrupt every per-class profile table with a
	// silent "" bucket thousands of experiments later. Duplicate IDs are
	// rejected for the same reason: two scenarios sharing an ID silently
	// collide in per-scenario reporting (Compare, FormatRecords sorting)
	// and would corrupt JSONL dedup or resume keyed on the ID.
	seen := make(map[string]struct{}, len(scens))
	for i, sc := range scens {
		if verr := sc.Validate(); verr != nil {
			return nil, fmt.Errorf("core: plugin %s emitted invalid scenario #%d: %w",
				c.Generator.Name(), i, verr)
		}
		if _, dup := seen[sc.ID]; dup {
			return nil, fmt.Errorf("core: plugin %s emitted duplicate ScenarioID %q (scenario #%d)",
				c.Generator.Name(), sc.ID, i)
		}
		seen[sc.ID] = struct{}{}
	}
	fl.scens = scens
	return fl, nil
}

// generateStream is the streaming generation path: the faultload is pulled
// from the generator one scenario at a time and never materialized. Each
// scenario is shape-validated as it streams past; global duplicate-ID
// detection is not performed here (it would grow with the faultload) —
// compose scenario.Source.DedupByID upstream when merged sources may
// collide.
func (c *Campaign) generateStream() (*faultload, scenario.Source, error) {
	fl, err := c.generateBase()
	if err != nil {
		return nil, nil, err
	}
	inner := StreamOf(c.Generator, fl.viewSet)
	src := scenario.Source(func(yield func(scenario.Scenario, error) bool) {
		i := 0
		inner(func(sc scenario.Scenario, serr error) bool {
			if serr != nil {
				yield(sc, fmt.Errorf("core: generating scenarios: %w", serr))
				return false
			}
			if verr := sc.Validate(); verr != nil {
				yield(scenario.Scenario{}, fmt.Errorf("core: plugin %s emitted invalid scenario #%d: %w",
					c.Generator.Name(), i, verr))
				return false
			}
			i++
			return yield(sc, nil)
		})
	})
	return fl, src, nil
}

// prepareFastPath caches the baseline round-trip bytes when the view
// supports incremental back-transformation. Any failure — an error from
// the unmutated Backward, a missing format, a serializer error — leaves
// the fast path disabled rather than the campaign broken: runOne then
// behaves exactly like the paper's full-clone engine.
func (fl *faultload) prepareFastPath(t *Target) {
	inc, ok := fl.view.(view.Incremental)
	if !ok {
		return
	}
	// Clone defensively: Backward's historical contract lets a view
	// mutate the passed-in set, and this one is the campaign-wide
	// baseline every scenario is tracked against.
	baseSys, err := fl.view.Backward(fl.viewSet.Clone(), fl.sysSet)
	if err != nil {
		return
	}
	baseBytes := make(map[string][]byte, baseSys.Len())
	for _, name := range baseSys.Names() {
		f := t.Formats[name]
		if f == nil {
			return
		}
		data, err := f.Serialize(baseSys.Get(name))
		if err != nil {
			return
		}
		baseBytes[name] = data
	}
	// The fast path pre-populates each worker's files map from baseBytes
	// and serializes only dirty files, so baseBytes must name exactly the
	// baseline system files: a view whose round trip drops or invents
	// files would silently hand the SUT the wrong file set. Such views
	// fall back to the reference path instead.
	if baseSys.Len() != fl.sysSet.Len() {
		return
	}
	for _, name := range fl.sysSet.Names() {
		if _, ok := baseBytes[name]; !ok {
			return
		}
	}
	fl.inc, fl.baseBytes = inc, baseBytes
	fl.incInto, _ = fl.view.(view.IncrementalInto)
}

// scratch is per-worker reusable state threaded through every injection a
// worker runs: the node arena backing the experiment's cloned trees, the
// reusable tracked wrapper of the view set, the dirty-file scratch
// slices, the files map handed to the SUT and the serialization buffer.
// One experiment fully recycles into the next — the steady-state hot path
// allocates only what must outlive the call (the mutated files' bytes).
// Workers never share a scratch.
type scratch struct {
	buf      bytes.Buffer
	arena    confnode.Arena
	tracked  *confnode.Set
	// sysTracked is the reusable tracked wrapper of the system set the
	// incremental back-transform rebuilds per experiment (see
	// view.IncrementalInto); like tracked, its materialized trees live on
	// the arena.
	sysTracked *confnode.Set
	dirty      []string
	sysDirty   []string
	files      suts.Files
	// filesFor remembers which campaign's baseline the files map is
	// pre-populated with; a pooled scratch crossing into a new campaign
	// rebuilds it (see runOne's fast path).
	filesFor *faultload
}

// scratchPool recycles per-worker scratches — with their warmed arenas,
// maps and buffers — across workers, campaigns and suite cells, so a
// campaign's first experiments don't pay the warm-up that its thousandth
// doesn't. Scratches are owned exclusively between Get and Put.
var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// serialize renders one file tree, reusing the scratch buffer for formats
// that support it. The returned slice is always freshly allocated — SUTs
// may hold onto the config bytes across Start/Stop — but the serializer's
// intermediate growth happens in the pooled buffer.
func (s *scratch) serialize(f formats.Format, root *confnode.Node) ([]byte, error) {
	if s != nil {
		if bf, ok := f.(formats.BufferedFormat); ok {
			s.buf.Reset()
			if err := bf.SerializeTo(&s.buf, root); err != nil {
				return nil, err
			}
			out := make([]byte, s.buf.Len())
			copy(out, s.buf.Bytes())
			return out, nil
		}
	}
	return f.Serialize(root)
}

// parseInitial parses the SUT's default configuration files into the
// system representation.
func (c *Campaign) parseInitial() (*confnode.Set, error) {
	files := c.Target.System.DefaultConfig()
	set := confnode.NewSet()
	// Files iterates in map order; fix a deterministic order by name.
	for _, name := range sortedNames(files) {
		f, ok := c.Target.Formats[name]
		if !ok {
			return nil, fmt.Errorf("no format registered for file %q", name)
		}
		root, err := f.Parse(name, files[name])
		if err != nil {
			return nil, err
		}
		set.Put(name, root)
	}
	return set, nil
}

// runOne performs a single injection experiment against the given target
// (the campaign's own, or a worker's private instance). The returned error
// is an infrastructure failure; SUT detections are encoded in the record.
//
// This is the incremental pipeline: the scenario mutates a copy-on-write
// wrapper of the view, so only the files it actually touches are cloned;
// the backward transform folds only those files; and serialization runs
// only over the system files the fold rewrote, with every clean file
// reusing its cached baseline bytes. When the view has no incremental
// back-transform (or the baseline round trip failed at campaign start)
// the per-scenario cost degrades gracefully to the reference behaviour —
// full Backward over the tracked set — which runOneReference preserves
// verbatim for equivalence tests and benchmarks.
func runOne(t *Target, sc scenario.Scenario, fl *faultload, scr *scratch) (profile.Record, error) {
	start := time.Now()
	rec := profile.Record{
		ScenarioID:  sc.ID,
		Class:       sc.Class,
		Description: sc.Description,
	}
	finish := func(o profile.Outcome, detail string) profile.Record {
		rec.Outcome = o
		rec.Detail = detail
		rec.Duration = time.Since(start)
		return rec
	}

	// 1. Mutate a copy-on-write wrapper of the view: Apply may mutate
	// freely, and the wrapper records which files it reached. The wrapper
	// and every tree it materializes are recycled per-worker scratch: the
	// arena reset reclaims the previous experiment's clones in one step.
	scr.arena.Reset()
	scr.tracked = fl.viewSet.TrackedInto(scr.tracked, &scr.arena)
	mutated := scr.tracked
	if err := sc.Apply(mutated); err != nil {
		if errors.Is(err, scenario.ErrNotApplicable) {
			return finish(profile.NotApplicable, err.Error()), nil
		}
		return finish(profile.NotApplicable, err.Error()), err
	}
	scr.dirty = mutated.SealAppend(scr.dirty[:0])
	viewDirty := scr.dirty

	// 2. Map back to the system representation; expressiveness gaps are a
	// first-class outcome (paper §5.4). The incremental transform folds
	// only the dirty files and reports which system files it rewrote.
	fast := fl.inc != nil && fl.baseBytes != nil
	var (
		mutatedSys *confnode.Set
		sysDirty   []string
		err        error
	)
	if fast {
		if fl.incInto != nil {
			mutatedSys, err = fl.incInto.IncrementalBackwardInto(scr.sysTracked, viewDirty, mutated, fl.sysSet)
			if mutatedSys != nil {
				scr.sysTracked = mutatedSys
			}
		} else {
			mutatedSys, err = fl.inc.IncrementalBackward(viewDirty, mutated, fl.sysSet)
		}
	} else {
		// Flatten the tracked set first: Backward's historical contract
		// hands the view a private set it could mutate in place, and the
		// sealed wrapper's clean files alias the shared baseline.
		mutatedSys, err = fl.view.Backward(mutated.Clone(), fl.sysSet)
	}
	if err != nil {
		if errors.Is(err, view.ErrNotExpressible) {
			return finish(profile.NotExpressible, err.Error()), nil
		}
		return finish(profile.NotApplicable, err.Error()), err
	}
	if fast {
		scr.sysDirty = mutatedSys.SealAppend(scr.sysDirty[:0])
		sysDirty = scr.sysDirty
	}

	// 3. Serialize to native file formats — only the dirty ones on the
	// fast path; clean files reuse the campaign's cached baseline bytes.
	// The files map is worker scratch: suts.System.Start may retain the
	// byte slices, never the map itself.
	if fast {
		// Fast path: the worker's files map is pre-populated with the
		// campaign's baseline bytes (prepareFastPath guarantees baseBytes
		// covers every baseline file), so an experiment touches only its
		// dirty entries — written before the run, restored after — instead
		// of rebuilding a full map per injection.
		if scr.files == nil || scr.filesFor != fl {
			if scr.files == nil {
				scr.files = make(suts.Files, len(fl.baseBytes))
			} else {
				clear(scr.files)
			}
			for name, data := range fl.baseBytes {
				scr.files[name] = data
			}
			scr.filesFor = fl
		}
		files := scr.files
		defer func() {
			for _, name := range sysDirty {
				if data, ok := fl.baseBytes[name]; ok {
					files[name] = data
				} else {
					delete(files, name)
				}
			}
		}()
		for _, name := range sysDirty {
			f := t.Formats[name]
			if f == nil {
				// A scenario introduced a file no registered format can
				// express — an expressiveness gap, not a crash.
				return finish(profile.NotExpressible,
					fmt.Sprintf("no format registered for file %q", name)), nil
			}
			data, serr := scr.serialize(f, mutatedSys.Get(name))
			if serr != nil {
				return finish(profile.NotExpressible, serr.Error()), nil
			}
			files[name] = data
		}
		return runOnFiles(t, files, sysDirty, true, finish)
	}

	// Reference-grade slow path (no incremental transform): serialize the
	// whole set into a rebuilt map.
	if scr.files == nil {
		scr.files = make(suts.Files, mutatedSys.Len())
	} else {
		clear(scr.files)
	}
	scr.filesFor = nil
	files := scr.files
	var (
		badOutcome profile.Outcome
		badDetail  string
	)
	mutatedSys.Each(func(name string, root *confnode.Node) bool {
		f := t.Formats[name]
		if f == nil {
			badOutcome = profile.NotExpressible
			badDetail = fmt.Sprintf("no format registered for file %q", name)
			return false
		}
		data, serr := scr.serialize(f, root)
		if serr != nil {
			badOutcome = profile.NotExpressible
			badDetail = serr.Error()
			return false
		}
		files[name] = data
		return true
	})
	if badOutcome != 0 {
		return finish(badOutcome, badDetail), nil
	}

	return runOnFiles(t, files, nil, false, finish)
}

// runOneSafe is runOne behind the per-experiment panic boundary: a panic
// anywhere in the injection pipeline — a plugin's Apply, a view
// transform, a serializer, the SUT itself — becomes an
// InfrastructureError record carrying the panic value and stack, plus an
// error that follows the normal keep-going discipline, instead of
// killing the process. Every campaign path calls this, never runOne
// directly.
func runOneSafe(t *Target, sc scenario.Scenario, fl *faultload, scr *scratch) (rec profile.Record, err error) {
	defer func() {
		if v := recover(); v != nil {
			rec = profile.Record{
				ScenarioID:  sc.ID,
				Class:       sc.Class,
				Description: sc.Description,
				Outcome:     profile.InfrastructureError,
				Detail:      fmt.Sprintf("panic: %v\n%s", v, debug.Stack()),
			}
			err = fmt.Errorf("core: panic in scenario %s: %v", sc.ID, v)
			// The panic may have left the scratch's cached state (tracked
			// wrappers, pre-populated files map) half-mutated; drop the
			// caches so the next experiment rebuilds them from the baseline.
			scr.tracked = nil
			scr.sysTracked = nil
			scr.files = nil
			scr.filesFor = nil
		}
	}()
	return runOne(t, sc, fl, scr)
}

// isInfraPhaseErr reports whether a phase error is the harness's own
// failure (watchdog expiry, contained panic) rather than a SUT verdict.
func isInfraPhaseErr(err error) bool {
	return suts.IsPhaseTimeout(err) || suts.IsPhasePanic(err)
}

// runOneReference is the pre-incremental engine — deep-clone the whole
// view, full Backward, re-serialize every file — kept as the behavioural
// reference: equivalence tests prove runOne produces byte-identical
// profiles, and the benchmark family measures the win against it.
func runOneReference(t *Target, sc scenario.Scenario, v view.View, viewSet, sysSet *confnode.Set) (profile.Record, error) {
	start := time.Now()
	rec := profile.Record{
		ScenarioID:  sc.ID,
		Class:       sc.Class,
		Description: sc.Description,
	}
	finish := func(o profile.Outcome, detail string) profile.Record {
		rec.Outcome = o
		rec.Detail = detail
		rec.Duration = time.Since(start)
		return rec
	}

	// 1. Mutate a fresh clone of the view.
	mutated := viewSet.Clone()
	if err := sc.Apply(mutated); err != nil {
		if errors.Is(err, scenario.ErrNotApplicable) {
			return finish(profile.NotApplicable, err.Error()), nil
		}
		return finish(profile.NotApplicable, err.Error()), err
	}

	// 2. Map back to the system representation.
	mutatedSys, err := v.Backward(mutated, sysSet)
	if err != nil {
		if errors.Is(err, view.ErrNotExpressible) {
			return finish(profile.NotExpressible, err.Error()), nil
		}
		return finish(profile.NotApplicable, err.Error()), err
	}

	// 3. Serialize to native file formats.
	files := make(suts.Files, mutatedSys.Len())
	for _, name := range mutatedSys.Names() {
		f := t.Formats[name]
		if f == nil {
			return finish(profile.NotExpressible,
				fmt.Sprintf("no format registered for file %q", name)), nil
		}
		data, serr := f.Serialize(mutatedSys.Get(name))
		if serr != nil {
			return finish(profile.NotExpressible, serr.Error()), nil
		}
		files[name] = data
	}

	return runOnFiles(t, files, nil, false, finish)
}

// runOnFiles drives steps 4 and 5 — start the SUT on the mutated bytes,
// run the functional tests, stop — shared by the incremental and
// reference pipelines. On the incremental path haveDirty is true and
// dirty names the files whose bytes differ from the campaign baseline;
// a lifecycle adapter implementing suts.DirtyStarter forwards that to a
// warm DirtyReloader so clean files skip re-parsing. The capability is
// strictly an optimization — outcomes are identical either way.
func runOnFiles(t *Target, files suts.Files, dirty []string, haveDirty bool, finish func(profile.Outcome, string) profile.Record) (profile.Record, error) {
	// 4. Start the SUT with the faulty configuration.
	var err error
	if haveDirty {
		if ds, ok := t.System.(suts.DirtyStarter); ok {
			err = ds.StartDirty(files, dirty)
		} else {
			err = t.System.Start(files)
		}
	} else {
		err = t.System.Start(files)
	}
	if err != nil {
		stopErr := t.System.Stop()
		if suts.IsStartupError(err) {
			// The experiment succeeded: the SUT detected the fault. A
			// failed cleanup after that is worth recording but must not
			// abort the campaign.
			detail := err.Error()
			if stopErr != nil {
				detail += "; stop after rejected start: " + stopErr.Error()
			}
			return finish(profile.DetectedAtStartup, detail), nil
		}
		if isInfraPhaseErr(err) {
			// A watchdog expiry or contained panic in the start phase: the
			// harness failed the experiment, not the SUT. Record it and
			// keep the campaign going regardless of KeepGoing — the
			// instance is already quarantined and the next scenario gets a
			// fresh (cold) start.
			detail := err.Error()
			if stopErr != nil {
				detail += "; stop after failed start: " + stopErr.Error()
			}
			return finish(profile.InfrastructureError, detail), nil
		}
		// Non-startup failures (e.g. port in use) are infrastructure
		// problems, not SUT detections.
		return finish(profile.NotApplicable, err.Error()), err
	}

	// 5. Run the functional tests. A validate-only lifecycle has nothing
	// listening after a successful "start", so its probes are skipped.
	outcome, detail := profile.Ignored, ""
	if !skipsProbes(t.System) {
		for _, test := range t.Tests {
			if terr := test.Run(); terr != nil {
				if isInfraPhaseErr(terr) {
					// A wedged or panicking probe says nothing about the
					// SUT; the watchdog has quarantined the instance.
					outcome = profile.InfrastructureError
					detail = fmt.Sprintf("%s: %v", test.Name, terr)
					break
				}
				outcome = profile.DetectedByTest
				detail = fmt.Sprintf("%s: %v", test.Name, terr)
				break
			}
		}
	}
	if err := t.System.Stop(); err != nil {
		if isInfraPhaseErr(err) && outcome != profile.InfrastructureError {
			// A stop phase that wedged compromises the experiment's
			// environment even when the probes ran clean: classify the
			// record as the harness's failure, keeping the probe verdict
			// in the detail for the audit trail.
			if detail != "" {
				detail += "; "
			}
			return finish(profile.InfrastructureError, detail+"stop: "+err.Error()), nil
		}
		// The experiment itself succeeded; a failed cleanup is worth
		// recording but must not abort the campaign, mirroring the stop
		// errors after a rejected start above.
		if detail != "" {
			detail += "; "
		}
		detail += "stop after run: " + err.Error()
	}
	return finish(outcome, detail), nil
}

// skipsProbes reports whether the system (or a wrapped inner system)
// declares functional tests meaningless for its lifecycle mode — the
// validate-only fast path.
func skipsProbes(sys suts.System) bool {
	for sys != nil {
		if sp, ok := sys.(interface{ SkipProbes() bool }); ok {
			return sp.SkipProbes()
		}
		u, ok := sys.(interface{ Unwrap() suts.System })
		if !ok {
			return false
		}
		sys = u.Unwrap()
	}
	return false
}

// releaseSystem hands a worker's system back at the end of a run: a
// pool-leased or lifecycle-wrapped system (possibly behind wrappers)
// gets its Release hook, everything else is left alone — cold systems
// are already stopped after every experiment.
func releaseSystem(sys suts.System) {
	for sys != nil {
		if r, ok := sys.(interface{ Release() error }); ok {
			_ = r.Release()
			return
		}
		u, ok := sys.(interface{ Unwrap() suts.System })
		if !ok {
			return
		}
		sys = u.Unwrap()
	}
}

// Baseline verifies that the unmutated default configuration starts the
// SUT and passes all functional tests; campaigns are meaningless without
// this invariant (a failing test would count every scenario as detected).
func (c *Campaign) Baseline() error {
	sysSet, err := c.parseInitial()
	if err != nil {
		return fmt.Errorf("core: baseline parse: %w", err)
	}
	return c.baselineOn(sysSet, nil)
}

// baselineOn is Baseline over an already-parsed initial configuration,
// letting RunContext share one parse between the baseline check and
// faultload generation. It round-trips the configuration through
// serialize so the baseline exercises the exact bytes mutated runs will
// produce: when the campaign cached baseline bytes for the fast path,
// those — the bytes every clean file of every experiment reuses — are
// what the baseline starts the SUT on.
func (c *Campaign) baselineOn(sysSet *confnode.Set, baseBytes map[string][]byte) error {
	rt := make(suts.Files, sysSet.Len())
	for _, name := range sysSet.Names() {
		if data, ok := baseBytes[name]; ok {
			rt[name] = data
			continue
		}
		f := c.Target.Formats[name]
		if f == nil {
			// A Target whose Formats map lost (or never had) an entry for a
			// parsed file must fail diagnosably, not panic on the nil
			// interface.
			return fmt.Errorf("core: baseline: no format registered for file %q", name)
		}
		data, err := f.Serialize(sysSet.Get(name))
		if err != nil {
			return fmt.Errorf("core: baseline serialize %s: %w", name, err)
		}
		rt[name] = data
	}
	if err := c.Target.System.Start(rt); err != nil {
		_ = c.Target.System.Stop()
		return fmt.Errorf("core: baseline start: %w", err)
	}
	defer func() { _ = c.Target.System.Stop() }()
	for _, t := range c.Target.Tests {
		if err := t.Run(); err != nil {
			return fmt.Errorf("core: baseline test %s: %w", t.Name, err)
		}
	}
	return nil
}

func sortedNames(files suts.Files) []string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
