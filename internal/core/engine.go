// Package core implements the ConfErr engine — the paper's primary
// contribution (§3): it drives parsing of the initial configuration files,
// mapping to the plugin-specific view, fault-scenario generation and
// application, mapping back (detecting inexpressible mutations),
// serialization, SUT start/stop, functional testing, and the recording of
// every outcome into a resilience profile.
package core

import (
	"errors"
	"fmt"
	"time"

	"conferr/internal/confnode"
	"conferr/internal/formats"
	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/suts"
	"conferr/internal/view"
)

// Generator is an error-generator plugin: it enumerates fault scenarios
// over the plugin-specific view of the configuration and names the view it
// requires (paper §4).
type Generator interface {
	// Name identifies the plugin for the profile.
	Name() string
	// View returns the configuration view the plugin's scenarios apply to.
	View() view.View
	// Generate enumerates fault scenarios for the given view of the
	// initial configuration.
	Generate(viewSet *confnode.Set) ([]scenario.Scenario, error)
}

// Target bundles everything system-specific: the SUT, the format of each
// of its configuration files, and the functional tests (paper §5.1's three
// system-specific components).
type Target struct {
	// System is the system under test.
	System suts.System
	// Formats maps each configuration file name to its format.
	Formats map[string]formats.Format
	// Tests are the functional tests run after a successful start.
	Tests []suts.Test
}

// Campaign is one ConfErr run: a target plus an error generator.
type Campaign struct {
	// Target is the system-specific bundle.
	Target *Target
	// Generator is the error-generator plugin.
	Generator Generator
	// KeepGoing controls behaviour on infrastructure errors (not SUT
	// detections): when false (default) the campaign aborts; when true the
	// scenario is recorded as not-applicable and the campaign continues.
	KeepGoing bool
	// Observer, when non-nil, is called after every experiment with the
	// record just added; used for progress reporting.
	Observer func(profile.Record)
}

// Run executes the campaign: every scenario produced by the generator is
// injected into a fresh clone of the initial configuration and the outcome
// recorded. The returned profile is complete even when an error is
// returned (it covers the experiments run so far).
func (c *Campaign) Run() (*profile.Profile, error) {
	prof := &profile.Profile{
		System:    c.Target.System.Name(),
		Generator: c.Generator.Name(),
	}

	sysSet, err := c.parseInitial()
	if err != nil {
		return prof, fmt.Errorf("core: parsing initial configuration: %w", err)
	}
	v := c.Generator.View()
	viewSet, err := v.Forward(sysSet)
	if err != nil {
		return prof, fmt.Errorf("core: forward transform (%s): %w", v.Name(), err)
	}
	scens, err := c.Generator.Generate(viewSet)
	if err != nil {
		return prof, fmt.Errorf("core: generating scenarios: %w", err)
	}

	for _, sc := range scens {
		rec, err := c.runOne(sc, v, viewSet, sysSet)
		prof.Add(rec)
		if c.Observer != nil {
			c.Observer(rec)
		}
		if err != nil && !c.KeepGoing {
			return prof, fmt.Errorf("core: scenario %s: %w", sc.ID, err)
		}
	}
	return prof, nil
}

// parseInitial parses the SUT's default configuration files into the
// system representation.
func (c *Campaign) parseInitial() (*confnode.Set, error) {
	files := c.Target.System.DefaultConfig()
	set := confnode.NewSet()
	// Files iterates in map order; fix a deterministic order by name.
	for _, name := range sortedNames(files) {
		f, ok := c.Target.Formats[name]
		if !ok {
			return nil, fmt.Errorf("no format registered for file %q", name)
		}
		root, err := f.Parse(name, files[name])
		if err != nil {
			return nil, err
		}
		set.Put(name, root)
	}
	return set, nil
}

// runOne performs a single injection experiment. The returned error is an
// infrastructure failure; SUT detections are encoded in the record.
func (c *Campaign) runOne(sc scenario.Scenario, v view.View, viewSet, sysSet *confnode.Set) (profile.Record, error) {
	start := time.Now()
	rec := profile.Record{
		ScenarioID:  sc.ID,
		Class:       sc.Class,
		Description: sc.Description,
	}
	finish := func(o profile.Outcome, detail string) profile.Record {
		rec.Outcome = o
		rec.Detail = detail
		rec.Duration = time.Since(start)
		return rec
	}

	// 1. Mutate a fresh clone of the view.
	mutated := viewSet.Clone()
	if err := sc.Apply(mutated); err != nil {
		if errors.Is(err, scenario.ErrNotApplicable) {
			return finish(profile.NotApplicable, err.Error()), nil
		}
		return finish(profile.NotApplicable, err.Error()), err
	}

	// 2. Map back to the system representation; expressiveness gaps are a
	// first-class outcome (paper §5.4).
	mutatedSys, err := v.Backward(mutated, sysSet)
	if err != nil {
		if errors.Is(err, view.ErrNotExpressible) {
			return finish(profile.NotExpressible, err.Error()), nil
		}
		return finish(profile.NotApplicable, err.Error()), err
	}

	// 3. Serialize to native file formats.
	files := make(suts.Files, mutatedSys.Len())
	for _, name := range mutatedSys.Names() {
		f := c.Target.Formats[name]
		data, serr := f.Serialize(mutatedSys.Get(name))
		if serr != nil {
			return finish(profile.NotExpressible, serr.Error()), nil
		}
		files[name] = data
	}

	// 4. Start the SUT with the faulty configuration.
	if err := c.Target.System.Start(files); err != nil {
		stopErr := c.Target.System.Stop()
		if suts.IsStartupError(err) {
			return finish(profile.DetectedAtStartup, err.Error()), stopErr
		}
		// Non-startup failures (e.g. port in use) are infrastructure
		// problems, not SUT detections.
		return finish(profile.NotApplicable, err.Error()), err
	}

	// 5. Run the functional tests.
	outcome, detail := profile.Ignored, ""
	for _, t := range c.Target.Tests {
		if terr := t.Run(); terr != nil {
			outcome = profile.DetectedByTest
			detail = fmt.Sprintf("%s: %v", t.Name, terr)
			break
		}
	}
	if err := c.Target.System.Stop(); err != nil {
		return finish(outcome, detail), fmt.Errorf("stopping SUT: %w", err)
	}
	return finish(outcome, detail), nil
}

// Baseline verifies that the unmutated default configuration starts the
// SUT and passes all functional tests; campaigns are meaningless without
// this invariant (a failing test would count every scenario as detected).
func (c *Campaign) Baseline() error {
	files := c.Target.System.DefaultConfig()
	// Round-trip the default configuration through parse+serialize so the
	// baseline exercises the exact bytes mutated runs will produce.
	sysSet, err := c.parseInitial()
	if err != nil {
		return fmt.Errorf("core: baseline parse: %w", err)
	}
	rt := make(suts.Files, len(files))
	for _, name := range sysSet.Names() {
		data, err := c.Target.Formats[name].Serialize(sysSet.Get(name))
		if err != nil {
			return fmt.Errorf("core: baseline serialize %s: %w", name, err)
		}
		rt[name] = data
	}
	if err := c.Target.System.Start(rt); err != nil {
		_ = c.Target.System.Stop()
		return fmt.Errorf("core: baseline start: %w", err)
	}
	defer func() { _ = c.Target.System.Stop() }()
	for _, t := range c.Target.Tests {
		if err := t.Run(); err != nil {
			return fmt.Errorf("core: baseline test %s: %w", t.Name, err)
		}
	}
	return nil
}

func sortedNames(files suts.Files) []string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
