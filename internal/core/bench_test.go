package core

import (
	"context"
	"fmt"
	"testing"

	"conferr/internal/benchfixture"
	"conferr/internal/profile"
)

// The InjectionPipeline benchmarks measure the engine's own per-injection
// overhead — mutate, back-transform, serialize — on the synthetic
// ~1k-directive configuration of internal/benchfixture, the regime the
// incremental pipeline targets: each scenario touches one directive in one
// file, so the fast path re-processes 1/32nd of what the reference
// full-clone path re-processes.

func benchTarget() *Target {
	return &Target{System: benchfixture.System{}, Formats: benchfixture.Formats()}
}

func benchFaultload(b testing.TB) (*Target, *faultload) {
	b.Helper()
	tgt := benchTarget()
	c := &Campaign{Target: tgt, Generator: benchfixture.Gen{}}
	fl, err := c.generate()
	if err != nil {
		b.Fatal(err)
	}
	if want := benchfixture.Files * benchfixture.DirsPerFile; len(fl.scens) != want {
		b.Fatalf("scenarios = %d, want %d", len(fl.scens), want)
	}
	return tgt, fl
}

// BenchmarkInjectionPipeline/fast is the incremental engine;
// BenchmarkInjectionPipeline/reference is the full-clone engine on the
// identical faultload. ns/op and allocs/op compare directly.
func BenchmarkInjectionPipeline(b *testing.B) {
	b.Run("fast", func(b *testing.B) {
		tgt, fl := benchFaultload(b)
		if fl.inc == nil || fl.baseBytes == nil {
			b.Fatal("fast path not enabled")
		}
		scr := &scratch{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc := fl.scens[i%len(fl.scens)]
			if _, err := runOne(tgt, sc, fl, scr); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/injection")
	})
	b.Run("reference", func(b *testing.B) {
		tgt, fl := benchFaultload(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc := fl.scens[i%len(fl.scens)]
			if _, err := runOneReference(tgt, sc, fl.view, fl.viewSet, fl.sysSet); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/injection")
	})
}

// BenchmarkStreamingDispatch measures the streaming engine end to end —
// lazy generation, batched dispatch through the bounded queue, sequence-
// numbered reassembly, sink flush — against the same synthetic faultload
// the materialized campaign benchmarks run, at 1 and 8 workers. Comparing
// experiments/s with BenchmarkInjectionPipelineCampaign quantifies the
// dispatch machinery's overhead over slice indexing.
func BenchmarkStreamingDispatch(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			records := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := &Campaign{Target: benchTarget(), Generator: benchfixture.Gen{}}
				opts := []RunOption{WithParallelism(workers)}
				if workers > 1 {
					opts = append(opts,
						WithTargetFactory(func() (*Target, error) { return benchTarget(), nil }))
				}
				tally := &profile.TallySink{}
				n, err := c.RunStream(context.Background(), tally, opts...)
				if err != nil {
					b.Fatal(err)
				}
				records = n
			}
			if want := benchfixture.Files * benchfixture.DirsPerFile; records != want {
				b.Fatalf("streamed %d records, want %d", records, want)
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(records*b.N)/sec, "experiments/s")
			}
		})
	}
}

// BenchmarkInjectionPipelineCampaign runs whole campaigns over the
// synthetic config at 1 and 8 workers, reporting experiments/s — the
// end-to-end number the incremental pipeline and batched dispatch move.
func BenchmarkInjectionPipelineCampaign(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			records := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := &Campaign{Target: benchTarget(), Generator: benchfixture.Gen{}}
				opts := []RunOption{}
				if workers > 1 {
					opts = append(opts,
						WithParallelism(workers),
						WithTargetFactory(func() (*Target, error) { return benchTarget(), nil }))
				}
				p, err := c.RunContext(context.Background(), opts...)
				if err != nil {
					b.Fatal(err)
				}
				records = len(p.Records)
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(records*b.N)/sec, "experiments/s")
			}
		})
	}
}
