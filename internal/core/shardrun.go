package core

import (
	"context"
	"fmt"

	"conferr/internal/profile"
	"conferr/internal/scenario"
)

// This file is the remote half of the sharded engine: where shard.go fans
// a faultload out over in-process workers, RunShard executes exactly one
// shard — the unit a campaign worker daemon (cmd/sutd -serve) runs on
// behalf of a coordinator. Because generation is a pure function of
// (Seed, shard k of n), a remote worker re-derives its slice of the
// faultload locally from the campaign description alone: no scenario
// transfer, and the emitted (sequence, record) pairs merge with every
// other shard into the same deterministic profile a single-process run
// produces.

// ShardEmit receives one completed experiment with its global sequence
// number (the position the record holds in the unsharded stream).
// RunShard calls it from a single goroutine, in increasing sequence
// order. A non-nil error aborts the shard.
type ShardEmit func(seq int, rec profile.Record) error

// RunShard executes shard k of n of the campaign's faultload on one
// target, sequentially, emitting every record tagged with its global
// sequence number. Sequences below startSeq are skipped without running
// the experiment — the resume path: a coordinator that already holds a
// contiguous prefix re-requests the shard with startSeq set to its flush
// front and the worker generates past the prefix without re-injecting it.
//
// It returns the shard's total scenario count — skipped and executed
// alike, i.e. how many sequences of the unsharded stream this shard owns
// — which is what a coordinator sums across shards to gap-check the
// merged profile. Generators that support sharded generation
// (ShardedGenerator) derive the shard directly; any other generator is
// strided from its full stream, so every registered plugin is reachable
// from a worker daemon.
func (c *Campaign) RunShard(ctx context.Context, k, n, startSeq int, emit ShardEmit, opts ...RunOption) (int, error) {
	if n <= 0 || k < 0 || k >= n {
		return 0, fmt.Errorf("core: invalid shard %d of %d", k, n)
	}
	cfg := c.config(opts)
	if err := ctx.Err(); err != nil {
		return 0, err
	}

	var (
		fl   *faultload
		feed shardFeed
		err  error
	)
	if sg, ok := c.Generator.(ShardedGenerator); ok && CanShard(c.Generator) {
		fl, err = c.generateBase()
		if err != nil {
			return 0, err
		}
		feed = genFeed(c, fl, sg)
	} else {
		var src scenario.Source
		fl, src, err = c.generateStream()
		if err != nil {
			return 0, err
		}
		feed = strideFeed(src)
	}
	if cfg.baseline {
		if err := c.baselineOn(fl.sysSet, fl.baseBytes); err != nil {
			return 0, err
		}
	}

	t := c.Target
	if cfg.factory != nil {
		ft, ferr := cfg.factory()
		if ferr != nil {
			return 0, fmt.Errorf("core: building shard worker target: %w", ferr)
		}
		t = ft
	}
	t = wrapLifecycle(t, cfg)
	defer releaseSystem(t.System)

	scr := getScratch()
	defer putScratch(scr)

	total := 0
	var firstErr error
	_, gerr := feed(k, n, func(seq int, sc scenario.Scenario) bool {
		if err := ctx.Err(); err != nil {
			firstErr = err
			return false
		}
		total++
		if seq < startSeq {
			return true
		}
		rec, rerr := runOneSafe(t, sc, fl, scr)
		if eerr := emit(seq, rec); eerr != nil {
			firstErr = eerr
			return false
		}
		if cfg.observer != nil {
			cfg.observer(rec)
		}
		if rerr != nil && !cfg.keepGoing {
			firstErr = fmt.Errorf("core: scenario %s: %w", sc.ID, rerr)
			return false
		}
		return true
	})
	if firstErr != nil {
		return total, firstErr
	}
	if gerr != nil {
		return total, gerr
	}
	if err := ctx.Err(); err != nil {
		return total, err
	}
	return total, nil
}

// strideFeed adapts an opaque single-use stream to the shard feed
// contract by walking the whole stream and keeping stride k — the
// fallback for generators without native shard support. Generation cost
// stays O(faultload) per shard, but injection (the dominant cost) is
// still 1/n of it.
func strideFeed(src scenario.Source) shardFeed {
	return func(k, n int, emit func(int, scenario.Scenario) bool) (int, error) {
		seq := 0
		var gerr error
		src(func(sc scenario.Scenario, serr error) bool {
			if serr != nil {
				gerr = serr
				return false
			}
			s := seq
			seq++
			if s%n != k {
				return true
			}
			return emit(s, sc)
		})
		return seq, gerr
	}
}
