package core

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"conferr/internal/profile"
	"conferr/internal/scenario"
)

// This file implements the sharded campaign engine: every worker pulls its
// own strided sub-stream of the faultload (shard k of n), injects it on
// its private target, and emits (sequence, record) pairs. Sequence numbers
// are implied by the stride (worker k's j-th scenario is global sequence
// j*n+k), so the PR 4 central dispatcher — one goroutine pulling the
// generator, batching jobs through channels and recycling window tokens —
// disappears entirely. What remains between the workers and the sink is a
// single fixed-size ring buffer in which records are parked until their
// predecessors flush, drained cooperatively by whichever worker fills the
// next gap; order-insensitive sinks (profile.ShardableSink) skip even
// that and let each worker fold its shard's records locally.

// shardFeed drives worker k of n over its shard of the faultload: emit is
// called with each scenario and its global sequence number, in increasing
// sequence order, until the shard ends or emit returns false. A non-nil
// error reports a generation (or validation) failure; stopSeq is then the
// first sequence at or past the failure that this shard would have owned,
// which lets the engine flush everything before the failure point and
// agree with the sequential engine on where the stream broke.
type shardFeed func(k, n int, emit func(seq int, sc scenario.Scenario) bool) (stopSeq int, err error)

// sliceFeed shards a materialized, pre-validated faultload by index.
func sliceFeed(scens []scenario.Scenario) shardFeed {
	return func(k, n int, emit func(int, scenario.Scenario) bool) (int, error) {
		for i := k; i < len(scens); i += n {
			if !emit(i, scens[i]) {
				break
			}
		}
		return math.MaxInt, nil
	}
}

// genFeed shards a streaming generator: each worker derives its own
// identical stream (ShardedGenerator's purity contract) and keeps stride
// k. Scenarios are shape-validated as they stream past, exactly like the
// unsharded streaming path.
func genFeed(c *Campaign, fl *faultload, sg ShardedGenerator) shardFeed {
	return func(k, n int, emit func(int, scenario.Scenario) bool) (int, error) {
		j := 0
		var gerr error
		sg.GenerateShard(fl.viewSet, k, n)(func(sc scenario.Scenario, serr error) bool {
			if serr != nil {
				gerr = fmt.Errorf("core: generating scenarios: %w", serr)
				return false
			}
			// The j-th scenario of shard k sits at position j*n+k of the
			// unsharded stream, so the index in validation errors matches
			// the sequential engine's.
			seq := j*n + k
			if verr := sc.Validate(); verr != nil {
				gerr = fmt.Errorf("core: plugin %s emitted invalid scenario #%d: %w",
					c.Generator.Name(), seq, verr)
				return false
			}
			j++
			return emit(seq, sc)
		})
		return j*n + k, gerr
	}
}

// shardSlot parks one completed experiment in the reassembly ring.
type shardSlot struct {
	rec profile.Record
	err error
}

// shardRing is the ordered reassembly stage of the sharded engine: a
// fixed window of slots indexed by sequence modulo the window size.
// Workers acquire a slot before running a scenario (blocking while the
// flush front is more than a window behind), deposit the record after,
// and the depositor that fills the gap at the front drains every ready
// slot to the sink in exact sequence order — there is no separate
// reassembly goroutine to context-switch through.
type shardRing struct {
	mu    sync.Mutex
	space sync.Cond

	slots  []shardSlot
	filled []bool
	window int
	next   int // next sequence to flush

	// stopSeq fences the stream after a failure: scenarios at or past it
	// must not start, so the flush front can reach it gap-free. A
	// generation error fences at the failure sequence; an infrastructure
	// error fences just past the failing scenario (its record still
	// reaches the profile). stopped aborts outright (sink error, caller
	// cancellation): no new scenario starts, in-flight ones still deposit.
	stopSeq   int
	stopped   bool
	stopFlush bool
	// flushing marks one worker as the active drainer: it writes the sink
	// and calls the observer with the mutex RELEASED, so the other workers
	// keep injecting while records flush. batch is its scratch.
	flushing bool
	batch    []shardSlot

	flushed     int
	firstErr    error
	firstErrSeq int
	genErr      error
	genErrSeq   int

	ctx       context.Context
	sink      profile.Sink
	observer  func(profile.Record)
	keepGoing bool
}

func newShardRing(ctx context.Context, cfg runConfig, sink profile.Sink, window int) *shardRing {
	r := &shardRing{
		slots:       make([]shardSlot, window),
		filled:      make([]bool, window),
		batch:       make([]shardSlot, 0, maxFlushBatch),
		window:      window,
		stopSeq:     math.MaxInt,
		firstErrSeq: -1,
		ctx:         ctx,
		sink:        sink,
		observer:    cfg.observer,
		keepGoing:   cfg.keepGoing,
	}
	r.space.L = &r.mu
	return r
}

// acquire blocks until sequence seq may run (the flush front is within a
// window) and reports whether it still should.
func (r *shardRing) acquire(seq int) bool {
	r.mu.Lock()
	for !r.stopped && seq < r.stopSeq && seq >= r.next+r.window {
		r.space.Wait()
	}
	ok := !r.stopped && seq < r.stopSeq
	r.mu.Unlock()
	return ok
}

// noteErr records the earliest-sequence campaign error (locked).
func (r *shardRing) noteErr(seq int, err error) {
	if r.firstErrSeq < 0 || seq < r.firstErrSeq {
		r.firstErrSeq, r.firstErr = seq, err
	}
}

// deposit parks a completed experiment and, if the ring's front is ready
// and nobody else is draining, becomes the drainer. It reports whether
// the worker should keep going.
func (r *shardRing) deposit(seq int, rec profile.Record, err error) bool {
	r.mu.Lock()
	if err != nil && !r.keepGoing {
		// Abort: fence the stream at the failing scenario — everything
		// before it still runs and flushes, nothing after it starts — so
		// the profile is the exact contiguous prefix through the failing
		// scenario's own record, matching the sequential engine, and the
		// earliest failing scenario wins the returned error. (A hard stop
		// would strand lower sequences that no worker had started yet and
		// silently drop every completed record behind the gap.)
		r.noteErr(seq, fmt.Errorf("core: scenario %s: %w", rec.ScenarioID, err))
		if seq+1 < r.stopSeq {
			r.stopSeq = seq + 1
		}
		r.space.Broadcast()
	}
	i := seq % r.window
	r.slots[i] = shardSlot{rec: rec, err: err}
	r.filled[i] = true
	if !r.flushing && r.filled[r.next%r.window] {
		r.flushing = true
		r.drainLocked()
		r.flushing = false
	}
	cont := !r.stopped
	r.mu.Unlock()
	return cont
}

// maxFlushBatch bounds how many records the drainer takes out of the
// ring per I/O burst, so window space reopens to the other workers in
// steady increments.
const maxFlushBatch = 64

// drainLocked flushes ready slots to the sink in exact sequence order.
// Called with r.mu held and r.flushing set; it RELEASES the mutex around
// the sink writes and observer calls — the workers keep acquiring,
// injecting and depositing while I/O runs — and reacquires it to collect
// the next batch. Order is safe because the flushing flag admits exactly
// one drainer at a time.
func (r *shardRing) drainLocked() {
	for r.filled[r.next%r.window] {
		start := r.next
		batch := r.batch[:0]
		for r.filled[r.next%r.window] && len(batch) < maxFlushBatch {
			j := r.next % r.window
			batch = append(batch, r.slots[j])
			r.filled[j] = false
			r.slots[j] = shardSlot{}
			r.next++
		}
		r.batch = batch[:0]
		// Window space opened: wake workers blocked in acquire before the
		// I/O, not after.
		r.space.Broadcast()
		if r.stopFlush {
			// Post-cancellation (or post-sink-error) drain: slots are
			// discarded so the ring keeps emptying and workers can exit.
			continue
		}
		r.mu.Unlock()
		flushedHere := 0
		var werr error
		werrSeq := -1
		cancelled := false
		for bi, slot := range batch {
			if e := r.sink.Write(slot.rec); e != nil {
				werr, werrSeq = e, start+bi
				break
			}
			flushedHere++
			if r.observer != nil {
				r.observer(slot.rec)
			}
			// A caller-side cancellation stops the flush front at the
			// cancellation point — the contract is a profile cut short
			// there, not whatever happened to finish. Internal aborts
			// deliberately keep flushing to the sequence gap instead.
			if r.ctx.Err() != nil {
				cancelled = true
				break
			}
		}
		r.mu.Lock()
		r.flushed += flushedHere
		if werr != nil {
			r.noteErr(werrSeq, werr)
			r.stopFlush = true
			r.stopped = true
			r.space.Broadcast()
		}
		if cancelled {
			r.stopFlush = true
		}
	}
}

// stop aborts the run (caller cancellation observed by a worker).
func (r *shardRing) stop() {
	r.mu.Lock()
	r.stopped = true
	r.space.Broadcast()
	r.mu.Unlock()
}

// noteGenErr records a shard's generation failure and lowers the
// no-start fence to the earliest failure sequence.
func (r *shardRing) noteGenErr(seq int, err error) {
	r.mu.Lock()
	if r.genErr == nil || seq < r.genErrSeq {
		r.genErr, r.genErrSeq = err, seq
	}
	if seq < r.stopSeq {
		r.stopSeq = seq
	}
	r.space.Broadcast()
	r.mu.Unlock()
}

// buildWorkerTargets constructs one factory-built target per worker, up
// front, so a failing factory aborts before any experiment starts.
func buildWorkerTargets(cfg runConfig, workers int) ([]*Target, error) {
	targets := make([]*Target, workers)
	for w := range targets {
		t, err := cfg.factory()
		if err != nil {
			return nil, fmt.Errorf("core: building worker %d target: %w", w, err)
		}
		targets[w] = wrapLifecycle(t, cfg)
	}
	return targets, nil
}

// releaseTargets hands every worker system back (to its pool, or to a
// real shutdown) once a run's workers have exited.
func releaseTargets(targets []*Target) {
	for _, t := range targets {
		releaseSystem(t.System)
	}
}

// runSharded executes the faultload over cfg.parallelism workers, each
// pulling its own shard from feed. Records reach the sink in exact
// sequence order through the reassembly ring — unless the sink is
// order-insensitive (profile.ShardableSink) and no observer needs ordered
// records, in which case every worker folds straight into its own
// sub-sink and the engine synchronizes only on errors.
func runSharded(ctx context.Context, cfg runConfig, fl *faultload, feed shardFeed, sink profile.Sink) (int, error) {
	if cfg.factory == nil {
		return 0, errParallelNeedsFactory
	}
	workers := cfg.parallelism
	targets, err := buildWorkerTargets(cfg, workers)
	if err != nil {
		return 0, err
	}
	defer releaseTargets(targets)
	if ss, ok := sink.(profile.ShardableSink); ok && profile.CanShardSink(sink) && cfg.observer == nil {
		return runShardedBypass(ctx, cfg, fl, feed, ss, targets)
	}

	ring := newShardRing(ctx, cfg, sink, streamWindow(workers))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(k int, t *Target) {
			defer wg.Done()
			// Worker-loop panic boundary: experiment panics are contained
			// in runOneSafe, so a panic here comes from the feed (a
			// generator bug) or the loop itself. Depositing a synthetic
			// infrastructure-error record for the in-flight sequence keeps
			// the ring's gap-free flush intact; between scenarios the
			// panic is charged as a generation error past every completed
			// record.
			cur := -1
			defer func() {
				if v := recover(); v != nil {
					err := fmt.Errorf("core: worker panic: %v\n%s", v, debug.Stack())
					if cur >= 0 {
						ring.deposit(cur, profile.Record{
							Outcome: profile.InfrastructureError,
							Detail:  err.Error(),
						}, err)
					} else {
						ring.noteGenErr(math.MaxInt, err)
					}
				}
			}()
			scr := getScratch()
			defer putScratch(scr)
			stopSeq, gerr := feed(k, workers, func(seq int, sc scenario.Scenario) bool {
				if ctx.Err() != nil {
					ring.stop()
					return false
				}
				if !ring.acquire(seq) {
					return false
				}
				cur = seq
				rec, rerr := runOneSafe(t, sc, fl, scr)
				cur = -1
				return ring.deposit(seq, rec, rerr)
			})
			if gerr != nil {
				ring.noteGenErr(stopSeq, gerr)
			}
		}(w, targets[w])
	}
	wg.Wait()

	if ring.firstErr != nil {
		return ring.flushed, ring.firstErr
	}
	if ring.genErr != nil {
		return ring.flushed, ring.genErr
	}
	if err := ctx.Err(); err != nil {
		return ring.flushed, err
	}
	return ring.flushed, nil
}

// bypassState is the minimal shared state of the order-insensitive path:
// per-record work touches only atomic stop checks; the mutex guards the
// rare error bookkeeping.
type bypassState struct {
	mu          sync.Mutex
	stopped     atomic.Bool
	stopSeq     atomic.Int64
	firstErr    error
	firstErrSeq int
	genErr      error
	genErrSeq   int
}

func (st *bypassState) noteErr(seq int, err error) {
	st.mu.Lock()
	if st.firstErrSeq < 0 || seq < st.firstErrSeq {
		st.firstErr, st.firstErrSeq = err, seq
	}
	st.mu.Unlock()
}

// fail aborts outright (sink errors — nothing sensible can be written
// anymore).
func (st *bypassState) fail(seq int, err error) {
	st.noteErr(seq, err)
	st.stopped.Store(true)
}

// failFenced records an infrastructure failure and fences the stream
// just past it, mirroring the ordered ring: scenarios before the failure
// still run, nothing after it starts.
func (st *bypassState) failFenced(seq int, err error) {
	st.noteErr(seq, err)
	st.lowerStopSeq(seq + 1)
}

func (st *bypassState) lowerStopSeq(seq int) {
	for {
		cur := st.stopSeq.Load()
		if int64(seq) >= cur || st.stopSeq.CompareAndSwap(cur, int64(seq)) {
			return
		}
	}
}

func (st *bypassState) noteGenErr(seq int, err error) {
	st.mu.Lock()
	if st.genErr == nil || seq < st.genErrSeq {
		st.genErr, st.genErrSeq = err, seq
	}
	st.mu.Unlock()
	st.lowerStopSeq(seq)
}

// runShardedBypass is runSharded without reassembly: each worker writes
// its shard's records to its own sub-sink as they complete. The record
// count under a mid-stream failure may include scenarios past the failure
// point that other workers had already finished — an order-insensitive
// sink cannot tell, and the returned error still names the earliest
// failure.
func runShardedBypass(ctx context.Context, cfg runConfig, fl *faultload, feed shardFeed, ss profile.ShardableSink, targets []*Target) (int, error) {
	workers := len(targets)
	subs := make([]profile.Sink, workers)
	for k := range subs {
		subs[k] = ss.ShardSink(k, workers)
	}
	st := &bypassState{firstErrSeq: -1, genErrSeq: -1}
	st.stopSeq.Store(math.MaxInt64)

	counts := make([]int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(k int, t *Target, sub profile.Sink) {
			defer wg.Done()
			// Worker-loop panic boundary, mirroring runSharded's: a feed
			// or loop panic becomes a fenced infrastructure error instead
			// of process death.
			cur := -1
			defer func() {
				if v := recover(); v != nil {
					err := fmt.Errorf("core: worker panic: %v\n%s", v, debug.Stack())
					if cur >= 0 {
						st.failFenced(cur, err)
					} else {
						st.noteGenErr(math.MaxInt, err)
					}
				}
			}()
			scr := getScratch()
			defer putScratch(scr)
			n := 0
			stopSeq, gerr := feed(k, workers, func(seq int, sc scenario.Scenario) bool {
				if st.stopped.Load() || int64(seq) >= st.stopSeq.Load() {
					return false
				}
				if ctx.Err() != nil {
					st.stopped.Store(true)
					return false
				}
				cur = seq
				rec, rerr := runOneSafe(t, sc, fl, scr)
				cur = -1
				if werr := sub.Write(rec); werr != nil {
					st.fail(seq, werr)
					return false
				}
				n++
				if rerr != nil && !cfg.keepGoing {
					st.failFenced(seq, fmt.Errorf("core: scenario %s: %w", rec.ScenarioID, rerr))
					return false
				}
				return true
			})
			counts[k] = n
			if gerr != nil {
				st.noteGenErr(stopSeq, gerr)
			}
		}(w, targets[w], subs[w])
	}
	wg.Wait()

	total := 0
	for _, n := range counts {
		total += n
	}
	if st.firstErr != nil {
		return total, st.firstErr
	}
	if st.genErr != nil {
		return total, st.genErr
	}
	if err := ctx.Err(); err != nil {
		return total, err
	}
	return total, nil
}
