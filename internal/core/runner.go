package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/sutpool"
	"conferr/internal/suts"
)

// TargetFactory constructs a fresh, independent Target for one campaign
// worker. Runs with a factory execute every experiment on factory-built
// targets so that start/stop cycles and port bindings of concurrent
// experiments — within one campaign or across campaigns of a suite —
// never collide.
type TargetFactory func() (*Target, error)

// runConfig collects the per-run settings of RunContext.
type runConfig struct {
	parallelism int
	observer    func(profile.Record)
	keepGoing   bool
	baseline    bool
	factory     TargetFactory
	lifecycle   sutpool.Mode
	counters    *sutpool.Counters
	deadlines   Deadlines
}

// RunOption configures a single RunContext invocation.
type RunOption func(*runConfig)

// WithParallelism sets the number of campaign workers. n <= 0 selects
// GOMAXPROCS. Any value above 1 requires a target factory (see
// WithTargetFactory); the default is 1, the sequential engine of the
// paper.
func WithParallelism(n int) RunOption {
	return func(cfg *runConfig) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		cfg.parallelism = n
	}
}

// WithObserver streams every record to fn as experiments complete,
// overriding Campaign.Observer for this run. Calls are serialized (fn
// needs no locking) and arrive in scenario order: under parallelism the
// reassembly stage invokes fn as each record is flushed to its slot in the
// deterministic, generator-ordered profile.
func WithObserver(fn func(profile.Record)) RunOption {
	return func(cfg *runConfig) { cfg.observer = fn }
}

// WithKeepGoing overrides Campaign.KeepGoing for this run: when true,
// infrastructure errors are recorded as not-applicable and the campaign
// continues instead of aborting.
func WithKeepGoing(keep bool) RunOption {
	return func(cfg *runConfig) { cfg.keepGoing = keep }
}

// WithBaselineCheck verifies, before any injection, that the unmutated
// configuration starts the SUT and passes every functional test — the
// invariant that makes a resilience profile meaningful.
func WithBaselineCheck() RunOption {
	return func(cfg *runConfig) { cfg.baseline = true }
}

// WithTargetFactory supplies the per-worker target constructor. The
// factory must produce targets that inject the same faultload as the
// campaign's primary target (same formats, equivalent functional tests).
// When a factory is present, every worker — sequential runs included —
// runs on a factory-built target; the campaign's primary target serves
// faultload generation and the baseline check only, which is what lets a
// Suite run several campaigns of one system family concurrently without
// their experiments contending for the primary port.
func WithTargetFactory(f TargetFactory) RunOption {
	return func(cfg *runConfig) { cfg.factory = f }
}

// WithLifecycle selects how worker SUTs are driven through experiments:
// sutpool.Cold (the default start/stop-per-experiment engine),
// sutpool.Reload (warm instances re-configured via suts.Reloader), or
// sutpool.Validate (parse-only checks via suts.Validator, functional
// tests skipped). Worker targets whose systems are not already
// lifecycle-managed (for example by a facade-level sutpool.Pool) are
// wrapped in a sutpool.Instance for the run; SUTs lacking the capability
// fall back to cold starts.
func WithLifecycle(mode sutpool.Mode) RunOption {
	return func(cfg *runConfig) { cfg.lifecycle = mode }
}

// WithLifecycleCounters shares a counter set with the run's
// lifecycle-wrapped instances, exposing cold-start/reload/validate
// tallies to the caller.
func WithLifecycleCounters(c *sutpool.Counters) RunOption {
	return func(cfg *runConfig) { cfg.counters = c }
}

// wrapLifecycle adapts one worker target to the run's lifecycle mode and
// arms the phase watchdog when deadlines are configured. Cold runs and
// systems that are already lifecycle-managed (behind any chain of
// Unwrap-able wrappers) skip the lifecycle wrap; without deadlines the
// watchdog wrap is skipped entirely — zero overhead on the happy path.
func wrapLifecycle(t *Target, cfg runConfig) *Target {
	if cfg.lifecycle != sutpool.Cold && !managedSystem(t.System) {
		tt := *t
		tt.System = sutpool.NewInstance(t.System, cfg.lifecycle, cfg.counters)
		t = &tt
	}
	if cfg.deadlines.Enabled() {
		t = wrapWatchdog(t, cfg.deadlines)
	}
	return t
}

// managedSystem walks a wrapper chain looking for a lifecycle-managed
// system.
func managedSystem(sys suts.System) bool {
	for sys != nil {
		if _, ok := sys.(sutpool.Managed); ok {
			return true
		}
		u, ok := sys.(interface{ Unwrap() suts.System })
		if !ok {
			return false
		}
		sys = u.Unwrap()
	}
	return false
}

// RunContext executes the campaign under a context. The faultload is
// generated exactly once — materialized and validated up front — and then
// fed through the streaming dispatch engine over WithParallelism workers,
// each owning its own SUT instance. Whatever the parallelism, the returned
// profile lists records in scenario order and is deterministic for a fixed
// faultload.
//
// On cancellation, RunContext returns ctx.Err() together with the profile
// of every experiment that completed and flushed in order. On an
// infrastructure error without WithKeepGoing, the campaign aborts:
// in-flight experiments finish, no new ones start, and the error of the
// earliest failing scenario is returned.
func (c *Campaign) RunContext(ctx context.Context, opts ...RunOption) (*profile.Profile, error) {
	cfg := c.config(opts)
	prof := &profile.Profile{
		System:    c.Target.System.Name(),
		Generator: c.Generator.Name(),
	}
	if err := ctx.Err(); err != nil {
		return prof, err
	}
	fl, err := c.generate()
	if err != nil {
		return prof, err
	}
	if cfg.baseline {
		if err := c.baselineOn(fl.sysSet, fl.baseBytes); err != nil {
			return prof, err
		}
	}
	if cfg.parallelism > len(fl.scens) {
		cfg.parallelism = len(fl.scens)
	}
	sink := &profile.MemorySink{Profile: prof}
	if cfg.parallelism > 1 {
		// Materialized faultloads shard by index: every worker walks the
		// validated slice at its own stride, no dispatcher in between.
		_, err = runSharded(ctx, cfg, fl, sliceFeed(fl.scens), sink)
		return prof, err
	}
	_, err = c.runStream(ctx, cfg, fl, scenario.FromSlice(fl.scens), sink)
	return prof, err
}

// RunStream executes the campaign's faultload as a pull stream: scenarios
// are drawn lazily from the generator (see StreamingGenerator), dispatched
// to the workers through a bounded queue, and every record is flushed to
// the sink in scenario order as soon as its predecessors have completed.
// Nothing grows with the faultload — not a scenario slice, not a profile —
// so a campaign's size is bounded by the stream, not by memory.
//
// It returns the number of records flushed to the sink. The error contract
// matches RunContext; a mid-stream generation error additionally arrives
// after the records preceding it have been flushed.
func (c *Campaign) RunStream(ctx context.Context, sink profile.Sink, opts ...RunOption) (int, error) {
	cfg := c.config(opts)
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if sg, ok := c.Generator.(ShardedGenerator); ok && cfg.parallelism > 1 && CanShard(c.Generator) {
		// Sharded generation: every worker derives its own strided
		// sub-stream of the (pure) faultload and runs it independently —
		// generation itself scales with the workers instead of
		// serializing behind one dispatch goroutine.
		fl, err := c.generateBase()
		if err != nil {
			return 0, err
		}
		if cfg.baseline {
			if err := c.baselineOn(fl.sysSet, fl.baseBytes); err != nil {
				return 0, err
			}
		}
		return runSharded(ctx, cfg, fl, genFeed(c, fl, sg), sink)
	}
	fl, src, err := c.generateStream()
	if err != nil {
		return 0, err
	}
	if cfg.baseline {
		if err := c.baselineOn(fl.sysSet, fl.baseBytes); err != nil {
			return 0, err
		}
	}
	return c.runStream(ctx, cfg, fl, src, sink)
}

// config folds the campaign defaults and the run options.
func (c *Campaign) config(opts []RunOption) runConfig {
	cfg := runConfig{
		parallelism: 1,
		observer:    c.Observer,
		keepGoing:   c.KeepGoing,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// runStream is the dispatch engine shared by RunContext and RunStream:
// sequential in-line when one worker suffices, fan-out with sequence-
// numbered reassembly otherwise.
// errParallelNeedsFactory is the shared complaint of every parallel path.
var errParallelNeedsFactory = errors.New("core: parallel run requires a target factory (WithTargetFactory)")

func (c *Campaign) runStream(ctx context.Context, cfg runConfig, fl *faultload, src scenario.Source, sink profile.Sink) (int, error) {
	if cfg.parallelism > 1 && cfg.factory == nil {
		return 0, errParallelNeedsFactory
	}
	if cfg.parallelism <= 1 {
		t := c.Target
		if cfg.factory != nil {
			// A factory-built target even for the single worker: see
			// WithTargetFactory.
			ft, err := cfg.factory()
			if err != nil {
				return 0, fmt.Errorf("core: building worker target: %w", err)
			}
			t = ft
		}
		t = wrapLifecycle(t, cfg)
		defer releaseSystem(t.System)
		return runStreamSequential(ctx, cfg, t, fl, src, sink)
	}
	return runStreamParallel(ctx, cfg, fl, src, sink)
}

// runStreamSequential pulls scenarios one at a time and runs them in
// line — the paper's original engine, plus cancellation between
// experiments.
func runStreamSequential(ctx context.Context, cfg runConfig, t *Target, fl *faultload, src scenario.Source, sink profile.Sink) (int, error) {
	scr := getScratch()
	defer putScratch(scr)
	n := 0
	var firstErr error
	src(func(sc scenario.Scenario, serr error) bool {
		if err := ctx.Err(); err != nil {
			firstErr = err
			return false
		}
		if serr != nil {
			firstErr = serr
			return false
		}
		rec, err := runOneSafe(t, sc, fl, scr)
		if werr := sink.Write(rec); werr != nil {
			firstErr = werr
			return false
		}
		n++
		if cfg.observer != nil {
			cfg.observer(rec)
		}
		if err != nil && !cfg.keepGoing {
			firstErr = fmt.Errorf("core: scenario %s: %w", sc.ID, err)
			return false
		}
		return true
	})
	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			return n, err
		}
	}
	return n, firstErr
}

// Dispatch tuning. Batches ramp from 1 to maxStreamBatch: small faultloads
// spread scenario-by-scenario across the workers, while long streams
// amortize channel synchronization over 64 scenarios per operation. The
// window caps how many scenarios may be in flight — dispatched but not yet
// flushed to the sink in order — which bounds the reassembly buffer and,
// with it, the engine's memory footprint on unbounded streams.
const maxStreamBatch = 64

// streamWindow sizes the in-flight window for a worker count.
func streamWindow(workers int) int {
	w := workers * maxStreamBatch * 4
	if w < 256 {
		w = 256
	}
	return w
}

// runStreamParallel fans an opaque single-use stream out over a worker
// pool — the fallback for generators without shard support (the sharded
// engine in shard.go handles the rest). A dispatcher goroutine pulls
// scenarios from the source, tags each with its sequence number and hands
// the workers batches through a bounded queue; workers own private
// targets and emit (seq, record) results; the reassembly loop flushes
// records to the sink in exact sequence order, so the output is
// deterministic regardless of worker scheduling.
func runStreamParallel(ctx context.Context, cfg runConfig, fl *faultload, src scenario.Source, sink profile.Sink) (int, error) {
	workers := cfg.parallelism

	// Every worker gets its own factory-built target, built up front so a
	// failing factory aborts before any experiment starts.
	targets, err := buildWorkerTargets(cfg, workers)
	if err != nil {
		return 0, err
	}
	defer releaseTargets(targets)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		seq int
		sc  scenario.Scenario
	}
	type result struct {
		seq int
		rec profile.Record
		err error
	}

	window := streamWindow(workers)
	jobs := make(chan []job, workers)
	results := make(chan result, window)
	// tokens bounds the scenarios in flight: the dispatcher acquires one
	// per scenario, the reassembly loop releases it when the record is
	// flushed in order. A straggling worker can therefore delay the flush
	// front, but never let the reassembly buffer grow past the window.
	tokens := make(chan struct{}, window)

	var genErr error // written by the dispatcher, read after dispatchDone
	dispatchDone := make(chan struct{})
	go func() {
		defer close(jobs)
		defer close(dispatchDone)
		batchSize := 1
		batch := make([]job, 0, maxStreamBatch)
		seq := 0
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			out := batch
			batch = make([]job, 0, maxStreamBatch)
			if batchSize < maxStreamBatch {
				batchSize *= 2
			}
			select {
			case jobs <- out:
				return true
			case <-runCtx.Done():
				return false
			}
		}
		src(func(sc scenario.Scenario, err error) bool {
			if err != nil {
				genErr = err
				return false
			}
			select {
			case tokens <- struct{}{}:
			case <-runCtx.Done():
				return false
			}
			batch = append(batch, job{seq, sc})
			seq++
			if len(batch) >= batchSize {
				return flush()
			}
			return true
		})
		flush()
	}()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(t *Target) {
			defer wg.Done()
			// Worker-loop panic boundary: runOneSafe contains experiment
			// panics, so anything reaching here is a bug in the loop
			// itself. Convert it into an infrastructure-error result for
			// the in-flight scenario (whose window token it holds, so the
			// send cannot block) and abort the run instead of killing the
			// process.
			cur := -1
			defer func() {
				if v := recover(); v != nil {
					err := fmt.Errorf("core: worker panic: %v\n%s", v, debug.Stack())
					if cur >= 0 {
						results <- result{cur, profile.Record{
							Outcome: profile.InfrastructureError,
							Detail:  err.Error(),
						}, err}
					}
					cancel()
				}
			}()
			scr := getScratch()
			defer putScratch(scr)
			for batch := range jobs {
				for _, j := range batch {
					if runCtx.Err() != nil {
						return
					}
					cur = j.seq
					rec, err := runOneSafe(t, j.sc, fl, scr)
					cur = -1
					// The send never blocks: every in-flight scenario holds
					// a window token, so at most `window` results are ever
					// outstanding — exactly the channel's capacity. Sending
					// unconditionally (no Done branch) guarantees a
					// completed experiment's record is never dropped, which
					// the abort error below depends on.
					results <- result{j.seq, rec, err}
					if err != nil && !cfg.keepGoing {
						// Abort: in-flight experiments on other workers
						// finish, no new ones start.
						cancel()
						return
					}
				}
			}
		}(targets[w])
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reassembly: records are flushed to the sink in exact sequence order;
	// anything stranded past a gap by an abort or cancellation is dropped,
	// mirroring the sequential engine's contiguous-prefix profile.
	pending := make(map[int]result, window)
	next, flushed := 0, 0
	var firstErr error
	firstErrSeq := -1
	noteErr := func(seq int, err error) {
		if firstErrSeq < 0 || seq < firstErrSeq {
			firstErrSeq, firstErr = seq, err
		}
	}
	stopFlush := false
	for r := range results {
		// Infrastructure errors are noted at receive time, not flush time:
		// the abort may strand the failing record behind a sequence gap
		// (an earlier scenario cancelled before completing), and the
		// earliest failing scenario must still win the returned error.
		if r.err != nil && !cfg.keepGoing {
			noteErr(r.seq, fmt.Errorf("core: scenario %s: %w", r.rec.ScenarioID, r.err))
		}
		pending[r.seq] = r
		for {
			pr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if !stopFlush {
				if werr := sink.Write(pr.rec); werr != nil {
					stopFlush = true
					noteErr(pr.seq, werr)
					cancel()
				} else {
					flushed++
					if cfg.observer != nil {
						cfg.observer(pr.rec)
					}
					// A caller-side cancellation (the parent context,
					// typically triggered from an observer) also stops the
					// flush front, not just the dispatch: a fast faultload
					// can be fully in flight when the cancel lands, and the
					// contract is a profile cut short at the cancellation
					// point, not whatever happened to finish. An internal
					// abort (a worker's infrastructure error cancelling
					// runCtx) deliberately does NOT stop the flush: records
					// keep flushing to the natural sequence gap, so —
					// as in the sequential engine — the failing scenario's
					// own record reaches the profile. Results keep draining
					// below so the workers and dispatcher can exit.
					if ctx.Err() != nil {
						stopFlush = true
					}
				}
			}
			next++
			<-tokens
		}
	}
	<-dispatchDone

	if firstErr != nil {
		return flushed, firstErr
	}
	if genErr != nil {
		return flushed, genErr
	}
	if err := ctx.Err(); err != nil {
		return flushed, err
	}
	return flushed, nil
}
