package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"conferr/internal/profile"
)

// TargetFactory constructs a fresh, independent Target for one campaign
// worker. Parallel runs call it once per additional worker so that every
// worker owns its own SUT instance: start/stop cycles and port bindings of
// concurrent experiments never collide.
type TargetFactory func() (*Target, error)

// runConfig collects the per-run settings of RunContext.
type runConfig struct {
	parallelism int
	observer    func(profile.Record)
	keepGoing   bool
	baseline    bool
	factory     TargetFactory
}

// RunOption configures a single RunContext invocation.
type RunOption func(*runConfig)

// WithParallelism sets the number of campaign workers. n <= 0 selects
// GOMAXPROCS. Any value above 1 requires a target factory (see
// WithTargetFactory); the default is 1, the sequential engine of the
// paper.
func WithParallelism(n int) RunOption {
	return func(cfg *runConfig) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		cfg.parallelism = n
	}
}

// WithObserver streams every record to fn as experiments complete,
// overriding Campaign.Observer for this run. Under parallelism the calls
// are serialized (fn needs no locking) but arrive in completion order, not
// scenario order; the returned profile is always scenario-ordered.
func WithObserver(fn func(profile.Record)) RunOption {
	return func(cfg *runConfig) { cfg.observer = fn }
}

// WithKeepGoing overrides Campaign.KeepGoing for this run: when true,
// infrastructure errors are recorded as not-applicable and the campaign
// continues instead of aborting.
func WithKeepGoing(keep bool) RunOption {
	return func(cfg *runConfig) { cfg.keepGoing = keep }
}

// WithBaselineCheck verifies, before any injection, that the unmutated
// configuration starts the SUT and passes every functional test — the
// invariant that makes a resilience profile meaningful.
func WithBaselineCheck() RunOption {
	return func(cfg *runConfig) { cfg.baseline = true }
}

// WithTargetFactory supplies the per-worker target constructor parallel
// runs need. The factory must produce targets that inject the same
// faultload as the campaign's primary target (same formats, equivalent
// functional tests). Every worker — including the first — runs on a
// factory-built target; the campaign's primary target serves faultload
// generation and the baseline check, and sequential runs.
func WithTargetFactory(f TargetFactory) RunOption {
	return func(cfg *runConfig) { cfg.factory = f }
}

// RunContext executes the campaign under a context. The faultload is
// generated exactly once — from the campaign's primary target — and then
// fanned out over WithParallelism workers, each owning its own SUT
// instance. Whatever the parallelism, the returned profile lists records
// in scenario order and is deterministic for a fixed faultload.
//
// On cancellation, RunContext returns ctx.Err() together with the profile
// of every experiment that completed. On an infrastructure error without
// WithKeepGoing, the campaign aborts: in-flight experiments finish, no new
// ones start, and the error of the earliest failing scenario is returned.
func (c *Campaign) RunContext(ctx context.Context, opts ...RunOption) (*profile.Profile, error) {
	cfg := runConfig{
		parallelism: 1,
		observer:    c.Observer,
		keepGoing:   c.KeepGoing,
	}
	for _, opt := range opts {
		opt(&cfg)
	}

	prof := &profile.Profile{
		System:    c.Target.System.Name(),
		Generator: c.Generator.Name(),
	}
	if err := ctx.Err(); err != nil {
		return prof, err
	}

	fl, err := c.generate()
	if err != nil {
		return prof, err
	}
	if cfg.baseline {
		if err := c.baselineOn(fl.sysSet, fl.baseBytes); err != nil {
			return prof, err
		}
	}

	workers := cfg.parallelism
	if workers > len(fl.scens) {
		workers = len(fl.scens)
	}
	if workers <= 1 {
		return c.runSequential(ctx, cfg, prof, fl)
	}
	return c.runParallel(ctx, cfg, prof, fl, workers)
}

// runSequential is the single-worker path: the paper's original engine,
// plus cancellation between experiments.
func (c *Campaign) runSequential(ctx context.Context, cfg runConfig, prof *profile.Profile, fl *faultload) (*profile.Profile, error) {
	scr := &scratch{}
	for _, sc := range fl.scens {
		if err := ctx.Err(); err != nil {
			return prof, err
		}
		rec, err := runOne(c.Target, sc, fl, scr)
		prof.Add(rec)
		if cfg.observer != nil {
			cfg.observer(rec)
		}
		if err != nil && !cfg.keepGoing {
			return prof, fmt.Errorf("core: scenario %s: %w", sc.ID, err)
		}
	}
	return prof, nil
}

// batchSize picks how many scenario indices one channel operation hands a
// worker: enough to amortize channel synchronization on million-scenario
// faultloads, small enough that every worker still gets several batches
// (so a straggler cannot strand a long tail) and cancellation stays
// responsive.
func batchSize(scenarios, workers int) int {
	b := scenarios / (workers * 8)
	if b < 1 {
		return 1
	}
	if b > 256 {
		return 256
	}
	return b
}

// runParallel fans the faultload out over a worker pool. Each worker owns
// a private Target; results land in a slot per scenario index and are
// merged in scenario order, so the profile is deterministic regardless of
// scheduling.
func (c *Campaign) runParallel(ctx context.Context, cfg runConfig, prof *profile.Profile, fl *faultload, workers int) (*profile.Profile, error) {
	if cfg.factory == nil {
		return prof, errors.New("core: parallel run requires a target factory (WithTargetFactory)")
	}

	// Every worker gets its own factory-built target (the primary only
	// generated the faultload), built up front so a failing factory
	// aborts before any experiment starts.
	targets := make([]*Target, workers)
	for w := range targets {
		t, err := cfg.factory()
		if err != nil {
			return prof, fmt.Errorf("core: building worker %d target: %w", w, err)
		}
		targets[w] = t
	}

	type slot struct {
		rec  profile.Record
		err  error
		done bool
	}
	// Result slots are index-disjoint — each scenario index is handed to
	// exactly one worker — so slot writes need no lock; wg.Wait()
	// publishes them to the merging goroutine.
	results := make([]slot, len(fl.scens))

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Dispatch index batches instead of single indices: one channel
	// operation per batchSize experiments.
	type span struct{ lo, hi int }
	chunk := batchSize(len(fl.scens), workers)
	jobs := make(chan span, workers)
	go func() {
		defer close(jobs)
		for lo := 0; lo < len(fl.scens); lo += chunk {
			hi := lo + chunk
			if hi > len(fl.scens) {
				hi = len(fl.scens)
			}
			select {
			case jobs <- span{lo, hi}:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var (
		wg    sync.WaitGroup
		obsMu sync.Mutex // serializes the observer stream, nothing else
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(t *Target) {
			defer wg.Done()
			scr := &scratch{}
			for sp := range jobs {
				for i := sp.lo; i < sp.hi; i++ {
					if runCtx.Err() != nil {
						return
					}
					rec, err := runOne(t, fl.scens[i], fl, scr)
					results[i] = slot{rec: rec, err: err, done: true}
					if cfg.observer != nil {
						// The observer contract serializes calls, but a
						// slow observer must only stall the stream — not
						// the result slots of the other workers.
						obsMu.Lock()
						cfg.observer(rec)
						obsMu.Unlock()
					}
					if err != nil && !cfg.keepGoing {
						cancel()
						return
					}
				}
			}
		}(targets[w])
	}
	wg.Wait()

	// Deterministic merge: scenario order, skipping slots the abort or
	// cancellation left unprocessed. The earliest failing scenario wins
	// the returned error, mirroring the sequential engine.
	var firstErr error
	for i, r := range results {
		if !r.done {
			continue
		}
		prof.Add(r.rec)
		if r.err != nil && !cfg.keepGoing && firstErr == nil {
			firstErr = fmt.Errorf("core: scenario %s: %w", fl.scens[i].ID, r.err)
		}
	}
	if firstErr != nil {
		return prof, firstErr
	}
	if err := ctx.Err(); err != nil {
		return prof, err
	}
	return prof, nil
}
