package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"conferr/internal/confnode"
	"conferr/internal/formats"
	"conferr/internal/formats/kv"
	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/sutpool"
	"conferr/internal/suts"
)

// wedgeSystem is the deliberately-hostile SUT of the watchdog tests: it
// blocks inside Start on chosen calls — until a channel closes (a
// permanent wedge) or for a fixed duration (a transient one) — and
// counts every lifecycle call behind a mutex, because a watchdog
// abandonment makes overlap between a stuck call and the teardown
// goroutine part of the contract under test.
type wedgeSystem struct {
	mu     sync.Mutex
	starts int
	stops  int

	wedgeAt  map[int]bool  // 1-based Start calls that wedge
	wedgeDur time.Duration // 0: block until release closes
	release  chan struct{}
}

func (s *wedgeSystem) Name() string { return "wedge" }

func (s *wedgeSystem) DefaultConfig() suts.Files {
	return suts.Files{"w.conf": []byte("key = value\n")}
}

func (s *wedgeSystem) Start(suts.Files) error {
	s.mu.Lock()
	s.starts++
	n := s.starts
	s.mu.Unlock()
	if s.wedgeAt[n] {
		if s.wedgeDur > 0 {
			time.Sleep(s.wedgeDur)
		} else {
			<-s.release
		}
	}
	return nil
}

func (s *wedgeSystem) Stop() error {
	s.mu.Lock()
	s.stops++
	s.mu.Unlock()
	return nil
}

// wedgeScens builds n trivial scenarios (no mutation — every scenario
// reaches Start with the baseline bytes).
func wedgeScens(n int) []scenario.Scenario {
	scens := make([]scenario.Scenario, n)
	for i := range scens {
		scens[i] = scenario.Scenario{
			ID:    fmt.Sprintf("w/%02d", i),
			Class: "wedge",
			Apply: func(*confnode.Set) error { return nil },
		}
	}
	return scens
}

func wedgeTarget(sys suts.System, tests []suts.Test) *Target {
	return &Target{
		System:  sys,
		Formats: map[string]formats.Format{"w.conf": kv.Format{}},
		Tests:   tests,
	}
}

// TestWatchdogPermanentWedgeCannotStallCampaign is the headline
// acceptance test: a SUT that blocks forever in Start must not stall the
// campaign. Every affected experiment times out within its deadline and
// is recorded as an infrastructure error; every scenario keeps its seq.
func TestWatchdogPermanentWedgeCannotStallCampaign(t *testing.T) {
	sys := &wedgeSystem{wedgeAt: map[int]bool{3: true}, release: make(chan struct{})}
	t.Cleanup(func() { close(sys.release) })
	c := &Campaign{Target: wedgeTarget(sys, nil), Generator: sliceGen{wedgeScens(10)}}
	begin := time.Now()
	prof, err := c.RunContext(context.Background(),
		WithDeadlines(Deadlines{Phase: 30 * time.Millisecond}))
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("campaign took %v — the wedge stalled it", elapsed)
	}
	if len(prof.Records) != 10 {
		t.Fatalf("records = %d, want 10", len(prof.Records))
	}
	for i, r := range prof.Records {
		if want := fmt.Sprintf("w/%02d", i); r.ScenarioID != want {
			t.Errorf("record %d = %s, want %s (seq order broken)", i, r.ScenarioID, want)
		}
	}
	// Scenarios before the wedge ran normally; the wedged one and every
	// one after it (their phases queue behind the still-stuck Start) are
	// infrastructure errors carrying phase + deadline detail.
	for i, r := range prof.Records {
		if i < 2 {
			if r.Outcome != profile.Ignored {
				t.Errorf("record %d outcome = %v, want ignored", i, r.Outcome)
			}
			continue
		}
		if r.Outcome != profile.InfrastructureError {
			t.Errorf("record %d outcome = %v, want infrastructure-error", i, r.Outcome)
		}
	}
	wedged := prof.Records[2]
	if !strings.Contains(wedged.Detail, "watchdog") || !strings.Contains(wedged.Detail, "start phase") {
		t.Errorf("wedged record detail = %q, want watchdog start-phase timeout", wedged.Detail)
	}
	// Infrastructure errors must not pollute the detection statistics.
	if s := prof.Summarize(); s.Injected != 2 || s.Infrastructure != 8 {
		t.Errorf("summary = %+v, want Injected=2 Infrastructure=8", s)
	}
}

// TestWatchdogTransientWedgeRecovers: a SUT wedged for a bounded time
// loses the affected experiments to the watchdog but serves the rest of
// the campaign normally once the stuck call returns.
func TestWatchdogTransientWedgeRecovers(t *testing.T) {
	sys := &wedgeSystem{wedgeAt: map[int]bool{3: true}, wedgeDur: 150 * time.Millisecond}
	c := &Campaign{Target: wedgeTarget(sys, nil), Generator: sliceGen{wedgeScens(40)}}
	prof, err := c.RunContext(context.Background(),
		WithDeadlines(Deadlines{Phase: 25 * time.Millisecond}))
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(prof.Records) != 40 {
		t.Fatalf("records = %d, want 40", len(prof.Records))
	}
	counts := prof.CountByOutcome()
	if counts[profile.InfrastructureError] == 0 {
		t.Error("expected infrastructure-error records from the transient wedge")
	}
	// The wedge resolves after 150ms; the tail of the campaign must be
	// healthy again.
	if last := prof.Records[len(prof.Records)-1]; last.Outcome != profile.Ignored {
		t.Errorf("final record outcome = %v, want ignored (instance should have recovered)", last.Outcome)
	}
}

// TestWatchdogProbeTimeout: a functional test that hangs is charged to
// the harness, not to the SUT — the record is an infrastructure error,
// not detected-by-test.
func TestWatchdogProbeTimeout(t *testing.T) {
	sys := &wedgeSystem{}
	var probes atomic32
	tests := []suts.Test{{Name: "hang", Run: func() error {
		if probes.add(1) == 3 {
			time.Sleep(120 * time.Millisecond)
		}
		return nil
	}}}
	c := &Campaign{Target: wedgeTarget(sys, tests), Generator: sliceGen{wedgeScens(20)}}
	prof, err := c.RunContext(context.Background(),
		WithDeadlines(Deadlines{Phase: 25 * time.Millisecond}))
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(prof.Records) != 20 {
		t.Fatalf("records = %d, want 20", len(prof.Records))
	}
	probeInfra := 0
	for _, r := range prof.Records {
		// Experiments queued behind the still-hung probe time out in their
		// start phase; at least the hung one itself must be attributed to
		// the probe.
		if r.Outcome == profile.InfrastructureError && strings.Contains(r.Detail, "probe:hang") {
			probeInfra++
		}
		if r.Outcome == profile.DetectedByTest {
			t.Errorf("record %s detected-by-test — a hung probe is not a SUT detection", r.ScenarioID)
		}
	}
	if probeInfra == 0 {
		t.Error("expected at least one probe-timeout record naming probe:hang")
	}
	if last := prof.Records[len(prof.Records)-1]; last.Outcome != profile.Ignored {
		t.Errorf("final record outcome = %v, want ignored", last.Outcome)
	}
}

// atomic32 is a tiny counter for test closures.
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) add(d int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n += d
	return a.n
}

// wedgeReloadSystem is reload-capable; chosen reload calls block for a
// bounded time, driving the watchdog through sutpool's quarantine path.
type wedgeReloadSystem struct {
	wedgeSystem
	reloads   int
	wedgeRel  map[int]bool
	relFail   map[int]bool // reloads that fail with a non-startup error
	healthErr error
}

func (s *wedgeReloadSystem) Reload(suts.Files) error {
	s.mu.Lock()
	s.reloads++
	n := s.reloads
	s.mu.Unlock()
	if s.wedgeRel[n] {
		if s.wedgeDur > 0 {
			time.Sleep(s.wedgeDur)
		} else {
			<-s.release
		}
	}
	if s.relFail[n] {
		return fmt.Errorf("reload wedged the instance")
	}
	return nil
}

func (s *wedgeReloadSystem) Health() error { return s.healthErr }

// TestWatchdogQuarantinesWedgedReload: a reload that exceeds its
// deadline quarantines the pooled instance (Quarantines counter) and the
// campaign recovers through a cold restart once the stuck call returns.
func TestWatchdogQuarantinesWedgedReload(t *testing.T) {
	sys := &wedgeReloadSystem{
		wedgeSystem: wedgeSystem{wedgeDur: 100 * time.Millisecond},
		wedgeRel:    map[int]bool{4: true},
	}
	var ctrs sutpool.Counters
	c := &Campaign{Target: wedgeTarget(sys, nil), Generator: sliceGen{wedgeScens(30)}}
	prof, err := c.RunContext(context.Background(),
		WithLifecycle(sutpool.Reload),
		WithLifecycleCounters(&ctrs),
		WithDeadlines(Deadlines{Phase: 25 * time.Millisecond}))
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(prof.Records) != 30 {
		t.Fatalf("records = %d, want 30", len(prof.Records))
	}
	snap := ctrs.Snapshot()
	if snap.Quarantines == 0 {
		t.Errorf("counters = %v, want at least one quarantine", snap)
	}
	if snap.ColdStarts < 2 {
		t.Errorf("counters = %v, want a recovery cold start after the quarantine", snap)
	}
	if last := prof.Records[len(prof.Records)-1]; last.Outcome != profile.Ignored {
		t.Errorf("final record outcome = %v, want ignored (cold restart should recover)", last.Outcome)
	}
}

// TestWatchdogSoakRace hammers the quarantine/restart machinery from
// parallel workers with randomly wedging and failing reloads — run under
// -race in CI, this is the soak for sutpool's recovery paths under
// watchdog pressure.
func TestWatchdogSoakRace(t *testing.T) {
	const scens = 120
	mk := func() (*Target, error) {
		sys := &wedgeReloadSystem{
			wedgeSystem: wedgeSystem{wedgeDur: 8 * time.Millisecond},
			wedgeRel:    map[int]bool{},
			relFail:     map[int]bool{},
		}
		// Deterministic per-worker fault pattern: every 9th reload wedges
		// past the deadline, every 7th fails outright (the Restarts path).
		for i := 1; i <= scens; i++ {
			if i%9 == 0 {
				sys.wedgeRel[i] = true
			}
			if i%7 == 0 {
				sys.relFail[i] = true
			}
		}
		return wedgeTarget(sys, nil), nil
	}
	var ctrs sutpool.Counters
	c := &Campaign{Target: wedgeTarget(&wedgeSystem{}, nil), Generator: sliceGen{wedgeScens(scens)}}
	prof, err := c.RunContext(context.Background(),
		WithParallelism(4),
		WithTargetFactory(mk),
		WithLifecycle(sutpool.Reload),
		WithLifecycleCounters(&ctrs),
		WithDeadlines(Deadlines{Phase: 4 * time.Millisecond, Experiment: 20 * time.Millisecond}))
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(prof.Records) != scens {
		t.Fatalf("records = %d, want %d", len(prof.Records), scens)
	}
	for i, r := range prof.Records {
		if want := fmt.Sprintf("w/%02d", i); r.ScenarioID != want {
			t.Fatalf("record %d = %s, want %s", i, r.ScenarioID, want)
		}
	}
	snap := ctrs.Snapshot()
	if snap.Restarts == 0 {
		t.Errorf("counters = %v, want reload-failure restarts", snap)
	}
	t.Logf("soak counters: %v", snap)
}

// panicGen emits scenarios whose Apply panics at a chosen index.
func panicScens(n, panicAt int) []scenario.Scenario {
	scens := wedgeScens(n)
	scens[panicAt].Apply = func(*confnode.Set) error { panic("plugin bug") }
	return scens
}

// TestPanicContainmentKeepGoing: a panicking plugin becomes an
// infrastructure-error record with the stack in its detail, and with
// KeepGoing the campaign runs to completion.
func TestPanicContainmentKeepGoing(t *testing.T) {
	c := &Campaign{Target: wedgeTarget(&wedgeSystem{}, nil), Generator: sliceGen{panicScens(8, 3)}}
	prof, err := c.RunContext(context.Background(), WithKeepGoing(true))
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(prof.Records) != 8 {
		t.Fatalf("records = %d, want 8", len(prof.Records))
	}
	r := prof.Records[3]
	if r.Outcome != profile.InfrastructureError {
		t.Fatalf("panicked record outcome = %v, want infrastructure-error", r.Outcome)
	}
	if !strings.Contains(r.Detail, "panic: plugin bug") || !strings.Contains(r.Detail, "goroutine") {
		t.Errorf("panicked record detail = %q, want panic value + stack", r.Detail)
	}
	if prof.Records[7].Outcome != profile.Ignored {
		t.Errorf("record after panic = %v, want ignored", prof.Records[7].Outcome)
	}
}

// TestPanicContainmentAborts: without KeepGoing the panic still does not
// kill the process — the campaign aborts like any infrastructure error,
// with the gap-free contiguous prefix including the failing record.
func TestPanicContainmentAborts(t *testing.T) {
	c := &Campaign{Target: wedgeTarget(&wedgeSystem{}, nil), Generator: sliceGen{panicScens(8, 2)}}
	prof, err := c.RunContext(context.Background())
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want a panic-carrying campaign error", err)
	}
	ids := make([]string, len(prof.Records))
	for i, r := range prof.Records {
		ids[i] = r.ScenarioID
	}
	if fmt.Sprint(ids) != "[w/00 w/01 w/02]" {
		t.Errorf("profile = %v, want contiguous prefix through the failing record", ids)
	}
}

// TestPanicContainmentParallel: the per-experiment boundary holds on the
// sharded parallel path too, and order is preserved.
func TestPanicContainmentParallel(t *testing.T) {
	c := &Campaign{Target: wedgeTarget(&wedgeSystem{}, nil), Generator: sliceGen{panicScens(50, 17)}}
	prof, err := c.RunContext(context.Background(),
		WithParallelism(4),
		WithKeepGoing(true),
		WithTargetFactory(func() (*Target, error) { return wedgeTarget(&wedgeSystem{}, nil), nil }))
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(prof.Records) != 50 {
		t.Fatalf("records = %d, want 50", len(prof.Records))
	}
	for i, r := range prof.Records {
		if want := fmt.Sprintf("w/%02d", i); r.ScenarioID != want {
			t.Fatalf("record %d = %s, want %s", i, r.ScenarioID, want)
		}
	}
	if prof.Records[17].Outcome != profile.InfrastructureError {
		t.Errorf("record 17 outcome = %v, want infrastructure-error", prof.Records[17].Outcome)
	}
}

// panicStartSystem panics inside Start on a chosen call — the SUT-side
// per-experiment panic boundary, without any watchdog armed.
type panicStartSystem struct {
	wedgeSystem
	panicAt int
}

func (s *panicStartSystem) Start(files suts.Files) error {
	s.mu.Lock()
	s.starts++
	n := s.starts
	s.mu.Unlock()
	if n == s.panicAt {
		panic("SUT crashed")
	}
	return nil
}

// TestPanicContainmentInSUTStart: a panic inside the SUT itself is
// contained by the per-experiment recover even with no deadlines set.
func TestPanicContainmentInSUTStart(t *testing.T) {
	sys := &panicStartSystem{panicAt: 3}
	c := &Campaign{Target: wedgeTarget(sys, nil), Generator: sliceGen{wedgeScens(8)}}
	prof, err := c.RunContext(context.Background(), WithKeepGoing(true))
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(prof.Records) != 8 {
		t.Fatalf("records = %d, want 8", len(prof.Records))
	}
	r := prof.Records[2]
	if r.Outcome != profile.InfrastructureError || !strings.Contains(r.Detail, "SUT crashed") {
		t.Errorf("record 2 = %v %q, want infrastructure-error with panic detail", r.Outcome, r.Detail)
	}
	if prof.Records[7].Outcome != profile.Ignored {
		t.Errorf("record after SUT panic = %v, want ignored", prof.Records[7].Outcome)
	}
}

// TestWatchdogZeroOverheadWhenDisabled: with no deadlines configured the
// target is not wrapped at all.
func TestWatchdogZeroOverheadWhenDisabled(t *testing.T) {
	tgt := wedgeTarget(&wedgeSystem{}, nil)
	wrapped := wrapLifecycle(tgt, runConfig{lifecycle: sutpool.Cold})
	if wrapped != tgt {
		t.Error("cold run without deadlines must not wrap the target")
	}
	armed := wrapLifecycle(tgt, runConfig{lifecycle: sutpool.Cold,
		deadlines: Deadlines{Phase: time.Second}})
	if _, ok := armed.System.(*watchdog); !ok {
		t.Error("deadlines configured but system not watchdog-wrapped")
	}
}
