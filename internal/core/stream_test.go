package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"conferr/internal/confnode"
	"conferr/internal/plugins/typo"
	"conferr/internal/profile"
	"conferr/internal/scenario"
	"conferr/internal/suts"
	"conferr/internal/view"
)

// TestGenerateRejectsDuplicateScenarioIDs is the regression test for the
// silent-collision bug: two scenarios sharing an ID would collide in
// per-scenario reporting and corrupt JSONL dedup/resume.
func TestGenerateRejectsDuplicateScenarioIDs(t *testing.T) {
	scens := []scenario.Scenario{
		{ID: "dup/0", Class: "c", Apply: func(*confnode.Set) error { return nil }},
		{ID: "ok/1", Class: "c", Apply: func(*confnode.Set) error { return nil }},
		{ID: "dup/0", Class: "c", Apply: func(*confnode.Set) error { return nil }},
	}
	c := &Campaign{Target: target(&fakeSystem{}), Generator: badGen{scens: scens}}
	_, err := c.RunContext(context.Background())
	if err == nil || !strings.Contains(err.Error(), "duplicate ScenarioID") ||
		!strings.Contains(err.Error(), `"dup/0"`) {
		t.Errorf("err = %v, want duplicate-ScenarioID rejection naming dup/0", err)
	}
}

// TestBaselineMissingFormatError is the regression test for the nil-format
// panic: a Target whose Formats map lost an entry after parse must fail
// with a diagnosable core: error, not a nil-interface dereference.
func TestBaselineMissingFormatError(t *testing.T) {
	tgt := target(&fakeSystem{})
	c := &Campaign{Target: tgt, Generator: &typo.Plugin{}}
	sysSet, err := c.parseInitial()
	if err != nil {
		t.Fatal(err)
	}
	delete(tgt.Formats, "fake.conf")
	err = c.baselineOn(sysSet, nil)
	if err == nil || !strings.HasPrefix(err.Error(), "core:") ||
		!strings.Contains(err.Error(), `"fake.conf"`) {
		t.Errorf("err = %v, want core:-prefixed missing-format error naming the file", err)
	}
}

// jitterSystem wraps the fake system with an index-dependent delay so that
// scenario completion order inverts dispatch order — the adversarial case
// for the reassembly stage.
type jitterSystem struct {
	fakeSystem
	n atomic.Int64
}

func (s *jitterSystem) Start(files suts.Files) error {
	// Every 7th experiment stalls, so later sequence numbers routinely
	// complete before earlier ones on the other workers.
	if s.n.Add(1)%7 == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	return s.fakeSystem.Start(files)
}

// TestRunStreamOutOfOrderCompletionKeepsGeneratorOrder is the determinism
// contract of the streaming runner: even when workers complete scenarios
// far out of dispatch order, the sink receives records in exact generator
// order.
func TestRunStreamOutOfOrderCompletionKeepsGeneratorOrder(t *testing.T) {
	gen := &typo.Plugin{}
	want, err := (&Campaign{Target: target(&fakeSystem{}), Generator: gen}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Records) < 50 {
		t.Fatalf("faultload too small (%d records) to exercise reordering", len(want.Records))
	}
	for _, workers := range []int{2, 4, 8} {
		prof := &profile.Profile{System: "fake", Generator: "typo"}
		c := &Campaign{Target: target(&fakeSystem{}), Generator: &typo.Plugin{}}
		n, err := c.RunStream(context.Background(), &profile.MemorySink{Profile: prof},
			WithParallelism(workers),
			WithTargetFactory(func() (*Target, error) {
				s := &jitterSystem{}
				return target2(s, &s.fakeSystem), nil
			}))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != len(want.Records) {
			t.Errorf("workers=%d: flushed %d records, want %d", workers, n, len(want.Records))
		}
		if canonical(prof) != canonical(want) {
			t.Errorf("workers=%d: streamed profile diverged from sequential\n%s",
				workers, firstDiffLine(canonical(prof), canonical(want)))
		}
	}
}

// target2 builds the standard fake target around an outer system (the
// jitter wrapper) while pointing the functional test at the embedded
// fakeSystem that actually records state.
func target2(outer suts.System, inner *fakeSystem) *Target {
	tgt := target(inner)
	tgt.System = outer
	return tgt
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(al), len(bl))
}

// TestRunStreamObserverSeesScenarioOrder pins the strengthened observer
// contract: records arrive in scenario order, not completion order.
func TestRunStreamObserverSeesScenarioOrder(t *testing.T) {
	var seen []string
	c := &Campaign{Target: target(&fakeSystem{}), Generator: &typo.Plugin{}}
	prof, err := c.RunContext(context.Background(),
		WithParallelism(4), WithTargetFactory(parFactory),
		WithObserver(func(r profile.Record) { seen = append(seen, r.ScenarioID) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(prof.Records) {
		t.Fatalf("observer saw %d records, profile has %d", len(seen), len(prof.Records))
	}
	for i, r := range prof.Records {
		if seen[i] != r.ScenarioID {
			t.Fatalf("observer order diverged at %d: %s vs %s", i, seen[i], r.ScenarioID)
		}
	}
}

// infiniteGen streams scenarios forever — only a streaming runner with a
// Limit stage can run it at all.
type infiniteGen struct{}

func (infiniteGen) Name() string    { return "infinite" }
func (infiniteGen) View() view.View { return view.StructView{} }
func (infiniteGen) Generate(*confnode.Set) ([]scenario.Scenario, error) {
	return nil, errors.New("infinite faultload cannot be materialized")
}
func (infiniteGen) GenerateStream(*confnode.Set) scenario.Source {
	return func(yield func(scenario.Scenario, error) bool) {
		for i := 0; ; i++ {
			sc := scenario.Scenario{
				ID:    fmt.Sprintf("inf/%d", i),
				Class: "inf",
				Apply: func(*confnode.Set) error { return nil },
			}
			if !yield(sc, nil) {
				return
			}
		}
	}
}

// TestRunStreamBoundedOnUnboundedSource proves the runner pulls lazily: an
// infinite generator behind a Limit terminates with exactly the capped
// record count, which is impossible if anything materializes the stream.
func TestRunStreamBoundedOnUnboundedSource(t *testing.T) {
	for _, workers := range []int{1, 4} {
		tally := &profile.TallySink{}
		c := &Campaign{Target: target(&fakeSystem{}), Generator: LimitGenerator(infiniteGen{}, 5000)}
		opts := []RunOption{WithParallelism(workers)}
		if workers > 1 {
			opts = append(opts, WithTargetFactory(parFactory))
		}
		n, err := c.RunStream(context.Background(), tally, opts...)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != 5000 || tally.Records() != 5000 {
			t.Errorf("workers=%d: flushed %d (tally %d), want 5000", workers, n, tally.Records())
		}
	}
}

// TestRunStreamMidStreamGenerationError: a source failing after k
// scenarios must surface the error while the k completed records are
// already flushed.
func TestRunStreamMidStreamGenerationError(t *testing.T) {
	boom := errors.New("boom mid-stream")
	src := scenario.Concat(
		StreamOf(infiniteGen{}, nil).Limit(10),
		scenario.Fail(boom),
	)
	gen := streamFunc{
		name: "mid-err",
		view: view.StructView{},
		src:  func(*confnode.Set) scenario.Source { return src },
	}
	for _, workers := range []int{1, 4} {
		prof := &profile.Profile{}
		c := &Campaign{Target: target(&fakeSystem{}), Generator: gen}
		opts := []RunOption{WithParallelism(workers)}
		if workers > 1 {
			opts = append(opts, WithTargetFactory(parFactory))
		}
		n, err := c.RunStream(context.Background(), &profile.MemorySink{Profile: prof}, opts...)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if n != 10 || len(prof.Records) != 10 {
			t.Errorf("workers=%d: flushed %d records, want the 10 preceding the error", workers, n)
		}
		// The stream is single-use; rebuild it for the next worker count.
		src = scenario.Concat(StreamOf(infiniteGen{}, nil).Limit(10), scenario.Fail(boom))
		gen.src = func(*confnode.Set) scenario.Source { return src }
		c.Generator = gen
	}
}

// TestRunStreamInvalidScenarioAborts: streaming validation mirrors the
// materialized path's shape check.
func TestRunStreamInvalidScenarioAborts(t *testing.T) {
	scens := []scenario.Scenario{
		{ID: "ok/0", Class: "c", Apply: func(*confnode.Set) error { return nil }},
		{ID: "bad/1", Class: "", Apply: func(*confnode.Set) error { return nil }},
	}
	c := &Campaign{Target: target(&fakeSystem{}), Generator: badGen{scens: scens}}
	tally := &profile.TallySink{}
	_, err := c.RunStream(context.Background(), tally)
	if err == nil || !strings.Contains(err.Error(), "invalid scenario") {
		t.Errorf("err = %v, want invalid-scenario rejection", err)
	}
}

// TestSuiteRunsMatrixConcurrently: a 2×2 suite over fake targets produces
// per-campaign profiles identical to running each campaign alone, with
// results in suite order.
func TestSuiteRunsMatrix(t *testing.T) {
	mkCampaign := func() *Campaign {
		return &Campaign{Target: target(&fakeSystem{}), Generator: &typo.Plugin{}}
	}
	want, err := mkCampaign().Run()
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{
		Workers: 4,
		Campaigns: []SuiteCampaign{
			{Name: "fake/typo-a", Campaign: mkCampaign(), Options: []RunOption{WithTargetFactory(parFactory)}},
			{Name: "fake/typo-b", Campaign: mkCampaign(), Options: []RunOption{WithTargetFactory(parFactory)}},
			{Name: "fake/typo-c", Campaign: mkCampaign(), Options: []RunOption{WithTargetFactory(parFactory)}},
		},
	}
	res, err := suite.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(res.Results))
	}
	for i, cr := range res.Results {
		if cr.Err != nil {
			t.Fatalf("campaign %d (%s): %v", i, cr.Name, cr.Err)
		}
		if cr.Profile == nil {
			t.Fatalf("campaign %d: nil profile", i)
		}
		if canonical(cr.Profile) != canonical(want) {
			t.Errorf("campaign %s diverged from solo run", cr.Name)
		}
		wantSum := want.Summarize()
		gotSum := cr.Summary
		gotSum.System = wantSum.System
		if gotSum != wantSum {
			t.Errorf("campaign %s summary = %+v, want %+v", cr.Name, gotSum, wantSum)
		}
		if cr.Records != len(want.Records) {
			t.Errorf("campaign %s records = %d, want %d", cr.Name, cr.Records, len(want.Records))
		}
	}
	if res.ProfileByName("fake/typo-b") != res.Results[1].Profile {
		t.Error("ProfileByName lookup failed")
	}
}

// TestSuiteCustomSinkSkipsProfile: a campaign with its own sink keeps no
// in-memory profile but still tallies a summary.
func TestSuiteCustomSink(t *testing.T) {
	tally := &profile.TallySink{}
	suite := &Suite{
		Workers: 2,
		Campaigns: []SuiteCampaign{{
			Name:     "fake/typo",
			Campaign: &Campaign{Target: target(&fakeSystem{}), Generator: &typo.Plugin{}},
			Options:  []RunOption{WithTargetFactory(parFactory)},
			Sink:     tally,
		}},
	}
	res, err := suite.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Results[0]
	if cr.Profile != nil {
		t.Error("custom-sink campaign retained a profile")
	}
	if tally.Records() == 0 || cr.Records != tally.Records() {
		t.Errorf("sink saw %d records, result says %d", tally.Records(), cr.Records)
	}
	if cr.Summary.Injected == 0 {
		t.Error("summary not tallied")
	}
}

// TestSuiteAbortsRemainingCampaignsOnFailure: without KeepGoing, one
// failing campaign cancels the rest; with it, the others complete.
func TestSuiteFailurePolicy(t *testing.T) {
	okCampaign := func() SuiteCampaign {
		return SuiteCampaign{
			Name:     "ok",
			Campaign: &Campaign{Target: target(&fakeSystem{}), Generator: &typo.Plugin{}},
			Options:  []RunOption{WithTargetFactory(parFactory)},
		}
	}
	failing := func() SuiteCampaign {
		scens := []scenario.Scenario{
			{ID: "boom", Class: "c", Apply: func(*confnode.Set) error { return errors.New("boom") }},
		}
		return SuiteCampaign{
			Name:     "failing",
			Campaign: &Campaign{Target: target(&fakeSystem{}), Generator: badGen{scens: scens}},
			Options:  []RunOption{WithTargetFactory(parFactory)},
		}
	}

	// Workers=1 serializes the suite, so the failing first campaign must
	// cancel the second before it starts.
	suite := &Suite{Workers: 1, Campaigns: []SuiteCampaign{failing(), okCampaign()}}
	res, err := suite.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want first campaign's failure", err)
	}
	if res.Results[1].Err == nil {
		t.Error("second campaign ran to completion despite abort policy")
	}

	suite = &Suite{Workers: 1, KeepGoing: true, Campaigns: []SuiteCampaign{failing(), okCampaign()}}
	res, err = suite.Run(context.Background())
	if err == nil {
		t.Error("KeepGoing suite must still report the failure")
	}
	if res.Results[1].Err != nil {
		t.Errorf("KeepGoing: second campaign failed: %v", res.Results[1].Err)
	}
	if res.Results[1].Records == 0 {
		t.Error("KeepGoing: second campaign produced no records")
	}
}

// TestSuiteFirstErrorPrefersRootCause: when a failing campaign cancels
// its siblings, the failure wins over the siblings' context.Canceled even
// when a cancelled campaign sorts earlier in the suite.
func TestSuiteFirstErrorPrefersRootCause(t *testing.T) {
	res := &SuiteResult{Results: []CampaignResult{
		{Name: "early-cancelled", Err: context.Canceled},
		{Name: "root-cause", Err: errors.New("boom")},
	}}
	err := res.FirstError()
	if err == nil || !strings.Contains(err.Error(), "root-cause") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want the root-cause campaign's failure", err)
	}
	onlyCancelled := &SuiteResult{Results: []CampaignResult{
		{Name: "a", Err: context.Canceled},
	}}
	if err := onlyCancelled.FirstError(); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled when nothing else failed", err)
	}
}

// TestGeneratorCombinators covers the stream-composing generator wrappers.
func TestGeneratorCombinators(t *testing.T) {
	base := &Campaign{Target: target(&fakeSystem{}), Generator: &typo.Plugin{}}
	fl, err := base.generate()
	if err != nil {
		t.Fatal(err)
	}
	all := fl.scens

	t.Run("limit", func(t *testing.T) {
		g := LimitGenerator(&typo.Plugin{}, 7)
		scens, err := g.Generate(fl.viewSet)
		if err != nil {
			t.Fatal(err)
		}
		if len(scens) != 7 {
			t.Fatalf("limit kept %d, want 7", len(scens))
		}
		for i := range scens {
			if scens[i].ID != all[i].ID {
				t.Errorf("limit reordered: %s vs %s", scens[i].ID, all[i].ID)
			}
		}
	})
	t.Run("sample", func(t *testing.T) {
		g := SampleGenerator(&typo.Plugin{}, 3, 5)
		one, err := g.Generate(fl.viewSet)
		if err != nil {
			t.Fatal(err)
		}
		two, err := SampleGenerator(&typo.Plugin{}, 3, 5).Generate(fl.viewSet)
		if err != nil {
			t.Fatal(err)
		}
		if len(one) != 5 {
			t.Fatalf("sample size = %d, want 5", len(one))
		}
		for i := range one {
			if one[i].ID != two[i].ID {
				t.Errorf("sample not deterministic at %d", i)
			}
		}
	})
	t.Run("repeat", func(t *testing.T) {
		g := RepeatGenerator(&typo.Plugin{}, 3)
		scens, err := g.Generate(fl.viewSet)
		if err != nil {
			t.Fatal(err)
		}
		if len(scens) != 3*len(all) {
			t.Fatalf("repeat emitted %d, want %d", len(scens), 3*len(all))
		}
		if !strings.HasPrefix(scens[0].ID, "r000/") ||
			!strings.HasPrefix(scens[len(all)].ID, "r001/") {
			t.Errorf("round prefixes missing: %s, %s", scens[0].ID, scens[len(all)].ID)
		}
		// Round-prefixed IDs stay campaign-unique.
		seen := map[string]bool{}
		for _, sc := range scens {
			if seen[sc.ID] {
				t.Fatalf("duplicate ID %s", sc.ID)
			}
			seen[sc.ID] = true
		}
	})
	t.Run("merge", func(t *testing.T) {
		g, err := MergeGenerators("merged", &typo.Plugin{}, LimitGenerator(&typo.Plugin{}, 2))
		if err != nil {
			t.Fatal(err)
		}
		scens, err := g.Generate(fl.viewSet)
		if err != nil {
			t.Fatal(err)
		}
		if len(scens) != len(all)+2 {
			t.Fatalf("merge emitted %d, want %d", len(scens), len(all)+2)
		}
		if _, err := MergeGenerators("bad", &typo.Plugin{}, infiniteGen{}); err == nil {
			t.Error("view mismatch accepted")
		}
	})
}
