package core

import (
	"fmt"
	"runtime/debug"
	"time"

	"conferr/internal/suts"
)

// This file implements the phase watchdog: per-experiment deadlines on
// every SUT lifecycle phase (start/reload, probe, stop, release). A
// wedged SUT — one that blocks inside a phase — cannot stall a campaign:
// the phase times out, the experiment is recorded with the
// InfrastructureError outcome, the instance is quarantined (the sutpool
// path), and the campaign keeps going.
//
// Goroutines cannot be killed, so a timed-out phase is ABANDONED: the
// call keeps running on its goroutine until it returns, at which point
// the instance is torn down. The watchdog never lets two calls touch the
// underlying system concurrently — a replacement phase runner waits for
// its abandoned predecessor to fully exit before issuing the next call —
// so a still-wedged instance simply times out again (each experiment
// bounded by its own deadline) until the stuck call finally returns and
// the cold-restart path revives it.

// Deadlines configures the phase watchdog. The zero value disables it:
// the engine then adds no per-experiment overhead at all.
type Deadlines struct {
	// Experiment bounds the SUT-phase time of one whole experiment:
	// start + probes + stop share the budget, re-armed at each Start.
	// 0 means no experiment-wide bound.
	Experiment time.Duration
	// Phase bounds every single phase call. 0 means no per-phase bound.
	Phase time.Duration
}

// Enabled reports whether any deadline is armed.
func (d Deadlines) Enabled() bool { return d.Experiment > 0 || d.Phase > 0 }

// WithDeadlines arms the phase watchdog for this run: worker systems are
// wrapped so that every SUT phase call is bounded. See Deadlines.
func WithDeadlines(d Deadlines) RunOption {
	return func(cfg *runConfig) { cfg.deadlines = d }
}

// phaseCall is one unit of work handed to the watchdog's phase runner.
type phaseCall struct {
	phase string
	fn    func() error
	done  chan error
}

// watchdog wraps a worker's system (and, via wrapWatchdog, its tests) so
// every phase call runs on a dedicated runner goroutine under a deadline.
// Like the systems it wraps, a watchdog belongs to one campaign worker.
type watchdog struct {
	sys  suts.System
	name string // cached: Name() must not touch a possibly-wedged system
	d    Deadlines

	// calls feeds the current phase runner; nil until the first phase
	// (or after an abandonment — the next phase starts a fresh runner).
	calls chan phaseCall
	// gate closes when the most recently started runner has fully
	// exited, teardown included; its successor waits on it so the
	// underlying system never sees concurrent calls.
	gate chan struct{}

	timer    *time.Timer
	expStart time.Time

	// files and dirty are the watchdog's private copies of the engine's
	// per-worker scratch: an abandoned phase goroutine may still read
	// them long after the engine has recycled its own, so the wrapper
	// owns what it hands down and forfeits it on every timeout.
	files suts.Files
	dirty []string

	// timeouts counts phase expiries on this worker; summed by the run
	// if anyone cares, and handy in tests.
	timeouts int
}

func newWatchdog(sys suts.System, d Deadlines) *watchdog {
	return &watchdog{sys: sys, name: sys.Name(), d: d}
}

// wrapWatchdog wraps one worker target: the system behind the watchdog,
// and every functional test behind the same experiment budget.
func wrapWatchdog(t *Target, d Deadlines) *Target {
	w := newWatchdog(t.System, d)
	tt := *t
	tt.System = w
	if len(t.Tests) > 0 {
		tests := make([]suts.Test, len(t.Tests))
		for i, ts := range t.Tests {
			run, name := ts.Run, ts.Name
			tests[i] = suts.Test{Name: name, Run: func() error {
				return w.run("probe:"+name, run)
			}}
		}
		tt.Tests = tests
	}
	return &tt
}

// Name implements suts.System.
func (w *watchdog) Name() string { return w.name }

// DefaultConfig implements suts.System; it is only called before the
// campaign starts, never on a possibly-wedged worker instance.
func (w *watchdog) DefaultConfig() suts.Files { return w.sys.DefaultConfig() }

// Unwrap exposes the wrapped system to the engine's capability walks.
func (w *watchdog) Unwrap() suts.System { return w.sys }

// Addr implements suts.Addressable like sutpool.Instance does: the
// wrapped system's address, or "".
func (w *watchdog) Addr() string {
	if a, ok := w.sys.(suts.Addressable); ok {
		return a.Addr()
	}
	return ""
}

// Start implements suts.System: a new experiment begins, re-arming the
// experiment budget.
func (w *watchdog) Start(files suts.Files) error {
	w.expStart = time.Now()
	f := w.copyFiles(files)
	return w.run("start", func() error { return w.sys.Start(f) })
}

// StartDirty implements suts.DirtyStarter, degrading to Start when the
// wrapped system lacks the capability.
func (w *watchdog) StartDirty(files suts.Files, dirty []string) error {
	w.expStart = time.Now()
	f := w.copyFiles(files)
	ds, ok := w.sys.(suts.DirtyStarter)
	if !ok {
		return w.run("start", func() error { return w.sys.Start(f) })
	}
	w.dirty = append(w.dirty[:0], dirty...)
	d := w.dirty
	return w.run("start", func() error { return ds.StartDirty(f, d) })
}

// Stop implements suts.System.
func (w *watchdog) Stop() error {
	return w.run("stop", func() error { return w.sys.Stop() })
}

// Release hands the worker's system back under a deadline, so even the
// end-of-run health gate of a wedged pooled instance cannot hang the
// campaign teardown. It runs outside any experiment, so the experiment
// budget is re-armed rather than inherited from the last scenario.
func (w *watchdog) Release() error {
	w.expStart = time.Now()
	return w.run("release", func() error { releaseSystem(w.sys); return nil })
}

// budget returns the deadline for the next phase: the per-phase bound
// capped by what remains of the experiment budget. <= 0 means the
// experiment budget is already exhausted — the phase must not run.
func (w *watchdog) budget() time.Duration {
	b := w.d.Phase
	if w.d.Experiment > 0 && !w.expStart.IsZero() {
		rem := w.d.Experiment - time.Since(w.expStart)
		if b <= 0 || rem < b {
			b = rem
		}
	}
	return b
}

// run executes fn as one phase under the watchdog's deadline. On expiry
// it abandons the runner, quarantines the instance and returns a
// *suts.PhaseTimeoutError; the engine records it as InfrastructureError.
func (w *watchdog) run(phase string, fn func() error) error {
	budget := w.budget()
	if budget <= 0 {
		// The experiment budget is gone (an earlier phase consumed it,
		// or timed out): refuse without dispatching.
		w.timeouts++
		return &suts.PhaseTimeoutError{System: w.name, Phase: phase, Timeout: 0}
	}
	if w.calls == nil {
		w.startRunner()
	}
	pc := phaseCall{phase: phase, fn: fn, done: make(chan error, 1)}
	w.arm(budget)
	start := time.Now()
	// The send itself is bounded too: a fresh runner first waits for an
	// abandoned predecessor (still stuck in its phase) to exit, so on a
	// wedged instance the handoff may never happen.
	select {
	case w.calls <- pc:
	case <-w.timer.C:
		w.abandon()
		return &suts.PhaseTimeoutError{System: w.name, Phase: phase, Timeout: budget, Elapsed: time.Since(start)}
	}
	select {
	case err := <-pc.done:
		w.disarm()
		return err
	case <-w.timer.C:
		w.abandon()
		return &suts.PhaseTimeoutError{System: w.name, Phase: phase, Timeout: budget, Elapsed: time.Since(start)}
	}
}

// startRunner spawns a fresh phase runner chained behind its
// predecessor's gate.
func (w *watchdog) startRunner() {
	w.calls = make(chan phaseCall)
	prev, gate := w.gate, make(chan struct{})
	w.gate = gate
	go runPhases(w.sys, w.calls, prev, gate)
}

// runPhases is the phase runner: it serves calls until the channel
// closes (abandonment), then tears the — by then wedged — system down.
// Waiting on prev first guarantees the underlying system never executes
// two calls concurrently, however many runners have been abandoned.
func runPhases(sys suts.System, calls chan phaseCall, prev, gate chan struct{}) {
	defer close(gate)
	if prev != nil {
		<-prev
	}
	for c := range calls {
		c.done <- safePhase(sys, c.phase, c.fn)
	}
	// Abandoned: the stuck call has finally returned (or never started).
	// Best-effort teardown so the quarantined instance cold-starts clean.
	func() {
		defer func() { recover() }()
		shutdownSystem(sys)
	}()
}

// safePhase runs one phase, converting a panic into an error so a
// panicking SUT or functional test cannot kill the runner (and with it
// the process).
func safePhase(sys suts.System, phase string, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &suts.PhasePanicError{
				System: sys.Name(),
				Phase:  phase,
				Value:  fmt.Sprint(v),
				Stack:  string(debug.Stack()),
			}
		}
	}()
	return fn()
}

// abandon gives up on the current runner after a timeout: the calls
// channel closes (the runner exits and tears the system down whenever
// its stuck call returns), the scratch copies are forfeited (the stuck
// call may still read them), and the instance is quarantined so the next
// experiment cold-starts instead of trusting wedged warm state.
func (w *watchdog) abandon() {
	close(w.calls)
	w.calls = nil
	w.files = nil
	w.dirty = nil
	w.timeouts++
	quarantineSystem(w.sys)
}

// arm sets the reusable timer.
func (w *watchdog) arm(d time.Duration) {
	if w.timer == nil {
		w.timer = time.NewTimer(d)
		return
	}
	w.timer.Reset(d)
}

// disarm stops the timer, draining a concurrent expiry so the next arm
// starts clean.
func (w *watchdog) disarm() {
	if !w.timer.Stop() {
		select {
		case <-w.timer.C:
		default:
		}
	}
}

// copyFiles snapshots the engine's scratch files map into the
// watchdog's private map — zero allocations steady-state; a fresh map
// only after an abandonment, whose stuck reader owns the old one.
func (w *watchdog) copyFiles(files suts.Files) suts.Files {
	if w.files == nil {
		w.files = make(suts.Files, len(files))
	} else {
		clear(w.files)
	}
	for name, data := range files {
		w.files[name] = data
	}
	return w.files
}

// quarantineSystem walks the wrapper chain for a quarantine hook
// (sutpool.Instance implements it) and invokes the first one found.
func quarantineSystem(sys suts.System) {
	for sys != nil {
		if q, ok := sys.(interface{ Quarantine() }); ok {
			q.Quarantine()
			return
		}
		u, ok := sys.(interface{ Unwrap() suts.System })
		if !ok {
			return
		}
		sys = u.Unwrap()
	}
}

// shutdownSystem stops a system for real: the first Shutdown hook on the
// wrapper chain (a pooled instance's unconditional teardown) or, absent
// one, a plain Stop.
func shutdownSystem(sys suts.System) {
	for s := sys; s != nil; {
		if sd, ok := s.(interface{ Shutdown() error }); ok {
			_ = sd.Shutdown()
			return
		}
		u, ok := s.(interface{ Unwrap() suts.System })
		if !ok {
			break
		}
		s = u.Unwrap()
	}
	_ = sys.Stop()
}
