package dnsmodel

import (
	"fmt"
	"strconv"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/dnswire"
	"conferr/internal/formats/zonefile"
	"conferr/internal/template"
	"conferr/internal/view"
)

// Attribute keys on record-view nodes. Record nodes use confnode
// KindRecord with Name = canonical owner, Value = canonical RDATA.
const (
	// AttrType is the RR type mnemonic.
	AttrType = "type"
	// AttrTTL is the record TTL in seconds.
	AttrTTL = "ttl"
	// AttrPart identifies which half of a combined native directive the
	// record came from ("a"/"ptr" for tinydns "=", "ns"/"soa" for ".").
	AttrPart = "part"
)

// recordNode builds a view node for a canonical record.
func recordNode(rec Record, src, part string) *confnode.Node {
	n := confnode.NewValued(confnode.KindRecord, rec.Owner, rec.Data)
	n.SetAttr(AttrType, rec.Type)
	n.SetAttr(AttrTTL, strconv.FormatUint(uint64(rec.TTL), 10))
	if src != "" {
		n.SetAttr(view.SrcAttr, src)
	}
	if part != "" {
		n.SetAttr(AttrPart, part)
	}
	return n
}

// nodeRecord reads a view node back into a canonical record.
func nodeRecord(n *confnode.Node) Record {
	ttl, _ := strconv.ParseUint(n.AttrDefault(AttrTTL, "3600"), 10, 32)
	return Record{
		Owner: Canon(n.Name),
		Type:  n.AttrDefault(AttrType, "A"),
		TTL:   uint32(ttl),
		Data:  n.Value,
	}
}

// ZoneRecordView maps BIND-style configurations (a set of zone master
// files, plus untouched non-zone files) to the record representation and
// back. Every record state is expressible in zone-file syntax, so
// Backward never fails for BIND — the asymmetry with tinydns is the point
// of the paper's §5.4 comparison.
type ZoneRecordView struct {
	// Origins maps each zone file name in the set to its zone origin.
	// Files not listed (e.g. named.conf) pass through untouched.
	Origins map[string]string
}

var _ view.Incremental = ZoneRecordView{}

// Name implements view.View.
func (ZoneRecordView) Name() string { return "zone-records" }

// Forward implements view.View.
func (v ZoneRecordView) Forward(sys *confnode.Set) (*confnode.Set, error) {
	out := confnode.NewSet()
	var retErr error
	sys.Walk(func(file string, root *confnode.Node) {
		if retErr != nil {
			return
		}
		origin, ok := v.Origins[file]
		if !ok {
			return
		}
		doc := confnode.New(confnode.KindDocument, file)
		_, err := recordsFromZoneDoc(root, origin, func(rec Record, src *confnode.Node) {
			doc.Append(recordNode(rec, template.RefOf(file, src).String(), ""))
		})
		if err != nil {
			retErr = err
			return
		}
		out.Put(file, doc)
	})
	if retErr != nil {
		return nil, retErr
	}
	return out, nil
}

// Backward implements view.View: mutated records are folded back into the
// zone files (absolute, dot-terminated names, so the result is
// origin-independent); deleted records disappear, inserted records are
// appended.
func (v ZoneRecordView) Backward(mutated, sys *confnode.Set) (*confnode.Set, error) {
	out := sys.Clone()
	var retErr error
	mutated.Walk(func(file string, viewDoc *confnode.Node) {
		if retErr != nil {
			return
		}
		retErr = backwardZoneFile(out, file, viewDoc)
	})
	if retErr != nil {
		return nil, retErr
	}
	return out, nil
}

// IncrementalBackward implements view.Incremental: only dirty zone files
// are folded back; every other file — zone or pass-through — keeps
// sharing the baseline system tree.
func (v ZoneRecordView) IncrementalBackward(dirty []string, mutated, sys *confnode.Set) (*confnode.Set, error) {
	out := sys.TrackedWith(mutated.Arena())
	for _, file := range dirty {
		viewDoc := mutated.Get(file)
		if viewDoc == nil {
			continue
		}
		if err := backwardZoneFile(out, file, viewDoc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// backwardZoneFile folds one mutated record-view document back onto the
// zone file it came from inside out (fetching the system document through
// out.Get, which on a tracked set materializes a private clone).
func backwardZoneFile(out *confnode.Set, file string, viewDoc *confnode.Node) error {
	sysDoc := out.Get(file)
	if sysDoc == nil {
		return fmt.Errorf("zone view: no system file %q: %w", file, view.ErrNotExpressible)
	}
	// Capture refs before any structural change (removals shift
	// sibling indices).
	type keyed struct {
		node *confnode.Node
		key  string
	}
	var originals []keyed
	for _, n := range sysDoc.ChildrenByKind(confnode.KindRecord) {
		originals = append(originals, keyed{node: n, key: template.RefOf(file, n).String()})
	}
	bySrc := make(map[string]*confnode.Node)
	var inserts []*confnode.Node
	for _, n := range viewDoc.ChildrenByKind(confnode.KindRecord) {
		if src, ok := n.Attr(view.SrcAttr); ok {
			bySrc[src] = n
		} else {
			inserts = append(inserts, n)
		}
	}
	for _, o := range originals {
		vn, ok := bySrc[o.key]
		if !ok {
			o.node.Remove()
			continue
		}
		writeZoneRecord(o.node, nodeRecord(vn))
	}
	for _, vn := range inserts {
		rec := nodeRecord(vn)
		n := confnode.New(confnode.KindRecord, "")
		writeZoneRecord(n, rec)
		sysDoc.Append(n)
	}
	return nil
}

// writeZoneRecord rewrites a zone-file record node from a canonical record
// using absolute names.
func writeZoneRecord(n *confnode.Node, rec Record) {
	n.Kind = confnode.KindRecord
	n.Name = rec.Owner + "."
	n.SetAttr(zonefile.AttrType, rec.Type)
	n.SetAttr(zonefile.AttrTTL, strconv.FormatUint(uint64(rec.TTL), 10))
	n.Value = uncanonRData(rec.Type, rec.Data)
}

// TinyRecordView maps a tinydns-data configuration to the record
// representation and back. Combined directives put multiple records in the
// view with the same provenance and distinct parts; a mutation that leaves
// a combined directive without a consistent set of parts cannot be
// expressed — Backward returns ErrNotExpressible, which is exactly how the
// paper's missing-PTR and PTR-to-CNAME faults become N/A for djbdns
// (Table 3).
type TinyRecordView struct {
	// File is the data file name within the set.
	File string
}

var _ view.Incremental = TinyRecordView{}

// Name implements view.View.
func (TinyRecordView) Name() string { return "tinydns-records" }

// Forward implements view.View.
func (v TinyRecordView) Forward(sys *confnode.Set) (*confnode.Set, error) {
	root := sys.Get(v.File)
	if root == nil {
		return nil, fmt.Errorf("tinydns view: no file %q in set", v.File)
	}
	doc := confnode.New(confnode.KindDocument, v.File)
	for _, n := range root.ChildrenByKind(confnode.KindRecord) {
		recs, err := tinyLineRecords(n)
		if err != nil {
			return nil, err
		}
		src := template.RefOf(v.File, n).String()
		for _, lr := range recs {
			doc.Append(recordNode(lr.rec, src, lr.part))
		}
	}
	out := confnode.NewSet()
	out.Put(v.File, doc)
	return out, nil
}

// Backward implements view.View.
func (v TinyRecordView) Backward(mutated, sys *confnode.Set) (*confnode.Set, error) {
	viewDoc := mutated.Get(v.File)
	if viewDoc == nil {
		return nil, fmt.Errorf("tinydns view: mutated set lost file %q: %w", v.File, view.ErrNotExpressible)
	}
	out := sys.Clone()
	if err := backwardTinyFile(out, v.File, viewDoc); err != nil {
		return nil, err
	}
	return out, nil
}

// IncrementalBackward implements view.Incremental. The view exposes a
// single data file, so either that file is dirty and gets folded onto a
// materialized clone, or nothing in the system set changed at all.
func (v TinyRecordView) IncrementalBackward(dirty []string, mutated, sys *confnode.Set) (*confnode.Set, error) {
	out := sys.TrackedWith(mutated.Arena())
	for _, file := range dirty {
		if file != v.File {
			// Files a scenario added beside the data file have no tinydns
			// equivalent; the full Backward ignores them too.
			continue
		}
		viewDoc := mutated.Get(v.File)
		if viewDoc == nil {
			return nil, fmt.Errorf("tinydns view: mutated set lost file %q: %w", v.File, view.ErrNotExpressible)
		}
		if err := backwardTinyFile(out, v.File, viewDoc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// backwardTinyFile folds the mutated record view back onto the tinydns
// data file inside out (fetching the system document through out.Get,
// which on a tracked set materializes a private clone).
func backwardTinyFile(out *confnode.Set, file string, viewDoc *confnode.Node) error {
	sysDoc := out.Get(file)

	type keyed struct {
		node *confnode.Node
		key  string
	}
	var originals []keyed
	for _, n := range sysDoc.ChildrenByKind(confnode.KindRecord) {
		originals = append(originals, keyed{node: n, key: template.RefOf(file, n).String()})
	}
	bySrc := make(map[string]map[string]*confnode.Node)
	var inserts []*confnode.Node
	for _, n := range viewDoc.ChildrenByKind(confnode.KindRecord) {
		src, ok := n.Attr(view.SrcAttr)
		if !ok {
			inserts = append(inserts, n)
			continue
		}
		part := n.AttrDefault(AttrPart, "")
		if bySrc[src] == nil {
			bySrc[src] = make(map[string]*confnode.Node)
		}
		bySrc[src][part] = n
	}

	for _, o := range originals {
		parts := bySrc[o.key]
		if err := writeTinyLine(o.node, parts); err != nil {
			return err
		}
	}
	for _, vn := range inserts {
		line, err := tinyLineFor(nodeRecord(vn))
		if err != nil {
			return err
		}
		sysDoc.Append(line)
	}
	return nil
}

// writeTinyLine folds the surviving view parts back onto one tinydns data
// line, detecting inexpressible states.
func writeTinyLine(n *confnode.Node, parts map[string]*confnode.Node) error {
	fields := strings.Split(n.Value, ":")
	set := func(i int, v string) {
		for len(fields) <= i {
			fields = append(fields, "")
		}
		fields[i] = v
	}
	finish := func() {
		n.Value = strings.Join(fields, ":")
	}
	// expect verifies that a surviving part still has the record type its
	// directive encodes; a type change (e.g. an A rewritten into a CNAME)
	// has no equivalent line form.
	expect := func(vn *confnode.Node, typ string) error {
		if got := vn.AttrDefault(AttrType, ""); got != typ {
			return fmt.Errorf("tinydns '%s' for %q: part changed type %s -> %s: %w",
				n.Name, fields[0], typ, got, view.ErrNotExpressible)
		}
		return nil
	}
	switch n.Name {
	case "=":
		a, aok := parts["a"]
		ptr, pok := parts["ptr"]
		if !aok && !pok {
			n.Remove()
			return nil
		}
		if !aok || !pok {
			return fmt.Errorf("tinydns '=' for %q: cannot express A without its PTR (or vice versa): %w",
				fields[0], view.ErrNotExpressible)
		}
		if err := expect(a, "A"); err != nil {
			return err
		}
		if err := expect(ptr, "PTR"); err != nil {
			return err
		}
		arec, prec := nodeRecord(a), nodeRecord(ptr)
		rev, err := dnswire.ReverseName(arec.Data)
		if err != nil {
			return fmt.Errorf("tinydns '=': bad address %q: %w", arec.Data, view.ErrNotExpressible)
		}
		if prec.Owner != Canon(rev) || prec.Data != arec.Owner {
			return fmt.Errorf("tinydns '=' for %q: A and PTR no longer consistent: %w",
				fields[0], view.ErrNotExpressible)
		}
		set(0, arec.Owner)
		set(1, arec.Data)
		finish()
		return nil
	case "+":
		return singlePart(n, parts, "a", "A", expect, func(rec Record) {
			set(0, rec.Owner)
			set(1, rec.Data)
			finish()
		})
	case "^":
		return singlePart(n, parts, "ptr", "PTR", expect, func(rec Record) {
			set(0, rec.Owner)
			set(1, rec.Data)
			finish()
		})
	case "C":
		return singlePart(n, parts, "cname", "CNAME", expect, func(rec Record) {
			set(0, rec.Owner)
			set(1, rec.Data)
			finish()
		})
	case "'":
		return singlePart(n, parts, "txt", "TXT", expect, func(rec Record) {
			set(0, rec.Owner)
			set(1, rec.Data)
			finish()
		})
	case "@":
		return singlePart(n, parts, "mx", "MX", expect, func(rec Record) {
			f := strings.Fields(rec.Data)
			set(0, rec.Owner)
			if len(f) == 2 {
				set(2, f[1])
				set(3, f[0])
			}
			finish()
		})
	case "&":
		return singlePart(n, parts, "ns", "NS", expect, func(rec Record) {
			set(0, rec.Owner)
			set(2, rec.Data)
			finish()
		})
	case ".":
		ns, nok := parts["ns"]
		soa, sok := parts["soa"]
		if !nok && !sok {
			n.Remove()
			return nil
		}
		if !nok || !sok {
			return fmt.Errorf("tinydns '.' for %q: cannot express NS without its SOA (or vice versa): %w",
				fields[0], view.ErrNotExpressible)
		}
		nsRec, soaRec := nodeRecord(ns), nodeRecord(soa)
		soaFields := strings.Fields(soaRec.Data)
		if len(soaFields) != 7 || soaFields[0] != nsRec.Data {
			return fmt.Errorf("tinydns '.' for %q: SOA mname diverged from NS target: %w",
				fields[0], view.ErrNotExpressible)
		}
		set(0, nsRec.Owner)
		set(2, nsRec.Data)
		finish()
		return nil
	case "Z":
		return singlePart(n, parts, "soa", "SOA", expect, func(rec Record) {
			f := strings.Fields(rec.Data)
			if len(f) == 7 {
				set(0, rec.Owner)
				set(1, f[0])
				set(2, f[1])
				for i, num := range f[2:] {
					set(3+i, num)
				}
			}
			finish()
		})
	default:
		return fmt.Errorf("tinydns: unknown directive %q: %w", n.Name, view.ErrNotExpressible)
	}
}

// singlePart handles directives that expand to exactly one record.
func singlePart(n *confnode.Node, parts map[string]*confnode.Node, part, typ string,
	expect func(*confnode.Node, string) error, write func(Record)) error {
	vn, ok := parts[part]
	if !ok {
		n.Remove()
		return nil
	}
	if err := expect(vn, typ); err != nil {
		return err
	}
	write(nodeRecord(vn))
	return nil
}

// tinyLineFor synthesizes a data line for a record inserted by a fault
// scenario.
func tinyLineFor(rec Record) (*confnode.Node, error) {
	ttl := strconv.FormatUint(uint64(rec.TTL), 10)
	var c, value string
	switch rec.Type {
	case "A":
		c, value = "+", rec.Owner+":"+rec.Data+":"+ttl
	case "PTR":
		c, value = "^", rec.Owner+":"+rec.Data+":"+ttl
	case "CNAME":
		c, value = "C", rec.Owner+":"+rec.Data+":"+ttl
	case "TXT":
		c, value = "'", rec.Owner+":"+rec.Data+":"+ttl
	case "NS":
		c, value = "&", rec.Owner+"::"+rec.Data+":"+ttl
	case "MX":
		f := strings.Fields(rec.Data)
		if len(f) != 2 {
			return nil, fmt.Errorf("tinydns: bad MX data %q: %w", rec.Data, view.ErrNotExpressible)
		}
		c, value = "@", rec.Owner+"::"+f[1]+":"+f[0]+":"+ttl
	case "SOA":
		f := strings.Fields(rec.Data)
		if len(f) != 7 {
			return nil, fmt.Errorf("tinydns: bad SOA data %q: %w", rec.Data, view.ErrNotExpressible)
		}
		c, value = "Z", rec.Owner+":"+f[0]+":"+f[1]+":"+strings.Join(f[2:], ":")+":"+ttl
	default:
		return nil, fmt.Errorf("tinydns: record type %s not expressible: %w", rec.Type, view.ErrNotExpressible)
	}
	return confnode.NewValued(confnode.KindRecord, c, value), nil
}
