package dnsmodel

import (
	"errors"
	"strings"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/formats/tinydns"
	"conferr/internal/formats/zonefile"
	"conferr/internal/view"
)

const forwardZone = `$TTL 3600
$ORIGIN example.com.
@	IN	SOA	ns1.example.com. hostmaster.example.com. 2008060101 3600 900 604800 86400
@	IN	NS	ns1.example.com.
ns1	IN	A	192.0.2.1
www	IN	A	192.0.2.10
mail	IN	A	192.0.2.20
ftp	IN	CNAME	www
@	IN	MX	10 mail
@	IN	TXT	"v=spf1 mx -all"
`

const reverseZone = `$TTL 3600
$ORIGIN 2.0.192.in-addr.arpa.
@	IN	SOA	ns1.example.com. hostmaster.example.com. 2008060101 3600 900 604800 86400
@	IN	NS	ns1.example.com.
1	IN	PTR	ns1.example.com.
10	IN	PTR	www.example.com.
20	IN	PTR	mail.example.com.
`

const tinyData = `.example.com::ns1.example.com:3600
.2.0.192.in-addr.arpa::ns1.example.com:3600
=ns1.example.com:192.0.2.1:3600
=www.example.com:192.0.2.10:3600
=mail.example.com:192.0.2.20:3600
Cftp.example.com:www.example.com:3600
@example.com::mail.example.com:10:3600
'example.com:v=spf1 mx -all:3600
`

func TestAbsName(t *testing.T) {
	cases := []struct{ in, origin, want string }{
		{"@", "example.com", "example.com"},
		{"www", "example.com", "www.example.com"},
		{"www.example.com.", "example.com", "www.example.com"},
		{"WWW.Example.COM.", "other", "www.example.com"},
		{"10", "2.0.192.in-addr.arpa", "10.2.0.192.in-addr.arpa"},
	}
	for _, tt := range cases {
		if got := AbsName(tt.in, tt.origin); got != tt.want {
			t.Errorf("AbsName(%q, %q) = %q, want %q", tt.in, tt.origin, got, tt.want)
		}
	}
}

func TestParseZoneFile(t *testing.T) {
	recs, err := ParseZoneFile("f", []byte(forwardZone), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("records = %d, want 8", len(recs))
	}
	byType := map[string]Record{}
	for _, r := range recs {
		byType[r.Type] = r
	}
	if a := byType["MX"]; a.Owner != "example.com" || a.Data != "10 mail.example.com" {
		t.Errorf("MX = %+v", a)
	}
	if a := byType["CNAME"]; a.Owner != "ftp.example.com" || a.Data != "www.example.com" {
		t.Errorf("CNAME = %+v", a)
	}
	if a := byType["TXT"]; a.Data != "v=spf1 mx -all" {
		t.Errorf("TXT = %+v", a)
	}
	if a := byType["SOA"]; !strings.HasPrefix(a.Data, "ns1.example.com hostmaster.example.com 2008060101") {
		t.Errorf("SOA = %+v", a)
	}
	if a := byType["A"]; a.TTL != 3600 {
		t.Errorf("TTL = %d", a.TTL)
	}
}

func TestParseZoneFileErrors(t *testing.T) {
	cases := []string{
		"$TTL abc\nwww A 1.2.3.4\n",
		"www 12x A 1.2.3.4\n",
		"@ MX onlyhost\n",
		"@ MX pref host\n",
		"@ SOA a b 1 2 3\n",
		"@ RP single\n",
	}
	for _, in := range cases {
		if _, err := ParseZoneFile("f", []byte(in), "example.com"); err == nil {
			t.Errorf("ParseZoneFile(%q) succeeded", in)
		}
	}
}

func TestParseTinyData(t *testing.T) {
	recs, err := ParseTinyData("data", []byte(tinyData))
	if err != nil {
		t.Fatal(err)
	}
	// 2 '.' lines -> 4 records; 3 '=' -> 6; C -> 1; @ -> 1; ' -> 1. Total 13.
	if len(recs) != 13 {
		t.Fatalf("records = %d, want 13", len(recs))
	}
	var ptrs, as []Record
	for _, r := range recs {
		switch r.Type {
		case "PTR":
			ptrs = append(ptrs, r)
		case "A":
			as = append(as, r)
		}
	}
	if len(ptrs) != 3 || len(as) != 3 {
		t.Fatalf("ptrs=%d as=%d", len(ptrs), len(as))
	}
	if ptrs[1].Owner != "10.2.0.192.in-addr.arpa" || ptrs[1].Data != "www.example.com" {
		t.Errorf("derived PTR = %+v", ptrs[1])
	}
}

func TestParseTinyDataErrors(t *testing.T) {
	cases := []string{
		"=www.example.com:not-an-ip:3600\n",
		"+www.example.com:999.1.1.1:3600\n",
		"@example.com::mail.example.com:abc:3600\n",
		"=:1.2.3.4:3600\n",
	}
	for _, in := range cases {
		if _, err := ParseTinyData("data", []byte(in)); err == nil {
			t.Errorf("ParseTinyData(%q) succeeded", in)
		}
	}
}

func zoneSysSet(t *testing.T) *confnode.Set {
	t.Helper()
	set := confnode.NewSet()
	for name, content := range map[string]string{
		"example.zone": forwardZone,
		"reverse.zone": reverseZone,
	} {
		doc, err := (zonefile.Format{}).Parse(name, []byte(content))
		if err != nil {
			t.Fatal(err)
		}
		set.Put(name, doc)
	}
	// A non-zone file passes through the view untouched.
	raw := confnode.New(confnode.KindDocument, "named.conf")
	raw.Value = "options {};"
	set.Put("named.conf", raw)
	return set
}

func zoneView() ZoneRecordView {
	return ZoneRecordView{Origins: map[string]string{
		"example.zone": "example.com",
		"reverse.zone": "2.0.192.in-addr.arpa",
	}}
}

func TestZoneViewForward(t *testing.T) {
	v := zoneView()
	sys := zoneSysSet(t)
	fwd, err := v.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Get("named.conf") != nil {
		t.Error("non-zone file leaked into view")
	}
	fz := fwd.Get("example.zone")
	recs := fz.ChildrenByKind(confnode.KindRecord)
	if len(recs) != 8 {
		t.Fatalf("forward zone records = %d", len(recs))
	}
	for _, r := range recs {
		if _, ok := r.Attr(view.SrcAttr); !ok {
			t.Error("record missing provenance")
		}
	}
	rz := fwd.Get("reverse.zone")
	if rz.CountKind(confnode.KindRecord) != 5 {
		t.Errorf("reverse zone records = %d", rz.CountKind(confnode.KindRecord))
	}
}

func TestZoneViewBackwardIdentitySemantics(t *testing.T) {
	v := zoneView()
	sys := zoneSysSet(t)
	fwd, _ := v.Forward(sys)
	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	// The rewrite is not byte-identical (absolute names) but must parse to
	// the same canonical records.
	out, err := (zonefile.Format{}).Serialize(back.Get("example.zone"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ParseZoneFile("example.zone", out, "example.com")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := ParseZoneFile("f", []byte(forwardZone), "example.com")
	if len(recs) != len(orig) {
		t.Fatalf("records = %d, want %d", len(recs), len(orig))
	}
	for i := range recs {
		if recs[i] != orig[i] {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], orig[i])
		}
	}
	// named.conf untouched.
	if back.Get("named.conf").Value != "options {};" {
		t.Error("raw file mutated")
	}
}

func TestZoneViewDeleteAndInsert(t *testing.T) {
	v := zoneView()
	sys := zoneSysSet(t)
	fwd, _ := v.Forward(sys)
	// Delete the PTR for www (record index 3 in reverse zone: SOA,NS,1,10,20).
	rz := fwd.Get("reverse.zone")
	recs := rz.ChildrenByKind(confnode.KindRecord)
	recs[3].Remove()
	// Insert a CNAME at the forward apex.
	ins := recordNode(Record{Owner: "example.com", Type: "CNAME", TTL: 60, Data: "www.example.com"}, "", "")
	fwd.Get("example.zone").Append(ins)

	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	revOut, _ := (zonefile.Format{}).Serialize(back.Get("reverse.zone"))
	if strings.Contains(string(revOut), "www.example.com") {
		t.Errorf("deleted PTR still present:\n%s", revOut)
	}
	fwdOut, _ := (zonefile.Format{}).Serialize(back.Get("example.zone"))
	if !strings.Contains(string(fwdOut), "example.com.\t60\tCNAME\twww.example.com.") {
		t.Errorf("inserted CNAME missing:\n%s", fwdOut)
	}
	// Original untouched.
	if sys.Get("reverse.zone").CountKind(confnode.KindRecord) != 5 {
		t.Error("original mutated")
	}
}

func tinySysSet(t *testing.T) *confnode.Set {
	t.Helper()
	doc, err := (tinydns.Format{}).Parse("data", []byte(tinyData))
	if err != nil {
		t.Fatal(err)
	}
	set := confnode.NewSet()
	set.Put("data", doc)
	return set
}

func TestTinyViewForward(t *testing.T) {
	v := TinyRecordView{File: "data"}
	sys := tinySysSet(t)
	fwd, err := v.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}
	recs := fwd.Get("data").ChildrenByKind(confnode.KindRecord)
	if len(recs) != 13 {
		t.Fatalf("view records = %d, want 13", len(recs))
	}
	// '=' produces two records with the same src, different parts.
	var aSrc, ptrSrc string
	for _, r := range recs {
		if r.Name == "www.example.com" && r.AttrDefault(AttrType, "") == "A" {
			aSrc = r.AttrDefault(view.SrcAttr, "")
		}
		if r.AttrDefault(AttrType, "") == "PTR" && r.Value == "www.example.com" {
			ptrSrc = r.AttrDefault(view.SrcAttr, "")
		}
	}
	if aSrc == "" || aSrc != ptrSrc {
		t.Errorf("combined '=' provenance mismatch: %q vs %q", aSrc, ptrSrc)
	}
}

func TestTinyViewRoundTrip(t *testing.T) {
	v := TinyRecordView{File: "data"}
	sys := tinySysSet(t)
	fwd, _ := v.Forward(sys)
	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := (tinydns.Format{}).Serialize(back.Get("data"))
	if string(out) != tinyData {
		t.Errorf("round trip:\nwant:\n%s\ngot:\n%s", tinyData, out)
	}
}

func findViewRecord(doc *confnode.Node, typ, owner string) *confnode.Node {
	for _, r := range doc.ChildrenByKind(confnode.KindRecord) {
		if r.AttrDefault(AttrType, "") == typ && r.Name == owner {
			return r
		}
	}
	return nil
}

func TestTinyViewMissingPTRNotExpressible(t *testing.T) {
	// The paper's Table 3 error (1): deleting the PTR half of a '=' line
	// cannot be mapped back to a tinydns-data file.
	v := TinyRecordView{File: "data"}
	sys := tinySysSet(t)
	fwd, _ := v.Forward(sys)
	ptr := findViewRecord(fwd.Get("data"), "PTR", "10.2.0.192.in-addr.arpa")
	if ptr == nil {
		t.Fatal("PTR not found in view")
	}
	ptr.Remove()
	_, err := v.Backward(fwd, sys)
	if !errors.Is(err, view.ErrNotExpressible) {
		t.Errorf("err = %v, want ErrNotExpressible", err)
	}
}

func TestTinyViewPTRToCNAMENotExpressible(t *testing.T) {
	// Table 3 error (2): retargeting the PTR half of a '=' line breaks the
	// A/PTR consistency the directive requires.
	v := TinyRecordView{File: "data"}
	sys := tinySysSet(t)
	fwd, _ := v.Forward(sys)
	ptr := findViewRecord(fwd.Get("data"), "PTR", "10.2.0.192.in-addr.arpa")
	ptr.Value = "ftp.example.com" // now points at the alias
	_, err := v.Backward(fwd, sys)
	if !errors.Is(err, view.ErrNotExpressible) {
		t.Errorf("err = %v, want ErrNotExpressible", err)
	}
}

func TestTinyViewInsertCNAMEExpressible(t *testing.T) {
	// Table 3 error (3): adding a CNAME that duplicates an NS owner IS
	// expressible in tinydns-data.
	v := TinyRecordView{File: "data"}
	sys := tinySysSet(t)
	fwd, _ := v.Forward(sys)
	ins := recordNode(Record{Owner: "example.com", Type: "CNAME", TTL: 60, Data: "www.example.com"}, "", "")
	fwd.Get("data").Append(ins)
	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := (tinydns.Format{}).Serialize(back.Get("data"))
	if !strings.Contains(string(out), "Cexample.com:www.example.com:60") {
		t.Errorf("inserted CNAME missing:\n%s", out)
	}
}

func TestTinyViewMXRetargetExpressible(t *testing.T) {
	// Table 3 error (4): changing the MX exchange is expressible.
	v := TinyRecordView{File: "data"}
	sys := tinySysSet(t)
	fwd, _ := v.Forward(sys)
	mx := findViewRecord(fwd.Get("data"), "MX", "example.com")
	mx.Value = "10 ftp.example.com"
	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := (tinydns.Format{}).Serialize(back.Get("data"))
	if !strings.Contains(string(out), "@example.com::ftp.example.com:10:3600") {
		t.Errorf("MX not retargeted:\n%s", out)
	}
}

func TestTinyViewDeleteWholePair(t *testing.T) {
	// Deleting both halves of a '=' line deletes the line — expressible.
	v := TinyRecordView{File: "data"}
	sys := tinySysSet(t)
	fwd, _ := v.Forward(sys)
	doc := fwd.Get("data")
	findViewRecord(doc, "PTR", "20.2.0.192.in-addr.arpa").Remove()
	findViewRecord(doc, "A", "mail.example.com").Remove()
	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := (tinydns.Format{}).Serialize(back.Get("data"))
	if strings.Contains(string(out), "=mail.example.com") {
		t.Errorf("deleted pair still present:\n%s", out)
	}
}

func TestTinyViewInsertAllTypes(t *testing.T) {
	v := TinyRecordView{File: "data"}
	sys := tinySysSet(t)
	fwd, _ := v.Forward(sys)
	doc := fwd.Get("data")
	for _, rec := range []Record{
		{Owner: "x.example.com", Type: "A", TTL: 60, Data: "192.0.2.99"},
		{Owner: "99.2.0.192.in-addr.arpa", Type: "PTR", TTL: 60, Data: "x.example.com"},
		{Owner: "y.example.com", Type: "TXT", TTL: 60, Data: "hi"},
		{Owner: "sub.example.com", Type: "NS", TTL: 60, Data: "ns2.example.com"},
		{Owner: "z.example.com", Type: "MX", TTL: 60, Data: "5 mail.example.com"},
		{Owner: "w.example.com", Type: "SOA", TTL: 60, Data: "a.example.com b.example.com 1 2 3 4 5"},
	} {
		doc.Append(recordNode(rec, "", ""))
	}
	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := (tinydns.Format{}).Serialize(back.Get("data"))
	for _, want := range []string{
		"+x.example.com:192.0.2.99:60",
		"^99.2.0.192.in-addr.arpa:x.example.com:60",
		"'y.example.com:hi:60",
		"&sub.example.com::ns2.example.com:60",
		"@z.example.com::mail.example.com:5:60",
		"Zw.example.com:a.example.com:b.example.com:1:2:3:4:5:60",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTinyViewInsertUnsupportedType(t *testing.T) {
	v := TinyRecordView{File: "data"}
	sys := tinySysSet(t)
	fwd, _ := v.Forward(sys)
	fwd.Get("data").Append(recordNode(Record{Owner: "h.example.com", Type: "HINFO", TTL: 60, Data: "i386 linux"}, "", ""))
	_, err := v.Backward(fwd, sys)
	if !errors.Is(err, view.ErrNotExpressible) {
		t.Errorf("HINFO insert: err = %v, want ErrNotExpressible", err)
	}
}

func TestTinyViewNSWithoutSOANotExpressible(t *testing.T) {
	v := TinyRecordView{File: "data"}
	sys := tinySysSet(t)
	fwd, _ := v.Forward(sys)
	// Delete only the SOA half of the first '.' line.
	doc := fwd.Get("data")
	for _, r := range doc.ChildrenByKind(confnode.KindRecord) {
		if r.AttrDefault(AttrType, "") == "SOA" && r.Name == "example.com" {
			r.Remove()
			break
		}
	}
	_, err := v.Backward(fwd, sys)
	if !errors.Is(err, view.ErrNotExpressible) {
		t.Errorf("err = %v, want ErrNotExpressible", err)
	}
}

func TestViewNames(t *testing.T) {
	if (ZoneRecordView{}).Name() != "zone-records" {
		t.Error("zone view name")
	}
	if (TinyRecordView{}).Name() != "tinydns-records" {
		t.Error("tiny view name")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Owner: "www.example.com", TTL: 60, Type: "A", Data: "192.0.2.1"}
	if got := r.String(); got != "www.example.com 60 A 192.0.2.1" {
		t.Errorf("String = %q", got)
	}
}

func TestUncanonRData(t *testing.T) {
	cases := []struct{ typ, in, want string }{
		{"NS", "ns1.example.com", "ns1.example.com."},
		{"CNAME", "", "."},
		{"PTR", "www.example.com", "www.example.com."},
		{"MX", "10 mail.example.com", "10 mail.example.com."},
		{"MX", "malformed", "malformed"},
		{"TXT", "hello world", "\"hello world\""},
		{"HINFO", "i386 linux", "\"i386\" \"linux\""},
		{"RP", "a.example.com b.example.com", "a.example.com. b.example.com."},
		{"RP", "justone", "justone"},
		{"SOA", "m.example.com r.example.com 1 2 3 4 5", "m.example.com. r.example.com. 1 2 3 4 5"},
		{"SOA", "short", "short"},
		{"A", "192.0.2.1", "192.0.2.1"},
	}
	for _, tt := range cases {
		if got := uncanonRData(tt.typ, tt.in); got != tt.want {
			t.Errorf("uncanonRData(%s, %q) = %q, want %q", tt.typ, tt.in, got, tt.want)
		}
	}
}

func TestNumOr(t *testing.T) {
	if numOr("42", "1") != "42" || numOr("junk", "1") != "1" || numOr("", "7") != "7" {
		t.Error("numOr wrong")
	}
}

func TestTinyZAndCaretRoundTrip(t *testing.T) {
	// 'Z' (explicit SOA), '^' (bare PTR), '&' (bare NS) and '+' (bare A)
	// lines survive forward+backward and accept retargeting.
	const data = `Zstatic.example.com:ns1.example.com:hostmaster.example.com:1:2:3:4:5:3600
^9.2.0.192.in-addr.arpa:bare.example.com:3600
&sub.example.com::ns2.example.com:3600
+plain.example.com:192.0.2.9:3600
'txt.example.com:some text:3600
`
	doc, err := (tinydns.Format{}).Parse("data", []byte(data))
	if err != nil {
		t.Fatal(err)
	}
	sys := confnode.NewSet()
	sys.Put("data", doc)
	v := TinyRecordView{File: "data"}
	fwd, err := v.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}
	if got := fwd.Get("data").CountKind(confnode.KindRecord); got != 5 {
		t.Fatalf("view records = %d, want 5", got)
	}
	// Retarget the bare PTR — expressible for '^' (unlike '=').
	ptr := findViewRecord(fwd.Get("data"), "PTR", "9.2.0.192.in-addr.arpa")
	ptr.Value = "other.example.com"
	// Retarget the bare NS.
	ns := findViewRecord(fwd.Get("data"), "NS", "sub.example.com")
	ns.Value = "ns3.example.com"
	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := (tinydns.Format{}).Serialize(back.Get("data"))
	for _, want := range []string{
		"^9.2.0.192.in-addr.arpa:other.example.com:3600",
		"&sub.example.com::ns3.example.com:3600",
		"Zstatic.example.com:ns1.example.com:hostmaster.example.com:1:2:3:4:5:3600",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Delete the bare A: whole line disappears.
	fwd2, _ := v.Forward(sys)
	findViewRecord(fwd2.Get("data"), "A", "plain.example.com").Remove()
	back2, err := v.Backward(fwd2, sys)
	if err != nil {
		t.Fatal(err)
	}
	out2, _ := (tinydns.Format{}).Serialize(back2.Get("data"))
	if strings.Contains(string(out2), "plain.example.com") {
		t.Errorf("deleted '+' line survived:\n%s", out2)
	}
}

func TestTinySOARewrite(t *testing.T) {
	const data = "Zs.example.com:m.example.com:r.example.com:1:2:3:4:5:60\n"
	doc, _ := (tinydns.Format{}).Parse("data", []byte(data))
	sys := confnode.NewSet()
	sys.Put("data", doc)
	v := TinyRecordView{File: "data"}
	fwd, _ := v.Forward(sys)
	soa := findViewRecord(fwd.Get("data"), "SOA", "s.example.com")
	soa.Value = "m2.example.com r.example.com 9 2 3 4 5"
	back, err := v.Backward(fwd, sys)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := (tinydns.Format{}).Serialize(back.Get("data"))
	if !strings.Contains(string(out), "Zs.example.com:m2.example.com:r.example.com:9:2:3:4:5") {
		t.Errorf("SOA rewrite missing:\n%s", out)
	}
}

func TestTinyPartTypeChangeNotExpressible(t *testing.T) {
	// Changing the record type of a '+' line's A into a CNAME has no
	// equivalent '+' form.
	const data = "+plain.example.com:192.0.2.9:3600\n"
	doc, _ := (tinydns.Format{}).Parse("data", []byte(data))
	sys := confnode.NewSet()
	sys.Put("data", doc)
	v := TinyRecordView{File: "data"}
	fwd, _ := v.Forward(sys)
	a := findViewRecord(fwd.Get("data"), "A", "plain.example.com")
	a.SetAttr(AttrType, "CNAME")
	a.Value = "www.example.com"
	if _, err := v.Backward(fwd, sys); !errors.Is(err, view.ErrNotExpressible) {
		t.Errorf("err = %v, want ErrNotExpressible", err)
	}
}
