package dnsmodel

import (
	"errors"
	"testing"

	"conferr/internal/confnode"
	"conferr/internal/formats/tinydns"
	"conferr/internal/view"
)

// TestZoneViewIncrementalBackward mutates one zone and checks the fast
// path against the full Backward: the touched zone folds identically, the
// untouched zone and the pass-through named.conf keep sharing the
// baseline trees.
func TestZoneViewIncrementalBackward(t *testing.T) {
	v := zoneView()
	sys := zoneSysSet(t)
	fwd, err := v.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(s *confnode.Set) {
		recs := s.Get("example.zone").ChildrenByKind(confnode.KindRecord)
		for _, r := range recs {
			if r.AttrDefault(AttrType, "") == "CNAME" {
				r.Value = "mail.example.com"
			}
		}
	}

	refMutated := fwd.Clone()
	mutate(refMutated)
	want, err := v.Backward(refMutated, sys)
	if err != nil {
		t.Fatal(err)
	}

	tracked := fwd.Tracked()
	mutate(tracked)
	out, err := v.IncrementalBackward(tracked.Seal(), tracked, sys)
	if err != nil {
		t.Fatal(err)
	}
	dirty := out.Seal()
	if len(dirty) != 1 || dirty[0] != "example.zone" {
		t.Fatalf("sys dirty = %v, want [example.zone]", dirty)
	}
	if !out.Get("example.zone").Equal(want.Get("example.zone")) {
		t.Errorf("folded zone diverges from full Backward:\nfast:\n%s\nreference:\n%s",
			out.Get("example.zone").Dump(), want.Get("example.zone").Dump())
	}
	if out.Get("reverse.zone") != sys.Get("reverse.zone") {
		t.Error("untouched zone was rebuilt")
	}
	if out.Get("named.conf") != sys.Get("named.conf") {
		t.Error("pass-through file was rebuilt")
	}
}

// TestTinyViewIncrementalBackward deletes a whole A/PTR pair — an
// expressible mutation — and checks fold parity with the full Backward.
func TestTinyViewIncrementalBackward(t *testing.T) {
	doc, err := (tinydns.Format{}).Parse("data", []byte(tinyData))
	if err != nil {
		t.Fatal(err)
	}
	sys := confnode.NewSet()
	sys.Put("data", doc)
	v := TinyRecordView{File: "data"}
	fwd, err := v.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(s *confnode.Set) {
		for _, r := range s.Get("data").ChildrenByKind(confnode.KindRecord) {
			if r.Name == Canon("www.example.com") || r.Value == "www.example.com" {
				r.Remove()
			}
		}
	}

	refMutated := fwd.Clone()
	mutate(refMutated)
	want, err := v.Backward(refMutated, sys)
	if err != nil {
		t.Fatal(err)
	}

	tracked := fwd.Tracked()
	mutate(tracked)
	out, err := v.IncrementalBackward(tracked.Seal(), tracked, sys)
	if err != nil {
		t.Fatal(err)
	}
	if dirty := out.Seal(); len(dirty) != 1 || dirty[0] != "data" {
		t.Fatalf("sys dirty = %v, want [data]", dirty)
	}
	if !out.Get("data").Equal(want.Get("data")) {
		t.Errorf("folded data diverges:\nfast:\n%s\nreference:\n%s",
			out.Get("data").Dump(), want.Get("data").Dump())
	}
}

// TestTinyViewIncrementalNotExpressibleParity removes only the PTR half of
// a combined "=" directive: both paths must reject it the same way.
func TestTinyViewIncrementalNotExpressibleParity(t *testing.T) {
	doc, err := (tinydns.Format{}).Parse("data", []byte(tinyData))
	if err != nil {
		t.Fatal(err)
	}
	sys := confnode.NewSet()
	sys.Put("data", doc)
	v := TinyRecordView{File: "data"}
	fwd, err := v.Forward(sys)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(s *confnode.Set) {
		for _, r := range s.Get("data").ChildrenByKind(confnode.KindRecord) {
			if r.AttrDefault(AttrType, "") == "PTR" && r.Value == "www.example.com" {
				r.Remove()
				return
			}
		}
	}

	refMutated := fwd.Clone()
	mutate(refMutated)
	_, refErr := v.Backward(refMutated, sys)

	tracked := fwd.Tracked()
	mutate(tracked)
	_, fastErr := v.IncrementalBackward(tracked.Seal(), tracked, sys)

	if !errors.Is(refErr, view.ErrNotExpressible) || !errors.Is(fastErr, view.ErrNotExpressible) {
		t.Fatalf("errors = %v / %v, want both ErrNotExpressible", refErr, fastErr)
	}
	if refErr.Error() != fastErr.Error() {
		t.Errorf("error text diverges:\nfast: %s\nreference: %s", fastErr, refErr)
	}
}
