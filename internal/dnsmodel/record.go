// Package dnsmodel provides the system-independent representation of DNS
// records that the paper's semantic error generator is defined on (§5.4):
// "an abstract representation that shows the DNS records published by each
// server". It contains the canonical Record type, parsers from the two
// native formats (zone master files and tinydns-data), and the
// bidirectional views that map configurations to record trees and back —
// including the expressiveness gap of tinydns's combined "=" directive
// that yields the paper's N/A outcomes.
package dnsmodel

import (
	"fmt"
	"strconv"
	"strings"

	"conferr/internal/confnode"
	"conferr/internal/dnswire"
	"conferr/internal/formats/tinydns"
	"conferr/internal/formats/zonefile"
)

// Record is one published DNS record in canonical form: names lower-case
// without trailing dots; Data in presentation form with canonical names
// ("pref host" for MX, "mname rname serial refresh retry expire minimum"
// for SOA).
type Record struct {
	// Owner is the canonical owner name.
	Owner string
	// Type is the RR type mnemonic ("A", "MX", …).
	Type string
	// TTL is the time to live in seconds.
	TTL uint32
	// Data is the canonicalized RDATA.
	Data string
}

// String renders the record in zone-file-like form.
func (r Record) String() string {
	return fmt.Sprintf("%s %d %s %s", r.Owner, r.TTL, r.Type, r.Data)
}

// Canon lower-cases a name and strips the trailing dot.
func Canon(name string) string { return dnswire.CanonicalName(name) }

// AbsName resolves a zone-file name against an origin: "@" is the origin,
// a trailing dot marks an absolute name, anything else is relative.
func AbsName(name, origin string) string {
	switch {
	case name == "@":
		return Canon(origin)
	case strings.HasSuffix(name, "."):
		return Canon(name)
	default:
		return Canon(name) + "." + Canon(origin)
	}
}

// defaultDNSTTL is used when neither the record nor $TTL provides one.
const defaultDNSTTL = 3600

// ParseZoneFile parses a zone master file into canonical records. origin
// is the zone origin (used for relative names and "@"); a $ORIGIN
// directive inside the file overrides it.
func ParseZoneFile(file string, data []byte, origin string) ([]Record, error) {
	doc, err := (zonefile.Format{}).Parse(file, data)
	if err != nil {
		return nil, err
	}
	return recordsFromZoneDoc(doc, origin, nil)
}

// recordsFromZoneDoc walks a parsed zone document. When want is non-nil it
// is called with (record, sourceNode) for every record, enabling the view
// to attach provenance.
func recordsFromZoneDoc(doc *confnode.Node, origin string, want func(Record, *confnode.Node)) ([]Record, error) {
	var out []Record
	defaultTTL := uint32(defaultDNSTTL)
	for _, n := range doc.Children() {
		switch n.Kind {
		case confnode.KindDirective:
			switch n.Name {
			case "$TTL":
				v, err := strconv.ParseUint(n.Value, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("dnsmodel: bad $TTL %q", n.Value)
				}
				defaultTTL = uint32(v)
			case "$ORIGIN":
				origin = Canon(n.Value)
			}
		case confnode.KindRecord:
			rec, err := canonZoneRecord(n, origin, defaultTTL)
			if err != nil {
				return nil, err
			}
			out = append(out, rec)
			if want != nil {
				want(rec, n)
			}
		}
	}
	return out, nil
}

// canonZoneRecord canonicalizes one zone-file record node.
func canonZoneRecord(n *confnode.Node, origin string, defaultTTL uint32) (Record, error) {
	rec := Record{
		Owner: AbsName(n.Name, origin),
		Type:  n.AttrDefault(zonefile.AttrType, "A"),
		TTL:   defaultTTL,
	}
	if ttl, ok := n.Attr(zonefile.AttrTTL); ok {
		v, err := strconv.ParseUint(ttl, 10, 32)
		if err != nil {
			return rec, fmt.Errorf("dnsmodel: bad TTL %q for %s", ttl, rec.Owner)
		}
		rec.TTL = uint32(v)
	}
	data, err := canonRData(rec.Type, n.Value, origin)
	if err != nil {
		return rec, err
	}
	rec.Data = data
	return rec, nil
}

// canonRData canonicalizes RDATA for the given type, resolving relative
// names against origin and stripping TXT quotes.
func canonRData(typ, raw, origin string) (string, error) {
	raw = strings.TrimSpace(raw)
	switch typ {
	case "A":
		return raw, nil
	case "NS", "CNAME", "PTR":
		return AbsName(raw, origin), nil
	case "MX":
		fields := strings.Fields(raw)
		if len(fields) != 2 {
			return "", fmt.Errorf("dnsmodel: MX data %q must be \"pref host\"", raw)
		}
		if _, err := strconv.Atoi(fields[0]); err != nil {
			return "", fmt.Errorf("dnsmodel: bad MX preference %q", fields[0])
		}
		return fields[0] + " " + AbsName(fields[1], origin), nil
	case "TXT":
		return strings.Trim(raw, "\""), nil
	case "HINFO":
		return strings.ReplaceAll(raw, "\"", ""), nil
	case "RP":
		fields := strings.Fields(raw)
		if len(fields) != 2 {
			return "", fmt.Errorf("dnsmodel: RP data %q must be \"mbox txt\"", raw)
		}
		return AbsName(fields[0], origin) + " " + AbsName(fields[1], origin), nil
	case "SOA":
		fields := strings.Fields(raw)
		if len(fields) != 7 {
			return "", fmt.Errorf("dnsmodel: SOA data %q must have 7 fields", raw)
		}
		out := []string{AbsName(fields[0], origin), AbsName(fields[1], origin)}
		for _, f := range fields[2:] {
			if _, err := strconv.ParseUint(f, 10, 32); err != nil {
				return "", fmt.Errorf("dnsmodel: bad SOA number %q", f)
			}
			out = append(out, f)
		}
		return strings.Join(out, " "), nil
	default:
		return raw, nil
	}
}

// uncanonRData renders canonical RDATA back into absolute zone-file form
// (names carry trailing dots so the output is origin-independent).
func uncanonRData(typ, data string) string {
	dot := func(name string) string {
		if name == "" {
			return "."
		}
		return name + "."
	}
	switch typ {
	case "NS", "CNAME", "PTR":
		return dot(data)
	case "MX":
		fields := strings.Fields(data)
		if len(fields) == 2 {
			return fields[0] + " " + dot(fields[1])
		}
		return data
	case "TXT":
		return "\"" + data + "\""
	case "HINFO":
		fields := strings.Fields(data)
		for i := range fields {
			fields[i] = "\"" + fields[i] + "\""
		}
		return strings.Join(fields, " ")
	case "RP":
		fields := strings.Fields(data)
		if len(fields) == 2 {
			return dot(fields[0]) + " " + dot(fields[1])
		}
		return data
	case "SOA":
		fields := strings.Fields(data)
		if len(fields) == 7 {
			return dot(fields[0]) + " " + dot(fields[1]) + " " + strings.Join(fields[2:], " ")
		}
		return data
	default:
		return data
	}
}

// ParseTinyData parses a tinydns-data file into the canonical records the
// server would publish. A "=" line yields both the A and the derived PTR.
func ParseTinyData(file string, data []byte) ([]Record, error) {
	doc, err := (tinydns.Format{}).Parse(file, data)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, n := range doc.ChildrenByKind(confnode.KindRecord) {
		recs, err := tinyLineRecords(n)
		if err != nil {
			return nil, err
		}
		for _, lr := range recs {
			out = append(out, lr.rec)
		}
	}
	return out, nil
}

// lineRecord pairs a derived record with the part label identifying which
// half of a combined directive it came from.
type lineRecord struct {
	rec  Record
	part string
}

// tinyLineRecords expands one tinydns-data line into canonical records.
func tinyLineRecords(n *confnode.Node) ([]lineRecord, error) {
	fields := strings.Split(n.Value, ":")
	get := func(i int) string {
		if i < len(fields) {
			return strings.TrimSpace(fields[i])
		}
		return ""
	}
	ttl := func(i int) uint32 {
		if v, err := strconv.ParseUint(get(i), 10, 32); err == nil {
			return uint32(v)
		}
		return defaultDNSTTL
	}
	fqdn := Canon(get(0))
	if fqdn == "" {
		return nil, fmt.Errorf("dnsmodel: tinydns line %q missing fqdn", n.Name+n.Value)
	}
	switch n.Name {
	case "=":
		ip := get(1)
		rev, err := dnswire.ReverseName(ip)
		if err != nil {
			return nil, fmt.Errorf("dnsmodel: tinydns '=' line for %s: %w", fqdn, err)
		}
		t := ttl(2)
		return []lineRecord{
			{rec: Record{Owner: fqdn, Type: "A", TTL: t, Data: ip}, part: "a"},
			{rec: Record{Owner: Canon(rev), Type: "PTR", TTL: t, Data: fqdn}, part: "ptr"},
		}, nil
	case "+":
		ip := get(1)
		if _, err := dnswire.ReverseName(ip); err != nil {
			return nil, fmt.Errorf("dnsmodel: tinydns '+' line for %s: %w", fqdn, err)
		}
		return []lineRecord{{rec: Record{Owner: fqdn, Type: "A", TTL: ttl(2), Data: ip}, part: "a"}}, nil
	case "^":
		return []lineRecord{{rec: Record{Owner: fqdn, Type: "PTR", TTL: ttl(2), Data: Canon(get(1))}, part: "ptr"}}, nil
	case "C":
		return []lineRecord{{rec: Record{Owner: fqdn, Type: "CNAME", TTL: ttl(2), Data: Canon(get(1))}, part: "cname"}}, nil
	case "@":
		// @fqdn:ip:x:dist:ttl
		x := Canon(get(2))
		dist := get(3)
		if dist == "" {
			dist = "0"
		}
		if _, err := strconv.Atoi(dist); err != nil {
			return nil, fmt.Errorf("dnsmodel: tinydns '@' line for %s: bad distance %q", fqdn, dist)
		}
		return []lineRecord{{rec: Record{Owner: fqdn, Type: "MX", TTL: ttl(4), Data: dist + " " + x}, part: "mx"}}, nil
	case "&":
		return []lineRecord{{rec: Record{Owner: fqdn, Type: "NS", TTL: ttl(3), Data: Canon(get(2))}, part: "ns"}}, nil
	case ".":
		x := Canon(get(2))
		t := ttl(3)
		soa := Record{Owner: fqdn, Type: "SOA", TTL: t,
			Data: fmt.Sprintf("%s hostmaster.%s 1 16384 2048 1048576 2560", x, fqdn)}
		return []lineRecord{
			{rec: Record{Owner: fqdn, Type: "NS", TTL: t, Data: x}, part: "ns"},
			{rec: soa, part: "soa"},
		}, nil
	case "'":
		return []lineRecord{{rec: Record{Owner: fqdn, Type: "TXT", TTL: ttl(2), Data: get(1)}, part: "txt"}}, nil
	case "Z":
		// Zfqdn:mname:rname:ser:ref:ret:exp:min:ttl
		data := fmt.Sprintf("%s %s %s %s %s %s %s",
			Canon(get(1)), Canon(get(2)),
			numOr(get(3), "1"), numOr(get(4), "16384"), numOr(get(5), "2048"),
			numOr(get(6), "1048576"), numOr(get(7), "2560"))
		return []lineRecord{{rec: Record{Owner: fqdn, Type: "SOA", TTL: ttl(8), Data: data}, part: "soa"}}, nil
	default:
		return nil, fmt.Errorf("dnsmodel: unknown tinydns directive %q", n.Name)
	}
}

func numOr(s, def string) string {
	if _, err := strconv.ParseUint(s, 10, 32); err != nil {
		return def
	}
	return s
}
