package confnode

import (
	"fmt"
	"testing"
)

// buildTree makes a document with sections, attributes and directives —
// enough shape to exercise every CloneInto branch.
func buildTree() *Node {
	root := New(KindDocument, "f.conf")
	for s := 0; s < 3; s++ {
		sec := New(KindSection, fmt.Sprintf("sec%d", s))
		sec.SetAttr("style", "brackets")
		for d := 0; d < 5; d++ {
			dir := NewValued(KindDirective, fmt.Sprintf("key%d", d), fmt.Sprintf("val%d", d))
			dir.SetAttr("sep", " = ")
			sec.Append(dir)
		}
		root.Append(sec)
	}
	return root
}

func TestCloneIntoEqualsClone(t *testing.T) {
	src := buildTree()
	var a Arena
	c := src.CloneInto(&a)
	if !c.Equal(src) {
		t.Fatal("arena clone differs from source")
	}
	if c.Parent() != nil {
		t.Fatal("arena clone has a parent")
	}
	// Mutating the clone leaves the source untouched (attr COW included).
	c.Child(0).Child(1).Value = "mutated"
	c.Child(0).Child(1).SetAttr("sep", ":")
	if src.Child(0).Child(1).Value != "val1" {
		t.Error("source value mutated through clone")
	}
	if v, _ := src.Child(0).Child(1).Attr("sep"); v != " = " {
		t.Error("source attr mutated through clone")
	}
}

// TestArenaReuse: after Reset the same memory serves the next clone; a
// long sequence of clone/reset cycles must stay correct (and, at steady
// state, allocation-free — checked by the engine's allocs test).
func TestArenaReuse(t *testing.T) {
	src := buildTree()
	var a Arena
	for i := 0; i < 50; i++ {
		a.Reset()
		c := src.CloneInto(&a)
		if !c.Equal(src) {
			t.Fatalf("cycle %d: clone differs", i)
		}
		c.Child(1).Child(0).Value = fmt.Sprint(i)
	}
}

func TestArenaSteadyStateAllocs(t *testing.T) {
	src := buildTree()
	src.Freeze()
	var a Arena
	a.Reset()
	src.CloneInto(&a) // warm the chunks
	allocs := testing.AllocsPerRun(100, func() {
		a.Reset()
		src.CloneInto(&a)
	})
	if allocs != 0 {
		t.Errorf("steady-state CloneInto allocs/op = %v, want 0", allocs)
	}
}

// TestFreezeAttrCOW: freezing shares attribute maps between source and
// clones; the first mutation on either side copies privately.
func TestFreezeAttrCOW(t *testing.T) {
	src := buildTree()
	src.Freeze()
	clone := src.Clone()
	dir := clone.Child(0).Child(0)
	dir.SetAttr("sep", "=")
	if v, _ := src.Child(0).Child(0).Attr("sep"); v != " = " {
		t.Error("mutating a clone's attrs leaked into the frozen source")
	}
	// The source side COWs too.
	src.Child(0).Child(0).SetAttr("sep", "\t")
	if v, _ := clone.Child(1).Child(0).Attr("sep"); v != " = " {
		t.Error("source mutation leaked into an untouched clone node")
	}
	// DelAttr on a shared map must also copy first.
	clone2 := src.Clone()
	clone2.Child(2).Child(0).DelAttr("sep")
	if _, ok := src.Child(2).Child(0).Attr("sep"); !ok {
		t.Error("DelAttr on clone removed the frozen source's attr")
	}
}

// TestTrackedWithArena: materialization through a tracked set draws from
// the arena and keeps dirty-file tracking exact.
func TestTrackedWithArena(t *testing.T) {
	base := NewSet()
	base.Put("a.conf", buildTree())
	base.Put("b.conf", buildTree())
	base.Freeze()

	var a Arena
	tr := base.TrackedWith(&a)
	tr.Get("a.conf").Child(0).Child(0).Value = "x"
	dirty := tr.Seal()
	if len(dirty) != 1 || dirty[0] != "a.conf" {
		t.Fatalf("dirty = %v", dirty)
	}
	if base.Get("a.conf").Child(0).Child(0).Value != "val0" {
		t.Error("base mutated through tracked set")
	}
}

// TestTrackedIntoReuse: one reused wrapper tracks experiment after
// experiment without cross-talk, including Put of a new file (which must
// copy the shared order, not append to the base's).
func TestTrackedIntoReuse(t *testing.T) {
	base := NewSet()
	base.Put("a.conf", buildTree())
	base.Put("b.conf", buildTree())
	baseNames := fmt.Sprint(base.Names())

	var a Arena
	var tr *Set
	for i := 0; i < 10; i++ {
		a.Reset()
		tr = base.TrackedInto(tr, &a)
		switch i % 3 {
		case 0:
			tr.Get("b.conf").Child(1).Child(2).Value = fmt.Sprint(i)
			if d := tr.Seal(); len(d) != 1 || d[0] != "b.conf" {
				t.Fatalf("cycle %d: dirty = %v", i, d)
			}
		case 1:
			tr.Put("new.conf", New(KindDocument, "new.conf"))
			if d := tr.Seal(); len(d) != 1 || d[0] != "new.conf" {
				t.Fatalf("cycle %d: dirty = %v", i, d)
			}
			if tr.Len() != 3 {
				t.Fatalf("cycle %d: tracked len = %d", i, tr.Len())
			}
		case 2:
			if d := tr.Seal(); len(d) != 0 {
				t.Fatalf("cycle %d: clean experiment dirty = %v", i, d)
			}
		}
		if got := fmt.Sprint(base.Names()); got != baseNames {
			t.Fatalf("cycle %d: base order mutated: %v", i, got)
		}
	}
}

// TestSetEach: Each iterates in order without materializing on sealed
// tracked sets.
func TestSetEach(t *testing.T) {
	base := NewSet()
	base.Put("a.conf", buildTree())
	base.Put("b.conf", buildTree())
	tr := base.Tracked()
	tr.Get("b.conf").Child(0).Child(0).Value = "x"
	tr.Seal()
	var names []string
	tr.Each(func(file string, root *Node) bool {
		names = append(names, file)
		if root == nil {
			t.Errorf("nil root for %s", file)
		}
		return true
	})
	if fmt.Sprint(names) != "[a.conf b.conf]" {
		t.Errorf("Each order = %v", names)
	}
	// Each on the sealed set must not have inflated the dirty list.
	if d := tr.DirtyFiles(); len(d) != 1 || d[0] != "b.conf" {
		t.Errorf("dirty after Each = %v", d)
	}
}
